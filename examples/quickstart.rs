//! Quickstart: sketch two subtables and compare the approximate Lp
//! distance against the exact one, for several values of p.
//!
//! Run with: `cargo run --release --example quickstart`

use tabsketch::prelude::*;

fn main() {
    // A synthetic "call volume" table: 256 stations x 2 days of
    // 10-minute slots, with population centers and diurnal structure.
    let table = CallVolumeGenerator::new(CallVolumeConfig {
        stations: 256,
        slots_per_day: 144,
        days: 2,
        seed: 7,
        ..Default::default()
    })
    .expect("valid generator configuration")
    .generate();
    println!(
        "table: {} x {} = {} cells",
        table.rows(),
        table.cols(),
        table.len()
    );

    // Two 64x64 regions: "morning in the east" vs "morning in the west".
    let east = table.view(Rect::new(0, 40, 64, 64)).expect("in bounds");
    let west = table.view(Rect::new(192, 40, 64, 64)).expect("in bounds");

    println!(
        "\n{:>6}  {:>14}  {:>14}  {:>8}",
        "p", "exact", "sketched", "rel err"
    );
    for &p in &[0.25, 0.5, 1.0, 1.5, 2.0] {
        // 400-entry sketches give ~10% accuracy with high probability;
        // size them from an accuracy target instead with
        // `SketchParams::from_accuracy(p, epsilon, delta, seed)`.
        let params = SketchParams::builder()
            .p(p)
            .k(400)
            .seed(42)
            .build()
            .expect("valid parameters");
        let sketcher = Sketcher::new(params).expect("valid sketcher");

        // Sketches are tiny (400 floats for a 4096-cell region) and can
        // be stored, reused, and combined linearly.
        let s_east = sketcher.sketch_view(&east);
        let s_west = sketcher.sketch_view(&west);

        let approx = sketcher
            .estimate_distance(&s_east, &s_west)
            .expect("sketches share a family");
        let exact = norms::lp_distance_views(&east, &west, p).expect("same shape");
        println!(
            "{p:>6.2}  {exact:>14.1}  {approx:>14.1}  {:>7.1}%",
            100.0 * (approx - exact).abs() / exact
        );
    }

    println!(
        "\nEach comparison above read {} sketch entries instead of {} cells.",
        400,
        64 * 64
    );
}
