//! The paper's motivating scenario: find geographic regions with similar
//! cell-phone usage distributions.
//!
//! Clusters one week of synthetic call-volume data three ways — exact
//! distances, precomputed sketches, and on-demand sketches — then scores
//! the sketched clusterings against the exact one with the paper's
//! quality measures and prints an ASCII cluster map.
//!
//! Run with: `cargo run --release --example cell_network_clustering`

use std::time::Instant;

use tabsketch::prelude::*;

fn main() {
    let stations = 300;
    let slots_per_day = 144;
    let days = 7;
    let table = CallVolumeGenerator::new(CallVolumeConfig {
        stations,
        slots_per_day,
        days,
        centers: 6,
        seed: 2024,
        ..Default::default()
    })
    .expect("valid generator configuration")
    .generate();

    // Tiles: 15 neighboring stations x one day.
    let grid = TileGrid::new(table.rows(), table.cols(), 15, slots_per_day)
        .expect("tiles divide the table");
    println!(
        "clustering {} tiles ({} stations x 1 day = {} cells each), k-means k = 10, p = 1\n",
        grid.len(),
        15,
        15 * slots_per_day
    );

    let p = 1.0;
    let k_clusters = 10;
    let km = KMeans::new(KMeansConfig {
        k: k_clusters,
        seed: 3,
        ..Default::default()
    })
    .expect("valid configuration");

    // Exact distances.
    let t0 = Instant::now();
    let exact_embedding = ExactEmbedding::from_tiles(&table, &grid, p).expect("non-empty grid");
    let exact_result = km.run(&exact_embedding).expect("enough tiles");
    let t_exact = t0.elapsed();

    // Precomputed sketches.
    let params = SketchParams::builder()
        .p(p)
        .k(256)
        .seed(9)
        .build()
        .expect("valid parameters");
    let t0 = Instant::now();
    let pre_embedding = PrecomputedSketchEmbedding::build(
        &table,
        &grid,
        Sketcher::new(params).expect("valid sketcher"),
    )
    .expect("non-empty grid");
    let t_build = t0.elapsed();
    let t0 = Instant::now();
    let pre_result = km.run(&pre_embedding).expect("enough tiles");
    let t_pre = t0.elapsed();

    // On-demand sketches.
    let lazy_embedding =
        OnDemandSketchEmbedding::new(&table, grid, Sketcher::new(params).expect("valid sketcher"))
            .expect("non-empty grid");
    let t0 = Instant::now();
    let _lazy_result = km.run(&lazy_embedding).expect("enough tiles");
    let t_lazy = t0.elapsed();

    println!(
        "exact distances:        {:.3}s ({} distance evals)",
        t_exact.as_secs_f64(),
        exact_result.distance_evals
    );
    println!(
        "precomputed sketches:   {:.3}s clustering + {:.3}s one-time build",
        t_pre.as_secs_f64(),
        t_build.as_secs_f64()
    );
    println!(
        "on-demand sketches:     {:.3}s (sketches built inside the run)",
        t_lazy.as_secs_f64()
    );

    // Quality of the sketched clustering vs the exact one (Defs. 10, 11).
    let agreement = clustering_agreement(
        &exact_result.assignments,
        &pre_result.assignments,
        k_clusters,
    )
    .expect("parallel labelings");
    println!(
        "\nconfusion-matrix agreement (sketch vs exact): {:.1}%",
        100.0 * agreement
    );

    println!(
        "\ncluster map under sketches (rows = station groups, cols = days; largest cluster blank):"
    );
    // Reshape assignments: grid is (station groups) x (days).
    let rows = grid.grid_rows();
    let cols = grid.grid_cols();
    const GLYPHS: &[u8] = b"#@%*+=o:~";
    let mut counts = vec![0usize; k_clusters];
    for &a in &pre_result.assignments {
        counts[a] += 1;
    }
    let largest = (0..k_clusters)
        .max_by_key(|&i| counts[i])
        .expect("non-empty");
    for r in 0..rows {
        let mut line = String::new();
        for c in 0..cols {
            let a = pre_result.assignments[r * cols + c];
            line.push(if a == largest {
                ' '
            } else {
                GLYPHS[a % GLYPHS.len()] as char
            });
        }
        println!("  station group {r:>2} |{line}|");
    }
    println!("\nVertical stripes = station groups that behave the same every day;");
    println!("weekend columns often differ (the generator damps weekend volume).");
}
