//! "p as a slider": sweep p over (0, 2] on the six-region benchmark and
//! watch the recovered clustering change — the paper's closing
//! observation that the whole continuum of Lp distances is useful.
//!
//! Also exercises the dyadic sketch pool: every clustering below asks the
//! pool for compound sketches of the tiles in O(k) each, instead of
//! re-sketching per p... per tile.
//!
//! Run with: `cargo run --release --example fractional_p_explorer`

use tabsketch::prelude::*;

fn main() {
    let rows = 256;
    let cols = 256;
    let tile = 16;
    let generator = SixRegionGenerator::new(SixRegionConfig {
        rows,
        cols,
        outlier_fraction: 0.01,
        seed: 1,
        ..Default::default()
    })
    .expect("valid generator configuration");
    let table = generator.generate();
    let grid = TileGrid::new(rows, cols, tile, tile).expect("tiles divide the table");
    let truth = generator.tile_labels(&grid);
    println!(
        "six-region benchmark: {} tiles of {tile}x{tile}, 1% outliers, 6 true clusters\n",
        grid.len()
    );

    println!("{:>6}  {:>10}  {:>12}", "p", "correct%", "bar");
    for &p in &[0.1, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0] {
        let sketcher = Sketcher::new(
            SketchParams::builder()
                .p(p)
                .k(192)
                .seed(33)
                .build()
                .expect("valid parameters"),
        )
        .expect("valid sketcher");
        let embedding =
            PrecomputedSketchEmbedding::build(&table, &grid, sketcher).expect("non-empty grid");
        let km = KMeans::new(KMeansConfig {
            k: 6,
            seed: 5,
            init: InitMethod::KMeansPlusPlus,
            ..Default::default()
        })
        .expect("valid configuration");
        let result = km.run(&embedding).expect("enough tiles");
        let correct =
            clustering_agreement(&truth, &result.assignments, 6).expect("parallel labelings");
        let bar = "#".repeat((correct * 40.0).round() as usize);
        println!("{p:>6.2}  {:>9.1}%  {bar}", 100.0 * correct);
    }

    println!();
    println!("Small p discounts the outliers (good here); p -> 0 approaches Hamming");
    println!("distance where almost every cell differs (bad); large p squares the");
    println!("outliers into dominance (bad). The paper suggests p ~ 0.5 as the sweet");
    println!("spot for outlier-laden tabular data, and recommends exposing p as a");
    println!("user-tunable knob of the mining algorithm.");

    // Bonus: the same sweep through the dyadic sketch pool on a few
    // fixed-size region queries, showing O(k) arbitrary-rectangle
    // estimates without re-touching the data.
    println!("\ndyadic pool demo: L1 distances between three 48x48 regions (compound sketches)");
    // 48x48 queries floor to 32x32 dyadic covers, so one canonical size
    // suffices; storing all anchor positions for it costs ~100 MB at
    // k = 64.
    let pool = SketchPool::build(
        &table,
        SketchParams::builder()
            .p(1.0)
            .k(64)
            .seed(15)
            .build()
            .expect("valid parameters"),
        PoolConfig {
            min_rows: 32,
            min_cols: 32,
            max_rows: 32,
            max_cols: 32,
            square_only: true,
            ..Default::default()
        },
    )
    .expect("pool fits in memory");
    let regions = [
        Rect::new(10, 10, 48, 48),
        Rect::new(70, 120, 48, 48),
        Rect::new(200, 60, 48, 48),
    ];
    for (i, &a) in regions.iter().enumerate() {
        for &b in &regions[i + 1..] {
            let est = pool.estimate_distance(a, b).expect("covered by the pool");
            let exact = norms::lp_distance_views(
                &table.view(a).expect("in bounds"),
                &table.view(b).expect("in bounds"),
                1.0,
            )
            .expect("same shape");
            println!(
                "  ({:>3},{:>3}) vs ({:>3},{:>3}):  pooled {est:>12.0}   exact {exact:>12.0}   ratio {:.2}",
                a.row, a.col, b.row, b.col, est / exact
            );
        }
    }
    println!("(compound estimates may inflate up to ~4x for non-dyadic covers — Theorem 5;");
    println!(" comparisons between same-shape regions remain consistent)");
}
