//! Streaming sketch maintenance: tables that "accumulate over time".
//!
//! The paper's data stores gain terabytes a month — an extra day's data
//! adds hundreds of thousands of readings. This example maintains
//! per-station sketches under a stream of point updates (new readings,
//! corrections, even deletions), merges partial streams from two
//! collectors, and keeps similarity queries answerable at every moment
//! without ever re-scanning history.
//!
//! Run with: `cargo run --release --example streaming_updates`

use tabsketch::core::streaming::StreamingSketch;
use tabsketch::prelude::*;

fn main() {
    // Each station's history is a logical vector of 30 days x 144 slots.
    let dim = 30 * 144;
    let sketcher = Sketcher::new(
        SketchParams::builder()
            .p(1.0)
            .k(256)
            .seed(77)
            .build()
            .expect("valid parameters"),
    )
    .expect("valid sketcher");

    // Three stations: two behaviorally similar, one different.
    let mut stations: Vec<StreamingSketch> = (0..3)
        .map(|_| StreamingSketch::new(sketcher.clone(), dim).expect("valid dimension"))
        .collect();
    // Mirror vectors so we can report exact distances for comparison.
    let mut mirror = vec![vec![0.0f64; dim]; 3];

    println!("ingesting 30 days of readings, day by day...\n");
    for day in 0..30 {
        for slot in 0..144 {
            let hour = slot as f64 / 6.0;
            let busy = if (9.0..21.0).contains(&hour) {
                1.0
            } else {
                0.05
            };
            let idx = day * 144 + slot;
            // Stations 0 and 1: urban profile (same shape, small jitter).
            // Station 2: overnight batch profile.
            let readings = [
                2000.0 * busy + ((day * 7 + slot) % 13) as f64,
                2000.0 * busy + ((day * 11 + slot) % 17) as f64,
                1500.0 * (1.05 - busy) + ((day * 5 + slot) % 11) as f64,
            ];
            for (s, &v) in readings.iter().enumerate() {
                stations[s].update(idx, v).expect("index in range");
                mirror[s][idx] += v;
            }
        }
        if (day + 1) % 10 == 0 {
            let est01 = stations[0]
                .estimate_distance(&stations[1])
                .expect("same family");
            let est02 = stations[0]
                .estimate_distance(&stations[2])
                .expect("same family");
            println!(
                "after day {:>2}:  d(station0, station1) = {est01:>12.0}   d(station0, station2) = {est02:>12.0}",
                day + 1
            );
        }
    }

    let exact01 = norms::lp_distance_slices(&mirror[0], &mirror[1], 1.0);
    let exact02 = norms::lp_distance_slices(&mirror[0], &mirror[2], 1.0);
    let est01 = stations[0]
        .estimate_distance(&stations[1])
        .expect("same family");
    let est02 = stations[0]
        .estimate_distance(&stations[2])
        .expect("same family");
    println!("\nfinal exact:     d01 = {exact01:.0}   d02 = {exact02:.0}");
    println!("final sketched:  d01 = {est01:.0}   d02 = {est02:.0}");
    println!(
        "relative errors: {:.1}% and {:.1}%",
        100.0 * (est01 - exact01).abs() / exact01,
        100.0 * (est02 - exact02).abs() / exact02
    );

    // A late correction arrives: day 3, slot 40 of station 1 was a
    // duplicate batch — retract it. Turnstile updates handle deletion.
    let idx = 3 * 144 + 40;
    let bogus = mirror[1][idx] / 2.0;
    stations[1].update(idx, -bogus).expect("index in range");
    mirror[1][idx] -= bogus;
    let est_after = stations[0]
        .estimate_distance(&stations[1])
        .expect("same family");
    let exact_after = norms::lp_distance_slices(&mirror[0], &mirror[1], 1.0);
    println!("\nafter retracting a bogus reading: sketched {est_after:.0}, exact {exact_after:.0}");

    // Distributed collection: two collectors each saw half the readings
    // of a fourth station; merging their sketches equals sketching the
    // union of the streams.
    let mut collector_a = StreamingSketch::new(sketcher.clone(), dim).expect("valid dimension");
    let mut collector_b = StreamingSketch::new(sketcher.clone(), dim).expect("valid dimension");
    let mut union = vec![0.0; dim];
    for i in (0..dim).step_by(2) {
        collector_a.update(i, 100.0).expect("in range");
        union[i] += 100.0;
    }
    for i in (1..dim).step_by(2) {
        collector_b.update(i, 140.0).expect("in range");
        union[i] += 140.0;
    }
    collector_a
        .merge(&collector_b)
        .expect("same family and dimension");
    let direct = sketcher.sketch_slice(&union);
    let merged = collector_a.sketch();
    let max_dev = merged
        .values()
        .iter()
        .zip(direct.values())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!(
        "\nmerged collector sketch vs direct sketch of the union: max deviation {max_dev:.2e}"
    );
    println!("(zero up to floating-point roundoff — sketches are linear)");
}
