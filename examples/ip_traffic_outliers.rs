//! The paper's second motivating scenario: IP traffic tables (destination
//! host x time) where a few enormous bursts should not drown the
//! similarity structure.
//!
//! Demonstrates the fractional-p story end to end: with 1% burst outliers
//! injected, k-nearest-neighbor queries under L2 are hijacked by the
//! bursts, while L0.5 still finds the behaviorally similar rows — and
//! sketches preserve that, at a fraction of the comparison cost.
//!
//! Run with: `cargo run --release --example ip_traffic_outliers`

use tabsketch::cluster::nearest_neighbors;
use tabsketch::prelude::*;

fn main() {
    // 96 "subnets" x 288 time slots. Subnets come in three behavioral
    // groups (web-like diurnal, batch-overnight, flat), cycled by index.
    let rows = 96;
    let cols = 288;
    let mut table = Table::from_fn(rows, cols, |r, c| {
        let t = c as f64 / cols as f64 * 24.0;
        let base = match r % 3 {
            0 => 400.0 + 350.0 * ((t - 14.0) / 4.0).tanh() - 350.0 * ((t - 22.0) / 2.0).tanh(),
            1 => 300.0 + 500.0 * (-((t - 3.0) * (t - 3.0)) / 8.0).exp(),
            _ => 250.0,
        };
        // Deterministic per-cell jitter.
        let h = (r * 31 + c * 17) % 97;
        base + h as f64
    })
    .expect("valid dimensions");

    // 1% of readings become bursts 30-100x the normal level (flash
    // crowds, scans, bulk transfers).
    let n = tabsketch::data::random::inject_outliers(&mut table, 0.01, 30.0, 100.0, 5)
        .expect("valid outlier parameters");
    println!("injected {n} burst readings into {rows} x {cols} traffic table\n");

    let grid = TileGrid::new(rows, cols, 1, cols).expect("one tile per subnet row");
    let query = 0; // a group-0 (web-like) subnet

    for &p in &[2.0, 0.5] {
        println!("--- p = {p} ---");
        // Exact k-NN.
        let exact = ExactEmbedding::from_tiles(&table, &grid, p).expect("non-empty grid");
        let exact_nn = nearest_neighbors(&exact, query, 5).expect("enough objects");

        // Sketched k-NN.
        let sketcher = Sketcher::new(
            SketchParams::builder()
                .p(p)
                .k(256)
                .seed(11)
                .build()
                .expect("valid parameters"),
        )
        .expect("valid sketcher");
        let sketched =
            PrecomputedSketchEmbedding::build(&table, &grid, sketcher).expect("non-empty grid");
        let approx_nn = nearest_neighbors(&sketched, query, 5).expect("enough objects");

        let same_group_exact = exact_nn
            .iter()
            .filter(|nb| nb.index % 3 == query % 3)
            .count();
        let same_group_approx = approx_nn
            .iter()
            .filter(|nb| nb.index % 3 == query % 3)
            .count();

        println!(
            "exact   5-NN of subnet {query}: {:?}  ({same_group_exact}/5 same behavioral group)",
            exact_nn.iter().map(|nb| nb.index).collect::<Vec<_>>()
        );
        println!(
            "sketch  5-NN of subnet {query}: {:?}  ({same_group_approx}/5 same behavioral group)",
            approx_nn.iter().map(|nb| nb.index).collect::<Vec<_>>()
        );
        let recall =
            tabsketch::cluster::knn_recall(&exact_nn, &approx_nn).expect("non-empty neighbor sets");
        println!("sketch vs exact recall: {:.0}%\n", 100.0 * recall);
    }

    println!("Under L2 the burst readings dominate: neighbors are whichever subnets");
    println!("happen to share few bursts, not the behaviorally similar ones. Under");
    println!("L0.5 the bursts are discounted and the true group re-emerges — the");
    println!("paper's motivation for treating p as a tunable similarity knob.");
}
