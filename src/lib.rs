//! # tabsketch
//!
//! A production-quality Rust implementation of **Fast Mining of Massive
//! Tabular Data via Approximate Distance Computations** (Cormode, Indyk,
//! Koudas, Muthukrishnan; ICDE 2002): approximate Lp distances for all
//! `0 < p ≤ 2` via p-stable sketches, FFT-accelerated all-subtable
//! sketching, compound dyadic sketch pools, and sketch-accelerated mining
//! (k-means, k-NN, hierarchical clustering) over massive tables.
//!
//! This crate is a facade that re-exports the workspace members:
//!
//! * [`core`] — sketches, stable distributions, estimators, pools;
//! * [`table`] — the tabular data model and exact Lp distances;
//! * [`fft`] — the FFT/correlation substrate;
//! * [`data`] — synthetic dataset generators (call-volume, six-region);
//! * [`cluster`] — clustering over exact/sketched/on-demand embeddings;
//! * [`eval`] — the paper's accuracy and quality measures;
//! * [`serve`] — a concurrent TCP query daemon and blocking client;
//! * [`obs`] — zero-dependency metrics registry and span timing.
//!
//! ## Quick start
//!
//! ```
//! use tabsketch::prelude::*;
//!
//! // A table, a sketcher, and an approximate L1 distance between tiles.
//! let table = Table::from_fn(64, 64, |r, c| ((r * 7 + c * 13) % 31) as f64).unwrap();
//! let sk = Sketcher::new(SketchParams::builder().p(1.0).k(256).seed(42).build().unwrap()).unwrap();
//! let a = table.view(Rect::new(0, 0, 16, 16)).unwrap();
//! let b = table.view(Rect::new(32, 32, 16, 16)).unwrap();
//! let est = sk.estimate_distance(&sk.sketch_view(&a), &sk.sketch_view(&b)).unwrap();
//! let exact = norms::lp_distance_views(&a, &b, 1.0).unwrap();
//! assert!((est - exact).abs() / exact < 0.3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use tabsketch_cluster as cluster;
pub use tabsketch_core as core;
pub use tabsketch_data as data;
pub use tabsketch_eval as eval;
pub use tabsketch_fft as fft;
pub use tabsketch_obs as obs;
pub use tabsketch_serve as serve;
pub use tabsketch_table as table;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use tabsketch_cluster::{
        agglomerate, birch, dbscan, kmedoids, most_similar_pairs, most_similar_pairs_refined,
        nearest_neighbors, nearest_neighbors_sketched, silhouette, BirchConfig, DbscanConfig,
        Embedding, EstimatorEmbedding, ExactEmbedding, InitMethod, KMeans, KMeansConfig,
        KMeansResult, KMedoidsConfig, Linkage, OnDemandSketchEmbedding, PrecomputedSketchEmbedding,
    };
    pub use tabsketch_core::{
        AllSubtableSketches, DistanceEstimator, EstimatorKind, PoolConfig, PoolConfigBuilder,
        PoolRectEstimator, Sketch, SketchParams, SketchParamsBuilder, SketchPool, Sketcher,
        SlidingSketches, StreamingSketch, TabError,
    };
    pub use tabsketch_data::{
        CallVolumeConfig, CallVolumeGenerator, IpTrafficConfig, IpTrafficGenerator,
        SixRegionConfig, SixRegionGenerator,
    };
    pub use tabsketch_eval::{
        adjusted_rand_index, average_correctness, clustering_agreement, clustering_quality,
        cumulative_correctness, normalized_mutual_information, pairwise_comparison_correctness,
        rand_index, ComparisonTriple, ConfusionMatrix, DistancePair, Spreads,
    };
    pub use tabsketch_table::{
        norms, transform, MemoryBudget, Rect, Table, TableEpoch, TableError, TableStorage,
        TableUpdate, TableView, TileGrid,
    };
}
