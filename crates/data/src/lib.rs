//! # tabsketch-data
//!
//! Synthetic dataset generators standing in for the paper's proprietary
//! AT&T data stores (see DESIGN.md for the substitution rationale):
//!
//! * [`CallVolumeGenerator`] — call-volume tables with population centers,
//!   diurnal structure, coast-to-coast timezone shift, and weekday/weekend
//!   modulation (the paper's ~20,000-station × 144-slot daily tables);
//! * [`SixRegionGenerator`] — the §4.2 six-region benchmark with known
//!   ground-truth clustering and 1% injected outliers;
//! * [`random`] — generic uniform / Gaussian / Pareto tables and outlier
//!   injection for tests and ablations.
//!
//! All generators are deterministic given their seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod callvol;
mod iptraffic;
pub mod random;
mod regions;
pub(crate) mod rng;

pub use callvol::{CallVolumeConfig, CallVolumeGenerator, PopulationCenter};
pub use iptraffic::{IpTrafficConfig, IpTrafficGenerator, TrafficClass};
pub use regions::{SixRegionConfig, SixRegionGenerator, NUM_REGIONS, REGION_FRACTIONS};
