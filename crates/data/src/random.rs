//! Generic random-table generators used by tests, examples, and the
//! benchmark harness.

use rand::Rng;

use tabsketch_table::{Table, TableError};

use crate::rng::{gaussian, stream_rng};

/// A table of i.i.d. uniform values in `[lo, hi)`.
///
/// # Errors
///
/// Returns [`TableError::EmptyDimension`] for zero-sized dimensions and a
/// [`TableError::Io`] describing an empty value range (`lo >= hi`).
pub fn uniform_table(
    rows: usize,
    cols: usize,
    lo: f64,
    hi: f64,
    seed: u64,
) -> Result<Table, TableError> {
    if lo >= hi {
        return Err(TableError::Io(format!(
            "uniform range is empty: [{lo}, {hi})"
        )));
    }
    let mut rng = stream_rng(seed, &[0x0441, 0x01]);
    Table::from_fn(rows, cols, |_, _| rng.random_range(lo..hi))
}

/// A table of i.i.d. Gaussian values with the given mean and standard
/// deviation.
///
/// # Errors
///
/// Returns [`TableError::EmptyDimension`] for zero-sized dimensions or a
/// [`TableError::Io`] describing a non-positive standard deviation.
pub fn gaussian_table(
    rows: usize,
    cols: usize,
    mean: f64,
    std_dev: f64,
    seed: u64,
) -> Result<Table, TableError> {
    if std_dev < 0.0 {
        return Err(TableError::Io(format!(
            "negative standard deviation {std_dev}"
        )));
    }
    let mut rng = stream_rng(seed, &[0x0441, 0x02]);
    Table::from_fn(rows, cols, |_, _| mean + std_dev * gaussian(&mut rng))
}

/// A table of i.i.d. Pareto (heavy-tailed) values with shape `alpha > 0`
/// and scale 1: `X = U^{-1/alpha}`.
///
/// Heavy-tailed inputs are where small-`p` distances shine, so this
/// generator backs several ablation tests.
///
/// # Errors
///
/// Returns [`TableError::EmptyDimension`] for zero-sized dimensions or a
/// [`TableError::Io`] describing a non-positive shape.
pub fn pareto_table(rows: usize, cols: usize, alpha: f64, seed: u64) -> Result<Table, TableError> {
    if alpha <= 0.0 {
        return Err(TableError::Io(format!(
            "pareto shape must be positive, got {alpha}"
        )));
    }
    let mut rng = stream_rng(seed, &[0x0441, 0x03]);
    Table::from_fn(rows, cols, |_, _| {
        let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
        u.powf(-1.0 / alpha)
    })
}

/// Replaces a fraction of cells with scaled versions of themselves —
/// outlier injection in the style of the paper's synthetic benchmark.
/// Each selected cell is multiplied by a factor drawn uniformly from
/// `[factor_lo, factor_hi]` (use a range straddling 1 for both large and
/// small outliers).
///
/// # Errors
///
/// Returns a [`TableError::Io`] describing an invalid fraction or factor
/// range.
pub fn inject_outliers(
    table: &mut Table,
    fraction: f64,
    factor_lo: f64,
    factor_hi: f64,
    seed: u64,
) -> Result<usize, TableError> {
    if !(0.0..=1.0).contains(&fraction) {
        return Err(TableError::Io(format!(
            "outlier fraction {fraction} not in [0, 1]"
        )));
    }
    if factor_lo > factor_hi {
        return Err(TableError::Io("factor range is inverted".into()));
    }
    let n = ((table.len() as f64) * fraction).round() as usize;
    let len = table.len();
    let mut rng = stream_rng(seed, &[0x0441, 0x04]);
    let data = table.as_mut_slice();
    for _ in 0..n {
        let idx = rng.random_range(0..len);
        let factor = rng.random_range(factor_lo..=factor_hi);
        data[idx] *= factor;
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_respects_range() {
        let t = uniform_table(20, 20, -3.0, 5.0, 1).unwrap();
        assert!(t.as_slice().iter().all(|&v| (-3.0..5.0).contains(&v))); // as_slice-ok: dense generator output in tests
        assert!(uniform_table(2, 2, 5.0, 5.0, 1).is_err());
        assert!(uniform_table(0, 2, 0.0, 1.0, 1).is_err());
    }

    #[test]
    fn gaussian_moments_roughly_right() {
        let t = gaussian_table(100, 100, 10.0, 2.0, 3).unwrap();
        let mean: f64 = t.as_slice().iter().sum::<f64>() / t.len() as f64; // as_slice-ok: dense generator output in tests
        assert!((mean - 10.0).abs() < 0.1, "mean={mean}");
        assert!(gaussian_table(2, 2, 0.0, -1.0, 0).is_err());
    }

    #[test]
    fn pareto_is_heavy_tailed() {
        let t = pareto_table(100, 100, 1.0, 9).unwrap();
        assert!(t.as_slice().iter().all(|&v| v >= 1.0)); // as_slice-ok: dense generator output in tests
        let big = t.as_slice().iter().filter(|&&v| v > 100.0).count(); // as_slice-ok: dense generator output in tests
        assert!(big > 0, "alpha=1 Pareto should produce extreme values");
        assert!(pareto_table(2, 2, 0.0, 0).is_err());
    }

    #[test]
    fn outlier_injection_count_and_validation() {
        let mut t = uniform_table(50, 50, 1.0, 2.0, 4).unwrap();
        let before = t.clone();
        let n = inject_outliers(&mut t, 0.02, 10.0, 20.0, 5).unwrap();
        assert_eq!(n, 50);
        let changed = t
            .as_slice() // as_slice-ok: dense generator output in tests
            .iter()
            .zip(before.as_slice()) // as_slice-ok: dense generator output in tests
            .filter(|(a, b)| a != b)
            .count();
        assert!(changed > 0 && changed <= n, "changed={changed}");
        assert!(inject_outliers(&mut t, 1.5, 1.0, 2.0, 0).is_err());
        assert!(inject_outliers(&mut t, 0.5, 2.0, 1.0, 0).is_err());
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(
            uniform_table(5, 5, 0.0, 1.0, 7).unwrap(),
            uniform_table(5, 5, 0.0, 1.0, 7).unwrap()
        );
        assert_ne!(
            uniform_table(5, 5, 0.0, 1.0, 7).unwrap(),
            uniform_table(5, 5, 0.0, 1.0, 8).unwrap()
        );
    }
}
