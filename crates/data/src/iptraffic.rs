//! Synthetic IP-traffic tables — the paper's second motivating store.
//!
//! "Consider the representation of the Internet traffic between IP hosts
//! over time ... a table indexed by destination IP host and discretized
//! time representing the number of bytes of data forwarded at a router to
//! the particular destination for each time period."
//!
//! Rows are destinations grouped into behavioral classes (web-like
//! diurnal, overnight batch, flat infrastructure); columns are time
//! slots. A configurable fraction of readings become **bursts** — flash
//! crowds, scans, bulk transfers — tens of times the baseline, which is
//! precisely the outlier structure that motivates fractional-p distances.

use rand::Rng;

use tabsketch_table::{Table, TableError};

use crate::rng::{gaussian, stream_rng};

/// A destination's behavioral class.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrafficClass {
    /// Daytime-heavy, human-driven traffic (peaks mid-afternoon).
    Web,
    /// Overnight batch transfers (peaks in the small hours).
    Batch,
    /// Flat, machine-to-machine baseline.
    Infrastructure,
}

impl TrafficClass {
    /// The class of destination row `row` under the default round-robin
    /// class layout.
    pub fn of_row(row: usize) -> TrafficClass {
        match row % 3 {
            0 => TrafficClass::Web,
            1 => TrafficClass::Batch,
            _ => TrafficClass::Infrastructure,
        }
    }

    /// Mean traffic level (bytes per slot, arbitrary units) at the given
    /// hour of day for this class.
    pub fn level(&self, hour: f64) -> f64 {
        match self {
            TrafficClass::Web => {
                400.0 + 350.0 * ((hour - 14.0) / 4.0).tanh() - 350.0 * ((hour - 22.0) / 2.0).tanh()
            }
            TrafficClass::Batch => 300.0 + 500.0 * (-((hour - 3.0) * (hour - 3.0)) / 8.0).exp(),
            TrafficClass::Infrastructure => 250.0,
        }
    }
}

/// Configuration for [`IpTrafficGenerator`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IpTrafficConfig {
    /// Number of destination rows.
    pub destinations: usize,
    /// Time slots per day.
    pub slots_per_day: usize,
    /// Days of data.
    pub days: usize,
    /// Fraction of readings turned into bursts.
    pub burst_fraction: f64,
    /// Burst multiplier range `[lo, hi]`.
    pub burst_multiplier: (f64, f64),
    /// Standard deviation of additive Gaussian noise.
    pub noise_sigma: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for IpTrafficConfig {
    fn default() -> Self {
        Self {
            destinations: 96,
            slots_per_day: 288,
            days: 1,
            burst_fraction: 0.01,
            burst_multiplier: (30.0, 100.0),
            noise_sigma: 15.0,
            seed: 0,
        }
    }
}

/// Deterministic generator of synthetic IP-traffic tables with known
/// behavioral ground truth.
#[derive(Clone, Debug)]
pub struct IpTrafficGenerator {
    config: IpTrafficConfig,
}

impl IpTrafficGenerator {
    /// Creates a generator.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::EmptyDimension`] for zero dimensions and a
    /// [`TableError::Io`] for invalid burst parameters.
    pub fn new(config: IpTrafficConfig) -> Result<Self, TableError> {
        if config.destinations == 0 || config.slots_per_day == 0 || config.days == 0 {
            return Err(TableError::EmptyDimension);
        }
        if !(0.0..=1.0).contains(&config.burst_fraction) {
            return Err(TableError::Io(format!(
                "burst fraction {} not in [0, 1]",
                config.burst_fraction
            )));
        }
        if config.burst_multiplier.0 > config.burst_multiplier.1 || config.burst_multiplier.0 < 1.0
        {
            return Err(TableError::Io(
                "burst multiplier range invalid (needs 1 <= lo <= hi)".into(),
            ));
        }
        Ok(Self { config })
    }

    /// The configuration in effect.
    #[inline]
    pub fn config(&self) -> &IpTrafficConfig {
        &self.config
    }

    /// Ground-truth class label per destination row (0 = web, 1 = batch,
    /// 2 = infrastructure).
    pub fn class_labels(&self) -> Vec<usize> {
        (0..self.config.destinations)
            .map(|r| match TrafficClass::of_row(r) {
                TrafficClass::Web => 0,
                TrafficClass::Batch => 1,
                TrafficClass::Infrastructure => 2,
            })
            .collect()
    }

    /// Generates the table, bursts included.
    pub fn generate(&self) -> Table {
        let cfg = &self.config;
        let cols = cfg.slots_per_day * cfg.days;
        let mut rng = stream_rng(cfg.seed, &[0x19, 0x01]);
        let mut table = Table::from_fn(cfg.destinations, cols, |r, c| {
            let slot = c % cfg.slots_per_day;
            let hour = 24.0 * slot as f64 / cfg.slots_per_day as f64;
            let base = TrafficClass::of_row(r).level(hour);
            (base + cfg.noise_sigma * gaussian(&mut rng)).max(0.0)
        })
        .expect("dimensions validated at construction");
        // Bursts.
        let n_bursts = ((table.len() as f64) * cfg.burst_fraction).round() as usize;
        let mut brng = stream_rng(cfg.seed, &[0x19, 0x02]);
        let len = table.len();
        let data = table.as_mut_slice();
        for _ in 0..n_bursts {
            let idx = brng.random_range(0..len);
            let mult = brng.random_range(cfg.burst_multiplier.0..=cfg.burst_multiplier.1);
            data[idx] *= mult;
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> IpTrafficConfig {
        IpTrafficConfig {
            destinations: 30,
            slots_per_day: 96,
            seed: 4,
            ..Default::default()
        }
    }

    #[test]
    fn validation() {
        assert!(IpTrafficGenerator::new(IpTrafficConfig {
            destinations: 0,
            ..cfg()
        })
        .is_err());
        assert!(IpTrafficGenerator::new(IpTrafficConfig {
            burst_fraction: 1.5,
            ..cfg()
        })
        .is_err());
        assert!(IpTrafficGenerator::new(IpTrafficConfig {
            burst_multiplier: (0.5, 2.0),
            ..cfg()
        })
        .is_err());
        assert!(IpTrafficGenerator::new(IpTrafficConfig {
            burst_multiplier: (9.0, 2.0),
            ..cfg()
        })
        .is_err());
        assert!(IpTrafficGenerator::new(cfg()).is_ok());
    }

    #[test]
    fn shape_and_determinism() {
        let g = IpTrafficGenerator::new(cfg()).unwrap();
        let t = g.generate();
        assert_eq!(t.shape(), (30, 96));
        assert_eq!(t, IpTrafficGenerator::new(cfg()).unwrap().generate());
    }

    #[test]
    fn class_profiles_differ_where_expected() {
        // Noise-free levels: web peaks mid-afternoon, batch at 3am.
        let web_day = TrafficClass::Web.level(15.0);
        let web_night = TrafficClass::Web.level(3.0);
        assert!(web_day > 2.0 * web_night, "{web_day} vs {web_night}");
        let batch_day = TrafficClass::Batch.level(15.0);
        let batch_night = TrafficClass::Batch.level(3.0);
        assert!(
            batch_night > 2.0 * batch_day,
            "{batch_night} vs {batch_day}"
        );
        let infra = TrafficClass::Infrastructure;
        assert_eq!(infra.level(3.0), infra.level(15.0));
    }

    #[test]
    fn bursts_present_at_roughly_configured_rate() {
        let g = IpTrafficGenerator::new(IpTrafficConfig {
            noise_sigma: 0.0,
            burst_fraction: 0.02,
            ..cfg()
        })
        .unwrap();
        let t = g.generate();
        // Burst cells are >= 30x a class level; the max un-bursted value
        // is bounded by ~1100, so anything over 5000 is a burst.
        let bursts = t.as_slice().iter().filter(|&&v| v > 5000.0).count(); // as_slice-ok: dense generator output in tests
        let frac = bursts as f64 / t.len() as f64;
        assert!(frac > 0.01 && frac < 0.03, "burst fraction {frac}");
    }

    #[test]
    fn labels_cycle_by_row() {
        let g = IpTrafficGenerator::new(cfg()).unwrap();
        let labels = g.class_labels();
        assert_eq!(labels[0], 0);
        assert_eq!(labels[1], 1);
        assert_eq!(labels[2], 2);
        assert_eq!(labels[3], 0);
        assert_eq!(labels.len(), 30);
    }

    #[test]
    fn values_nonnegative() {
        let t = IpTrafficGenerator::new(cfg()).unwrap().generate();
        assert!(t.as_slice().iter().all(|&v| v >= 0.0 && v.is_finite())); // as_slice-ok: dense generator output in tests
    }
}
