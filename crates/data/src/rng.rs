//! Seed-derived random streams for the generators (mirrors the derivation
//! used by `tabsketch-core` so datasets are reproducible independently of
//! sketching).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// SplitMix64 finalizer.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic RNG for the stream `(seed, components)`.
pub fn stream_rng(seed: u64, components: &[u64]) -> StdRng {
    let mut key = mix64(seed ^ 0xD474_5EED_0000_0001);
    for (i, &c) in components.iter().enumerate() {
        key = mix64(key ^ c.wrapping_add(mix64(i as u64 + 1)));
    }
    StdRng::seed_from_u64(key)
}

/// One standard normal draw (Marsaglia polar method).
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let x: f64 = 2.0 * rng.random::<f64>() - 1.0;
        let y: f64 = 2.0 * rng.random::<f64>() - 1.0;
        let s = x * x + y * y;
        if s > 0.0 && s < 1.0 {
            return x * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_distinct() {
        let mut a = stream_rng(1, &[2, 3]);
        let mut b = stream_rng(1, &[2, 3]);
        let mut c = stream_rng(1, &[3, 2]);
        let xs: Vec<u64> = (0..10).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..10).map(|_| b.random()).collect();
        let zs: Vec<u64> = (0..10).map(|_| c.random()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gaussian_basic_moments() {
        let mut rng = stream_rng(9, &[1]);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
        assert!(mean.abs() < 0.02);
        assert!((var - 1.0).abs() < 0.03);
    }
}
