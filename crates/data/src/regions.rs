//! The paper's six-region synthetic benchmark (§4.2).
//!
//! "We divided this dataset into six areas representing ¼, ¼, ¼, ⅛, 1⁄16
//! and 1⁄16 of the data respectively. Each of these pieces was then filled
//! in to mimic six distinct patterns: the values were chosen from random
//! uniform distributions with distinct means in the range 10,000–30,000.
//! We then changed about 1% of these values at random to be relatively
//! large or small values that were still plausible."
//!
//! Under any sensible clustering, tiles from the same region should group
//! together — unless outliers dominate the distance, which is exactly what
//! happens for large `p` (Figure 4b).

use rand::Rng;

use tabsketch_table::{Table, TableError, TileGrid};

use crate::rng::stream_rng;

/// The region area fractions from the paper, in order.
pub const REGION_FRACTIONS: [f64; 6] = [0.25, 0.25, 0.25, 0.125, 0.0625, 0.0625];

/// Number of regions.
pub const NUM_REGIONS: usize = 6;

/// Configuration for [`SixRegionGenerator`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SixRegionConfig {
    /// Table rows; regions are horizontal bands of rows.
    pub rows: usize,
    /// Table columns.
    pub cols: usize,
    /// Fraction of cells turned into outliers (the paper uses 0.01).
    pub outlier_fraction: f64,
    /// Half-width of each region's uniform distribution around its mean.
    pub uniform_halfwidth: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for SixRegionConfig {
    fn default() -> Self {
        Self {
            rows: 256,
            cols: 256,
            outlier_fraction: 0.01,
            uniform_halfwidth: 1000.0,
            seed: 0,
        }
    }
}

/// Generator of the six-region benchmark with known ground truth.
#[derive(Clone, Debug)]
pub struct SixRegionGenerator {
    config: SixRegionConfig,
    /// Exclusive end row of each region band.
    band_ends: [usize; NUM_REGIONS],
    /// Mean of each region's uniform distribution.
    means: [f64; NUM_REGIONS],
}

impl SixRegionGenerator {
    /// Creates a generator.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::EmptyDimension`] for zero dimensions, or
    /// [`TableError::InvalidTileSize`] when `rows < 16` (each region needs
    /// at least one row).
    pub fn new(config: SixRegionConfig) -> Result<Self, TableError> {
        if config.rows == 0 || config.cols == 0 {
            return Err(TableError::EmptyDimension);
        }
        if config.rows < 16 {
            return Err(TableError::InvalidTileSize {
                tile_rows: config.rows,
                tile_cols: 1,
            });
        }
        let mut band_ends = [0usize; NUM_REGIONS];
        let mut acc = 0.0;
        for (i, f) in REGION_FRACTIONS.iter().enumerate() {
            acc += f;
            band_ends[i] = ((acc * config.rows as f64).round() as usize).min(config.rows);
        }
        band_ends[NUM_REGIONS - 1] = config.rows;
        // Distinct means evenly spread over 10,000–30,000, shuffled by seed
        // so band order does not correlate with magnitude.
        let mut means = [0.0f64; NUM_REGIONS];
        for (i, m) in means.iter_mut().enumerate() {
            *m = 10_000.0 + 20_000.0 * i as f64 / (NUM_REGIONS - 1) as f64;
        }
        let mut rng = stream_rng(config.seed, &[0x6E6, 0x01]);
        for i in (1..NUM_REGIONS).rev() {
            let j = rng.random_range(0..=i);
            means.swap(i, j);
        }
        Ok(Self {
            config,
            band_ends,
            means,
        })
    }

    /// The configuration in effect.
    #[inline]
    pub fn config(&self) -> &SixRegionConfig {
        &self.config
    }

    /// Region means, indexed by region id.
    #[inline]
    pub fn means(&self) -> &[f64; NUM_REGIONS] {
        &self.means
    }

    /// The ground-truth region of a table row.
    pub fn region_of_row(&self, row: usize) -> usize {
        self.band_ends
            .iter()
            .position(|&end| row < end)
            .unwrap_or(NUM_REGIONS - 1)
    }

    /// The ground-truth label of every tile of `grid`: the region of the
    /// tile's center row. (Tiles are sized so they do not straddle bands
    /// in the paper's setup; the center rule resolves stragglers.)
    pub fn tile_labels(&self, grid: &TileGrid) -> Vec<usize> {
        grid.iter()
            .map(|rect| self.region_of_row(rect.row + rect.rows / 2))
            .collect()
    }

    /// Generates the table with outliers injected.
    pub fn generate(&self) -> Table {
        let cfg = &self.config;
        let mut rng = stream_rng(cfg.seed, &[0x6E6, 0x02]);
        let mut data = Vec::with_capacity(cfg.rows * cfg.cols);
        for r in 0..cfg.rows {
            let mean = self.means[self.region_of_row(r)];
            for _ in 0..cfg.cols {
                let v = mean + rng.random_range(-cfg.uniform_halfwidth..cfg.uniform_halfwidth);
                data.push(v);
            }
        }
        // Outliers: "relatively large or small values that were still
        // plausible" — plausible here meaning no simple [min, max]
        // pre-filter separates them from a legitimate burst or dead
        // reading. The magnitudes are scaled so that, at laptop tile
        // sizes, they dominate L2 distances without dominating fractional
        // Lp distances — the paper's Figure 4b crossover (the original
        // achieves the same balance with 64 KB tiles on 128 MB of data).
        let n_outliers = ((cfg.rows * cfg.cols) as f64 * cfg.outlier_fraction).round() as usize;
        let mut orng = stream_rng(cfg.seed, &[0x6E6, 0x03]);
        for _ in 0..n_outliers {
            let idx = orng.random_range(0..data.len());
            data[idx] = if orng.random::<bool>() {
                orng.random_range(200_000.0..900_000.0) // burst-like spike
            } else {
                orng.random_range(0.0..100.0) // near-dead reading
            };
        }
        Table::new(cfg.rows, cfg.cols, data).expect("dimensions validated at construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SixRegionConfig {
        SixRegionConfig {
            rows: 128,
            cols: 64,
            seed: 5,
            ..Default::default()
        }
    }

    #[test]
    fn fractions_sum_to_one() {
        let total: f64 = REGION_FRACTIONS.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn validation() {
        assert!(SixRegionGenerator::new(SixRegionConfig { rows: 0, ..cfg() }).is_err());
        assert!(SixRegionGenerator::new(SixRegionConfig { rows: 8, ..cfg() }).is_err());
        assert!(SixRegionGenerator::new(cfg()).is_ok());
    }

    #[test]
    fn bands_cover_all_rows_in_order() {
        let g = SixRegionGenerator::new(cfg()).unwrap();
        let mut last = 0;
        for r in 0..128 {
            let region = g.region_of_row(r);
            assert!(region >= last, "regions are monotone down the rows");
            last = region;
        }
        assert_eq!(g.region_of_row(0), 0);
        assert_eq!(g.region_of_row(127), NUM_REGIONS - 1);
    }

    #[test]
    fn band_sizes_match_fractions() {
        let g = SixRegionGenerator::new(SixRegionConfig { rows: 256, ..cfg() }).unwrap();
        let mut counts = [0usize; NUM_REGIONS];
        for r in 0..256 {
            counts[g.region_of_row(r)] += 1;
        }
        assert_eq!(counts[0], 64);
        assert_eq!(counts[1], 64);
        assert_eq!(counts[2], 64);
        assert_eq!(counts[3], 32);
        assert_eq!(counts[4], 16);
        assert_eq!(counts[5], 16);
    }

    #[test]
    fn means_are_distinct_and_in_range() {
        let g = SixRegionGenerator::new(cfg()).unwrap();
        for (i, &m) in g.means().iter().enumerate() {
            assert!((10_000.0..=30_000.0).contains(&m));
            for &other in &g.means()[i + 1..] {
                assert_ne!(m, other);
            }
        }
    }

    #[test]
    fn values_cluster_near_region_means() {
        let mut c = cfg();
        c.outlier_fraction = 0.0;
        let g = SixRegionGenerator::new(c).unwrap();
        let t = g.generate();
        for r in [0usize, 40, 70, 100, 120] {
            let mean = g.means()[g.region_of_row(r)];
            let row_mean: f64 = t.row(r).iter().sum::<f64>() / t.cols() as f64;
            assert!(
                (row_mean - mean).abs() < 300.0,
                "row {r}: sample mean {row_mean} vs region mean {mean}"
            );
        }
    }

    #[test]
    fn outliers_present_at_configured_rate() {
        let g = SixRegionGenerator::new(cfg()).unwrap();
        let t = g.generate();
        // Outliers fall outside every region's ±halfwidth envelope.
        let is_outlier = |v: f64| {
            !g.means()
                .iter()
                .any(|&m| (v - m).abs() <= g.config().uniform_halfwidth)
        };
        let count = t.as_slice().iter().filter(|&&v| is_outlier(v)).count(); // as_slice-ok: dense generator output in tests
        let frac = count as f64 / t.len() as f64;
        assert!(frac > 0.004 && frac < 0.02, "outlier fraction {frac}");
    }

    #[test]
    fn tile_labels_match_bands() {
        let g = SixRegionGenerator::new(cfg()).unwrap();
        let grid = TileGrid::new(128, 64, 8, 8).unwrap();
        let labels = g.tile_labels(&grid);
        assert_eq!(labels.len(), grid.len());
        // The first tile row belongs to region 0, the last to region 5.
        assert_eq!(labels[0], 0);
        assert_eq!(*labels.last().unwrap(), 5);
        assert!(labels.iter().all(|&l| l < NUM_REGIONS));
    }

    #[test]
    fn deterministic() {
        let a = SixRegionGenerator::new(cfg()).unwrap().generate();
        let b = SixRegionGenerator::new(cfg()).unwrap().generate();
        assert_eq!(a, b);
    }
}
