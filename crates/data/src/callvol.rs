//! Synthetic call-volume tables mimicking the paper's AT&T dataset.
//!
//! The paper's real data: "the number of calls collected in intervals of
//! 10 minutes over the day (x-axis) from approximately 20,000 collection
//! stations allocated over the United States spatially ordered based on a
//! mapping of zip code (y-axis)", stitched across days.
//!
//! The generator reproduces the statistical structure the experiments
//! rely on:
//!
//! * stations on a linear "zip-code" axis with smooth **population
//!   centers** (metropolitan areas) — strong spatial autocorrelation and
//!   clusters flanked by weaker suburban rings;
//! * a **diurnal envelope** — negligible volume before ~6am, business-hours
//!   plateau from 9am to 9pm, gradual decline to midnight (as the paper
//!   describes of Figure 5);
//! * a **three-hour coast-to-coast timezone shift** along the station
//!   axis (the East/West business-hours phenomenon of the case study);
//! * weekday/weekend modulation when several days are stitched;
//! * multiplicative log-normal noise.

use rand::Rng;

use tabsketch_table::{Table, TableError};

use crate::rng::stream_rng;

/// Configuration for [`CallVolumeGenerator`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CallVolumeConfig {
    /// Number of collection stations (table rows). The paper's store has
    /// ~20,000; benchmarks use laptop-scaled values.
    pub stations: usize,
    /// Time slots per day (table columns per day); the paper uses
    /// 10-minute intervals, i.e. 144.
    pub slots_per_day: usize,
    /// Number of consecutive days stitched horizontally.
    pub days: usize,
    /// Number of population centers along the station axis.
    pub centers: usize,
    /// Baseline (rural) calls per slot.
    pub base_volume: f64,
    /// Peak extra calls per slot at the heart of the largest center.
    pub center_volume: f64,
    /// Standard deviation of the multiplicative log-normal noise (in log
    /// space). 0 disables noise.
    pub noise_sigma: f64,
    /// Hours of local-time shift between the first and last station
    /// (3.0 reproduces the US East/West coast spread).
    pub timezone_hours: f64,
    /// Volume multiplier applied to weekend days (day index 5 and 6 of
    /// each week).
    pub weekend_factor: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for CallVolumeConfig {
    fn default() -> Self {
        Self {
            stations: 512,
            slots_per_day: 144,
            days: 1,
            centers: 6,
            base_volume: 20.0,
            center_volume: 2000.0,
            noise_sigma: 0.25,
            timezone_hours: 3.0,
            weekend_factor: 0.55,
            seed: 0,
        }
    }
}

/// A description of one population center.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PopulationCenter {
    /// Position on the station axis, in `[0, 1]`.
    pub position: f64,
    /// Width (standard deviation) on the station axis, in `[0, 1]`.
    pub width: f64,
    /// Relative weight in `[0.3, 1]` (1 = the largest metro).
    pub weight: f64,
}

/// Deterministic generator of synthetic call-volume tables.
#[derive(Clone, Debug)]
pub struct CallVolumeGenerator {
    config: CallVolumeConfig,
    centers: Vec<PopulationCenter>,
}

impl CallVolumeGenerator {
    /// Creates a generator; center layout is derived from the seed.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::EmptyDimension`] when stations, slots, or
    /// days are zero.
    pub fn new(config: CallVolumeConfig) -> Result<Self, TableError> {
        if config.stations == 0 || config.slots_per_day == 0 || config.days == 0 {
            return Err(TableError::EmptyDimension);
        }
        let mut rng = stream_rng(config.seed, &[0xCA11, 0x01]);
        let n = config.centers.max(1);
        let mut centers = Vec::with_capacity(n);
        for i in 0..n {
            // Spread centers roughly evenly with jitter so two runs with
            // different seeds still look like "cities across the country".
            let lane = (i as f64 + 0.5) / n as f64;
            centers.push(PopulationCenter {
                position: (lane + rng.random_range(-0.35 / n as f64..0.35 / n as f64))
                    .clamp(0.0, 1.0),
                width: rng.random_range(0.01..0.04),
                weight: rng.random_range(0.3..1.0),
            });
        }
        // Ensure one dominant metro so clusterings have a clear anchor.
        centers[0].weight = 1.0;
        Ok(Self { config, centers })
    }

    /// The configuration in effect.
    #[inline]
    pub fn config(&self) -> &CallVolumeConfig {
        &self.config
    }

    /// The derived population centers.
    #[inline]
    pub fn centers(&self) -> &[PopulationCenter] {
        &self.centers
    }

    /// Longitude-like coordinate of a station in `[0, 1]`
    /// (0 = easternmost, 1 = westernmost).
    pub fn station_longitude(&self, station: usize) -> f64 {
        if self.config.stations <= 1 {
            0.0
        } else {
            station as f64 / (self.config.stations - 1) as f64
        }
    }

    /// Population density at a station: sum of Gaussian center bumps plus
    /// a small rural floor, in `[~0.02, ~1+]`.
    pub fn density(&self, station: usize) -> f64 {
        let x = self.station_longitude(station);
        let mut d = 0.02;
        for c in &self.centers {
            let z = (x - c.position) / c.width;
            d += c.weight * (-0.5 * z * z).exp();
        }
        d
    }

    /// The diurnal activity envelope at a local time of day given in
    /// fractional hours `[0, 24)`: ~0 overnight, ramping from 6am, a
    /// business-hours plateau 9am–9pm, declining toward midnight.
    pub fn diurnal_envelope(local_hour: f64) -> f64 {
        let h = local_hour.rem_euclid(24.0);
        // Smoothstep helper.
        fn smooth(edge0: f64, edge1: f64, x: f64) -> f64 {
            let t = ((x - edge0) / (edge1 - edge0)).clamp(0.0, 1.0);
            t * t * (3.0 - 2.0 * t)
        }
        let rise = smooth(6.0, 9.0, h);
        let fall = 1.0 - smooth(21.0, 24.0, h);
        let overnight = 0.02;
        overnight + (1.0 - overnight) * (rise * fall)
    }

    /// Generates the full table: `stations × (slots_per_day · days)`.
    pub fn generate(&self) -> Table {
        let cfg = &self.config;
        let cols = cfg.slots_per_day * cfg.days;
        let mut rng = stream_rng(cfg.seed, &[0xCA11, 0x02]);
        let densities: Vec<f64> = (0..cfg.stations).map(|s| self.density(s)).collect();
        let mut data = Vec::with_capacity(cfg.stations * cols);
        for (s, &density) in densities.iter().enumerate() {
            let shift = cfg.timezone_hours * self.station_longitude(s);
            for col in 0..cols {
                let day = col / cfg.slots_per_day;
                let slot = col % cfg.slots_per_day;
                let utc_hour = 24.0 * slot as f64 / cfg.slots_per_day as f64;
                let local_hour = utc_hour - shift;
                let envelope = Self::diurnal_envelope(local_hour);
                let weekday = if day % 7 >= 5 {
                    cfg.weekend_factor
                } else {
                    1.0
                };
                let mean = cfg.base_volume + cfg.center_volume * density * envelope * weekday;
                let noise = if cfg.noise_sigma > 0.0 {
                    (crate::rng::gaussian(&mut rng) * cfg.noise_sigma).exp()
                } else {
                    1.0
                };
                data.push((mean * noise).max(0.0));
            }
        }
        Table::new(cfg.stations, cols, data).expect("dimensions validated at construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> CallVolumeConfig {
        CallVolumeConfig {
            stations: 64,
            slots_per_day: 48,
            days: 2,
            centers: 3,
            seed: 7,
            ..Default::default()
        }
    }

    #[test]
    fn rejects_empty_dimensions() {
        assert!(CallVolumeGenerator::new(CallVolumeConfig {
            stations: 0,
            ..small_config()
        })
        .is_err());
        assert!(CallVolumeGenerator::new(CallVolumeConfig {
            days: 0,
            ..small_config()
        })
        .is_err());
    }

    #[test]
    fn shape_matches_config() {
        let g = CallVolumeGenerator::new(small_config()).unwrap();
        let t = g.generate();
        assert_eq!(t.shape(), (64, 96));
    }

    #[test]
    fn deterministic_per_seed() {
        let g1 = CallVolumeGenerator::new(small_config()).unwrap();
        let g2 = CallVolumeGenerator::new(small_config()).unwrap();
        assert_eq!(g1.generate(), g2.generate());
        let other = CallVolumeGenerator::new(CallVolumeConfig {
            seed: 8,
            ..small_config()
        })
        .unwrap();
        assert_ne!(g1.generate(), other.generate());
    }

    #[test]
    fn all_volumes_nonnegative() {
        let t = CallVolumeGenerator::new(small_config()).unwrap().generate();
        assert!(t.as_slice().iter().all(|&v| v >= 0.0 && v.is_finite())); // as_slice-ok: dense generator output in tests
    }

    #[test]
    fn diurnal_envelope_shape() {
        let night = CallVolumeGenerator::diurnal_envelope(3.0);
        let morning = CallVolumeGenerator::diurnal_envelope(7.5);
        let noon = CallVolumeGenerator::diurnal_envelope(12.0);
        let evening = CallVolumeGenerator::diurnal_envelope(20.0);
        let late = CallVolumeGenerator::diurnal_envelope(23.0);
        assert!(night < 0.05, "negligible before 6am: {night}");
        assert!(morning > night && morning < noon, "ramping 6-9am");
        assert!((noon - 1.0).abs() < 0.02, "business-hours plateau: {noon}");
        assert!(
            (evening - 1.0).abs() < 0.05,
            "plateau holds to 9pm: {evening}"
        );
        assert!(
            late < noon && late > night,
            "declining toward midnight: {late}"
        );
        // Periodic.
        assert!(
            (CallVolumeGenerator::diurnal_envelope(-1.0)
                - CallVolumeGenerator::diurnal_envelope(23.0))
            .abs()
                < 1e-12
        );
    }

    #[test]
    fn density_peaks_at_centers() {
        let g = CallVolumeGenerator::new(small_config()).unwrap();
        for c in g.centers() {
            let station = (c.position * 63.0).round() as usize;
            let peak = g.density(station);
            // Compare with a station far from every center if one exists;
            // at minimum the peak must exceed the rural floor.
            assert!(peak > 0.1, "density at center {c:?} = {peak}");
        }
    }

    #[test]
    fn busy_hours_busier_than_night() {
        let cfg = CallVolumeConfig {
            noise_sigma: 0.0,
            days: 1,
            ..small_config()
        };
        let g = CallVolumeGenerator::new(cfg).unwrap();
        let t = g.generate();
        // Use the densest station so the diurnal signal dominates the
        // rural base volume.
        let busiest = (0..cfg.stations)
            .max_by(|&a, &b| g.density(a).total_cmp(&g.density(b)))
            .unwrap();
        // Local noon vs deep night: the station's timezone shift is at
        // most 3h, so UTC noon+2h is within the 9am-9pm plateau and UTC
        // 3am is within the local overnight [0, 6) window.
        let noon_col = cfg.slots_per_day * 14 / 24;
        let night_col = cfg.slots_per_day / 8;
        assert!(t.get(busiest, noon_col) > 5.0 * t.get(busiest, night_col));
    }

    #[test]
    fn timezone_shift_delays_western_stations() {
        // With noise off, the overnight trough (local hours [0, 6), where
        // the envelope is exactly its floor) starts `timezone_hours`
        // later in UTC for the westernmost station.
        let cfg = CallVolumeConfig {
            noise_sigma: 0.0,
            days: 1,
            stations: 64,
            slots_per_day: 96,
            timezone_hours: 3.0,
            ..small_config()
        };
        let g = CallVolumeGenerator::new(cfg).unwrap();
        let t = g.generate();
        let trough_start = |station: usize| -> usize {
            let row = t.row(station);
            let min = row.iter().fold(f64::INFINITY, |a, &b| a.min(b));
            row.iter().position(|&v| v == min).unwrap()
        };
        let east = trough_start(0);
        let west = trough_start(63);
        let slots_per_hour = 96.0 / 24.0;
        let lag_hours = (west as f64 - east as f64) / slots_per_hour;
        assert!(
            (lag_hours - 3.0).abs() < 0.5,
            "west trough lags east by {lag_hours} hours (east {east}, west {west})"
        );
    }

    #[test]
    fn weekends_are_quieter() {
        let cfg = CallVolumeConfig {
            noise_sigma: 0.0,
            days: 7,
            ..small_config()
        };
        let g = CallVolumeGenerator::new(cfg).unwrap();
        let t = g.generate();
        let day_total = |d: usize| -> f64 {
            (0..cfg.stations)
                .map(|s| {
                    (0..cfg.slots_per_day)
                        .map(|c| t.get(s, d * cfg.slots_per_day + c))
                        .sum::<f64>()
                })
                .sum()
        };
        let weekday = day_total(2);
        let weekend = day_total(5);
        assert!(
            weekend < 0.7 * weekday,
            "weekend {weekend} vs weekday {weekday}"
        );
    }
}
