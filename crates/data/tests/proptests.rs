//! Property-based tests for the dataset generators.

use proptest::prelude::*;

use tabsketch_data::{
    random, CallVolumeConfig, CallVolumeGenerator, IpTrafficConfig, IpTrafficGenerator,
    SixRegionConfig, SixRegionGenerator, NUM_REGIONS,
};
use tabsketch_table::TileGrid;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The call-volume generator is deterministic, shape-correct, and
    /// produces finite non-negative volumes for any sane configuration.
    #[test]
    fn callvol_invariants(stations in 2usize..80, slots in 4usize..60,
                          days in 1usize..4, seed in 0u64..1000) {
        let config = CallVolumeConfig { stations, slots_per_day: slots, days, seed,
            ..Default::default() };
        let g = CallVolumeGenerator::new(config).unwrap();
        let t = g.generate();
        prop_assert_eq!(t.shape(), (stations, slots * days));
        prop_assert!(t.as_slice().iter().all(|&v| v.is_finite() && v >= 0.0));
        prop_assert_eq!(&t, &CallVolumeGenerator::new(config).unwrap().generate());
        // Longitudes span [0, 1] monotonically.
        for s in 1..stations {
            prop_assert!(g.station_longitude(s) >= g.station_longitude(s - 1));
        }
        prop_assert!(g.station_longitude(stations - 1) <= 1.0);
    }

    /// Six-region bands always cover all rows in order with the paper's
    /// fractions (up to rounding), and tile labels are in range.
    #[test]
    fn sixregion_invariants(rows_pow in 4usize..9, cols in 16usize..64, seed in 0u64..1000) {
        let rows = 1usize << rows_pow; // 16..256, keeps bands aligned-ish
        let config = SixRegionConfig { rows, cols, seed, ..Default::default() };
        let g = SixRegionGenerator::new(config).unwrap();
        let mut last = 0;
        let mut counts = [0usize; NUM_REGIONS];
        for r in 0..rows {
            let region = g.region_of_row(r);
            prop_assert!(region >= last && region < NUM_REGIONS);
            last = region;
            counts[region] += 1;
        }
        prop_assert_eq!(counts.iter().sum::<usize>(), rows);
        // Fractions within one row of spec.
        for (i, &frac) in tabsketch_data::REGION_FRACTIONS.iter().enumerate() {
            let expected = frac * rows as f64;
            prop_assert!((counts[i] as f64 - expected).abs() <= 1.5,
                "region {}: {} rows vs expected {}", i, counts[i], expected);
        }
        let grid = TileGrid::new(rows, cols, rows / 16, cols).unwrap();
        let labels = g.tile_labels(&grid);
        prop_assert!(labels.iter().all(|&l| l < NUM_REGIONS));
    }

    /// The IP-traffic generator respects its burst budget and ground
    /// truth labels cycle through the three classes.
    #[test]
    fn iptraffic_invariants(destinations in 3usize..60, slots in 8usize..80,
                            seed in 0u64..1000) {
        let config = IpTrafficConfig {
            destinations,
            slots_per_day: slots,
            days: 1,
            noise_sigma: 0.0,
            seed,
            ..Default::default()
        };
        let g = IpTrafficGenerator::new(config).unwrap();
        let t = g.generate();
        prop_assert_eq!(t.shape(), (destinations, slots));
        prop_assert!(t.as_slice().iter().all(|&v| v.is_finite() && v >= 0.0));
        let labels = g.class_labels();
        prop_assert_eq!(labels.len(), destinations);
        for (r, &l) in labels.iter().enumerate() {
            prop_assert_eq!(l, r % 3);
        }
    }

    /// Outlier injection changes at most the promised number of cells and
    /// is a no-op at fraction zero.
    #[test]
    fn outlier_injection_bounds(rows in 2usize..30, cols in 2usize..30,
                                frac in 0.0f64..0.2, seed in 0u64..1000) {
        let mut t = random::uniform_table(rows, cols, 1.0, 2.0, seed).unwrap();
        let before = t.clone();
        let n = random::inject_outliers(&mut t, frac, 5.0, 10.0, seed).unwrap();
        prop_assert_eq!(n, ((rows * cols) as f64 * frac).round() as usize);
        let changed = t
            .as_slice()
            .iter()
            .zip(before.as_slice())
            .filter(|(a, b)| a != b)
            .count();
        prop_assert!(changed <= n);
        if frac == 0.0 {
            prop_assert_eq!(changed, 0);
        }
    }

    /// Pareto tables are supported on [1, ∞) for any shape parameter.
    #[test]
    fn pareto_support(alpha in 0.2f64..5.0, seed in 0u64..200) {
        let t = random::pareto_table(10, 10, alpha, seed).unwrap();
        prop_assert!(t.as_slice().iter().all(|&v| v >= 1.0 && v.is_finite()));
    }
}
