//! The Hungarian (Kuhn–Munkres) algorithm for optimal assignment.
//!
//! Used by the confusion-matrix agreement measure: cluster labels from two
//! independent clusterings are arbitrary, so before counting agreements we
//! find the label permutation that maximizes the confusion-matrix trace.
//! This is a maximum-weight perfect matching on a `k × k` matrix — the
//! assignment problem, solved here in `O(k³)` with the standard potentials
//! formulation.

/// Solves the **minimum**-cost assignment problem for a square cost
/// matrix, given row-major as `cost[i * n + j]`.
///
/// Returns `assignment[i] = j`: the column assigned to each row, and the
/// total cost.
///
/// # Panics
///
/// Panics when `cost.len() != n * n`.
pub fn solve_min(cost: &[f64], n: usize) -> (Vec<usize>, f64) {
    assert_eq!(cost.len(), n * n, "cost matrix must be n x n");
    if n == 0 {
        return (Vec::new(), 0.0);
    }
    // Potentials formulation (1-based internal arrays), O(n^3).
    let inf = f64::INFINITY;
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; n + 1];
    // p[j] = row matched to column j (0 = none); p[0] is the current row.
    let mut p = vec![0usize; n + 1];
    let mut way = vec![0usize; n + 1];
    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![inf; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = inf;
            let mut j1 = 0usize;
            for j in 1..=n {
                if used[j] {
                    continue;
                }
                let cur = cost[(i0 - 1) * n + (j - 1)] - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // Augment along the alternating path.
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }
    let mut assignment = vec![0usize; n];
    let mut total = 0.0;
    for j in 1..=n {
        if p[j] != 0 {
            assignment[p[j] - 1] = j - 1;
            total += cost[(p[j] - 1) * n + (j - 1)];
        }
    }
    (assignment, total)
}

/// Solves the **maximum**-weight assignment problem by negating weights.
///
/// Returns `assignment[i] = j` and the total weight.
///
/// # Panics
///
/// Panics when `weight.len() != n * n`.
pub fn solve_max(weight: &[f64], n: usize) -> (Vec<usize>, f64) {
    let negated: Vec<f64> = weight.iter().map(|&w| -w).collect();
    let (assignment, cost) = solve_min(&negated, n);
    (assignment, -cost)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_permutation(assignment: &[usize]) -> bool {
        let n = assignment.len();
        let mut seen = vec![false; n];
        for &j in assignment {
            if j >= n || seen[j] {
                return false;
            }
            seen[j] = true;
        }
        true
    }

    #[test]
    fn trivial_sizes() {
        let (a, c) = solve_min(&[], 0);
        assert!(a.is_empty());
        assert_eq!(c, 0.0);
        let (a, c) = solve_min(&[5.0], 1);
        assert_eq!(a, vec![0]);
        assert_eq!(c, 5.0);
    }

    #[test]
    fn known_small_instance() {
        // Classic 3x3: optimal cost 5 via (0->1, 1->0, 2->2) or similar.
        #[rustfmt::skip]
        let cost = [
            4.0, 1.0, 3.0,
            2.0, 0.0, 5.0,
            3.0, 2.0, 2.0,
        ];
        let (a, c) = solve_min(&cost, 3);
        assert!(is_permutation(&a));
        assert_eq!(c, 5.0, "assignment {a:?}");
    }

    #[test]
    fn identity_is_optimal_on_diagonal_dominant() {
        let n = 4;
        let mut cost = vec![10.0; n * n];
        for i in 0..n {
            cost[i * n + i] = 0.0;
        }
        let (a, c) = solve_min(&cost, n);
        assert_eq!(a, vec![0, 1, 2, 3]);
        assert_eq!(c, 0.0);
    }

    #[test]
    fn permuted_diagonal() {
        // Cheap entries at (i, (i+1) % n).
        let n = 5;
        let mut cost = vec![7.0; n * n];
        for i in 0..n {
            cost[i * n + (i + 1) % n] = 1.0;
        }
        let (a, c) = solve_min(&cost, n);
        for (i, &col) in a.iter().enumerate() {
            assert_eq!(col, (i + 1) % n);
        }
        assert_eq!(c, 5.0);
    }

    #[test]
    fn max_is_min_of_negation() {
        #[rustfmt::skip]
        let w = [
            1.0, 9.0,
            9.0, 1.0,
        ];
        let (a, total) = solve_max(&w, 2);
        assert!(is_permutation(&a));
        assert_eq!(total, 18.0);
        assert_eq!(a, vec![1, 0]);
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        // Exhaustive check against all permutations for n = 4.
        fn permutations(n: usize) -> Vec<Vec<usize>> {
            if n == 1 {
                return vec![vec![0]];
            }
            let mut out = Vec::new();
            for perm in permutations(n - 1) {
                for pos in 0..n {
                    let mut p: Vec<usize> = perm.to_vec();
                    p.insert(pos, n - 1);
                    out.push(p);
                }
            }
            out
        }
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 40) as f64 / 100.0
        };
        let n = 4;
        for trial in 0..25 {
            let cost: Vec<f64> = (0..n * n).map(|_| next()).collect();
            let (a, c) = solve_min(&cost, n);
            assert!(is_permutation(&a), "trial {trial}");
            let brute = permutations(n)
                .into_iter()
                .map(|p| (0..n).map(|i| cost[i * n + p[i]]).sum::<f64>())
                .fold(f64::INFINITY, f64::min);
            assert!(
                (c - brute).abs() < 1e-9,
                "trial {trial}: hungarian {c} vs brute {brute} ({cost:?})"
            );
        }
    }

    #[test]
    fn handles_negative_costs() {
        #[rustfmt::skip]
        let cost = [
            -5.0,  2.0,
             2.0, -5.0,
        ];
        let (a, c) = solve_min(&cost, 2);
        assert_eq!(a, vec![0, 1]);
        assert_eq!(c, -10.0);
    }
}
