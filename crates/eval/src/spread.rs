//! Cluster spread and the sketched-clustering quality ratio — paper §4.1,
//! Definition 11.
//!
//! The *spread* of a cluster is the summed distance of its members to the
//! cluster center. The quality of a sketched clustering is the ratio of
//! total exact-clustering spread to total sketched-clustering spread (so
//! values ≥ 100% mean the sketched clustering is at least as tight as the
//! exact one — which the paper observes does happen).

use crate::EvalError;

/// Per-cluster spreads of one clustering: `spread[i]` is the summed
/// member-to-center distance of cluster `i`.
#[derive(Clone, Debug, PartialEq)]
pub struct Spreads(pub Vec<f64>);

impl Spreads {
    /// Computes spreads from an assignment and a member-to-own-center
    /// distance for every object.
    ///
    /// # Errors
    ///
    /// * [`EvalError::LengthMismatch`] when `assignments` and `distances`
    ///   differ in length;
    /// * [`EvalError::LabelOutOfRange`] for labels `>= k`.
    pub fn from_assignments(
        assignments: &[usize],
        distances: &[f64],
        k: usize,
    ) -> Result<Self, EvalError> {
        if assignments.len() != distances.len() {
            return Err(EvalError::LengthMismatch {
                left: assignments.len(),
                right: distances.len(),
            });
        }
        let mut spreads = vec![0.0; k];
        for (&label, &d) in assignments.iter().zip(distances) {
            if label >= k {
                return Err(EvalError::LabelOutOfRange { label, k });
            }
            spreads[label] += d;
        }
        Ok(Self(spreads))
    }

    /// Total spread across clusters.
    pub fn total(&self) -> f64 {
        self.0.iter().sum()
    }
}

/// Quality of a sketched clustering (Definition 11):
/// `Σ_i spread_exact(i) / Σ_i spread_sketch(i)`.
///
/// Values above 1.0 mean the sketched clustering is *tighter* than the
/// exact-distance clustering. Both spreads must be measured with the same
/// (exact) distance function for the ratio to be meaningful.
///
/// # Errors
///
/// Returns [`EvalError::DegenerateInput`] when the sketched spread is zero
/// while the exact spread is not (a zero/zero ratio is defined as 1.0).
pub fn clustering_quality(exact: &Spreads, sketched: &Spreads) -> Result<f64, EvalError> {
    let e = exact.total();
    let s = sketched.total();
    if s == 0.0 {
        if e == 0.0 {
            return Ok(1.0);
        }
        return Err(EvalError::DegenerateInput(
            "sketched spread is zero but exact is not",
        ));
    }
    Ok(e / s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spreads_accumulate_by_cluster() {
        let assignments = [0, 1, 0, 1, 2];
        let distances = [1.0, 2.0, 3.0, 4.0, 5.0];
        let s = Spreads::from_assignments(&assignments, &distances, 3).unwrap();
        assert_eq!(s.0, vec![4.0, 6.0, 5.0]);
        assert_eq!(s.total(), 15.0);
    }

    #[test]
    fn validation() {
        assert!(Spreads::from_assignments(&[0], &[1.0, 2.0], 1).is_err());
        assert!(Spreads::from_assignments(&[3], &[1.0], 2).is_err());
        // Empty clusterings are fine: zero spread everywhere.
        let s = Spreads::from_assignments(&[], &[], 2).unwrap();
        assert_eq!(s.total(), 0.0);
    }

    #[test]
    fn quality_ratio() {
        let exact = Spreads(vec![10.0, 10.0]);
        let sketched = Spreads(vec![8.0, 12.0]);
        assert_eq!(clustering_quality(&exact, &sketched).unwrap(), 1.0);
        let tighter = Spreads(vec![5.0, 5.0]);
        assert_eq!(clustering_quality(&exact, &tighter).unwrap(), 2.0);
        let looser = Spreads(vec![20.0, 20.0]);
        assert_eq!(clustering_quality(&exact, &looser).unwrap(), 0.5);
    }

    #[test]
    fn degenerate_quality() {
        let zero = Spreads(vec![0.0]);
        let nonzero = Spreads(vec![1.0]);
        assert_eq!(clustering_quality(&zero, &zero.clone()).unwrap(), 1.0);
        assert!(clustering_quality(&nonzero, &zero).is_err());
        assert_eq!(clustering_quality(&zero, &nonzero).unwrap(), 0.0);
    }
}
