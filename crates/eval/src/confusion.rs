//! Confusion-matrix agreement between two clusterings — paper §4.1,
//! Definition 10.
//!
//! Every object carries two labels (e.g. "cluster under exact distances"
//! and "cluster under sketched distances"). The confusion matrix counts
//! co-occurrences; agreement is the fraction of objects on the diagonal
//! **after optimally matching the label sets** (cluster ids are arbitrary,
//! so we maximize the diagonal with the Hungarian algorithm before
//! scoring — the fair reading of the paper's measure).

use crate::hungarian::solve_max;
use crate::EvalError;

/// A `k × k` confusion matrix between two labelings of the same objects.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfusionMatrix {
    k: usize,
    counts: Vec<usize>,
    total: usize,
}

impl ConfusionMatrix {
    /// Builds the matrix from two parallel label vectors with labels in
    /// `0..k`.
    ///
    /// # Errors
    ///
    /// * [`EvalError::EmptyInput`] for no objects or `k == 0`;
    /// * [`EvalError::LengthMismatch`] when label vectors differ in length;
    /// * [`EvalError::LabelOutOfRange`] for labels `>= k`.
    pub fn from_labels(a: &[usize], b: &[usize], k: usize) -> Result<Self, EvalError> {
        if a.len() != b.len() {
            return Err(EvalError::LengthMismatch {
                left: a.len(),
                right: b.len(),
            });
        }
        if a.is_empty() || k == 0 {
            return Err(EvalError::EmptyInput("confusion matrix"));
        }
        let mut counts = vec![0usize; k * k];
        for (&la, &lb) in a.iter().zip(b) {
            if la >= k || lb >= k {
                return Err(EvalError::LabelOutOfRange {
                    label: la.max(lb),
                    k,
                });
            }
            counts[la * k + lb] += 1;
        }
        Ok(Self {
            k,
            counts,
            total: a.len(),
        })
    }

    /// Number of clusters `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of objects.
    #[inline]
    pub fn total(&self) -> usize {
        self.total
    }

    /// `confusion(i, j)`: objects labeled `i` by the first clustering and
    /// `j` by the second.
    #[inline]
    pub fn count(&self, i: usize, j: usize) -> usize {
        self.counts[i * self.k + j]
    }

    /// Raw diagonal agreement (Definition 10 taken literally):
    /// `Σ_i confusion(i, i) / Σ_{i,j} confusion(i, j)`.
    ///
    /// Meaningful only when the two labelings use aligned cluster ids
    /// (e.g. a ground-truth labeling scored against itself); otherwise use
    /// [`ConfusionMatrix::agreement`].
    pub fn raw_agreement(&self) -> f64 {
        let diag: usize = (0..self.k).map(|i| self.count(i, i)).sum();
        diag as f64 / self.total as f64
    }

    /// Agreement after optimal label matching: the maximum achievable
    /// diagonal fraction over all permutations of the second labeling's
    /// ids, found with the Hungarian algorithm.
    pub fn agreement(&self) -> f64 {
        let weights: Vec<f64> = self.counts.iter().map(|&c| c as f64).collect();
        let (_, best) = solve_max(&weights, self.k);
        best / self.total as f64
    }

    /// The optimal relabeling itself: `mapping[i] = j` pairs cluster `i`
    /// of the first labeling with cluster `j` of the second.
    pub fn optimal_mapping(&self) -> Vec<usize> {
        let weights: Vec<f64> = self.counts.iter().map(|&c| c as f64).collect();
        solve_max(&weights, self.k).0
    }
}

/// Convenience: agreement between two labelings (optimal matching).
///
/// # Errors
///
/// Propagates [`ConfusionMatrix::from_labels`] validation errors.
pub fn clustering_agreement(a: &[usize], b: &[usize], k: usize) -> Result<f64, EvalError> {
    Ok(ConfusionMatrix::from_labels(a, b, k)?.agreement())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_labelings_agree_fully() {
        let labels = vec![0, 1, 2, 0, 1, 2, 0];
        let cm = ConfusionMatrix::from_labels(&labels, &labels, 3).unwrap();
        assert_eq!(cm.raw_agreement(), 1.0);
        assert_eq!(cm.agreement(), 1.0);
    }

    #[test]
    fn permuted_labels_agree_after_matching() {
        let a = vec![0, 0, 1, 1, 2, 2];
        let b = vec![2, 2, 0, 0, 1, 1]; // same partition, renamed
        let cm = ConfusionMatrix::from_labels(&a, &b, 3).unwrap();
        assert_eq!(cm.raw_agreement(), 0.0);
        assert_eq!(cm.agreement(), 1.0);
        assert_eq!(cm.optimal_mapping(), vec![2, 0, 1]);
    }

    #[test]
    fn partial_agreement() {
        let a = vec![0, 0, 0, 1, 1, 1];
        let b = vec![0, 0, 1, 1, 1, 1];
        let cm = ConfusionMatrix::from_labels(&a, &b, 2).unwrap();
        // Best matching keeps identity: 2 + 3 = 5 of 6.
        assert!((cm.agreement() - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn counts_accessible() {
        let a = vec![0, 0, 1];
        let b = vec![1, 1, 0];
        let cm = ConfusionMatrix::from_labels(&a, &b, 2).unwrap();
        assert_eq!(cm.count(0, 1), 2);
        assert_eq!(cm.count(1, 0), 1);
        assert_eq!(cm.count(0, 0), 0);
        assert_eq!(cm.total(), 3);
        assert_eq!(cm.k(), 2);
    }

    #[test]
    fn validation_errors() {
        assert!(matches!(
            ConfusionMatrix::from_labels(&[0], &[0, 1], 2),
            Err(EvalError::LengthMismatch { .. })
        ));
        assert!(matches!(
            ConfusionMatrix::from_labels(&[], &[], 2),
            Err(EvalError::EmptyInput(_))
        ));
        assert!(matches!(
            ConfusionMatrix::from_labels(&[5], &[0], 2),
            Err(EvalError::LabelOutOfRange { .. })
        ));
        assert!(ConfusionMatrix::from_labels(&[0], &[0], 0).is_err());
    }

    #[test]
    fn agreement_never_below_raw() {
        // Optimal matching can only improve the diagonal.
        let a = vec![0, 1, 2, 0, 1, 2, 1, 2, 0, 0];
        let b = vec![1, 1, 2, 0, 2, 2, 1, 0, 0, 1];
        let cm = ConfusionMatrix::from_labels(&a, &b, 3).unwrap();
        assert!(cm.agreement() >= cm.raw_agreement());
    }

    #[test]
    fn convenience_function() {
        let a = vec![0, 0, 1, 1];
        let b = vec![1, 1, 0, 0];
        assert_eq!(clustering_agreement(&a, &b, 2).unwrap(), 1.0);
    }
}
