//! Sketch-accuracy measures — paper §4.1, Definitions 7–9.
//!
//! These quantify how well estimated distances track exact distances over
//! a batch of experiments:
//!
//! * **cumulative correctness** (Def. 7): ratio of summed estimates to
//!   summed exact distances — long-run aggregate accuracy;
//! * **average correctness** (Def. 8): one minus the mean relative error;
//! * **pairwise comparison correctness** (Def. 9): how often the estimate
//!   orders a pair of candidate distances the same way the exact values do
//!   — the quantity that actually matters for clustering.

use crate::EvalError;

/// One (estimate, exact) distance observation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DistancePair {
    /// The sketched estimate `‖X − Y‖̂_p`.
    pub estimated: f64,
    /// The exact distance `‖X − Y‖_p`.
    pub exact: f64,
}

/// Cumulative correctness (Definition 7):
/// `Σ estimated / Σ exact`.
///
/// A value of 1.0 is perfect; values above/below 1.0 indicate systematic
/// over/under-estimation.
///
/// # Errors
///
/// Returns [`EvalError::EmptyInput`] for no observations and
/// [`EvalError::DegenerateInput`] when the exact distances sum to zero.
pub fn cumulative_correctness(pairs: &[DistancePair]) -> Result<f64, EvalError> {
    if pairs.is_empty() {
        return Err(EvalError::EmptyInput("cumulative correctness"));
    }
    let est: f64 = pairs.iter().map(|p| p.estimated).sum();
    let exact: f64 = pairs.iter().map(|p| p.exact).sum();
    if exact == 0.0 {
        return Err(EvalError::DegenerateInput("exact distances sum to zero"));
    }
    Ok(est / exact)
}

/// Average correctness (Definition 8):
/// `1 − (1/k) Σ |1 − estimated/exact|`.
///
/// Observations with `exact == 0` contribute their full estimate as error
/// when the estimate is non-zero and are perfect otherwise.
///
/// # Errors
///
/// Returns [`EvalError::EmptyInput`] for no observations.
pub fn average_correctness(pairs: &[DistancePair]) -> Result<f64, EvalError> {
    if pairs.is_empty() {
        return Err(EvalError::EmptyInput("average correctness"));
    }
    let total_err: f64 = pairs
        .iter()
        .map(|p| {
            if p.exact == 0.0 {
                if p.estimated == 0.0 {
                    0.0
                } else {
                    1.0
                }
            } else {
                (1.0 - p.estimated / p.exact).abs()
            }
        })
        .sum();
    Ok(1.0 - total_err / pairs.len() as f64)
}

/// One three-way comparison experiment: is `X` closer to `Y` or to `Z`?
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ComparisonTriple {
    /// Estimated `‖X − Y‖̂`.
    pub est_xy: f64,
    /// Estimated `‖X − Z‖̂`.
    pub est_xz: f64,
    /// Exact `‖X − Y‖`.
    pub exact_xy: f64,
    /// Exact `‖X − Z‖`.
    pub exact_xz: f64,
}

impl ComparisonTriple {
    /// Whether the sketched comparison agrees with the exact one.
    ///
    /// Following the paper's xor formulation: the experiment counts as
    /// correct when `exact_xy < exact_xz` and `est_xy < est_xz` agree
    /// (or both disagree). Ties in either comparison count as correct
    /// only when both are ties.
    pub fn agrees(&self) -> bool {
        let exact = self.exact_xy.partial_cmp(&self.exact_xz);
        let est = self.est_xy.partial_cmp(&self.est_xz);
        exact == est
    }
}

/// Pairwise comparison correctness (Definition 9): the fraction of
/// experiments whose sketched comparison matches the exact comparison.
///
/// # Errors
///
/// Returns [`EvalError::EmptyInput`] for no experiments.
pub fn pairwise_comparison_correctness(triples: &[ComparisonTriple]) -> Result<f64, EvalError> {
    if triples.is_empty() {
        return Err(EvalError::EmptyInput("pairwise comparison correctness"));
    }
    let agreeing = triples.iter().filter(|t| t.agrees()).count();
    Ok(agreeing as f64 / triples.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cumulative_perfect_and_biased() {
        let perfect = vec![
            DistancePair {
                estimated: 2.0,
                exact: 2.0,
            },
            DistancePair {
                estimated: 3.0,
                exact: 3.0,
            },
        ];
        assert_eq!(cumulative_correctness(&perfect).unwrap(), 1.0);
        let high = vec![DistancePair {
            estimated: 6.0,
            exact: 5.0,
        }];
        assert!((cumulative_correctness(&high).unwrap() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn cumulative_cancels_symmetric_errors() {
        // Over- and under-estimates cancel in the cumulative measure —
        // that is why the paper also reports average correctness.
        let pairs = vec![
            DistancePair {
                estimated: 8.0,
                exact: 10.0,
            },
            DistancePair {
                estimated: 12.0,
                exact: 10.0,
            },
        ];
        assert_eq!(cumulative_correctness(&pairs).unwrap(), 1.0);
        assert!((average_correctness(&pairs).unwrap() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn average_correctness_perfect_is_one() {
        let pairs = vec![DistancePair {
            estimated: 4.0,
            exact: 4.0,
        }];
        assert_eq!(average_correctness(&pairs).unwrap(), 1.0);
    }

    #[test]
    fn zero_exact_handled() {
        let both_zero = vec![DistancePair {
            estimated: 0.0,
            exact: 0.0,
        }];
        assert_eq!(average_correctness(&both_zero).unwrap(), 1.0);
        assert!(cumulative_correctness(&both_zero).is_err());
        let est_nonzero = vec![DistancePair {
            estimated: 1.0,
            exact: 0.0,
        }];
        assert_eq!(average_correctness(&est_nonzero).unwrap(), 0.0);
    }

    #[test]
    fn empty_inputs_error() {
        assert!(cumulative_correctness(&[]).is_err());
        assert!(average_correctness(&[]).is_err());
        assert!(pairwise_comparison_correctness(&[]).is_err());
    }

    #[test]
    fn comparison_agreement() {
        let right = ComparisonTriple {
            est_xy: 1.0,
            est_xz: 2.0,
            exact_xy: 10.0,
            exact_xz: 20.0,
        };
        assert!(right.agrees());
        let wrong = ComparisonTriple {
            est_xy: 2.0,
            est_xz: 1.0,
            exact_xy: 10.0,
            exact_xz: 20.0,
        };
        assert!(!wrong.agrees());
        let tie_both = ComparisonTriple {
            est_xy: 1.0,
            est_xz: 1.0,
            exact_xy: 5.0,
            exact_xz: 5.0,
        };
        assert!(tie_both.agrees());
        let tie_est_only = ComparisonTriple {
            est_xy: 1.0,
            est_xz: 1.0,
            exact_xy: 5.0,
            exact_xz: 6.0,
        };
        assert!(!tie_est_only.agrees());
    }

    #[test]
    fn pairwise_fraction() {
        let triples = vec![
            ComparisonTriple {
                est_xy: 1.0,
                est_xz: 2.0,
                exact_xy: 1.0,
                exact_xz: 2.0,
            },
            ComparisonTriple {
                est_xy: 2.0,
                est_xz: 1.0,
                exact_xy: 1.0,
                exact_xz: 2.0,
            },
            ComparisonTriple {
                est_xy: 3.0,
                est_xz: 4.0,
                exact_xy: 5.0,
                exact_xz: 9.0,
            },
            ComparisonTriple {
                est_xy: 3.0,
                est_xz: 4.0,
                exact_xy: 9.0,
                exact_xz: 5.0,
            },
        ];
        assert_eq!(pairwise_comparison_correctness(&triples).unwrap(), 0.5);
    }
}
