//! # tabsketch-eval
//!
//! The accuracy and clustering-quality measures of the paper's §4.1:
//!
//! * Definitions 7–9 — [`correctness`]: cumulative, average, and pairwise
//!   comparison correctness of sketched distances;
//! * Definition 10 — [`confusion`]: confusion-matrix agreement between two
//!   clusterings, with optimal label matching via a full Hungarian
//!   assignment solver ([`hungarian`]);
//! * Definition 11 — [`spread`]: cluster spread and the quality ratio of a
//!   sketched clustering versus the exact one.
//!
//! This crate is deliberately dependency-free: it consumes plain slices of
//! labels and distances so it can score any clustering implementation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agreement;
pub mod confusion;
pub mod correctness;
pub mod hungarian;
pub mod spread;

pub use agreement::{adjusted_rand_index, normalized_mutual_information, rand_index};
pub use confusion::{clustering_agreement, ConfusionMatrix};
pub use correctness::{
    average_correctness, cumulative_correctness, pairwise_comparison_correctness, ComparisonTriple,
    DistancePair,
};
pub use spread::{clustering_quality, Spreads};

/// Errors produced by the evaluation measures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvalError {
    /// A measure was asked of an empty input; the message names it.
    EmptyInput(&'static str),
    /// Parallel inputs had different lengths.
    LengthMismatch {
        /// Length of the first input.
        left: usize,
        /// Length of the second input.
        right: usize,
    },
    /// A cluster label exceeded the declared cluster count.
    LabelOutOfRange {
        /// The offending label.
        label: usize,
        /// The declared number of clusters.
        k: usize,
    },
    /// The input was structurally valid but the measure is undefined on it.
    DegenerateInput(&'static str),
}

impl core::fmt::Display for EvalError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            EvalError::EmptyInput(what) => write!(f, "{what}: empty input"),
            EvalError::LengthMismatch { left, right } => {
                write!(f, "input length mismatch: {left} vs {right}")
            }
            EvalError::LabelOutOfRange { label, k } => {
                write!(f, "cluster label {label} out of range for k={k}")
            }
            EvalError::DegenerateInput(msg) => write!(f, "degenerate input: {msg}"),
        }
    }
}

impl std::error::Error for EvalError {}
