//! Pair-counting and information-theoretic clustering-agreement measures.
//!
//! The paper scores clusterings with its confusion-matrix agreement
//! (Definition 10); these are the standard complementary measures a
//! library user expects when comparing clusterings of the same objects:
//!
//! * [`rand_index`] — fraction of object pairs on which the clusterings
//!   agree (same/same or different/different);
//! * [`adjusted_rand_index`] — the Rand index corrected for chance
//!   (Hubert–Arabie), 1.0 for identical partitions, ≈0 for independent;
//! * [`normalized_mutual_information`] — mutual information of the two
//!   labelings normalized by the mean entropy.
//!
//! All measures are invariant under relabeling either clustering, so no
//! Hungarian matching is required.

use crate::{ConfusionMatrix, EvalError};

fn contingency(a: &[usize], b: &[usize], k: usize) -> Result<ConfusionMatrix, EvalError> {
    ConfusionMatrix::from_labels(a, b, k)
}

/// `n choose 2` as a float.
#[inline]
fn choose2(n: usize) -> f64 {
    (n as f64) * (n as f64 - 1.0) / 2.0
}

/// The Rand index in `[0, 1]`: the fraction of unordered object pairs
/// that both clusterings treat the same way.
///
/// # Errors
///
/// Propagates label validation errors; requires at least two objects.
pub fn rand_index(a: &[usize], b: &[usize], k: usize) -> Result<f64, EvalError> {
    if a.len() < 2 {
        return Err(EvalError::DegenerateInput(
            "rand index needs at least two objects",
        ));
    }
    let cm = contingency(a, b, k)?;
    let n = cm.total();
    let total_pairs = choose2(n);
    // Pairs together in both = Σ C(n_ij, 2); together in a = Σ C(a_i, 2);
    // together in b = Σ C(b_j, 2).
    let mut together_both = 0.0;
    let mut row_sums = vec![0usize; k];
    let mut col_sums = vec![0usize; k];
    for (i, row_sum) in row_sums.iter_mut().enumerate() {
        for (j, col_sum) in col_sums.iter_mut().enumerate() {
            let c = cm.count(i, j);
            together_both += choose2(c);
            *row_sum += c;
            *col_sum += c;
        }
    }
    let together_a: f64 = row_sums.iter().map(|&c| choose2(c)).sum();
    let together_b: f64 = col_sums.iter().map(|&c| choose2(c)).sum();
    // Agreements = pairs together in both + pairs separate in both.
    let agreements = together_both + (total_pairs - together_a - together_b + together_both);
    Ok(agreements / total_pairs)
}

/// The Hubert–Arabie adjusted Rand index: 1.0 for identical partitions,
/// expected value ≈ 0 for independent random partitions; can be negative.
///
/// # Errors
///
/// Propagates label validation errors; requires at least two objects.
pub fn adjusted_rand_index(a: &[usize], b: &[usize], k: usize) -> Result<f64, EvalError> {
    if a.len() < 2 {
        return Err(EvalError::DegenerateInput("ARI needs at least two objects"));
    }
    let cm = contingency(a, b, k)?;
    let n = cm.total();
    let mut sum_ij = 0.0;
    let mut row_sums = vec![0usize; k];
    let mut col_sums = vec![0usize; k];
    for (i, row_sum) in row_sums.iter_mut().enumerate() {
        for (j, col_sum) in col_sums.iter_mut().enumerate() {
            let c = cm.count(i, j);
            sum_ij += choose2(c);
            *row_sum += c;
            *col_sum += c;
        }
    }
    let sum_a: f64 = row_sums.iter().map(|&c| choose2(c)).sum();
    let sum_b: f64 = col_sums.iter().map(|&c| choose2(c)).sum();
    let expected = sum_a * sum_b / choose2(n);
    let max_index = 0.5 * (sum_a + sum_b);
    let denom = max_index - expected;
    if denom == 0.0 {
        // Both partitions are all-singletons or all-one-cluster: they are
        // identical partitions, so agreement is perfect.
        return Ok(1.0);
    }
    Ok((sum_ij - expected) / denom)
}

/// Normalized mutual information in `[0, 1]`, normalized by the
/// arithmetic mean of the two label entropies. Returns 1.0 when both
/// partitions are identical single-cluster labelings (zero entropy).
///
/// # Errors
///
/// Propagates label validation errors.
pub fn normalized_mutual_information(a: &[usize], b: &[usize], k: usize) -> Result<f64, EvalError> {
    let cm = contingency(a, b, k)?;
    let n = cm.total() as f64;
    let mut row_sums = vec![0usize; k];
    let mut col_sums = vec![0usize; k];
    for (i, row_sum) in row_sums.iter_mut().enumerate() {
        for (j, col_sum) in col_sums.iter_mut().enumerate() {
            let c = cm.count(i, j);
            *row_sum += c;
            *col_sum += c;
        }
    }
    let entropy = |sums: &[usize]| -> f64 {
        sums.iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / n;
                -p * p.ln()
            })
            .sum()
    };
    let ha = entropy(&row_sums);
    let hb = entropy(&col_sums);
    let mut mi = 0.0;
    for (i, &ri) in row_sums.iter().enumerate() {
        for (j, &cj) in col_sums.iter().enumerate() {
            let c = cm.count(i, j);
            if c > 0 {
                let pij = c as f64 / n;
                let pi = ri as f64 / n;
                let pj = cj as f64 / n;
                mi += pij * (pij / (pi * pj)).ln();
            }
        }
    }
    let mean_h = 0.5 * (ha + hb);
    if mean_h == 0.0 {
        // Both labelings are constant: identical trivial partitions.
        return Ok(1.0);
    }
    Ok((mi / mean_h).clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_partitions_score_one() {
        let labels = vec![0, 0, 1, 1, 2, 2, 2];
        assert_eq!(rand_index(&labels, &labels, 3).unwrap(), 1.0);
        assert_eq!(adjusted_rand_index(&labels, &labels, 3).unwrap(), 1.0);
        assert!((normalized_mutual_information(&labels, &labels, 3).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn relabeling_invariance() {
        let a = vec![0, 0, 1, 1, 2, 2];
        let b = vec![2, 2, 0, 0, 1, 1];
        assert_eq!(rand_index(&a, &b, 3).unwrap(), 1.0);
        assert_eq!(adjusted_rand_index(&a, &b, 3).unwrap(), 1.0);
        assert!((normalized_mutual_information(&a, &b, 3).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_rand_index_value() {
        // a: {0,1},{2,3}; b: {0},{1,2,3}.
        // Pairs: (0,1) together-a/apart-b ✗; (0,2) apart/apart ✓;
        // (0,3) apart/apart ✓; (1,2) apart/together ✗; (1,3) apart/together ✗;
        // (2,3) together/together ✓. RI = 3/6.
        let a = vec![0, 0, 1, 1];
        let b = vec![0, 1, 1, 1];
        assert!((rand_index(&a, &b, 2).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ari_is_near_zero_for_unrelated_partitions() {
        // Interleaved labels share no structure with block labels.
        let a: Vec<usize> = (0..40).map(|i| i / 20).collect(); // blocks
        let b: Vec<usize> = (0..40).map(|i| i % 2).collect(); // stripes
        let ari = adjusted_rand_index(&a, &b, 2).unwrap();
        assert!(
            ari.abs() < 0.1,
            "ARI of independent partitions ≈ 0, got {ari}"
        );
        // Plain Rand index is NOT chance-corrected and sits near 0.5 here.
        let ri = rand_index(&a, &b, 2).unwrap();
        assert!((ri - 0.5).abs() < 0.05, "RI {ri}");
    }

    #[test]
    fn partial_overlap_is_between_zero_and_one() {
        let a = vec![0, 0, 0, 1, 1, 1];
        let b = vec![0, 0, 1, 1, 1, 1];
        for value in [
            rand_index(&a, &b, 2).unwrap(),
            adjusted_rand_index(&a, &b, 2).unwrap(),
            normalized_mutual_information(&a, &b, 2).unwrap(),
        ] {
            assert!(value > 0.0 && value < 1.0, "{value}");
        }
    }

    #[test]
    fn degenerate_inputs() {
        assert!(rand_index(&[0], &[0], 1).is_err());
        assert!(adjusted_rand_index(&[0], &[0], 1).is_err());
        // Constant labelings: identical trivial partitions.
        let ones = vec![0, 0, 0];
        assert_eq!(adjusted_rand_index(&ones, &ones, 1).unwrap(), 1.0);
        assert_eq!(normalized_mutual_information(&ones, &ones, 1).unwrap(), 1.0);
    }

    #[test]
    fn symmetry_in_arguments() {
        let a = vec![0, 1, 0, 2, 1, 2, 0];
        let b = vec![1, 1, 0, 2, 2, 2, 0];
        assert_eq!(
            rand_index(&a, &b, 3).unwrap(),
            rand_index(&b, &a, 3).unwrap()
        );
        assert_eq!(
            adjusted_rand_index(&a, &b, 3).unwrap(),
            adjusted_rand_index(&b, &a, 3).unwrap()
        );
        let nab = normalized_mutual_information(&a, &b, 3).unwrap();
        let nba = normalized_mutual_information(&b, &a, 3).unwrap();
        assert!((nab - nba).abs() < 1e-12);
    }
}
