//! Property-based tests for the evaluation measures.

use proptest::prelude::*;

use tabsketch_eval::hungarian::{solve_max, solve_min};
use tabsketch_eval::{
    average_correctness, clustering_agreement, cumulative_correctness, ConfusionMatrix,
    DistancePair, Spreads,
};

fn labels_strategy(k: usize, len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0..k, len)
}

fn all_permutations(n: usize) -> Vec<Vec<usize>> {
    if n == 0 {
        return vec![vec![]];
    }
    let mut out = Vec::new();
    for perm in all_permutations(n - 1) {
        for pos in 0..n {
            let mut p = perm.clone();
            p.insert(pos, n - 1);
            out.push(p);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Hungarian result is a permutation and achieves the brute-force
    /// optimum (n <= 5).
    #[test]
    fn hungarian_is_optimal(n in 1usize..=5, seed in 0u64..10_000) {
        let mut s = seed | 1;
        let mut next = move || { s ^= s << 13; s ^= s >> 7; s ^= s << 17; (s % 2000) as f64 / 10.0 - 100.0 };
        let cost: Vec<f64> = (0..n * n).map(|_| next()).collect();
        let (assignment, total) = solve_min(&cost, n);
        // Permutation check.
        let mut seen = vec![false; n];
        for &j in &assignment {
            prop_assert!(j < n && !seen[j]);
            seen[j] = true;
        }
        // Optimality check.
        let brute = all_permutations(n)
            .into_iter()
            .map(|p| (0..n).map(|i| cost[i * n + p[i]]).sum::<f64>())
            .fold(f64::INFINITY, f64::min);
        prop_assert!((total - brute).abs() < 1e-9, "hungarian {total} vs brute {brute}");
    }

    /// max-assignment equals negated min-assignment.
    #[test]
    fn hungarian_max_min_duality(n in 1usize..=5, seed in 0u64..1000) {
        let mut s = seed | 1;
        let mut next = move || { s ^= s << 13; s ^= s >> 7; s ^= s << 17; (s % 100) as f64 };
        let w: Vec<f64> = (0..n * n).map(|_| next()).collect();
        let (_, hi) = solve_max(&w, n);
        let neg: Vec<f64> = w.iter().map(|&x| -x).collect();
        let (_, lo) = solve_min(&neg, n);
        prop_assert!((hi + lo).abs() < 1e-9);
    }

    /// Agreement is invariant under relabeling either clustering.
    #[test]
    fn agreement_permutation_invariant(labels in labels_strategy(4, 1..60), seed in 0u64..100) {
        // Build a permutation of 0..4 from the seed.
        let mut perm = [0usize, 1, 2, 3];
        let mut s = seed | 1;
        for i in (1..4).rev() {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            perm.swap(i, (s % (i as u64 + 1)) as usize);
        }
        let renamed: Vec<usize> = labels.iter().map(|&l| perm[l]).collect();
        let a = clustering_agreement(&labels, &renamed, 4).unwrap();
        prop_assert_eq!(a, 1.0, "relabeled clustering must agree fully");
    }

    /// Agreement is symmetric and within [diag-fraction, 1].
    #[test]
    fn agreement_bounds(a in labels_strategy(3, 1..50), seed in 0u64..100) {
        let mut s = seed | 1;
        let b: Vec<usize> = a.iter().map(|&l| {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            if s % 4 == 0 { (l + 1) % 3 } else { l }
        }).collect();
        let ab = ConfusionMatrix::from_labels(&a, &b, 3).unwrap();
        let ba = ConfusionMatrix::from_labels(&b, &a, 3).unwrap();
        prop_assert!((ab.agreement() - ba.agreement()).abs() < 1e-12);
        prop_assert!(ab.agreement() >= ab.raw_agreement());
        prop_assert!(ab.agreement() <= 1.0 + 1e-12);
        prop_assert!(ab.agreement() > 0.0);
    }

    /// Cumulative correctness of perfectly-scaled estimates equals the
    /// scale; average correctness equals 1 - |1 - scale|.
    #[test]
    fn correctness_of_uniformly_scaled_estimates(
        exact in proptest::collection::vec(0.1f64..1e4, 1..40),
        scale in 0.5f64..1.5,
    ) {
        let pairs: Vec<DistancePair> = exact
            .iter()
            .map(|&e| DistancePair { estimated: scale * e, exact: e })
            .collect();
        let cum = cumulative_correctness(&pairs).unwrap();
        prop_assert!((cum - scale).abs() < 1e-9);
        let avg = average_correctness(&pairs).unwrap();
        prop_assert!((avg - (1.0 - (1.0 - scale).abs())).abs() < 1e-9);
    }

    /// Spreads partition the total: summing per-cluster spreads equals
    /// summing all distances.
    #[test]
    fn spreads_partition_total(assignments in labels_strategy(5, 0..50)) {
        let distances: Vec<f64> = assignments.iter().map(|&a| a as f64 + 0.5).collect();
        let s = Spreads::from_assignments(&assignments, &distances, 5).unwrap();
        let direct: f64 = distances.iter().sum();
        prop_assert!((s.total() - direct).abs() < 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// ARI and NMI are invariant under any relabeling of either input,
    /// and symmetric in their arguments.
    #[test]
    fn ari_nmi_relabeling_invariance(labels in labels_strategy(3, 2..50), seed in 0u64..100) {
        use tabsketch_eval::{adjusted_rand_index, normalized_mutual_information};
        let mut perm = [0usize, 1, 2];
        let mut s = seed | 1;
        for i in (1..3).rev() {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            perm.swap(i, (s % (i as u64 + 1)) as usize);
        }
        let renamed: Vec<usize> = labels.iter().map(|&l| perm[l]).collect();
        let ari = adjusted_rand_index(&labels, &renamed, 3).unwrap();
        prop_assert!((ari - 1.0).abs() < 1e-9, "ARI of a relabeling is 1, got {}", ari);
        let nmi = normalized_mutual_information(&labels, &renamed, 3).unwrap();
        prop_assert!((nmi - 1.0).abs() < 1e-9, "NMI of a relabeling is 1, got {}", nmi);
    }

    /// Rand index is symmetric and bounded in [0, 1]; ARI never exceeds 1.
    #[test]
    fn pair_measures_bounds(a in labels_strategy(4, 2..60), seed in 0u64..100) {
        use tabsketch_eval::{adjusted_rand_index, rand_index};
        let mut s = seed | 1;
        let b: Vec<usize> = a.iter().map(|&l| {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            if s % 3 == 0 { (l + 1) % 4 } else { l }
        }).collect();
        let ri_ab = rand_index(&a, &b, 4).unwrap();
        let ri_ba = rand_index(&b, &a, 4).unwrap();
        prop_assert!((ri_ab - ri_ba).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&ri_ab));
        let ari = adjusted_rand_index(&a, &b, 4).unwrap();
        prop_assert!(ari <= 1.0 + 1e-12);
    }
}
