//! Error type for tabular-data operations.

use core::fmt;

/// Errors produced by the `tabsketch-table` crate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TableError {
    /// A table was constructed with a buffer whose length disagrees with the
    /// declared dimensions.
    DimensionMismatch {
        /// Declared rows.
        rows: usize,
        /// Declared columns.
        cols: usize,
        /// Provided buffer length.
        len: usize,
    },
    /// A table dimension was zero.
    EmptyDimension,
    /// A rectangle does not fit inside the table it was applied to.
    RectOutOfBounds {
        /// The offending rectangle, as `(row, col, rows, cols)`.
        rect: (usize, usize, usize, usize),
        /// Table rows.
        table_rows: usize,
        /// Table columns.
        table_cols: usize,
    },
    /// Two operands were required to have identical shapes.
    ShapeMismatch {
        /// Shape of the left operand `(rows, cols)`.
        left: (usize, usize),
        /// Shape of the right operand `(rows, cols)`.
        right: (usize, usize),
    },
    /// A tile size does not evenly relate to the table (e.g. zero-sized).
    InvalidTileSize {
        /// Requested tile rows.
        tile_rows: usize,
        /// Requested tile columns.
        tile_cols: usize,
    },
    /// A cell value was NaN or infinite where only finite values are
    /// allowed.
    NonFinite {
        /// Row of the offending cell.
        row: usize,
        /// Column of the offending cell.
        col: usize,
    },
    /// A stored table failed structural validation: bad magic, version,
    /// checksum mismatch, truncation, or an implausible header.
    Corrupt {
        /// Which part of the file failed (e.g. `"magic"`, `"header"`,
        /// `"body"`).
        section: &'static str,
        /// Human-readable description of the failure.
        detail: String,
    },
    /// An I/O or parse failure while loading/saving a table.
    Io(String),
    /// A collection manifest failed to parse: bad grammar on a line,
    /// a duplicate member name, or an empty member list.
    Manifest {
        /// 1-based line number of the offending manifest line (0 for
        /// whole-file problems such as an empty manifest).
        line: usize,
        /// What was wrong with the line.
        reason: String,
    },
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::DimensionMismatch { rows, cols, len } => {
                write!(
                    f,
                    "buffer of length {len} cannot form a {rows}x{cols} table"
                )
            }
            TableError::EmptyDimension => write!(f, "table dimensions must be non-zero"),
            TableError::RectOutOfBounds {
                rect,
                table_rows,
                table_cols,
            } => write!(
                f,
                "rect (row={}, col={}, rows={}, cols={}) out of bounds for {}x{} table",
                rect.0, rect.1, rect.2, rect.3, table_rows, table_cols
            ),
            TableError::ShapeMismatch { left, right } => write!(
                f,
                "shape mismatch: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
            TableError::InvalidTileSize {
                tile_rows,
                tile_cols,
            } => {
                write!(f, "invalid tile size {tile_rows}x{tile_cols}")
            }
            TableError::NonFinite { row, col } => {
                write!(f, "non-finite value at cell ({row}, {col})")
            }
            TableError::Corrupt { section, detail } => {
                write!(f, "corrupt table file ({section}): {detail}")
            }
            TableError::Io(msg) => write!(f, "table I/O error: {msg}"),
            TableError::Manifest { line, reason } => {
                if *line == 0 {
                    write!(f, "manifest: {reason}")
                } else {
                    write!(f, "manifest line {line}: {reason}")
                }
            }
        }
    }
}

impl TableError {
    /// Builds a [`TableError::Corrupt`] for `section` with a formatted
    /// detail message.
    pub fn corrupt(section: &'static str, detail: impl Into<String>) -> Self {
        TableError::Corrupt {
            section,
            detail: detail.into(),
        }
    }

    /// Builds a [`TableError::Manifest`] for 1-based `line` with a
    /// formatted reason.
    pub fn manifest(line: usize, reason: impl Into<String>) -> Self {
        TableError::Manifest {
            line,
            reason: reason.into(),
        }
    }

    /// Classifies a read failure in `section`: an unexpected EOF means the
    /// file is truncated (a corruption, not an I/O fault); everything else
    /// stays an I/O error.
    pub fn from_read_error(section: &'static str, e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            TableError::corrupt(section, "unexpected end of file (truncated)")
        } else {
            TableError::Io(e.to_string())
        }
    }
}

impl std::error::Error for TableError {}

impl From<std::io::Error> for TableError {
    fn from(e: std::io::Error) -> Self {
        TableError::Io(e.to_string())
    }
}
