//! The tabular data model: a handle over a storage backend.

use std::sync::Arc;

use crate::storage::{MemoryBudget, RowChunks, RowGuard, SpillWriter, TableStorage};
use crate::update::{TableEpoch, TableUpdate};
use crate::{Rect, TableError};

/// A row-major table of `f64` values.
///
/// This is the paper's "tabular data": a matrix indexed by, say,
/// geographically-ordered stations (rows) and time slots (columns). The
/// values live in a [`TableStorage`] backend: dense in RAM (the default
/// for every constructor) or spilled to a checksummed temp file under a
/// [`MemoryBudget`] (see [`Table::with_budget`] and the streaming
/// loaders in [`crate::io`]).
///
/// Dense-only accessors ([`Table::as_slice`], [`Table::as_mut_slice`],
/// [`Table::row`], [`Table::row_iter`], [`Table::into_vec`],
/// [`Table::set`]) panic on spilled tables; backend-agnostic code uses
/// [`Table::row_chunks`], [`Table::row_window`], or [`Table::view`].
///
/// ```
/// use tabsketch_table::Table;
///
/// let t = Table::from_rows(&[
///     vec![1.0, 2.0],
///     vec![3.0, 4.0],
/// ]).unwrap();
/// assert_eq!(t.get(1, 0), 3.0);
/// assert_eq!(t.shape(), (2, 2));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    rows: usize,
    cols: usize,
    storage: TableStorage,
    /// Bumped by [`Table::apply_update`]; excluded from `PartialEq`.
    epoch: TableEpoch,
}

impl Table {
    /// Creates a dense table from a row-major buffer.
    ///
    /// Every cell must be finite: NaN silently poisons the median-based
    /// distance estimators downstream, so it is rejected at ingestion
    /// rather than estimated around.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::EmptyDimension`] for zero-sized dimensions,
    /// [`TableError::DimensionMismatch`] when `data.len() != rows * cols`,
    /// and [`TableError::NonFinite`] when a cell is NaN or infinite.
    pub fn new(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, TableError> {
        if rows == 0 || cols == 0 {
            return Err(TableError::EmptyDimension);
        }
        if data.len() != rows * cols {
            return Err(TableError::DimensionMismatch {
                rows,
                cols,
                len: data.len(),
            });
        }
        if let Some(i) = data.iter().position(|v| !v.is_finite()) {
            return Err(TableError::NonFinite {
                row: i / cols,
                col: i % cols,
            });
        }
        Ok(Self {
            rows,
            cols,
            storage: TableStorage::Dense(data),
            epoch: TableEpoch::default(),
        })
    }

    /// Wraps an already-finalized spilled backend (the [`SpillWriter`]
    /// path).
    pub(crate) fn from_spilled(
        rows: usize,
        cols: usize,
        storage: crate::storage::SpilledStorage,
    ) -> Self {
        Table {
            rows,
            cols,
            storage: TableStorage::Spilled(storage),
            epoch: TableEpoch::default(),
        }
    }

    /// Creates a zero-filled table.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::EmptyDimension`] for zero-sized dimensions.
    pub fn zeros(rows: usize, cols: usize) -> Result<Self, TableError> {
        Self::new(rows, cols, vec![0.0; rows.checked_mul(cols).unwrap_or(0)])
    }

    /// Creates a table by evaluating `f(row, col)` for every cell.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::EmptyDimension`] for zero-sized dimensions.
    pub fn from_fn(
        rows: usize,
        cols: usize,
        mut f: impl FnMut(usize, usize) -> f64,
    ) -> Result<Self, TableError> {
        if rows == 0 || cols == 0 {
            return Err(TableError::EmptyDimension);
        }
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self::new(rows, cols, data)
    }

    /// Creates a table from a slice of equal-length rows.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::EmptyDimension`] when there are no rows or the
    /// first row is empty, and [`TableError::ShapeMismatch`] when row
    /// lengths differ.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, TableError> {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, Vec::len);
        if nrows == 0 || ncols == 0 {
            return Err(TableError::EmptyDimension);
        }
        let mut data = Vec::with_capacity(nrows * ncols);
        for row in rows {
            if row.len() != ncols {
                return Err(TableError::ShapeMismatch {
                    left: (1, ncols),
                    right: (1, row.len()),
                });
            }
            data.extend_from_slice(row);
        }
        Self::new(nrows, ncols, data)
    }

    /// Re-homes the table under `budget`: a dense table larger than the
    /// budget is spilled to a checksummed temp file (values unchanged,
    /// bit for bit); tables that already fit — or are already spilled —
    /// are returned as-is.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from writing the spill file.
    pub fn with_budget(self, budget: MemoryBudget) -> Result<Table, TableError> {
        let Some(limit) = budget.get() else {
            return Ok(self);
        };
        let data = match self.storage {
            TableStorage::Spilled(_) => return Ok(self),
            TableStorage::Dense(ref data) if (data.len() * 8) as u64 <= limit => return Ok(self),
            TableStorage::Dense(data) => data,
        };
        let mut w = SpillWriter::with_cols(self.cols, budget);
        w.push_values(&data)?;
        drop(data);
        let mut spilled = w.finish()?;
        spilled.epoch = self.epoch;
        Ok(spilled)
    }

    /// The storage backend holding this table's values.
    #[inline]
    pub fn storage(&self) -> &TableStorage {
        &self.storage
    }

    /// Whether the values live in a spilled (out-of-core) backend.
    #[inline]
    pub fn is_spilled(&self) -> bool {
        matches!(self.storage, TableStorage::Spilled(_))
    }

    /// The table's update epoch: 0 at construction, bumped by every
    /// successful [`Table::apply_update`]. Derived structures compare
    /// epochs to detect that their inputs moved.
    #[inline]
    pub fn epoch(&self) -> TableEpoch {
        self.epoch
    }

    /// Applies an additive delta to the table, on either backend, and
    /// bumps the epoch. Dense tables are patched in place; spilled
    /// tables rewrite the affected chunks (resident copies and the spill
    /// file, with fresh checksums).
    ///
    /// The patch is atomic with respect to validation: bounds, shape,
    /// and result-finiteness (`old + delta` must stay finite) are all
    /// checked before the first cell is written, so a rejected update
    /// leaves the table — and its epoch — untouched. A torn spill-file
    /// write is the one non-atomic failure: the error is returned and
    /// later reads of the torn chunk surface
    /// [`TableError::Corrupt`]`{ section: "spill-chunk" }` rather than
    /// stale values.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::RectOutOfBounds`] /
    /// [`TableError::ShapeMismatch`] when the update does not fit,
    /// [`TableError::NonFinite`] when a patched cell would leave the
    /// finite domain, and I/O or [`TableError::Corrupt`] errors from
    /// rewriting spilled chunks.
    pub fn apply_update(&mut self, update: &TableUpdate) -> Result<TableEpoch, TableError> {
        let applied = self.try_apply(update);
        match applied {
            Ok(()) => {
                self.epoch = self.epoch.next();
                tabsketch_obs::counter!("table.updates.applied").inc();
                tabsketch_obs::counter!("table.updates.cells").add(update.cell_count() as u64);
                Ok(self.epoch)
            }
            Err(e) => {
                tabsketch_obs::counter!("table.updates.rejected").inc();
                Err(e)
            }
        }
    }

    fn try_apply(&mut self, update: &TableUpdate) -> Result<(), TableError> {
        update.validate_for(self.rows, self.cols)?;
        let cols = self.cols;
        match &mut self.storage {
            TableStorage::Dense(data) => {
                // Two-phase: reject before the first write so a rejected
                // update cannot leave the table half-patched.
                for (r, c, delta) in update.cells() {
                    if !(data[r * cols + c] + delta).is_finite() {
                        return Err(TableError::NonFinite { row: r, col: c });
                    }
                }
                for (r, c, delta) in update.cells() {
                    data[r * cols + c] += delta;
                }
                Ok(())
            }
            TableStorage::Spilled(s) => {
                let cells: Vec<(usize, usize, f64)> = update.cells().collect();
                s.patch_cells(&cells)
            }
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of cells.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// Always false: empty tables cannot be constructed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The rectangle covering the whole table.
    #[inline]
    pub fn bounding_rect(&self) -> Rect {
        Rect::new(0, 0, self.rows, self.cols)
    }

    /// Reads the cell at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds (hot-path accessor; use
    /// [`Table::try_get`] for checked access), and when a spilled chunk
    /// fails its checksum on reload.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        debug_assert!(row < self.rows && col < self.cols);
        match &self.storage {
            TableStorage::Dense(data) => data[row * self.cols + col],
            TableStorage::Spilled(s) => s.get(row, col).expect("spill chunk read failed"),
        }
    }

    /// Checked read of the cell at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics when a spilled chunk fails its checksum on reload (use
    /// [`Table::row_window`] for fallible spill access).
    #[inline]
    pub fn try_get(&self, row: usize, col: usize) -> Option<f64> {
        if row < self.rows && col < self.cols {
            Some(self.get(row, col))
        } else {
            None
        }
    }

    /// Writes the cell at `(row, col)`. Dense tables only: spilled
    /// tables are immutable.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds or when the table is spilled.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        debug_assert!(row < self.rows && col < self.cols);
        let cols = self.cols;
        match &mut self.storage {
            TableStorage::Dense(data) => data[row * cols + col] = value,
            TableStorage::Spilled(_) => panic!("cannot mutate a spilled table"),
        }
    }

    /// The row-major backing buffer. Dense tables only — code that must
    /// handle both backends uses [`Table::row_chunks`] or
    /// [`Table::row_window`].
    ///
    /// # Panics
    ///
    /// Panics when the table is spilled.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        match &self.storage {
            TableStorage::Dense(data) => data,
            TableStorage::Spilled(_) => {
                panic!("Table::as_slice on a spilled table (use row_chunks/row_window)")
            }
        }
    }

    /// Mutable access to the row-major backing buffer. Dense tables only.
    ///
    /// # Panics
    ///
    /// Panics when the table is spilled.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        match &mut self.storage {
            TableStorage::Dense(data) => data,
            TableStorage::Spilled(_) => {
                panic!("Table::as_mut_slice on a spilled table (spilled tables are immutable)")
            }
        }
    }

    /// Consumes the table, returning the backing buffer. Dense tables
    /// only.
    ///
    /// # Panics
    ///
    /// Panics when the table is spilled.
    #[inline]
    pub fn into_vec(self) -> Vec<f64> {
        match self.storage {
            TableStorage::Dense(data) => data,
            TableStorage::Spilled(_) => {
                panic!("Table::into_vec on a spilled table (use row_chunks/row_window)")
            }
        }
    }

    /// Borrow of a single row. Dense tables only.
    ///
    /// # Panics
    ///
    /// Panics when the table is spilled.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.as_slice()[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterator over rows as slices. Dense tables only.
    ///
    /// # Panics
    ///
    /// Panics when the table is spilled.
    pub fn row_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.as_slice().chunks_exact(self.cols)
    }

    /// Pins rows `start .. start + nrows` in memory and returns them as a
    /// [`RowGuard`] — zero-copy on dense tables, a resident chunk or an
    /// assembled window on spilled ones. The backend-agnostic way to
    /// touch a bounded range of rows.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::RectOutOfBounds`] for out-of-range windows
    /// and [`TableError::Corrupt`] when a spilled chunk fails its
    /// checksum.
    pub fn row_window(&self, start: usize, nrows: usize) -> Result<RowGuard<'_>, TableError> {
        if nrows == 0 || start + nrows > self.rows {
            return Err(TableError::RectOutOfBounds {
                rect: (start, 0, nrows, self.cols),
                table_rows: self.rows,
                table_cols: self.cols,
            });
        }
        match &self.storage {
            TableStorage::Dense(data) => Ok(RowGuard::borrowed(
                start,
                nrows,
                self.cols,
                &data[start * self.cols..(start + nrows) * self.cols],
            )),
            TableStorage::Spilled(s) => s.row_window(start, nrows),
        }
    }

    /// Iterates the whole table as row windows of at most `budget` bytes
    /// each (one whole-table window when unbounded). Spilled tables
    /// iterate at their native chunk height, so resident memory stays
    /// within the budget the table was spilled under.
    pub fn row_chunks(&self, budget: MemoryBudget) -> RowChunks<'_> {
        RowChunks::new(self, budget)
    }

    /// A view of the region `rect`: borrowed on dense tables, pinned (the
    /// rectangle is materialized, not the whole table) on spilled ones.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::RectOutOfBounds`] when the rectangle does not
    /// fit in the table, and [`TableError::Corrupt`] when a spilled chunk
    /// fails its checksum while pinning.
    pub fn view(&self, rect: Rect) -> Result<TableView<'_>, TableError> {
        rect.validate(self.rows, self.cols)?;
        let pinned = match &self.storage {
            TableStorage::Dense(_) => None,
            TableStorage::Spilled(s) => {
                let mut data = Vec::with_capacity(rect.rows * rect.cols);
                let mut row = rect.row;
                let end = rect.row + rect.rows;
                while row < end {
                    let window = s.row_window(row, 1)?;
                    data.extend_from_slice(&window.row(0)[rect.col..rect.col + rect.cols]);
                    row += 1;
                }
                Some(Arc::<[f64]>::from(data))
            }
        };
        Ok(TableView {
            table: self,
            rect,
            pinned,
        })
    }

    /// Materializes the region `rect` as a new (dense) table.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::RectOutOfBounds`] when the rectangle does not
    /// fit in the table.
    pub fn subtable(&self, rect: Rect) -> Result<Table, TableError> {
        Ok(self.view(rect)?.to_table())
    }

    /// Horizontally concatenates two tables with equal row counts — the
    /// paper's "stitching consecutive days" operation. Dense tables only.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::ShapeMismatch`] when row counts differ.
    ///
    /// # Panics
    ///
    /// Panics when either table is spilled.
    pub fn hstack(&self, other: &Table) -> Result<Table, TableError> {
        if self.rows != other.rows {
            return Err(TableError::ShapeMismatch {
                left: self.shape(),
                right: other.shape(),
            });
        }
        let cols = self.cols + other.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for r in 0..self.rows {
            data.extend_from_slice(self.row(r));
            data.extend_from_slice(other.row(r));
        }
        Table::new(self.rows, cols, data)
    }

    /// Vertically concatenates two tables with equal column counts. Dense
    /// tables only.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::ShapeMismatch`] when column counts differ.
    ///
    /// # Panics
    ///
    /// Panics when either table is spilled.
    pub fn vstack(&self, other: &Table) -> Result<Table, TableError> {
        if self.cols != other.cols {
            return Err(TableError::ShapeMismatch {
                left: self.shape(),
                right: other.shape(),
            });
        }
        let mut data = Vec::with_capacity((self.rows + other.rows) * self.cols);
        data.extend_from_slice(self.as_slice());
        data.extend_from_slice(other.as_slice());
        Table::new(self.rows + other.rows, self.cols, data)
    }
}

impl PartialEq for Table {
    /// Content equality across backends: a spilled table equals the dense
    /// table holding the same values.
    fn eq(&self, other: &Self) -> bool {
        if self.shape() != other.shape() {
            return false;
        }
        match (&self.storage, &other.storage) {
            (TableStorage::Dense(a), TableStorage::Dense(b)) => a == b,
            _ => (0..self.rows).all(|r| match (self.row_window(r, 1), other.row_window(r, 1)) {
                (Ok(a), Ok(b)) => a.values() == b.values(),
                _ => false,
            }),
        }
    }
}

/// A borrowed rectangular view into a [`Table`].
///
/// Views are cheap on dense tables (a reference plus a rectangle) and
/// expose row-slice iteration; the sketching and distance code consumes
/// views so that subtables are never copied unless explicitly
/// materialized. On spilled tables a view pins its rectangle — only the
/// viewed cells, never the whole table — in an internal buffer.
#[derive(Clone, Debug)]
pub struct TableView<'a> {
    table: &'a Table,
    rect: Rect,
    /// Rect-materialized values (stride `rect.cols`) for spilled tables.
    pinned: Option<Arc<[f64]>>,
}

impl<'a> TableView<'a> {
    /// The region this view covers.
    #[inline]
    pub fn rect(&self) -> Rect {
        self.rect
    }

    /// View height in rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rect.rows
    }

    /// View width in columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.rect.cols
    }

    /// `(rows, cols)` of the view.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        self.rect.shape()
    }

    /// Number of cells in the view.
    #[inline]
    pub fn len(&self) -> usize {
        self.rect.area()
    }

    /// Always false: views of empty rects cannot be constructed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The underlying table.
    #[inline]
    pub fn table(&self) -> &'a Table {
        self.table
    }

    /// Reads the view-relative cell `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rect.rows && c < self.rect.cols);
        match &self.pinned {
            Some(buf) => buf[r * self.rect.cols + c],
            None => self.table.get(self.rect.row + r, self.rect.col + c),
        }
    }

    /// Borrow of a view-relative row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        debug_assert!(r < self.rect.rows);
        match &self.pinned {
            Some(buf) => &buf[r * self.rect.cols..(r + 1) * self.rect.cols],
            None => {
                let start = (self.rect.row + r) * self.table.cols + self.rect.col;
                &self.table.as_slice()[start..start + self.rect.cols]
            }
        }
    }

    /// Iterator over the view's rows as slices.
    pub fn row_iter(&self) -> impl Iterator<Item = &[f64]> + '_ {
        (0..self.rect.rows).map(move |r| self.row(r))
    }

    /// Iterator over all values, row-major ("linearized in a consistent
    /// way", as the paper puts it).
    pub fn values(&self) -> impl Iterator<Item = f64> + '_ {
        self.row_iter().flat_map(|row| row.iter().copied())
    }

    /// Materializes the view as an owned table.
    pub fn to_table(&self) -> Table {
        let mut data = Vec::with_capacity(self.len());
        for row in self.row_iter() {
            data.extend_from_slice(row);
        }
        Table::new(self.rect.rows, self.rect.cols, data)
            .expect("view dimensions are non-zero and consistent")
    }

    /// Materializes the view as a row-major vector.
    pub fn to_vec(&self) -> Vec<f64> {
        let mut data = Vec::with_capacity(self.len());
        for row in self.row_iter() {
            data.extend_from_slice(row);
        }
        data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Table {
        Table::from_fn(4, 5, |r, c| (r * 10 + c) as f64).unwrap()
    }

    fn spilled(t: &Table, budget_bytes: u64) -> Table {
        let s = t
            .clone()
            .with_budget(MemoryBudget::bytes(budget_bytes))
            .unwrap();
        assert!(s.is_spilled(), "budget {budget_bytes} should force a spill");
        s
    }

    #[test]
    fn construction_validates() {
        assert!(Table::new(2, 3, vec![0.0; 6]).is_ok());
        assert!(matches!(
            Table::new(2, 3, vec![0.0; 5]),
            Err(TableError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            Table::new(0, 3, vec![]),
            Err(TableError::EmptyDimension)
        ));
        assert!(matches!(
            Table::zeros(3, 0),
            Err(TableError::EmptyDimension)
        ));
    }

    #[test]
    fn from_rows_validates_raggedness() {
        assert!(Table::from_rows(&[vec![1.0, 2.0], vec![3.0]]).is_err());
        assert!(Table::from_rows(&[]).is_err());
        let t = Table::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(t.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn indexing_round_trips() {
        let mut t = small();
        assert_eq!(t.get(2, 3), 23.0);
        t.set(2, 3, -1.0);
        assert_eq!(t.get(2, 3), -1.0);
        assert_eq!(t.try_get(4, 0), None);
        assert_eq!(t.try_get(0, 5), None);
        assert_eq!(t.try_get(3, 4), Some(34.0));
    }

    #[test]
    fn rows_are_contiguous() {
        let t = small();
        assert_eq!(t.row(1), &[10.0, 11.0, 12.0, 13.0, 14.0]);
        assert_eq!(t.row_iter().count(), 4);
    }

    #[test]
    fn view_reads_through() {
        let t = small();
        let v = t.view(Rect::new(1, 2, 2, 3)).unwrap();
        assert_eq!(v.get(0, 0), 12.0);
        assert_eq!(v.get(1, 2), 24.0);
        assert_eq!(v.row(0), &[12.0, 13.0, 14.0]);
        assert_eq!(v.to_vec(), vec![12.0, 13.0, 14.0, 22.0, 23.0, 24.0]);
    }

    #[test]
    fn view_rejects_out_of_bounds() {
        let t = small();
        assert!(t.view(Rect::new(3, 3, 2, 2)).is_err());
        assert!(t.view(Rect::new(0, 0, 5, 1)).is_err());
        assert!(t.view(Rect::new(0, 0, 0, 1)).is_err());
    }

    #[test]
    fn subtable_materializes() {
        let t = small();
        let s = t.subtable(Rect::new(0, 0, 2, 2)).unwrap();
        assert_eq!(s.shape(), (2, 2));
        assert_eq!(s.as_slice(), &[0.0, 1.0, 10.0, 11.0]);
    }

    #[test]
    fn full_view_equals_table() {
        let t = small();
        let v = t.view(t.bounding_rect()).unwrap();
        assert_eq!(v.to_vec(), t.as_slice());
    }

    #[test]
    fn hstack_stitches_days() {
        let day1 = Table::from_fn(2, 3, |r, c| (r * 3 + c) as f64).unwrap();
        let day2 = Table::from_fn(2, 2, |r, c| 100.0 + (r * 2 + c) as f64).unwrap();
        let both = day1.hstack(&day2).unwrap();
        assert_eq!(both.shape(), (2, 5));
        assert_eq!(both.row(0), &[0.0, 1.0, 2.0, 100.0, 101.0]);
        assert!(day1.hstack(&Table::zeros(3, 1).unwrap()).is_err());
    }

    #[test]
    fn vstack_appends_rows() {
        let a = Table::from_fn(1, 2, |_, c| c as f64).unwrap();
        let b = Table::from_fn(2, 2, |r, c| (10 + r * 2 + c) as f64).unwrap();
        let both = a.vstack(&b).unwrap();
        assert_eq!(both.shape(), (3, 2));
        assert_eq!(both.row(2), &[12.0, 13.0]);
        assert!(a.vstack(&Table::zeros(1, 3).unwrap()).is_err());
    }

    #[test]
    fn values_iterate_row_major() {
        let t = small();
        let v = t.view(Rect::new(2, 1, 2, 2)).unwrap();
        let vals: Vec<f64> = v.values().collect();
        assert_eq!(vals, vec![21.0, 22.0, 31.0, 32.0]);
    }

    #[test]
    fn with_budget_spills_and_preserves_content() {
        let t = small();
        // 4x5 doubles = 160 bytes; an 80-byte budget forces a spill.
        let s = spilled(&t, 80);
        assert_eq!(s.shape(), t.shape());
        assert_eq!(s, t, "content equality across backends");
        assert_eq!(t, s, "symmetric");
        for r in 0..t.rows() {
            for c in 0..t.cols() {
                assert_eq!(s.get(r, c), t.get(r, c));
                assert_eq!(s.try_get(r, c), t.try_get(r, c));
            }
        }
        // Fits-in-budget and unbounded stay dense.
        assert!(!small()
            .with_budget(MemoryBudget::bytes(1 << 20))
            .unwrap()
            .is_spilled());
        assert!(!small()
            .with_budget(MemoryBudget::unbounded())
            .unwrap()
            .is_spilled());
    }

    #[test]
    fn spilled_views_pin_rect_only() {
        let t = small();
        let s = spilled(&t, 80);
        let rect = Rect::new(1, 2, 2, 3);
        let vd = t.view(rect).unwrap();
        let vs = s.view(rect).unwrap();
        assert_eq!(vd.to_vec(), vs.to_vec());
        assert_eq!(vs.row(1), vd.row(1));
        assert_eq!(vs.get(0, 1), vd.get(0, 1));
        assert_eq!(vs.to_table(), vd.to_table());
    }

    #[test]
    fn row_windows_agree_across_backends() {
        let t = Table::from_fn(13, 7, |r, c| (r * 100 + c) as f64).unwrap();
        let s = spilled(&t, 7 * 8 * 3); // three rows of budget
        for (start, n) in [(0usize, 1usize), (0, 13), (5, 4), (12, 1), (3, 9)] {
            let wd = t.row_window(start, n).unwrap();
            let ws = s.row_window(start, n).unwrap();
            assert_eq!(wd.values(), ws.values(), "window ({start}, {n})");
            assert_eq!(wd.start_row(), ws.start_row());
            assert_eq!(wd.row(n - 1), ws.row(n - 1));
        }
        assert!(t.row_window(10, 4).is_err());
        assert!(s.row_window(0, 0).is_err());
    }

    #[test]
    fn row_chunks_cover_the_table_exactly_once() {
        let t = Table::from_fn(10, 4, |r, c| (r * 4 + c) as f64).unwrap();
        for table in [t.clone(), spilled(&t, 4 * 8 * 2)] {
            for budget in [
                MemoryBudget::unbounded(),
                MemoryBudget::bytes(4 * 8 * 3),
                MemoryBudget::bytes(1),
            ] {
                let mut seen = Vec::new();
                let mut next = 0;
                for guard in table.row_chunks(budget) {
                    let guard = guard.unwrap();
                    assert_eq!(guard.start_row(), next);
                    next += guard.rows();
                    seen.extend_from_slice(guard.values());
                }
                assert_eq!(next, 10, "chunks must cover all rows");
                assert_eq!(seen, t.as_slice(), "budget {budget:?}");
            }
        }
    }

    #[test]
    fn spilled_clone_shares_the_window() {
        let t = small();
        let s = spilled(&t, 80);
        let s2 = s.clone();
        assert_eq!(s2, t);
        drop(s);
        // The spill file must survive while any clone is alive.
        assert_eq!(s2.get(3, 4), 34.0);
    }

    #[test]
    #[should_panic(expected = "spilled")]
    fn dense_only_accessors_panic_on_spilled() {
        let s = spilled(&small(), 80);
        let _ = s.as_slice();
    }

    #[test]
    fn apply_update_patches_dense_and_bumps_epoch() {
        use crate::update::TableUpdate;
        let mut t = small();
        assert_eq!(t.epoch().get(), 0);

        let e = t
            .apply_update(&TableUpdate::cell(2, 3, 0.5).unwrap())
            .unwrap();
        assert_eq!(e.get(), 1);
        assert_eq!(t.get(2, 3), 23.5);

        let e = t
            .apply_update(&TableUpdate::row(0, vec![1.0; 5]).unwrap())
            .unwrap();
        assert_eq!(e.get(), 2);
        assert_eq!(t.row(0), &[1.0, 2.0, 3.0, 4.0, 5.0]);

        let e = t
            .apply_update(&TableUpdate::tile(Rect::new(1, 1, 2, 2), vec![-1.0; 4]).unwrap())
            .unwrap();
        assert_eq!(e.get(), 3);
        assert_eq!(t.get(1, 1), 10.0);
        assert_eq!(t.get(2, 2), 21.0);
        assert_eq!(t.epoch(), e);
    }

    #[test]
    fn apply_update_rejects_without_side_effects() {
        use crate::update::TableUpdate;
        let mut t = small();

        // Out of bounds: epoch and values untouched.
        let bad = TableUpdate::cell(4, 0, 1.0).unwrap();
        assert!(t.apply_update(&bad).is_err());
        assert_eq!(t.epoch().get(), 0);

        // Row width mismatch.
        let bad = TableUpdate::row(0, vec![1.0; 4]).unwrap();
        assert!(matches!(
            t.apply_update(&bad),
            Err(TableError::ShapeMismatch { .. })
        ));

        // A delta that overflows to infinity is rejected before ANY cell
        // is written, even cells earlier in the iteration order.
        t.set(0, 4, f64::MAX);
        let bad = TableUpdate::row(0, vec![1.0, 1.0, 1.0, 1.0, f64::MAX]).unwrap();
        assert!(matches!(
            t.apply_update(&bad),
            Err(TableError::NonFinite { row: 0, col: 4 })
        ));
        assert_eq!(t.get(0, 0), 0.0, "no partial patch");
        assert_eq!(t.epoch().get(), 0);
    }

    #[test]
    fn apply_update_matches_across_backends() {
        use crate::update::TableUpdate;
        let t = Table::from_fn(13, 7, |r, c| (r * 100 + c) as f64).unwrap();
        let mut dense = t.clone();
        let mut spill = spilled(&t, 7 * 8 * 3);

        let updates = [
            TableUpdate::cell(0, 0, 5.5).unwrap(),
            TableUpdate::cell(12, 6, -2.25).unwrap(),
            TableUpdate::row(6, (0..7).map(|c| c as f64 * 0.5).collect()).unwrap(),
            TableUpdate::tile(Rect::new(4, 2, 5, 3), (0..15).map(|i| i as f64).collect()).unwrap(),
        ];
        for u in &updates {
            let ed = dense.apply_update(u).unwrap();
            let es = spill.apply_update(u).unwrap();
            assert_eq!(ed, es, "epochs advance in lockstep");
        }
        assert!(spill.is_spilled(), "patching must not densify");
        assert_eq!(dense, spill, "patched content identical across backends");
        assert_eq!(spill.epoch().get(), updates.len() as u64);
    }

    #[test]
    fn torn_spill_rewrite_surfaces_corrupt_never_stale() {
        use crate::update::TableUpdate;
        let t = Table::from_fn(13, 7, |r, c| (r * 100 + c) as f64).unwrap();
        let mut s = spilled(&t, 7 * 8 * 3);
        let TableStorage::Spilled(storage) = s.storage().clone() else {
            unreachable!("spilled() asserts the backend");
        };

        storage.inject_torn_write();
        let u = TableUpdate::cell(0, 0, 1.0).unwrap();
        let err = s.apply_update(&u).unwrap_err();
        assert!(matches!(err, TableError::Io(_)), "torn write: {err}");
        assert_eq!(s.epoch().get(), 0, "failed update must not bump the epoch");

        // The torn chunk must now read as Corrupt — never the stale
        // pre-update value, and never the half-applied one.
        storage.flush_resident();
        let err = s.row_window(0, 1).unwrap_err();
        assert!(
            matches!(err, TableError::Corrupt { section, .. } if section == "spill-chunk"),
            "torn chunk read: {err}"
        );

        // Rows in other chunks are still intact.
        let w = s.row_window(12, 1).unwrap();
        assert_eq!(w.row(0), t.row_window(12, 1).unwrap().row(0));
    }

    #[test]
    fn spilling_preserves_the_epoch() {
        use crate::update::TableUpdate;
        let mut t = small();
        t.apply_update(&TableUpdate::cell(0, 0, 1.0).unwrap())
            .unwrap();
        let s = t.clone().with_budget(MemoryBudget::bytes(80)).unwrap();
        assert!(s.is_spilled());
        assert_eq!(s.epoch(), t.epoch());
    }
}
