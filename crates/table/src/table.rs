//! The dense tabular data model.

use crate::{Rect, TableError};

/// A dense, row-major table of `f64` values.
///
/// This is the paper's "tabular data": a matrix indexed by, say,
/// geographically-ordered stations (rows) and time slots (columns).
///
/// ```
/// use tabsketch_table::Table;
///
/// let t = Table::from_rows(&[
///     vec![1.0, 2.0],
///     vec![3.0, 4.0],
/// ]).unwrap();
/// assert_eq!(t.get(1, 0), 3.0);
/// assert_eq!(t.shape(), (2, 2));
/// ```
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Table {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Table {
    /// Creates a table from a row-major buffer.
    ///
    /// Every cell must be finite: NaN silently poisons the median-based
    /// distance estimators downstream, so it is rejected at ingestion
    /// rather than estimated around.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::EmptyDimension`] for zero-sized dimensions,
    /// [`TableError::DimensionMismatch`] when `data.len() != rows * cols`,
    /// and [`TableError::NonFinite`] when a cell is NaN or infinite.
    pub fn new(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, TableError> {
        if rows == 0 || cols == 0 {
            return Err(TableError::EmptyDimension);
        }
        if data.len() != rows * cols {
            return Err(TableError::DimensionMismatch {
                rows,
                cols,
                len: data.len(),
            });
        }
        if let Some(i) = data.iter().position(|v| !v.is_finite()) {
            return Err(TableError::NonFinite {
                row: i / cols,
                col: i % cols,
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a zero-filled table.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::EmptyDimension`] for zero-sized dimensions.
    pub fn zeros(rows: usize, cols: usize) -> Result<Self, TableError> {
        Self::new(rows, cols, vec![0.0; rows.checked_mul(cols).unwrap_or(0)])
    }

    /// Creates a table by evaluating `f(row, col)` for every cell.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::EmptyDimension`] for zero-sized dimensions.
    pub fn from_fn(
        rows: usize,
        cols: usize,
        mut f: impl FnMut(usize, usize) -> f64,
    ) -> Result<Self, TableError> {
        if rows == 0 || cols == 0 {
            return Err(TableError::EmptyDimension);
        }
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self::new(rows, cols, data)
    }

    /// Creates a table from a slice of equal-length rows.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::EmptyDimension`] when there are no rows or the
    /// first row is empty, and [`TableError::ShapeMismatch`] when row
    /// lengths differ.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, TableError> {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, Vec::len);
        if nrows == 0 || ncols == 0 {
            return Err(TableError::EmptyDimension);
        }
        let mut data = Vec::with_capacity(nrows * ncols);
        for row in rows {
            if row.len() != ncols {
                return Err(TableError::ShapeMismatch {
                    left: (1, ncols),
                    right: (1, row.len()),
                });
            }
            data.extend_from_slice(row);
        }
        Self::new(nrows, ncols, data)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of cells.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Always false: empty tables cannot be constructed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The rectangle covering the whole table.
    #[inline]
    pub fn bounding_rect(&self) -> Rect {
        Rect::new(0, 0, self.rows, self.cols)
    }

    /// Reads the cell at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds (hot-path accessor; use
    /// [`Table::try_get`] for checked access).
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col]
    }

    /// Checked read of the cell at `(row, col)`.
    #[inline]
    pub fn try_get(&self, row: usize, col: usize) -> Option<f64> {
        if row < self.rows && col < self.cols {
            Some(self.data[row * self.cols + col])
        } else {
            None
        }
    }

    /// Writes the cell at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col] = value;
    }

    /// The row-major backing buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the row-major backing buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the table, returning the backing buffer.
    #[inline]
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow of a single row.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterator over rows as slices.
    pub fn row_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols)
    }

    /// A borrowed view of the region `rect`.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::RectOutOfBounds`] when the rectangle does not
    /// fit in the table.
    pub fn view(&self, rect: Rect) -> Result<TableView<'_>, TableError> {
        rect.validate(self.rows, self.cols)?;
        Ok(TableView { table: self, rect })
    }

    /// Materializes the region `rect` as a new table.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::RectOutOfBounds`] when the rectangle does not
    /// fit in the table.
    pub fn subtable(&self, rect: Rect) -> Result<Table, TableError> {
        Ok(self.view(rect)?.to_table())
    }

    /// Horizontally concatenates two tables with equal row counts — the
    /// paper's "stitching consecutive days" operation.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::ShapeMismatch`] when row counts differ.
    pub fn hstack(&self, other: &Table) -> Result<Table, TableError> {
        if self.rows != other.rows {
            return Err(TableError::ShapeMismatch {
                left: self.shape(),
                right: other.shape(),
            });
        }
        let cols = self.cols + other.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for r in 0..self.rows {
            data.extend_from_slice(self.row(r));
            data.extend_from_slice(other.row(r));
        }
        Table::new(self.rows, cols, data)
    }

    /// Vertically concatenates two tables with equal column counts.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::ShapeMismatch`] when column counts differ.
    pub fn vstack(&self, other: &Table) -> Result<Table, TableError> {
        if self.cols != other.cols {
            return Err(TableError::ShapeMismatch {
                left: self.shape(),
                right: other.shape(),
            });
        }
        let mut data = Vec::with_capacity((self.rows + other.rows) * self.cols);
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Table::new(self.rows + other.rows, self.cols, data)
    }
}

/// A borrowed rectangular view into a [`Table`].
///
/// Views are cheap (`Copy`) and expose row-slice iteration; the sketching
/// and distance code consumes views so that subtables are never copied
/// unless explicitly materialized.
#[derive(Clone, Copy, Debug)]
pub struct TableView<'a> {
    table: &'a Table,
    rect: Rect,
}

impl<'a> TableView<'a> {
    /// The region this view covers.
    #[inline]
    pub fn rect(&self) -> Rect {
        self.rect
    }

    /// View height in rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rect.rows
    }

    /// View width in columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.rect.cols
    }

    /// `(rows, cols)` of the view.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        self.rect.shape()
    }

    /// Number of cells in the view.
    #[inline]
    pub fn len(&self) -> usize {
        self.rect.area()
    }

    /// Always false: views of empty rects cannot be constructed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The underlying table.
    #[inline]
    pub fn table(&self) -> &'a Table {
        self.table
    }

    /// Reads the view-relative cell `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rect.rows && c < self.rect.cols);
        self.table.get(self.rect.row + r, self.rect.col + c)
    }

    /// Borrow of a view-relative row as a slice of the parent's buffer.
    #[inline]
    pub fn row(&self, r: usize) -> &'a [f64] {
        debug_assert!(r < self.rect.rows);
        let start = (self.rect.row + r) * self.table.cols + self.rect.col;
        &self.table.data[start..start + self.rect.cols]
    }

    /// Iterator over the view's rows as slices.
    pub fn row_iter(&self) -> impl Iterator<Item = &'a [f64]> + '_ {
        (0..self.rect.rows).map(move |r| self.row(r))
    }

    /// Iterator over all values, row-major ("linearized in a consistent
    /// way", as the paper puts it).
    pub fn values(&self) -> impl Iterator<Item = f64> + '_ {
        self.row_iter().flat_map(|row| row.iter().copied())
    }

    /// Materializes the view as an owned table.
    pub fn to_table(&self) -> Table {
        let mut data = Vec::with_capacity(self.len());
        for row in self.row_iter() {
            data.extend_from_slice(row);
        }
        Table::new(self.rect.rows, self.rect.cols, data)
            .expect("view dimensions are non-zero and consistent")
    }

    /// Materializes the view as a row-major vector.
    pub fn to_vec(&self) -> Vec<f64> {
        let mut data = Vec::with_capacity(self.len());
        for row in self.row_iter() {
            data.extend_from_slice(row);
        }
        data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Table {
        Table::from_fn(4, 5, |r, c| (r * 10 + c) as f64).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(Table::new(2, 3, vec![0.0; 6]).is_ok());
        assert!(matches!(
            Table::new(2, 3, vec![0.0; 5]),
            Err(TableError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            Table::new(0, 3, vec![]),
            Err(TableError::EmptyDimension)
        ));
        assert!(matches!(
            Table::zeros(3, 0),
            Err(TableError::EmptyDimension)
        ));
    }

    #[test]
    fn from_rows_validates_raggedness() {
        assert!(Table::from_rows(&[vec![1.0, 2.0], vec![3.0]]).is_err());
        assert!(Table::from_rows(&[]).is_err());
        let t = Table::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(t.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn indexing_round_trips() {
        let mut t = small();
        assert_eq!(t.get(2, 3), 23.0);
        t.set(2, 3, -1.0);
        assert_eq!(t.get(2, 3), -1.0);
        assert_eq!(t.try_get(4, 0), None);
        assert_eq!(t.try_get(0, 5), None);
        assert_eq!(t.try_get(3, 4), Some(34.0));
    }

    #[test]
    fn rows_are_contiguous() {
        let t = small();
        assert_eq!(t.row(1), &[10.0, 11.0, 12.0, 13.0, 14.0]);
        assert_eq!(t.row_iter().count(), 4);
    }

    #[test]
    fn view_reads_through() {
        let t = small();
        let v = t.view(Rect::new(1, 2, 2, 3)).unwrap();
        assert_eq!(v.get(0, 0), 12.0);
        assert_eq!(v.get(1, 2), 24.0);
        assert_eq!(v.row(0), &[12.0, 13.0, 14.0]);
        assert_eq!(v.to_vec(), vec![12.0, 13.0, 14.0, 22.0, 23.0, 24.0]);
    }

    #[test]
    fn view_rejects_out_of_bounds() {
        let t = small();
        assert!(t.view(Rect::new(3, 3, 2, 2)).is_err());
        assert!(t.view(Rect::new(0, 0, 5, 1)).is_err());
        assert!(t.view(Rect::new(0, 0, 0, 1)).is_err());
    }

    #[test]
    fn subtable_materializes() {
        let t = small();
        let s = t.subtable(Rect::new(0, 0, 2, 2)).unwrap();
        assert_eq!(s.shape(), (2, 2));
        assert_eq!(s.as_slice(), &[0.0, 1.0, 10.0, 11.0]);
    }

    #[test]
    fn full_view_equals_table() {
        let t = small();
        let v = t.view(t.bounding_rect()).unwrap();
        assert_eq!(v.to_vec(), t.as_slice());
    }

    #[test]
    fn hstack_stitches_days() {
        let day1 = Table::from_fn(2, 3, |r, c| (r * 3 + c) as f64).unwrap();
        let day2 = Table::from_fn(2, 2, |r, c| 100.0 + (r * 2 + c) as f64).unwrap();
        let both = day1.hstack(&day2).unwrap();
        assert_eq!(both.shape(), (2, 5));
        assert_eq!(both.row(0), &[0.0, 1.0, 2.0, 100.0, 101.0]);
        assert!(day1.hstack(&Table::zeros(3, 1).unwrap()).is_err());
    }

    #[test]
    fn vstack_appends_rows() {
        let a = Table::from_fn(1, 2, |_, c| c as f64).unwrap();
        let b = Table::from_fn(2, 2, |r, c| (10 + r * 2 + c) as f64).unwrap();
        let both = a.vstack(&b).unwrap();
        assert_eq!(both.shape(), (3, 2));
        assert_eq!(both.row(2), &[12.0, 13.0]);
        assert!(a.vstack(&Table::zeros(1, 3).unwrap()).is_err());
    }

    #[test]
    fn values_iterate_row_major() {
        let t = small();
        let v = t.view(Rect::new(2, 1, 2, 2)).unwrap();
        let vals: Vec<f64> = v.values().collect();
        assert_eq!(vals, vec![21.0, 22.0, 31.0, 32.0]);
    }
}
