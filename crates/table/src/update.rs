//! Typed, validated table mutations.
//!
//! A [`TableUpdate`] is an additive delta against a table: one cell, one
//! full row, or a rectangular tile. Updates are *deltas*, not
//! overwrites, because the p-stable sketches downstream are linear — a
//! delta `Δ` folds into every affected sketch as `s += sketch(Δ)`
//! without a rebuild (the turnstile stream model). The constructors
//! reject non-finite deltas up front, mirroring the ingestion-time
//! validation of [`Table::new`](crate::Table::new): NaN silently poisons
//! the median-based estimators, so it is refused at the API boundary.
//!
//! Each applied update bumps the table's [`TableEpoch`], a monotonic
//! counter that lets derived structures (sketch stores, caches, candidate
//! indexes) detect that their inputs moved.

use crate::{Rect, TableError};

/// A monotonic per-table version counter, bumped by every applied
/// [`TableUpdate`]. Derived structures record the epoch they were built
/// at and compare against the table's current epoch to detect staleness.
///
/// The epoch is a *runtime* notion: it starts at 0 for every freshly
/// constructed or loaded table and is not persisted.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TableEpoch(u64);

impl TableEpoch {
    /// Wraps a raw epoch counter.
    #[inline]
    pub const fn new(epoch: u64) -> Self {
        TableEpoch(epoch)
    }

    /// The raw counter value.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// The epoch after one more update.
    #[inline]
    #[must_use]
    pub const fn next(self) -> Self {
        TableEpoch(self.0 + 1)
    }
}

impl std::fmt::Display for TableEpoch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// An additive delta against a table: `new = old + delta` cell-wise.
///
/// Construct through [`TableUpdate::cell`], [`TableUpdate::row`], or
/// [`TableUpdate::tile`] — the variants are `#[non_exhaustive]` so every
/// update in circulation has passed the non-finite check. Bounds against
/// a concrete table are checked at application time
/// ([`Table::apply_update`](crate::Table::apply_update)), like [`Rect`].
#[derive(Clone, Debug, PartialEq)]
pub enum TableUpdate {
    /// Add `delta` to the single cell `(row, col)`.
    #[non_exhaustive]
    Cell {
        /// Target row.
        row: usize,
        /// Target column.
        col: usize,
        /// The additive delta.
        delta: f64,
    },
    /// Add `deltas[c]` to every cell of one full-width row.
    #[non_exhaustive]
    Row {
        /// Target row.
        row: usize,
        /// One delta per table column (length must equal the table
        /// width at application time).
        deltas: Vec<f64>,
    },
    /// Add `deltas` (row-major, `rect.rows × rect.cols`) to a tile.
    #[non_exhaustive]
    Tile {
        /// The target rectangle.
        rect: Rect,
        /// Row-major deltas, one per covered cell.
        deltas: Vec<f64>,
    },
}

/// Rejects non-finite deltas with the position of the first offender,
/// reported relative to `(row, col)` with stride `cols`.
fn check_finite(deltas: &[f64], row: usize, col: usize, cols: usize) -> Result<(), TableError> {
    if let Some(i) = deltas.iter().position(|v| !v.is_finite()) {
        return Err(TableError::NonFinite {
            row: row + i / cols.max(1),
            col: col + i % cols.max(1),
        });
    }
    Ok(())
}

impl TableUpdate {
    /// A single-cell delta.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::NonFinite`] when `delta` is NaN or infinite.
    pub fn cell(row: usize, col: usize, delta: f64) -> Result<Self, TableError> {
        if !delta.is_finite() {
            return Err(TableError::NonFinite { row, col });
        }
        Ok(TableUpdate::Cell { row, col, delta })
    }

    /// A full-row delta: `deltas[c]` is added to column `c` of `row`.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::EmptyDimension`] for an empty delta vector
    /// and [`TableError::NonFinite`] when any delta is NaN or infinite.
    pub fn row(row: usize, deltas: Vec<f64>) -> Result<Self, TableError> {
        if deltas.is_empty() {
            return Err(TableError::EmptyDimension);
        }
        check_finite(&deltas, row, 0, deltas.len())?;
        Ok(TableUpdate::Row { row, deltas })
    }

    /// A tile delta: row-major `deltas` over `rect`.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::RectOutOfBounds`] for an empty rectangle,
    /// [`TableError::DimensionMismatch`] when `deltas.len() != rect.area()`,
    /// and [`TableError::NonFinite`] when any delta is NaN or infinite.
    pub fn tile(rect: Rect, deltas: Vec<f64>) -> Result<Self, TableError> {
        if rect.rows == 0 || rect.cols == 0 {
            return Err(TableError::RectOutOfBounds {
                rect: (rect.row, rect.col, rect.rows, rect.cols),
                table_rows: 0,
                table_cols: 0,
            });
        }
        if deltas.len() != rect.area() {
            return Err(TableError::DimensionMismatch {
                rows: rect.rows,
                cols: rect.cols,
                len: deltas.len(),
            });
        }
        check_finite(&deltas, rect.row, rect.col, rect.cols)?;
        Ok(TableUpdate::Tile { rect, deltas })
    }

    /// The short name used in metrics and CLI output.
    pub fn kind_name(&self) -> &'static str {
        match self {
            TableUpdate::Cell { .. } => "cell",
            TableUpdate::Row { .. } => "row",
            TableUpdate::Tile { .. } => "tile",
        }
    }

    /// How many cells this update touches.
    pub fn cell_count(&self) -> usize {
        match self {
            TableUpdate::Cell { .. } => 1,
            TableUpdate::Row { deltas, .. } | TableUpdate::Tile { deltas, .. } => deltas.len(),
        }
    }

    /// The smallest rectangle covering every touched cell.
    pub fn bounding_rect(&self) -> Rect {
        match self {
            TableUpdate::Cell { row, col, .. } => Rect::new(*row, *col, 1, 1),
            TableUpdate::Row { row, deltas } => Rect::new(*row, 0, 1, deltas.len()),
            TableUpdate::Tile { rect, .. } => *rect,
        }
    }

    /// Validates the update against a `rows × cols` table without
    /// applying it.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::RectOutOfBounds`] when the touched region
    /// does not fit and [`TableError::ShapeMismatch`] when a row delta's
    /// width differs from the table width.
    pub fn validate_for(&self, rows: usize, cols: usize) -> Result<(), TableError> {
        if let TableUpdate::Row { deltas, .. } = self {
            if deltas.len() != cols {
                return Err(TableError::ShapeMismatch {
                    left: (1, cols),
                    right: (1, deltas.len()),
                });
            }
        }
        self.bounding_rect().validate(rows, cols)
    }

    /// Iterates the touched cells as `(row, col, delta)`, row-major.
    /// Cells are distinct by construction — no coordinate appears twice.
    pub fn cells(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        // One iterator type for all three variants: walk a rect and an
        // (implicit) delta slice.
        let (rect, deltas, single) = match self {
            TableUpdate::Cell { row, col, delta } => {
                (Rect::new(*row, *col, 1, 1), None, Some(*delta))
            }
            TableUpdate::Row { row, deltas } => {
                (Rect::new(*row, 0, 1, deltas.len()), Some(deltas), None)
            }
            TableUpdate::Tile { rect, deltas } => (*rect, Some(deltas), None),
        };
        (0..rect.area()).map(move |i| {
            let (dr, dc) = (i / rect.cols, i % rect.cols);
            let delta = match (&deltas, single) {
                (Some(d), _) => d[i],
                (None, Some(v)) => v,
                (None, None) => unreachable!("cell updates carry a single delta"),
            };
            (rect.row + dr, rect.col + dc, delta)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_reject_non_finite_and_empty() {
        assert!(matches!(
            TableUpdate::cell(2, 3, f64::NAN),
            Err(TableError::NonFinite { row: 2, col: 3 })
        ));
        assert!(matches!(
            TableUpdate::row(1, vec![0.0, f64::INFINITY, 1.0]),
            Err(TableError::NonFinite { row: 1, col: 1 })
        ));
        assert!(matches!(
            TableUpdate::row(0, vec![]),
            Err(TableError::EmptyDimension)
        ));
        assert!(matches!(
            TableUpdate::tile(
                Rect::new(1, 1, 2, 2),
                vec![0.0, 1.0, f64::NEG_INFINITY, 2.0]
            ),
            Err(TableError::NonFinite { row: 2, col: 1 })
        ));
        assert!(matches!(
            TableUpdate::tile(Rect::new(0, 0, 2, 2), vec![0.0; 3]),
            Err(TableError::DimensionMismatch { .. })
        ));
        assert!(TableUpdate::tile(Rect::new(0, 0, 0, 2), vec![]).is_err());
    }

    #[test]
    fn cells_enumerate_row_major() {
        let u = TableUpdate::tile(Rect::new(2, 3, 2, 2), vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let cells: Vec<_> = u.cells().collect();
        assert_eq!(
            cells,
            vec![(2, 3, 1.0), (2, 4, 2.0), (3, 3, 3.0), (3, 4, 4.0)]
        );
        assert_eq!(u.cell_count(), 4);
        assert_eq!(u.bounding_rect(), Rect::new(2, 3, 2, 2));

        let u = TableUpdate::cell(5, 7, -1.5).unwrap();
        assert_eq!(u.cells().collect::<Vec<_>>(), vec![(5, 7, -1.5)]);
        assert_eq!(u.bounding_rect(), Rect::new(5, 7, 1, 1));

        let u = TableUpdate::row(4, vec![1.0, 2.0]).unwrap();
        assert_eq!(
            u.cells().collect::<Vec<_>>(),
            vec![(4, 0, 1.0), (4, 1, 2.0)]
        );
    }

    #[test]
    fn validate_checks_bounds_and_row_width() {
        let cell = TableUpdate::cell(3, 3, 1.0).unwrap();
        assert!(cell.validate_for(4, 4).is_ok());
        assert!(cell.validate_for(3, 4).is_err());

        let row = TableUpdate::row(0, vec![1.0, 2.0, 3.0]).unwrap();
        assert!(row.validate_for(2, 3).is_ok());
        assert!(matches!(
            row.validate_for(2, 4),
            Err(TableError::ShapeMismatch { .. })
        ));

        let tile = TableUpdate::tile(Rect::new(1, 1, 2, 2), vec![0.5; 4]).unwrap();
        assert!(tile.validate_for(3, 3).is_ok());
        assert!(tile.validate_for(2, 3).is_err());
    }

    #[test]
    fn epochs_are_ordered_and_display() {
        let e = TableEpoch::default();
        assert_eq!(e.get(), 0);
        assert!(e.next() > e);
        assert_eq!(e.next().to_string(), "1");
        assert_eq!(TableEpoch::new(7).get(), 7);
    }
}
