//! Plain-text and binary persistence for tables.
//!
//! The paper's data lives in "proprietary formats such as compressed flat
//! files"; here we provide two simple, dependency-light formats:
//!
//! * CSV — human-readable, for examples and small fixtures;
//! * a little-endian binary format (`TSB1`) — compact, for benchmark
//!   datasets that are regenerated and reloaded.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::{Table, TableError};

const BINARY_MAGIC: &[u8; 4] = b"TSB1";

/// Writes a table as CSV (no header) to `writer`.
///
/// # Errors
///
/// Propagates I/O failures as [`TableError::Io`].
pub fn write_csv<W: Write>(table: &Table, writer: W) -> Result<(), TableError> {
    let mut w = BufWriter::new(writer);
    for row in table.row_iter() {
        let mut first = true;
        for v in row {
            if !first {
                write!(w, ",")?;
            }
            first = false;
            write!(w, "{v}")?;
        }
        writeln!(w)?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a table from CSV (no header) from `reader`.
///
/// # Errors
///
/// Returns [`TableError::Io`] on malformed numbers, ragged rows, or I/O
/// failures, and [`TableError::EmptyDimension`] for empty input.
pub fn read_csv<R: Read>(reader: R) -> Result<Table, TableError> {
    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut line = String::new();
    let mut r = BufReader::new(reader);
    loop {
        line.clear();
        if r.read_line(&mut line)? == 0 {
            break;
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let row: Result<Vec<f64>, _> = trimmed
            .split(',')
            .map(|s| s.trim().parse::<f64>())
            .collect();
        rows.push(row.map_err(|e| TableError::Io(format!("bad number in CSV: {e}")))?);
    }
    Table::from_rows(&rows)
}

/// Writes a table to `path` as CSV.
///
/// # Errors
///
/// Propagates I/O failures as [`TableError::Io`].
pub fn save_csv<P: AsRef<Path>>(table: &Table, path: P) -> Result<(), TableError> {
    write_csv(table, std::fs::File::create(path)?)
}

/// Reads a table from a CSV file at `path`.
///
/// # Errors
///
/// Propagates I/O and parse failures as [`TableError::Io`].
pub fn load_csv<P: AsRef<Path>>(path: P) -> Result<Table, TableError> {
    read_csv(std::fs::File::open(path)?)
}

/// Writes a table in the `TSB1` binary format: 4-byte magic, two u64
/// little-endian dimensions, then `rows*cols` f64 little-endian values.
///
/// # Errors
///
/// Propagates I/O failures as [`TableError::Io`].
pub fn write_binary<W: Write>(table: &Table, writer: W) -> Result<(), TableError> {
    let mut w = BufWriter::new(writer);
    w.write_all(BINARY_MAGIC)?;
    w.write_all(&(table.rows() as u64).to_le_bytes())?;
    w.write_all(&(table.cols() as u64).to_le_bytes())?;
    for &v in table.as_slice() {
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a table in the `TSB1` binary format.
///
/// # Errors
///
/// Returns [`TableError::Io`] on bad magic, truncated input, or I/O
/// failure.
pub fn read_binary<R: Read>(reader: R) -> Result<Table, TableError> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != BINARY_MAGIC {
        return Err(TableError::Io("bad magic: not a TSB1 table".into()));
    }
    let mut dim = [0u8; 8];
    r.read_exact(&mut dim)?;
    let rows = u64::from_le_bytes(dim) as usize;
    r.read_exact(&mut dim)?;
    let cols = u64::from_le_bytes(dim) as usize;
    let n = rows
        .checked_mul(cols)
        .ok_or_else(|| TableError::Io("dimension overflow".into()))?;
    let mut data = Vec::with_capacity(n);
    let mut buf = [0u8; 8];
    for _ in 0..n {
        r.read_exact(&mut buf)?;
        data.push(f64::from_le_bytes(buf));
    }
    Table::new(rows, cols, data)
}

/// Writes a table to `path` in the `TSB1` binary format.
///
/// # Errors
///
/// Propagates I/O failures as [`TableError::Io`].
pub fn save_binary<P: AsRef<Path>>(table: &Table, path: P) -> Result<(), TableError> {
    write_binary(table, std::fs::File::create(path)?)
}

/// Reads a table from a `TSB1` binary file at `path`.
///
/// # Errors
///
/// Propagates I/O and format failures as [`TableError::Io`].
pub fn load_binary<P: AsRef<Path>>(path: P) -> Result<Table, TableError> {
    read_binary(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        Table::from_fn(3, 4, |r, c| (r as f64) * 1.5 - (c as f64) * 0.25).unwrap()
    }

    #[test]
    fn csv_round_trip() {
        let t = sample();
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let back = read_csv(buf.as_slice()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn csv_skips_blank_lines() {
        let back = read_csv("1,2\n\n3,4\n".as_bytes()).unwrap();
        assert_eq!(back.shape(), (2, 2));
    }

    #[test]
    fn csv_rejects_garbage() {
        assert!(read_csv("1,banana\n".as_bytes()).is_err());
        assert!(read_csv("".as_bytes()).is_err(), "empty input");
        assert!(read_csv("1,2\n3\n".as_bytes()).is_err(), "ragged rows");
    }

    #[test]
    fn binary_round_trip() {
        let t = sample();
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        let back = read_binary(buf.as_slice()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let err = read_binary(&b"NOPE\x00\x00\x00\x00"[..]);
        assert!(err.is_err());
    }

    #[test]
    fn binary_rejects_truncation() {
        let t = sample();
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_binary(buf.as_slice()).is_err());
    }

    #[test]
    fn binary_preserves_special_values() {
        let t = Table::new(1, 3, vec![f64::MAX, f64::MIN_POSITIVE, -0.0]).unwrap();
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        let back = read_binary(buf.as_slice()).unwrap();
        assert_eq!(t.as_slice(), back.as_slice());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join(format!("tabsketch-io-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let t = sample();
        let csv = dir.join("t.csv");
        let bin = dir.join("t.tsb");
        save_csv(&t, &csv).unwrap();
        save_binary(&t, &bin).unwrap();
        assert_eq!(load_csv(&csv).unwrap(), t);
        assert_eq!(load_binary(&bin).unwrap(), t);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
