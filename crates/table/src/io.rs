//! Plain-text and binary persistence for tables.
//!
//! The paper's data lives in "proprietary formats such as compressed flat
//! files"; here we provide two simple, dependency-light formats:
//!
//! * CSV — human-readable, for examples and small fixtures;
//! * a little-endian binary format — compact, for benchmark datasets that
//!   are regenerated and reloaded.
//!
//! # Binary format v2 (`TSB2`)
//!
//! All integers little-endian:
//!
//! | field        | type       | notes                                  |
//! |--------------|------------|----------------------------------------|
//! | magic        | `[u8; 4]`  | `"TSB2"`                               |
//! | version      | `u32`      | `2`                                    |
//! | rows         | `u64`      |                                        |
//! | cols         | `u64`      |                                        |
//! | header CRC32 | `u32`      | over all preceding bytes               |
//! | values       | `[f64]`    | `rows * cols` row-major values         |
//! | body CRC32   | `u32`      | over the raw value bytes               |
//!
//! Loading validates the magic, version, declared size (against a byte
//! limit, before any allocation) and both checksums, so truncation,
//! bit-rot and partial writes surface as [`TableError::Corrupt`] rather
//! than panics, huge allocations, or silently wrong data. The legacy
//! unchecksummed `TSB1` layout (magic + dims + values) is still read for
//! backward compatibility; writes always produce `TSB2` and replace the
//! destination atomically.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::atomic::write_atomic;
use crate::checksum::Crc32;
use crate::storage::{MemoryBudget, SpillWriter};
use crate::{Table, TableError};

const BINARY_MAGIC_V1: &[u8; 4] = b"TSB1";
const BINARY_MAGIC_V2: &[u8; 4] = b"TSB2";
const FORMAT_VERSION: u32 = 2;
/// Buffer size for chunked body reads/writes.
const IO_CHUNK_BYTES: usize = 64 * 1024;

/// Default cap on the decoded size a binary file may declare (1 GiB of
/// `f64` payload). Guards against a corrupt or hostile header causing an
/// enormous allocation; raise it via [`read_binary_with_limit`] for
/// genuinely larger datasets.
pub const DEFAULT_MAX_BYTES: u64 = 1 << 30;

fn read_exact_in(
    r: &mut impl Read,
    buf: &mut [u8],
    section: &'static str,
) -> Result<(), TableError> {
    r.read_exact(buf)
        .map_err(|e| TableError::from_read_error(section, e))
}

pub(crate) fn read_u32_in(r: &mut impl Read, section: &'static str) -> Result<u32, TableError> {
    let mut buf = [0u8; 4];
    read_exact_in(r, &mut buf, section)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64_in(r: &mut impl Read, section: &'static str) -> Result<u64, TableError> {
    let mut buf = [0u8; 8];
    read_exact_in(r, &mut buf, section)?;
    Ok(u64::from_le_bytes(buf))
}

/// Validates that `count` elements of 8 bytes fit under `max_bytes` and
/// returns `count` as a `usize`.
pub(crate) fn checked_f64_count(
    count: u64,
    max_bytes: u64,
    section: &'static str,
) -> Result<usize, TableError> {
    let bytes = count
        .checked_mul(8)
        .ok_or_else(|| TableError::corrupt(section, "declared element count overflows"))?;
    if bytes > max_bytes {
        return Err(TableError::corrupt(
            section,
            format!("declared payload of {bytes} bytes exceeds the {max_bytes}-byte limit"),
        ));
    }
    usize::try_from(count)
        .map_err(|_| TableError::corrupt(section, "declared element count exceeds address space"))
}

/// Reads `count` little-endian `f64` values in bounded chunks, feeding the
/// raw bytes through `crc` when one is supplied.
pub(crate) fn read_f64_body(
    r: &mut impl Read,
    count: usize,
    mut crc: Option<&mut Crc32>,
) -> Result<Vec<f64>, TableError> {
    let mut data = Vec::with_capacity(count);
    let mut remaining = count;
    let mut buf = vec![0u8; IO_CHUNK_BYTES.min(count.max(1) * 8)];
    while remaining > 0 {
        let take = remaining.min(buf.len() / 8);
        let chunk = &mut buf[..take * 8];
        read_exact_in(r, chunk, "body")?;
        if let Some(crc) = crc.as_deref_mut() {
            crc.update(chunk);
        }
        for bytes in chunk.chunks_exact(8) {
            data.push(f64::from_le_bytes(bytes.try_into().expect("8-byte chunk")));
        }
        remaining -= take;
    }
    Ok(data)
}

/// Writes `values` as little-endian `f64` in bounded chunks, feeding the
/// raw bytes through `crc` when one is supplied.
pub(crate) fn write_f64_body(
    w: &mut impl Write,
    values: &[f64],
    mut crc: Option<&mut Crc32>,
) -> Result<(), TableError> {
    let mut buf = Vec::with_capacity(IO_CHUNK_BYTES.min(values.len().max(1) * 8));
    for chunk in values.chunks(IO_CHUNK_BYTES / 8) {
        buf.clear();
        for &v in chunk {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        if let Some(crc) = crc.as_deref_mut() {
            crc.update(&buf);
        }
        w.write_all(&buf)?;
    }
    Ok(())
}

/// Writes a table as CSV (no header) to `writer`.
///
/// # Errors
///
/// Propagates I/O failures as [`TableError::Io`].
pub fn write_csv<W: Write>(table: &Table, writer: W) -> Result<(), TableError> {
    let mut w = BufWriter::new(writer);
    for row in table.row_iter() {
        let mut first = true;
        for v in row {
            if !first {
                write!(w, ",")?;
            }
            first = false;
            write!(w, "{v}")?;
        }
        writeln!(w)?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a table from CSV (no header) from `reader`.
///
/// Non-finite entries (`nan`, `inf`) are rejected with
/// [`TableError::NonFinite`]: downstream median-based estimators are
/// poisoned by NaN, so bad values must be stopped at ingestion.
///
/// # Errors
///
/// Returns [`TableError::Corrupt`] on malformed numbers,
/// [`TableError::NonFinite`] on NaN/infinite cells, [`TableError::Io`] on
/// I/O failures, and [`TableError::EmptyDimension`] for empty input.
pub fn read_csv<R: Read>(reader: R) -> Result<Table, TableError> {
    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut line = String::new();
    let mut r = BufReader::new(reader);
    loop {
        line.clear();
        if r.read_line(&mut line)? == 0 {
            break;
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let row: Result<Vec<f64>, _> = trimmed
            .split(',')
            .map(|s| s.trim().parse::<f64>())
            .collect();
        rows.push(row.map_err(|e| TableError::corrupt("csv", format!("bad number: {e}")))?);
    }
    Table::from_rows(&rows)
}

/// Writes a table to `path` as CSV, atomically replacing any existing
/// file.
///
/// # Errors
///
/// Propagates I/O failures as [`TableError::Io`].
pub fn save_csv<P: AsRef<Path>>(table: &Table, path: P) -> Result<(), TableError> {
    write_atomic(path.as_ref(), |f| write_csv(table, f))
}

/// Reads a table from a CSV file at `path`.
///
/// # Errors
///
/// Propagates I/O and parse failures; see [`read_csv`].
pub fn load_csv<P: AsRef<Path>>(path: P) -> Result<Table, TableError> {
    read_csv(std::fs::File::open(path)?)
}

/// Writes a table in the `TSB2` binary format (see the module docs for
/// the wire layout).
///
/// # Errors
///
/// Propagates I/O failures as [`TableError::Io`].
pub fn write_binary<W: Write>(table: &Table, writer: W) -> Result<(), TableError> {
    let mut w = BufWriter::new(writer);

    let mut header = Vec::with_capacity(4 + 4 + 8 + 8);
    header.extend_from_slice(BINARY_MAGIC_V2);
    header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    header.extend_from_slice(&(table.rows() as u64).to_le_bytes());
    header.extend_from_slice(&(table.cols() as u64).to_le_bytes());
    let mut crc = Crc32::new();
    crc.update(&header);
    w.write_all(&header)?;
    w.write_all(&crc.finish().to_le_bytes())?;

    let mut body_crc = Crc32::new();
    write_f64_body(&mut w, table.as_slice(), Some(&mut body_crc))?;
    w.write_all(&body_crc.finish().to_le_bytes())?;
    w.flush()?;
    Ok(())
}

/// Reads a table in the `TSB2` binary format (or the legacy `TSB1`
/// layout), refusing files that declare more than [`DEFAULT_MAX_BYTES`]
/// of payload.
///
/// # Errors
///
/// Returns [`TableError::Corrupt`] on bad magic/version, checksum
/// mismatch, truncation, or an implausibly large declared size, and
/// [`TableError::Io`] on genuine I/O failures.
pub fn read_binary<R: Read>(reader: R) -> Result<Table, TableError> {
    read_binary_with_limit(reader, DEFAULT_MAX_BYTES)
}

/// [`read_binary`] with an explicit cap (in bytes of `f64` payload) on the
/// size the header may declare.
///
/// # Errors
///
/// See [`read_binary`].
pub fn read_binary_with_limit<R: Read>(reader: R, max_bytes: u64) -> Result<Table, TableError> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 4];
    read_exact_in(&mut r, &mut magic, "magic")?;
    match &magic {
        m if m == BINARY_MAGIC_V1 => read_binary_v1_after_magic(&mut r, max_bytes),
        m if m == BINARY_MAGIC_V2 => read_binary_v2_after_magic(&mut r, max_bytes),
        _ => Err(TableError::corrupt(
            "magic",
            "not a TSB1/TSB2 table file (bad magic)",
        )),
    }
}

/// Parses the dims of a legacy `TSB1` header (after the magic), returning
/// `(rows, cols, element count)` with the count validated against
/// `max_bytes` before any allocation.
fn read_v1_header(r: &mut impl Read, max_bytes: u64) -> Result<(usize, usize, usize), TableError> {
    let rows = read_u64_in(r, "header")?;
    let cols = read_u64_in(r, "header")?;
    let n = rows
        .checked_mul(cols)
        .ok_or_else(|| TableError::corrupt("header", "dimension product overflows"))?;
    let n = checked_f64_count(n, max_bytes, "header")?;
    Ok((rows as usize, cols as usize, n))
}

/// Parses and checksum-verifies a `TSB2` header (after the magic),
/// returning `(rows, cols, element count)` with the count validated
/// against `max_bytes` before any allocation.
fn read_v2_header(r: &mut impl Read, max_bytes: u64) -> Result<(usize, usize, usize), TableError> {
    let mut header = [0u8; 4 + 8 + 8];
    read_exact_in(r, &mut header, "header")?;
    let mut crc = Crc32::new();
    crc.update(BINARY_MAGIC_V2);
    crc.update(&header);
    let stored_crc = read_u32_in(r, "header")?;
    if stored_crc != crc.finish() {
        return Err(TableError::corrupt("header", "header checksum mismatch"));
    }
    let version = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(TableError::corrupt(
            "header",
            format!("unsupported format version {version} (expected {FORMAT_VERSION})"),
        ));
    }
    let rows = u64::from_le_bytes(header[4..12].try_into().expect("8 bytes"));
    let cols = u64::from_le_bytes(header[12..20].try_into().expect("8 bytes"));
    let n = rows
        .checked_mul(cols)
        .ok_or_else(|| TableError::corrupt("header", "dimension product overflows"))?;
    let n = checked_f64_count(n, max_bytes, "header")?;
    Ok((rows as usize, cols as usize, n))
}

fn read_binary_v1_after_magic(r: &mut impl Read, max_bytes: u64) -> Result<Table, TableError> {
    let (rows, cols, n) = read_v1_header(r, max_bytes)?;
    let data = read_f64_body(r, n, None)?;
    Table::new(rows, cols, data)
}

fn read_binary_v2_after_magic(r: &mut impl Read, max_bytes: u64) -> Result<Table, TableError> {
    let (rows, cols, n) = read_v2_header(r, max_bytes)?;
    let mut body_crc = Crc32::new();
    let data = read_f64_body(r, n, Some(&mut body_crc))?;
    let stored_body_crc = read_u32_in(r, "body")?;
    if stored_body_crc != body_crc.finish() {
        return Err(TableError::corrupt("body", "body checksum mismatch"));
    }
    Table::new(rows, cols, data)
}

/// Reads `count` little-endian `f64` values in bounded chunks, feeding
/// raw bytes through `crc` and decoded values into `writer` — the
/// streaming counterpart of [`read_f64_body`] that never materializes the
/// whole body.
fn stream_f64_body(
    r: &mut impl Read,
    count: usize,
    mut crc: Option<&mut Crc32>,
    writer: &mut SpillWriter,
) -> Result<(), TableError> {
    let mut remaining = count;
    let mut buf = vec![0u8; IO_CHUNK_BYTES.min(count.max(1) * 8)];
    let mut vals = Vec::with_capacity(buf.len() / 8);
    while remaining > 0 {
        let take = remaining.min(buf.len() / 8);
        let chunk = &mut buf[..take * 8];
        read_exact_in(r, chunk, "body")?;
        if let Some(crc) = crc.as_deref_mut() {
            crc.update(chunk);
        }
        vals.clear();
        for bytes in chunk.chunks_exact(8) {
            vals.push(f64::from_le_bytes(bytes.try_into().expect("8-byte chunk")));
        }
        writer.push_values(&vals)?;
        remaining -= take;
    }
    Ok(())
}

/// Writes a table to `path` in the `TSB2` binary format, atomically
/// replacing any existing file.
///
/// # Errors
///
/// Propagates I/O failures as [`TableError::Io`].
pub fn save_binary<P: AsRef<Path>>(table: &Table, path: P) -> Result<(), TableError> {
    write_atomic(path.as_ref(), |f| write_binary(table, f))
}

/// Reads a table from a `TSB1`/`TSB2` binary file at `path`.
///
/// # Errors
///
/// Propagates I/O and format failures; see [`read_binary`].
pub fn load_binary<P: AsRef<Path>>(path: P) -> Result<Table, TableError> {
    read_binary(std::fs::File::open(path)?)
}

/// One-pass, bounded-memory CSV ingestion: rows stream through a
/// [`SpillWriter`] so at most `budget` bytes of table data are resident
/// at any point. With an unbounded budget this is bit-identical to
/// [`read_csv`] (and produces the same dense backend); with a bounded
/// budget the values are identical but live in a spilled table.
///
/// Error behavior matches [`read_csv`] exactly, including precedence:
/// the first malformed number (in line order) wins over a ragged row,
/// which wins over a non-finite cell.
///
/// # Errors
///
/// See [`read_csv`]; additionally propagates I/O failures from writing
/// the spill file.
pub fn read_csv_streaming<R: Read>(reader: R, budget: MemoryBudget) -> Result<Table, TableError> {
    let mut r = BufReader::new(reader);
    let mut line = String::new();
    let mut writer = SpillWriter::new(budget);
    let mut row_buf: Vec<f64> = Vec::new();
    // Raggedness is deferred, not eager: the eager path parses every line
    // first (surfacing the first bad number) and only then validates row
    // shapes, so a later parse error must win over an earlier ragged row.
    let mut ragged: Option<TableError> = None;
    loop {
        line.clear();
        if r.read_line(&mut line)? == 0 {
            break;
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        row_buf.clear();
        for cell in trimmed.split(',') {
            row_buf.push(
                cell.trim()
                    .parse::<f64>()
                    .map_err(|e| TableError::corrupt("csv", format!("bad number: {e}")))?,
            );
        }
        if ragged.is_none() {
            if let Err(e) = writer.push_row(&row_buf) {
                match e {
                    TableError::ShapeMismatch { .. } => ragged = Some(e),
                    other => return Err(other),
                }
            }
        }
    }
    if let Some(e) = ragged {
        return Err(e);
    }
    writer.finish()
}

/// One-pass, bounded-memory binary ingestion: the body streams through a
/// [`SpillWriter`] in I/O-sized chunks instead of being materialized.
/// Accepts the same `TSB1`/`TSB2` formats as [`read_binary`] with
/// identical validation (checksums, size limit, error precedence) and
/// bit-identical resulting values.
///
/// # Errors
///
/// See [`read_binary`]; additionally propagates I/O failures from writing
/// the spill file.
pub fn read_binary_streaming<R: Read>(
    reader: R,
    budget: MemoryBudget,
) -> Result<Table, TableError> {
    read_binary_streaming_with_limit(reader, budget, DEFAULT_MAX_BYTES)
}

/// [`read_binary_streaming`] with an explicit cap (in bytes of `f64`
/// payload) on the size the header may declare.
///
/// # Errors
///
/// See [`read_binary_streaming`].
pub fn read_binary_streaming_with_limit<R: Read>(
    reader: R,
    budget: MemoryBudget,
    max_bytes: u64,
) -> Result<Table, TableError> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 4];
    read_exact_in(&mut r, &mut magic, "magic")?;
    match &magic {
        m if m == BINARY_MAGIC_V1 => {
            let (_, cols, n) = read_v1_header(&mut r, max_bytes)?;
            let mut writer = SpillWriter::with_cols(cols, budget);
            stream_f64_body(&mut r, n, None, &mut writer)?;
            writer.finish()
        }
        m if m == BINARY_MAGIC_V2 => {
            let (_, cols, n) = read_v2_header(&mut r, max_bytes)?;
            let mut writer = SpillWriter::with_cols(cols, budget);
            let mut body_crc = Crc32::new();
            stream_f64_body(&mut r, n, Some(&mut body_crc), &mut writer)?;
            // The checksum verdict must precede `finish`'s deferred
            // value validation, matching the eager path's precedence.
            let stored_body_crc = read_u32_in(&mut r, "body")?;
            if stored_body_crc != body_crc.finish() {
                return Err(TableError::corrupt("body", "body checksum mismatch"));
            }
            writer.finish()
        }
        _ => Err(TableError::corrupt(
            "magic",
            "not a TSB1/TSB2 table file (bad magic)",
        )),
    }
}

/// Reads a CSV file at `path` under a memory budget; see
/// [`read_csv_streaming`].
///
/// # Errors
///
/// See [`read_csv_streaming`].
pub fn load_csv_streaming<P: AsRef<Path>>(
    path: P,
    budget: MemoryBudget,
) -> Result<Table, TableError> {
    read_csv_streaming(std::fs::File::open(path)?, budget)
}

/// Reads a `TSB1`/`TSB2` binary file at `path` under a memory budget; see
/// [`read_binary_streaming`].
///
/// # Errors
///
/// See [`read_binary_streaming`].
pub fn load_binary_streaming<P: AsRef<Path>>(
    path: P,
    budget: MemoryBudget,
) -> Result<Table, TableError> {
    read_binary_streaming(std::fs::File::open(path)?, budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{Fault, FaultyReader, FaultyWriter};

    fn sample() -> Table {
        Table::from_fn(3, 4, |r, c| (r as f64) * 1.5 - (c as f64) * 0.25).unwrap()
    }

    /// Serializes `table` in the legacy v1 layout.
    fn write_binary_v1(table: &Table) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(BINARY_MAGIC_V1);
        buf.extend_from_slice(&(table.rows() as u64).to_le_bytes());
        buf.extend_from_slice(&(table.cols() as u64).to_le_bytes());
        for &v in table.as_slice() {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        buf
    }

    #[test]
    fn csv_round_trip() {
        let t = sample();
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let back = read_csv(buf.as_slice()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn csv_skips_blank_lines() {
        let back = read_csv("1,2\n\n3,4\n".as_bytes()).unwrap();
        assert_eq!(back.shape(), (2, 2));
    }

    #[test]
    fn csv_rejects_garbage() {
        assert!(matches!(
            read_csv("1,banana\n".as_bytes()),
            Err(TableError::Corrupt { section: "csv", .. })
        ));
        assert!(read_csv("".as_bytes()).is_err(), "empty input");
        assert!(read_csv("1,2\n3\n".as_bytes()).is_err(), "ragged rows");
    }

    #[test]
    fn csv_rejects_non_finite_cells() {
        let err = read_csv("1,2\n3,nan\n".as_bytes()).unwrap_err();
        assert_eq!(err, TableError::NonFinite { row: 1, col: 1 });
        let err = read_csv("inf,2\n".as_bytes()).unwrap_err();
        assert_eq!(err, TableError::NonFinite { row: 0, col: 0 });
    }

    #[test]
    fn binary_round_trip() {
        let t = sample();
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        let back = read_binary(buf.as_slice()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn binary_reads_legacy_v1() {
        let t = sample();
        let back = read_binary(write_binary_v1(&t).as_slice()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let err = read_binary(&b"NOPE\x00\x00\x00\x00"[..]).unwrap_err();
        assert!(matches!(
            err,
            TableError::Corrupt {
                section: "magic",
                ..
            }
        ));
    }

    #[test]
    fn binary_rejects_truncation_everywhere() {
        let t = sample();
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        for cut in 0..buf.len() {
            let err = read_binary(FaultyReader::new(buf.clone(), Fault::Truncate { at: cut }))
                .unwrap_err();
            assert!(
                matches!(err, TableError::Corrupt { .. }),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn binary_rejects_any_bit_flip() {
        let t = sample();
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        for at in 0..buf.len() {
            let r = FaultyReader::new(buf.clone(), Fault::FlipBits { at, mask: 0x10 });
            let err = read_binary(r).unwrap_err();
            assert!(
                matches!(err, TableError::Corrupt { .. }),
                "flip at {at} gave {err:?}"
            );
        }
    }

    #[test]
    fn binary_survives_short_reads() {
        let t = sample();
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        for chunk in [1, 3, 7] {
            let back =
                read_binary(FaultyReader::new(buf.clone(), Fault::ShortReads { chunk })).unwrap();
            assert_eq!(t, back, "chunk size {chunk}");
        }
    }

    #[test]
    fn binary_propagates_io_errors_as_io() {
        let t = sample();
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        let err = read_binary(FaultyReader::new(buf, Fault::ErrorAt { at: 30 })).unwrap_err();
        assert!(matches!(err, TableError::Io(_)), "got {err:?}");
    }

    #[test]
    fn binary_bounds_declared_allocation() {
        // A v1 header declaring ~u64::MAX elements must be rejected before
        // any allocation happens.
        let mut buf = Vec::new();
        buf.extend_from_slice(BINARY_MAGIC_V1);
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        buf.extend_from_slice(&2u64.to_le_bytes());
        let err = read_binary(buf.as_slice()).unwrap_err();
        assert!(matches!(
            err,
            TableError::Corrupt {
                section: "header",
                ..
            }
        ));

        // A plausible-but-huge declared size trips the explicit limit.
        let t = sample();
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        let err = read_binary_with_limit(buf.as_slice(), 16).unwrap_err();
        assert!(matches!(
            err,
            TableError::Corrupt {
                section: "header",
                ..
            }
        ));
    }

    #[test]
    fn binary_write_failure_is_reported() {
        let t = sample();
        let err = write_binary(&t, FaultyWriter::failing_after(10)).unwrap_err();
        assert!(matches!(err, TableError::Io(_)));
    }

    #[test]
    fn binary_preserves_special_values() {
        let t = Table::new(1, 3, vec![f64::MAX, f64::MIN_POSITIVE, -0.0]).unwrap();
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        let back = read_binary(buf.as_slice()).unwrap();
        assert_eq!(t.as_slice(), back.as_slice());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join(format!("tabsketch-io-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let t = sample();
        let csv = dir.join("t.csv");
        let bin = dir.join("t.tsb");
        save_csv(&t, &csv).unwrap();
        save_binary(&t, &bin).unwrap();
        assert_eq!(load_csv(&csv).unwrap(), t);
        assert_eq!(load_binary(&bin).unwrap(), t);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
