//! Summary statistics over tables, rows, and columns.
//!
//! Small, allocation-light helpers used by the CLI's `info` command, the
//! examples' reporting, and anyone deciding how to tile or transform a
//! table before sketching it.

use crate::Table;

/// Summary statistics of a value collection.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of values.
    pub count: usize,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
}

impl Summary {
    /// Summarizes a non-empty slice; `None` for an empty one.
    pub fn of(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for &v in values {
            min = min.min(v);
            max = max.max(v);
            sum += v;
        }
        let mean = sum / values.len() as f64;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64;
        Some(Summary {
            count: values.len(),
            min,
            max,
            mean,
            std_dev: var.sqrt(),
        })
    }
}

/// Summary of every cell of a table.
pub fn table_summary(table: &Table) -> Summary {
    Summary::of(table.as_slice()).expect("tables are non-empty by construction")
}

/// Per-row means (e.g. average volume per station).
pub fn row_means(table: &Table) -> Vec<f64> {
    table
        .row_iter()
        .map(|row| row.iter().sum::<f64>() / row.len() as f64)
        .collect()
}

/// Per-column means (e.g. average volume per time slot — the diurnal
/// profile of a call-volume table).
pub fn col_means(table: &Table) -> Vec<f64> {
    let mut sums = vec![0.0f64; table.cols()];
    for row in table.row_iter() {
        for (acc, &v) in sums.iter_mut().zip(row) {
            *acc += v;
        }
    }
    let n = table.rows() as f64;
    sums.iter_mut().for_each(|v| *v /= n);
    sums
}

/// Per-row sums.
pub fn row_sums(table: &Table) -> Vec<f64> {
    table.row_iter().map(|row| row.iter().sum()).collect()
}

/// The `q`-quantile (0 ≤ q ≤ 1) of the table's values, by the
/// nearest-rank method. `None` for out-of-range `q`.
pub fn quantile(table: &Table, q: f64) -> Option<f64> {
    if !(0.0..=1.0).contains(&q) || !q.is_finite() {
        return None;
    }
    let mut values: Vec<f64> = table.as_slice().to_vec();
    let rank = ((q * (values.len() - 1) as f64).round() as usize).min(values.len() - 1);
    let (_, v, _) = values.select_nth_unstable_by(rank, |a, b| a.total_cmp(b));
    Some(*v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        Table::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap()
    }

    #[test]
    fn summary_values() {
        let s = table_summary(&sample());
        assert_eq!(s.count, 6);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 6.0);
        assert!((s.mean - 3.5).abs() < 1e-12);
        // Population stddev of 1..6 = sqrt(35/12).
        assert!((s.std_dev - (35.0f64 / 12.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_slice_summary_is_none() {
        assert!(Summary::of(&[]).is_none());
        assert!(Summary::of(&[7.0]).is_some());
    }

    #[test]
    fn row_and_col_profiles() {
        let t = sample();
        assert_eq!(row_means(&t), vec![2.0, 5.0]);
        assert_eq!(col_means(&t), vec![2.5, 3.5, 4.5]);
        assert_eq!(row_sums(&t), vec![6.0, 15.0]);
    }

    #[test]
    fn quantiles() {
        let t = Table::new(1, 5, vec![10.0, 30.0, 20.0, 50.0, 40.0]).unwrap();
        assert_eq!(quantile(&t, 0.0), Some(10.0));
        assert_eq!(quantile(&t, 0.5), Some(30.0));
        assert_eq!(quantile(&t, 1.0), Some(50.0));
        assert_eq!(quantile(&t, 1.5), None);
        assert_eq!(quantile(&t, f64::NAN), None);
    }
}
