//! Vector/table preprocessing transforms.
//!
//! The paper's introduction notes that "depending on applications, one may
//! consider dilation, scaling and other operations on vectors before
//! computing the L1 or L2 norms". These transforms make such pipelines
//! explicit; because sketches are linear, sketching a transformed table is
//! exactly as cheap as sketching the original.

use crate::{Table, TableError};

/// Scales every cell by `factor` (dilation of values).
pub fn scale(table: &mut Table, factor: f64) {
    for v in table.as_mut_slice() {
        *v *= factor;
    }
}

/// Adds `offset` to every cell.
pub fn shift(table: &mut Table, offset: f64) {
    for v in table.as_mut_slice() {
        *v += offset;
    }
}

/// `log(1 + x)` per cell, a standard variance-stabilizer for count data
/// such as call volumes. Negative cells are clamped to zero first.
pub fn log1p(table: &mut Table) {
    for v in table.as_mut_slice() {
        *v = v.max(0.0).ln_1p();
    }
}

/// Normalizes each row to unit L1 mass, turning rows into distributions —
/// the "call volume distribution" view of the paper's cell-phone example.
/// Rows whose mass is zero are left untouched.
pub fn normalize_rows_l1(table: &mut Table) {
    let cols = table.cols();
    let data = table.as_mut_slice();
    for row in data.chunks_exact_mut(cols) {
        let mass: f64 = row.iter().map(|v| v.abs()).sum();
        if mass > 0.0 {
            for v in row {
                *v /= mass;
            }
        }
    }
}

/// Standardizes each row to zero mean and unit variance (z-scores).
/// Constant rows become all-zero.
pub fn standardize_rows(table: &mut Table) {
    let cols = table.cols();
    let data = table.as_mut_slice();
    for row in data.chunks_exact_mut(cols) {
        let n = row.len() as f64;
        let mean = row.iter().sum::<f64>() / n;
        let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        let sd = var.sqrt();
        if sd > 0.0 {
            for v in row.iter_mut() {
                *v = (*v - mean) / sd;
            }
        } else {
            for v in row.iter_mut() {
                *v = 0.0;
            }
        }
    }
}

/// Clamps every cell into `[lo, hi]` — the "pre-filtering stage" the
/// paper's synthetic benchmark is designed to evade (its outliers stay
/// inside any plausible clamp range).
///
/// # Errors
///
/// Returns a [`TableError::Io`] describing an inverted range.
pub fn clamp(table: &mut Table, lo: f64, hi: f64) -> Result<usize, TableError> {
    if lo > hi {
        return Err(TableError::Io(format!(
            "clamp range inverted: [{lo}, {hi}]"
        )));
    }
    let mut changed = 0;
    for v in table.as_mut_slice() {
        let c = v.clamp(lo, hi);
        if c != *v {
            *v = c;
            changed += 1;
        }
    }
    Ok(changed)
}

/// Downsamples a table by averaging `factor_rows × factor_cols` blocks —
/// a cheap way to trade resolution for size before sketching. Trailing
/// cells that do not fill a whole block are dropped (consistent with
/// [`crate::TileGrid`] truncation).
///
/// # Errors
///
/// Returns [`TableError::InvalidTileSize`] when a factor is zero or
/// exceeds the table, or [`TableError::EmptyDimension`] when nothing
/// remains.
pub fn downsample(
    table: &Table,
    factor_rows: usize,
    factor_cols: usize,
) -> Result<Table, TableError> {
    if factor_rows == 0 || factor_cols == 0 {
        return Err(TableError::InvalidTileSize {
            tile_rows: factor_rows,
            tile_cols: factor_cols,
        });
    }
    let out_rows = table.rows() / factor_rows;
    let out_cols = table.cols() / factor_cols;
    if out_rows == 0 || out_cols == 0 {
        return Err(TableError::EmptyDimension);
    }
    let inv = 1.0 / (factor_rows * factor_cols) as f64;
    Table::from_fn(out_rows, out_cols, |r, c| {
        let mut acc = 0.0;
        for i in 0..factor_rows {
            for j in 0..factor_cols {
                acc += table.get(r * factor_rows + i, c * factor_cols + j);
            }
        }
        acc * inv
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        Table::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 0.0, -4.0]]).unwrap()
    }

    #[test]
    fn scale_and_shift() {
        let mut t = sample();
        scale(&mut t, 2.0);
        assert_eq!(t.row(0), &[2.0, 4.0, 6.0]);
        shift(&mut t, 1.0);
        assert_eq!(t.row(0), &[3.0, 5.0, 7.0]);
    }

    #[test]
    fn log1p_clamps_negatives() {
        let mut t = sample();
        log1p(&mut t);
        assert_eq!(t.get(1, 2), 0.0, "negative clamped to ln(1+0)");
        assert!((t.get(0, 0) - 2f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn l1_normalization_makes_distributions() {
        let mut t = sample();
        normalize_rows_l1(&mut t);
        for r in 0..2 {
            let mass: f64 = t.row(r).iter().map(|v| v.abs()).sum();
            assert!((mass - 1.0).abs() < 1e-12, "row {r} mass {mass}");
        }
        // Zero row stays zero.
        let mut z = Table::zeros(1, 3).unwrap();
        normalize_rows_l1(&mut z);
        assert_eq!(z.as_slice(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn standardization_zero_mean_unit_var() {
        let mut t = sample();
        standardize_rows(&mut t);
        for r in 0..2 {
            let row = t.row(r);
            let mean: f64 = row.iter().sum::<f64>() / 3.0;
            let var: f64 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / 3.0;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-12);
        }
        let mut c = Table::from_fn(1, 4, |_, _| 7.0).unwrap();
        standardize_rows(&mut c);
        assert_eq!(c.as_slice(), &[0.0; 4]);
    }

    #[test]
    fn clamp_counts_changes() {
        let mut t = sample();
        let changed = clamp(&mut t, 0.0, 3.0).unwrap();
        assert_eq!(changed, 2, "4.0 and -4.0 clamped");
        assert_eq!(t.get(1, 0), 3.0);
        assert_eq!(t.get(1, 2), 0.0);
        assert!(clamp(&mut t, 5.0, 1.0).is_err());
    }

    #[test]
    fn downsample_averages_blocks() {
        let t = Table::from_fn(4, 4, |r, c| (r * 4 + c) as f64).unwrap();
        let d = downsample(&t, 2, 2).unwrap();
        assert_eq!(d.shape(), (2, 2));
        // Top-left block {0,1,4,5} -> 2.5.
        assert_eq!(d.get(0, 0), 2.5);
        assert_eq!(d.get(1, 1), 12.5);
    }

    #[test]
    fn downsample_truncates_and_validates() {
        let t = Table::from_fn(5, 5, |_, _| 1.0).unwrap();
        let d = downsample(&t, 2, 2).unwrap();
        assert_eq!(d.shape(), (2, 2));
        assert!(downsample(&t, 0, 2).is_err());
        assert!(downsample(&t, 6, 2).is_err());
    }
}
