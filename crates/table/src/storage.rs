//! Memory-budgeted storage backends for [`Table`].
//!
//! The paper's premise is tables too massive to keep in memory; the
//! sketch — not the data — is what must stay resident. This module lets a
//! [`Table`] hold its values in one of two backends:
//!
//! * [`TableStorage::Dense`] — today's row-major `Vec<f64>`, zero-cost,
//!   the default for every constructor;
//! * [`TableStorage::Spilled`] — fixed-height row chunks kept in a
//!   bounded resident window and evicted LRU to a checksummed temp file.
//!
//! A [`MemoryBudget`] controls the resident window. Spilled chunks are
//! framed like the `TSB2` table format (see [`crate::io`]): a magic +
//! version + dimensions header protected by a CRC32, then per-chunk
//! `f64` little-endian bodies each followed by their own CRC32, so a
//! corrupted or truncated spill file surfaces as a typed
//! [`TableError::Corrupt`] instead of silently wrong data.
//!
//! **Spill file layout (`TSP1`)**, all integers little-endian:
//!
//! | field        | type      | notes                                   |
//! |--------------|-----------|------------------------------------------|
//! | magic        | `[u8; 4]` | `"TSP1"`                                |
//! | version      | `u32`     | `1`                                     |
//! | rows         | `u64`     |                                         |
//! | cols         | `u64`     |                                         |
//! | chunk rows   | `u64`     | fixed chunk height (last may be short)  |
//! | header CRC32 | `u32`     | over all preceding bytes                |
//! | chunk `i`    | `[f64]`   | `rows_in_chunk(i) * cols` values        |
//! | chunk CRC32  | `u32`     | over chunk `i`'s raw value bytes        |
//!
//! Chunk offsets are computable (`header + i * (chunk_rows*cols*8 + 4)`)
//! because every chunk but the last has the same height.
//!
//! Residency is observable through the global metrics registry, and is
//! accounted **process-wide across all spilled tables** (so a
//! [`crate::Collection`] of many members shares one figure):
//! `table.storage.resident_bytes` (gauge, current resident bytes),
//! `table.storage.resident_peak_bytes` (gauge, high-water mark),
//! `table.storage.chunk_loads` / `table.storage.chunk_evictions` /
//! `table.storage.spilled_tables` (counters).

use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::checksum::Crc32;
use crate::io::{read_f64_body, read_u32_in, write_f64_body};
use crate::{Table, TableError};

const SPILL_MAGIC: &[u8; 4] = b"TSP1";
const SPILL_VERSION: u32 = 1;
/// Bytes of the fixed-size spill header (magic + version + rows + cols +
/// chunk_rows + CRC32).
const SPILL_HEADER_BYTES: u64 = 4 + 4 + 8 + 8 + 8 + 4;

/// How many chunks the resident window aims to hold: the budget is split
/// four ways so eviction granularity stays well below the budget itself.
const WINDOW_CHUNKS: usize = 4;

static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

/// Spilled-chunk bytes resident across **every** spilled table in the
/// process. Collections open many member tables under one shared
/// [`MemoryBudget`], so the residency gauges must account globally —
/// a per-table figure would let N tables each look under budget while
/// their sum blows it.
static GLOBAL_RESIDENT_BYTES: AtomicU64 = AtomicU64::new(0);

/// Current process-wide resident spilled-chunk bytes (the live value
/// behind the `table.storage.resident_bytes` gauge).
pub fn resident_bytes() -> u64 {
    GLOBAL_RESIDENT_BYTES.load(Ordering::Relaxed)
}

fn resident_add(bytes: u64) {
    let now = GLOBAL_RESIDENT_BYTES.fetch_add(bytes, Ordering::Relaxed) + bytes;
    tabsketch_obs::gauge!("table.storage.resident_bytes").set(now);
    tabsketch_obs::gauge!("table.storage.resident_peak_bytes").raise(now);
}

fn resident_sub(bytes: u64) {
    if bytes == 0 {
        return;
    }
    // Adds and subs are balanced (every resident chunk is counted once),
    // but saturate anyway so an accounting bug can never wrap the gauge.
    let mut now = 0;
    let _ = GLOBAL_RESIDENT_BYTES.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
        now = v.saturating_sub(bytes);
        Some(now)
    });
    tabsketch_obs::gauge!("table.storage.resident_bytes").set(now);
}

/// A byte limit on how much of a table may stay resident in memory.
///
/// `unbounded()` (the [`Default`]) keeps everything dense in RAM — the
/// zero-cost path every constructor uses. A bounded budget makes loaders
/// and [`Table::with_budget`] spill row chunks to disk once the table
/// outgrows it, and makes the banded sketch builders in `tabsketch-core`
/// process the table in windows of at most this many bytes.
///
/// The budget is honored down to a floor of one table row: a budget
/// smaller than a single row still keeps one row resident.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoryBudget {
    bytes: Option<u64>,
}

impl MemoryBudget {
    /// No limit: tables stay dense in memory.
    pub const fn unbounded() -> Self {
        MemoryBudget { bytes: None }
    }

    /// At most `n` bytes of table data resident at once.
    pub const fn bytes(n: u64) -> Self {
        MemoryBudget { bytes: Some(n) }
    }

    /// The limit in bytes, or `None` when unbounded.
    pub const fn get(&self) -> Option<u64> {
        self.bytes
    }

    /// Whether this budget imposes no limit.
    pub const fn is_unbounded(&self) -> bool {
        self.bytes.is_none()
    }

    /// How many rows of `cols` columns fit in the budget (at least one),
    /// or `None` when unbounded.
    pub fn rows_in_budget(&self, cols: usize) -> Option<usize> {
        let bytes = self.bytes?;
        let row_bytes = (cols.max(1) as u64) * 8;
        Some((bytes / row_bytes).max(1) as usize)
    }

    /// The spill geometry `(chunk_rows, window_chunks)` for a table of
    /// `cols` columns, or `None` when unbounded (nothing spills).
    fn spill_geometry(&self, cols: usize) -> Option<(usize, usize)> {
        let budget_rows = self.rows_in_budget(cols)?;
        let chunk_rows = (budget_rows / WINDOW_CHUNKS).max(1);
        let window_chunks = (budget_rows / chunk_rows).max(1);
        Some((chunk_rows, window_chunks))
    }
}

/// Where a [`Table`]'s values live. See the module docs for the two
/// backends; consumers should normally stay backend-agnostic by using
/// [`Table::row_chunks`], [`Table::row_window`], or views.
#[derive(Clone, Debug)]
pub enum TableStorage {
    /// The whole table resident as one row-major `Vec<f64>`.
    Dense(Vec<f64>),
    /// Row chunks in a bounded resident window, backed by a checksummed
    /// temp file.
    Spilled(SpilledStorage),
}

/// The spilled backend: a shared handle onto a chunked, checksummed temp
/// file plus the LRU window of resident chunks. Cloning shares the window
/// (and the file, which is deleted when the last clone drops).
#[derive(Clone, Debug)]
pub struct SpilledStorage {
    inner: Arc<SpillInner>,
}

#[derive(Debug)]
struct SpillInner {
    rows: usize,
    cols: usize,
    chunk_rows: usize,
    window_chunks: usize,
    path: PathBuf,
    state: Mutex<WindowState>,
    /// Fault-injection hook: when set, the next chunk rewrite is torn
    /// (half-written, no checksum) and fails with an I/O error.
    write_fault: AtomicBool,
}

#[derive(Debug)]
struct WindowState {
    file: File,
    /// Resident chunks, least-recently-used first.
    resident: Vec<(usize, Arc<[f64]>)>,
}

impl Drop for SpillInner {
    fn drop(&mut self) {
        // Return this table's resident window to the global accounting
        // before the file goes away, so long-lived collections don't
        // leak residency from members that have been dropped.
        if let Ok(state) = self.state.get_mut() {
            let bytes: u64 = state
                .resident
                .iter()
                .map(|(_, c)| (c.len() * 8) as u64)
                .sum();
            resident_sub(bytes);
        }
        let _ = std::fs::remove_file(&self.path);
    }
}

fn fresh_spill_path() -> PathBuf {
    let seq = SPILL_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("tabsketch-spill-{}-{seq}.tsp", std::process::id()))
}

fn chunk_offset(chunk_rows: usize, cols: usize, idx: usize) -> u64 {
    SPILL_HEADER_BYTES + (idx as u64) * ((chunk_rows * cols * 8 + 4) as u64)
}

fn spill_header(rows: usize, cols: usize, chunk_rows: usize) -> Vec<u8> {
    let mut header = Vec::with_capacity(SPILL_HEADER_BYTES as usize);
    header.extend_from_slice(SPILL_MAGIC);
    header.extend_from_slice(&SPILL_VERSION.to_le_bytes());
    header.extend_from_slice(&(rows as u64).to_le_bytes());
    header.extend_from_slice(&(cols as u64).to_le_bytes());
    header.extend_from_slice(&(chunk_rows as u64).to_le_bytes());
    let mut crc = Crc32::new();
    crc.update(&header);
    header.extend_from_slice(&crc.finish().to_le_bytes());
    header
}

impl SpilledStorage {
    /// Number of stored row chunks.
    pub fn chunk_count(&self) -> usize {
        self.inner.rows.div_ceil(self.inner.chunk_rows)
    }

    /// Fixed chunk height in rows (the last chunk may be shorter).
    pub fn chunk_rows(&self) -> usize {
        self.inner.chunk_rows
    }

    /// How many chunks the resident window may hold.
    pub fn window_chunks(&self) -> usize {
        self.inner.window_chunks
    }

    /// The backing temp file (useful for diagnostics and fault-injection
    /// tests; the file is deleted when the last handle drops).
    pub fn spill_path(&self) -> &Path {
        &self.inner.path
    }

    fn rows_in_chunk(&self, idx: usize) -> usize {
        let start = idx * self.inner.chunk_rows;
        self.inner.chunk_rows.min(self.inner.rows - start)
    }

    /// Drops every resident chunk, forcing subsequent reads back through
    /// the checksummed file (fault-injection and memory-pressure hook).
    pub fn flush_resident(&self) {
        let mut state = self.inner.state.lock().expect("spill window lock");
        let evicted = state.resident.len() as u64;
        let bytes: u64 = state
            .resident
            .iter()
            .map(|(_, c)| (c.len() * 8) as u64)
            .sum();
        state.resident.clear();
        if evicted > 0 {
            tabsketch_obs::counter!("table.storage.chunk_evictions").add(evicted);
        }
        resident_sub(bytes);
    }

    /// The chunk holding row `row` and the row's offset within it.
    fn chunk_of_row(&self, row: usize) -> (usize, usize) {
        (row / self.inner.chunk_rows, row % self.inner.chunk_rows)
    }

    /// Returns chunk `idx`, reading (and checksum-verifying) it from the
    /// spill file if it is not resident, evicting the least-recently-used
    /// chunk when the window is full.
    fn chunk(&self, idx: usize) -> Result<Arc<[f64]>, TableError> {
        let mut state = self.inner.state.lock().expect("spill window lock");
        self.chunk_locked(&mut state, idx)
    }

    /// [`SpilledStorage::chunk`] with the window lock already held (so
    /// multi-chunk operations like [`SpilledStorage::patch_cells`] are
    /// atomic with respect to concurrent readers).
    fn chunk_locked(&self, state: &mut WindowState, idx: usize) -> Result<Arc<[f64]>, TableError> {
        debug_assert!(idx < self.chunk_count());
        let inner = &*self.inner;
        if let Some(pos) = state.resident.iter().position(|(i, _)| *i == idx) {
            let entry = state.resident.remove(pos);
            let chunk = Arc::clone(&entry.1);
            state.resident.push(entry);
            return Ok(chunk);
        }
        let nvals = self.rows_in_chunk(idx) * inner.cols;
        let offset = chunk_offset(inner.chunk_rows, inner.cols, idx);
        state
            .file
            .seek(SeekFrom::Start(offset))
            .map_err(TableError::from)?;
        let mut crc = Crc32::new();
        let values = read_f64_body(&mut state.file, nvals, Some(&mut crc))?;
        let stored = read_u32_in(&mut state.file, "spill-chunk")?;
        if stored != crc.finish() {
            return Err(TableError::corrupt(
                "spill-chunk",
                format!("checksum mismatch in spill chunk {idx}"),
            ));
        }
        let chunk: Arc<[f64]> = values.into();
        tabsketch_obs::counter!("table.storage.chunk_loads").inc();
        state.resident.push((idx, Arc::clone(&chunk)));
        if state.resident.len() > inner.window_chunks {
            let (_, evicted) = state.resident.remove(0);
            tabsketch_obs::counter!("table.storage.chunk_evictions").inc();
            resident_sub((evicted.len() * 8) as u64);
        }
        resident_add((chunk.len() * 8) as u64);
        Ok(chunk)
    }

    /// Reads one cell through the resident window.
    pub(crate) fn get(&self, row: usize, col: usize) -> Result<f64, TableError> {
        let (idx, off) = self.chunk_of_row(row);
        let chunk = self.chunk(idx)?;
        Ok(chunk[off * self.inner.cols + col])
    }

    /// Materializes rows `start .. start + nrows` as a guard: a shared
    /// chunk when the range is exactly one stored chunk, an assembled
    /// copy otherwise.
    pub(crate) fn row_window(
        &self,
        start: usize,
        nrows: usize,
    ) -> Result<RowGuard<'_>, TableError> {
        let cols = self.inner.cols;
        let (first, off) = self.chunk_of_row(start);
        if off == 0 && nrows == self.rows_in_chunk(first) {
            let chunk = self.chunk(first)?;
            return Ok(RowGuard {
                start_row: start,
                rows: nrows,
                cols,
                data: GuardData::Shared(chunk),
            });
        }
        let mut out = Vec::with_capacity(nrows * cols);
        let mut row = start;
        let end = start + nrows;
        while row < end {
            let (idx, off) = self.chunk_of_row(row);
            let chunk = self.chunk(idx)?;
            let take = (self.rows_in_chunk(idx) - off).min(end - row);
            out.extend_from_slice(&chunk[off * cols..(off + take) * cols]);
            row += take;
        }
        Ok(RowGuard {
            start_row: start,
            rows: nrows,
            cols,
            data: GuardData::Shared(out.into()),
        })
    }

    /// Rewrites chunk `idx` in the spill file: body, then a fresh CRC32
    /// trailer. With an injected fault pending, writes half the body (no
    /// checksum) and fails — a torn write.
    fn write_chunk(
        &self,
        state: &mut WindowState,
        idx: usize,
        values: &[f64],
    ) -> Result<(), TableError> {
        debug_assert_eq!(values.len(), self.rows_in_chunk(idx) * self.inner.cols);
        let offset = chunk_offset(self.inner.chunk_rows, self.inner.cols, idx);
        state.file.seek(SeekFrom::Start(offset))?;
        if self.inner.write_fault.swap(false, Ordering::Relaxed) {
            write_f64_body(&mut state.file, &values[..values.len() / 2], None)?;
            state.file.flush()?;
            return Err(TableError::from(std::io::Error::other(
                "injected torn write in spill chunk rewrite",
            )));
        }
        let mut crc = Crc32::new();
        write_f64_body(&mut state.file, values, Some(&mut crc))?;
        state.file.write_all(&crc.finish().to_le_bytes())?;
        state.file.flush().map_err(TableError::from)
    }

    /// Applies additive cell deltas `(row, col, delta)` to the spill file
    /// and any resident copies of the affected chunks.
    ///
    /// Two-phase: every affected chunk is loaded, patched in a scratch
    /// buffer, and finiteness-checked *before* the first byte is written
    /// back, so validation failures leave both file and window untouched.
    /// If a write itself fails partway, the torn chunk's resident copy is
    /// dropped first — subsequent reads go through the file and surface
    /// [`TableError::Corrupt`]`{ section: "spill-chunk" }` instead of a
    /// stale (pre- or post-patch) value.
    pub(crate) fn patch_cells(&self, cells: &[(usize, usize, f64)]) -> Result<(), TableError> {
        use std::collections::BTreeMap;
        let cols = self.inner.cols;
        let mut state = self.inner.state.lock().expect("spill window lock");
        // Phase 1: build fully patched, validated chunk buffers.
        let mut patched: BTreeMap<usize, Vec<f64>> = BTreeMap::new();
        for &(row, col, delta) in cells {
            debug_assert!(row < self.inner.rows && col < cols);
            let (idx, off) = self.chunk_of_row(row);
            let buf = match patched.entry(idx) {
                std::collections::btree_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::btree_map::Entry::Vacant(e) => {
                    let chunk = self.chunk_locked(&mut state, idx)?;
                    e.insert(chunk.to_vec())
                }
            };
            let cell = &mut buf[off * cols + col];
            let next = *cell + delta;
            if !next.is_finite() {
                return Err(TableError::NonFinite { row, col });
            }
            *cell = next;
        }
        // Phase 2: rewrite each affected chunk, file first, then swap the
        // resident copy (if any) so readers never see the new values
        // before they are durable.
        for (idx, buf) in patched {
            if let Err(e) = self.write_chunk(&mut state, idx, &buf) {
                let dropped: u64 = state
                    .resident
                    .iter()
                    .filter(|(i, _)| *i == idx)
                    .map(|(_, c)| (c.len() * 8) as u64)
                    .sum();
                state.resident.retain(|(i, _)| *i != idx);
                resident_sub(dropped);
                return Err(e);
            }
            let chunk: Arc<[f64]> = buf.into();
            if let Some(entry) = state.resident.iter_mut().find(|(i, _)| *i == idx) {
                entry.1 = chunk;
            }
        }
        Ok(())
    }

    /// Arms the torn-write fault: the next chunk rewrite (from
    /// `SpilledStorage::patch_cells`) writes half a body with no
    /// checksum and returns an I/O error. Fault-injection hook for tests.
    pub fn inject_torn_write(&self) {
        self.inner.write_fault.store(true, Ordering::Relaxed);
    }
}

enum GuardData<'a> {
    Borrowed(&'a [f64]),
    Shared(Arc<[f64]>),
}

/// A window of consecutive table rows pinned in memory: borrowed straight
/// from a dense table's buffer, or a resident/assembled chunk of a
/// spilled one. The values are row-major with stride equal to the table
/// width.
pub struct RowGuard<'a> {
    start_row: usize,
    rows: usize,
    cols: usize,
    data: GuardData<'a>,
}

impl std::fmt::Debug for RowGuard<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RowGuard")
            .field("start_row", &self.start_row)
            .field("rows", &self.rows)
            .field("cols", &self.cols)
            .finish_non_exhaustive()
    }
}

impl<'a> RowGuard<'a> {
    pub(crate) fn borrowed(start_row: usize, rows: usize, cols: usize, data: &'a [f64]) -> Self {
        debug_assert_eq!(data.len(), rows * cols);
        RowGuard {
            start_row,
            rows,
            cols,
            data: GuardData::Borrowed(data),
        }
    }

    /// Absolute table row of the window's first row.
    #[inline]
    pub fn start_row(&self) -> usize {
        self.start_row
    }

    /// Window height in rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Row width (the table's column count).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// All window values, row-major.
    #[inline]
    pub fn values(&self) -> &[f64] {
        match &self.data {
            GuardData::Borrowed(s) => s,
            GuardData::Shared(a) => a,
        }
    }

    /// Window-relative row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.values()[i * self.cols..(i + 1) * self.cols]
    }
}

/// Iterator over a table's rows in bounded-memory windows; see
/// [`Table::row_chunks`].
pub struct RowChunks<'a> {
    table: &'a Table,
    next_row: usize,
    /// Rows per yielded window (dense tables); spilled tables iterate at
    /// their native chunk height instead.
    step: usize,
}

impl<'a> RowChunks<'a> {
    pub(crate) fn new(table: &'a Table, budget: MemoryBudget) -> Self {
        let step = match table.storage() {
            TableStorage::Dense(_) => budget
                .rows_in_budget(table.cols())
                .unwrap_or(table.rows())
                .min(table.rows()),
            TableStorage::Spilled(s) => s.chunk_rows(),
        };
        RowChunks {
            table,
            next_row: 0,
            step: step.max(1),
        }
    }
}

impl<'a> Iterator for RowChunks<'a> {
    type Item = Result<RowGuard<'a>, TableError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.next_row >= self.table.rows() {
            return None;
        }
        let start = self.next_row;
        let n = self.step.min(self.table.rows() - start);
        self.next_row = start + n;
        Some(self.table.row_window(start, n))
    }
}

/// Streams rows into a table under a [`MemoryBudget`]: the one-pass,
/// bounded-memory ingestion primitive behind the streaming CSV/binary
/// loaders and [`Table::with_budget`].
///
/// Rows accumulate densely until the budget is exceeded, at which point
/// everything received so far is flushed to a checksummed spill file and
/// subsequent rows stream through a single chunk-sized buffer. An
/// unbounded budget therefore produces a [`TableStorage::Dense`] table
/// bit-identical to the eager loaders.
///
/// Validation matches [`Table::new`]: [`finish`](SpillWriter::finish)
/// reports the first non-finite cell (in row-major order) as
/// [`TableError::NonFinite`] — deferred, not eager, so callers can layer
/// their own higher-precedence errors (parse failures, checksum
/// mismatches) exactly like the eager paths do.
pub struct SpillWriter {
    budget: MemoryBudget,
    cols: Option<usize>,
    /// Total values received.
    pushed: u64,
    /// Values not yet flushed to the spill file (everything, until the
    /// budget trips).
    buf: Vec<f64>,
    spill: Option<SpillFile>,
    first_nonfinite: Option<(usize, usize)>,
}

struct SpillFile {
    file: File,
    path: PathBuf,
    chunk_rows: usize,
    window_chunks: usize,
    chunks_written: usize,
}

impl SpillWriter {
    /// A writer whose column count is fixed by the first pushed row.
    pub fn new(budget: MemoryBudget) -> Self {
        SpillWriter {
            budget,
            cols: None,
            pushed: 0,
            buf: Vec::new(),
            spill: None,
            first_nonfinite: None,
        }
    }

    /// A writer with a known column count, accepting values at arbitrary
    /// granularity via [`SpillWriter::push_values`].
    pub fn with_cols(cols: usize, budget: MemoryBudget) -> Self {
        let mut w = Self::new(budget);
        w.cols = Some(cols);
        w
    }

    /// Appends one complete row.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::ShapeMismatch`] when the row length differs
    /// from the first row's, and I/O errors from spilling.
    pub fn push_row(&mut self, row: &[f64]) -> Result<(), TableError> {
        let cols = *self.cols.get_or_insert(row.len());
        if row.len() != cols {
            return Err(TableError::ShapeMismatch {
                left: (1, cols),
                right: (1, row.len()),
            });
        }
        self.push_values(row)
    }

    /// Appends values in row-major order at arbitrary granularity (the
    /// binary loader's path: values arrive in I/O-sized chunks, not
    /// rows). Requires the column count to be known, i.e. construction
    /// via [`SpillWriter::with_cols`] or a prior
    /// [`SpillWriter::push_row`].
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from spilling.
    pub fn push_values(&mut self, values: &[f64]) -> Result<(), TableError> {
        let cols = self
            .cols
            .expect("column count must be known before push_values");
        if self.first_nonfinite.is_none() {
            if let Some(i) = values.iter().position(|v| !v.is_finite()) {
                let idx = self.pushed + i as u64;
                if cols > 0 {
                    self.first_nonfinite =
                        Some(((idx / cols as u64) as usize, (idx % cols as u64) as usize));
                }
            }
        }
        self.buf.extend_from_slice(values);
        self.pushed += values.len() as u64;
        if cols == 0 {
            return Ok(());
        }
        if self.spill.is_none() {
            if let Some(limit) = self.budget.get() {
                if self.pushed * 8 > limit {
                    self.start_spill(cols)?;
                }
            }
        }
        self.flush_full_chunks(cols)
    }

    fn start_spill(&mut self, cols: usize) -> Result<(), TableError> {
        let (chunk_rows, window_chunks) = self
            .budget
            .spill_geometry(cols)
            .expect("spilling requires a bounded budget");
        let path = fresh_spill_path();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)?;
        // Placeholder header (row count still unknown); rewritten with
        // the real dimensions and CRC by `finish`.
        file.write_all(&spill_header(0, cols, chunk_rows))?;
        tabsketch_obs::counter!("table.storage.spilled_tables").inc();
        self.spill = Some(SpillFile {
            file,
            path,
            chunk_rows,
            window_chunks,
            chunks_written: 0,
        });
        Ok(())
    }

    fn flush_full_chunks(&mut self, cols: usize) -> Result<(), TableError> {
        let Some(spill) = self.spill.as_mut() else {
            return Ok(());
        };
        let chunk_vals = spill.chunk_rows * cols;
        let mut flushed = 0;
        while self.buf.len() - flushed >= chunk_vals {
            let chunk = &self.buf[flushed..flushed + chunk_vals];
            let mut crc = Crc32::new();
            write_f64_body(&mut spill.file, chunk, Some(&mut crc))?;
            spill.file.write_all(&crc.finish().to_le_bytes())?;
            spill.chunks_written += 1;
            flushed += chunk_vals;
        }
        if flushed > 0 {
            self.buf.drain(..flushed);
        }
        Ok(())
    }

    /// Finalizes the stream into a [`Table`].
    ///
    /// # Errors
    ///
    /// Returns [`TableError::EmptyDimension`] when no values were pushed,
    /// [`TableError::DimensionMismatch`] when the value count does not
    /// form whole rows, [`TableError::NonFinite`] for the first NaN or
    /// infinite cell, and I/O errors from finalizing the spill file.
    pub fn finish(mut self) -> Result<Table, TableError> {
        let cols = match self.cols {
            None | Some(0) => return Err(TableError::EmptyDimension),
            Some(c) => c,
        };
        if !self.pushed.is_multiple_of(cols as u64) {
            return Err(TableError::DimensionMismatch {
                rows: (self.pushed / cols as u64) as usize + 1,
                cols,
                len: self.pushed as usize,
            });
        }
        let rows = (self.pushed / cols as u64) as usize;
        if rows == 0 {
            return Err(TableError::EmptyDimension);
        }
        if let Some((row, col)) = self.first_nonfinite {
            return Err(TableError::NonFinite { row, col });
        }
        let Some(mut spill) = self.spill.take() else {
            let buf = std::mem::take(&mut self.buf);
            return Table::new(rows, cols, buf);
        };
        // Flush the final (short) chunk, then rewrite the header with the
        // now-known row count.
        if !self.buf.is_empty() {
            let mut crc = Crc32::new();
            write_f64_body(&mut spill.file, &self.buf, Some(&mut crc))?;
            spill.file.write_all(&crc.finish().to_le_bytes())?;
            spill.chunks_written += 1;
            self.buf.clear();
        }
        spill.file.seek(SeekFrom::Start(0))?;
        spill
            .file
            .write_all(&spill_header(rows, cols, spill.chunk_rows))?;
        spill.file.flush()?;
        let storage = SpilledStorage {
            inner: Arc::new(SpillInner {
                rows,
                cols,
                chunk_rows: spill.chunk_rows,
                window_chunks: spill.window_chunks,
                path: spill.path,
                state: Mutex::new(WindowState {
                    file: spill.file,
                    resident: Vec::new(),
                }),
                write_fault: AtomicBool::new(false),
            }),
        };
        Ok(Table::from_spilled(rows, cols, storage))
    }
}

impl Drop for SpillWriter {
    fn drop(&mut self) {
        if let Some(spill) = self.spill.take() {
            let _ = std::fs::remove_file(&spill.path);
        }
    }
}
