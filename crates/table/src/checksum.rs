//! Self-contained CRC32 (IEEE 802.3, reflected polynomial `0xEDB88320`)
//! used by the persisted file formats.
//!
//! Every v2 file section (header, body) carries a CRC so corruption —
//! bit-rot, partial writes, tool damage — is *detected* at load time
//! instead of silently skewing the stable-projection estimators
//! downstream. CRC32 detects all single-bit errors and all burst errors
//! up to 32 bits, which covers the realistic failure modes of an on-disk
//! sketch store.

/// The reflected CRC32 lookup table, computed at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// A streaming CRC32 accumulator.
///
/// ```
/// use tabsketch_table::checksum::Crc32;
///
/// let mut crc = Crc32::new();
/// crc.update(b"123456789");
/// assert_eq!(crc.finish(), 0xCBF4_3926); // the IEEE check value
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Starts a fresh checksum.
    #[inline]
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Folds `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut state = self.state;
        for &b in bytes {
            state = (state >> 8) ^ TABLE[((state ^ b as u32) & 0xFF) as usize];
        }
        self.state = state;
    }

    /// The checksum of everything folded in so far. Does not consume the
    /// accumulator; more bytes may still be folded in afterwards.
    #[inline]
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(bytes);
    crc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard IEEE CRC32 check values.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0..=255).collect();
        let mut crc = Crc32::new();
        for chunk in data.chunks(7) {
            crc.update(chunk);
        }
        assert_eq!(crc.finish(), crc32(&data));
    }

    #[test]
    fn detects_single_bit_flips() {
        let data: Vec<u8> = (0..64).map(|i| (i * 37) as u8).collect();
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut bad = data.clone();
                bad[byte] ^= 1 << bit;
                assert_ne!(crc32(&bad), clean, "flip at byte {byte} bit {bit}");
            }
        }
    }
}
