//! Rectangular regions of a table.

use crate::TableError;

/// A rectangular region of a table: `rows × cols` cells starting at
/// `(row, col)` (top-left corner, zero-based, row-major convention).
///
/// A `Rect` is a pure description — it is validated against a concrete
/// table when a view is taken.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Rect {
    /// Top row index.
    pub row: usize,
    /// Left column index.
    pub col: usize,
    /// Height in rows; must be non-zero for a useful rect.
    pub rows: usize,
    /// Width in columns; must be non-zero for a useful rect.
    pub cols: usize,
}

impl Rect {
    /// Creates a rectangle from its top-left corner and extent.
    #[inline]
    pub const fn new(row: usize, col: usize, rows: usize, cols: usize) -> Self {
        Self {
            row,
            col,
            rows,
            cols,
        }
    }

    /// The number of cells covered.
    #[inline]
    pub const fn area(&self) -> usize {
        self.rows * self.cols
    }

    /// The shape `(rows, cols)` of the rectangle.
    #[inline]
    pub const fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// One past the bottom row.
    #[inline]
    pub const fn row_end(&self) -> usize {
        self.row + self.rows
    }

    /// One past the rightmost column.
    #[inline]
    pub const fn col_end(&self) -> usize {
        self.col + self.cols
    }

    /// Whether the rectangle covers the cell `(r, c)`.
    #[inline]
    pub const fn contains(&self, r: usize, c: usize) -> bool {
        r >= self.row && r < self.row_end() && c >= self.col && c < self.col_end()
    }

    /// Whether `other` lies entirely within `self`.
    pub const fn contains_rect(&self, other: &Rect) -> bool {
        other.row >= self.row
            && other.col >= self.col
            && other.row_end() <= self.row_end()
            && other.col_end() <= self.col_end()
    }

    /// Validates that the rectangle is non-empty and fits inside a
    /// `table_rows × table_cols` table.
    pub fn validate(&self, table_rows: usize, table_cols: usize) -> Result<(), TableError> {
        let oob = TableError::RectOutOfBounds {
            rect: (self.row, self.col, self.rows, self.cols),
            table_rows,
            table_cols,
        };
        if self.rows == 0 || self.cols == 0 {
            return Err(oob);
        }
        // Overflow-safe bound checks.
        let row_ok = self
            .row
            .checked_add(self.rows)
            .is_some_and(|e| e <= table_rows);
        let col_ok = self
            .col
            .checked_add(self.cols)
            .is_some_and(|e| e <= table_cols);
        if row_ok && col_ok {
            Ok(())
        } else {
            Err(oob)
        }
    }

    /// The intersection of two rectangles, or `None` when disjoint.
    pub fn intersect(&self, other: &Rect) -> Option<Rect> {
        let row = self.row.max(other.row);
        let col = self.col.max(other.col);
        let row_end = self.row_end().min(other.row_end());
        let col_end = self.col_end().min(other.col_end());
        if row < row_end && col < col_end {
            Some(Rect::new(row, col, row_end - row, col_end - col))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_and_bounds() {
        let r = Rect::new(2, 3, 4, 5);
        assert_eq!(r.area(), 20);
        assert_eq!(r.shape(), (4, 5));
        assert_eq!(r.row_end(), 6);
        assert_eq!(r.col_end(), 8);
    }

    #[test]
    fn containment() {
        let r = Rect::new(1, 1, 3, 3);
        assert!(r.contains(1, 1));
        assert!(r.contains(3, 3));
        assert!(!r.contains(4, 3));
        assert!(!r.contains(0, 2));
        assert!(r.contains_rect(&Rect::new(2, 2, 1, 1)));
        assert!(r.contains_rect(&r));
        assert!(!r.contains_rect(&Rect::new(0, 0, 2, 2)));
    }

    #[test]
    fn validation() {
        let r = Rect::new(0, 0, 4, 4);
        assert!(r.validate(4, 4).is_ok());
        assert!(r.validate(3, 4).is_err());
        assert!(Rect::new(1, 0, 4, 4).validate(4, 4).is_err());
        assert!(
            Rect::new(0, 0, 0, 4).validate(4, 4).is_err(),
            "empty rect rejected"
        );
        assert!(
            Rect::new(usize::MAX, 0, 2, 2).validate(4, 4).is_err(),
            "overflow-safe"
        );
    }

    #[test]
    fn intersection() {
        let a = Rect::new(0, 0, 4, 4);
        let b = Rect::new(2, 2, 4, 4);
        assert_eq!(a.intersect(&b), Some(Rect::new(2, 2, 2, 2)));
        assert_eq!(b.intersect(&a), Some(Rect::new(2, 2, 2, 2)));
        let c = Rect::new(4, 4, 1, 1);
        assert_eq!(a.intersect(&c), None, "touching edges do not intersect");
        assert_eq!(a.intersect(&a), Some(a));
    }
}
