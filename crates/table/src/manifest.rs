//! Collection manifests: one file naming a corpus of member tables.
//!
//! A manifest is a plain text file with one member per line, in the same
//! colon grammar the serving layer's `--stores` flag uses:
//!
//! ```text
//! # call-volume corpus, one table per customer
//! acme=acme.tsb:acme.tsks:acme.tix
//! globex=globex.tsb:globex.tsks
//! initech=data/initech.csv
//! ```
//!
//! Grammar per line: `NAME=TABLE[:STORE[:INDEX]]`. Blank lines and `#`
//! comments are skipped. `STORE` may be left empty (`n=t.tsb::t.tix`) to
//! name an index without a sketch store. Relative paths resolve against
//! the directory containing the manifest, so a manifest can travel with
//! its data. Every violation — missing `=`, an empty name or table
//! segment, more than three `:` segments, a duplicate member name — is a
//! typed [`TableError::Manifest`] carrying the 1-based line number.
//!
//! A [`Collection`] opens the manifest's members lazily under **one
//! shared [`MemoryBudget`]**: the budget caps resident table bytes across
//! all members together (the residency gauges account globally, see
//! [`crate::storage`]), not per member.

use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::{io as table_io, MemoryBudget, Table, TableError};

/// How many member tables a [`Collection`] keeps open at once by
/// default. Matches the spill window's four-chunk discipline: eviction
/// granularity stays well below the shared budget.
pub const DEFAULT_MAX_OPEN: usize = 4;

/// One manifest line: a named member table with optional sketch-store
/// and index paths.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Member name (unique within the manifest).
    pub name: String,
    /// Path of the member's table file (`.csv` or binary `TSB2`).
    pub table_path: PathBuf,
    /// Path of the member's precomputed sketch store, when named.
    pub store_path: Option<PathBuf>,
    /// Path of the member's LSH candidate index, when named.
    pub index_path: Option<PathBuf>,
}

impl ManifestEntry {
    /// Parses one `NAME=TABLE[:STORE[:INDEX]]` spec. Returns the reason
    /// only; [`Manifest::parse_str`] attaches the line number.
    fn parse(spec: &str) -> Result<Self, String> {
        let (name, paths) = spec
            .split_once('=')
            .ok_or("expected NAME=TABLE[:STORE[:INDEX]]")?;
        let name = name.trim();
        if name.is_empty() {
            return Err("empty member name before '='".into());
        }
        let parts: Vec<&str> = paths.split(':').collect();
        if parts.len() > 3 {
            return Err(format!(
                "too many ':' segments ({}, at most TABLE:STORE:INDEX)",
                parts.len()
            ));
        }
        let table = parts[0].trim();
        if table.is_empty() {
            return Err("empty table path after '='".into());
        }
        let slot = |i: usize| {
            parts
                .get(i)
                .map(|s| s.trim())
                .filter(|s| !s.is_empty())
                .map(PathBuf::from)
        };
        Ok(ManifestEntry {
            name: name.to_string(),
            table_path: PathBuf::from(table),
            store_path: slot(1),
            index_path: slot(2),
        })
    }

    /// Renders the entry back into its manifest line. An index without a
    /// store keeps the empty `STORE` slot (`name=table::index`), so
    /// formatting and parsing round-trip exactly.
    pub fn format(&self) -> String {
        let mut line = format!("{}={}", self.name, self.table_path.display());
        match (&self.store_path, &self.index_path) {
            (Some(s), Some(i)) => {
                line.push_str(&format!(":{}:{}", s.display(), i.display()));
            }
            (Some(s), None) => line.push_str(&format!(":{}", s.display())),
            (None, Some(i)) => line.push_str(&format!("::{}", i.display())),
            (None, None) => {}
        }
        line
    }

    /// The member's sketch-store path: the manifest's `STORE` slot, or
    /// the table path with a `tsks` extension when the slot is empty.
    pub fn store_path_or_default(&self) -> PathBuf {
        self.store_path
            .clone()
            .unwrap_or_else(|| self.table_path.with_extension("tsks"))
    }

    /// The member's whole-table signature sketch path (`TSK2`): the
    /// store path with a `tsk` extension. `manysketch` writes it, and
    /// `pairwise` streams member signatures from it.
    pub fn signature_path(&self) -> PathBuf {
        self.store_path_or_default().with_extension("tsk")
    }

    /// The member's index path: the manifest's `INDEX` slot, or the
    /// table path with a `tix` extension when the slot is empty.
    pub fn index_path_or_default(&self) -> PathBuf {
        self.index_path
            .clone()
            .unwrap_or_else(|| self.table_path.with_extension("tix"))
    }

    fn resolve(mut self, base: &Path) -> Self {
        fn join(base: &Path, p: PathBuf) -> PathBuf {
            if p.is_relative() && !base.as_os_str().is_empty() {
                base.join(p)
            } else {
                p
            }
        }
        self.table_path = join(base, self.table_path);
        self.store_path = self.store_path.map(|p| join(base, p));
        self.index_path = self.index_path.map(|p| join(base, p));
        self
    }
}

/// A parsed collection manifest: an ordered, duplicate-free list of
/// [`ManifestEntry`] members.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Manifest {
    entries: Vec<ManifestEntry>,
}

impl Manifest {
    /// Builds a manifest directly from entries (the programmatic path
    /// benches and tests use).
    ///
    /// # Errors
    ///
    /// Returns [`TableError::Manifest`] for an empty list or duplicate
    /// member names, identically to [`Manifest::parse_str`].
    pub fn new(entries: Vec<ManifestEntry>) -> Result<Self, TableError> {
        if entries.is_empty() {
            return Err(TableError::manifest(0, "manifest lists no tables"));
        }
        for (i, e) in entries.iter().enumerate() {
            if entries[..i].iter().any(|prev| prev.name == e.name) {
                return Err(TableError::manifest(
                    i + 1,
                    format!("duplicate member name {:?}", e.name),
                ));
            }
        }
        Ok(Manifest { entries })
    }

    /// Parses manifest text, resolving relative paths against
    /// `base_dir`. Pass an empty path to keep paths as written.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::Manifest`] with the 1-based line number for
    /// any malformed line, a duplicate member name, or a manifest with
    /// no members at all.
    pub fn parse_str(text: &str, base_dir: &Path) -> Result<Self, TableError> {
        let mut entries: Vec<ManifestEntry> = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let entry = ManifestEntry::parse(line)
                .map_err(|reason| TableError::manifest(i + 1, reason))?
                .resolve(base_dir);
            if entries.iter().any(|prev| prev.name == entry.name) {
                return Err(TableError::manifest(
                    i + 1,
                    format!("duplicate member name {:?}", entry.name),
                ));
            }
            entries.push(entry);
        }
        if entries.is_empty() {
            return Err(TableError::manifest(0, "manifest lists no tables"));
        }
        Ok(Manifest { entries })
    }

    /// Loads and parses a manifest file; relative member paths resolve
    /// against the manifest's own directory.
    ///
    /// # Errors
    ///
    /// [`TableError::Io`] for unreadable files, [`TableError::Manifest`]
    /// for parse failures.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self, TableError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)?;
        let base = path.parent().unwrap_or_else(|| Path::new(""));
        Self::parse_str(&text, base)
    }

    /// Renders the manifest back to text (one line per member). Parsing
    /// the result against an empty base dir reproduces this manifest
    /// exactly — the round-trip property the tests pin down.
    pub fn format(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&e.format());
            out.push('\n');
        }
        out
    }

    /// The members, in manifest order.
    pub fn entries(&self) -> &[ManifestEntry] {
        &self.entries
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the manifest has no members (never true for a parsed
    /// manifest; parsing rejects empty member lists).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks a member up by name.
    pub fn entry(&self, name: &str) -> Option<&ManifestEntry> {
        self.entries.iter().find(|e| e.name == name)
    }
}

/// A corpus of member tables opened lazily under one shared
/// [`MemoryBudget`].
///
/// [`Collection::member`] opens a member's table on first touch and
/// keeps at most `max_open` members open in an LRU window. Each member
/// loads under a budget of `shared / (2 · max_open)` bytes, so the LRU
/// window plus any members still pinned by in-flight readers (work-
/// stealing sketch builders hold a member's [`Arc`] while they build)
/// stay within the shared cap together. The budget is honored down to
/// the storage layer's floor of one row per spill chunk.
#[derive(Debug)]
pub struct Collection {
    manifest: Manifest,
    budget: MemoryBudget,
    per_member: MemoryBudget,
    max_open: usize,
    /// Open members, least-recently-used first.
    open: Mutex<Vec<(usize, Arc<Table>)>>,
}

impl Collection {
    /// Opens `manifest` under `budget` with the default LRU window of
    /// [`DEFAULT_MAX_OPEN`] members.
    pub fn open(manifest: Manifest, budget: MemoryBudget) -> Self {
        Self::with_max_open(manifest, budget, DEFAULT_MAX_OPEN)
    }

    /// As [`Collection::open`] with an explicit LRU window (floored at
    /// one member).
    pub fn with_max_open(manifest: Manifest, budget: MemoryBudget, max_open: usize) -> Self {
        let max_open = max_open.max(1);
        let per_member = match budget.get() {
            None => MemoryBudget::unbounded(),
            Some(b) => MemoryBudget::bytes((b / (2 * max_open as u64)).max(1)),
        };
        Collection {
            manifest,
            budget,
            per_member,
            max_open,
            open: Mutex::new(Vec::new()),
        }
    }

    /// The manifest this collection was opened from.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// The shared residency budget across all members.
    pub fn budget(&self) -> MemoryBudget {
        self.budget
    }

    /// The per-member slice of the shared budget each open table loads
    /// under.
    pub fn member_budget(&self) -> MemoryBudget {
        self.per_member
    }

    /// The LRU window: how many members stay open at once.
    pub fn max_open(&self) -> usize {
        self.max_open
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.manifest.len()
    }

    /// Whether the collection has no members.
    pub fn is_empty(&self) -> bool {
        self.manifest.is_empty()
    }

    /// The member table at manifest position `i`, opened on first touch
    /// (`.csv` loads as CSV, anything else as binary, both streaming
    /// under the per-member budget) and LRU-cached thereafter.
    ///
    /// The returned [`Arc`] stays valid after the collection evicts the
    /// member; residency accounting follows the chunks, not the handle.
    ///
    /// # Errors
    ///
    /// [`TableError::Manifest`] for an out-of-range index; load errors
    /// (I/O, corruption) pass through so callers can degrade the member.
    pub fn member(&self, i: usize) -> Result<Arc<Table>, TableError> {
        let Some(entry) = self.manifest.entries.get(i) else {
            return Err(TableError::manifest(
                0,
                format!("member index {i} out of range ({} members)", self.len()),
            ));
        };
        let mut open = self.open.lock().expect("collection member lock");
        if let Some(pos) = open.iter().position(|(idx, _)| *idx == i) {
            let hit = open.remove(pos);
            let table = Arc::clone(&hit.1);
            open.push(hit);
            return Ok(table);
        }
        let path = &entry.table_path;
        let loaded = if path.extension().is_some_and(|e| e == "csv") {
            table_io::load_csv_streaming(path, self.per_member)?
        } else {
            table_io::load_binary_streaming(path, self.per_member)?
        };
        tabsketch_obs::counter!("collection.members_opened").inc();
        let table = Arc::new(loaded);
        open.push((i, Arc::clone(&table)));
        if open.len() > self.max_open {
            open.remove(0);
        }
        Ok(table)
    }

    /// Closes every open member, dropping the collection's handles (a
    /// member pinned elsewhere stays alive until its last [`Arc`]
    /// drops).
    pub fn evict_all(&self) {
        self.open.lock().expect("collection member lock").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "tabsketch-manifest-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn parses_full_partial_and_commented_lines() {
        let text = "\n# corpus\n a=a.tsb:a.tsks:a.tix \nb=b.csv\nc=c.tsb::c.tix\n";
        let m = Manifest::parse_str(text, Path::new("")).unwrap();
        assert_eq!(m.len(), 3);
        let a = m.entry("a").unwrap();
        assert_eq!(a.table_path, PathBuf::from("a.tsb"));
        assert_eq!(a.store_path.as_deref(), Some(Path::new("a.tsks")));
        assert_eq!(a.index_path.as_deref(), Some(Path::new("a.tix")));
        let b = m.entry("b").unwrap();
        assert!(b.store_path.is_none() && b.index_path.is_none());
        let c = m.entry("c").unwrap();
        assert!(c.store_path.is_none());
        assert_eq!(c.index_path.as_deref(), Some(Path::new("c.tix")));
    }

    #[test]
    fn malformed_lines_are_typed_with_line_numbers() {
        let cases = [
            ("a=a.tsb\nnonsense\n", 2, "NAME=TABLE"),
            ("=a.tsb\n", 1, "empty member name"),
            ("a=\n", 1, "empty table path"),
            ("a= : s \n", 1, "empty table path"),
            ("a=t:s:i:x\n", 1, "too many"),
            ("a=a.tsb\nb=b.tsb\na=c.tsb\n", 3, "duplicate member name"),
        ];
        for (text, line, needle) in cases {
            match Manifest::parse_str(text, Path::new("")) {
                Err(TableError::Manifest { line: l, reason }) => {
                    assert_eq!(l, line, "{text:?}");
                    assert!(reason.contains(needle), "{text:?}: {reason}");
                }
                other => panic!("{text:?}: expected manifest error, got {other:?}"),
            }
        }
    }

    #[test]
    fn empty_manifests_are_rejected() {
        for text in ["", "# only comments\n\n"] {
            match Manifest::parse_str(text, Path::new("")) {
                Err(TableError::Manifest { line: 0, reason }) => {
                    assert!(reason.contains("no tables"), "{reason}");
                }
                other => panic!("expected empty-manifest error, got {other:?}"),
            }
        }
        assert!(Manifest::new(Vec::new()).is_err());
    }

    #[test]
    fn relative_paths_resolve_against_the_manifest_dir() {
        let m = Manifest::parse_str("a=a.tsb:sub/a.tsks\nb=/abs/b.tsb\n", Path::new("/corpus"))
            .unwrap();
        let a = m.entry("a").unwrap();
        assert_eq!(a.table_path, PathBuf::from("/corpus/a.tsb"));
        assert_eq!(
            a.store_path.as_deref(),
            Some(Path::new("/corpus/sub/a.tsks"))
        );
        assert_eq!(
            m.entry("b").unwrap().table_path,
            PathBuf::from("/abs/b.tsb")
        );
    }

    #[test]
    fn format_parse_round_trips() {
        let text = "a=/d/a.tsb:/d/a.tsks:/d/a.tix\nb=/d/b.csv\nc=/d/c.tsb::/d/c.tix\n";
        let m = Manifest::parse_str(text, Path::new("")).unwrap();
        assert_eq!(m.format(), text);
        let back = Manifest::parse_str(&m.format(), Path::new("")).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn derived_paths_default_from_the_table_path() {
        let m = Manifest::parse_str("a=/d/a.tsb\nb=/d/b.tsb:/d/s.bin\n", Path::new("")).unwrap();
        let a = m.entry("a").unwrap();
        assert_eq!(a.store_path_or_default(), PathBuf::from("/d/a.tsks"));
        assert_eq!(a.signature_path(), PathBuf::from("/d/a.tsk"));
        assert_eq!(a.index_path_or_default(), PathBuf::from("/d/a.tix"));
        let b = m.entry("b").unwrap();
        assert_eq!(b.store_path_or_default(), PathBuf::from("/d/s.bin"));
        assert_eq!(b.signature_path(), PathBuf::from("/d/s.tsk"));
    }

    #[test]
    fn collection_opens_members_lazily_with_lru_eviction() {
        let dir = temp_dir("lru");
        let mut lines = String::new();
        for i in 0..6 {
            let t = Table::from_fn(8, 8, |r, c| (i * 100 + r * 8 + c) as f64).unwrap();
            let path = dir.join(format!("m{i}.tsb"));
            table_io::save_binary(&t, &path).unwrap();
            lines.push_str(&format!("m{i}={}\n", path.display()));
        }
        let manifest = Manifest::parse_str(&lines, Path::new("")).unwrap();
        let coll = Collection::with_max_open(manifest, MemoryBudget::unbounded(), 2);
        assert_eq!(coll.len(), 6);
        for i in 0..6 {
            let t = coll.member(i).unwrap();
            assert_eq!(t.get(0, 0), (i * 100) as f64);
        }
        assert_eq!(coll.open.lock().unwrap().len(), 2);
        // Re-touching an open member is a cache hit, not a reopen.
        let before = coll
            .open
            .lock()
            .unwrap()
            .iter()
            .map(|(i, _)| *i)
            .collect::<Vec<_>>();
        coll.member(before[1]).unwrap();
        assert_eq!(coll.open.lock().unwrap().len(), 2);
        assert!(coll.member(99).is_err());
        coll.evict_all();
        assert!(coll.open.lock().unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shared_budget_splits_across_the_open_window() {
        let m = Manifest::parse_str("a=a.tsb\n", Path::new("")).unwrap();
        let c = Collection::with_max_open(m.clone(), MemoryBudget::bytes(64_000), 4);
        assert_eq!(c.member_budget().get(), Some(8_000));
        let unbounded = Collection::open(m, MemoryBudget::unbounded());
        assert!(unbounded.member_budget().is_unbounded());
    }

    #[test]
    fn unreadable_members_error_without_poisoning_the_collection() {
        let dir = temp_dir("degrade");
        let ok = dir.join("ok.tsb");
        table_io::save_binary(&Table::from_fn(4, 4, |r, c| (r + c) as f64).unwrap(), &ok).unwrap();
        let text = format!(
            "bad={}\nok={}\n",
            dir.join("missing.tsb").display(),
            ok.display()
        );
        let coll = Collection::open(
            Manifest::parse_str(&text, Path::new("")).unwrap(),
            MemoryBudget::unbounded(),
        );
        assert!(coll.member(0).is_err());
        assert_eq!(coll.member(1).unwrap().rows(), 4);
        // The failure is retried, not cached.
        assert!(coll.member(0).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
