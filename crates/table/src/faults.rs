//! Fault-injecting I/O wrappers for robustness testing.
//!
//! Persistence code must hold three guarantees under arbitrary file
//! damage: never panic, never allocate unboundedly, and never return
//! silently wrong data. The wrappers here let the test suites of this
//! crate and `tabsketch-core` exercise those guarantees against the
//! realistic fault classes — truncation, bit-rot, short reads from
//! pipe-like sources, and mid-write I/O errors — without touching the
//! filesystem.

use std::io::{self, Read, Write};

/// A fault to inject into a byte stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Stream ends (clean EOF) after `at` bytes — a truncated file.
    Truncate {
        /// Offset at which the stream ends.
        at: usize,
    },
    /// XOR `mask` into the byte at offset `at` — bit-rot.
    FlipBits {
        /// Offset of the damaged byte.
        at: usize,
        /// Bit mask to XOR in (must be non-zero to change anything).
        mask: u8,
    },
    /// Return an [`io::Error`] once offset `at` is reached — a device
    /// failure mid-stream.
    ErrorAt {
        /// Offset at which the stream starts failing.
        at: usize,
    },
    /// No damage, but serve reads at most `chunk` bytes at a time — a
    /// pipe/socket-like source that exposes short-read handling bugs.
    ShortReads {
        /// Maximum bytes returned per `read` call (min 1).
        chunk: usize,
    },
}

/// A reader over an in-memory byte buffer that injects one [`Fault`].
#[derive(Clone, Debug)]
pub struct FaultyReader {
    data: Vec<u8>,
    pos: usize,
    fault: Fault,
}

impl FaultyReader {
    /// Wraps `data`, injecting `fault` during reads.
    pub fn new(data: impl Into<Vec<u8>>, fault: Fault) -> Self {
        let mut data = data.into();
        match fault {
            Fault::Truncate { at } => data.truncate(at),
            Fault::FlipBits { at, mask } => {
                if let Some(b) = data.get_mut(at) {
                    *b ^= mask;
                }
            }
            Fault::ErrorAt { .. } | Fault::ShortReads { .. } => {}
        }
        Self {
            data,
            pos: 0,
            fault,
        }
    }
}

impl Read for FaultyReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let mut limit = buf.len();
        match self.fault {
            Fault::ErrorAt { at } => {
                if self.pos >= at {
                    return Err(io::Error::other("injected device error"));
                }
                limit = limit.min(at - self.pos);
            }
            Fault::ShortReads { chunk } => limit = limit.min(chunk.max(1)),
            Fault::Truncate { .. } | Fault::FlipBits { .. } => {}
        }
        let remaining = self.data.len() - self.pos;
        let n = limit.min(remaining);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// A writer that absorbs bytes until an injected failure offset, then
/// returns an [`io::Error`] on every subsequent write or flush — a disk
/// that dies mid-save.
#[derive(Debug, Default)]
pub struct FaultyWriter {
    written: Vec<u8>,
    fail_after: Option<usize>,
}

impl FaultyWriter {
    /// A writer that accepts everything (for capturing output).
    pub fn new() -> Self {
        Self::default()
    }

    /// A writer that fails once `fail_after` bytes have been accepted.
    pub fn failing_after(fail_after: usize) -> Self {
        Self {
            written: Vec::new(),
            fail_after: Some(fail_after),
        }
    }

    /// The bytes accepted so far.
    pub fn written(&self) -> &[u8] {
        &self.written
    }
}

impl Write for FaultyWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if let Some(cap) = self.fail_after {
            if self.written.len() >= cap {
                return Err(io::Error::other("injected disk-full error"));
            }
            let n = buf.len().min(cap - self.written.len());
            self.written.extend_from_slice(&buf[..n]);
            if n == 0 {
                return Err(io::Error::other("injected disk-full error"));
            }
            return Ok(n);
        }
        self.written.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        if let Some(cap) = self.fail_after {
            if self.written.len() >= cap {
                return Err(io::Error::other("injected flush error"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncation_ends_early() {
        let mut r = FaultyReader::new(vec![1, 2, 3, 4], Fault::Truncate { at: 2 });
        let mut buf = Vec::new();
        r.read_to_end(&mut buf).unwrap();
        assert_eq!(buf, vec![1, 2]);
    }

    #[test]
    fn bit_flip_damages_one_byte() {
        let mut r = FaultyReader::new(vec![0, 0, 0], Fault::FlipBits { at: 1, mask: 0x80 });
        let mut buf = Vec::new();
        r.read_to_end(&mut buf).unwrap();
        assert_eq!(buf, vec![0, 0x80, 0]);
    }

    #[test]
    fn error_at_offset_fires() {
        let mut r = FaultyReader::new(vec![9; 10], Fault::ErrorAt { at: 4 });
        let mut buf = [0u8; 10];
        assert_eq!(r.read(&mut buf).unwrap(), 4);
        assert!(r.read(&mut buf).is_err());
    }

    #[test]
    fn short_reads_still_deliver_everything() {
        let data: Vec<u8> = (0..100).collect();
        let mut r = FaultyReader::new(data.clone(), Fault::ShortReads { chunk: 3 });
        let mut buf = Vec::new();
        r.read_to_end(&mut buf).unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn faulty_writer_fails_midway() {
        let mut w = FaultyWriter::failing_after(5);
        assert_eq!(w.write(&[1, 2, 3]).unwrap(), 3);
        assert_eq!(w.write(&[4, 5, 6]).unwrap(), 2, "partial acceptance");
        assert!(w.write(&[7]).is_err());
        assert_eq!(w.written(), &[1, 2, 3, 4, 5]);
    }
}
