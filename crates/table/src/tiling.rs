//! Partitioning a table into a grid of equal-sized tiles.
//!
//! The paper's mining experiments divide the data "into tiles of a
//! meaningful size, such as a day, or a few hours" and cluster the tiles.
//! [`TileGrid`] describes that partition; tiles are [`Rect`]s addressed by
//! a dense tile index, so clustering code can work with plain `usize`
//! object ids.

use crate::{Rect, TableError};

/// A regular grid of `tile_rows × tile_cols` tiles over an
/// `table_rows × table_cols` table.
///
/// Cells that do not fit a whole tile at the right/bottom edges are
/// excluded (the paper's tiles always divide its tables evenly; we keep the
/// general case safe by truncation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TileGrid {
    table_rows: usize,
    table_cols: usize,
    tile_rows: usize,
    tile_cols: usize,
    grid_rows: usize,
    grid_cols: usize,
}

impl TileGrid {
    /// Creates a tiling of a `table_rows × table_cols` table into
    /// `tile_rows × tile_cols` tiles.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::InvalidTileSize`] when the tile is zero-sized
    /// or larger than the table in either dimension.
    pub fn new(
        table_rows: usize,
        table_cols: usize,
        tile_rows: usize,
        tile_cols: usize,
    ) -> Result<Self, TableError> {
        if tile_rows == 0 || tile_cols == 0 || tile_rows > table_rows || tile_cols > table_cols {
            return Err(TableError::InvalidTileSize {
                tile_rows,
                tile_cols,
            });
        }
        Ok(Self {
            table_rows,
            table_cols,
            tile_rows,
            tile_cols,
            grid_rows: table_rows / tile_rows,
            grid_cols: table_cols / tile_cols,
        })
    }

    /// Tile height in table rows.
    #[inline]
    pub fn tile_rows(&self) -> usize {
        self.tile_rows
    }

    /// Tile width in table columns.
    #[inline]
    pub fn tile_cols(&self) -> usize {
        self.tile_cols
    }

    /// Number of tile rows in the grid.
    #[inline]
    pub fn grid_rows(&self) -> usize {
        self.grid_rows
    }

    /// Number of tile columns in the grid.
    #[inline]
    pub fn grid_cols(&self) -> usize {
        self.grid_cols
    }

    /// Total number of tiles.
    #[inline]
    pub fn len(&self) -> usize {
        self.grid_rows * self.grid_cols
    }

    /// Whether the grid contains no tiles (possible when the table is
    /// smaller than one tile in some dimension after truncation).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The rectangle of tile number `index` (row-major tile order).
    ///
    /// Returns `None` when `index >= len()`.
    pub fn tile(&self, index: usize) -> Option<Rect> {
        if index >= self.len() {
            return None;
        }
        let gr = index / self.grid_cols;
        let gc = index % self.grid_cols;
        Some(Rect::new(
            gr * self.tile_rows,
            gc * self.tile_cols,
            self.tile_rows,
            self.tile_cols,
        ))
    }

    /// The tile index covering table cell `(row, col)`, or `None` when the
    /// cell falls in the truncated margin.
    pub fn tile_index_at(&self, row: usize, col: usize) -> Option<usize> {
        if row >= self.table_rows || col >= self.table_cols {
            return None;
        }
        let gr = row / self.tile_rows;
        let gc = col / self.tile_cols;
        if gr < self.grid_rows && gc < self.grid_cols {
            Some(gr * self.grid_cols + gc)
        } else {
            None
        }
    }

    /// Iterator over all tile rectangles in row-major tile order.
    pub fn iter(&self) -> impl Iterator<Item = Rect> + '_ {
        (0..self.len()).map(move |i| self.tile(i).expect("index in range"))
    }

    /// The grid coordinates `(grid_row, grid_col)` of tile `index`.
    pub fn grid_coords(&self, index: usize) -> Option<(usize, usize)> {
        if index >= self.len() {
            None
        } else {
            Some((index / self.grid_cols, index % self.grid_cols))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_partition() {
        let g = TileGrid::new(8, 12, 2, 3).unwrap();
        assert_eq!(g.len(), 4 * 4);
        assert_eq!(g.tile(0), Some(Rect::new(0, 0, 2, 3)));
        assert_eq!(g.tile(1), Some(Rect::new(0, 3, 2, 3)));
        assert_eq!(g.tile(4), Some(Rect::new(2, 0, 2, 3)));
        assert_eq!(g.tile(15), Some(Rect::new(6, 9, 2, 3)));
        assert_eq!(g.tile(16), None);
    }

    #[test]
    fn truncates_ragged_margin() {
        let g = TileGrid::new(7, 10, 2, 3).unwrap();
        assert_eq!(g.grid_rows(), 3);
        assert_eq!(g.grid_cols(), 3);
        assert_eq!(g.len(), 9);
        // All tiles fit inside the table.
        for rect in g.iter() {
            assert!(rect.validate(7, 10).is_ok());
        }
    }

    #[test]
    fn rejects_bad_tile_sizes() {
        assert!(TileGrid::new(4, 4, 0, 1).is_err());
        assert!(TileGrid::new(4, 4, 5, 1).is_err());
        assert!(TileGrid::new(4, 4, 1, 5).is_err());
        assert!(TileGrid::new(4, 4, 4, 4).is_ok());
    }

    #[test]
    fn index_at_inverts_tile() {
        let g = TileGrid::new(9, 9, 3, 3).unwrap();
        for i in 0..g.len() {
            let r = g.tile(i).unwrap();
            assert_eq!(g.tile_index_at(r.row, r.col), Some(i));
            assert_eq!(g.tile_index_at(r.row + 2, r.col + 2), Some(i));
        }
    }

    #[test]
    fn index_at_margin_is_none() {
        let g = TileGrid::new(7, 7, 3, 3).unwrap();
        assert_eq!(g.grid_rows(), 2);
        assert_eq!(g.tile_index_at(6, 0), None, "cell in truncated margin");
        assert_eq!(g.tile_index_at(0, 6), None);
        assert_eq!(g.tile_index_at(9, 0), None, "outside the table");
    }

    #[test]
    fn grid_coords_round_trip() {
        let g = TileGrid::new(6, 6, 2, 2).unwrap();
        assert_eq!(g.grid_coords(0), Some((0, 0)));
        assert_eq!(g.grid_coords(5), Some((1, 2)));
        assert_eq!(g.grid_coords(9), None);
    }

    #[test]
    fn iter_yields_all_tiles() {
        let g = TileGrid::new(4, 6, 2, 2).unwrap();
        let tiles: Vec<Rect> = g.iter().collect();
        assert_eq!(tiles.len(), g.len());
        // Tiles are pairwise disjoint.
        for (i, a) in tiles.iter().enumerate() {
            for b in &tiles[i + 1..] {
                assert!(a.intersect(b).is_none());
            }
        }
    }
}
