//! Crash-safe file replacement: write to a temporary file in the target's
//! directory, fsync, then rename over the destination.
//!
//! The rename is atomic on POSIX filesystems, so a reader never observes a
//! half-written file and an interrupted save leaves any previous file
//! untouched — the invariant the fault-injection suite asserts.

use std::fs::File;
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Distinguishes concurrent writers to the same destination.
static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Writes a file at `path` by streaming `fill` into a temporary sibling,
/// fsyncing, and atomically renaming it into place.
///
/// If `fill` (or any I/O step) fails, the temporary file is removed and
/// whatever previously existed at `path` is left intact.
///
/// # Errors
///
/// Propagates I/O failures and any error returned by `fill`. The error
/// type `E` must be able to absorb [`io::Error`].
pub fn write_atomic<E, F>(path: &Path, fill: F) -> Result<(), E>
where
    E: From<io::Error>,
    F: FnOnce(&mut File) -> Result<(), E>,
{
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    let stamp = TEMP_COUNTER.fetch_add(1, Ordering::Relaxed);
    let file_name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "file".to_string());
    let tmp = dir.join(format!(".{file_name}.tmp.{}.{stamp}", std::process::id()));

    let result = (|| -> Result<(), E> {
        let mut file = File::create(&tmp).map_err(E::from)?;
        fill(&mut file)?;
        file.flush().map_err(E::from)?;
        file.sync_all().map_err(E::from)?;
        std::fs::rename(&tmp, path).map_err(E::from)?;
        Ok(())
    })();

    if result.is_err() {
        // Best-effort cleanup; the original destination is untouched.
        let _ = std::fs::remove_file(&tmp);
        return result;
    }

    // Persist the rename itself: fsync the containing directory. Failure
    // here is not fatal to correctness of the contents (best effort on
    // filesystems that reject directory fsync).
    if let Ok(dirf) = File::open(&dir) {
        let _ = dirf.sync_all();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn temp_dir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "tabsketch-atomic-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn read(path: &Path) -> Vec<u8> {
        let mut buf = Vec::new();
        File::open(path).unwrap().read_to_end(&mut buf).unwrap();
        buf
    }

    #[test]
    fn writes_and_replaces() {
        let dir = temp_dir();
        let path = dir.join("data.bin");
        write_atomic::<io::Error, _>(&path, |f| f.write_all(b"first")).unwrap();
        assert_eq!(read(&path), b"first");
        write_atomic::<io::Error, _>(&path, |f| f.write_all(b"second")).unwrap();
        assert_eq!(read(&path), b"second");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_fill_leaves_old_file_and_no_droppings() {
        let dir = temp_dir();
        let path = dir.join("data.bin");
        write_atomic::<io::Error, _>(&path, |f| f.write_all(b"stable")).unwrap();

        let err = write_atomic::<io::Error, _>(&path, |f| {
            f.write_all(b"partial junk")?;
            Err(io::Error::other("disk died mid-write"))
        });
        assert!(err.is_err());
        assert_eq!(read(&path), b"stable", "old contents must survive");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp files must be cleaned up");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failure_with_no_previous_file_creates_nothing() {
        let dir = temp_dir();
        let path = dir.join("never.bin");
        let err = write_atomic::<io::Error, _>(&path, |_| Err(io::Error::other("nope")));
        assert!(err.is_err());
        assert!(!path.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
