//! Exact Lp norms and distances over vectors, views, and tables.
//!
//! These are the ground-truth ("exact computation") routines the sketches
//! approximate — and the baseline the paper's timing figures compare
//! against. The Lp distance of the paper, for `0 < p ≤ 2`:
//!
//! `||x − y||_p = (Σ_i |x_i − y_i|^p)^(1/p)`
//!
//! extended entry-wise to matrices.

use crate::{Table, TableError, TableView};

/// Exponent domain accepted by the distance functions: `0 < p <= 2`.
///
/// The paper restricts attention to this range because symmetric p-stable
/// distributions (the sketching tool) exist exactly for `0 < p ≤ 2`.
#[inline]
pub fn valid_p(p: f64) -> bool {
    p > 0.0 && p <= 2.0 && p.is_finite()
}

/// `|x|^p` specialized for the common exponents.
///
/// `powf` is expensive; p = 1 and p = 2 are the traditional metrics and
/// appear in every benchmark, so they get fast paths.
#[inline]
pub fn abs_pow(x: f64, p: f64) -> f64 {
    let a = x.abs();
    if p == 1.0 {
        a
    } else if p == 2.0 {
        a * a
    } else if p == 0.5 {
        a.sqrt()
    } else {
        a.powf(p)
    }
}

/// The p-th power of the Lp distance between two equal-length slices:
/// `Σ_i |a_i − b_i|^p`.
///
/// # Panics
///
/// Panics in debug builds when lengths differ; in release the shorter
/// length is used (callers in this workspace validate shapes first).
pub fn lp_distance_pow_slices(a: &[f64], b: &[f64], p: f64) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    debug_assert!(valid_p(p));
    if p == 1.0 {
        a.iter().zip(b).map(|(&x, &y)| (x - y).abs()).sum()
    } else if p == 2.0 {
        a.iter()
            .zip(b)
            .map(|(&x, &y)| {
                let d = x - y;
                d * d
            })
            .sum()
    } else {
        a.iter().zip(b).map(|(&x, &y)| abs_pow(x - y, p)).sum()
    }
}

/// The Lp distance between two equal-length slices.
pub fn lp_distance_slices(a: &[f64], b: &[f64], p: f64) -> f64 {
    lp_distance_pow_slices(a, b, p).powf(1.0 / p)
}

/// The Lp norm of a slice.
pub fn lp_norm_slice(a: &[f64], p: f64) -> f64 {
    debug_assert!(valid_p(p));
    a.iter().map(|&x| abs_pow(x, p)).sum::<f64>().powf(1.0 / p)
}

/// Dot product of two equal-length slices.
pub fn dot_slices(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// The Lp distance between two table views of identical shape.
///
/// Operates row-by-row on the parents' buffers — subtables are never
/// materialized.
///
/// # Errors
///
/// Returns [`TableError::ShapeMismatch`] when shapes differ.
pub fn lp_distance_views(a: &TableView<'_>, b: &TableView<'_>, p: f64) -> Result<f64, TableError> {
    Ok(lp_distance_pow_views(a, b, p)?.powf(1.0 / p))
}

/// The p-th power of the Lp distance between two views (no final root) —
/// useful when only comparisons are needed, since `x ↦ x^(1/p)` is
/// monotone.
///
/// # Errors
///
/// Returns [`TableError::ShapeMismatch`] when shapes differ.
pub fn lp_distance_pow_views(
    a: &TableView<'_>,
    b: &TableView<'_>,
    p: f64,
) -> Result<f64, TableError> {
    if a.shape() != b.shape() {
        return Err(TableError::ShapeMismatch {
            left: a.shape(),
            right: b.shape(),
        });
    }
    let mut acc = 0.0;
    for (ra, rb) in a.row_iter().zip(b.row_iter()) {
        acc += lp_distance_pow_slices(ra, rb, p);
    }
    Ok(acc)
}

/// The Lp distance between two whole tables of identical shape.
///
/// # Errors
///
/// Returns [`TableError::ShapeMismatch`] when shapes differ.
pub fn lp_distance_tables(a: &Table, b: &Table, p: f64) -> Result<f64, TableError> {
    if a.shape() != b.shape() {
        return Err(TableError::ShapeMismatch {
            left: a.shape(),
            right: b.shape(),
        });
    }
    Ok(lp_distance_pow_slices(a.as_slice(), b.as_slice(), p).powf(1.0 / p))
}

/// Hamming-style distance: the number of positions where the two slices
/// differ. The paper notes that `Lp^p → Hamming` as `p → 0`.
pub fn hamming_distance_slices(a: &[f64], b: &[f64]) -> usize {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).filter(|(x, y)| x != y).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rect;

    #[test]
    fn valid_p_domain() {
        assert!(valid_p(0.25));
        assert!(valid_p(1.0));
        assert!(valid_p(2.0));
        assert!(!valid_p(0.0));
        assert!(!valid_p(2.1));
        assert!(!valid_p(-1.0));
        assert!(!valid_p(f64::NAN));
        assert!(!valid_p(f64::INFINITY));
    }

    #[test]
    fn l1_is_sum_of_abs_differences() {
        let a = [1.0, 5.0, -2.0];
        let b = [4.0, 5.0, 2.0];
        assert_eq!(lp_distance_slices(&a, &b, 1.0), 7.0);
    }

    #[test]
    fn l2_is_euclidean() {
        let a = [0.0, 0.0];
        let b = [3.0, 4.0];
        assert!((lp_distance_slices(&a, &b, 2.0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn fractional_p_known_value() {
        // |1|^0.5 + |4|^0.5 = 1 + 2 = 3; distance = 3^2 = 9.
        let a = [0.0, 0.0];
        let b = [1.0, 4.0];
        assert!((lp_distance_slices(&a, &b, 0.5) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn smaller_p_downweights_outliers() {
        // One big outlier vs many small differences: under L2 the outlier
        // vector is farther, under L0.5 the diffuse vector is farther.
        let origin = [0.0; 9];
        let outlier = [9.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let diffuse = [1.0; 9];
        let d2_out = lp_distance_slices(&origin, &outlier, 2.0);
        let d2_dif = lp_distance_slices(&origin, &diffuse, 2.0);
        assert!(d2_out > d2_dif);
        let dh_out = lp_distance_slices(&origin, &outlier, 0.5);
        let dh_dif = lp_distance_slices(&origin, &diffuse, 0.5);
        assert!(dh_out < dh_dif);
    }

    #[test]
    fn distance_is_a_metric_sanity() {
        let a = [1.0, 2.0, 3.0];
        let b = [2.0, 0.0, 5.0];
        let c = [0.0, 1.0, 1.0];
        for &p in &[0.5, 1.0, 1.5, 2.0] {
            let dab = lp_distance_slices(&a, &b, p);
            let dba = lp_distance_slices(&b, &a, p);
            assert!((dab - dba).abs() < 1e-12, "symmetry at p={p}");
            assert_eq!(lp_distance_slices(&a, &a, p), 0.0, "identity at p={p}");
            // Triangle inequality holds for p >= 1 (quasi-metric below).
            if p >= 1.0 {
                let dac = lp_distance_slices(&a, &c, p);
                let dcb = lp_distance_slices(&c, &b, p);
                assert!(dab <= dac + dcb + 1e-12, "triangle at p={p}");
            }
        }
    }

    #[test]
    fn view_distance_matches_slice_distance() {
        let t1 = Table::from_fn(6, 6, |r, c| (r * 6 + c) as f64).unwrap();
        let t2 = Table::from_fn(6, 6, |r, c| ((r * 6 + c) * 2) as f64).unwrap();
        let r = Rect::new(1, 2, 3, 3);
        let v1 = t1.view(r).unwrap();
        let v2 = t2.view(r).unwrap();
        for &p in &[0.5, 1.0, 1.3, 2.0] {
            let dv = lp_distance_views(&v1, &v2, p).unwrap();
            let ds = lp_distance_slices(&v1.to_vec(), &v2.to_vec(), p);
            assert!((dv - ds).abs() < 1e-9, "p={p}");
        }
    }

    #[test]
    fn view_distance_rejects_shape_mismatch() {
        let t = Table::zeros(4, 4).unwrap();
        let a = t.view(Rect::new(0, 0, 2, 2)).unwrap();
        let b = t.view(Rect::new(0, 0, 2, 3)).unwrap();
        assert!(lp_distance_views(&a, &b, 1.0).is_err());
    }

    #[test]
    fn table_distance_and_norm() {
        let a = Table::new(1, 3, vec![1.0, -2.0, 2.0]).unwrap();
        let b = Table::zeros(1, 3).unwrap();
        assert!((lp_distance_tables(&a, &b, 2.0).unwrap() - 3.0).abs() < 1e-12);
        assert!((lp_norm_slice(a.as_slice(), 2.0) - 3.0).abs() < 1e-12);
        assert!(lp_distance_tables(&a, &Table::zeros(3, 1).unwrap(), 2.0).is_err());
    }

    #[test]
    fn dot_product() {
        assert_eq!(dot_slices(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot_slices(&[], &[]), 0.0);
    }

    #[test]
    fn hamming() {
        assert_eq!(
            hamming_distance_slices(&[1.0, 2.0, 3.0], &[1.0, 0.0, 3.0]),
            1
        );
        assert_eq!(hamming_distance_slices(&[1.0], &[1.0]), 0);
    }

    #[test]
    fn abs_pow_fast_paths_match_powf() {
        for &x in &[-3.5, -1.0, 0.0, 0.1, 2.0, 100.0] {
            for &p in &[0.5, 1.0, 2.0] {
                assert!((abs_pow(x, p) - x.abs().powf(p)).abs() < 1e-12);
            }
        }
    }
}
