//! Dyadic (power-of-two) size machinery for compound sketches.
//!
//! The paper (Theorems 5 and 6) precomputes sketches for all "canonical"
//! subtable sizes `2^i × 2^j` and then covers an arbitrary `c × d` query
//! rectangle with **four overlapping** dyadic rectangles of size `a × b`,
//! where `a = 2^⌊log₂ c⌋` (so `a ≤ c ≤ 2a`) and likewise for `b`. This
//! module computes those covers.

use crate::Rect;

/// The largest power of two that is `<= n`. `n` must be non-zero.
///
/// # Panics
///
/// Panics when `n == 0`.
#[inline]
pub fn floor_pow2(n: usize) -> usize {
    assert!(n > 0, "floor_pow2 of zero");
    1usize << (usize::BITS - 1 - n.leading_zeros())
}

/// All canonical dyadic sizes `(2^i, 2^j)` with `2^i <= max_rows` and
/// `2^j <= max_cols`, in increasing order of `(rows, cols)`.
pub fn canonical_sizes(max_rows: usize, max_cols: usize) -> Vec<(usize, usize)> {
    let mut sizes = Vec::new();
    let mut r = 1;
    while r <= max_rows {
        let mut c = 1;
        while c <= max_cols {
            sizes.push((r, c));
            c <<= 1;
        }
        r <<= 1;
    }
    sizes
}

/// The four-rectangle dyadic cover of a query rectangle (Definition 4).
///
/// All four rectangles have the same dyadic shape `a × b` with
/// `a ≤ rect.rows ≤ 2a` and `b ≤ rect.cols ≤ 2b`; they are anchored at the
/// four corners of the query so that their union is exactly the query
/// rectangle (they overlap in the middle).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DyadicCover {
    /// The shared dyadic shape `(a, b)` of the four covering rectangles.
    pub shape: (usize, usize),
    /// Top-left, top-right, bottom-left, bottom-right anchors, in the
    /// order used by the paper's Definition 4: `s, t, u, v` sketches cover
    /// `(i, j)`, `(i + c − a, j)`, `(i, j + d − b)`, `(i + c − a, j + d − b)`.
    pub anchors: [Rect; 4],
}

impl DyadicCover {
    /// Computes the cover of `rect`. The rectangle must be non-empty.
    ///
    /// Returns `None` when the rectangle has a zero dimension.
    pub fn of(rect: Rect) -> Option<Self> {
        if rect.rows == 0 || rect.cols == 0 {
            return None;
        }
        let a = floor_pow2(rect.rows);
        let b = floor_pow2(rect.cols);
        let (i, j) = (rect.row, rect.col);
        let (c, d) = (rect.rows, rect.cols);
        let anchors = [
            Rect::new(i, j, a, b),
            Rect::new(i + c - a, j, a, b),
            Rect::new(i, j + d - b, a, b),
            Rect::new(i + c - a, j + d - b, a, b),
        ];
        Some(Self {
            shape: (a, b),
            anchors,
        })
    }

    /// Whether the query rectangle is itself dyadic, in which case all four
    /// anchors coincide and a direct (non-compound) sketch is exact.
    pub fn is_exact(&self) -> bool {
        self.anchors[0] == self.anchors[3]
    }
}

/// How many times the cover counts each cell of the query rectangle.
///
/// Used by tests and by the estimator documentation: with overlap, cells
/// are counted 1, 2, or 4 times, which is why compound sketches carry a
/// factor-4 approximation guarantee rather than `1 + ε`.
pub fn cover_multiplicity(rect: Rect) -> Option<Vec<u8>> {
    let cover = DyadicCover::of(rect)?;
    let mut counts = vec![0u8; rect.area()];
    for anchor in &cover.anchors {
        for r in 0..anchor.rows {
            for c in 0..anchor.cols {
                let rr = anchor.row + r - rect.row;
                let cc = anchor.col + c - rect.col;
                counts[rr * rect.cols + cc] += 1;
            }
        }
    }
    Some(counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floor_pow2_values() {
        assert_eq!(floor_pow2(1), 1);
        assert_eq!(floor_pow2(2), 2);
        assert_eq!(floor_pow2(3), 2);
        assert_eq!(floor_pow2(4), 4);
        assert_eq!(floor_pow2(7), 4);
        assert_eq!(floor_pow2(8), 8);
        assert_eq!(floor_pow2(1023), 512);
    }

    #[test]
    #[should_panic(expected = "floor_pow2 of zero")]
    fn floor_pow2_zero_panics() {
        let _ = floor_pow2(0);
    }

    #[test]
    fn canonical_size_count_is_log_squared() {
        let sizes = canonical_sizes(16, 16);
        assert_eq!(sizes.len(), 5 * 5);
        assert!(sizes.contains(&(1, 1)));
        assert!(sizes.contains(&(16, 16)));
        assert!(!sizes.contains(&(32, 1)));
    }

    #[test]
    fn cover_shape_halving_invariant() {
        for rows in 1..40 {
            for cols in 1..40 {
                let cover = DyadicCover::of(Rect::new(5, 7, rows, cols)).unwrap();
                let (a, b) = cover.shape;
                assert!(a <= rows && rows <= 2 * a, "rows={rows}, a={a}");
                assert!(b <= cols && cols <= 2 * b, "cols={cols}, b={b}");
            }
        }
    }

    #[test]
    fn cover_union_is_exactly_the_rect() {
        for &(rows, cols) in &[(3usize, 5usize), (7, 7), (4, 4), (1, 1), (6, 9)] {
            let rect = Rect::new(2, 3, rows, cols);
            let counts = cover_multiplicity(rect).unwrap();
            assert!(
                counts.iter().all(|&c| c >= 1),
                "every cell covered for {rows}x{cols}"
            );
            assert!(counts.iter().all(|&c| c <= 4), "multiplicity bounded by 4");
        }
    }

    #[test]
    fn cover_anchors_stay_inside_rect() {
        let rect = Rect::new(10, 20, 6, 9);
        let cover = DyadicCover::of(rect).unwrap();
        for anchor in &cover.anchors {
            assert!(rect.contains_rect(anchor), "{anchor:?} outside {rect:?}");
        }
    }

    #[test]
    fn dyadic_rect_is_exact() {
        let cover = DyadicCover::of(Rect::new(0, 0, 8, 4)).unwrap();
        assert!(cover.is_exact());
        assert_eq!(cover.shape, (8, 4));
        let cover2 = DyadicCover::of(Rect::new(0, 0, 8, 5)).unwrap();
        assert!(!cover2.is_exact());
    }

    #[test]
    fn empty_rect_has_no_cover() {
        assert!(DyadicCover::of(Rect::new(0, 0, 0, 3)).is_none());
    }

    #[test]
    fn multiplicity_of_dyadic_rect_is_four_everywhere() {
        // When the rect is exactly dyadic the four anchors coincide, so
        // every cell is counted 4 times.
        let counts = cover_multiplicity(Rect::new(0, 0, 4, 4)).unwrap();
        assert!(counts.iter().all(|&c| c == 4));
    }
}
