//! # tabsketch-table
//!
//! The tabular data model underlying the `tabsketch` workspace:
//!
//! * [`Table`] — a dense row-major matrix of `f64` (the paper's "tabular
//!   data", e.g. call volume by station × time slot);
//! * [`Rect`] / [`TableView`] — zero-copy rectangular subtables;
//! * [`TileGrid`] — partitioning a table into the equal-sized tiles that
//!   mining algorithms cluster;
//! * [`dyadic`] — canonical power-of-two sizes and the four-rectangle
//!   covers behind compound sketches (paper Definition 4, Theorems 5–6);
//! * [`norms`] — exact Lp distances for all `0 < p ≤ 2` (the ground truth
//!   the sketches approximate);
//! * [`io`] — CSV and binary persistence, including bounded-memory
//!   streaming loaders;
//! * [`storage`] — the storage-backend layer: dense in-RAM tables and
//!   [`MemoryBudget`]-bounded tables spilled to a checksummed temp file.
//!
//! ```
//! use tabsketch_table::{Table, Rect, norms};
//!
//! let t = Table::from_fn(8, 8, |r, c| (r * c) as f64).unwrap();
//! let a = t.view(Rect::new(0, 0, 4, 4)).unwrap();
//! let b = t.view(Rect::new(4, 4, 4, 4)).unwrap();
//! let d1 = norms::lp_distance_views(&a, &b, 1.0).unwrap();
//! let dh = norms::lp_distance_views(&a, &b, 0.5).unwrap();
//! assert!(d1 > 0.0 && dh > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atomic;
pub mod checksum;
pub mod dyadic;
mod error;
pub mod faults;
pub mod io;
pub mod manifest;
pub mod norms;
mod rect;
pub mod stats;
pub mod storage;
mod table;
mod tiling;
pub mod transform;
mod update;

pub use error::TableError;
pub use manifest::{Collection, Manifest, ManifestEntry};
pub use rect::Rect;
pub use storage::{MemoryBudget, RowChunks, RowGuard, SpillWriter, SpilledStorage, TableStorage};
pub use table::{Table, TableView};
pub use tiling::TileGrid;
pub use update::{TableEpoch, TableUpdate};

/// Registers this crate's metric instruments in the global registry so
/// snapshots include them at zero before first use.
pub fn register_metrics() {
    use tabsketch_obs as obs;
    obs::counter("table.storage.chunk_loads");
    obs::counter("table.storage.chunk_evictions");
    obs::counter("table.storage.spilled_tables");
    obs::gauge("table.storage.resident_bytes");
    obs::gauge("table.storage.resident_peak_bytes");
    obs::counter("table.updates.applied");
    obs::counter("table.updates.cells");
    obs::counter("table.updates.rejected");
    obs::counter("collection.members_opened");
    obs::counter("collection.members_degraded");
}
