//! Property-based tests for the tabular data model.

use proptest::prelude::*;

use tabsketch_table::dyadic::{cover_multiplicity, floor_pow2, DyadicCover};
use tabsketch_table::{
    io, norms, Manifest, MemoryBudget, Rect, Table, TableError, TableStorage, TileGrid,
};

fn table_strategy() -> impl Strategy<Value = Table> {
    (1usize..16, 1usize..16).prop_flat_map(|(rows, cols)| {
        proptest::collection::vec(-1e4f64..1e4, rows * cols)
            .prop_map(move |data| Table::new(rows, cols, data).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any in-bounds rect yields a view whose linearization matches
    /// cell-by-cell reads. The rect is derived from fractions of the
    /// table's actual dimensions so every generated case is in bounds.
    #[test]
    fn views_are_consistent(t in table_strategy(), fr in 0.0f64..1.0, fc in 0.0f64..1.0,
                            fh in 0.0f64..1.0, fw in 0.0f64..1.0) {
        let r = (fr * (t.rows() - 1) as f64) as usize;
        let c = (fc * (t.cols() - 1) as f64) as usize;
        let h = 1 + (fh * (t.rows() - r - 1) as f64) as usize;
        let w = 1 + (fw * (t.cols() - c - 1) as f64) as usize;
        let rect = Rect::new(r, c, h, w);
        let view = t.view(rect).unwrap();
        let vec = view.to_vec();
        prop_assert_eq!(vec.len(), h * w);
        for i in 0..h {
            for j in 0..w {
                prop_assert_eq!(vec[i * w + j], t.get(r + i, c + j));
                prop_assert_eq!(view.get(i, j), t.get(r + i, c + j));
            }
        }
        let materialized = view.to_table();
        prop_assert_eq!(materialized.as_slice(), &vec[..]);
    }

    /// Lp distance is symmetric, zero on identity, and positive on
    /// differing slices, for all p in the valid range.
    #[test]
    fn lp_distance_axioms(a in proptest::collection::vec(-100.0f64..100.0, 1..50),
                          p in 0.05f64..2.0) {
        let b: Vec<f64> = a.iter().map(|&x| x + 1.0).collect();
        let dab = norms::lp_distance_slices(&a, &b, p);
        let dba = norms::lp_distance_slices(&b, &a, p);
        prop_assert!((dab - dba).abs() < 1e-9 * (1.0 + dab));
        prop_assert_eq!(norms::lp_distance_slices(&a, &a, p), 0.0);
        prop_assert!(dab > 0.0);
    }

    /// Triangle inequality for p >= 1 (Lp is a metric there).
    #[test]
    fn lp_triangle_inequality(
        a in proptest::collection::vec(-50.0f64..50.0, 1..30),
        p in 1.0f64..2.0,
        seed in 0u64..100,
    ) {
        let n = a.len();
        let mut s = seed | 1;
        let mut next = move || { s ^= s << 13; s ^= s >> 7; s ^= s << 17; (s % 100) as f64 - 50.0 };
        let b: Vec<f64> = (0..n).map(|_| next()).collect();
        let c: Vec<f64> = (0..n).map(|_| next()).collect();
        let dab = norms::lp_distance_slices(&a, &b, p);
        let dac = norms::lp_distance_slices(&a, &c, p);
        let dcb = norms::lp_distance_slices(&c, &b, p);
        prop_assert!(dab <= dac + dcb + 1e-9 * (1.0 + dab));
    }

    /// For p < 1, the p-th power of the distance is subadditive
    /// (the "quasi-metric" property the paper's small-p regime rests on).
    #[test]
    fn lp_power_subadditive_below_one(
        a in proptest::collection::vec(-50.0f64..50.0, 1..30),
        p in 0.1f64..1.0,
        seed in 0u64..100,
    ) {
        let n = a.len();
        let mut s = seed | 1;
        let mut next = move || { s ^= s << 13; s ^= s >> 7; s ^= s << 17; (s % 100) as f64 - 50.0 };
        let b: Vec<f64> = (0..n).map(|_| next()).collect();
        let c: Vec<f64> = (0..n).map(|_| next()).collect();
        let dab = norms::lp_distance_pow_slices(&a, &b, p);
        let dac = norms::lp_distance_pow_slices(&a, &c, p);
        let dcb = norms::lp_distance_pow_slices(&c, &b, p);
        prop_assert!(dab <= dac + dcb + 1e-9 * (1.0 + dab));
    }

    /// Both persistence formats round-trip any table (CSV up to printing
    /// precision, binary exactly).
    #[test]
    fn io_roundtrips(t in table_strategy()) {
        let mut bin = Vec::new();
        io::write_binary(&t, &mut bin).unwrap();
        prop_assert_eq!(&io::read_binary(bin.as_slice()).unwrap(), &t);

        let mut csv = Vec::new();
        io::write_csv(&t, &mut csv).unwrap();
        let back = io::read_csv(csv.as_slice()).unwrap();
        prop_assert_eq!(back.shape(), t.shape());
        for (a, b) in back.as_slice().iter().zip(t.as_slice()) {
            prop_assert!((a - b).abs() < 1e-9 * (1.0 + b.abs()));
        }
    }

    /// floor_pow2 returns the greatest power of two <= n.
    #[test]
    fn floor_pow2_property(n in 1usize..1_000_000) {
        let f = floor_pow2(n);
        prop_assert!(f.is_power_of_two());
        prop_assert!(f <= n);
        prop_assert!(f * 2 > n);
    }

    /// Dyadic covers: shape halving, containment, and full coverage with
    /// multiplicity in [1, 4].
    #[test]
    fn dyadic_cover_properties(r in 0usize..50, c in 0usize..50,
                               h in 1usize..40, w in 1usize..40) {
        let rect = Rect::new(r, c, h, w);
        let cover = DyadicCover::of(rect).unwrap();
        let (a, b) = cover.shape;
        prop_assert!(a <= h && h <= 2 * a);
        prop_assert!(b <= w && w <= 2 * b);
        for anchor in &cover.anchors {
            prop_assert!(rect.contains_rect(anchor));
        }
        let mult = cover_multiplicity(rect).unwrap();
        prop_assert!(mult.iter().all(|&m| (1..=4).contains(&m)));
    }

    /// Tile grids partition their covered area: tiles are disjoint, lie
    /// in the table, and tile_index_at inverts tile().
    #[test]
    fn tile_grid_partition(rows in 1usize..30, cols in 1usize..30,
                           th in 1usize..10, tw in 1usize..10) {
        prop_assume!(th <= rows && tw <= cols);
        let grid = TileGrid::new(rows, cols, th, tw).unwrap();
        let tiles: Vec<Rect> = grid.iter().collect();
        for (i, t) in tiles.iter().enumerate() {
            prop_assert!(t.validate(rows, cols).is_ok());
            prop_assert_eq!(grid.tile_index_at(t.row, t.col), Some(i));
            for u in &tiles[i + 1..] {
                prop_assert!(t.intersect(u).is_none());
            }
        }
    }

    /// Streaming CSV ingest is bit-identical to the eager loader for any
    /// table and budget — including through blank lines, which both
    /// paths skip.
    #[test]
    fn streaming_csv_matches_eager(t in table_strategy(), budget_rows in 1usize..6,
                                   blank_stride in 1usize..5) {
        let mut csv = Vec::new();
        io::write_csv(&t, &mut csv).unwrap();
        // Sprinkle blank lines between rows.
        let text = String::from_utf8(csv).unwrap();
        let mut with_blanks = String::new();
        for (i, line) in text.lines().enumerate() {
            if i % blank_stride == 0 {
                with_blanks.push('\n');
            }
            with_blanks.push_str(line);
            with_blanks.push('\n');
        }
        let eager = io::read_csv(with_blanks.as_bytes()).unwrap();
        for budget in [
            MemoryBudget::unbounded(),
            MemoryBudget::bytes((budget_rows * t.cols() * 8) as u64),
        ] {
            let streamed = io::read_csv_streaming(with_blanks.as_bytes(), budget).unwrap();
            prop_assert_eq!(streamed.shape(), eager.shape());
            for r in 0..t.rows() {
                for c in 0..t.cols() {
                    prop_assert_eq!(streamed.get(r, c).to_bits(), eager.get(r, c).to_bits());
                }
            }
        }
    }

    /// Streaming binary ingest reproduces the eager loader bit-for-bit
    /// at any budget; bounded budgets land in spilled storage.
    #[test]
    fn streaming_binary_matches_eager(t in table_strategy(), budget_rows in 1usize..6) {
        let mut bin = Vec::new();
        io::write_binary(&t, &mut bin).unwrap();
        let eager = io::read_binary(&bin[..]).unwrap();
        prop_assert_eq!(&eager, &t);
        let unbounded = io::read_binary_streaming(&bin[..], MemoryBudget::unbounded()).unwrap();
        prop_assert!(matches!(unbounded.storage(), TableStorage::Dense(_)));
        prop_assert_eq!(&unbounded, &t);
        let budget = MemoryBudget::bytes((budget_rows * t.cols() * 8) as u64);
        let bounded = io::read_binary_streaming(&bin[..], budget).unwrap();
        prop_assert_eq!(bounded.is_spilled(), budget_rows < t.rows());
        for r in 0..t.rows() {
            for c in 0..t.cols() {
                prop_assert_eq!(bounded.get(r, c).to_bits(), t.get(r, c).to_bits());
            }
        }
    }

    /// A non-finite cell is rejected by the eager and streaming CSV
    /// paths with the same typed error and the same cell coordinates.
    #[test]
    fn non_finite_rejection_matches_eager(t in table_strategy(), fr in 0.0f64..1.0,
                                          fc in 0.0f64..1.0, which in 0usize..2) {
        let bad_r = (fr * (t.rows() - 1) as f64) as usize;
        let bad_c = (fc * (t.cols() - 1) as f64) as usize;
        let poison = if which == 0 { "NaN" } else { "inf" };
        let mut csv = Vec::new();
        io::write_csv(&t, &mut csv).unwrap();
        let text = String::from_utf8(csv).unwrap();
        let poisoned: Vec<String> = text
            .lines()
            .enumerate()
            .map(|(r, line)| {
                if r != bad_r {
                    return line.to_string();
                }
                let mut cells: Vec<&str> = line.split(',').collect();
                cells[bad_c] = poison;
                cells.join(",")
            })
            .collect();
        let poisoned = poisoned.join("\n");
        let eager = io::read_csv(poisoned.as_bytes()).unwrap_err();
        prop_assert_eq!(&eager, &TableError::NonFinite { row: bad_r, col: bad_c });
        for budget in [MemoryBudget::unbounded(), MemoryBudget::bytes(64)] {
            let streamed = io::read_csv_streaming(poisoned.as_bytes(), budget).unwrap_err();
            prop_assert_eq!(&streamed, &eager);
        }
    }

    /// Flipping any byte of a spilled chunk body surfaces as the typed
    /// `Corrupt { section: "spill-chunk" }` error on the next cold read,
    /// never as silent data corruption.
    #[test]
    fn corrupted_spill_chunk_is_a_typed_error(t in table_strategy(), fpos in 0.0f64..1.0) {
        // One row per window keeps every read a cold chunk load.
        let budget = MemoryBudget::bytes((t.cols() * 8) as u64);
        let spilled = t.clone().with_budget(budget).unwrap();
        prop_assume!(spilled.is_spilled());
        let storage = match spilled.storage() {
            TableStorage::Spilled(s) => s,
            TableStorage::Dense(_) => unreachable!("just checked is_spilled"),
        };
        storage.flush_resident();
        let path = storage.spill_path().to_path_buf();
        let mut bytes = std::fs::read(&path).unwrap();
        // Corrupt one byte of the first chunk's f64 body (skipping the
        // header and the chunk's trailing CRC).
        let header = 36usize;
        let body = storage.chunk_rows() * t.cols() * 8;
        let target = header + (fpos * (body - 1) as f64) as usize;
        bytes[target] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let err = spilled.row_window(0, 1).unwrap_err();
        prop_assert!(
            matches!(err, TableError::Corrupt { section: "spill-chunk", .. }),
            "expected a spill-chunk corruption error, got {err:?}"
        );
    }

    /// Collection manifests round-trip through format -> parse for any
    /// mix of slot shapes (bare, explicit store, bare index, both),
    /// with comments and blank lines interleaved, and the formatted
    /// text is a fixed point.
    #[test]
    fn manifest_format_parse_round_trips(
        slots in proptest::collection::vec((0usize..2, 0usize..2), 1..12),
        comment_stride in 1usize..5,
    ) {
        let mut lines = Vec::new();
        for (i, &(store, index)) in slots.iter().enumerate() {
            if i % comment_stride == 0 {
                lines.push(format!("# member {i}"));
                lines.push(String::new());
            }
            let mut line = format!("m{i}=tables/t{i}.tsb");
            if store == 1 {
                line.push_str(&format!(":stores/s{i}.tsks"));
            }
            if index == 1 {
                if store == 0 {
                    line.push(':');
                }
                line.push_str(&format!(":idx/i{i}.tix"));
            }
            lines.push(line);
        }
        let text = lines.join("\n");
        let parsed = Manifest::parse_str(&text, std::path::Path::new("")).unwrap();
        prop_assert_eq!(parsed.len(), slots.len());
        let formatted = parsed.format();
        let back = Manifest::parse_str(&formatted, std::path::Path::new("")).unwrap();
        prop_assert_eq!(&back, &parsed);
        prop_assert_eq!(back.format(), formatted);
    }

    /// hstack/vstack preserve content.
    #[test]
    fn stacking_preserves_cells(a in table_strategy()) {
        let b = a.clone();
        let h = a.hstack(&b).unwrap();
        prop_assert_eq!(h.shape(), (a.rows(), a.cols() * 2));
        prop_assert_eq!(h.get(0, a.cols()), a.get(0, 0));
        let v = a.vstack(&b).unwrap();
        prop_assert_eq!(v.shape(), (a.rows() * 2, a.cols()));
        prop_assert_eq!(v.get(a.rows(), 0), a.get(0, 0));
    }
}
