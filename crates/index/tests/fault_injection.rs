//! Fault injection for the `TIX1` index format: every realistic damage
//! class — truncation, bit-rot, device errors mid-read, short reads,
//! and a disk dying mid-save — must surface as a typed error (never a
//! panic, never unbounded allocation, never silently wrong data), and
//! an interrupted save must leave any previous file intact.

use tabsketch_core::TabError;
use tabsketch_index::persist::{read_index, write_index};
use tabsketch_index::{LshIndex, LshParams};
use tabsketch_table::faults::{Fault, FaultyReader, FaultyWriter};

fn sample_index() -> LshIndex {
    let sketches: Vec<Vec<f64>> = (0..40)
        .map(|i| {
            (0..64)
                .map(|j| ((i / 10) * 300) as f64 + ((i * 13 + j * 29) % 17) as f64 / 4.0)
                .collect()
        })
        .collect();
    let refs: Vec<&[f64]> = sketches.iter().map(|s| &s[..]).collect();
    LshIndex::build(LshParams::new(8, 4, 9.0, 41).unwrap(), 8, 8, &refs).unwrap()
}

fn encoded() -> Vec<u8> {
    let mut buf = Vec::new();
    write_index(&sample_index(), &mut buf).unwrap();
    buf
}

#[test]
fn truncation_at_every_offset_is_typed_corruption() {
    let clean = encoded();
    for at in 0..clean.len() {
        let mut r = FaultyReader::new(clean.clone(), Fault::Truncate { at });
        match read_index(&mut r) {
            Err(TabError::Corrupt { .. }) => {}
            other => panic!("truncate at {at}: expected Corrupt, got {other:?}"),
        }
    }
}

#[test]
fn single_bit_flips_never_load_silently() {
    let clean = encoded();
    let baseline = sample_index();
    // Every byte, one flipped bit: the load must either fail with a
    // typed Corrupt error or (never) produce a different index.
    for at in 0..clean.len() {
        let mut r = FaultyReader::new(clean.clone(), Fault::FlipBits { at, mask: 0x10 });
        match read_index(&mut r) {
            Err(TabError::Corrupt { .. }) => {}
            Ok(loaded) => panic!(
                "flip at {at} loaded without error (identical: {})",
                loaded == baseline
            ),
            Err(other) => panic!("flip at {at}: unexpected error class {other:?}"),
        }
    }
}

#[test]
fn device_error_mid_read_is_io_not_panic() {
    let clean = encoded();
    for at in [0, 3, 70, clean.len() / 2, clean.len() - 1] {
        let mut r = FaultyReader::new(clean.clone(), Fault::ErrorAt { at });
        match read_index(&mut r) {
            Err(TabError::Io(_)) | Err(TabError::Corrupt { .. }) => {}
            other => panic!("device error at {at}: got {other:?}"),
        }
    }
}

#[test]
fn short_reads_still_load_cleanly() {
    let clean = encoded();
    for chunk in [1, 3, 7] {
        let mut r = FaultyReader::new(clean.clone(), Fault::ShortReads { chunk });
        let loaded = read_index(&mut r).expect("short reads are not damage");
        assert_eq!(loaded, sample_index());
    }
}

#[test]
fn disk_full_mid_write_is_an_error_not_a_partial_file() {
    let ix = sample_index();
    let mut full = FaultyWriter::new();
    write_index(&ix, &mut full).unwrap();
    let total = full.written().len();
    for at in [0, 10, 64, total / 2] {
        let mut w = FaultyWriter::failing_after(at);
        assert!(
            write_index(&ix, &mut w).is_err(),
            "write into a dying disk (capacity {at}) must fail"
        );
    }
}

#[test]
fn interrupted_atomic_save_leaves_previous_index() {
    use tabsketch_index::persist::{load_index, save_index};

    let dir = std::env::temp_dir().join(format!(
        "tabsketch-index-faults-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("x.tix");
    let ix = sample_index();
    save_index(&ix, &path).unwrap();

    // Damage the file on disk: the loader reports typed corruption, and
    // re-saving atomically replaces it with a good copy again.
    std::fs::write(&path, b"TIX1 but trashed").unwrap();
    assert!(matches!(
        load_index(&path),
        Err(TabError::Corrupt { .. }) | Err(TabError::Io(_))
    ));
    save_index(&ix, &path).unwrap();
    assert_eq!(load_index(&path).unwrap(), ix);
    let _ = std::fs::remove_dir_all(&dir);
}
