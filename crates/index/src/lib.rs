//! # tabsketch-index
//!
//! A banded p-stable LSH candidate index over sketch vectors, turning
//! the linear k-NN scans of `tabsketch-cluster` and `tabsketch-serve`
//! into candidate retrieval + rerank.
//!
//! The paper's sketches are already p-stable random projections of the
//! tiles, which is exactly the hash family p-stable LSH needs: for two
//! tiles `x, y`, coordinate `i` of their sketches differs by
//! `(x − y)·r[i] ~ ‖x − y‖_p · X` with `X` standard p-stable, so
//! quantizing each coordinate with a seeded random shift,
//! `h_i(v) = ⌊(v_i + s_i) / w⌋`, collides with probability decreasing in
//! the Lp distance (Datar–Immorlica–Indyk–Mirrokni). The index groups
//! `r` such rows into a band key and keeps `b` bands; a tile is a
//! candidate for a query when **any** band key matches. Candidates are
//! then reranked by the caller with the existing O(k) sketch estimator
//! (and optionally the exact tier), so answers degrade gracefully
//! exactly like the distance oracle's ladder — an unusable index means
//! a linear scan, never a wrong or missing answer.
//!
//! Everything is deterministic: the shifts are derived from the index
//! seed through [`tabsketch_core::rng::stream_rng`], so build, query,
//! and a reload from the checksummed [`persist`] format (`TIX1`) all
//! agree bit-for-bit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod persist;

use rand::Rng;
use tabsketch_core::rng::{mix64, stream_rng};
use tabsketch_core::TabError;

/// Hard cap on bands: beyond this the index would outweigh the
/// sketches it summarizes.
pub const MAX_BANDS: usize = 1024;

/// Hard cap on quantized rows per band.
pub const MAX_ROWS_PER_BAND: usize = 64;

/// Parameters of a banded LSH index: `bands × rows_per_band` quantized
/// sketch coordinates, bucket width `width`, and the seed the random
/// shifts derive from.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LshParams {
    bands: usize,
    rows_per_band: usize,
    width: f64,
    seed: u64,
}

impl LshParams {
    /// Validates and builds the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`TabError::InvalidParameter`] when `bands` is zero or
    /// over [`MAX_BANDS`], `rows_per_band` is zero or over
    /// [`MAX_ROWS_PER_BAND`], or `width` is not a positive finite
    /// number.
    pub fn new(
        bands: usize,
        rows_per_band: usize,
        width: f64,
        seed: u64,
    ) -> Result<Self, TabError> {
        if bands == 0 || bands > MAX_BANDS {
            return Err(TabError::InvalidParameter(
                "band count must lie in 1..=1024",
            ));
        }
        if rows_per_band == 0 || rows_per_band > MAX_ROWS_PER_BAND {
            return Err(TabError::InvalidParameter(
                "rows per band must lie in 1..=64",
            ));
        }
        if !(width.is_finite() && width > 0.0) {
            return Err(TabError::InvalidParameter(
                "bucket width must be positive and finite",
            ));
        }
        Ok(Self {
            bands,
            rows_per_band,
            width,
            seed,
        })
    }

    /// The band count `b`.
    #[inline]
    pub fn bands(&self) -> usize {
        self.bands
    }

    /// Quantized rows per band `r`.
    #[inline]
    pub fn rows_per_band(&self) -> usize {
        self.rows_per_band
    }

    /// The quantization bucket width `w`.
    #[inline]
    pub fn width(&self) -> f64 {
        self.width
    }

    /// The seed the random shifts derive from.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

/// Occupancy summary of a built index (also what the serve protocol
/// reports per store).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IndexStats {
    /// Indexed items (tiles).
    pub items: usize,
    /// Band count.
    pub bands: usize,
    /// Quantized rows per band.
    pub rows_per_band: usize,
    /// Non-empty buckets summed over all bands.
    pub buckets: usize,
    /// Stored (band, item) entries — always `bands × items`.
    pub entries: usize,
    /// The largest single bucket.
    pub max_bucket: usize,
}

/// One band's bucket table: bucket keys sorted ascending, each mapping
/// to a contiguous id range in `ids`. Lookup is a binary search — no
/// per-bucket allocation, cache-friendly scans.
#[derive(Clone, Debug, PartialEq, Eq)]
struct BandTable {
    /// `(key, start, len)` sorted by `key`; `start..start+len` indexes
    /// into `ids`.
    buckets: Vec<(u64, u32, u32)>,
    /// Item ids grouped by bucket, ascending within each bucket.
    ids: Vec<u32>,
}

impl BandTable {
    fn lookup(&self, key: u64) -> &[u32] {
        match self.buckets.binary_search_by_key(&key, |&(k, _, _)| k) {
            Ok(i) => {
                let (_, start, len) = self.buckets[i];
                &self.ids[start as usize..start as usize + len as usize]
            }
            Err(_) => &[],
        }
    }
}

/// A banded p-stable LSH index over the sketch vectors of a tile grid.
///
/// Item ids are tile ids: index `i` refers to the `i`-th tile of the
/// grid the sketches were taken over (the same ordering
/// `TileGrid::iter` produces), which is also the `index` field of a
/// reranked `Neighbor`.
#[derive(Clone, Debug, PartialEq)]
pub struct LshIndex {
    params: LshParams,
    sketch_k: usize,
    items: usize,
    tile_rows: usize,
    tile_cols: usize,
    /// Per-(band, row) random shift in `[0, w)`, row-major.
    shifts: Vec<f64>,
    bands: Vec<BandTable>,
}

impl LshIndex {
    /// Builds the index over `sketches`, one per tile of a
    /// `tile_rows × tile_cols` grid, in grid order.
    ///
    /// # Errors
    ///
    /// Returns [`TabError::InvalidParameter`] when `sketches` is empty,
    /// exceeds `u32::MAX` items, or `bands × rows_per_band` exceeds the
    /// sketch width, and [`TabError::SketchMismatch`] when sketch
    /// widths are inconsistent.
    pub fn build(
        params: LshParams,
        tile_rows: usize,
        tile_cols: usize,
        sketches: &[&[f64]],
    ) -> Result<Self, TabError> {
        let first = sketches
            .first()
            .ok_or(TabError::InvalidParameter("no sketches to index"))?;
        let sketch_k = first.len();
        if sketches.iter().any(|s| s.len() != sketch_k) {
            return Err(TabError::SketchMismatch {
                reason: "sketch widths differ across indexed items",
            });
        }
        if sketches.len() > u32::MAX as usize {
            return Err(TabError::InvalidParameter(
                "at most 2^32-1 items can be indexed",
            ));
        }
        if params.bands * params.rows_per_band > sketch_k {
            return Err(TabError::InvalidParameter(
                "bands * rows_per_band must not exceed the sketch width",
            ));
        }
        let shifts = derive_shifts(&params);
        let mut bands = Vec::with_capacity(params.bands);
        let mut keyed: Vec<(u64, u32)> = Vec::with_capacity(sketches.len());
        for band in 0..params.bands {
            keyed.clear();
            for (id, sketch) in sketches.iter().enumerate() {
                keyed.push((band_key(&params, &shifts, band, sketch), id as u32));
            }
            keyed.sort_unstable();
            let mut buckets = Vec::new();
            let mut ids = Vec::with_capacity(keyed.len());
            for &(key, id) in keyed.iter() {
                match buckets.last_mut() {
                    Some((k, _, len)) if *k == key => *len += 1,
                    _ => buckets.push((key, ids.len() as u32, 1u32)),
                }
                ids.push(id);
            }
            bands.push(BandTable { buckets, ids });
        }
        let built = Self {
            params,
            sketch_k,
            items: sketches.len(),
            tile_rows,
            tile_cols,
            shifts,
            bands,
        };
        let stats = built.stats();
        tabsketch_obs::gauge!("index.buckets").set(stats.buckets as u64);
        tabsketch_obs::gauge!("index.entries").set(stats.entries as u64);
        tabsketch_obs::gauge!("index.bucket.max_occupancy").set(stats.max_bucket as u64);
        Ok(built)
    }

    /// The parameters the index was built with.
    #[inline]
    pub fn params(&self) -> &LshParams {
        &self.params
    }

    /// The sketch width queries must match.
    #[inline]
    pub fn sketch_k(&self) -> usize {
        self.sketch_k
    }

    /// How many items (tiles) are indexed.
    #[inline]
    pub fn len(&self) -> usize {
        self.items
    }

    /// Whether the index holds no items. Never true for a built or
    /// loaded index (construction rejects empty sets).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items == 0
    }

    /// The tile shape `(rows, cols)` the item ids refer to.
    #[inline]
    pub fn tile(&self) -> (usize, usize) {
        (self.tile_rows, self.tile_cols)
    }

    /// Whether this index can answer for a corpus of `items` sketches
    /// of width `sketch_k` over `tile_rows × tile_cols` tiles.
    pub fn covers(
        &self,
        tile_rows: usize,
        tile_cols: usize,
        sketch_k: usize,
        items: usize,
    ) -> bool {
        self.tile_rows == tile_rows
            && self.tile_cols == tile_cols
            && self.sketch_k == sketch_k
            && self.items == items
    }

    /// Candidate item ids for `query`: every item sharing at least one
    /// band key, deduplicated, ascending. The query's own id (if
    /// indexed) is included — callers filter it like any linear scan
    /// filters the query tile.
    ///
    /// # Errors
    ///
    /// Returns [`TabError::SketchMismatch`] when the query width
    /// differs from the indexed sketch width.
    pub fn candidates(&self, query: &[f64]) -> Result<Vec<usize>, TabError> {
        if query.len() != self.sketch_k {
            return Err(TabError::SketchMismatch {
                reason: "query sketch width differs from the index",
            });
        }
        let mut out: Vec<usize> = Vec::new();
        for (band, table) in self.bands.iter().enumerate() {
            let key = band_key(&self.params, &self.shifts, band, query);
            out.extend(table.lookup(key).iter().map(|&id| id as usize));
        }
        out.sort_unstable();
        out.dedup();
        tabsketch_obs::counter!("index.queries").inc();
        tabsketch_obs::counter!("index.candidates").add(out.len() as u64);
        Ok(out)
    }

    /// Occupancy statistics.
    pub fn stats(&self) -> IndexStats {
        let mut buckets = 0;
        let mut max_bucket = 0;
        for band in &self.bands {
            buckets += band.buckets.len();
            max_bucket = max_bucket.max(
                band.buckets
                    .iter()
                    .map(|&(_, _, len)| len as usize)
                    .max()
                    .unwrap_or(0),
            );
        }
        IndexStats {
            items: self.items,
            bands: self.params.bands,
            rows_per_band: self.params.rows_per_band,
            buckets,
            entries: self.params.bands * self.items,
            max_bucket,
        }
    }
}

/// Per-(band, row) shifts drawn uniformly from `[0, w)`, one stream
/// per band so the layout is stable under `rows_per_band` changes.
fn derive_shifts(params: &LshParams) -> Vec<f64> {
    let mut shifts = Vec::with_capacity(params.bands * params.rows_per_band);
    for band in 0..params.bands {
        let mut rng = stream_rng(params.seed, &[0x4C53_4820, band as u64]);
        for _ in 0..params.rows_per_band {
            shifts.push(rng.random::<f64>() * params.width);
        }
    }
    shifts
}

/// The bucket key of `band` for sketch vector `v`: the `r` quantized
/// cells of the band's coordinate block, folded through `mix64`.
fn band_key(params: &LshParams, shifts: &[f64], band: usize, v: &[f64]) -> u64 {
    let r = params.rows_per_band;
    let base = band * r;
    let mut key = mix64(params.seed ^ (band as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    for row in 0..r {
        let cell = ((v[base + row] + shifts[base + row]) / params.width).floor();
        // `as i64` saturates for out-of-range magnitudes; sketch values
        // are finite by construction (tables reject non-finite cells).
        key = mix64(key ^ (cell as i64 as u64));
    }
    key
}

/// The median absolute sketch coordinate of `sketches` — a robust data
/// scale for choosing the bucket width `w` (near neighbors differ by
/// much less than a typical coordinate, far tiles by more).
pub fn median_abs_coordinate(sketches: &[&[f64]]) -> f64 {
    let mut mags: Vec<f64> = sketches
        .iter()
        .flat_map(|s| s.iter().map(|v| v.abs()))
        .collect();
    if mags.is_empty() {
        return 0.0;
    }
    let mid = mags.len() / 2;
    mags.select_nth_unstable_by(mid, f64::total_cmp);
    mags[mid]
}

/// Bumps the `index.fallbacks` counter — every site that degrades from
/// index-assisted retrieval to a linear scan (missing index, shape or
/// width mismatch, corrupt file, too few candidates) records it here so
/// operators can see the index is not actually serving.
pub fn record_fallback() {
    tabsketch_obs::counter!("index.fallbacks").inc();
}

/// Pre-registers every `index.*` metric this crate emits, so snapshots
/// show the full schema even before any query runs.
pub fn register_metrics() {
    use tabsketch_obs as obs;
    obs::counter("index.queries");
    obs::counter("index.candidates");
    obs::counter("index.fallbacks");
    obs::gauge("index.buckets");
    obs::gauge("index.entries");
    obs::gauge("index.bucket.max_occupancy");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn refs(sketches: &[Vec<f64>]) -> Vec<&[f64]> {
        sketches.iter().map(|s| &s[..]).collect()
    }

    /// Clustered synthetic sketches: `groups` groups of `per_group`
    /// near-identical vectors, groups far apart.
    fn grouped_sketches(groups: usize, per_group: usize, k: usize) -> Vec<Vec<f64>> {
        let mut out = Vec::new();
        for g in 0..groups {
            for m in 0..per_group {
                out.push(
                    (0..k)
                        .map(|i| {
                            let center = (g * 1000 + i * 7) as f64;
                            center + (mix64((g * per_group + m + i) as u64) % 100) as f64 / 1000.0
                        })
                        .collect(),
                );
            }
        }
        out
    }

    #[test]
    fn params_validation() {
        assert!(LshParams::new(0, 4, 1.0, 0).is_err());
        assert!(LshParams::new(MAX_BANDS + 1, 4, 1.0, 0).is_err());
        assert!(LshParams::new(8, 0, 1.0, 0).is_err());
        assert!(LshParams::new(8, MAX_ROWS_PER_BAND + 1, 1.0, 0).is_err());
        assert!(LshParams::new(8, 4, 0.0, 0).is_err());
        assert!(LshParams::new(8, 4, -1.0, 0).is_err());
        assert!(LshParams::new(8, 4, f64::NAN, 0).is_err());
        assert!(LshParams::new(8, 4, f64::INFINITY, 0).is_err());
        let p = LshParams::new(8, 4, 2.5, 7).unwrap();
        assert_eq!(
            (p.bands(), p.rows_per_band(), p.width(), p.seed()),
            (8, 4, 2.5, 7)
        );
    }

    #[test]
    fn build_validation() {
        let params = LshParams::new(4, 4, 1.0, 0).unwrap();
        assert!(LshIndex::build(params, 8, 8, &[]).is_err(), "empty set");
        let a = vec![0.0; 16];
        let b = vec![0.0; 15];
        assert!(
            LshIndex::build(params, 8, 8, &[&a, &b]).is_err(),
            "ragged widths"
        );
        let narrow = vec![0.0; 15];
        assert!(
            LshIndex::build(params, 8, 8, &[&narrow]).is_err(),
            "bands*rows exceeds width"
        );
        let ok = LshIndex::build(params, 8, 8, &[&a]).unwrap();
        assert_eq!(ok.sketch_k(), 16);
        assert_eq!(ok.len(), 1);
        assert!(!ok.is_empty());
        assert_eq!(ok.tile(), (8, 8));
        assert!(ok.covers(8, 8, 16, 1));
        assert!(!ok.covers(8, 9, 16, 1));
        assert!(!ok.covers(8, 8, 32, 1));
        assert!(!ok.covers(8, 8, 16, 2));
    }

    #[test]
    fn identical_vectors_always_collide() {
        let params = LshParams::new(8, 4, 1.0, 3).unwrap();
        let v: Vec<f64> = (0..32).map(|i| (i as f64).sin() * 100.0).collect();
        let sketches = vec![v.clone(), v.clone(), v.clone()];
        let ix = LshIndex::build(params, 4, 4, &refs(&sketches)).unwrap();
        let c = ix.candidates(&v).unwrap();
        assert_eq!(c, vec![0, 1, 2], "identical vectors share every band");
    }

    #[test]
    fn grouped_data_retrieves_own_group_not_everything() {
        let sketches = grouped_sketches(4, 8, 32);
        let params = LshParams::new(8, 4, 5.0, 11).unwrap();
        let ix = LshIndex::build(params, 4, 4, &refs(&sketches)).unwrap();
        for (i, s) in sketches.iter().enumerate() {
            let c = ix.candidates(s).unwrap();
            assert!(c.contains(&i), "item {i} must be its own candidate");
            let group = i / 8;
            for member in group * 8..(group + 1) * 8 {
                assert!(c.contains(&member), "query {i} missing groupmate {member}");
            }
            assert!(
                c.len() <= 8,
                "query {i} leaked beyond its group: {} candidates",
                c.len()
            );
        }
    }

    #[test]
    fn candidates_rejects_wrong_width() {
        let sketches = grouped_sketches(2, 2, 32);
        let params = LshParams::new(4, 4, 5.0, 0).unwrap();
        let ix = LshIndex::build(params, 4, 4, &refs(&sketches)).unwrap();
        assert!(matches!(
            ix.candidates(&[0.0; 31]),
            Err(TabError::SketchMismatch { .. })
        ));
    }

    #[test]
    fn build_is_deterministic_and_seed_sensitive() {
        let sketches = grouped_sketches(3, 5, 32);
        let params = LshParams::new(6, 4, 5.0, 21).unwrap();
        let a = LshIndex::build(params, 4, 4, &refs(&sketches)).unwrap();
        let b = LshIndex::build(params, 4, 4, &refs(&sketches)).unwrap();
        assert_eq!(a, b, "same seed, same index");
        let other = LshParams::new(6, 4, 5.0, 22).unwrap();
        let c = LshIndex::build(other, 4, 4, &refs(&sketches)).unwrap();
        assert_ne!(a.shifts, c.shifts, "different seeds shift differently");
    }

    #[test]
    fn stats_account_for_every_entry() {
        let sketches = grouped_sketches(4, 8, 32);
        let params = LshParams::new(8, 4, 5.0, 11).unwrap();
        let ix = LshIndex::build(params, 4, 4, &refs(&sketches)).unwrap();
        let s = ix.stats();
        assert_eq!(s.items, 32);
        assert_eq!(s.bands, 8);
        assert_eq!(s.rows_per_band, 4);
        assert_eq!(s.entries, 8 * 32);
        assert!(s.buckets >= 8, "at least one bucket per band");
        assert!(s.max_bucket >= 1 && s.max_bucket <= 32);
        // Bucket lens per band must sum to the item count.
        for band in &ix.bands {
            let total: usize = band.buckets.iter().map(|&(_, _, l)| l as usize).sum();
            assert_eq!(total, 32);
            assert_eq!(band.ids.len(), 32);
        }
    }

    #[test]
    fn median_abs_coordinate_is_robust() {
        assert_eq!(median_abs_coordinate(&[]), 0.0);
        let a = vec![1.0, -2.0, 3.0];
        let b = vec![-4.0, 5.0, 1000.0];
        let m = median_abs_coordinate(&[&a, &b]);
        assert_eq!(m, 4.0, "upper median of magnitudes 1,2,3,4,5,1000");
    }
}
