//! The checksummed on-disk index format `TIX1`.
//!
//! Follows the `TSK2` pattern from `tabsketch_core::persist`: a magic
//! tag, a fixed-size header covered by a CRC32 (over magic + header), a
//! body, and a trailing body CRC32. Every declared count is
//! size-bounded **before** allocation, damage anywhere yields a typed
//! [`TabError::Corrupt`] naming the failed section, and saves go
//! through [`tabsketch_table::atomic::write_atomic`] so an interrupted
//! write never clobbers a good index.
//!
//! The random shifts are *not* stored: they re-derive from the header's
//! seed exactly as at build time, so a loaded index answers
//! bit-identically to the one that was saved.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! "TIX1"  magic
//! u32     version (= 1)
//! u32     bands
//! u32     rows_per_band
//! f64     width
//! u64     seed
//! u64     sketch_k
//! u64     items
//! u64     tile_rows
//! u64     tile_cols
//! u32     CRC32 of magic + header
//! per band:
//!   u64   bucket_count
//!   bucket_count x (u64 key, u64 len)   keys strictly ascending
//!   items x u32 id                      grouped by bucket
//! u32     CRC32 of the body
//! ```

use std::io::{Read, Write};
use std::path::Path;

use tabsketch_core::limits::MAX_PERSIST_BYTES;
use tabsketch_core::TabError;
use tabsketch_table::atomic::write_atomic;
use tabsketch_table::checksum::Crc32;

use crate::{derive_shifts, BandTable, LshIndex, LshParams};

/// The file magic.
pub const MAGIC: &[u8; 4] = b"TIX1";

/// The format version written by this build.
pub const FORMAT_VERSION: u32 = 1;

/// Default ceiling on the bytes a load may allocate.
pub const DEFAULT_MAX_BYTES: usize = MAX_PERSIST_BYTES as usize;

/// Streaming I/O happens in chunks of this many bytes.
const IO_CHUNK_BYTES: usize = 64 * 1024;

fn read_exact_in(r: &mut impl Read, buf: &mut [u8], section: &'static str) -> Result<(), TabError> {
    r.read_exact(buf)
        .map_err(|e| TabError::from_read_error(section, e))
}

fn read_u32_in(r: &mut impl Read, section: &'static str) -> Result<u32, TabError> {
    let mut b = [0u8; 4];
    read_exact_in(r, &mut b, section)?;
    Ok(u32::from_le_bytes(b))
}

/// Saves `index` to `path` atomically (temp file + fsync + rename).
///
/// # Errors
///
/// Propagates I/O failures; an existing file at `path` survives them.
pub fn save_index(index: &LshIndex, path: impl AsRef<Path>) -> Result<(), TabError> {
    write_atomic(path.as_ref(), |f| write_index(index, f))
}

/// Loads an index from `path`.
///
/// # Errors
///
/// Returns [`TabError::Corrupt`] for structural damage and
/// [`TabError::Io`] for I/O faults.
pub fn load_index(path: impl AsRef<Path>) -> Result<LshIndex, TabError> {
    let file = std::fs::File::open(path.as_ref())?;
    read_index(&mut std::io::BufReader::new(file))
}

/// Writes the `TIX1` encoding of `index` to `w`.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_index(index: &LshIndex, w: &mut impl Write) -> Result<(), TabError> {
    let mut header = Vec::with_capacity(64);
    header.extend_from_slice(MAGIC);
    header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    header.extend_from_slice(&(index.params.bands as u32).to_le_bytes());
    header.extend_from_slice(&(index.params.rows_per_band as u32).to_le_bytes());
    header.extend_from_slice(&index.params.width.to_le_bytes());
    header.extend_from_slice(&index.params.seed.to_le_bytes());
    header.extend_from_slice(&(index.sketch_k as u64).to_le_bytes());
    header.extend_from_slice(&(index.items as u64).to_le_bytes());
    header.extend_from_slice(&(index.tile_rows as u64).to_le_bytes());
    header.extend_from_slice(&(index.tile_cols as u64).to_le_bytes());
    let mut crc = Crc32::new();
    crc.update(&header);
    w.write_all(&header)?;
    w.write_all(&crc.finish().to_le_bytes())?;

    let mut body = BodyWriter::new(w);
    for band in &index.bands {
        body.put(&(band.buckets.len() as u64).to_le_bytes())?;
        for &(key, _, len) in &band.buckets {
            body.put(&key.to_le_bytes())?;
            body.put(&u64::from(len).to_le_bytes())?;
        }
        for &id in &band.ids {
            body.put(&id.to_le_bytes())?;
        }
    }
    body.finish()?;
    Ok(())
}

/// Reads a `TIX1` index from `r` under the default allocation ceiling.
///
/// # Errors
///
/// Returns [`TabError::Corrupt`] for structural damage and
/// [`TabError::Io`] for I/O faults.
pub fn read_index(r: &mut impl Read) -> Result<LshIndex, TabError> {
    read_index_with_limit(r, DEFAULT_MAX_BYTES)
}

/// Like [`read_index`], refusing any file whose declared contents would
/// exceed `max_bytes`.
///
/// # Errors
///
/// Returns [`TabError::Corrupt`] for structural damage or an
/// over-`max_bytes` declaration, and [`TabError::Io`] for I/O faults.
pub fn read_index_with_limit(r: &mut impl Read, max_bytes: usize) -> Result<LshIndex, TabError> {
    let mut magic = [0u8; 4];
    read_exact_in(r, &mut magic, "magic")?;
    if &magic != MAGIC {
        return Err(TabError::corrupt(
            "magic",
            format!("expected {MAGIC:?}, found {magic:?}"),
        ));
    }
    // Fixed header past the magic: 3 x u32 + f64 + 5 x u64 = 60 bytes.
    let mut header = [0u8; 60];
    read_exact_in(r, &mut header, "header")?;
    let mut crc = Crc32::new();
    crc.update(&magic);
    crc.update(&header);
    let stored = read_u32_in(r, "header")?;
    if stored != crc.finish() {
        return Err(TabError::corrupt(
            "header",
            format!("checksum mismatch: stored {stored:#010x}"),
        ));
    }
    let u32_at = |o: usize| u32::from_le_bytes(header[o..o + 4].try_into().expect("fixed slice"));
    let u64_at = |o: usize| u64::from_le_bytes(header[o..o + 8].try_into().expect("fixed slice"));
    let version = u32_at(0);
    if version != FORMAT_VERSION {
        return Err(TabError::corrupt(
            "header",
            format!("unsupported version {version}"),
        ));
    }
    let bands = u32_at(4) as usize;
    let rows_per_band = u32_at(8) as usize;
    let width = f64::from_le_bytes(header[12..20].try_into().expect("fixed slice"));
    let seed = u64_at(20);
    let params = LshParams::new(bands, rows_per_band, width, seed)
        .map_err(|e| TabError::corrupt("header", format!("implausible parameters: {e}")))?;
    let sketch_k = checked_count(u64_at(28), 8, max_bytes, "header")?;
    let items = checked_count(u64_at(36), 4, max_bytes, "header")?;
    let tile_rows = usize::try_from(u64_at(44))
        .map_err(|_| TabError::corrupt("header", "tile rows exceed the address space"))?;
    let tile_cols = usize::try_from(u64_at(52))
        .map_err(|_| TabError::corrupt("header", "tile cols exceed the address space"))?;
    if items == 0 || items > u32::MAX as usize {
        return Err(TabError::corrupt(
            "header",
            format!("implausible item count {items}"),
        ));
    }
    if bands * rows_per_band > sketch_k {
        return Err(TabError::corrupt(
            "header",
            "bands * rows_per_band exceeds the sketch width",
        ));
    }
    // Total body bytes implied by the header, before any allocation:
    // per band at worst items buckets (16 B each) plus items ids (4 B).
    let per_band = items
        .checked_mul(20)
        .and_then(|b| b.checked_add(8))
        .ok_or_else(|| TabError::corrupt("header", "band size overflows"))?;
    let total = per_band
        .checked_mul(bands)
        .ok_or_else(|| TabError::corrupt("header", "body size overflows"))?;
    if total > max_bytes {
        return Err(TabError::corrupt(
            "header",
            format!("declared body of {total} bytes exceeds the {max_bytes}-byte limit"),
        ));
    }

    let mut body = BodyReader::new(r);
    let mut band_tables = Vec::with_capacity(bands);
    for band in 0..bands {
        let bucket_count = body.u64("body")? as usize;
        if bucket_count == 0 || bucket_count > items {
            return Err(TabError::corrupt(
                "body",
                format!("band {band} declares {bucket_count} buckets for {items} items"),
            ));
        }
        let mut buckets = Vec::with_capacity(bucket_count);
        let mut start = 0u64;
        let mut prev_key: Option<u64> = None;
        for _ in 0..bucket_count {
            let key = body.u64("body")?;
            let len = body.u64("body")?;
            if prev_key.is_some_and(|p| key <= p) {
                return Err(TabError::corrupt(
                    "body",
                    format!("band {band} bucket keys are not strictly ascending"),
                ));
            }
            prev_key = Some(key);
            if len == 0 || start + len > items as u64 {
                return Err(TabError::corrupt(
                    "body",
                    format!("band {band} bucket lengths are inconsistent"),
                ));
            }
            buckets.push((key, start as u32, len as u32));
            start += len;
        }
        if start != items as u64 {
            return Err(TabError::corrupt(
                "body",
                format!("band {band} buckets cover {start} of {items} items"),
            ));
        }
        let mut ids = Vec::with_capacity(items);
        for _ in 0..items {
            let id = body.u32("body")?;
            if id as usize >= items {
                return Err(TabError::corrupt(
                    "body",
                    format!("band {band} id {id} out of range"),
                ));
            }
            ids.push(id);
        }
        band_tables.push(BandTable { buckets, ids });
    }
    let computed = body.crc.finish();
    let stored = read_u32_in(r, "body")?;
    if stored != computed {
        return Err(TabError::corrupt(
            "body",
            format!("checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"),
        ));
    }
    let shifts = derive_shifts(&params);
    Ok(LshIndex {
        params,
        sketch_k,
        items,
        tile_rows,
        tile_cols,
        shifts,
        bands: band_tables,
    })
}

/// Bounds a declared element count of `elem_bytes`-byte elements to
/// `max_bytes` and the address space, before any allocation.
fn checked_count(
    count: u64,
    elem_bytes: usize,
    max_bytes: usize,
    section: &'static str,
) -> Result<usize, TabError> {
    let count = usize::try_from(count)
        .map_err(|_| TabError::corrupt(section, "count exceeds the address space"))?;
    let bytes = count
        .checked_mul(elem_bytes)
        .ok_or_else(|| TabError::corrupt(section, "count overflows"))?;
    if bytes > max_bytes {
        return Err(TabError::corrupt(
            section,
            format!("declared {bytes} bytes exceed the {max_bytes}-byte limit"),
        ));
    }
    Ok(count)
}

/// Buffers body writes in `IO_CHUNK_BYTES` chunks while folding them
/// into the trailing CRC.
struct BodyWriter<'a, W: Write> {
    w: &'a mut W,
    buf: Vec<u8>,
    crc: Crc32,
}

impl<'a, W: Write> BodyWriter<'a, W> {
    fn new(w: &'a mut W) -> Self {
        Self {
            w,
            buf: Vec::with_capacity(IO_CHUNK_BYTES),
            crc: Crc32::new(),
        }
    }

    fn put(&mut self, bytes: &[u8]) -> Result<(), TabError> {
        self.crc.update(bytes);
        self.buf.extend_from_slice(bytes);
        if self.buf.len() >= IO_CHUNK_BYTES {
            self.w.write_all(&self.buf)?;
            self.buf.clear();
        }
        Ok(())
    }

    fn finish(self) -> Result<(), TabError> {
        if !self.buf.is_empty() {
            self.w.write_all(&self.buf)?;
        }
        self.w.write_all(&self.crc.finish().to_le_bytes())?;
        Ok(())
    }
}

/// Reads body integers while folding every consumed byte into the CRC.
struct BodyReader<'a, R: Read> {
    r: &'a mut R,
    crc: Crc32,
}

impl<'a, R: Read> BodyReader<'a, R> {
    fn new(r: &'a mut R) -> Self {
        Self {
            r,
            crc: Crc32::new(),
        }
    }

    fn u64(&mut self, section: &'static str) -> Result<u64, TabError> {
        let mut b = [0u8; 8];
        read_exact_in(self.r, &mut b, section)?;
        self.crc.update(&b);
        Ok(u64::from_le_bytes(b))
    }

    fn u32(&mut self, section: &'static str) -> Result<u32, TabError> {
        let mut b = [0u8; 4];
        read_exact_in(self.r, &mut b, section)?;
        self.crc.update(&b);
        Ok(u32::from_le_bytes(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_index() -> LshIndex {
        let sketches: Vec<Vec<f64>> = (0..24)
            .map(|i| {
                (0..32)
                    .map(|j| ((i / 6) * 500) as f64 + ((i * 31 + j * 7) % 13) as f64 / 10.0)
                    .collect()
            })
            .collect();
        let refs: Vec<&[f64]> = sketches.iter().map(|s| &s[..]).collect();
        LshIndex::build(LshParams::new(8, 4, 6.0, 17).unwrap(), 8, 8, &refs).unwrap()
    }

    fn encode(index: &LshIndex) -> Vec<u8> {
        let mut buf = Vec::new();
        write_index(index, &mut buf).unwrap();
        buf
    }

    #[test]
    fn roundtrips_bit_identically() {
        let ix = sample_index();
        let bytes = encode(&ix);
        let back = read_index(&mut &bytes[..]).unwrap();
        assert_eq!(ix, back, "reload must reproduce the index exactly");
        // A query agrees across the roundtrip.
        let q: Vec<f64> = (0..32).map(|j| 500.0 + (j % 13) as f64 / 10.0).collect();
        assert_eq!(ix.candidates(&q).unwrap(), back.candidates(&q).unwrap());
    }

    #[test]
    fn save_and_load_via_file() {
        let dir = std::env::temp_dir().join(format!(
            "tabsketch-index-persist-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("x.tix");
        let ix = sample_index();
        save_index(&ix, &path).unwrap();
        let back = load_index(&path).unwrap();
        assert_eq!(ix, back);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_magic_is_corrupt() {
        let mut bytes = encode(&sample_index());
        bytes[0] = b'X';
        let err = read_index(&mut &bytes[..]).unwrap_err();
        assert!(
            matches!(
                err,
                TabError::Corrupt {
                    section: "magic",
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn version_and_header_damage_are_corrupt() {
        let clean = encode(&sample_index());
        // Bumping the version also breaks the header CRC; either way the
        // result must be a typed header corruption.
        let mut bad = clean.clone();
        bad[4] = 9;
        let err = read_index(&mut &bad[..]).unwrap_err();
        assert!(
            matches!(
                err,
                TabError::Corrupt {
                    section: "header",
                    ..
                }
            ),
            "{err}"
        );
        // Damage inside the parameter block.
        let mut bad = clean;
        bad[12] ^= 0x40;
        let err = read_index(&mut &bad[..]).unwrap_err();
        assert!(
            matches!(
                err,
                TabError::Corrupt {
                    section: "header",
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn oversized_declaration_is_refused_before_allocation() {
        let bytes = encode(&sample_index());
        let err = read_index_with_limit(&mut &bytes[..], 64).unwrap_err();
        assert!(matches!(err, TabError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn truncation_anywhere_is_corrupt_not_a_panic() {
        let bytes = encode(&sample_index());
        for cut in 0..bytes.len() {
            let err = read_index(&mut &bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, TabError::Corrupt { .. }),
                "cut at {cut}: {err}"
            );
        }
    }
}
