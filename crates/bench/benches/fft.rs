//! Microbenchmarks for the FFT substrate: 1-D transforms, 2-D transforms,
//! and the shared-spectrum correlator that powers Theorem 3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use tabsketch_fft::{BluesteinPlan, Complex, Correlator2d, Direction, Fft2dPlan, FftPlan};

fn signal(n: usize) -> Vec<Complex> {
    (0..n)
        .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
        .collect()
}

fn bench_fft_1d(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft_1d");
    for &n in &[1024usize, 4096, 16384] {
        group.throughput(Throughput::Elements(n as u64));
        let plan = FftPlan::new(n).expect("power of two");
        let data = signal(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut buf = data.clone();
                plan.transform(black_box(&mut buf), Direction::Forward)
                    .expect("planned length");
                buf
            });
        });
    }
    group.finish();
}

fn bench_fft_2d(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft_2d");
    for &edge in &[64usize, 128, 256] {
        group.throughput(Throughput::Elements((edge * edge) as u64));
        let plan = Fft2dPlan::new(edge, edge).expect("powers of two");
        let data = signal(edge * edge);
        group.bench_with_input(BenchmarkId::from_parameter(edge), &edge, |b, _| {
            b.iter(|| {
                let mut buf = data.clone();
                plan.transform(black_box(&mut buf), Direction::Forward)
                    .expect("planned size");
                buf
            });
        });
    }
    group.finish();
}

fn bench_correlator(c: &mut Criterion) {
    let mut group = c.benchmark_group("correlator2d");
    let (rows, cols) = (128usize, 128usize);
    let data: Vec<f64> = (0..rows * cols).map(|i| (i % 251) as f64).collect();
    let corr = Correlator2d::new(&data, rows, cols).expect("valid table");
    for &edge in &[8usize, 16, 32] {
        let kernel: Vec<f64> = (0..edge * edge).map(|i| (i % 17) as f64 - 8.0).collect();
        group.bench_with_input(BenchmarkId::new("fft", edge), &edge, |b, &e| {
            b.iter(|| {
                corr.correlate(black_box(&kernel), e, e)
                    .expect("kernel fits")
            });
        });
        group.bench_with_input(BenchmarkId::new("naive", edge), &edge, |b, &e| {
            b.iter(|| {
                tabsketch_fft::cross_correlate_2d_valid_naive(
                    black_box(&data),
                    rows,
                    cols,
                    black_box(&kernel),
                    e,
                    e,
                )
            });
        });
    }
    group.finish();
}

fn bench_bluestein(c: &mut Criterion) {
    let mut group = c.benchmark_group("bluestein_vs_radix2");
    // A power of two (both paths apply) and two awkward lengths.
    for &n in &[1024usize, 1000, 997] {
        let data = signal(n);
        if n.is_power_of_two() {
            let plan = FftPlan::new(n).expect("power of two");
            group.bench_with_input(BenchmarkId::new("radix2", n), &n, |b, _| {
                b.iter(|| {
                    let mut buf = data.clone();
                    plan.transform(black_box(&mut buf), Direction::Forward)
                        .expect("planned length");
                    buf
                });
            });
        }
        let plan = BluesteinPlan::new(n).expect("any length");
        group.bench_with_input(BenchmarkId::new("bluestein", n), &n, |b, _| {
            b.iter(|| {
                let mut buf = data.clone();
                plan.transform(black_box(&mut buf), Direction::Forward)
                    .expect("planned length");
                buf
            });
        });
    }
    group.finish();
}

fn bench_pair_packing(c: &mut Criterion) {
    let mut group = c.benchmark_group("correlate_pair_vs_singles");
    let (rows, cols) = (128usize, 128usize);
    let data: Vec<f64> = (0..rows * cols).map(|i| (i % 251) as f64).collect();
    let corr = Correlator2d::new(&data, rows, cols).expect("valid table");
    let edge = 16;
    let k1: Vec<f64> = (0..edge * edge).map(|i| (i % 17) as f64 - 8.0).collect();
    let k2: Vec<f64> = (0..edge * edge).map(|i| (i % 13) as f64 - 6.0).collect();
    group.bench_function("two_singles", |b| {
        b.iter(|| {
            let a = corr
                .correlate(black_box(&k1), edge, edge)
                .expect("kernel fits");
            let b2 = corr
                .correlate(black_box(&k2), edge, edge)
                .expect("kernel fits");
            (a, b2)
        });
    });
    group.bench_function("one_pair", |b| {
        b.iter(|| {
            corr.correlate_pair(black_box(&k1), black_box(&k2), edge, edge)
                .expect("kernels fit")
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(10);
    targets = bench_fft_1d, bench_fft_2d, bench_correlator, bench_bluestein, bench_pair_packing
}
criterion_main!(benches);
