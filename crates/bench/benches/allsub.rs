//! Ablation A2 — Theorem 3 in microbenchmark form: building sketches of
//! every fixed-size subtable via FFT cross-correlation versus naive
//! per-window dot products.
//!
//! The asymptotic gap is `O(k·N·log N)` vs `O(k·N·M)` (N table cells, M
//! window cells), so the FFT margin widens with the window size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use tabsketch_core::{AllSubtableSketches, SketchParams, Sketcher};
use tabsketch_table::Table;

fn table(edge: usize) -> Table {
    Table::from_fn(edge, edge, |r, c| ((r * 31 + c * 17) % 103) as f64).expect("valid dims")
}

fn bench_allsub(c: &mut Criterion) {
    let mut group = c.benchmark_group("allsub_build");
    group.sample_size(10);
    let t = table(96);
    let k = 8;
    for &edge in &[4usize, 8, 16] {
        group.bench_with_input(BenchmarkId::new("fft", edge), &edge, |b, &e| {
            b.iter(|| {
                let sk = Sketcher::new(
                    SketchParams::builder()
                        .p(1.0)
                        .k(k)
                        .seed(7)
                        .build()
                        .expect("valid params"),
                )
                .expect("valid sketcher");
                AllSubtableSketches::build(black_box(&t), e, e, sk).expect("fits budget")
            });
        });
        group.bench_with_input(BenchmarkId::new("naive", edge), &edge, |b, &e| {
            b.iter(|| {
                let sk = Sketcher::new(
                    SketchParams::builder()
                        .p(1.0)
                        .k(k)
                        .seed(7)
                        .build()
                        .expect("valid params"),
                )
                .expect("valid sketcher");
                AllSubtableSketches::build_naive(black_box(&t), e, e, sk).expect("fits budget")
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(10);
    targets = bench_allsub
}
criterion_main!(benches);
