//! End-to-end k-means microbenchmark across the three embeddings — a
//! compressed version of Figure 3's timing comparison suitable for
//! regression tracking.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use tabsketch_cluster::{
    ExactEmbedding, KMeans, KMeansConfig, OnDemandSketchEmbedding, PrecomputedSketchEmbedding,
};
use tabsketch_core::{SketchParams, Sketcher};
use tabsketch_data::{CallVolumeConfig, CallVolumeGenerator};
use tabsketch_table::TileGrid;

fn bench_kmeans(c: &mut Criterion) {
    let mut group = c.benchmark_group("kmeans_scenarios");
    group.sample_size(10);

    let table = CallVolumeGenerator::new(CallVolumeConfig {
        stations: 128,
        slots_per_day: 144,
        days: 4,
        seed: 88,
        ..Default::default()
    })
    .expect("valid generator config")
    .generate();
    let grid = TileGrid::new(table.rows(), table.cols(), 16, 144).expect("tiles fit");
    let p = 0.5;
    let params = SketchParams::builder()
        .p(p)
        .k(128)
        .seed(4)
        .build()
        .expect("valid params");
    let km = KMeans::new(KMeansConfig {
        k: 8,
        seed: 2,
        ..Default::default()
    })
    .expect("valid config");

    let pre = PrecomputedSketchEmbedding::build(
        &table,
        &grid,
        Sketcher::new(params).expect("valid sketcher"),
    )
    .expect("non-empty grid");
    group.bench_function("precomputed", |b| {
        b.iter(|| km.run(black_box(&pre)).expect("enough objects"));
    });

    // The shared sketcher keeps the precomputed random matrices (the
    // paper counts R[i] construction as preprocessing even on demand);
    // each iteration still pays the per-tile sketching inside the run.
    let od_sketcher = Sketcher::new(params).expect("valid sketcher");
    group.bench_function("on_demand", |b| {
        b.iter(|| {
            let lazy = OnDemandSketchEmbedding::new(&table, grid, od_sketcher.clone())
                .expect("non-empty grid");
            km.run(black_box(&lazy)).expect("enough objects")
        });
    });

    let exact = ExactEmbedding::from_tiles(&table, &grid, p).expect("non-empty grid");
    group.bench_function("exact", |b| {
        b.iter(|| km.run(black_box(&exact)).expect("enough objects"));
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(10);
    targets = bench_kmeans
}
criterion_main!(benches);
