//! The paper's core cost claim in microbenchmark form: one sketched
//! distance estimate (O(k) median or O(k) L2 over sketch entries) versus
//! one exact Lp scan (O(tile size), with `powf` for fractional p).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use tabsketch_core::{SketchParams, Sketcher};
use tabsketch_table::norms;

fn vectors(n: usize) -> (Vec<f64>, Vec<f64>) {
    let a: Vec<f64> = (0..n).map(|i| ((i * 31) % 1009) as f64).collect();
    let b: Vec<f64> = (0..n).map(|i| ((i * 57 + 13) % 1009) as f64).collect();
    (a, b)
}

fn bench_exact_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_lp_scan");
    for &n in &[1024usize, 16384, 131072] {
        let (a, b) = vectors(n);
        for &p in &[0.5f64, 1.0, 2.0] {
            group.bench_with_input(BenchmarkId::new(format!("p{p}"), n), &n, |bencher, _| {
                bencher.iter(|| norms::lp_distance_slices(black_box(&a), black_box(&b), p));
            });
        }
    }
    group.finish();
}

fn bench_sketch_estimate(c: &mut Criterion) {
    let mut group = c.benchmark_group("sketch_estimate");
    let (a, b) = vectors(16384);
    for &k in &[64usize, 256, 1024] {
        for &p in &[1.0f64, 2.0] {
            let sk = Sketcher::new(
                SketchParams::builder()
                    .p(p)
                    .k(k)
                    .seed(5)
                    .build()
                    .expect("valid params"),
            )
            .expect("valid sketcher");
            let sa = sk.sketch_slice(&a);
            let sb = sk.sketch_slice(&b);
            let mut scratch = Vec::with_capacity(k);
            group.bench_with_input(BenchmarkId::new(format!("p{p}"), k), &k, |bencher, _| {
                bencher.iter(|| {
                    sk.estimate_distance_with(black_box(&sa), black_box(&sb), &mut scratch)
                        .expect("compatible sketches")
                });
            });
        }
    }
    group.finish();
}

fn bench_sketch_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("sketch_construction");
    group.sample_size(20);
    let (a, _) = vectors(16384);
    for &k in &[64usize, 256] {
        let sk = Sketcher::new(
            SketchParams::builder()
                .p(1.0)
                .k(k)
                .seed(5)
                .build()
                .expect("valid params"),
        )
        .expect("valid sketcher");
        // Warm the random-row cache so the benchmark measures the dot
        // products (the steady-state cost), not one-time RNG work.
        let _ = sk.sketch_slice(&a);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |bencher, _| {
            bencher.iter(|| sk.sketch_slice(black_box(&a)));
        });
    }
    group.finish();
}

fn bench_streaming_update(c: &mut Criterion) {
    use tabsketch_core::streaming::StreamingSketch;
    let mut group = c.benchmark_group("streaming_update");
    for &k in &[64usize, 256] {
        let sk = Sketcher::new(
            SketchParams::builder()
                .p(1.0)
                .k(k)
                .seed(5)
                .build()
                .expect("valid params"),
        )
        .expect("valid sketcher");
        let mut stream = StreamingSketch::new(sk, 4096).expect("valid dim");
        // Warm the row cache so the benchmark measures the O(k) update.
        stream.update(4095, 1.0).expect("in range"); // caches full rows
        let mut i = 0usize;
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| {
                i = (i + 131) % 4096;
                stream.update(black_box(i), 0.5).expect("in range")
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(10);
    targets = bench_exact_scan, bench_sketch_estimate, bench_sketch_construction, bench_streaming_update
}
criterion_main!(benches);
