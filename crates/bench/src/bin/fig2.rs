//! Figure 2 — time and accuracy of sketched L1/L2 distance computation as
//! object (tile) size grows.
//!
//! For each square tile size the harness:
//!
//! 1. times the **exact** Lp distance over `PAIRS` random window pairs
//!    (cost grows linearly with tile size);
//! 2. times the **preprocessing** (all-subtable sketch construction via
//!    FFT — largely independent of tile size, dependent on table size);
//! 3. times the **sketched** distance over the same pairs (constant in
//!    tile size);
//! 4. reports cumulative / average / pairwise-comparison correctness
//!    (paper Definitions 7–9).
//!
//! Expected shape (matching the paper): exact time grows ~linearly with
//! tile bytes, preprocessing is roughly flat, sketched comparisons are
//! orders of magnitude cheaper than exact for large tiles, and all three
//! correctness measures sit in the ~90–100% band.

use tabsketch_bench::{
    exact_pair_distances, print_header, print_row, secs, time, AnchorSampler, Scale,
};
use tabsketch_core::{AllSubtableSketches, SketchParams, Sketcher};
use tabsketch_data::{CallVolumeConfig, CallVolumeGenerator};
use tabsketch_eval::{
    average_correctness, cumulative_correctness, pairwise_comparison_correctness, ComparisonTriple,
    DistancePair,
};

fn main() {
    let scale = Scale::from_args();
    let pairs_n = scale.pick(200, 2_000, 20_000);
    let k = scale.pick(64, 128, 256);
    let stations = scale.pick(320, 512, 768);
    let days = scale.pick(2, 3, 4);
    let tile_sizes: &[usize] = match scale {
        Scale::Quick => &[8, 16, 32],
        _ => &[8, 16, 32, 64, 128, 256],
    };

    println!("=== Figure 2: distance assessment between {pairs_n} random window pairs ===");
    println!(
        "data: synthetic call-volume table, {stations} stations x {} slots ({days} days); sketch k = {k}\n",
        144 * days
    );

    let table = CallVolumeGenerator::new(CallVolumeConfig {
        stations,
        slots_per_day: 144,
        days,
        seed: 2002,
        ..Default::default()
    })
    .expect("valid generator config")
    .generate();

    for &p in &[1.0f64, 2.0f64] {
        println!("--- L{p} distance ---");
        let widths = [9usize, 10, 12, 12, 12, 10, 10, 10];
        print_header(
            &[
                "tile",
                "bytes",
                "exact",
                "preprocess",
                "sketched",
                "cum%",
                "avg%",
                "pair%",
            ],
            &widths,
        );
        for &edge in tile_sizes {
            if edge > table.rows() || edge > table.cols() {
                continue;
            }
            // Sample the pair set once per (p, size) so every method sees
            // identical work.
            let mut sampler = AnchorSampler::new(&table, edge, edge, 0xF162 + edge as u64);
            let pairs: Vec<((usize, usize), (usize, usize))> = (0..pairs_n)
                .map(|_| (sampler.next_anchor(), sampler.next_anchor()))
                .collect();

            // (1) Exact scan.
            let (exact, t_exact) = time(|| exact_pair_distances(&table, &pairs, edge, edge, p));

            // (2) Preprocessing: sketches of every subtable of this size.
            let sketcher = Sketcher::new(
                SketchParams::builder()
                    .p(p)
                    .k(k)
                    .seed(0x5EED_2002)
                    .build()
                    .expect("valid sketch params"),
            )
            .expect("valid sketcher");
            let (store, t_pre) = time(|| {
                AllSubtableSketches::build_with_budget(&table, edge, edge, sketcher, 8 << 30)
                    .expect("store fits the budget")
            });

            // (3) Sketched comparisons on the precomputed store.
            let mut scratch = Vec::with_capacity(k);
            let (estimates, t_sketch) = time(|| {
                pairs
                    .iter()
                    .map(|&(a, b)| {
                        store
                            .estimate_distance(a, b, &mut scratch)
                            .expect("anchors in range")
                    })
                    .collect::<Vec<f64>>()
            });

            // (4) Accuracy measures.
            let obs: Vec<DistancePair> = estimates
                .iter()
                .zip(&exact)
                .map(|(&estimated, &exact)| DistancePair { estimated, exact })
                .collect();
            let cum = cumulative_correctness(&obs).expect("non-empty observations");
            let avg = average_correctness(&obs).expect("non-empty observations");
            // Pairwise: consecutive pair triples (X closest to Y or Z?).
            let triples: Vec<ComparisonTriple> = obs
                .chunks_exact(2)
                .map(|w| ComparisonTriple {
                    est_xy: w[0].estimated,
                    est_xz: w[1].estimated,
                    exact_xy: w[0].exact,
                    exact_xz: w[1].exact,
                })
                .collect();
            let pairwise = pairwise_comparison_correctness(&triples).expect("non-empty triples");

            print_row(
                &[
                    &format!("{edge}x{edge}"),
                    &format!("{}", edge * edge * 8),
                    &secs(t_exact),
                    &secs(t_pre),
                    &secs(t_sketch),
                    &format!("{:.1}", 100.0 * cum),
                    &format!("{:.1}", 100.0 * avg),
                    &format!("{:.1}", 100.0 * pairwise),
                ],
                &widths,
            );
        }
        println!();
    }
    println!("(cum/avg/pair = Definitions 7/8/9; exact vs sketched operate on identical pairs)");
}
