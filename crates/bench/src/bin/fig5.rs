//! Figure 5 — case study: one day of call volume clustered under
//! p = 2.0 and p = 0.25, rendered as ASCII cluster maps.
//!
//! Tiles are groups of neighboring stations by one hour of the day
//! (the paper groups 75 stations per band and one hour per column).
//! Each tile-grid cell prints as a glyph per cluster, with the largest
//! (background / low-volume) cluster blanked for visibility.
//!
//! Expected shape (paper): under p = 2 many tiles join non-trivial
//! clusters — population centers show as long vertical runs through the
//! business hours, flanked by lighter suburban clusters; under p = 0.25
//! only a few salient regions stand out from the background. Business
//! hours (9am–9pm) and the east/west timezone shift are visible in both.

use tabsketch_bench::{print_row, render_cluster_map, run_kmeans_timed, Scale};
use tabsketch_cluster::PrecomputedSketchEmbedding;
use tabsketch_core::{SketchParams, Sketcher};
use tabsketch_data::{CallVolumeConfig, CallVolumeGenerator};
use tabsketch_eval::ConfusionMatrix;
use tabsketch_table::TileGrid;

fn main() {
    let scale = Scale::from_args();
    let station_group = 25;
    let stations = scale.pick(20, 40, 60) * station_group;
    let slots_per_hour = 6; // 10-minute intervals
    let k_clusters = 8;
    let sketch_k = scale.pick(128, 256, 256);

    let table = CallVolumeGenerator::new(CallVolumeConfig {
        stations,
        slots_per_day: 24 * slots_per_hour,
        days: 1,
        centers: scale.pick(4, 7, 10),
        seed: 5150,
        ..Default::default()
    })
    .expect("valid generator config")
    .generate();
    let grid = TileGrid::new(table.rows(), table.cols(), station_group, slots_per_hour)
        .expect("tile divides the table");

    println!("=== Figure 5: one day's data clustered under p = 2.0 and p = 0.25 ===");
    println!(
        "tiles: {} station-groups (rows) x 24 hours (columns); k = {k_clusters}; sketch k = {sketch_k}\n",
        grid.grid_rows()
    );

    let mut maps = Vec::new();
    for &p in &[2.0f64, 0.25f64] {
        let params = SketchParams::builder()
            .p(p)
            .k(sketch_k)
            .seed(1234)
            .build()
            .expect("valid sketch params");
        let embed = PrecomputedSketchEmbedding::build(
            &table,
            &grid,
            Sketcher::new(params).expect("valid sketcher"),
        )
        .expect("grid is non-empty");
        let (res, _) = run_kmeans_timed(&embed, k_clusters, 31);
        maps.push((p, res.assignments));
    }

    let hours_ruler = {
        let mut s = String::new();
        for h in 0..24 {
            s.push(if h % 4 == 0 {
                char::from_digit((h / 4) as u32, 10).unwrap()
            } else {
                '.'
            });
        }
        s
    };

    for (p, assignments) in &maps {
        println!("p = {p}");
        println!("      00:00 -> 24:00 (columns are hours; digit n marks hour 4n)");
        println!("      {hours_ruler}");
        let map = render_cluster_map(assignments, grid.grid_rows(), grid.grid_cols());
        for (i, line) in map.lines().enumerate() {
            print_row(&[&format!("g{i:02}"), &format!("|{line}|")], &[5, 28]);
        }
        let mut counts = vec![0usize; k_clusters];
        for &a in assignments {
            counts[a] += 1;
        }
        let background = counts.iter().max().copied().unwrap_or(0);
        let nontrivial = assignments.len() - background;
        println!(
            "tiles in non-background clusters: {nontrivial} / {} ({:.0}%)\n",
            assignments.len(),
            100.0 * nontrivial as f64 / assignments.len() as f64
        );
    }

    // How different are the two clusterings? (The paper's point: p is a
    // knob — p = 2 shows detail, p = 0.25 highlights the salient few.)
    let cm = ConfusionMatrix::from_labels(&maps[0].1, &maps[1].1, k_clusters)
        .expect("parallel labelings");
    println!(
        "agreement between the p = 2.0 and p = 0.25 clusterings: {:.1}% (optimally matched)",
        100.0 * cm.agreement()
    );
}
