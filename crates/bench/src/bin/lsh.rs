//! LSH candidate-index benchmark: recall@10 and queries/sec of the
//! banded p-stable index against the exhaustive sketched scan it
//! replaces.
//!
//! The corpus is a clustered table (64 prototype rows plus small
//! per-tile jitter) sketched exactly as `cluster`/`serve` would sketch
//! it; the index runs at the pinned configuration — 16 bands x 4 rows,
//! bucket width at half the median absolute sketch coordinate — that
//! `tabsketch-cli index build` defaults to band/row-wise. Scales:
//! `--quick` 10^4 tiles, default 10^5, `--full` 2x10^5.
//!
//! Writes `BENCH_lsh.json`; ci.sh gates `recall_at_10 >= 0.9` and
//! `candidate_fraction <= 0.5`, and this binary additionally asserts
//! the >= 2x indexed speedup at default scale and above.

use tabsketch_bench::{host_json, print_header, print_row, secs, time, Scale};
use tabsketch_cluster::IndexedEmbedding;
use tabsketch_cluster::{knn_recall, nearest_neighbors_indexed, nearest_neighbors_sketched};
use tabsketch_core::{SketchParams, Sketcher};
use tabsketch_index::{LshIndex, LshParams};
use tabsketch_table::{Table, TileGrid};

/// Tile width (= sketch input dimension): one table row per tile.
const DIM: usize = 64;
/// Sketch width; the band budget (16 x 4) consumes all of it.
const SKETCH_K: usize = 64;
/// Pinned index configuration (matches the `index build` defaults).
const BANDS: usize = 16;
const ROWS_PER_BAND: usize = 4;
/// Bucket width as a fraction of the median absolute sketch coordinate.
const WIDTH_SCALE: f64 = 0.5;
/// Prototype rows the corpus clusters around.
const CLUSTERS: usize = 64;
/// Neighbors per query: the recall@10 of the acceptance gate.
const KNN: usize = 10;

/// splitmix64: decorrelates the prototype/jitter streams.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Uniform in `[0, 1)` from a hash stream.
fn unit(x: u64) -> f64 {
    (mix(x) >> 11) as f64 / (1u64 << 53) as f64
}

/// The corpus: row `r` is prototype `r % CLUSTERS` plus jitter that is
/// tiny against the prototype spread, so each tile's true neighbors are
/// its cluster-mates.
fn corpus(n: usize) -> Table {
    Table::from_fn(n, DIM, |r, c| {
        let proto = 100.0 * unit(((r % CLUSTERS) * DIM + c) as u64);
        let jitter = unit((r * DIM + c) as u64 ^ 0x5851_F42D_4C95_7F2D) - 0.5;
        proto + jitter
    })
    .expect("corpus dimensions are positive")
}

fn main() {
    let scale = Scale::from_args();
    let n = scale.pick(10_000, 100_000, 200_000);
    let queries: Vec<usize> = {
        let q = scale.pick(50, 200, 200);
        (0..q).map(|i| i * (n / q)).collect()
    };

    println!(
        "lsh index bench: {n} tiles of {DIM} cells, sketch k {SKETCH_K}, \
         {BANDS} bands x {ROWS_PER_BAND} rows, {} queries @ k={KNN}",
        queries.len()
    );

    let table = corpus(n);
    let grid = TileGrid::new(n, DIM, 1, DIM).expect("grid divides the corpus");
    let sketcher = Sketcher::new(
        SketchParams::builder()
            .p(1.0)
            .k(SKETCH_K)
            .seed(0)
            .build()
            .expect("valid sketch parameters"),
    )
    .expect("sketcher construction");
    let (embedding, t_sketch) =
        time(|| IndexedEmbedding::build(&table, &grid, sketcher).expect("sketching the corpus"));
    println!("sketched {n} tiles in {}", secs(t_sketch));

    let refs: Vec<&[f64]> = embedding.sketches().iter().map(|s| s.values()).collect();
    let width = tabsketch_index::median_abs_coordinate(&refs) * WIDTH_SCALE;
    assert!(width > 0.0, "degenerate sketch coordinates");
    let params = LshParams::new(BANDS, ROWS_PER_BAND, width, 17).expect("pinned parameters");
    let (index, t_index) =
        time(|| LshIndex::build(params, 1, DIM, &refs).expect("index build over the corpus"));
    let stats = index.stats();
    println!(
        "indexed in {}: {} buckets, max bucket {}, width {width:.1}",
        secs(t_index),
        stats.buckets,
        stats.max_bucket
    );

    // Candidate selectivity, measured outside the timed loops.
    let mut candidate_total = 0usize;
    for &q in &queries {
        candidate_total += index
            .candidates(embedding.sketches()[q].values())
            .expect("query sketch matches the index")
            .len();
    }
    let candidate_fraction = candidate_total as f64 / (queries.len() * n) as f64;

    // Ground truth and baseline timing: the exhaustive sketched scan.
    let sketches = embedding.sketches();
    let estimator = embedding.sketcher();
    let (truth, t_linear) = time(|| {
        queries
            .iter()
            .map(|&q| {
                nearest_neighbors_sketched(estimator, sketches, q, KNN)
                    .expect("linear scan answers")
            })
            .collect::<Vec<_>>()
    });
    let (approx, t_indexed) = time(|| {
        queries
            .iter()
            .map(|&q| {
                nearest_neighbors_indexed(estimator, sketches, &index, q, KNN)
                    .expect("indexed scan answers")
            })
            .collect::<Vec<_>>()
    });

    let recall = truth
        .iter()
        .zip(&approx)
        .map(|(t, a)| knn_recall(t, a).expect("non-empty truth"))
        .sum::<f64>()
        / queries.len() as f64;
    let linear_qps = queries.len() as f64 / t_linear.as_secs_f64();
    let indexed_qps = queries.len() as f64 / t_indexed.as_secs_f64();
    let speedup = indexed_qps / linear_qps;

    let widths = [22, 12];
    print_header(&["metric", "value"], &widths);
    print_row(&["recall@10", &format!("{recall:.4}")], &widths);
    print_row(
        &["candidate fraction", &format!("{candidate_fraction:.4}")],
        &widths,
    );
    print_row(&["linear qps", &format!("{linear_qps:.0}")], &widths);
    print_row(&["indexed qps", &format!("{indexed_qps:.0}")], &widths);
    print_row(&["speedup", &format!("{speedup:.2}x")], &widths);

    assert!(
        recall >= 0.9,
        "recall@10 regressed below 0.9: {recall:.4} at the pinned config"
    );
    assert!(
        candidate_fraction <= 0.5,
        "index lost selectivity: candidate fraction {candidate_fraction:.4} > 0.5"
    );
    // The wall-clock bound only holds at corpus sizes where the scan is
    // the dominant cost; --quick is a smoke test of the schema.
    if scale != Scale::Quick {
        assert!(
            speedup >= 2.0,
            "indexed k-NN must be >= 2x the linear scan at {n} tiles, got {speedup:.2}x"
        );
    }

    let host = host_json();
    let json = format!(
        "{{\n  \"bench\": \"lsh\",\n  \"host\": {host},\n  \
         \"tiles\": {n},\n  \"dim\": {DIM},\n  \"sketch_k\": {SKETCH_K},\n  \
         \"p\": 1.0,\n  \"bands\": {BANDS},\n  \"rows_per_band\": {ROWS_PER_BAND},\n  \
         \"width_scale\": {WIDTH_SCALE},\n  \"width\": {width:.3},\n  \
         \"buckets\": {},\n  \"max_bucket\": {},\n  \
         \"queries\": {},\n  \"knn\": {KNN},\n  \
         \"sketch_build_secs\": {:.6},\n  \"index_build_secs\": {:.6},\n  \
         \"recall_at_10\": {recall:.6},\n  \"candidate_fraction\": {candidate_fraction:.6},\n  \
         \"linear_qps\": {linear_qps:.1},\n  \"indexed_qps\": {indexed_qps:.1},\n  \
         \"speedup\": {speedup:.3}\n}}\n",
        stats.buckets,
        stats.max_bucket,
        queries.len(),
        t_sketch.as_secs_f64(),
        t_index.as_secs_f64(),
    );
    std::fs::write("BENCH_lsh.json", &json).expect("write BENCH_lsh.json");
    println!("wrote BENCH_lsh.json");
}
