//! Figure 4a — k-means timing as the number of clusters k grows.
//!
//! Same three scenarios as Figure 3, at fixed p = 1.0, for
//! k ∈ {4, 8, 12, 16, 20, 24, 48}. Expected shape (paper): exact cost
//! rises roughly linearly with k (every object is compared against every
//! centroid each iteration, and each comparison is a full tile scan);
//! the sketch modes rise far more slowly; the gap between precomputed and
//! on-demand stays roughly constant (it is the one-time sketch build);
//! and at the smallest k the sketch build may not be "bought back" —
//! the paper's one case where exact wins.

use tabsketch_bench::{print_header, print_row, run_kmeans_timed, secs, time, Scale};
use tabsketch_cluster::{ExactEmbedding, OnDemandSketchEmbedding, PrecomputedSketchEmbedding};
use tabsketch_core::{SketchParams, Sketcher};
use tabsketch_data::{CallVolumeConfig, CallVolumeGenerator};
use tabsketch_table::TileGrid;

fn main() {
    let scale = Scale::from_args();
    let p = 1.0;
    let sketch_k = 256; // "relatively large sketches with 256 entries"
    let stations = scale.pick(128, 256, 320);
    let days = scale.pick(4, 12, 18);
    let station_group = 16;
    let slots = 144;
    let cluster_counts: &[usize] = match scale {
        Scale::Quick => &[4, 8, 16],
        _ => &[4, 8, 12, 16, 20, 24, 48],
    };

    let table = CallVolumeGenerator::new(CallVolumeConfig {
        stations,
        slots_per_day: slots,
        days,
        seed: 1918,
        ..Default::default()
    })
    .expect("valid generator config")
    .generate();
    let grid = TileGrid::new(table.rows(), table.cols(), station_group, slots)
        .expect("tile divides the table");

    println!(
        "=== Figure 4a: k-means timing vs k over {} tiles (p = {p}, sketch k = {sketch_k}) ===\n",
        grid.len()
    );

    let params = SketchParams::builder()
        .p(p)
        .k(sketch_k)
        .seed(77)
        .build()
        .expect("valid sketch params");
    // The sketch build is shared across all k (the paper's precomputed
    // scenario); build once, report it once.
    let (pre_embed, t_build) = time(|| {
        PrecomputedSketchEmbedding::build(
            &table,
            &grid,
            Sketcher::new(params).expect("valid sketcher"),
        )
        .expect("grid is non-empty")
    });
    println!("one-time sketch construction: {}\n", secs(t_build));

    let widths = [6usize, 14, 14, 12, 12];
    print_header(
        &["k", "precomputed", "on-demand", "exact", "evals"],
        &widths,
    );

    for &k in cluster_counts {
        let (res_pre, t_pre) = run_kmeans_timed(&pre_embed, k, 7);

        let lazy = OnDemandSketchEmbedding::new(
            &table,
            grid,
            Sketcher::new(params).expect("valid sketcher"),
        )
        .expect("grid is non-empty");
        let (_res_lazy, t_lazy) = run_kmeans_timed(&lazy, k, 7);

        let exact_embed = ExactEmbedding::from_tiles(&table, &grid, p).expect("grid is non-empty");
        let (res_exact, t_exact) = run_kmeans_timed(&exact_embed, k, 7);

        print_row(
            &[
                &format!("{k}"),
                &secs(t_pre),
                &secs(t_lazy),
                &secs(t_exact),
                &format!("{}", res_exact.distance_evals.max(res_pre.distance_evals)),
            ],
            &widths,
        );
    }
    println!();
    println!("(evals = distance evaluations of the costlier run; exact cost per eval is");
    println!(" O(tile size), sketched cost is O(sketch k) — the paper's comparison-cost model)");
}
