//! Ablation A1 — sketch width k versus estimation accuracy.
//!
//! The paper notes "the accuracy of sketching can be improved by using
//! larger sized sketches" and trades sketch size against time in Figure
//! 4a. This ablation quantifies the trade-off: for k from 16 to 1024,
//! average correctness (Definition 8) and pairwise comparison correctness
//! (Definition 9) over a fixed pair set, at p in {0.5, 1, 2}.
//!
//! Expected shape: error shrinks like ~1/sqrt(k); a few hundred entries
//! suffice for the ~95% band the paper reports.

use tabsketch_bench::{exact_pair_distances, print_header, print_row, AnchorSampler, Scale};
use tabsketch_core::{SketchParams, Sketcher};
use tabsketch_data::{CallVolumeConfig, CallVolumeGenerator};
use tabsketch_eval::{
    average_correctness, pairwise_comparison_correctness, ComparisonTriple, DistancePair,
};
use tabsketch_table::Rect;

fn main() {
    let scale = Scale::from_args();
    let pairs_n = scale.pick(100, 500, 2000);
    let edge = 32;
    let widths_table: &[usize] = match scale {
        Scale::Quick => &[16, 64, 256],
        _ => &[16, 32, 64, 128, 256, 512, 1024],
    };

    let table = CallVolumeGenerator::new(CallVolumeConfig {
        stations: 256,
        slots_per_day: 144,
        days: 2,
        seed: 31,
        ..Default::default()
    })
    .expect("valid generator config")
    .generate();

    println!(
        "=== Ablation A1: sketch width vs accuracy ({pairs_n} pairs of {edge}x{edge} tiles) ===\n"
    );

    let mut sampler = AnchorSampler::new(&table, edge, edge, 0xAB1A);
    let pairs: Vec<((usize, usize), (usize, usize))> = (0..pairs_n)
        .map(|_| (sampler.next_anchor(), sampler.next_anchor()))
        .collect();

    for &p in &[0.5f64, 1.0, 2.0] {
        println!("--- p = {p} ---");
        let exact = exact_pair_distances(&table, &pairs, edge, edge, p);
        let widths = [8usize, 10, 10, 14, 14];
        print_header(
            &["k", "avg%", "pair%", "mean rel err", "pred p90 err"],
            &widths,
        );
        for &k in widths_table {
            let sk = Sketcher::new(
                SketchParams::builder()
                    .p(p)
                    .k(k)
                    .seed(555)
                    .build()
                    .expect("valid params"),
            )
            .expect("valid sketcher");
            let estimates: Vec<f64> = pairs
                .iter()
                .map(|&(a, b)| {
                    let va = table
                        .view(Rect::new(a.0, a.1, edge, edge))
                        .expect("in range");
                    let vb = table
                        .view(Rect::new(b.0, b.1, edge, edge))
                        .expect("in range");
                    sk.estimate_distance(&sk.sketch_view(&va), &sk.sketch_view(&vb))
                        .expect("same family")
                })
                .collect();
            let obs: Vec<DistancePair> = estimates
                .iter()
                .zip(&exact)
                .map(|(&estimated, &exact)| DistancePair { estimated, exact })
                .collect();
            let avg = average_correctness(&obs).expect("non-empty");
            let triples: Vec<ComparisonTriple> = obs
                .chunks_exact(2)
                .map(|w| ComparisonTriple {
                    est_xy: w[0].estimated,
                    est_xz: w[1].estimated,
                    exact_xy: w[0].exact,
                    exact_xz: w[1].exact,
                })
                .collect();
            let pairwise = pairwise_comparison_correctness(&triples).expect("non-empty");
            let mean_rel: f64 = obs
                .iter()
                .map(|o| ((o.estimated - o.exact) / o.exact).abs())
                .sum::<f64>()
                / obs.len() as f64;
            // The data-independent prediction from core::theory: the 90th
            // percentile of the estimator's relative error at this (p, k).
            let predicted = tabsketch_core::theory::error_quantile(p, k, 0.9, 400)
                .expect("valid theory parameters");
            print_row(
                &[
                    &format!("{k}"),
                    &format!("{:.1}", 100.0 * avg),
                    &format!("{:.1}", 100.0 * pairwise),
                    &format!("{:.4}", mean_rel),
                    &format!("{:.4}", predicted),
                ],
                &widths,
            );
        }
        println!();
    }
    println!("(mean rel err should shrink roughly like 1/sqrt(k); pred p90 err is the");
    println!(" data-independent Monte-Carlo prediction from core::theory — note that the");
    println!(" *measured* per-pair errors share one set of random matrices, so on data with");
    println!(" highly correlated difference vectors they behave like a single draw and can");
    println!(" be non-monotone in k, while pairwise comparisons remain immune)");
}
