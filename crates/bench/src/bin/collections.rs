//! Collection analytics — manysketch / pairwise / manysearch over a
//! 64-member synthetic corpus.
//!
//! The bench builds a manifest of 64 tables arranged in 32 identical
//! pairs (so `pairwise` at threshold 0.9 has a known answer: exactly
//! the 32 duplicate pairs), then measures the full collection stack:
//!
//! * **manysketch**: a work-stolen parallel build across members vs the
//!   serial loop, both writing per-member stores and signatures, with
//!   every member table loaded under the shared residency budget (the
//!   `table.storage.resident_peak_bytes` gauge must stay at or under
//!   it — members spill rather than blow the cap);
//! * **pairwise**: streaming block-chunked similarity join vs the dense
//!   unbounded run — the emitted rows must be **bitwise identical**;
//! * **manysearch**: the query table's tiles against every member's
//!   store, through per-member LSH indexes vs the exact linear scan —
//!   identical hits, with `index.fallbacks` unmoved when every index
//!   loads cleanly.
//!
//! A machine-readable summary lands in `BENCH_collections.json`; CI
//! asserts the schema, the under-budget peak, both identity bits, zero
//! fallbacks, and (on >= 4 cores) a >= 1.3x parallel manysketch
//! speedup. Run `--quick` for a CI-speed pass.

use tabsketch_bench::{time, Scale};
use tabsketch_cluster::{manysearch, pairwise_sketches, IndexedEmbedding, PairwiseRow};
use tabsketch_core::{persist, CollectionSketcher, SketchParams, Sketcher};
use tabsketch_index::{median_abs_coordinate, persist as index_persist, LshIndex, LshParams};
use tabsketch_table::{io as table_io, Collection, Manifest, MemoryBudget, Table, TileGrid};

const TABLES: usize = 64;
const TILE: usize = 8;
const THRESHOLD: f64 = 0.9;

/// Member `m`'s table: members `2g` and `2g + 1` are identical (group
/// `g`'s pattern), distinct groups are far apart in L1.
///
/// Each group flips the sign of a hash-chosen half of the cells, so two
/// distinct groups disagree on about half of them: the L1 distance is
/// close to the sum of the norms and sketch-space similarity sits near
/// 0.5 — far below the 0.9 threshold, while duplicates sit at 1.
fn member_table(m: usize, rows: usize, cols: usize) -> Table {
    let g = m / 2;
    Table::from_fn(rows, cols, move |r, c| {
        // splitmix64-style finalizer: the sign bit must avalanche, or
        // nearby groups share most of their cells and cross-group
        // similarity creeps toward the threshold.
        let mut z = ((r as u64) << 40) ^ ((c as u64) << 20) ^ g as u64;
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let magnitude = 1.0 + ((r * 31 + c * 17) % 23) as f64;
        if z & 1 == 0 {
            magnitude
        } else {
            -magnitude
        }
    })
    .expect("valid member table")
}

/// Runs pairwise over the corpus signatures, collecting the emitted rows.
fn run_pairwise(
    manifest: &Manifest,
    sketcher: &Sketcher,
    budget: MemoryBudget,
) -> (Vec<PairwiseRow>, tabsketch_cluster::PairwiseStats) {
    let entries = manifest.entries();
    let mut rows = Vec::new();
    let stats = pairwise_sketches(
        manifest.len(),
        |i| persist::load_sketch(entries[i].signature_path()),
        sketcher,
        THRESHOLD,
        budget,
        |row| {
            rows.push(row);
            Ok(())
        },
    )
    .expect("pairwise runs");
    (rows, stats)
}

fn main() {
    let scale = Scale::from_args();
    let edge = scale.pick(32usize, 64, 96);
    let k = scale.pick(32usize, 64, 64);

    let dir = std::env::temp_dir().join(format!(
        "tabsketch-bench-collections-{}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("create bench dir");

    // One member table is 8 * edge^2 bytes; the shared budget holds half
    // a table, so every member load must spill (the LRU window splits
    // the budget further, see DESIGN.md §16).
    let table_bytes = (edge * edge * 8) as u64;
    let budget_bytes = table_bytes / 2;
    let budget = MemoryBudget::bytes(budget_bytes);

    println!(
        "=== Collection analytics ({TABLES} members of {edge}x{edge} = {:.1} KiB each, \
         shared budget {:.1} KiB) ===\n",
        table_bytes as f64 / 1024.0,
        budget_bytes as f64 / 1024.0
    );

    let mut manifest_text = String::new();
    for m in 0..TABLES {
        let path = dir.join(format!("t{m:03}.tsb"));
        table_io::save_binary(&member_table(m, edge, edge), &path).expect("save member");
        manifest_text.push_str(&format!("t{m:03}=t{m:03}.tsb\n"));
    }
    let manifest_path = dir.join("corpus.manifest");
    std::fs::write(&manifest_path, &manifest_text).expect("write manifest");
    let manifest = Manifest::load(&manifest_path).expect("manifest parses");

    let sketcher = Sketcher::new(
        SketchParams::builder()
            .p(1.0)
            .k(k)
            .seed(0xC011)
            .build()
            .expect("valid params"),
    )
    .expect("valid sketcher");
    let collection_sketcher =
        CollectionSketcher::new(sketcher.clone(), TILE, TILE).expect("valid tile");

    // The peak gauge is raise-only; zero it so it measures exactly the
    // budgeted collection phases below.
    tabsketch_obs::gauge!("table.storage.resident_peak_bytes").set(0);

    // Serial baseline, then the work-stolen parallel build (same
    // stores rewritten; byte-identical by construction).
    let collection = Collection::open(manifest.clone(), budget);
    let (serial_report, t_serial) = time(|| {
        collection_sketcher
            .sketch_collection(&collection, 1)
            .expect("serial manysketch")
    });
    let serial_ms = t_serial.as_secs_f64() * 1e3;
    assert_eq!(serial_report.succeeded(), TABLES, "no member may degrade");
    let (parallel_report, t_parallel) = time(|| {
        collection_sketcher
            .sketch_collection(&collection, 4)
            .expect("parallel manysketch")
    });
    let parallel_ms = t_parallel.as_secs_f64() * 1e3;
    assert_eq!(parallel_report.succeeded(), TABLES);
    let speedup = serial_ms / parallel_ms.max(1e-9);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let parallel_checked = cores >= 4;
    println!("manysketch serial:   {serial_ms:8.1} ms");
    println!("manysketch parallel: {parallel_ms:8.1} ms ({speedup:.2}x, {cores} cores)");

    // Streaming pairwise under the shared budget vs the dense run.
    let ((chunked_rows, stats), t_pairwise) = time(|| run_pairwise(&manifest, &sketcher, budget));
    let pairwise_ms = t_pairwise.as_secs_f64() * 1e3;
    let (dense_rows, dense_stats) = run_pairwise(&manifest, &sketcher, MemoryBudget::unbounded());
    let chunked_identical = chunked_rows == dense_rows
        && chunked_rows.iter().zip(&dense_rows).all(|(a, b)| {
            a.distance.to_bits() == b.distance.to_bits()
                && a.similarity.to_bits() == b.similarity.to_bits()
        });
    assert!(
        stats.block < TABLES && dense_stats.block == TABLES,
        "the budget must actually chunk the join (block {} vs {})",
        stats.block,
        dense_stats.block
    );
    assert_eq!(
        stats.emitted as usize,
        TABLES / 2,
        "exactly the duplicate pairs clear threshold {THRESHOLD}"
    );
    let pairwise_rows_per_sec = stats.emitted as f64 / t_pairwise.as_secs_f64().max(1e-9);
    println!(
        "pairwise:  {} rows of {} pairs in {pairwise_ms:.1} ms \
         (block {} of {TABLES}, identical to dense: {chunked_identical})",
        stats.emitted,
        stats.emitted + stats.pruned,
        stats.block
    );

    // The budgeted phases are done: the global residency peak must have
    // stayed within the shared budget even though members spilled.
    let peak = tabsketch_obs::gauge!("table.storage.resident_peak_bytes").get();
    let under_budget = peak > 0 && peak <= budget_bytes;
    assert!(
        under_budget,
        "collection peak {peak} B must be positive and at most the {budget_bytes} B shared budget"
    );
    println!(
        "residency: peak {:.1} KiB of {:.1} KiB shared budget",
        peak as f64 / 1024.0,
        budget_bytes as f64 / 1024.0
    );

    // Per-member LSH indexes over the freshly written stores, at the
    // same tile grain manysearch reads.
    for entry in manifest.entries() {
        let store = persist::load_store(entry.store_path_or_default()).expect("store loads");
        let tiles_r = store.anchor_rows().div_ceil(TILE);
        let tiles_c = store.anchor_cols().div_ceil(TILE);
        let mut sketches = Vec::with_capacity(tiles_r * tiles_c);
        for r in 0..tiles_r {
            for c in 0..tiles_c {
                sketches.push(store.sketch_at(r * TILE, c * TILE).expect("tile sketch"));
            }
        }
        let refs: Vec<&[f64]> = sketches.iter().map(|s| s.values()).collect();
        // The identity gate needs complete retrieval: coarse buckets
        // (~1000x the coordinate scale) keep every tile a candidate, so
        // the full candidate/rerank/persistence machinery runs while the
        // answer provably matches the exhaustive scan. BENCH_lsh.json
        // covers the genuinely-pruned speedup regime.
        let width = 1e3 * median_abs_coordinate(&refs).max(1.0);
        let params = LshParams::new(16, k / 16, width, 17).expect("valid lsh params");
        let index = LshIndex::build(params, TILE, TILE, &refs).expect("index builds");
        index_persist::save_index(&index, entry.index_path_or_default()).expect("index saves");
    }

    // Queries: member 0's own tiles — every query has an exact match in
    // members 0 and 1, so hit identity is easy to audit.
    let query_table = member_table(0, edge, edge);
    let grid = TileGrid::new(edge, edge, TILE, TILE).expect("valid grid");
    let queries = IndexedEmbedding::build(&query_table, &grid, sketcher.clone())
        .expect("query sketches build");
    let corpus = Collection::open(manifest.clone(), budget);
    let knn = 1;
    let (linear, t_linear) = time(|| {
        manysearch(
            &corpus,
            &sketcher,
            queries.sketches(),
            TILE,
            TILE,
            knn,
            false,
        )
        .expect("linear manysearch")
    });
    let fallbacks_before = tabsketch_obs::counter!("index.fallbacks").get();
    let (indexed, t_indexed) = time(|| {
        manysearch(
            &corpus,
            &sketcher,
            queries.sketches(),
            TILE,
            TILE,
            knn,
            true,
        )
        .expect("indexed manysearch")
    });
    let index_fallbacks = tabsketch_obs::counter!("index.fallbacks").get() - fallbacks_before;
    assert!(linear.degraded.is_empty() && indexed.degraded.is_empty());
    let manysearch_identical = linear.hits == indexed.hits;
    let query_count = grid.len();
    let linear_qps = query_count as f64 / t_linear.as_secs_f64().max(1e-9);
    let indexed_qps = query_count as f64 / t_indexed.as_secs_f64().max(1e-9);
    assert!(
        manysearch_identical,
        "indexed manysearch diverged from the exact sketched scan"
    );
    assert_eq!(
        index_fallbacks, 0,
        "every member index loaded cleanly, so no query may fall back"
    );
    println!(
        "manysearch: {query_count} queries x {TABLES} members, linear {linear_qps:.0} q/s, \
         indexed {indexed_qps:.0} q/s, identical hits, {index_fallbacks} fallbacks"
    );

    let host = tabsketch_bench::host_json();
    let json = format!(
        "{{\n  \"host\": {host},\n  \"tables\": {TABLES},\n  \"rows\": {edge},\n  \
         \"cols\": {edge},\n  \"tile\": {TILE},\n  \"k\": {k},\n  \
         \"threshold\": {THRESHOLD},\n  \"budget_bytes\": {budget_bytes},\n  \
         \"manysketch_serial_ms\": {serial_ms:.2},\n  \
         \"manysketch_parallel_ms\": {parallel_ms:.2},\n  \
         \"manysketch_speedup\": {speedup:.3},\n  \
         \"parallel_checked\": {parallel_checked},\n  \"cores\": {cores},\n  \
         \"pairwise_rows\": {},\n  \"pairwise_block\": {},\n  \
         \"pairwise_rows_per_sec\": {pairwise_rows_per_sec:.1},\n  \
         \"pairwise_chunked_identical\": {chunked_identical},\n  \
         \"peak_resident_bytes\": {peak},\n  \"under_budget\": {under_budget},\n  \
         \"manysearch_queries\": {query_count},\n  \
         \"manysearch_linear_qps\": {linear_qps:.1},\n  \
         \"manysearch_indexed_qps\": {indexed_qps:.1},\n  \
         \"manysearch_identical\": {manysearch_identical},\n  \
         \"index_fallbacks\": {index_fallbacks}\n}}\n",
        stats.emitted, stats.block
    );
    std::fs::write("BENCH_collections.json", &json).expect("write BENCH_collections.json");
    println!("\nwrote BENCH_collections.json");
    let _ = std::fs::remove_dir_all(&dir);
}
