//! Figure 4b — recovering a **known** clustering as p varies.
//!
//! The six-region synthetic dataset (paper §4.2): six horizontal bands
//! filled from uniform distributions with distinct means, plus ~1%
//! injected outliers that are "plausible" (inside the global value range,
//! so no pre-filter can remove them). Tiles are clustered with sketched
//! Lp distances for p across (0, 2]; the score is the fraction of tiles
//! assigned to their true region (Definition 10 agreement against ground
//! truth).
//!
//! Expected shape (paper): L1 and especially L2 perform poorly — the
//! outliers dominate the distance and the clustering collapses — while
//! p in roughly [0.25, 0.8] recovers the intended clustering at or near
//! 100%. As p → 0 the distance approaches Hamming, where almost all
//! values differ, and quality falls again.

use tabsketch_bench::{print_header, print_row, Scale};
use tabsketch_cluster::{InitMethod, KMeans, KMeansConfig, PrecomputedSketchEmbedding};
use tabsketch_core::{SketchParams, Sketcher};
use tabsketch_data::{SixRegionConfig, SixRegionGenerator, NUM_REGIONS};
use tabsketch_eval::clustering_agreement;
use tabsketch_table::TileGrid;

fn main() {
    let scale = Scale::from_args();
    let rows = scale.pick(256, 512, 1024);
    let cols = scale.pick(256, 512, 1024);
    let tile = scale.pick(16, 16, 32);
    let sketch_k = scale.pick(128, 256, 256);

    let generator = SixRegionGenerator::new(SixRegionConfig {
        rows,
        cols,
        outlier_fraction: 0.01,
        seed: 42,
        ..Default::default()
    })
    .expect("valid generator config");
    let table = generator.generate();
    let grid = TileGrid::new(rows, cols, tile, tile).expect("tile divides the table");
    let truth = generator.tile_labels(&grid);

    println!(
        "=== Figure 4b: recovering the known 6-region clustering, {} tiles of {tile}x{tile} ===",
        grid.len()
    );
    println!("1% outliers injected; sketch k = {sketch_k}; k-means k = {NUM_REGIONS}\n");

    let p_values = [
        0.05, 0.1, 0.25, 0.4, 0.5, 0.6, 0.8, 1.0, 1.2, 1.5, 1.75, 2.0,
    ];
    let widths = [6usize, 12, 12];
    print_header(&["p", "correct%", "iters"], &widths);

    for &p in &p_values {
        let params = SketchParams::builder()
            .p(p)
            .k(sketch_k)
            .seed(9)
            .build()
            .expect("valid sketch params");
        let embed = PrecomputedSketchEmbedding::build(
            &table,
            &grid,
            Sketcher::new(params).expect("valid sketcher"),
        )
        .expect("grid is non-empty");
        // Best of a few k-means++ seeds: the paper's k-means also depends
        // on its random initialization, and the figure's question is what
        // the *distance* permits, not what one unlucky seeding finds.
        let seeds = [3u64, 7, 11, 19, 23];
        let mut best = 0.0f64;
        let mut iters = 0;
        for &seed in &seeds {
            let km = KMeans::new(KMeansConfig {
                k: NUM_REGIONS,
                max_iters: 60,
                seed,
                init: InitMethod::KMeansPlusPlus,
            })
            .expect("valid configuration");
            let res = km.run(&embed).expect("enough tiles");
            let agreement = clustering_agreement(&truth, &res.assignments, NUM_REGIONS)
                .expect("valid labelings");
            if agreement > best {
                best = agreement;
                iters = res.iterations;
            }
        }
        print_row(
            &[
                &format!("{p:.2}"),
                &format!("{:.1}", 100.0 * best),
                &format!("{iters}"),
            ],
            &widths,
        );
    }
    println!();
    println!("(correct% = Def. 10 agreement with ground truth, best of three k-means seeds;");
    println!(" allocating every tile to one cluster would score ~25%)");
}
