//! Figure 3 — k-means (k = 20) over tiles of stitched multi-day call
//! volume data, across the whole range of p.
//!
//! Three scenarios per p (paper §4.4):
//!
//! 1. sketches precomputed (clustering time only; build time reported
//!    separately);
//! 2. sketches on demand (first touch of a tile builds & caches its
//!    sketch inside the clustering loop);
//! 3. exact distance computations.
//!
//! Quality of the sketched clustering against the exact one:
//! confusion-matrix agreement (Definition 10, Hungarian-matched) and
//! spread-ratio quality (Definition 11, both clusterings scored with the
//! exact Lp metric).
//!
//! Expected shape: sketch modes are several times faster than exact
//! (an order of magnitude when tiles are large), sketch-mode times are
//! nearly flat in p while exact times vary (powf for fractional p),
//! on-demand adds a roughly constant sketch-build surcharge, agreement
//! degrades toward p = 2 while quality stays ≈ 100%.

use tabsketch_bench::{
    exact_member_distances, print_header, print_row, run_kmeans_timed, secs, time, Scale,
};
use tabsketch_cluster::{ExactEmbedding, OnDemandSketchEmbedding, PrecomputedSketchEmbedding};
use tabsketch_core::{SketchParams, Sketcher};
use tabsketch_data::{CallVolumeConfig, CallVolumeGenerator};
use tabsketch_eval::{clustering_agreement, clustering_quality, Spreads};
use tabsketch_table::TileGrid;

fn main() {
    let scale = Scale::from_args();
    let k_clusters = 20;
    let sketch_k = scale.pick(64, 256, 256);
    let stations = scale.pick(128, 256, 320);
    let days = scale.pick(4, 12, 18);
    let station_group = 16; // tiles are 16 neighboring stations x 1 day
    let slots = 144;

    let table = CallVolumeGenerator::new(CallVolumeConfig {
        stations,
        slots_per_day: slots,
        days,
        seed: 1918,
        ..Default::default()
    })
    .expect("valid generator config")
    .generate();
    let grid = TileGrid::new(table.rows(), table.cols(), station_group, slots)
        .expect("tile divides the table");

    println!(
        "=== Figure 3: {k_clusters}-means over {} tiles of {}x{} cells ({} KB each) ===",
        grid.len(),
        station_group,
        slots,
        station_group * slots * 8 / 1024
    );
    println!("sketch k = {sketch_k}; times in seconds\n");

    let p_values = [0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0];
    let widths = [6usize, 12, 12, 12, 12, 11, 10];
    print_header(
        &[
            "p",
            "precomp",
            "(build)",
            "on-demand",
            "exact",
            "agree%",
            "qual%",
        ],
        &widths,
    );

    for &p in &p_values {
        let params = SketchParams::builder()
            .p(p)
            .k(sketch_k)
            .seed(77)
            .build()
            .expect("valid sketch params");

        // Scenario 1: precomputed sketches.
        let (pre_embed, t_build) = time(|| {
            PrecomputedSketchEmbedding::build(
                &table,
                &grid,
                Sketcher::new(params).expect("valid sketcher"),
            )
            .expect("grid is non-empty")
        });
        let (res_pre, t_pre) = run_kmeans_timed(&pre_embed, k_clusters, 7);

        // Scenario 2: on-demand sketches (build cost inside the loop).
        let lazy = OnDemandSketchEmbedding::new(
            &table,
            grid,
            Sketcher::new(params).expect("valid sketcher"),
        )
        .expect("grid is non-empty");
        let (_res_lazy, t_lazy) = run_kmeans_timed(&lazy, k_clusters, 7);

        // Scenario 3: exact distances.
        let exact_embed = ExactEmbedding::from_tiles(&table, &grid, p).expect("grid is non-empty");
        let (res_exact, t_exact) = run_kmeans_timed(&exact_embed, k_clusters, 7);

        // Quality: Definition 10 and Definition 11, both in exact space.
        let agreement =
            clustering_agreement(&res_exact.assignments, &res_pre.assignments, k_clusters)
                .expect("labelings are valid");
        let d_exact = exact_member_distances(&table, &grid, &res_exact.assignments, k_clusters, p);
        let d_sketch = exact_member_distances(&table, &grid, &res_pre.assignments, k_clusters, p);
        let s_exact = Spreads::from_assignments(&res_exact.assignments, &d_exact, k_clusters)
            .expect("valid labels");
        let s_sketch = Spreads::from_assignments(&res_pre.assignments, &d_sketch, k_clusters)
            .expect("valid labels");
        let quality = clustering_quality(&s_exact, &s_sketch).expect("non-degenerate spreads");

        print_row(
            &[
                &format!("{p:.2}"),
                &secs(t_pre),
                &secs(t_build),
                &secs(t_lazy),
                &secs(t_exact),
                &format!("{:.1}", 100.0 * agreement),
                &format!("{:.1}", 100.0 * quality),
            ],
            &widths,
        );
    }
    println!();
    println!("(precomp = clustering on prebuilt sketches; (build) = one-time sketch construction;");
    println!(" agree% = Def. 10 confusion agreement vs exact clustering, Hungarian-matched;");
    println!(" qual% = Def. 11 spread ratio, both clusterings scored with exact Lp)");
}
