//! Ablation A3 — compound (pooled dyadic) sketches versus direct
//! sketches (paper Theorem 5 in practice).
//!
//! For random query rectangles the pool answers in O(k) by summing four
//! overlapping dyadic sketches; the estimate inflates by the overlap
//! multiplicity (between 1x and 4^(1/p)x). This ablation measures the
//! actual inflation distribution and the comparison-consistency that
//! clustering relies on, against both direct sketches and exact
//! distances.

use tabsketch_bench::{print_header, print_row, Scale};
use tabsketch_core::{PoolConfig, SketchParams, SketchPool, Sketcher};
use tabsketch_data::{CallVolumeConfig, CallVolumeGenerator};
use tabsketch_eval::{pairwise_comparison_correctness, ComparisonTriple};
use tabsketch_table::{norms, Rect};

fn main() {
    let scale = Scale::from_args();
    let queries = scale.pick(50, 300, 1000);
    let sketch_k = scale.pick(128, 256, 512);

    let table = CallVolumeGenerator::new(CallVolumeConfig {
        stations: 128,
        slots_per_day: 144,
        days: 1,
        seed: 404,
        ..Default::default()
    })
    .expect("valid generator config")
    .generate();

    let params = SketchParams::builder()
        .p(1.0)
        .k(sketch_k)
        .seed(21)
        .build()
        .expect("valid params");
    let pool = SketchPool::build(
        &table,
        params,
        PoolConfig {
            min_rows: 8,
            min_cols: 8,
            max_rows: 32,
            max_cols: 32,
            ..Default::default()
        },
    )
    .expect("pool fits in memory");
    let direct = Sketcher::new(params).expect("valid sketcher");

    println!("=== Ablation A3: compound vs direct sketches (p = 1, k = {sketch_k}) ===");
    println!(
        "pool: canonical sizes {:?}, {} MB\n",
        pool.sizes(),
        pool.memory_bytes() / (1 << 20)
    );

    // Random same-shape rectangle pairs with non-dyadic shapes.
    let mut state = 0xAB1A_C0DEu64;
    let mut next = move |m: usize| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % m as u64) as usize
    };

    let shapes = [(11usize, 13usize), (9, 20), (15, 30), (8, 8), (16, 16)];
    let widths = [9usize, 12, 12, 12, 12];
    print_header(
        &["shape", "med infl", "max infl", "pair% cmp", "pair% dir"],
        &widths,
    );

    for &(h, w) in &shapes {
        let mut inflations = Vec::with_capacity(queries);
        let mut triples_pool = Vec::new();
        let mut triples_direct = Vec::new();
        for _ in 0..queries {
            let a = Rect::new(next(table.rows() - h), next(table.cols() - w), h, w);
            let b = Rect::new(next(table.rows() - h), next(table.cols() - w), h, w);
            let c = Rect::new(next(table.rows() - h), next(table.cols() - w), h, w);
            let exact_ab = norms::lp_distance_views(
                &table.view(a).expect("in range"),
                &table.view(b).expect("in range"),
                1.0,
            )
            .expect("same shape");
            let exact_ac = norms::lp_distance_views(
                &table.view(a).expect("in range"),
                &table.view(c).expect("in range"),
                1.0,
            )
            .expect("same shape");
            let pool_ab = pool.estimate_distance(a, b).expect("covered by pool");
            let pool_ac = pool.estimate_distance(a, c).expect("covered by pool");
            let sa = direct.sketch_view(&table.view(a).expect("in range"));
            let sb = direct.sketch_view(&table.view(b).expect("in range"));
            let sc = direct.sketch_view(&table.view(c).expect("in range"));
            let dir_ab = direct.estimate_distance(&sa, &sb).expect("same family");
            let dir_ac = direct.estimate_distance(&sa, &sc).expect("same family");
            if exact_ab > 0.0 {
                inflations.push(pool_ab / exact_ab);
            }
            triples_pool.push(ComparisonTriple {
                est_xy: pool_ab,
                est_xz: pool_ac,
                exact_xy: exact_ab,
                exact_xz: exact_ac,
            });
            triples_direct.push(ComparisonTriple {
                est_xy: dir_ab,
                est_xz: dir_ac,
                exact_xy: exact_ab,
                exact_xz: exact_ac,
            });
        }
        inflations.sort_by(f64::total_cmp);
        let med = inflations[inflations.len() / 2];
        let max = *inflations.last().expect("non-empty");
        let pc = pairwise_comparison_correctness(&triples_pool).expect("non-empty");
        let pd = pairwise_comparison_correctness(&triples_direct).expect("non-empty");
        print_row(
            &[
                &format!("{h}x{w}"),
                &format!("{med:.2}x"),
                &format!("{max:.2}x"),
                &format!("{:.1}", 100.0 * pc),
                &format!("{:.1}", 100.0 * pd),
            ],
            &widths,
        );
    }
    println!();
    println!("(infl = compound estimate / exact distance; Theorem 5 bounds it by ~4 for p = 1,");
    println!(" dyadic shapes like 8x8/16x16 are corrected exactly and should sit near 1.0x;");
    println!(" pair% cmp / dir = Def. 9 comparison correctness via pool vs direct sketches)");
}
