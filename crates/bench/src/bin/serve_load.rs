//! Load generator for the `tabsketch-serve` daemon.
//!
//! Spins up a server in-process on an ephemeral loopback port, then
//! drives it from N concurrent client connections issuing the mixed
//! workload a monitoring dashboard would: mostly single distances, some
//! batches (which amortize sketch lookups on one cache shard), plus
//! sketch fetches and k-NN queries. Reports client-side throughput per
//! request kind and the server's own latency/tier counters, and writes
//! a machine-readable summary to `BENCH_serve.json`.
//!
//! Usage: `serve_load [--quick|--full]`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use tabsketch_bench::{print_header, print_row, secs, time, AnchorSampler, Scale};
use tabsketch_core::{persist, AllSubtableSketches, SketchParams, Sketcher};
use tabsketch_data::{SixRegionConfig, SixRegionGenerator};
use tabsketch_serve::{Client, ServeError, Server, ServerConfig, StoreSpec};
use tabsketch_table::{io as table_io, Rect, Table};

/// Requests one client thread issues, by kind.
#[derive(Clone, Copy)]
struct Workload {
    singles: usize,
    batches: usize,
    batch_len: usize,
    sketches: usize,
    knn: usize,
}

/// Per-kind request tallies summed across client threads.
#[derive(Default)]
struct Tally {
    singles: AtomicU64,
    batches: AtomicU64,
    sketches: AtomicU64,
    knn: AtomicU64,
}

/// Requests shutdown when dropped, so a client-side panic cannot leave
/// the scope's implicit join waiting on the server thread forever.
struct StopOnDrop(tabsketch_serve::ServerHandle);

impl Drop for StopOnDrop {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

fn client_loop(
    addr: std::net::SocketAddr,
    table: &Table,
    tile: usize,
    load: Workload,
    seed: u64,
    tally: &Tally,
) -> Result<(), ServeError> {
    let mut anchors = AnchorSampler::new(table, tile, tile, seed);
    let mut rect = move || {
        let (r, c) = anchors.next_anchor();
        Rect::new(r, c, tile, tile)
    };
    let mut c = Client::connect(addr)?;
    c.ping()?;
    for _ in 0..load.singles {
        let (d, _) = c.distance("day", rect(), rect())?;
        assert!(d.is_finite());
        tally.singles.fetch_add(1, Ordering::Relaxed);
    }
    for _ in 0..load.batches {
        let pairs: Vec<_> = (0..load.batch_len).map(|_| (rect(), rect())).collect();
        let answers = c.distance_batch("day", &pairs)?;
        assert_eq!(answers.len(), pairs.len());
        tally.batches.fetch_add(1, Ordering::Relaxed);
    }
    for _ in 0..load.sketches {
        let (values, _) = c.sketch("day", rect())?;
        assert!(!values.is_empty());
        tally.sketches.fetch_add(1, Ordering::Relaxed);
    }
    for _ in 0..load.knn {
        let nn = c.knn("day", rect(), 3)?;
        assert!(nn.windows(2).all(|w| w[0].1 <= w[1].1));
        tally.knn.fetch_add(1, Ordering::Relaxed);
    }
    Ok(())
}

fn main() {
    let scale = Scale::from_args();
    let threads = scale.pick(2, 4, 8);
    let load = Workload {
        singles: scale.pick(40, 150, 600),
        batches: scale.pick(4, 12, 40),
        batch_len: 16,
        sketches: scale.pick(4, 12, 40),
        knn: scale.pick(2, 6, 20),
    };
    let (rows, cols, tile, k) = (96usize, 96usize, 8usize, scale.pick(16, 32, 64));

    // On-disk fixture: the server loads stores from files, exactly as
    // `tabsketch-cli serve` would.
    let dir = std::env::temp_dir().join(format!("tabsketch-serve-load-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let table_path = dir.join("t.tsb");
    let store_path = dir.join("t.tsks");
    let table: Table = SixRegionGenerator::new(SixRegionConfig {
        rows,
        cols,
        seed: 7,
        ..Default::default()
    })
    .expect("valid generator config")
    .generate();
    table_io::save_binary(&table, &table_path).expect("save table");
    let sketcher = Sketcher::new(
        SketchParams::builder()
            .p(1.0)
            .k(k)
            .seed(9)
            .build()
            .expect("valid params"),
    )
    .expect("valid sketcher");
    let (store, t_build) =
        time(|| AllSubtableSketches::build(&table, tile, tile, sketcher).expect("fits budget"));
    persist::save_store(&store, &store_path).expect("save store");
    drop(store);

    let server = Server::bind(ServerConfig {
        workers: threads,
        shards: 4,
        cache_capacity: 256,
        specs: vec![StoreSpec::builder("day", &table_path)
            .store_path(&store_path)
            .params(1.0, k, 9)
            .build()],
        ..Default::default()
    })
    .expect("bind on loopback");
    let addr = server.local_addr();

    println!(
        "=== Serving load: {rows}x{cols} table, {tile}x{tile} tiles, k = {k}, \
         {threads} clients x ({} singles + {} batches of {} + {} sketches + {} knn) ===\n",
        load.singles, load.batches, load.batch_len, load.sketches, load.knn
    );

    let tally = Tally::default();
    let (snapshot, wall) = std::thread::scope(|scope| {
        let _stop = StopOnDrop(server.handle());
        let run = scope.spawn(|| server.run());

        let ((), wall) = time(|| {
            std::thread::scope(|clients| {
                for t in 0..threads {
                    let (table, tally) = (&table, &tally);
                    clients.spawn(move || {
                        client_loop(addr, table, tile, load, 1 + t as u64, tally)
                            .expect("client workload");
                    });
                }
            });
        });

        let mut probe = Client::connect(addr).expect("metrics connection");
        let snapshot = probe.metrics().expect("metrics");
        probe.shutdown().expect("shutdown ack");
        run.join().expect("server thread").expect("server run");
        (snapshot, wall)
    });

    let total_requests = snapshot.total_requests();
    let rps = total_requests as f64 / wall.as_secs_f64();
    let distances_per_sec = (tally.singles.load(Ordering::Relaxed)
        + tally.batches.load(Ordering::Relaxed) * load.batch_len as u64)
        as f64
        / wall.as_secs_f64();

    let widths = [16usize, 12, 12];
    print_header(&["kind", "requests", ""], &widths);
    let rows_out: &[(&str, u64)] = &[
        ("single distance", tally.singles.load(Ordering::Relaxed)),
        ("batch", tally.batches.load(Ordering::Relaxed)),
        ("sketch", tally.sketches.load(Ordering::Relaxed)),
        ("knn", tally.knn.load(Ordering::Relaxed)),
    ];
    for (name, n) in rows_out {
        print_row(&[name, &n.to_string(), ""], &widths);
    }
    println!(
        "\nstore build {}; {threads} clients done in {}: {rps:.0} req/s \
         ({distances_per_sec:.0} distances/s), server p50 {} us, p99 {} us",
        secs(t_build),
        secs(wall),
        snapshot.p50_us,
        snapshot.p99_us
    );
    assert_eq!(snapshot.errors, 0, "load run must be error-free");
    for s in &snapshot.stores {
        println!("store {:?}: {}", s.name, s.tiers);
    }

    let json = render_json(
        threads,
        &load,
        wall,
        rps,
        distances_per_sec,
        &snapshot,
        t_build,
    );
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("\nwrote BENCH_serve.json");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Hand-rolled JSON (the workspace deliberately has no serde).
fn render_json(
    threads: usize,
    load: &Workload,
    wall: Duration,
    rps: f64,
    distances_per_sec: f64,
    snapshot: &tabsketch_serve::MetricsSnapshot,
    t_build: Duration,
) -> String {
    let mut stores = String::new();
    for (i, s) in snapshot.stores.iter().enumerate() {
        if i > 0 {
            stores.push_str(", ");
        }
        let t = &s.tiers;
        stores.push_str(&format!(
            "{{\"name\": \"{}\", \"pooled\": {}, \"on_demand\": {}, \
             \"pooled_fallbacks\": {}, \"on_demand_fallbacks\": {}, \
             \"cache_hits\": {}, \"cache_misses\": {}, \"cache_evictions\": {}}}",
            s.name,
            t.pooled,
            t.on_demand,
            t.pooled_fallbacks,
            t.on_demand_fallbacks,
            t.cache_hits,
            t.cache_misses,
            t.cache_evictions
        ));
    }
    let host = tabsketch_bench::host_json();
    format!(
        "{{\n  \"bench\": \"serve_load\",\n  \"host\": {host},\n  \"threads\": {threads},\n  \
         \"singles_per_thread\": {},\n  \"batches_per_thread\": {},\n  \
         \"batch_len\": {},\n  \"store_build_secs\": {:.6},\n  \
         \"wall_secs\": {:.6},\n  \"requests_total\": {},\n  \
         \"requests_per_sec\": {rps:.1},\n  \"distances_per_sec\": {distances_per_sec:.1},\n  \
         \"errors\": {},\n  \"timeouts\": {},\n  \"p50_us\": {},\n  \"p99_us\": {},\n  \
         \"connections\": {},\n  \"stores\": [{stores}]\n}}\n",
        load.singles,
        load.batches,
        load.batch_len,
        t_build.as_secs_f64(),
        wall.as_secs_f64(),
        snapshot.total_requests(),
        snapshot.errors,
        snapshot.timeouts,
        snapshot.p50_us,
        snapshot.p99_us,
        snapshot.connections
    )
}
