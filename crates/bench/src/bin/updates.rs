//! Live-table update benchmark: the cost of folding a single-cell
//! delta into a precomputed all-subtable sketch store, against the full
//! rebuild it replaces.
//!
//! Sketches are linear, so an update folds `sketch(Δ)` into the touched
//! anchors instead of re-sketching the table (DESIGN.md §14). The
//! pinned configuration — a 256x256 six-region table, 16x16 tiles,
//! k = 64 — matches the scale where the rebuild is comfortably
//! measurable; ci.sh gates `speedup >= 10` on the JSON this writes
//! (in practice the fold wins by orders of magnitude).
//!
//! Three phases: (1) incremental single-cell folds vs timed rebuilds,
//! (2) updates/sec through a live daemon (`Update` frames over TCP),
//! (3) the cache-coherence path — a warmed distance-oracle LRU must
//! drop overlapping sketches when an update lands.
//!
//! Usage: `updates [--quick|--full]`; writes `BENCH_updates.json`.

use tabsketch_bench::{host_json, print_header, print_row, secs, time, Scale};
use tabsketch_core::{persist, AllSubtableSketches, SketchParams, Sketcher};
use tabsketch_data::{SixRegionConfig, SixRegionGenerator};
use tabsketch_serve::{
    Client, Deadline, LoadedStore, Server, ServerConfig, ShardedOracle, StoreSpec,
};
use tabsketch_table::{io as table_io, Rect, Table, TableUpdate};

/// Pinned configuration; ci.sh cross-checks these fields in the JSON.
const ROWS: usize = 256;
const COLS: usize = 256;
const TILE: usize = 16;
const K: usize = 64;
const SEED: u64 = 21;

/// splitmix64 for the update coordinate stream.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn cell_update(i: u64) -> TableUpdate {
    let r = (mix(i) % ROWS as u64) as usize;
    let c = (mix(i ^ 0xC0FF_EE00) % COLS as u64) as usize;
    let delta = (mix(i ^ 0xDEAD_BEEF) % 1_000) as f64 / 10.0 - 50.0;
    TableUpdate::cell(r, c, if delta == 0.0 { 1.0 } else { delta }).expect("finite delta")
}

fn sketcher() -> Sketcher {
    Sketcher::new(
        SketchParams::builder()
            .p(1.0)
            .k(K)
            .seed(SEED)
            .build()
            .expect("valid sketch parameters"),
    )
    .expect("sketcher construction")
}

struct StopOnDrop(tabsketch_serve::ServerHandle);

impl Drop for StopOnDrop {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

fn main() {
    let scale = Scale::from_args();
    let updates = scale.pick(200, 1_000, 5_000);
    let rebuilds = scale.pick(2, 4, 8);
    let daemon_updates = scale.pick(100, 500, 2_000);

    println!(
        "updates bench: {ROWS}x{COLS} table, {TILE}x{TILE} tiles, k = {K}; \
         {updates} incremental folds vs {rebuilds} rebuilds"
    );

    let table: Table = SixRegionGenerator::new(SixRegionConfig {
        rows: ROWS,
        cols: COLS,
        seed: SEED,
        ..Default::default()
    })
    .expect("valid generator config")
    .generate();

    let (store, t_first_build) =
        time(|| AllSubtableSketches::build(&table, TILE, TILE, sketcher()).expect("store build"));
    println!("built the baseline store in {}", secs(t_first_build));

    // Phase 1a: the rebuild cost an update would pay without the fold —
    // re-sketching every anchor of the patched table.
    let mut patched = table.clone();
    let (_, t_rebuilds) = time(|| {
        for i in 0..rebuilds as u64 {
            patched
                .apply_update(&cell_update(i))
                .expect("in-bounds update");
            let rebuilt = AllSubtableSketches::build(&patched, TILE, TILE, sketcher())
                .expect("rebuild over the patched table");
            assert_eq!(rebuilt.anchor_rows(), store.anchor_rows());
        }
    });
    let rebuild_ms = t_rebuilds.as_secs_f64() * 1e3 / rebuilds as f64;

    // Phase 1b: the same mutation stream folded incrementally.
    let mut live_table = table.clone();
    let mut live_store = store.clone();
    let (folded_cells, t_folds) = time(|| {
        let mut cells = 0u64;
        for i in 0..updates as u64 {
            let u = cell_update(i);
            live_table.apply_update(&u).expect("in-bounds update");
            cells += live_store.apply_update(&u).expect("store fold");
        }
        cells
    });
    let update_us = t_folds.as_secs_f64() * 1e6 / updates as f64;
    let speedup = rebuild_ms * 1e3 / update_us;
    assert!(folded_cells > 0, "folds never touched a sketch");

    // Phase 2: updates/sec through the daemon. The fixture goes through
    // disk, exactly as `tabsketch-cli serve` loads it.
    let dir = std::env::temp_dir().join(format!("tabsketch-bench-updates-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let table_path = dir.join("t.tsb");
    let store_path = dir.join("t.tsks");
    table_io::save_binary(&table, &table_path).expect("save table");
    persist::save_store(&store, &store_path).expect("save store");
    let config = ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        shards: 2,
        cache_capacity: 256,
        specs: vec![StoreSpec::builder("day", &table_path)
            .store_path(&store_path)
            .build()],
        ..Default::default()
    };
    let server = Server::bind(config).expect("bind on an ephemeral port");
    let addr = server.local_addr();
    let (daemon_secs, final_epoch) = std::thread::scope(|scope| {
        let _stop = StopOnDrop(server.handle());
        let run = scope.spawn(|| server.run());
        let mut c = Client::connect(addr).expect("connect");
        let (epoch, t_daemon) = time(|| {
            let mut epoch = 0;
            for i in 0..daemon_updates as u64 {
                let (e, _) = c.update("day", &cell_update(i)).expect("acked update");
                epoch = e;
            }
            epoch
        });
        c.shutdown().expect("shutdown ack");
        run.join().expect("server thread").expect("clean drain");
        (t_daemon.as_secs_f64(), epoch)
    });
    let daemon_ups = daemon_updates as f64 / daemon_secs;
    assert_eq!(final_epoch, daemon_updates as u64, "one epoch per ack");
    let _ = std::fs::remove_dir_all(&dir);

    // Phase 3: a warmed oracle LRU drops overlapping cached sketches
    // when the update lands (otherwise queries would pair stale sketches
    // with the patched table). The windows are deliberately half the
    // store's tile shape: same-shape windows answer from the precomputed
    // store at every anchor and never enter the LRU, so only on-demand
    // sketches exercise the invalidation.
    let oracle = ShardedOracle::new(
        LoadedStore::from_loaded("day", table.clone(), Some(store.clone())),
        1,
        256,
    )
    .expect("oracle over the baseline store");
    let warm = |o: &ShardedOracle| {
        for gr in 0..4 {
            for gc in 0..4 {
                let half = TILE / 2;
                let a = Rect::new(gr * half, gc * half, half, half);
                let b = Rect::new(0, 0, half, half);
                o.distance(a, b, Deadline::none())
                    .expect("warming distance");
            }
        }
    };
    warm(&oracle);
    let invalidations = tabsketch_obs::counter("cluster.lru.invalidations");
    let before = invalidations.get();
    oracle
        .apply_update(&TableUpdate::cell(2, 2, 7.5).expect("finite delta"))
        .expect("update through the oracle");
    let lru_invalidated = invalidations.get() - before;
    assert!(
        lru_invalidated >= 1,
        "an update overlapping cached sketches must invalidate at least one"
    );
    warm(&oracle);

    let widths = [26, 14];
    print_header(&["metric", "value"], &widths);
    print_row(
        &["rebuild (ms/update)", &format!("{rebuild_ms:.2}")],
        &widths,
    );
    print_row(&["fold (us/update)", &format!("{update_us:.2}")], &widths);
    print_row(&["speedup", &format!("{speedup:.0}x")], &widths);
    print_row(
        &["daemon updates/sec", &format!("{daemon_ups:.0}")],
        &widths,
    );
    print_row(&["lru invalidated", &format!("{lru_invalidated}")], &widths);

    assert!(
        speedup >= 10.0,
        "incremental folds must beat the rebuild by >= 10x, got {speedup:.1}x"
    );

    let host = host_json();
    let json = format!(
        "{{\n  \"bench\": \"updates\",\n  \"host\": {host},\n  \
         \"rows\": {ROWS},\n  \"cols\": {COLS},\n  \"tile\": {TILE},\n  \"k\": {K},\n  \
         \"updates\": {updates},\n  \"rebuilds\": {rebuilds},\n  \
         \"rebuild_ms_per_update\": {rebuild_ms:.4},\n  \
         \"fold_us_per_update\": {update_us:.4},\n  \"speedup\": {speedup:.1},\n  \
         \"daemon_updates\": {daemon_updates},\n  \
         \"daemon_updates_per_sec\": {daemon_ups:.1},\n  \
         \"daemon_final_epoch\": {final_epoch},\n  \
         \"lru_invalidated\": {lru_invalidated}\n}}\n"
    );
    std::fs::write("BENCH_updates.json", &json).expect("write BENCH_updates.json");
    println!("wrote BENCH_updates.json");
}
