//! Baseline B1 — DFT-coefficient dimensionality reduction versus stable
//! sketches, across p.
//!
//! The paper's related-work claim: transform-based reductions (DFT/DCT/
//! wavelets) estimate L2 well "but they do not work for other Lp
//! distances, including the important L1 distance". Both methods get the
//! same storage budget (m complex DFT coefficients = 2m floats = sketch
//! width k), and both are scored on pairwise comparison correctness
//! (Definition 9) against the exact Lp distance — the quantity clustering
//! consumes.
//!
//! A coordinate-sampling estimator with the same budget is included as a
//! second naive baseline; it collapses when discrepancies are
//! concentrated in few coordinates.

use tabsketch_bench::{exact_pair_distances, print_header, print_row, AnchorSampler, Scale};
use tabsketch_core::baseline::{DftSketcher, SamplingSketcher};
use tabsketch_core::{SketchParams, Sketcher};
use tabsketch_data::random::inject_outliers;
use tabsketch_data::{CallVolumeConfig, CallVolumeGenerator};
use tabsketch_eval::{pairwise_comparison_correctness, ComparisonTriple};
use tabsketch_table::Rect;

fn main() {
    let scale = Scale::from_args();
    let pairs_n = scale.pick(150, 1000, 5000);
    let edge = 32;
    let k = 128; // floats per object for every method
    let dft_m = k / 2; // m complex coefficients = k floats

    let mut table = CallVolumeGenerator::new(CallVolumeConfig {
        stations: 256,
        slots_per_day: 144,
        days: 2,
        seed: 66,
        ..Default::default()
    })
    .expect("valid generator config")
    .generate();
    // A sprinkle of strong spikes: distances between tiles are then
    // dominated by a few coordinates — the regime where truncated spectra
    // and coordinate sampling lose exactly the discrepancy that matters,
    // while stable sketches (full-vector dot products) retain it.
    inject_outliers(&mut table, 0.005, 20.0, 80.0, 99).expect("valid outlier params");

    println!("=== Baseline B1: DFT reduction vs stable sketches (storage {k} floats/object) ===");
    println!("{pairs_n} comparison triples of {edge}x{edge} tiles; Def. 9 pairwise correctness\n");

    let mut sampler = AnchorSampler::new(&table, edge, edge, 0xDF7);
    // Triples (X, Y, Z): which of Y, Z is closer to X?
    let anchors: Vec<[(usize, usize); 3]> = (0..pairs_n)
        .map(|_| {
            [
                sampler.next_anchor(),
                sampler.next_anchor(),
                sampler.next_anchor(),
            ]
        })
        .collect();

    let widths = [6usize, 14, 14, 14];
    print_header(
        &["p", "stable sketch", "DFT coeffs", "coord sample"],
        &widths,
    );

    for &p in &[0.5f64, 1.0, 2.0] {
        // Exact distances for the triples.
        let xy: Vec<((usize, usize), (usize, usize))> =
            anchors.iter().map(|t| (t[0], t[1])).collect();
        let xz: Vec<((usize, usize), (usize, usize))> =
            anchors.iter().map(|t| (t[0], t[2])).collect();
        let exact_xy = exact_pair_distances(&table, &xy, edge, edge, p);
        let exact_xz = exact_pair_distances(&table, &xz, edge, edge, p);

        let tile_of = |a: (usize, usize)| -> Vec<f64> {
            table
                .view(Rect::new(a.0, a.1, edge, edge))
                .expect("in range")
                .to_vec()
        };

        // Stable sketches.
        let sk = Sketcher::new(
            SketchParams::builder()
                .p(p)
                .k(k)
                .seed(3)
                .build()
                .expect("valid params"),
        )
        .expect("valid sketcher");
        let stable_score = {
            let triples: Vec<ComparisonTriple> = anchors
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    let sx = sk.sketch_slice(&tile_of(t[0]));
                    let sy = sk.sketch_slice(&tile_of(t[1]));
                    let sz = sk.sketch_slice(&tile_of(t[2]));
                    ComparisonTriple {
                        est_xy: sk.estimate_distance(&sx, &sy).expect("same family"),
                        est_xz: sk.estimate_distance(&sx, &sz).expect("same family"),
                        exact_xy: exact_xy[i],
                        exact_xz: exact_xz[i],
                    }
                })
                .collect();
            pairwise_comparison_correctness(&triples).expect("non-empty")
        };

        // DFT baseline: L2-style estimate used as a proxy for every p
        // (there is nothing better to do with truncated spectra — that is
        // the point).
        let dft = DftSketcher::new(dft_m).expect("m >= 1");
        let dft_score = {
            let triples: Vec<ComparisonTriple> = anchors
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    let sx = dft.sketch(&tile_of(t[0]));
                    let sy = dft.sketch(&tile_of(t[1]));
                    let sz = dft.sketch(&tile_of(t[2]));
                    ComparisonTriple {
                        est_xy: dft.estimate_l2_distance(&sx, &sy).expect("same shape"),
                        est_xz: dft.estimate_l2_distance(&sx, &sz).expect("same shape"),
                        exact_xy: exact_xy[i],
                        exact_xz: exact_xz[i],
                    }
                })
                .collect();
            pairwise_comparison_correctness(&triples).expect("non-empty")
        };

        // Coordinate sampling with the same budget.
        let samp = SamplingSketcher::new(k, p, 17).expect("valid params");
        let samp_score = {
            let triples: Vec<ComparisonTriple> = anchors
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    let sx = samp.sketch(&tile_of(t[0]));
                    let sy = samp.sketch(&tile_of(t[1]));
                    let sz = samp.sketch(&tile_of(t[2]));
                    ComparisonTriple {
                        est_xy: samp.estimate_distance(&sx, &sy).expect("same shape"),
                        est_xz: samp.estimate_distance(&sx, &sz).expect("same shape"),
                        exact_xy: exact_xy[i],
                        exact_xz: exact_xz[i],
                    }
                })
                .collect();
            pairwise_comparison_correctness(&triples).expect("non-empty")
        };

        print_row(
            &[
                &format!("{p}"),
                &format!("{:.1}%", 100.0 * stable_score),
                &format!("{:.1}%", 100.0 * dft_score),
                &format!("{:.1}%", 100.0 * samp_score),
            ],
            &widths,
        );
    }
    println!();
    println!("(expected: DFT competitive at p = 2 only; stable sketches hold up across all p)");
}
