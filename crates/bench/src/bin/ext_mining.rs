//! Extensions harness — the additional mining algorithms on sketches:
//! k-medoids, DBSCAN, hierarchical clustering, k-NN, and
//! filter-and-refine similar-pair search, each scored against its
//! exact-distance counterpart.
//!
//! The paper's thesis is that *any* Lp-based mining algorithm can run on
//! sketches; this binary quantifies that across five algorithms at once.

use tabsketch_bench::{print_header, print_row, secs, time, Scale};
use tabsketch_cluster::{
    agglomerate, dbscan, kmedoids, most_similar_pairs, most_similar_pairs_refined,
    nearest_neighbors, pair_recall, DbscanConfig, ExactEmbedding, KMedoidsConfig, Linkage,
    PrecomputedSketchEmbedding,
};
use tabsketch_core::{SketchParams, Sketcher};
use tabsketch_data::{IpTrafficConfig, IpTrafficGenerator};
use tabsketch_eval::{adjusted_rand_index, clustering_agreement};

fn main() {
    let scale = Scale::from_args();
    let destinations = scale.pick(45, 120, 240);
    let p = 0.75; // burst-laden traffic: a genuinely fractional exponent
    let days = scale.pick(1, 3, 5);
    let sketch_k = scale.pick(128, 256, 384);

    let generator = IpTrafficGenerator::new(IpTrafficConfig {
        destinations,
        slots_per_day: 288,
        days,
        seed: 71,
        ..Default::default()
    })
    .expect("valid generator config");
    let table = generator.generate();
    let truth = generator.class_labels();
    let grid = tabsketch_table::TileGrid::new(table.rows(), table.cols(), 1, table.cols())
        .expect("one tile per destination");

    println!(
        "=== Extensions: five mining algorithms on sketches vs exact (p = {p}, {} objects) ===\n",
        grid.len()
    );

    let exact = ExactEmbedding::from_tiles(&table, &grid, p).expect("non-empty grid");
    let params = SketchParams::builder()
        .p(p)
        .k(sketch_k)
        .seed(8)
        .build()
        .expect("valid params");
    let sketched = PrecomputedSketchEmbedding::build(
        &table,
        &grid,
        Sketcher::new(params).expect("valid sketcher"),
    )
    .expect("non-empty grid");

    let widths = [18usize, 12, 12, 24];
    print_header(&["algorithm", "exact", "sketched", "agreement"], &widths);

    // k-medoids against ground-truth classes.
    let km_cfg = KMedoidsConfig {
        k: 3,
        seed: 5,
        ..Default::default()
    };
    let (r_exact, t_exact) = time(|| kmedoids(&exact, km_cfg).expect("enough objects"));
    let (r_sketch, t_sketch) = time(|| kmedoids(&sketched, km_cfg).expect("enough objects"));
    let ari_exact = adjusted_rand_index(&truth, &r_exact.assignments, 3).expect("valid labels");
    let ari_sketch = adjusted_rand_index(&truth, &r_sketch.assignments, 3).expect("valid labels");
    print_row(
        &[
            "k-medoids",
            &secs(t_exact),
            &secs(t_sketch),
            &format!("ARI {ari_exact:.2} vs {ari_sketch:.2}"),
        ],
        &widths,
    );

    // DBSCAN: pick eps from the exact distance scale (median 5-NN dist).
    let eps = {
        let nn = nearest_neighbors(&exact, 0, 5).expect("enough objects");
        nn[4].distance * 1.2
    };
    let db_cfg = DbscanConfig { eps, min_points: 4 };
    let (d_exact, t_exact) = time(|| dbscan(&exact, db_cfg).expect("valid config"));
    let (d_sketch, t_sketch) = time(|| dbscan(&sketched, db_cfg).expect("valid config"));
    let k_dense = d_exact.clusters.max(d_sketch.clusters) + 1;
    let db_agree = clustering_agreement(&d_exact.dense_labels(), &d_sketch.dense_labels(), k_dense)
        .expect("valid labels");
    print_row(
        &[
            "DBSCAN",
            &secs(t_exact),
            &secs(t_sketch),
            &format!("{:.0}% labels match", 100.0 * db_agree),
        ],
        &widths,
    );

    // Hierarchical (average linkage), cut at 3.
    let (h_exact, t_exact) = time(|| {
        agglomerate(&exact, Linkage::Average)
            .expect("non-empty")
            .cut(3)
            .expect("k <= n")
    });
    let (h_sketch, t_sketch) = time(|| {
        agglomerate(&sketched, Linkage::Average)
            .expect("non-empty")
            .cut(3)
            .expect("k <= n")
    });
    let h_agree = clustering_agreement(&h_exact, &h_sketch, 3).expect("valid labels");
    print_row(
        &[
            "hierarchical",
            &secs(t_exact),
            &secs(t_sketch),
            &format!("{:.0}% labels match", 100.0 * h_agree),
        ],
        &widths,
    );

    // k-NN recall over all query objects.
    let (recall_sum, t_all) = time(|| {
        let mut acc = 0.0;
        for q in 0..grid.len() {
            let e_nn = nearest_neighbors(&exact, q, 5).expect("enough objects");
            let s_nn = nearest_neighbors(&sketched, q, 5).expect("enough objects");
            acc += tabsketch_cluster::knn_recall(&e_nn, &s_nn).expect("non-empty");
        }
        acc / grid.len() as f64
    });
    print_row(
        &[
            "5-NN (all queries)",
            "-",
            &secs(t_all),
            &format!("{:.0}% mean recall", 100.0 * recall_sum),
        ],
        &widths,
    );

    // Similar pairs: exact top-20 vs filter(sketch)+refine(exact).
    let (exact_pairs, t_exact) = time(|| most_similar_pairs(&exact, 20).expect("enough objects"));
    let (refined, t_refine) = time(|| {
        most_similar_pairs_refined(&sketched, &exact, 20, 4).expect("compatible embeddings")
    });
    let recall = pair_recall(&exact_pairs, &refined).expect("non-empty");
    print_row(
        &[
            "top-20 pairs",
            &secs(t_exact),
            &secs(t_refine),
            &format!("{:.0}% recall (4x cand.)", 100.0 * recall),
        ],
        &widths,
    );

    println!();
    println!("(sketched columns include no preprocessing; all algorithms ran unmodified on");
    println!(" both embeddings — only the distance routines differ, as in the paper's §4.4)");
}
