//! Observability overhead — what instrumentation costs on the hot paths.
//!
//! The obs layer promises to be effectively free when no subscriber is
//! installed: every `span()` is one relaxed atomic load, and counters
//! are single relaxed `fetch_add`s. This bench quantifies that promise
//! and writes a machine-readable summary to `BENCH_obs.json`:
//!
//! * primitive costs (ns/op): counter inc, histogram record, disabled
//!   span, enabled span;
//! * hot-path latencies with spans disabled vs enabled (subscriber
//!   installed), for sketch construction and `O(k)` distance
//!   estimation;
//! * the derived no-op overhead: the share of each hot path spent in
//!   its obs operations when no subscriber is installed — the number
//!   the <5% acceptance bound refers to.
//!
//! Run `--quick` for a CI-speed pass; the derived no-op overhead is
//! asserted below 5% in every mode.

use std::time::Instant;

use tabsketch_bench::{print_header, print_row, Scale};
use tabsketch_core::{DistanceEstimator, SketchParams, Sketcher};
use tabsketch_obs::RegistrySubscriber;

/// Times `iters` runs of `f` and returns mean nanoseconds per run.
fn mean_ns(iters: u64, mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

struct PathCost {
    disabled_ns: f64,
    enabled_ns: f64,
}

impl PathCost {
    fn enabled_overhead_pct(&self) -> f64 {
        100.0 * (self.enabled_ns - self.disabled_ns).max(0.0) / self.disabled_ns
    }
}

fn main() {
    let scale = Scale::from_args();
    let micro_iters = scale.pick(200_000u64, 2_000_000, 10_000_000);
    let path_iters = scale.pick(2_000u64, 20_000, 100_000);
    let dim = 1024usize;
    let k = 256usize;

    println!("=== Observability overhead (dim {dim}, k {k}) ===\n");

    // -- primitives, measured before any subscriber exists ------------
    let c = tabsketch_obs::counter("bench.obs.counter");
    let h = tabsketch_obs::histogram("bench.obs.histogram");
    let counter_ns = mean_ns(micro_iters, || c.inc());
    let histogram_ns = mean_ns(micro_iters, || h.record(17));
    let span_disabled_ns = mean_ns(micro_iters, || {
        let _s = tabsketch_obs::span("bench.obs.span");
    });

    // -- hot paths, spans disabled ------------------------------------
    let sk = Sketcher::new(
        SketchParams::builder()
            .p(1.0)
            .k(k)
            .seed(0xB0B)
            .build()
            .expect("valid params"),
    )
    .expect("valid sketcher");
    let va: Vec<f64> = (0..dim).map(|i| (i % 97) as f64).collect();
    let vb: Vec<f64> = (0..dim).map(|i| ((i * 7) % 89) as f64).collect();
    let sa = DistanceEstimator::sketch(&sk, &va);
    let sb = DistanceEstimator::sketch(&sk, &vb);

    let sketch_disabled_ns = mean_ns(path_iters, || {
        std::hint::black_box(DistanceEstimator::sketch(&sk, std::hint::black_box(&va)));
    });
    let estimate_disabled_ns = mean_ns(path_iters * 8, || {
        std::hint::black_box(sk.estimate_distance(&sa, &sb).expect("same family"));
    });

    // -- install the subscriber, re-measure ---------------------------
    let _sub = RegistrySubscriber::install(false).expect("first install succeeds");
    let span_enabled_ns = mean_ns(micro_iters, || {
        let _s = tabsketch_obs::span("bench.obs.span");
    });
    let sketch_enabled_ns = mean_ns(path_iters, || {
        std::hint::black_box(DistanceEstimator::sketch(&sk, std::hint::black_box(&va)));
    });
    let estimate_enabled_ns = mean_ns(path_iters * 8, || {
        std::hint::black_box(sk.estimate_distance(&sa, &sb).expect("same family"));
    });

    let sketch = PathCost {
        disabled_ns: sketch_disabled_ns,
        enabled_ns: sketch_enabled_ns,
    };
    let estimate = PathCost {
        disabled_ns: estimate_disabled_ns,
        enabled_ns: estimate_enabled_ns,
    };

    // With no subscriber, a sketch call pays one disabled span and one
    // counter inc; an estimate call pays one counter inc. The derived
    // no-op overhead is that fixed cost as a share of the whole call.
    let sketch_noop_pct = 100.0 * (span_disabled_ns + counter_ns) / sketch_disabled_ns;
    let estimate_noop_pct = 100.0 * counter_ns / estimate_disabled_ns;

    let widths = [26usize, 14, 14, 12];
    print_header(&["path", "disabled ns", "enabled ns", "enabled %"], &widths);
    print_row(
        &[
            "sketch (dim 1024)",
            &format!("{sketch_disabled_ns:.0}"),
            &format!("{sketch_enabled_ns:.0}"),
            &format!("{:.2}", sketch.enabled_overhead_pct()),
        ],
        &widths,
    );
    print_row(
        &[
            "estimate (k 256)",
            &format!("{estimate_disabled_ns:.0}"),
            &format!("{estimate_enabled_ns:.0}"),
            &format!("{:.2}", estimate.enabled_overhead_pct()),
        ],
        &widths,
    );
    println!(
        "\nprimitives: counter {counter_ns:.1} ns, histogram {histogram_ns:.1} ns, \
         span disabled {span_disabled_ns:.1} ns, span enabled {span_enabled_ns:.1} ns"
    );
    println!(
        "derived no-op overhead: sketch {sketch_noop_pct:.3}%, estimate {estimate_noop_pct:.3}%"
    );

    assert!(
        sketch_noop_pct < 5.0 && estimate_noop_pct < 5.0,
        "no-op instrumentation overhead must stay below 5% \
         (sketch {sketch_noop_pct:.3}%, estimate {estimate_noop_pct:.3}%)"
    );

    let host = tabsketch_bench::host_json();
    let json = format!(
        "{{\n  \"host\": {host},\n  \"dim\": {dim},\n  \"k\": {k},\n  \"primitives_ns\": {{\n    \
         \"counter_inc\": {counter_ns:.2},\n    \"histogram_record\": {histogram_ns:.2},\n    \
         \"span_disabled\": {span_disabled_ns:.2},\n    \"span_enabled\": {span_enabled_ns:.2}\n  }},\n  \
         \"sketch_ns\": {{\"disabled\": {sketch_disabled_ns:.1}, \"enabled\": {sketch_enabled_ns:.1}}},\n  \
         \"estimate_ns\": {{\"disabled\": {estimate_disabled_ns:.1}, \"enabled\": {estimate_enabled_ns:.1}}},\n  \
         \"noop_overhead_pct\": {{\"sketch\": {sketch_noop_pct:.4}, \"estimate\": {estimate_noop_pct:.4}}},\n  \
         \"enabled_overhead_pct\": {{\"sketch\": {:.4}, \"estimate\": {:.4}}},\n  \
         \"bound_pct\": 5.0\n}}\n",
        sketch.enabled_overhead_pct(),
        estimate.enabled_overhead_pct(),
    );
    std::fs::write("BENCH_obs.json", &json).expect("write BENCH_obs.json");
    println!("\nwrote BENCH_obs.json");
}
