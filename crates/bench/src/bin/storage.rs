//! Out-of-core storage layer — pool builds over a table four times the
//! resident-memory budget.
//!
//! The bench builds the same [`SketchPool`] twice: once over a dense
//! table and once over the same table spilled to disk under a budget of
//! a quarter of its bytes, with the pool's banded build honoring that
//! same budget. It then verifies the storage invariant end to end:
//!
//! * every compound sketch is **bit-identical** between the dense and
//!   spilled builds (the band structure depends only on shapes and the
//!   budget, never on the storage backend);
//! * the `table.storage.resident_peak_bytes` gauge stays **at or under
//!   the budget** throughout the spilled build — the whole point of the
//!   out-of-core layer.
//!
//! A machine-readable summary lands in `BENCH_storage.json`; CI asserts
//! the schema, the 4x table/budget ratio, the under-budget peak, and
//! the dense/spilled identity. Run `--quick` for a CI-speed pass.

use tabsketch_bench::{time, Scale};
use tabsketch_core::{PoolConfig, SketchParams, SketchPool};
use tabsketch_table::{MemoryBudget, Rect, Table, TableStorage};

/// Bitwise comparison of every compound sketch the two pools store,
/// at a grid of anchors per stored size.
fn pools_identical(dense: &SketchPool, spilled: &SketchPool, table: &Table) -> bool {
    for (r, c) in dense.sizes() {
        let row_step = (table.rows() - r).max(1) / 3 + 1;
        let col_step = (table.cols() - c).max(1) / 3 + 1;
        let mut row = 0;
        while row + r <= table.rows() {
            let mut col = 0;
            while col + c <= table.cols() {
                let rect = Rect::new(row, col, r, c);
                let a = dense.compound_sketch(rect).expect("anchor in range");
                let b = spilled.compound_sketch(rect).expect("anchor in range");
                let same = a
                    .values()
                    .iter()
                    .zip(b.values())
                    .all(|(x, y)| x.to_bits() == y.to_bits());
                if !same {
                    return false;
                }
                col += col_step;
            }
            row += row_step;
        }
    }
    true
}

fn main() {
    let scale = Scale::from_args();
    let edge = scale.pick(128usize, 256, 512);
    let k = scale.pick(16usize, 32, 64);

    let table =
        Table::from_fn(edge, edge, |r, c| ((r * 37 + c * 11) % 101) as f64).expect("valid table");
    let table_bytes = (table.len() * 8) as u64;
    let budget_bytes = table_bytes / 4;
    let budget = MemoryBudget::bytes(budget_bytes);

    println!(
        "=== Out-of-core pool build ({edge}x{edge} table = {:.1} KiB, budget {:.1} KiB) ===\n",
        table_bytes as f64 / 1024.0,
        budget_bytes as f64 / 1024.0
    );

    let params = SketchParams::builder()
        .p(1.0)
        .k(k)
        .seed(0x5704)
        .build()
        .expect("valid params");
    let config = PoolConfig::builder()
        .min_rows(8)
        .min_cols(8)
        .max_rows(32)
        .max_cols(32)
        .table_budget(budget)
        .build()
        .expect("valid config");

    // Dense reference: same banded build (same budget), resident storage.
    let (dense_pool, t_dense) =
        time(|| SketchPool::build(&table, params, config).expect("dense pool builds"));
    let dense_ms = t_dense.as_secs_f64() * 1e3;
    println!("dense build:   {dense_ms:8.1} ms");

    // Spill the table to disk under the same budget, then rebuild.
    let spilled_table = table
        .clone()
        .with_budget(budget)
        .expect("table spills cleanly");
    assert!(spilled_table.is_spilled(), "table must actually spill");
    let (chunk_rows, window_chunks) = match spilled_table.storage() {
        TableStorage::Spilled(s) => (s.chunk_rows(), s.window_chunks()),
        TableStorage::Dense(_) => unreachable!("just asserted spilled"),
    };

    // The peak gauge is raise-only; zero it so it measures this build.
    tabsketch_obs::gauge!("table.storage.resident_peak_bytes").set(0);
    let (spilled_pool, t_spilled) =
        time(|| SketchPool::build(&spilled_table, params, config).expect("spilled pool builds"));
    let spilled_ms = t_spilled.as_secs_f64() * 1e3;
    let peak = tabsketch_obs::gauge!("table.storage.resident_peak_bytes").get();
    println!("spilled build: {spilled_ms:8.1} ms");
    println!(
        "resident peak: {:.1} KiB of {:.1} KiB budget ({} chunks of {chunk_rows} rows resident)",
        peak as f64 / 1024.0,
        budget_bytes as f64 / 1024.0,
        window_chunks
    );

    let identical = pools_identical(&dense_pool, &spilled_pool, &table);
    let under_budget = peak > 0 && peak <= budget_bytes;

    assert!(
        under_budget,
        "spilled build peak {peak} B must be positive and at most the {budget_bytes} B budget"
    );
    assert!(
        identical,
        "dense and spilled pool builds must be bit-identical"
    );
    println!("\ndense/spilled compound sketches bit-identical; peak under budget");

    let host = tabsketch_bench::host_json();
    let json = format!(
        "{{\n  \"host\": {host},\n  \"table_rows\": {},\n  \"table_cols\": {},\n  \
         \"table_bytes\": {table_bytes},\n  \
         \"budget_bytes\": {budget_bytes},\n  \
         \"chunk_rows\": {chunk_rows},\n  \
         \"window_chunks\": {window_chunks},\n  \
         \"resident_peak_bytes\": {peak},\n  \
         \"under_budget\": {under_budget},\n  \
         \"dense_spilled_identical\": {identical},\n  \
         \"pool_build_dense_ms\": {dense_ms:.2},\n  \
         \"pool_build_spilled_ms\": {spilled_ms:.2}\n}}\n",
        table.rows(),
        table.cols(),
    );
    std::fs::write("BENCH_storage.json", &json).expect("write BENCH_storage.json");
    println!("wrote BENCH_storage.json");
}
