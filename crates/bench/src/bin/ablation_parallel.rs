//! Ablation A4 — thread scaling of the all-subtable sketch build.
//!
//! The k FFT correlations of Theorem 3 are embarrassingly parallel;
//! `AllSubtableSketches::build_parallel` splits them across scoped
//! threads and produces bit-identical output. This ablation measures the
//! speedup curve (expect near-linear until memory bandwidth saturates —
//! and expect exactly 1.0x on a single-CPU host, where the harness still
//! verifies output identity).

use tabsketch_bench::{print_header, print_row, secs, time, Scale};
use tabsketch_core::allsub::DEFAULT_MEMORY_BUDGET;
use tabsketch_core::{AllSubtableSketches, SketchParams, Sketcher};
use tabsketch_data::{CallVolumeConfig, CallVolumeGenerator};
use tabsketch_table::MemoryBudget;

fn main() {
    let scale = Scale::from_args();
    let k = scale.pick(16, 64, 128);
    let stations = scale.pick(128, 384, 512);
    let edge = 32;

    let table = CallVolumeGenerator::new(CallVolumeConfig {
        stations,
        slots_per_day: 144,
        days: 2,
        seed: 12,
        ..Default::default()
    })
    .expect("valid generator config")
    .generate();

    println!(
        "=== Ablation A4: parallel all-subtable build ({}x{} table, {edge}x{edge} tiles, k = {k}) ===\n",
        table.rows(),
        table.cols()
    );

    // Sequential reference (also warms the shared random-row cache so the
    // comparison isolates correlation work).
    let sketcher = Sketcher::new(
        SketchParams::builder()
            .p(1.0)
            .k(k)
            .seed(3)
            .build()
            .expect("valid params"),
    )
    .expect("valid sketcher");
    let (reference, t_seq) = time(|| {
        AllSubtableSketches::build(&table, edge, edge, sketcher.clone()).expect("fits budget")
    });

    let widths = [9usize, 12, 10];
    print_header(&["threads", "build", "speedup"], &widths);
    print_row(&["seq", &secs(t_seq), "1.00x"], &widths);

    for threads in [1usize, 2, 4, 8] {
        let (parallel, t_par) = time(|| {
            AllSubtableSketches::build_parallel(
                &table,
                edge,
                edge,
                sketcher.clone(),
                DEFAULT_MEMORY_BUDGET,
                MemoryBudget::unbounded(),
                threads,
            )
            .expect("fits budget")
        });
        // Verify bit-identical output on a few anchors.
        for &(r, c) in &[(0usize, 0usize), (5, 9), (50, 100)] {
            if let (Some(a), Some(b)) = (reference.values_at(r, c), parallel.values_at(r, c)) {
                assert_eq!(a, b, "parallel build diverged at ({r},{c})");
            }
        }
        print_row(
            &[
                &format!("{threads}"),
                &secs(t_par),
                &format!("{:.2}x", t_seq.as_secs_f64() / t_par.as_secs_f64()),
            ],
            &widths,
        );
    }
    println!("\n(outputs verified identical to the sequential build)");
}
