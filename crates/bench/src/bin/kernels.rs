//! Dense kernel layer — what lane tiling, blocking, batching, and the
//! real-input FFT buy on the sketch hot path.
//!
//! The scalar baseline is the pre-kernel implementation: one
//! `norms::dot_slices` pass per random row, a single latency-bound f64
//! accumulation chain each. The blocked kernel
//! (`kernels::dot_rows_blocked`) walks
//! [`tabsketch_core::kernels::ROW_TILE`] rows per column pass with
//! independent accumulators and stays bit-identical to the scalar
//! reference. The lane kernel (`kernels::dot_rows`, the public sketch
//! path) further splits every dot product into
//! [`tabsketch_core::kernels::LANES`] partial sums so LLVM can
//! autovectorize it, trading bit-identity for a pinned `1e-12` relative
//! tolerance (see `crates/core/tests/kernel_equivalence.rs` for both
//! tiers). The batched kernel (`kernels::dot_rows_batch`) additionally
//! amortizes each pass across many objects.
//!
//! This bench measures speed only and writes a machine-readable summary
//! to `BENCH_kernels.json`:
//!
//! * ns per sketch for the scalar / blocked / lane / batched kernels on
//!   the paper's 64×64 tile (4096 values) at k = 256; the blocked
//!   speedup over scalar is asserted ≥ 1.5× and the lane speedup over
//!   blocked ≥ [`LANE_BOUND_SPEEDUP`] (a parity floor — see its doc)
//!   in every mode;
//! * the real-input FFT correlation (`Correlator2d::correlate`) against
//!   the packed-complex reference (`correlate_complex`) on the same
//!   grid the all-subtable build uses — asserted ≥ 1.3× since the rfft
//!   path does half the complex butterflies per row pass;
//! * `SketchPool::build_parallel` wall time at 1/2/4/8 threads, plus
//!   the same build against a *spilled* (budgeted) table, which
//!   exercises the within-band kernel parallelism (monotone improvement
//!   1→4 is asserted only when the host actually has ≥ 4 cores; the
//!   JSON records the decision in `pool_build_monotonicity_checked`).
//!   On hosts below 4 cores the requested counts clamp to the core
//!   count, so the curve flattens instead of inverting.
//!
//! Run `--quick` for a CI-speed pass.

use std::time::Instant;

use tabsketch_bench::{print_header, print_row, time, Scale};
use tabsketch_core::{kernels, PoolConfig, SketchParams, SketchPool, Sketcher};
use tabsketch_fft::Correlator2d;
use tabsketch_table::{MemoryBudget, Table};

/// The blocked kernel must beat the scalar baseline by at least this
/// factor on the reference tile, in every mode — the regression bound
/// CI enforces.
const BOUND_SPEEDUP: f64 = 1.5;

/// The lane kernel (public sketch path) must never lose to the blocked
/// kernel it replaced on the hot path. At the pinned 64×64/k=256 shape
/// the 8 MB row block streams from L3 and both kernels saturate the
/// per-core fill bandwidth, so their true ratio is a tie (~1.0); the
/// enforced floor sits just under parity to tolerate measurement jitter
/// on the shared reference container while still catching real codegen
/// regressions (the pre-lane shape measured 0.78×).
const LANE_BOUND_SPEEDUP: f64 = 0.95;

/// The real-input FFT correlation must beat the packed-complex
/// reference by at least this factor: it runs half-length row
/// transforms and half the column transforms.
const RFFT_BOUND_SPEEDUP: f64 = 1.3;

/// Iterations per interleaved round: a few tens of milliseconds at the
/// pinned shape. Competing kernels are timed back-to-back within every
/// round and each keeps its best round, so machine-load drift cancels
/// out of the ratios CI gates on. Rounds are deliberately *short* and
/// *many*: on a virtualized host, stolen CPU arrives in bursts lasting
/// whole seconds, and a contender only records a clean number if some
/// round of its own lands inside a quiet window — short rounds buy far
/// more such chances per unit of bench time than long ones.
const ROUND_ITERS: u64 = 32;

/// Every contender gets at least this many rounds even in quick mode.
/// Timing noise is strictly additive, so each contender's minimum round
/// converges on its clean cost — but only if at least one of its rounds
/// dodges every steal burst, which a handful of rounds cannot promise.
const MIN_ROUNDS: usize = 20;

/// Times `iters` runs of `f` and returns mean nanoseconds per run.
fn mean_ns(iters: u64, mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Interleaved best-of-`rounds`: one pass per round over every
/// contender, returning each contender's minimum round mean.
fn paired_best_ns(round_iters: u64, rounds: usize, fs: &mut [&mut dyn FnMut()]) -> Vec<f64> {
    let mut best = vec![f64::INFINITY; fs.len()];
    for _ in 0..rounds.max(MIN_ROUNDS) {
        for (b, f) in best.iter_mut().zip(fs.iter_mut()) {
            *b = b.min(mean_ns(round_iters, f));
        }
    }
    best
}

fn main() {
    let scale = Scale::from_args();
    let tile = 64usize; // the paper's reference tile edge
    let len = tile * tile;
    let k = 256usize;
    let iters = scale.pick(200u64, 2_000, 10_000);
    let batch = 64usize;

    println!("=== Dense sketch kernels ({tile}x{tile} tile, k {k}) ===\n");

    let sk = Sketcher::new(
        SketchParams::builder()
            .p(1.0)
            .k(k)
            .seed(0xD07)
            .build()
            .expect("valid params"),
    )
    .expect("valid sketcher");
    let block = sk.row_block(len).expect("tile fits the row cache");
    let x: Vec<f64> = (0..len).map(|i| ((i * 13) % 97) as f64 - 48.0).collect();
    let objects: Vec<Vec<f64>> = (0..batch)
        .map(|o| {
            (0..len)
                .map(|i| ((i * 7 + o * 31) % 89) as f64 - 44.0)
                .collect()
        })
        .collect();
    let refs: Vec<&[f64]> = objects.iter().map(|o| &o[..]).collect();

    // -- scalar / blocked / lane / batched, interleaved per round -------
    let rounds = (iters / ROUND_ITERS) as usize;
    // All three contenders write the same buffer: distinct per-kernel
    // buffers land at different addresses each run, and their L1-set
    // aliasing against `x` and the row stream is luck that persists for
    // the whole process — a few percent of per-kernel bias no amount of
    // interleaving can cancel.
    let out = std::cell::RefCell::new(vec![0.0f64; k]);
    let timings = {
        let mut scalar_f = || {
            let x = std::hint::black_box(&x);
            let mut out = out.borrow_mut();
            for (i, o) in out.iter_mut().enumerate() {
                *o = tabsketch_table::norms::dot_slices(x, block.row(i));
            }
            std::hint::black_box(&*out);
        };
        let mut blocked_f = || {
            let mut out = out.borrow_mut();
            kernels::dot_rows_blocked(&block, std::hint::black_box(&x), &mut out);
            std::hint::black_box(&*out);
        };
        let mut lane_f = || {
            let mut out = out.borrow_mut();
            kernels::dot_rows(&block, std::hint::black_box(&x), &mut out);
            std::hint::black_box(&*out);
        };
        paired_best_ns(
            ROUND_ITERS,
            rounds,
            &mut [&mut scalar_f, &mut blocked_f, &mut lane_f],
        )
    };
    let scalar_ns = timings[0];
    let blocked_ns = timings[1];
    let lane_ns = timings[2];

    // -- batched lane kernel, per object (one call covers `batch`
    // objects, so it runs its own shorter loop) -------------------------
    let mut batch_out = vec![0.0f64; batch * k];
    // One batched call covers `batch` objects (~20 ms at the pinned
    // shape), so a round is two calls and the round count shrinks by
    // the same factor to keep total work comparable.
    let batch_rounds = (iters / (2 * batch as u64)) as usize;
    let mut batched_f = || {
        kernels::dot_rows_batch(&block, std::hint::black_box(&refs), &mut batch_out);
        std::hint::black_box(&batch_out);
    };
    let batched_ns = paired_best_ns(2, batch_rounds, &mut [&mut batched_f])[0] / batch as f64;

    let blocked_speedup = scalar_ns / blocked_ns;
    let lane_speedup = blocked_ns / lane_ns;
    let batched_speedup = scalar_ns / batched_ns;

    let widths = [22usize, 16, 10];
    print_header(&["kernel", "ns/sketch", "vs scalar"], &widths);
    print_row(
        &["scalar rows", &format!("{scalar_ns:.0}"), "1.00"],
        &widths,
    );
    print_row(
        &[
            "blocked (exact)",
            &format!("{blocked_ns:.0}"),
            &format!("{blocked_speedup:.2}"),
        ],
        &widths,
    );
    print_row(
        &[
            "lane",
            &format!("{lane_ns:.0}"),
            &format!("{:.2}", scalar_ns / lane_ns),
        ],
        &widths,
    );
    print_row(
        &[
            "batched (64 objs)",
            &format!("{batched_ns:.0}"),
            &format!("{batched_speedup:.2}"),
        ],
        &widths,
    );

    // -- real-input FFT correlation -------------------------------------
    // The grid the all-subtable build actually runs: a table band
    // correlated against a tile-sized kernel, padded to powers of two
    // inside Correlator2d.
    let (corr_rows, corr_cols) = (96usize, 96);
    let data: Vec<f64> = (0..corr_rows * corr_cols)
        .map(|i| ((i * 29) % 83) as f64 - 41.0)
        .collect();
    let corr = Correlator2d::new(&data, corr_rows, corr_cols).expect("correlator builds");
    let (krows, kcols) = (32usize, 32);
    let kernel: Vec<f64> = (0..krows * kcols)
        .map(|i| ((i * 17) % 71) as f64 - 35.0)
        .collect();
    // A correlation is ~0.2-0.6 ms, so 32-iteration rounds stay in the
    // same tens-of-milliseconds band as the kernel rounds above.
    let fft_rounds = scale.pick(5usize, 25, 100);
    let fft_timings = {
        let mut rfft_f = || {
            let out = corr
                .correlate(std::hint::black_box(&kernel), krows, kcols)
                .expect("rfft correlation");
            std::hint::black_box(&out);
        };
        let mut complex_f = || {
            let out = corr
                .correlate_complex(std::hint::black_box(&kernel), krows, kcols)
                .expect("complex correlation");
            std::hint::black_box(&out);
        };
        paired_best_ns(ROUND_ITERS, fft_rounds, &mut [&mut rfft_f, &mut complex_f])
    };
    let rfft_ns = fft_timings[0];
    let complex_fft_ns = fft_timings[1];
    let rfft_speedup = complex_fft_ns / rfft_ns;
    println!(
        "\nrfft correlation ({corr_rows}x{corr_cols} data, {krows}x{kcols} kernel): \
         {:.2} ms rfft vs {:.2} ms complex = {rfft_speedup:.2}x",
        rfft_ns / 1e6,
        complex_fft_ns / 1e6
    );

    // -- parallel pool build --------------------------------------------
    let table_edge = scale.pick(96usize, 192, 320);
    let pool_k = scale.pick(32usize, 64, 128);
    let t = Table::from_fn(table_edge, table_edge, |r, c| {
        ((r * 37 + c * 11) % 101) as f64
    })
    .expect("valid table");
    let params = SketchParams::builder()
        .p(1.0)
        .k(pool_k)
        .seed(0xBEE)
        .build()
        .expect("valid params");
    let config = PoolConfig {
        min_rows: 8,
        min_cols: 8,
        max_rows: 32,
        max_cols: 32,
        // The --full table needs ~3.4 GiB of sketch storage, past the
        // 1 GiB default; let the scale flags govern the workload size.
        max_bytes: usize::MAX,
        ..Default::default()
    };

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("\npool build ({table_edge}x{table_edge} table, k {pool_k}, {cores} cores):");
    let mut pool_build_ms = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let (pool, elapsed) =
            time(|| SketchPool::build_parallel(&t, params, config, threads).expect("pool builds"));
        std::hint::black_box(&pool);
        let ms = elapsed.as_secs_f64() * 1e3;
        println!("  {threads} threads: {ms:.1} ms");
        pool_build_ms.push((threads, ms));
    }

    // -- spilled (budgeted) parallel pool build -------------------------
    // Cap pinned rows at a quarter of the table so the banded path runs,
    // then build with every core: bands stay within budget while the
    // within-band kernel parallelism fans out.
    let budget = MemoryBudget::bytes((table_edge / 4 * table_edge * 8) as u64);
    let spilled = t.clone().with_budget(budget).expect("table spills");
    assert!(spilled.is_spilled(), "budgeted table must spill");
    let spilled_config = PoolConfig {
        table_budget: budget,
        ..config
    };
    let (spool, elapsed) = time(|| {
        SketchPool::build_parallel(&spilled, params, spilled_config, cores.max(2))
            .expect("spilled pool builds")
    });
    std::hint::black_box(&spool);
    let spilled_pool_build_ms = elapsed.as_secs_f64() * 1e3;
    println!(
        "spilled pool build ({} pinned rows, {} threads): {spilled_pool_build_ms:.1} ms",
        table_edge / 4,
        cores.max(2)
    );

    println!(
        "\nblocked {blocked_speedup:.2}x over scalar (bound {BOUND_SPEEDUP:.1}x), \
         lane {lane_speedup:.2}x over blocked (bound {LANE_BOUND_SPEEDUP:.2}x), \
         rfft {rfft_speedup:.2}x over complex (bound {RFFT_BOUND_SPEEDUP:.1}x)"
    );

    assert!(
        blocked_speedup >= BOUND_SPEEDUP,
        "blocked kernel regressed below {BOUND_SPEEDUP:.1}x over scalar \
         ({blocked_ns:.0} ns vs {scalar_ns:.0} ns = {blocked_speedup:.2}x)"
    );
    assert!(
        lane_speedup >= LANE_BOUND_SPEEDUP,
        "lane kernel lost to the blocked kernel it replaced \
         ({lane_ns:.0} ns vs {blocked_ns:.0} ns = {lane_speedup:.2}x)"
    );
    assert!(
        rfft_speedup >= RFFT_BOUND_SPEEDUP,
        "rfft correlation regressed below {RFFT_BOUND_SPEEDUP:.1}x over the complex path \
         ({rfft_ns:.0} ns vs {complex_fft_ns:.0} ns = {rfft_speedup:.2}x)"
    );
    // Below 4 cores build_parallel clamps every request to the core
    // count, so 1/2/4/8 threads collapse to the same effective build and
    // the curve carries no signal; the check is skipped and the skip is
    // recorded in the JSON.
    let monotonicity_checked = cores >= 4;
    if monotonicity_checked {
        let ms_at = |n: usize| pool_build_ms.iter().find(|&&(t, _)| t == n).unwrap().1;
        assert!(
            ms_at(4) <= ms_at(1) * 1.05,
            "pool build failed to improve 1 -> 4 threads on a {cores}-core host \
             ({:.1} ms -> {:.1} ms)",
            ms_at(1),
            ms_at(4)
        );
    } else {
        println!("pool build monotonicity check skipped: only {cores} cores");
    }

    let pool_json: Vec<String> = pool_build_ms
        .iter()
        .map(|(t, ms)| format!("\"{t}\": {ms:.2}"))
        .collect();
    let host = tabsketch_bench::host_json();
    let json = format!(
        "{{\n  \"host\": {host},\n  \"tile\": {tile},\n  \"k\": {k},\n  \
         \"scalar_ns_per_sketch\": {scalar_ns:.1},\n  \
         \"blocked_ns_per_sketch\": {blocked_ns:.1},\n  \
         \"lane_ns_per_sketch\": {lane_ns:.1},\n  \
         \"batched_ns_per_sketch\": {batched_ns:.1},\n  \
         \"blocked_speedup\": {blocked_speedup:.3},\n  \
         \"lane_speedup\": {lane_speedup:.3},\n  \
         \"batched_speedup\": {batched_speedup:.3},\n  \
         \"bound_speedup\": {BOUND_SPEEDUP:.1},\n  \
         \"lane_bound_speedup\": {LANE_BOUND_SPEEDUP:.2},\n  \
         \"rfft_ns\": {rfft_ns:.1},\n  \
         \"complex_fft_ns\": {complex_fft_ns:.1},\n  \
         \"rfft_speedup\": {rfft_speedup:.3},\n  \
         \"rfft_bound_speedup\": {RFFT_BOUND_SPEEDUP:.1},\n  \
         \"cores\": {cores},\n  \
         \"pool_build_monotonicity_checked\": {monotonicity_checked},\n  \
         \"pool_table_edge\": {table_edge},\n  \
         \"pool_k\": {pool_k},\n  \
         \"spilled_pool_build_ms\": {spilled_pool_build_ms:.2},\n  \
         \"pool_build_ms\": {{{}}}\n}}\n",
        pool_json.join(", "),
    );
    std::fs::write("BENCH_kernels.json", &json).expect("write BENCH_kernels.json");
    println!("wrote BENCH_kernels.json");
}
