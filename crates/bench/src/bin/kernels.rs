//! Dense kernel layer — what blocking and batching buy on the sketch
//! hot path.
//!
//! The scalar baseline is the pre-kernel implementation: one
//! `norms::dot_slices` pass per random row, a single latency-bound f64
//! accumulation chain each. The blocked kernel (`kernels::dot_rows`)
//! walks [`tabsketch_core::kernels::ROW_TILE`] rows per column pass with
//! independent accumulators, and the batched kernel
//! (`kernels::dot_rows_batch`) additionally amortizes each pass across
//! many objects. All three produce bit-identical sketches (see
//! `crates/core/tests/kernel_equivalence.rs`); this bench measures only
//! their speed and writes a machine-readable summary to
//! `BENCH_kernels.json`:
//!
//! * ns per sketch for the scalar / blocked / batched kernels on the
//!   paper's 64×64 tile (4096 values) at k = 256;
//! * the blocked-over-scalar and batched-over-scalar speedups — the
//!   blocked speedup is asserted ≥ 1.5× in every mode;
//! * `SketchPool::build_parallel` wall time at 1/2/4/8 threads
//!   (monotone improvement 1→4 is asserted only when the host actually
//!   has ≥ 4 cores; the JSON records the decision in
//!   `pool_build_monotonicity_checked`). On hosts below 4 cores the
//!   oversubscribed thread pool can invert the curve — the checked-in
//!   reference run shows 6.1 s at 1 thread vs 7.6 s at 8 threads — so
//!   a skipped check is expected there, not a regression.
//!
//! Run `--quick` for a CI-speed pass.

use std::time::Instant;

use tabsketch_bench::{print_header, print_row, time, Scale};
use tabsketch_core::{kernels, PoolConfig, SketchParams, SketchPool, Sketcher};
use tabsketch_table::Table;

/// The blocked kernel must beat the scalar baseline by at least this
/// factor on the reference tile, in every mode — the regression bound
/// CI enforces.
const BOUND_SPEEDUP: f64 = 1.5;

/// Times `iters` runs of `f` and returns mean nanoseconds per run.
fn mean_ns(iters: u64, mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn main() {
    let scale = Scale::from_args();
    let tile = 64usize; // the paper's reference tile edge
    let len = tile * tile;
    let k = 256usize;
    let iters = scale.pick(200u64, 2_000, 10_000);
    let batch = 64usize;

    println!("=== Dense sketch kernels ({tile}x{tile} tile, k {k}) ===\n");

    let sk = Sketcher::new(
        SketchParams::builder()
            .p(1.0)
            .k(k)
            .seed(0xD07)
            .build()
            .expect("valid params"),
    )
    .expect("valid sketcher");
    let block = sk.row_block(len).expect("tile fits the row cache");
    let x: Vec<f64> = (0..len).map(|i| ((i * 13) % 97) as f64 - 48.0).collect();
    let objects: Vec<Vec<f64>> = (0..batch)
        .map(|o| {
            (0..len)
                .map(|i| ((i * 7 + o * 31) % 89) as f64 - 44.0)
                .collect()
        })
        .collect();
    let refs: Vec<&[f64]> = objects.iter().map(|o| &o[..]).collect();

    // -- scalar baseline: one dot_slices pass per row ------------------
    let mut out = vec![0.0f64; k];
    let scalar_ns = mean_ns(iters, || {
        let x = std::hint::black_box(&x);
        for (i, o) in out.iter_mut().enumerate() {
            *o = tabsketch_table::norms::dot_slices(x, block.row(i));
        }
        std::hint::black_box(&out);
    });

    // -- blocked kernel -------------------------------------------------
    let blocked_ns = mean_ns(iters, || {
        kernels::dot_rows(&block, std::hint::black_box(&x), &mut out);
        std::hint::black_box(&out);
    });

    // -- batched kernel, per object -------------------------------------
    let mut batch_out = vec![0.0f64; batch * k];
    let batched_ns = mean_ns(iters.div_ceil(batch as u64).max(8), || {
        kernels::dot_rows_batch(&block, std::hint::black_box(&refs), &mut batch_out);
        std::hint::black_box(&batch_out);
    }) / batch as f64;

    let blocked_speedup = scalar_ns / blocked_ns;
    let batched_speedup = scalar_ns / batched_ns;

    let widths = [22usize, 16, 10];
    print_header(&["kernel", "ns/sketch", "speedup"], &widths);
    print_row(
        &["scalar rows", &format!("{scalar_ns:.0}"), "1.00"],
        &widths,
    );
    print_row(
        &[
            "blocked",
            &format!("{blocked_ns:.0}"),
            &format!("{blocked_speedup:.2}"),
        ],
        &widths,
    );
    print_row(
        &[
            "batched (64 objs)",
            &format!("{batched_ns:.0}"),
            &format!("{batched_speedup:.2}"),
        ],
        &widths,
    );

    // -- parallel pool build --------------------------------------------
    let table_edge = scale.pick(96usize, 192, 320);
    let pool_k = scale.pick(32usize, 64, 128);
    let t = Table::from_fn(table_edge, table_edge, |r, c| {
        ((r * 37 + c * 11) % 101) as f64
    })
    .expect("valid table");
    let params = SketchParams::builder()
        .p(1.0)
        .k(pool_k)
        .seed(0xBEE)
        .build()
        .expect("valid params");
    let config = PoolConfig {
        min_rows: 8,
        min_cols: 8,
        max_rows: 32,
        max_cols: 32,
        ..Default::default()
    };

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("\npool build ({table_edge}x{table_edge} table, k {pool_k}, {cores} cores):");
    let mut pool_build_ms = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let (pool, elapsed) =
            time(|| SketchPool::build_parallel(&t, params, config, threads).expect("pool builds"));
        std::hint::black_box(&pool);
        let ms = elapsed.as_secs_f64() * 1e3;
        println!("  {threads} threads: {ms:.1} ms");
        pool_build_ms.push((threads, ms));
    }

    println!(
        "\nblocked speedup {blocked_speedup:.2}x, batched speedup {batched_speedup:.2}x \
         (bound {BOUND_SPEEDUP:.1}x)"
    );

    assert!(
        blocked_speedup >= BOUND_SPEEDUP,
        "blocked kernel regressed below {BOUND_SPEEDUP:.1}x over scalar \
         ({blocked_ns:.0} ns vs {scalar_ns:.0} ns = {blocked_speedup:.2}x)"
    );
    // Below 4 cores the extra threads only add contention, and the curve
    // can legitimately invert (reference run: 6.1 s at 1 thread vs 7.6 s
    // at 8 on a 2-core host), so the monotonicity assertion is skipped
    // and the skip is recorded in the JSON.
    let monotonicity_checked = cores >= 4;
    if monotonicity_checked {
        let ms_at = |n: usize| pool_build_ms.iter().find(|&&(t, _)| t == n).unwrap().1;
        assert!(
            ms_at(4) <= ms_at(1) * 1.05,
            "pool build failed to improve 1 -> 4 threads on a {cores}-core host \
             ({:.1} ms -> {:.1} ms)",
            ms_at(1),
            ms_at(4)
        );
    } else {
        println!("pool build monotonicity check skipped: only {cores} cores");
    }

    let pool_json: Vec<String> = pool_build_ms
        .iter()
        .map(|(t, ms)| format!("\"{t}\": {ms:.2}"))
        .collect();
    let host = tabsketch_bench::host_json();
    let json = format!(
        "{{\n  \"host\": {host},\n  \"tile\": {tile},\n  \"k\": {k},\n  \
         \"scalar_ns_per_sketch\": {scalar_ns:.1},\n  \
         \"blocked_ns_per_sketch\": {blocked_ns:.1},\n  \
         \"batched_ns_per_sketch\": {batched_ns:.1},\n  \
         \"blocked_speedup\": {blocked_speedup:.3},\n  \
         \"batched_speedup\": {batched_speedup:.3},\n  \
         \"bound_speedup\": {BOUND_SPEEDUP:.1},\n  \
         \"cores\": {cores},\n  \
         \"pool_build_monotonicity_checked\": {monotonicity_checked},\n  \
         \"pool_table_edge\": {table_edge},\n  \
         \"pool_k\": {pool_k},\n  \
         \"pool_build_ms\": {{{}}}\n}}\n",
        pool_json.join(", "),
    );
    std::fs::write("BENCH_kernels.json", &json).expect("write BENCH_kernels.json");
    println!("wrote BENCH_kernels.json");
}
