//! Resilience benchmark for the `tabsketch-serve` daemon.
//!
//! Three phases against in-process servers on ephemeral loopback
//! ports, all deterministic (seeded fault injection, no sampling):
//!
//! 1. **Shed**: with the workers pinned and the connection queue full,
//!    how fast does an overloaded server turn new connections around
//!    with a typed `Overloaded` frame? Reports the shed round-trip p50
//!    and p99 — admission control is only useful if refusal stays
//!    cheap while the server is busy.
//! 2. **Drain**: with clients mid-flight, how long from the shutdown
//!    request until `run` returns? Must be well inside the configured
//!    drain deadline for a cooperative workload.
//! 3. **Retry**: a [`FaultyProxy`] kills 10% of connections mid-stream
//!    (seeded); a retrying client issues distance queries through it.
//!    Reports the success rate and the retries/reconnects spent —
//!    the paper's cheap `O(k)` comparisons are only cheap if a flaky
//!    network does not force the caller to re-sketch.
//!
//! Writes a machine-readable summary to `BENCH_resilience.json`
//! (gated by `scripts/ci.sh`). Usage: `resilience [--quick|--full]`.

use std::net::TcpStream;
use std::time::{Duration, Instant};

use tabsketch_bench::{print_header, print_row, secs, AnchorSampler, Scale};
use tabsketch_core::{persist, AllSubtableSketches, SketchParams, Sketcher};
use tabsketch_data::{SixRegionConfig, SixRegionGenerator};
use tabsketch_serve::chaos::{ChaosRng, FaultyProxy};
use tabsketch_serve::protocol::{decode_response, read_frame, Response};
use tabsketch_serve::{Client, ErrorCode, RetryPolicy, Server, ServerConfig, StoreSpec};
use tabsketch_table::{io as table_io, Rect, Table};

const SEED: u64 = 0xBE5C_11E9;

struct StopOnDrop(tabsketch_serve::ServerHandle);

impl Drop for StopOnDrop {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

struct Fixture {
    dir: std::path::PathBuf,
    table_path: std::path::PathBuf,
    store_path: std::path::PathBuf,
    table: Table,
}

fn fixture(tile: usize, k: usize) -> Fixture {
    let dir = std::env::temp_dir().join(format!("tabsketch-resilience-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let table_path = dir.join("t.tsb");
    let store_path = dir.join("t.tsks");
    let table: Table = SixRegionGenerator::new(SixRegionConfig {
        rows: 96,
        cols: 96,
        seed: 7,
        ..Default::default()
    })
    .expect("valid generator config")
    .generate();
    table_io::save_binary(&table, &table_path).expect("save table");
    let sketcher = Sketcher::new(
        SketchParams::builder()
            .p(1.0)
            .k(k)
            .seed(9)
            .build()
            .expect("valid params"),
    )
    .expect("valid sketcher");
    let store = AllSubtableSketches::build(&table, tile, tile, sketcher).expect("fits budget");
    persist::save_store(&store, &store_path).expect("save store");
    Fixture {
        dir,
        table_path,
        store_path,
        table,
    }
}

fn config(fx: &Fixture, k: usize) -> ServerConfig {
    ServerConfig {
        workers: 2,
        shards: 2,
        cache_capacity: 256,
        specs: vec![StoreSpec::builder("day", &fx.table_path)
            .store_path(&fx.store_path)
            .params(1.0, k, 9)
            .build()],
        ..Default::default()
    }
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Phase 1: shed round-trip latency while the server is saturated.
fn shed_phase(fx: &Fixture, k: usize, attempts: usize) -> (Vec<u64>, u64) {
    let mut cfg = config(fx, k);
    cfg.max_pending = 2;
    let server = Server::bind(cfg).expect("bind");
    let addr = server.local_addr();
    let metrics = server.metrics();

    std::thread::scope(|scope| {
        let _stop = StopOnDrop(server.handle());
        let run = scope.spawn(|| server.run());

        // Two holders park the workers, two more fill the queue.
        let mut holders = Vec::new();
        for _ in 0..4 {
            holders.push(TcpStream::connect(addr).expect("holder"));
            std::thread::sleep(Duration::from_millis(100));
        }

        let mut lat_us = Vec::with_capacity(attempts);
        for _ in 0..attempts {
            let t0 = Instant::now();
            let mut s = TcpStream::connect(addr).expect("shed connect");
            s.set_read_timeout(Some(Duration::from_secs(5)))
                .expect("timeout");
            let payload = read_frame(&mut s)
                .expect("shed frame")
                .expect("shed frame before close");
            match decode_response(&payload).expect("decode") {
                Response::Error { code, .. } => assert_eq!(code, ErrorCode::Overloaded),
                other => panic!("expected Overloaded, got {other:?}"),
            }
            lat_us.push(u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX));
        }
        let shed = metrics.snapshot(Vec::new()).shed;
        drop(holders);
        std::thread::sleep(Duration::from_millis(200));
        let mut c = Client::connect(addr).expect("post-shed client");
        c.shutdown().expect("shutdown");
        run.join().expect("server thread").expect("server run");
        lat_us.sort_unstable();
        (lat_us, shed)
    })
}

/// Phase 2: wall-clock from shutdown request to `run` returning, with
/// clients mid-flight. Returns (configured deadline ms, actual ms).
fn drain_phase(fx: &Fixture, k: usize, tile: usize) -> (u64, u64) {
    let mut cfg = config(fx, k);
    cfg.drain_ms = 2_000;
    let drain_ms = cfg.drain_ms;
    let server = Server::bind(cfg).expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();

    let actual_ms = std::thread::scope(|scope| {
        let _stop = StopOnDrop(server.handle());
        let run = scope.spawn(|| server.run());

        // Two clients looping batches until the drain refuses them.
        let table = &fx.table;
        let mut workers = Vec::new();
        for t in 0..2u64 {
            workers.push(scope.spawn(move || {
                let mut anchors = AnchorSampler::new(table, tile, tile, SEED ^ t);
                let mut rect = move || {
                    let (r, c) = anchors.next_anchor();
                    Rect::new(r, c, tile, tile)
                };
                let Ok(mut c) = Client::connect(addr) else {
                    return;
                };
                loop {
                    let pairs: Vec<_> = (0..32).map(|_| (rect(), rect())).collect();
                    if c.distance_batch("day", &pairs).is_err() {
                        return; // drained away
                    }
                }
            }));
        }
        std::thread::sleep(Duration::from_millis(200));
        let t0 = Instant::now();
        handle.shutdown();
        run.join().expect("server thread").expect("server run");
        let actual = t0.elapsed();
        for w in workers {
            w.join().expect("client thread");
        }
        u64::try_from(actual.as_millis()).unwrap_or(u64::MAX)
    });
    (drain_ms, actual_ms)
}

/// Whether [`FaultyProxy`] will kill connection `conn` under `seed`,
/// by replaying the proxy's per-connection RNG derivation.
fn proxy_kills(seed: u64, conn: u64, fault_per_mille: u32) -> bool {
    ChaosRng::new(seed ^ conn.wrapping_mul(0x9E37)).chance(fault_per_mille)
}

/// Phase 3: retry success through a proxy killing 10% of connections.
/// Returns (requests, successes, retries, reconnects, recoveries).
fn retry_phase(fx: &Fixture, k: usize, tile: usize, requests: usize) -> (u64, u64, u64, u64, u64) {
    let fault_per_mille = 100;
    // The client holds one connection and only reconnects after a
    // fault, so an arbitrary seed may never draw a kill at all. Pick
    // the first seed that kills the first two connections, so the
    // retry path is genuinely exercised (still fully deterministic).
    let seed = (SEED..)
        .find(|&s| proxy_kills(s, 0, fault_per_mille) && proxy_kills(s, 1, fault_per_mille))
        .expect("a seed that faults the first connections");
    let server = Server::bind(config(fx, k)).expect("bind");
    let addr = server.local_addr();

    let retries0 = tabsketch_obs::counter("serve.client.retries").get();
    let reconnects0 = tabsketch_obs::counter("serve.client.reconnects").get();
    let recoveries0 = tabsketch_obs::counter("serve.client.recoveries").get();

    let successes = std::thread::scope(|scope| {
        let _stop = StopOnDrop(server.handle());
        let run = scope.spawn(|| server.run());
        let proxy = FaultyProxy::start(addr, seed, fault_per_mille).expect("proxy");

        let mut anchors = AnchorSampler::new(&fx.table, tile, tile, SEED);
        let mut rect = move || {
            let (r, c) = anchors.next_anchor();
            Rect::new(r, c, tile, tile)
        };
        let mut c = Client::connect(proxy.addr())
            .expect("client via proxy")
            .with_retry(RetryPolicy::default().with_max_attempts(4).with_seed(seed));
        let mut ok = 0u64;
        for _ in 0..requests {
            if c.distance("day", rect(), rect()).is_ok() {
                ok += 1;
            }
        }
        drop(c);
        drop(proxy);
        let mut probe = Client::connect(addr).expect("direct client");
        probe.shutdown().expect("shutdown");
        run.join().expect("server thread").expect("server run");
        ok
    });

    (
        requests as u64,
        successes,
        tabsketch_obs::counter("serve.client.retries").get() - retries0,
        tabsketch_obs::counter("serve.client.reconnects").get() - reconnects0,
        tabsketch_obs::counter("serve.client.recoveries").get() - recoveries0,
    )
}

fn main() {
    let scale = Scale::from_args();
    let (tile, k) = (8usize, 32usize);
    let shed_attempts = scale.pick(30, 80, 200);
    let retry_requests = scale.pick(150, 400, 1_500);

    let t_all = Instant::now();
    let fx = fixture(tile, k);
    println!(
        "=== Resilience: 96x96 table, {tile}x{tile} tiles, k = {k}; \
         {shed_attempts} shed probes, {retry_requests} retried requests ===\n"
    );

    let (shed_lat, shed_count) = shed_phase(&fx, k, shed_attempts);
    let (shed_p50, shed_p99) = (percentile(&shed_lat, 0.50), percentile(&shed_lat, 0.99));

    let (drain_config_ms, drain_actual_ms) = drain_phase(&fx, k, tile);

    let (reqs, successes, retries, reconnects, recoveries) =
        retry_phase(&fx, k, tile, retry_requests);
    let success_rate = successes as f64 / reqs as f64;

    let widths = [30usize, 14, 14];
    print_header(&["phase", "metric", "value"], &widths);
    print_row(
        &["shed round-trip", "p50 us", &shed_p50.to_string()],
        &widths,
    );
    print_row(
        &["shed round-trip", "p99 us", &shed_p99.to_string()],
        &widths,
    );
    print_row(&["shed count", "", &shed_count.to_string()], &widths);
    print_row(
        &["drain", "deadline ms", &drain_config_ms.to_string()],
        &widths,
    );
    print_row(
        &["drain", "actual ms", &drain_actual_ms.to_string()],
        &widths,
    );
    print_row(
        &[
            "retry (10% faults)",
            "success",
            &format!("{success_rate:.4}"),
        ],
        &widths,
    );
    print_row(&["retry", "retries", &retries.to_string()], &widths);
    print_row(&["retry", "reconnects", &reconnects.to_string()], &widths);
    print_row(&["retry", "recoveries", &recoveries.to_string()], &widths);

    assert!(
        drain_actual_ms <= drain_config_ms,
        "cooperative drain overran its deadline: {drain_actual_ms} > {drain_config_ms} ms"
    );

    let host = tabsketch_bench::host_json();
    let json = format!(
        "{{\n  \"bench\": \"resilience\",\n  \"host\": {host},\n  \"shed_attempts\": {},\n  \
         \"shed_count\": {shed_count},\n  \"shed_p50_us\": {shed_p50},\n  \
         \"shed_p99_us\": {shed_p99},\n  \"drain_config_ms\": {drain_config_ms},\n  \
         \"drain_actual_ms\": {drain_actual_ms},\n  \
         \"retry_fault_per_mille\": 100,\n  \"retry_requests\": {reqs},\n  \
         \"retry_successes\": {successes},\n  \"retry_success_rate\": {success_rate:.6},\n  \
         \"retries_taken\": {retries},\n  \"reconnects\": {reconnects},\n  \
         \"recoveries\": {recoveries}\n}}\n",
        shed_lat.len(),
    );
    std::fs::write("BENCH_resilience.json", &json).expect("write BENCH_resilience.json");
    println!(
        "\ndone in {}; wrote BENCH_resilience.json",
        secs(t_all.elapsed())
    );
    let _ = std::fs::remove_dir_all(&fx.dir);
}
