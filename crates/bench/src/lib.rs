//! # tabsketch-bench
//!
//! The benchmark harness that regenerates every figure of the paper's
//! evaluation (see DESIGN.md for the experiment index):
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `fig2` | Figure 2 — timing & accuracy of sketched L1/L2 distances vs object size |
//! | `fig3` | Figure 3 — 20-means timing and quality across p |
//! | `fig4a` | Figure 4a — k-means timing as k varies |
//! | `fig4b` | Figure 4b — recovering a known clustering as p varies |
//! | `fig5`  | Figure 5 — case-study cluster map of one day, p = 2.0 vs 0.25 |
//! | `ablation_sketch_size` | sketch width vs accuracy trade-off |
//! | `ablation_compound` | compound (pooled) vs direct sketch quality |
//! | `baseline_dft` | DFT-coefficient baseline vs stable sketches across p |
//!
//! Criterion microbenches (`cargo bench`) cover the FFT substrate, the
//! all-subtable build (FFT vs naive), single distance estimates, and
//! end-to-end k-means.
//!
//! Binaries accept `--quick` for a reduced workload and `--full` for
//! paper-scale runs; the default sits in between and completes in seconds
//! to a few minutes per figure on a laptop.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

use tabsketch_cluster::Embedding;
use tabsketch_table::{norms, Rect, Table, TileGrid};

/// Workload scale selected on the command line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Tiny workloads for smoke-testing the harness.
    Quick,
    /// The default laptop-friendly scale.
    Default,
    /// Paper-scale workloads (minutes per figure).
    Full,
}

impl Scale {
    /// Parses `--quick` / `--full` from the process arguments.
    pub fn from_args() -> Scale {
        let mut scale = Scale::Default;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--quick" => scale = Scale::Quick,
                "--full" => scale = Scale::Full,
                "--help" | "-h" => {
                    println!("usage: [--quick | --full]");
                    std::process::exit(0);
                }
                other => {
                    eprintln!("ignoring unknown argument: {other}");
                }
            }
        }
        scale
    }

    /// Picks one of three values by scale.
    pub fn pick<T: Copy>(self, quick: T, default: T, full: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Default => default,
            Scale::Full => full,
        }
    }
}

/// A JSON object describing the host a benchmark ran on: available
/// parallelism, OS, and CPU architecture. Embedded as the `"host"` block
/// in every `BENCH_*.json` so perf numbers from different containers can
/// be compared without guessing the core count (a non-scaling parallel
/// build means something very different on 2 cores than on 16).
pub fn host_json() -> String {
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(0);
    format!(
        "{{\"parallelism\": {parallelism}, \"os\": \"{}\", \"arch\": \"{}\"}}",
        std::env::consts::OS,
        std::env::consts::ARCH
    )
}

/// Times a closure, returning its result and the wall-clock duration.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Formats a duration as fractional seconds with millisecond resolution.
pub fn secs(d: Duration) -> String {
    format!("{:.3}s", d.as_secs_f64())
}

/// Prints a header row followed by a separator, padding each column to
/// `widths`.
pub fn print_header(cols: &[&str], widths: &[usize]) {
    print_row(cols, widths);
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
    println!("{}", "-".repeat(total));
}

/// Prints one padded row.
pub fn print_row(cols: &[&str], widths: &[usize]) {
    let mut line = String::new();
    for (i, (col, width)) in cols.iter().zip(widths).enumerate() {
        if i > 0 {
            line.push_str("  ");
        }
        line.push_str(&format!("{col:>width$}"));
    }
    println!("{line}");
}

/// Deterministic pseudo-random rectangle anchors for pair-sampling
/// experiments (xorshift; independent of the data seeds).
pub struct AnchorSampler {
    state: u64,
    max_row: usize,
    max_col: usize,
}

impl AnchorSampler {
    /// Anchors for `tile_rows × tile_cols` windows inside a table.
    ///
    /// # Panics
    ///
    /// Panics when the tile does not fit in the table.
    pub fn new(table: &Table, tile_rows: usize, tile_cols: usize, seed: u64) -> Self {
        assert!(tile_rows <= table.rows() && tile_cols <= table.cols());
        Self {
            state: seed | 1,
            max_row: table.rows() - tile_rows + 1,
            max_col: table.cols() - tile_cols + 1,
        }
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    /// The next anchor `(row, col)`.
    pub fn next_anchor(&mut self) -> (usize, usize) {
        let r = (self.next_u64() % self.max_row as u64) as usize;
        let c = (self.next_u64() % self.max_col as u64) as usize;
        (r, c)
    }
}

/// The exact per-object spread distances of a clustering measured in the
/// **exact** Lp metric: for each cluster, the centroid is the mean tile of
/// its members, and each member contributes its exact distance to that
/// centroid. Used to score sketched clusterings fairly (Definition 11
/// requires both clusterings be measured with the same metric).
///
/// Returns the per-object distances (feed them to
/// [`tabsketch_eval::Spreads::from_assignments`]).
///
/// # Panics
///
/// Panics when `assignments.len() != grid.len()` or a label is `>= k`.
pub fn exact_member_distances(
    table: &Table,
    grid: &TileGrid,
    assignments: &[usize],
    k: usize,
    p: f64,
) -> Vec<f64> {
    assert_eq!(assignments.len(), grid.len());
    let tile_len = grid.tile_rows() * grid.tile_cols();
    let mut centroids = vec![vec![0.0f64; tile_len]; k];
    let mut counts = vec![0usize; k];
    for (i, rect) in grid.iter().enumerate() {
        let label = assignments[i];
        assert!(label < k, "label {label} out of range");
        counts[label] += 1;
        let view = table.view(rect).expect("grid tiles lie inside the table");
        for (slot, v) in centroids[label].iter_mut().zip(view.values()) {
            *slot += v;
        }
    }
    for (centroid, &count) in centroids.iter_mut().zip(&counts) {
        if count > 0 {
            let inv = 1.0 / count as f64;
            centroid.iter_mut().for_each(|v| *v *= inv);
        }
    }
    grid.iter()
        .enumerate()
        .map(|(i, rect)| {
            let view = table.view(rect).expect("grid tiles lie inside the table");
            let tile: Vec<f64> = view.values().collect();
            norms::lp_distance_slices(&tile, &centroids[assignments[i]], p)
        })
        .collect()
}

/// Renders a tile-grid clustering as ASCII art in the style of the
/// paper's Figure 5: one character per tile, grid rows down the page,
/// the largest cluster rendered as blank space "to aid visibility".
///
/// # Panics
///
/// Panics when `assignments.len() != grid_rows * grid_cols`.
pub fn render_cluster_map(assignments: &[usize], grid_rows: usize, grid_cols: usize) -> String {
    assert_eq!(assignments.len(), grid_rows * grid_cols);
    let k = assignments.iter().copied().max().map_or(0, |m| m + 1);
    let mut counts = vec![0usize; k];
    for &a in assignments {
        counts[a] += 1;
    }
    let largest = counts
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .map(|(i, _)| i)
        .unwrap_or(0);
    const GLYPHS: &[u8] = b"#@%*+=o:~-^'`";
    let mut out = String::with_capacity(grid_rows * (grid_cols + 1));
    for r in 0..grid_rows {
        for c in 0..grid_cols {
            let a = assignments[r * grid_cols + c];
            if a == largest {
                out.push(' ');
            } else {
                // Stable glyph per cluster id (skipping the largest).
                let idx = if a > largest { a - 1 } else { a };
                out.push(GLYPHS[idx % GLYPHS.len()] as char);
            }
        }
        out.push('\n');
    }
    out
}

/// A pair of window anchors `((row, col), (row, col))` to be compared.
pub type AnchorPair = ((usize, usize), (usize, usize));

/// Exact Lp distances for a batch of equal-size window pairs — the
/// "exact computation" cost the timing figures scan against.
pub fn exact_pair_distances(
    table: &Table,
    pairs: &[AnchorPair],
    tile_rows: usize,
    tile_cols: usize,
    p: f64,
) -> Vec<f64> {
    pairs
        .iter()
        .map(|&(a, b)| {
            let va = table
                .view(Rect::new(a.0, a.1, tile_rows, tile_cols))
                .expect("anchor sampled in range");
            let vb = table
                .view(Rect::new(b.0, b.1, tile_rows, tile_cols))
                .expect("anchor sampled in range");
            norms::lp_distance_views(&va, &vb, p).expect("equal shapes by construction")
        })
        .collect()
}

/// Scenario labels used across the clustering figures.
pub const SCENARIOS: [&str; 3] = ["sketch-precomputed", "sketch-on-demand", "exact"];

/// Runs k-means with the harness's standard configuration, returning the
/// result and the wall time.
pub fn run_kmeans_timed<E: Embedding>(
    embedding: &E,
    k: usize,
    seed: u64,
) -> (tabsketch_cluster::KMeansResult, Duration) {
    let km = tabsketch_cluster::KMeans::new(tabsketch_cluster::KMeansConfig {
        k,
        max_iters: 60,
        seed,
        init: tabsketch_cluster::InitMethod::Random,
    })
    .expect("valid k-means configuration");
    time(|| km.run(embedding).expect("enough objects for k clusters"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_block_is_well_formed() {
        let host = host_json();
        assert!(host.starts_with('{') && host.ends_with('}'), "{host}");
        for key in ["\"parallelism\":", "\"os\":", "\"arch\":"] {
            assert!(host.contains(key), "host block missing {key}: {host}");
        }
    }

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Quick.pick(1, 2, 3), 1);
        assert_eq!(Scale::Default.pick(1, 2, 3), 2);
        assert_eq!(Scale::Full.pick(1, 2, 3), 3);
    }

    #[test]
    fn anchor_sampler_in_range() {
        let t = Table::zeros(50, 70).unwrap();
        let mut s = AnchorSampler::new(&t, 10, 10, 99);
        for _ in 0..1000 {
            let (r, c) = s.next_anchor();
            assert!(r <= 40 && c <= 60);
        }
    }

    #[test]
    fn render_map_blanks_largest() {
        // Cluster 0 has 3 tiles (largest, blank), cluster 1 has 1 (glyph).
        let map = render_cluster_map(&[0, 0, 0, 1], 2, 2);
        let lines: Vec<&str> = map.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].trim().is_empty());
        assert_eq!(lines[1].trim(), "#");
    }

    #[test]
    fn exact_member_distances_zero_for_uniform_cluster() {
        let t = Table::from_fn(4, 4, |_, _| 3.0).unwrap();
        let grid = TileGrid::new(4, 4, 2, 2).unwrap();
        let d = exact_member_distances(&t, &grid, &[0, 0, 0, 0], 1, 1.0);
        assert!(d.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn exact_member_distances_match_manual() {
        // Two 1x1 tiles in one cluster: centroid is their mean.
        let t = Table::new(1, 2, vec![1.0, 3.0]).unwrap();
        let grid = TileGrid::new(1, 2, 1, 1).unwrap();
        let d = exact_member_distances(&t, &grid, &[0, 0], 1, 1.0);
        assert_eq!(d, vec![1.0, 1.0]);
    }

    #[test]
    fn pair_distance_helper() {
        let t = Table::from_fn(4, 4, |r, c| (r * 4 + c) as f64).unwrap();
        let d = exact_pair_distances(&t, &[((0, 0), (2, 2))], 2, 2, 1.0);
        // Windows [[0,1],[4,5]] and [[10,11],[14,15]]: |diff| = 10 each.
        assert_eq!(d, vec![40.0]);
    }
}
