//! The collection subcommands: `manysketch`, `pairwise`, `manysearch`.
//!
//! All three drive a manifest-named corpus of tables rather than a
//! single file: `manysketch` builds every member's sketch store and
//! whole-table signature under one shared memory budget, `pairwise`
//! streams similar member pairs without materializing the dense matrix,
//! and `manysearch` runs a query table's tiles against every member's
//! store (through its LSH index with `--index`). Manifest problems are
//! their own failure class (exit 7, see [`crate::error`]).

use std::io::Write;

use tabsketch_cluster::{pairwise_sketches, ClusterError, IndexedEmbedding, PairwiseRow};
use tabsketch_core::{persist, CollectionSketcher, SketchParams, Sketcher, TabError};
use tabsketch_index::{median_abs_coordinate, persist as index_persist, LshIndex, LshParams};
use tabsketch_table::{Collection, Manifest, TileGrid};

use crate::args::Args;
use crate::commands::memory_budget;
use crate::error::CliError;

/// Loads `--manifest FILE`, surfacing parse problems as manifest errors
/// (exit 7) with the file in context.
fn load_manifest(args: &Args) -> Result<Manifest, CliError> {
    let path = args.require("manifest")?;
    Manifest::load(path).map_err(|e| CliError::from(e).in_context(format!("loading {path}")))
}

/// The sketch family shared by every collection command. All three must
/// agree on `--p/--k/--seed`: `pairwise` compares the signatures
/// `manysketch` wrote, and `manysearch` sketches its queries with the
/// family its corpus stores were built with.
fn collection_sketcher(args: &Args) -> Result<Sketcher, CliError> {
    let p: f64 = args.get_or("p", 1.0)?;
    let k: usize = args.get_or("k", 128)?;
    let seed: u64 = args.get_or("seed", 0)?;
    Ok(Sketcher::new(
        SketchParams::builder().p(p).k(k).seed(seed).build()?,
    )?)
}

/// Opens `--output FILE` (stdout when absent) for CSV rows.
fn open_output(args: &Args) -> Result<Box<dyn Write>, CliError> {
    match args.get("output") {
        None => Ok(Box::new(std::io::stdout())),
        Some(path) => {
            let file = std::fs::File::create(path).map_err(|e| {
                CliError::usage(format!("flag --output: cannot create {path}: {e}"))
            })?;
            Ok(Box::new(std::io::BufWriter::new(file)))
        }
    }
}

/// `manysketch --manifest FILE --tile RxC [--p P] [--k K] [--seed N]
/// [--threads N] [--memory-budget BYTES] [--index]`
///
/// Builds every member's all-subtable sketch store and whole-table
/// signature, writing them to the paths the manifest names (or
/// derives). Members share one residency budget: at most the
/// collection's LRU window of tables is resident, each holding a slice
/// of `--memory-budget`. With `--index`, each member's freshly written
/// store is additionally hashed into a banded LSH index at the tile
/// grain, saved beside it for `manysearch --index`.
pub fn manysketch(args: &Args) -> Result<(), CliError> {
    let manifest = load_manifest(args)?;
    let (tr, tc) = args.require_tile("tile")?;
    let budget = memory_budget(args)?;
    let default_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads: usize = args.get_or("threads", default_threads)?;
    let sketcher = collection_sketcher(args)?;
    let build_index = args.switch("index");
    let collection = Collection::open(manifest, budget);
    let report = CollectionSketcher::new(sketcher.clone(), tr, tc)?
        .sketch_collection(&collection, threads)?;
    for member in &report.members {
        match &member.error {
            Some(reason) => eprintln!("warning: member {:?} degraded: {reason}", member.name),
            None => println!(
                "sketched {:?}: store -> {}, signature -> {}",
                member.name,
                member.store_path.display(),
                member.signature_path.display()
            ),
        }
    }
    if build_index {
        for (member, entry) in report.members.iter().zip(collection.manifest().entries()) {
            if member.error.is_some() {
                continue;
            }
            let out = entry.index_path_or_default();
            index_member(args, &member.store_path, tr, tc, &out).map_err(|e| {
                e.in_context(format!("indexing {:?} -> {}", member.name, out.display()))
            })?;
            println!("indexed {:?} -> {}", member.name, out.display());
        }
    }
    let degraded = report.members.len() - report.succeeded();
    println!(
        "sketched {} of {} member(s) at {tr}x{tc}, k = {} ({} degraded)",
        report.succeeded(),
        report.members.len(),
        sketcher.k(),
        degraded
    );
    Ok(())
}

/// Hashes one member's tile-grain sketches into a saved LSH index.
///
/// The tile enumeration (anchors at multiples of the tile shape, in
/// row-major order) must match what `manysearch` reads from the store,
/// otherwise the index fails its coverage check there and the search
/// falls back to the linear scan.
fn index_member(
    args: &Args,
    store_path: &std::path::Path,
    tr: usize,
    tc: usize,
    out: &std::path::Path,
) -> Result<(), CliError> {
    let store = persist::load_store(store_path)?;
    let tiles_r = store.anchor_rows().div_ceil(tr);
    let tiles_c = store.anchor_cols().div_ceil(tc);
    let mut sketches = Vec::with_capacity(tiles_r * tiles_c);
    for r in 0..tiles_r {
        for c in 0..tiles_c {
            sketches.push(store.sketch_at(r * tr, c * tc)?);
        }
    }
    let refs: Vec<&[f64]> = sketches.iter().map(|s| s.values()).collect();
    let bands: usize = args.get_or("bands", 16)?;
    let rows: usize = args.get_or("rows", 4)?;
    let width = match args.get("width") {
        Some(raw) => raw
            .parse::<f64>()
            .map_err(|_| CliError::usage(format!("flag --width: cannot parse {raw:?}")))?,
        None => median_abs_coordinate(&refs).max(1.0),
    };
    let index_seed: u64 = args.get_or("index-seed", 17)?;
    let built = LshIndex::build(
        LshParams::new(bands, rows, width, index_seed)?,
        tr,
        tc,
        &refs,
    )?;
    index_persist::save_index(&built, out)?;
    Ok(())
}

/// `pairwise --manifest FILE [--threshold T] [--output FILE] [--p P]
/// [--k K] [--seed N] [--memory-budget BYTES]`
///
/// Streams member pairs whose signature similarity reaches
/// `--threshold` (default 0.9) as CSV rows
/// `i,j,name_i,name_j,distance,similarity`, loading signatures in
/// budget-sized blocks so peak residency stays within
/// `--memory-budget` regardless of corpus size. Signatures come from a
/// prior `manysketch` run over the same manifest and sketch family.
pub fn pairwise(args: &Args) -> Result<(), CliError> {
    let manifest = load_manifest(args)?;
    let threshold: f64 = args.get_or("threshold", 0.9)?;
    let budget = memory_budget(args)?;
    let sketcher = collection_sketcher(args)?;
    let mut out = open_output(args)?;
    writeln!(out, "i,j,name_i,name_j,distance,similarity")
        .map_err(|e| CliError::usage(format!("writing output: {e}")))?;
    let entries = manifest.entries();
    let load =
        |i: usize| -> Result<_, TabError> { persist::load_sketch(entries[i].signature_path()) };
    let emit = |row: PairwiseRow| -> Result<(), ClusterError> {
        writeln!(
            out,
            "{},{},{},{},{},{}",
            row.i, row.j, entries[row.i].name, entries[row.j].name, row.distance, row.similarity
        )
        .map_err(|e| ClusterError::Core(TabError::from(e)))
    };
    let stats = pairwise_sketches(manifest.len(), load, &sketcher, threshold, budget, emit)?;
    for &i in &stats.degraded {
        eprintln!(
            "warning: member {:?} degraded (signature unreadable); its pairs were pruned",
            entries[i].name
        );
    }
    eprintln!(
        "pairwise over {} member(s): {} row(s) at similarity >= {threshold}, \
         {} pair(s) pruned, block size {}",
        manifest.len(),
        stats.emitted,
        stats.pruned,
        stats.block
    );
    Ok(())
}

/// `manysearch --manifest FILE --query TABLE --tile RxC [--knn K]
/// [--index] [--output FILE] [--p P] [--k K] [--seed N]
/// [--memory-budget BYTES]`
///
/// Sketches the query table's tiles and searches them against every
/// corpus member's store, emitting CSV rows
/// `query,query_row,query_col,member,tile_row,tile_col,distance` — each
/// query tile's `--knn` nearest tiles per member. With `--index` (bare:
/// the per-member index paths come from the manifest), candidate
/// retrieval goes through each member's LSH index; a missing or
/// mismatched index falls back to the exact sketched scan, counted in
/// `index.fallbacks`.
pub fn manysearch(args: &Args) -> Result<(), CliError> {
    if args.get("index").is_some() {
        return Err(CliError::usage(
            "--index takes no value here: per-member index paths come from the manifest",
        ));
    }
    let manifest = load_manifest(args)?;
    let query_path = args.require("query")?;
    let (tr, tc) = args.require_tile("tile")?;
    let k: usize = args.get_or("knn", 1)?;
    let use_index = args.switch("index");
    let budget = memory_budget(args)?;
    let sketcher = collection_sketcher(args)?;
    let table = crate::commands::load_table(query_path, budget)?;
    let grid = TileGrid::new(table.rows(), table.cols(), tr, tc)?;
    let embedding = IndexedEmbedding::build(&table, &grid, sketcher.clone())?;
    let collection = Collection::open(manifest, budget);
    let report = tabsketch_cluster::manysearch(
        &collection,
        &sketcher,
        embedding.sketches(),
        tr,
        tc,
        k,
        use_index,
    )?;
    let mut out = open_output(args)?;
    let write = |out: &mut dyn Write| -> std::io::Result<()> {
        writeln!(
            out,
            "query,query_row,query_col,member,tile_row,tile_col,distance"
        )?;
        for hit in &report.hits {
            let rect = grid.tile(hit.query).expect("query index in range");
            writeln!(
                out,
                "{},{},{},{},{},{},{}",
                hit.query, rect.row, rect.col, hit.member, hit.tile_row, hit.tile_col, hit.distance
            )?;
        }
        Ok(())
    };
    write(&mut out).map_err(|e| CliError::usage(format!("writing output: {e}")))?;
    for (name, reason) in &report.degraded {
        eprintln!("warning: member {name:?} degraded: {reason}");
    }
    eprintln!(
        "manysearch: {} quer(ies) x {} member(s) -> {} hit(s) ({} member(s) degraded)",
        grid.len(),
        collection.len(),
        report.hits.len(),
        report.degraded.len()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands;

    fn parse(line: &str) -> Args {
        Args::parse(line.split_whitespace().map(String::from)).unwrap()
    }

    fn temp_dir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "tabsketch-cli-collections-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// A three-member corpus: two identical sixregion tables (a near-
    /// duplicate pair for `pairwise`) and one callvol table with a very
    /// different value profile.
    fn corpus(dir: &std::path::Path) -> std::path::PathBuf {
        for (name, line) in [
            (
                "a",
                "generate sixregion --out {} --rows 48 --cols 48 --seed 5",
            ),
            (
                "b",
                "generate sixregion --out {} --rows 48 --cols 48 --seed 5",
            ),
            (
                "c",
                "generate callvol --out {} --stations 48 --slots 48 --days 1 --seed 9",
            ),
        ] {
            let path = dir.join(format!("{name}.tsb"));
            commands::generate(&parse(&line.replace("{}", path.to_str().unwrap()))).unwrap();
        }
        let manifest = dir.join("corpus.manifest");
        // Mixed slot styles: derived store, explicit store, bare index
        // slot; all paths relative to the manifest's directory.
        std::fs::write(
            &manifest,
            "# three-member test corpus\n\
             a=a.tsb\n\
             b=b.tsb:b_store.tsks\n\
             c=c.tsb::c_custom.tix\n",
        )
        .unwrap();
        manifest
    }

    #[test]
    fn manysketch_pairwise_manysearch_flow() {
        let dir = temp_dir();
        let manifest = corpus(&dir);
        let m = manifest.to_str().unwrap();

        manysketch(&parse(&format!(
            "manysketch --manifest {m} --tile 8x8 --k 64 --threads 2 --index"
        )))
        .unwrap();
        for artifact in [
            "a.tsks",
            "a.tsk",
            "a.tix",
            "b_store.tsks",
            "b_store.tsk",
            "c.tsks",
            "c_custom.tix",
        ] {
            assert!(dir.join(artifact).exists(), "missing {artifact}");
        }

        // The identical pair (and only it) clears a 0.9 threshold.
        let pairs_csv = dir.join("pairs.csv");
        pairwise(&parse(&format!(
            "pairwise --manifest {m} --threshold 0.9 --k 64 --output {}",
            pairs_csv.display()
        )))
        .unwrap();
        let rows = std::fs::read_to_string(&pairs_csv).unwrap();
        let mut lines = rows.lines();
        assert_eq!(
            lines.next().unwrap(),
            "i,j,name_i,name_j,distance,similarity"
        );
        let data: Vec<&str> = lines.collect();
        assert_eq!(data.len(), 1, "expected only the duplicate pair: {rows}");
        assert!(data[0].starts_with("0,1,a,b,"), "{rows}");

        // Querying with member a itself: every query tile has an exact
        // match in member a (distance ~0), and the indexed run emits
        // byte-identical output to the linear scan.
        let (linear, indexed) = (dir.join("linear.csv"), dir.join("indexed.csv"));
        let query = dir.join("a.tsb");
        manysearch(&parse(&format!(
            "manysearch --manifest {m} --query {} --tile 8x8 --knn 1 --k 64 --output {}",
            query.display(),
            linear.display()
        )))
        .unwrap();
        manysearch(&parse(&format!(
            "manysearch --manifest {m} --query {} --tile 8x8 --knn 1 --k 64 --index --output {}",
            query.display(),
            indexed.display()
        )))
        .unwrap();
        let linear_rows = std::fs::read_to_string(&linear).unwrap();
        let indexed_rows = std::fs::read_to_string(&indexed).unwrap();
        assert_eq!(linear_rows, indexed_rows);
        // 36 query tiles x 3 members x k=1, plus the header.
        assert_eq!(linear_rows.lines().count(), 1 + 36 * 3);
        for line in linear_rows.lines().skip(1).filter(|l| l.contains(",a,")) {
            let d: f64 = line.rsplit(',').next().unwrap().parse().unwrap();
            // Store sketches and query sketches accumulate dot products
            // in different orders, so "exact" means last-ULP noise here.
            assert!(d.abs() < 1e-6, "self-hit should be exact: {line}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_problems_exit_with_code_7() {
        let dir = temp_dir();
        let manifest = dir.join("dup.manifest");
        std::fs::write(&manifest, "a=a.tsb\na=other.tsb\n").unwrap();
        let err = manysketch(&parse(&format!(
            "manysketch --manifest {} --tile 8x8",
            manifest.display()
        )))
        .unwrap_err();
        assert_eq!(err.exit_code(), 7, "{err}");
        assert!(err.to_string().contains("line 2"), "{err}");

        let empty = dir.join("empty.manifest");
        std::fs::write(&empty, "# nothing here\n").unwrap();
        let err =
            pairwise(&parse(&format!("pairwise --manifest {}", empty.display()))).unwrap_err();
        assert_eq!(err.exit_code(), 7, "{err}");

        // A missing manifest file is an I/O problem, not a grammar one.
        let err = manysketch(&parse(&format!(
            "manysketch --manifest {} --tile 8x8",
            dir.join("nosuch.manifest").display()
        )))
        .unwrap_err();
        assert_eq!(err.exit_code(), 3, "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn degraded_members_do_not_abort_the_run() {
        let dir = temp_dir();
        let manifest = corpus(&dir);
        let m = manifest.to_str().unwrap();
        // Member b's table vanishes before the build: it degrades, the
        // other two still sketch.
        std::fs::remove_file(dir.join("b.tsb")).unwrap();
        manysketch(&parse(&format!(
            "manysketch --manifest {m} --tile 8x8 --k 32 --threads 1"
        )))
        .unwrap();
        assert!(dir.join("a.tsks").exists());
        assert!(dir.join("c.tsks").exists());
        assert!(!dir.join("b_store.tsks").exists());

        // pairwise prunes b's pairs; a and c survive with no rows at
        // the 0.9 threshold (they are not similar).
        let csv = dir.join("pairs.csv");
        pairwise(&parse(&format!(
            "pairwise --manifest {m} --threshold 0.9 --k 32 --output {}",
            csv.display()
        )))
        .unwrap();
        assert_eq!(std::fs::read_to_string(&csv).unwrap().lines().count(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manysearch_usage_errors() {
        let err = manysearch(&parse(
            "manysearch --manifest m.txt --query q.tsb --tile 8x8 --index some.tix",
        ))
        .unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err}");
        let err = manysearch(&parse("manysearch --query q.tsb --tile 8x8")).unwrap_err();
        assert_eq!(err.exit_code(), 2, "missing --manifest: {err}");
    }
}
