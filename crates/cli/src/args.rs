//! Minimal dependency-free argument parsing for the CLI.
//!
//! Flags are `--name value` pairs after a subcommand; every accessor
//! reports missing/malformed values with the flag name so usage errors
//! are self-explanatory.

use std::collections::HashMap;

/// Parsed command line: a subcommand, positional arguments, and flags.
#[derive(Clone, Debug, Default)]
pub struct Args {
    /// The subcommand (first non-flag argument).
    pub command: String,
    /// Positional arguments after the subcommand.
    pub positional: Vec<String>,
    flags: HashMap<String, String>,
    /// Bare switches (`--flag` with no value).
    switches: Vec<String>,
}

/// Flags that never take a value.
const SWITCHES: &[&str] = &[
    "exact",
    "render",
    "csv",
    "help",
    "refine",
    "silhouette",
    "metrics",
    "trace-spans",
    "shutdown",
    "health",
];

/// Flags whose value is optional: with a following non-flag token they
/// behave like ordinary `--name value` flags, otherwise like switches.
/// `--index` is the one such flag — `knn --index day.tix` names an
/// index file, while the collection commands take a bare `--index` to
/// mean "use each member's manifest-derived index".
const OPTIONAL_VALUE: &[&str] = &["index"];

impl Args {
    /// Parses an iterator of arguments (excluding the program name).
    ///
    /// # Errors
    ///
    /// Returns a message when a value-taking flag is missing its value.
    pub fn parse<I: Iterator<Item = String>>(args: I) -> Result<Args, String> {
        let mut args = args.peekable();
        let mut out = Args::default();
        while let Some(arg) = args.next() {
            if let Some(name) = arg.strip_prefix("--") {
                if SWITCHES.contains(&name)
                    || (OPTIONAL_VALUE.contains(&name)
                        && args.peek().is_none_or(|next| next.starts_with("--")))
                {
                    out.switches.push(name.to_string());
                } else {
                    let value = args
                        .next()
                        .ok_or_else(|| format!("flag --{name} expects a value"))?;
                    out.flags.insert(name.to_string(), value);
                }
            } else if out.command.is_empty() {
                out.command = arg;
            } else {
                out.positional.push(arg);
            }
        }
        Ok(out)
    }

    /// Whether a bare switch was given.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// A required string flag.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing flag.
    pub fn require(&self, name: &str) -> Result<&str, String> {
        self.flags
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required flag --{name}"))
    }

    /// An optional string flag.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// An optional parsed flag with a default.
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed flag.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("flag --{name}: cannot parse {raw:?}")),
        }
    }

    /// A required parsed flag.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or malformed flag.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn require_parsed<T: std::str::FromStr>(&self, name: &str) -> Result<T, String> {
        let raw = self.require(name)?;
        raw.parse()
            .map_err(|_| format!("flag --{name}: cannot parse {raw:?}"))
    }

    /// Parses a `R,C,H,W` rectangle flag.
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed flag.
    pub fn require_rect(&self, name: &str) -> Result<(usize, usize, usize, usize), String> {
        let raw = self.require(name)?;
        let parts: Vec<&str> = raw.split(',').collect();
        if parts.len() != 4 {
            return Err(format!(
                "flag --{name}: expected ROW,COL,ROWS,COLS, got {raw:?}"
            ));
        }
        let parse = |s: &str| -> Result<usize, String> {
            s.trim()
                .parse()
                .map_err(|_| format!("flag --{name}: bad number {s:?}"))
        };
        Ok((
            parse(parts[0])?,
            parse(parts[1])?,
            parse(parts[2])?,
            parse(parts[3])?,
        ))
    }

    /// Parses an `RxC` tile-size flag.
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed flag.
    pub fn require_tile(&self, name: &str) -> Result<(usize, usize), String> {
        let raw = self.require(name)?;
        let (r, c) = raw
            .split_once('x')
            .ok_or_else(|| format!("flag --{name}: expected ROWSxCOLS, got {raw:?}"))?;
        let rows = r
            .trim()
            .parse()
            .map_err(|_| format!("flag --{name}: bad rows {r:?}"))?;
        let cols = c
            .trim()
            .parse()
            .map_err(|_| format!("flag --{name}: bad cols {c:?}"))?;
        Ok((rows, cols))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(line: &str) -> Result<Args, String> {
        Args::parse(line.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_command_flags_and_positionals() {
        let a = parse("cluster data.tsb --k 6 --p 0.5 --render").unwrap();
        assert_eq!(a.command, "cluster");
        assert_eq!(a.positional, vec!["data.tsb"]);
        assert_eq!(a.require("k").unwrap(), "6");
        assert_eq!(a.get_or::<f64>("p", 1.0).unwrap(), 0.5);
        assert!(a.switch("render"));
        assert!(!a.switch("exact"));
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(parse("distance file --p").is_err());
    }

    #[test]
    fn defaults_and_requirements() {
        let a = parse("generate callvol").unwrap();
        assert_eq!(a.get_or::<u64>("seed", 7).unwrap(), 7);
        assert!(a.require("out").is_err());
        assert!(a.get("out").is_none());
    }

    #[test]
    fn malformed_values_are_reported() {
        let a = parse("x --k banana").unwrap();
        let err = a.require_parsed::<usize>("k").unwrap_err();
        assert!(err.contains("--k"), "{err}");
        assert!(a.get_or::<usize>("k", 1).is_err());
    }

    #[test]
    fn index_takes_an_optional_value() {
        // With a following non-flag token, --index is a value flag.
        let a = parse("knn t.tsb --index day.tix --count 3").unwrap();
        assert_eq!(a.get("index"), Some("day.tix"));
        assert!(!a.switch("index"));
        // Bare before another flag, or at the end, it is a switch.
        let a = parse("manysearch --index --knn 2").unwrap();
        assert!(a.switch("index"));
        assert!(a.get("index").is_none());
        assert_eq!(a.require("knn").unwrap(), "2");
        let a = parse("manysketch --manifest m.txt --index").unwrap();
        assert!(a.switch("index"));
    }

    #[test]
    fn rect_and_tile_parsing() {
        let a = parse("d --rect 1,2,3,4 --tiles 8x16").unwrap();
        assert_eq!(a.require_rect("rect").unwrap(), (1, 2, 3, 4));
        assert_eq!(a.require_tile("tiles").unwrap(), (8, 16));
        let bad = parse("d --rect 1,2,3 --tiles 8y16").unwrap();
        assert!(bad.require_rect("rect").is_err());
        assert!(bad.require_tile("tiles").is_err());
    }
}
