//! `tabsketch-cli` — sketch-based Lp distance mining from the command
//! line.
//!
//! ```text
//! tabsketch-cli generate callvol --out day.tsb --stations 512 --days 1
//! tabsketch-cli info day.tsb
//! tabsketch-cli distance day.tsb --rect 0,0,64,64 --rect2 128,40,64,64 --p 0.5
//! tabsketch-cli sketch day.tsb --tile 32x32 --k 128 --p 1.0 --out day.tsks
//! tabsketch-cli query day.tsks --at 0,0 --at2 100,40 --table day.tsb
//! tabsketch-cli update day.tsb --cell 3,40,125 --sketch-store day.tsks
//! tabsketch-cli cluster day.tsb --tiles 32x144 --k 8 --p 0.5 --render
//! tabsketch-cli index build day.tsb --tiles 32x144 --out day.tix
//! tabsketch-cli knn day.tsb --tiles 32x144 --query 0 --index day.tix
//! tabsketch-cli serve day.tsb --sketch-store day.tsks --addr 127.0.0.1:7878
//! tabsketch-cli rquery --addr 127.0.0.1:7878 --store day --at 0,0 --at2 100,40
//! ```

mod args;
mod collections;
mod commands;
mod error;
mod serving;

use args::Args;
use error::CliError;

fn main() {
    let parsed = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(msg) => {
            let e = CliError::usage(msg);
            eprintln!("error: {e}");
            std::process::exit(e.exit_code());
        }
    };
    if parsed.command.is_empty() || parsed.switch("help") || parsed.command == "help" {
        print_usage();
        return;
    }
    let trace = parsed.switch("trace-spans");
    let obs_on = obs_requested(&parsed);
    let subscriber = if obs_on {
        // Pre-register every crate's schema so the exit snapshot shows
        // the full key set even for counters this run never touched.
        tabsketch_fft::register_metrics();
        tabsketch_table::register_metrics();
        tabsketch_core::register_metrics();
        tabsketch_cluster::register_metrics();
        tabsketch_index::register_metrics();
        tabsketch_serve::register_metrics();
        tabsketch_obs::RegistrySubscriber::install(trace)
    } else {
        None
    };
    let result = match parsed.command.as_str() {
        "generate" => commands::generate(&parsed),
        "info" => commands::info(&parsed),
        "distance" => commands::distance(&parsed),
        "sketch" => commands::sketch(&parsed),
        "query" => commands::query(&parsed),
        "cluster" => commands::cluster(&parsed),
        "knn" => commands::knn(&parsed),
        "index" => commands::index(&parsed),
        "pairs" => commands::pairs(&parsed),
        "manysketch" => collections::manysketch(&parsed),
        "pairwise" => collections::pairwise(&parsed),
        "manysearch" => collections::manysearch(&parsed),
        "update" => commands::update(&parsed),
        "serve" => serving::serve(&parsed),
        "ping" => serving::ping(&parsed),
        "rquery" => serving::rquery(&parsed),
        other => Err(CliError::usage(format!(
            "unknown command {other:?} (try `tabsketch-cli help`)"
        ))),
    };
    if obs_on {
        emit_observability(&parsed, subscriber);
    }
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(e.exit_code());
    }
}

/// Whether this invocation wants local instrumentation. `ping --metrics`
/// is excluded: there the switch asks the *server* for its counters.
fn obs_requested(parsed: &Args) -> bool {
    let local_metrics = parsed.switch("metrics") && parsed.command != "ping";
    local_metrics || parsed.switch("trace-spans") || parsed.get("metrics-out").is_some()
}

/// Prints the exit snapshot: human-readable registry to stderr, JSON to
/// `--metrics-out FILE` when given, and the span trace under
/// `--trace-spans`.
fn emit_observability(
    parsed: &Args,
    subscriber: Option<&'static tabsketch_obs::RegistrySubscriber>,
) {
    let snap = tabsketch_obs::global().snapshot();
    eprint!("{snap}");
    if let Some(path) = parsed.get("metrics-out") {
        if let Err(e) = std::fs::write(path, snap.to_json()) {
            eprintln!("error: cannot write metrics to {path}: {e}");
        }
    }
    if parsed.switch("trace-spans") {
        if let Some(sub) = subscriber {
            eprint!("{}", sub.render_trace());
        }
    }
}

fn print_usage() {
    println!(
        "tabsketch-cli — approximate Lp distance mining of tabular data

USAGE:
  tabsketch-cli <COMMAND> [ARGS]

COMMANDS:
  generate <callvol|sixregion|iptraffic>
      --out FILE [--csv] [--seed N]
      callvol:   [--stations N] [--slots N] [--days N]
      sixregion: [--rows N] [--cols N]
      iptraffic: [--destinations N] [--slots N] [--days N]

  info FILE
      Shape and value statistics of a stored table (.tsb binary or .csv).

  distance FILE --rect R,C,H,W --rect2 R,C,H,W [--p P]
      [--k K] [--seed N] [--exact]
      Sketched (default) or exact Lp distance between two equal-shape
      regions.

  sketch FILE --tile RxC --out STORE [--p P] [--k K] [--seed N]
      Precompute sketches of every RxC window into a reusable store.

  query STORE --at R,C --at2 R,C [--table FILE] [--index IDX]
      O(k) distance estimate between two windows of a saved store.
      With --table, damaged store entries degrade to on-demand
      sketches of the raw table instead of failing; if the store file
      itself is unreadable, add --tile RxC (and optionally --p/--k/
      --seed) to recover the window shape. --index (needs --table)
      loads a candidate index beside the store, exactly as the daemon
      would; a damaged index warns and degrades instead of failing.

  cluster FILE --tiles RxC [--k K] [--p P] [--sketch-k K] [--seed N]
      [--store STORE] [--exact] [--render] [--silhouette]
      k-means over the table's tiles on sketches (default) or exact
      distances; --store reuses a precomputed sketch store through a
      degradation oracle (per-tier counts reported, damaged entries
      re-sketched on demand); --render prints an ASCII cluster map,
      --silhouette a mean silhouette score.

  knn FILE --tiles RxC --query N [--count K] [--p P] [--sketch-k K]
      [--index IDX] [--exact]
      Nearest tiles to a query tile. --index restricts the scan to LSH
      candidates from a prebuilt .tix file (see `index build`); an
      unreadable or mismatched index warns and falls back to the full
      scan with bit-identical results.

  index build TABLE --tiles RxC --out IDX [--p P] [--sketch-k K]
      [--seed N] [--bands B] [--rows R] [--width W] [--index-seed N]
      Hash every tile's sketch into a banded p-stable LSH index and
      save it as a checksummed .tix file for `knn --index`, `query
      --index`, and `serve --index`. Defaults: 16 bands x 4 rows;
      bucket width from the median absolute sketch coordinate. Build
      and query must share --p/--sketch-k/--seed.

  pairs FILE --tiles RxC [--count N] [--p P] [--sketch-k K] [--refine] [--exact]
      Most similar tile pairs; --refine re-ranks a sketched shortlist
      with exact distances.

  manysketch --manifest FILE --tile RxC [--p P] [--k K] [--seed N]
      [--threads N] [--memory-budget BYTES] [--index]
      Sketch every table of a manifest-named collection: each member
      gets an all-subtable store and a whole-table signature, written
      to the paths its manifest line names (or derives). Members share
      one residency budget — only the collection's LRU window of
      tables is resident at once. Builds are work-stolen across
      --threads workers at the (table x unit) grain. With --index,
      each member's store is also hashed into a .tix candidate index
      ([--bands B] [--rows R] [--width W] [--index-seed N]).
      A manifest line is NAME=TABLE[:STORE[:INDEX]]; blank lines and
      `#` comments are skipped; relative paths resolve against the
      manifest's directory.

  pairwise --manifest FILE [--threshold T] [--output FILE] [--p P]
      [--k K] [--seed N] [--memory-budget BYTES]
      Stream member pairs whose signature similarity reaches
      --threshold (default 0.9) as CSV `i,j,name_i,name_j,distance,
      similarity` rows, without materializing the N x N matrix:
      signatures load in blocks sized to half of --memory-budget.
      Unreadable signatures degrade their member (pairs pruned, run
      continues).

  manysearch --manifest FILE --query TABLE --tile RxC [--knn K]
      [--index] [--output FILE] [--p P] [--k K] [--seed N]
      [--memory-budget BYTES]
      Search the query table's tiles against every member's sketch
      store: CSV `query,query_row,query_col,member,tile_row,tile_col,
      distance` rows, each query tile's --knn nearest per member.
      Bare --index routes candidate retrieval through each member's
      manifest-derived .tix index; a missing or mismatched index falls
      back to the exact sketched scan (counted in index.fallbacks)
      with identical results.

  update TABLE (--cell R,C,DELTA | --row R --deltas V,... |
      --rect R,C,H,W (--deltas V,... | --fill X))
      [--out FILE] [--sketch-store STORE] [--store-out FILE]
      Apply an additive delta to a stored table (in place, or to
      --out). Deltas fold linearly into sketches, so --sketch-store
      updates a precomputed .tsks store without a rebuild. With
      --addr HOST:PORT --store NAME the delta goes to a running
      daemon instead: its resident table is patched, its store
      folded, overlapping cached sketches invalidated, and the
      store's epoch bumped (visible in `ping`/`ping --health`).
      A served candidate index goes stale on update: k-NN falls
      back to the linear scan until `index build` + restart.

  serve TABLE [--sketch-store STORE] [--index IDX] [--name NAME]
      [--addr HOST:PORT] [--workers N] [--shards N] [--cache-capacity N]
      [--p P] [--k K] [--seed N] [--port-file FILE] [--max-pending N]
      [--drain-ms MS]
      Keep a table (and optionally its sketch store and candidate
      index) resident behind a TCP daemon answering distance, batch,
      sketch, and k-NN queries; with --index, k-NN queries retrieve
      LSH candidates instead of scanning every tile, falling back to
      the full scan whenever the index cannot answer. Serve several
      tables at once with --stores NAME=TABLE[:STORE[:INDEX]],...
      Default address 127.0.0.1:7878; --addr ...:0 picks a free port
      (written to --port-file). Runs until `ping --shutdown`, then
      drains: in-flight requests finish (up to --drain-ms, default
      2000), latecomers get typed `draining` frames. --max-pending
      (default 64) bounds the connection queue; beyond it connections
      are shed with `overloaded` frames carrying a retry-after hint.
      With --metrics-out FILE the final drain/shed/panic counters are
      written as JSON on shutdown. `serve --manifest FILE` loads the
      whole fleet from a collection manifest instead: every member is
      served under its manifest name, with --memory-budget split
      evenly across members.

  ping --addr HOST:PORT [--metrics | --health | --shutdown]
      [--deadline MS] [--retries N] [--retry-budget-ms MS]
      Round-trip a ping and list the served stores; --metrics prints
      the server's request/latency/tier counters; --health reports
      ready/draining/degraded plus per-store tier counters (answered
      even mid-drain); --shutdown asks the server to drain and exit.

  rquery --addr HOST:PORT --store NAME --at R,C (--at2 R,C | --knn N)
      [--tile RxC] [--deadline MS] [--retries N] [--retry-budget-ms MS]
      Query a running server: distance between two windows, or the N
      nearest tiles. Window shape defaults to the store's precomputed
      tile; --deadline bounds the request server-side. --retries N
      resends idempotent requests up to N times on transient failures
      (broken connections, overload, drain) with exponential backoff,
      within --retry-budget-ms (default 10000) total.

OBSERVABILITY (any command):
  --metrics            print a metrics-registry snapshot (fft/core/
                       cluster/index/serve keys) to stderr on exit
  --metrics-out FILE   also write the snapshot as JSON to FILE
  --trace-spans        time hierarchical spans and print the trace
  (`ping --metrics` is unchanged: it fetches the *server's* counters.)

EXIT CODES:
  0 success; 2 usage error; 3 table-file error; 4 sketch/store error;
  5 mining error; 6 serving/protocol error; 7 malformed collection
  manifest. Remote error frames map to the same codes: table/sketch/
  mining frames exit 3/4/5, everything serving-specific (unknown
  store, deadline, overloaded, draining, shutting down, protocol
  damage) exits 6. Failures print one `error: ...` line to stderr.

Formats: .tsb (binary tables), .csv, .tsks (sketch stores),
.tsk (table signatures), .tix (LSH candidate indexes),
.manifest (collection manifests, NAME=TABLE[:STORE[:INDEX]] lines)."
    );
}
