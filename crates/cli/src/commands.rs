//! Implementations of the CLI subcommands.

use std::path::Path;

use tabsketch_cluster::{
    most_similar_pairs, most_similar_pairs_refined, nearest_neighbors, silhouette, Embedding,
    ExactEmbedding, IndexedEmbedding, KMeans, KMeansConfig, KMeansResult, OracleEmbedding,
    PrecomputedSketchEmbedding, TierSnapshot, DEFAULT_SKETCH_CACHE_CAPACITY,
};
use tabsketch_core::{persist, AllSubtableSketches, SketchParams, Sketcher};
use tabsketch_data::{
    CallVolumeConfig, CallVolumeGenerator, IpTrafficConfig, IpTrafficGenerator, SixRegionConfig,
    SixRegionGenerator,
};
use tabsketch_index::{persist as index_persist, LshParams};
use tabsketch_serve::{LoadedStore, StoreSpec};
use tabsketch_table::{
    io as table_io, norms, stats, MemoryBudget, Rect, Table, TableUpdate, TileGrid,
};

use crate::args::Args;
use crate::error::CliError;

/// Parses `--memory-budget BYTES` into a resident-table budget
/// (unbounded when the flag is absent).
pub(crate) fn memory_budget(args: &Args) -> Result<MemoryBudget, CliError> {
    match args.get("memory-budget") {
        None => Ok(MemoryBudget::unbounded()),
        Some(raw) => raw.parse::<u64>().map(MemoryBudget::bytes).map_err(|_| {
            CliError::usage(format!(
                "flag --memory-budget: expected a byte count, got {raw:?}"
            ))
        }),
    }
}

/// Loads a table by extension (`.csv` or binary otherwise), streaming
/// rows past `budget` into a disk-spilled table.
pub(crate) fn load_table(path: &str, budget: MemoryBudget) -> Result<Table, CliError> {
    let result = if path.ends_with(".csv") {
        table_io::load_csv_streaming(path, budget)
    } else {
        table_io::load_binary_streaming(path, budget)
    };
    result.map_err(|e| CliError::from(e).in_context(format!("loading {path}")))
}

fn save_table(table: &Table, path: &str, csv: bool) -> Result<(), CliError> {
    let result = if csv || path.ends_with(".csv") {
        table_io::save_csv(table, path)
    } else {
        table_io::save_binary(table, path)
    };
    result.map_err(|e| CliError::from(e).in_context(format!("writing {path}")))
}

fn one_positional<'a>(args: &'a Args, what: &str) -> Result<&'a str, CliError> {
    args.positional
        .first()
        .map(String::as_str)
        .ok_or_else(|| CliError::usage(format!("expected a {what} argument")))
}

/// `generate <kind> --out FILE ...`
pub fn generate(args: &Args) -> Result<(), CliError> {
    let kind = one_positional(args, "generator kind")?;
    let out = args.require("out")?;
    let seed: u64 = args.get_or("seed", 0)?;
    let table = match kind {
        "callvol" => {
            let config = CallVolumeConfig {
                stations: args.get_or("stations", 512)?,
                slots_per_day: args.get_or("slots", 144)?,
                days: args.get_or("days", 1)?,
                seed,
                ..Default::default()
            };
            CallVolumeGenerator::new(config)?.generate()
        }
        "sixregion" => {
            let config = SixRegionConfig {
                rows: args.get_or("rows", 256)?,
                cols: args.get_or("cols", 256)?,
                seed,
                ..Default::default()
            };
            SixRegionGenerator::new(config)?.generate()
        }
        "iptraffic" => {
            let config = IpTrafficConfig {
                destinations: args.get_or("destinations", 96)?,
                slots_per_day: args.get_or("slots", 288)?,
                days: args.get_or("days", 1)?,
                seed,
                ..Default::default()
            };
            IpTrafficGenerator::new(config)?.generate()
        }
        other => {
            return Err(CliError::usage(format!(
                "unknown generator {other:?} (callvol|sixregion|iptraffic)"
            )))
        }
    };
    save_table(&table, out, args.switch("csv"))?;
    println!(
        "wrote {kind} table: {} rows x {} cols ({:.1} MB) -> {out}",
        table.rows(),
        table.cols(),
        (table.len() * 8) as f64 / 1e6
    );
    Ok(())
}

/// `info FILE`
pub fn info(args: &Args) -> Result<(), CliError> {
    let path = one_positional(args, "table file")?;
    let table = load_table(path, memory_budget(args)?)?;
    let s = stats::table_summary(&table);
    println!("file:    {path}");
    println!(
        "shape:   {} rows x {} cols = {} cells",
        table.rows(),
        table.cols(),
        table.len()
    );
    println!(
        "bytes:   {} ({:.1} MB as f64)",
        table.len() * 8,
        (table.len() * 8) as f64 / 1e6
    );
    println!("min:     {:.3}", s.min);
    println!("max:     {:.3}", s.max);
    println!("mean:    {:.3}", s.mean);
    println!("stddev:  {:.3}", s.std_dev);
    for q in [0.25, 0.5, 0.75, 0.99] {
        let v = stats::quantile(&table, q).expect("valid quantile");
        println!("p{:<6} {v:.3}", (q * 100.0) as u32);
    }
    Ok(())
}

fn rect_from(parts: (usize, usize, usize, usize)) -> Rect {
    Rect::new(parts.0, parts.1, parts.2, parts.3)
}

/// `distance FILE --rect ... --rect2 ... [--p P] [--k K] [--exact]`
pub fn distance(args: &Args) -> Result<(), CliError> {
    let path = one_positional(args, "table file")?;
    let table = load_table(path, memory_budget(args)?)?;
    let a = rect_from(args.require_rect("rect")?);
    let b = rect_from(args.require_rect("rect2")?);
    let p: f64 = args.get_or("p", 1.0)?;
    let va = table.view(a)?;
    let vb = table.view(b)?;
    let exact = norms::lp_distance_views(&va, &vb, p)?;
    if args.switch("exact") {
        println!("exact L{p} distance: {exact}");
        return Ok(());
    }
    let k: usize = args.get_or("k", 256)?;
    let seed: u64 = args.get_or("seed", 0)?;
    let sketcher = Sketcher::new(SketchParams::builder().p(p).k(k).seed(seed).build()?)?;
    let est = sketcher.estimate_distance(&sketcher.sketch_view(&va), &sketcher.sketch_view(&vb))?;
    println!("sketched L{p} distance (k = {k}): {est}");
    println!("exact    L{p} distance:          {exact}");
    println!(
        "relative error: {:.2}%",
        100.0 * (est - exact).abs() / exact.max(f64::MIN_POSITIVE)
    );
    Ok(())
}

/// `sketch FILE --tile RxC --out STORE [--p P] [--k K] [--seed N]
/// [--memory-budget BYTES]`
pub fn sketch(args: &Args) -> Result<(), CliError> {
    let path = one_positional(args, "table file")?;
    let budget = memory_budget(args)?;
    let table = load_table(path, budget)?;
    let (tr, tc) = args.require_tile("tile")?;
    let out = args.require("out")?;
    let p: f64 = args.get_or("p", 1.0)?;
    let k: usize = args.get_or("k", 128)?;
    let seed: u64 = args.get_or("seed", 0)?;
    let sketcher = Sketcher::new(SketchParams::builder().p(p).k(k).seed(seed).build()?)?;
    let store = AllSubtableSketches::build_with_budgets(
        &table,
        tr,
        tc,
        sketcher,
        tabsketch_core::allsub::DEFAULT_MEMORY_BUDGET,
        budget,
    )?;
    persist::save_store(&store, out)
        .map_err(|e| CliError::from(e).in_context(format!("writing {out}")))?;
    println!(
        "sketched all {}x{} windows of {path}: {} anchors x k = {k} ({:.1} MB) -> {out}",
        tr,
        tc,
        store.anchor_rows() * store.anchor_cols(),
        (store.raw_values().len() * 8) as f64 / 1e6
    );
    Ok(())
}

/// `index <build> ...` — candidate-index maintenance subcommands.
pub fn index(args: &Args) -> Result<(), CliError> {
    match args.positional.first().map(String::as_str) {
        Some("build") => index_build(args),
        Some(other) => Err(CliError::usage(format!(
            "unknown index subcommand {other:?} (try `index build`)"
        ))),
        None => Err(CliError::usage(
            "expected an index subcommand (`index build TABLE ...`)",
        )),
    }
}

/// `index build TABLE --tiles RxC --out IDX [--p P] [--sketch-k K]
/// [--seed N] [--bands B] [--rows R] [--width W] [--index-seed N]`
///
/// Sketches every tile with the same parameters `knn` uses by default,
/// hashes the sketches into a banded LSH table, and saves it as a
/// checksummed `.tix` file. The bucket width defaults to the median
/// absolute sketch coordinate, which keeps the pinned band/row config
/// selective across data scales; `--width` overrides it.
fn index_build(args: &Args) -> Result<(), CliError> {
    let path = args
        .positional
        .get(1)
        .map(String::as_str)
        .ok_or_else(|| CliError::usage("expected a table file argument"))?;
    let out = args.require("out")?;
    let table = load_table(path, memory_budget(args)?)?;
    let (tr, tc) = args.require_tile("tiles")?;
    let grid = TileGrid::new(table.rows(), table.cols(), tr, tc)?;
    let p: f64 = args.get_or("p", 1.0)?;
    let sketch_k: usize = args.get_or("sketch-k", 256)?;
    let seed: u64 = args.get_or("seed", 0)?;
    let sketcher = Sketcher::new(
        SketchParams::builder()
            .p(p)
            .k(sketch_k)
            .seed(seed)
            .build()?,
    )?;
    let embedding = IndexedEmbedding::build(&table, &grid, sketcher)?;
    let refs: Vec<&[f64]> = embedding.sketches().iter().map(|s| s.values()).collect();
    let bands: usize = args.get_or("bands", 16)?;
    let rows: usize = args.get_or("rows", 4)?;
    let width = match args.get("width") {
        Some(raw) => raw
            .parse::<f64>()
            .map_err(|_| CliError::usage(format!("flag --width: cannot parse {raw:?}")))?,
        None => tabsketch_index::median_abs_coordinate(&refs).max(1.0),
    };
    let index_seed: u64 = args.get_or("index-seed", 17)?;
    let params = LshParams::new(bands, rows, width, index_seed)?;
    let built = tabsketch_index::LshIndex::build(params, tr, tc, &refs)?;
    index_persist::save_index(&built, out)
        .map_err(|e| CliError::from(e).in_context(format!("writing {out}")))?;
    let stats = built.stats();
    println!(
        "indexed {} {tr}x{tc} tiles of {path}: {} bands x {} rows, width {width:.4}, \
         {} buckets (largest {}) -> {out}",
        stats.items, stats.bands, stats.rows_per_band, stats.buckets, stats.max_bucket
    );
    Ok(())
}

/// Loads and attaches `--index IDX` to a sketched embedding. Any reason
/// the index cannot serve this embedding — unreadable or corrupt file,
/// mismatched tile shape / sketch width / tile count — degrades to the
/// exhaustive scan behind the `index.fallbacks` counter instead of
/// failing the query, keeping results bit-identical to the un-indexed
/// path.
fn attach_index_arg(embedding: &mut IndexedEmbedding, path: &str) {
    let loaded = match index_persist::load_index(path) {
        Ok(ix) => ix,
        Err(e) => {
            eprintln!("warning: loading {path}: {e}; falling back to the linear scan");
            tabsketch_index::record_fallback();
            return;
        }
    };
    if let Err(e) = embedding.attach_index(loaded) {
        eprintln!("warning: index {path}: {e}; falling back to the linear scan");
        tabsketch_index::record_fallback();
    }
}

pub(crate) fn parse_at(args: &Args, name: &str) -> Result<(usize, usize), CliError> {
    let raw = args.require(name)?;
    let (r, c) = raw
        .split_once(',')
        .ok_or_else(|| CliError::usage(format!("flag --{name}: expected ROW,COL, got {raw:?}")))?;
    Ok((
        r.trim()
            .parse()
            .map_err(|_| CliError::usage(format!("flag --{name}: bad row {r:?}")))?,
        c.trim()
            .parse()
            .map_err(|_| CliError::usage(format!("flag --{name}: bad col {c:?}")))?,
    ))
}

/// `query STORE --at R,C --at2 R,C [--table FILE]`
///
/// Without `--table` the store is the only source and any damage to it
/// is fatal. With `--table` the query runs through the serving core's
/// [`LoadedStore`] (the same constructor `tabsketch-cli serve` uses): a
/// healthy store answers from precomputed sketches, a damaged entry
/// degrades to on-demand sketches, and an unreadable store file degrades
/// the whole query (window shape then comes from `--tile`).
pub fn query(args: &Args) -> Result<(), CliError> {
    let path = one_positional(args, "sketch store file")?;
    let a = parse_at(args, "at")?;
    let b = parse_at(args, "at2")?;
    let Some(table_path) = args.get("table") else {
        if args.get("index").is_some() {
            return Err(CliError::usage(
                "--index routes through the serving core and needs --table",
            ));
        }
        // Store-only path: the store must load cleanly, and answers come
        // straight from its precomputed sketches.
        let store = persist::load_store(path)
            .map_err(|e| CliError::from(e).in_context(format!("loading {path}")))?;
        let (tr, tc) = (store.tile_rows(), store.tile_cols());
        let mut scratch = Vec::new();
        let est = store.estimate_distance(a, b, &mut scratch)?;
        println!(
            "estimated L{} distance between {tr}x{tc} windows at {a:?} and {b:?}: {est}",
            store.sketcher().p()
        );
        return Ok(());
    };
    let p: f64 = args.get_or("p", 1.0)?;
    let k: usize = args.get_or("k", 256)?;
    let seed: u64 = args.get_or("seed", 0)?;
    let mut builder = StoreSpec::builder("query", table_path)
        .store_path(path)
        .params(p, k, seed)
        .memory_budget(memory_budget(args)?);
    if let Some(index_path) = args.get("index") {
        builder = builder.index_path(index_path);
    }
    let loaded = LoadedStore::load(&builder.build())?;
    if let Some(msg) = loaded.degradation() {
        eprintln!("warning: {msg}; degrading to on-demand sketches");
    }
    // A pairwise distance never consults the candidate index, but
    // loading it here keeps `query --index` an end-to-end check of the
    // same spec the daemon serves (and of its degradation path).
    if let Some(msg) = loaded.index_degradation() {
        eprintln!("warning: {msg}; the candidate index is not resident");
    } else if let Some(ix) = loaded.index() {
        let stats = ix.stats();
        println!(
            "candidate index resident: {} items, {} bands x {} rows",
            stats.items, stats.bands, stats.rows_per_band
        );
    }
    let (tr, tc) = match loaded.tile() {
        Some(tile) => tile,
        // The store's window shape is lost with it, so it must come
        // from the --tile flag.
        None => args.require_tile("tile").map_err(|m| {
            CliError::usage(format!(
                "{m} (the store is unreadable, so --tile must supply the window shape)"
            ))
        })?,
    };
    let oracle = loaded.oracle(DEFAULT_SKETCH_CACHE_CAPACITY)?;
    let (est, tier) = oracle.distance(Rect::new(a.0, a.1, tr, tc), Rect::new(b.0, b.1, tr, tc))?;
    println!(
        "estimated L{} distance between {tr}x{tc} windows at {a:?} and {b:?}: {est} ({tier} tier)",
        oracle.p()
    );
    let snap = oracle.counters();
    if snap.degraded() {
        eprintln!("warning: query degraded below precomputed sketches; tiers: {snap}");
    }
    Ok(())
}

fn parse_deltas(raw: &str) -> Result<Vec<f64>, CliError> {
    raw.split(',')
        .map(|v| {
            v.trim()
                .parse::<f64>()
                .map_err(|_| CliError::usage(format!("flag --deltas: cannot parse {v:?}")))
        })
        .collect()
}

/// Parses the delta flags shared by the local and remote update modes:
/// exactly one of `--cell R,C,DELTA`, `--row R --deltas V,...`, or
/// `--rect R,C,H,W` with `--deltas V,...` (row-major) or `--fill X`.
fn parse_update(args: &Args) -> Result<TableUpdate, CliError> {
    let picked = [args.get("cell"), args.get("row"), args.get("rect")]
        .iter()
        .filter(|m| m.is_some())
        .count();
    if picked != 1 {
        return Err(CliError::usage(
            "pass exactly one of --cell R,C,DELTA, --row R --deltas V,..., \
             or --rect R,C,H,W (--deltas V,... | --fill X)",
        ));
    }
    if let Some(raw) = args.get("cell") {
        let parts: Vec<&str> = raw.split(',').collect();
        let [r, c, d] = parts.as_slice() else {
            return Err(CliError::usage(format!(
                "flag --cell: expected ROW,COL,DELTA, got {raw:?}"
            )));
        };
        let row = r
            .trim()
            .parse()
            .map_err(|_| CliError::usage(format!("flag --cell: bad row {r:?}")))?;
        let col = c
            .trim()
            .parse()
            .map_err(|_| CliError::usage(format!("flag --cell: bad col {c:?}")))?;
        let delta = d
            .trim()
            .parse()
            .map_err(|_| CliError::usage(format!("flag --cell: bad delta {d:?}")))?;
        return Ok(TableUpdate::cell(row, col, delta)?);
    }
    if args.get("row").is_some() {
        let row: usize = args.require_parsed("row")?;
        let deltas = parse_deltas(args.require("deltas")?)?;
        return Ok(TableUpdate::row(row, deltas)?);
    }
    let (r, c, h, w) = args.require_rect("rect")?;
    let rect = Rect::new(r, c, h, w);
    let deltas = match args.get("deltas") {
        Some(raw) => parse_deltas(raw)?,
        None => {
            let fill: f64 = args.require_parsed("fill").map_err(|_| {
                CliError::usage("--rect updates need --deltas V,... (row-major) or --fill X")
            })?;
            vec![fill; rect.area()]
        }
    };
    Ok(TableUpdate::tile(rect, deltas)?)
}

/// `update TABLE (--cell R,C,DELTA | --row R --deltas V,... |
/// --rect R,C,H,W (--deltas V,... | --fill X)) [--out FILE]
/// [--sketch-store STORE] [--store-out FILE]`, or
/// `update --addr HOST:PORT --store NAME (--cell ... | ...)`
///
/// Updates are additive deltas, never overwrites: sketches are linear,
/// so the same delta that patches the table folds into a precomputed
/// sketch store without a rebuild. The remote form sends the delta to a
/// running daemon, which patches its resident table, folds its store,
/// and bumps the store's epoch in one atomic step.
pub fn update(args: &Args) -> Result<(), CliError> {
    let update = parse_update(args)?;
    if let Some(addr) = args.get("addr") {
        let store = args.require("store")?;
        let mut client = crate::serving::connect(args, addr)?;
        let (epoch, cells) = client.update(store, &update)?;
        println!(
            "applied {} update to {store:?} at {addr}: {cells} cell(s), now at epoch {epoch}",
            update.kind_name()
        );
        return Ok(());
    }
    let path = one_positional(args, "table file")?;
    let mut table = load_table(path, memory_budget(args)?)?;
    let epoch = table.apply_update(&update)?;
    let out = args.get("out").unwrap_or(path);
    save_table(&table, out, args.switch("csv"))?;
    println!(
        "applied {} update to {path}: {} cell(s) -> {out} (epoch {epoch})",
        update.kind_name(),
        update.cell_count()
    );
    if let Some(store_path) = args.get("sketch-store") {
        let mut store = persist::load_store(store_path)
            .map_err(|e| CliError::from(e).in_context(format!("loading {store_path}")))?;
        let folds = store.apply_update(&update)?;
        let store_out = args.get("store-out").unwrap_or(store_path);
        persist::save_store(&store, store_out)
            .map_err(|e| CliError::from(e).in_context(format!("writing {store_out}")))?;
        println!("folded the delta into {folds} sketch(es) of {store_path} -> {store_out}");
    }
    Ok(())
}

/// Builds the sketched or exact embedding the mining subcommands share.
#[allow(clippy::large_enum_variant)]
enum AnyEmbedding {
    Exact(ExactEmbedding),
    Sketched(PrecomputedSketchEmbedding),
}

impl Embedding for AnyEmbedding {
    fn num_objects(&self) -> usize {
        match self {
            AnyEmbedding::Exact(e) => e.num_objects(),
            AnyEmbedding::Sketched(e) => e.num_objects(),
        }
    }

    fn dim(&self) -> usize {
        match self {
            AnyEmbedding::Exact(e) => e.dim(),
            AnyEmbedding::Sketched(e) => e.dim(),
        }
    }

    fn with_point<R>(&self, i: usize, f: &mut dyn FnMut(&[f64]) -> R) -> R {
        match self {
            AnyEmbedding::Exact(e) => e.with_point(i, f),
            AnyEmbedding::Sketched(e) => e.with_point(i, f),
        }
    }

    fn distance(&self, a: &[f64], b: &[f64], scratch: &mut Vec<f64>) -> f64 {
        match self {
            AnyEmbedding::Exact(e) => e.distance(a, b, scratch),
            AnyEmbedding::Sketched(e) => e.distance(a, b, scratch),
        }
    }
}

fn build_embedding(
    args: &Args,
    table: &Table,
    grid: &TileGrid,
    p: f64,
) -> Result<AnyEmbedding, CliError> {
    if args.switch("exact") {
        Ok(AnyEmbedding::Exact(ExactEmbedding::from_tiles(
            table, grid, p,
        )?))
    } else {
        let sketch_k: usize = args.get_or("sketch-k", 256)?;
        let seed: u64 = args.get_or("seed", 0)?;
        let sketcher = Sketcher::new(
            SketchParams::builder()
                .p(p)
                .k(sketch_k)
                .seed(seed)
                .build()?,
        )?;
        Ok(AnyEmbedding::Sketched(PrecomputedSketchEmbedding::build(
            table, grid, sketcher,
        )?))
    }
}

/// `knn FILE --tiles RxC --query N [--count K] [--p P] [--sketch-k K]
/// [--index IDX] [--exact]`
pub fn knn(args: &Args) -> Result<(), CliError> {
    let path = one_positional(args, "table file")?;
    let table = load_table(path, memory_budget(args)?)?;
    let (tr, tc) = args.require_tile("tiles")?;
    let grid = TileGrid::new(table.rows(), table.cols(), tr, tc)?;
    let p: f64 = args.get_or("p", 1.0)?;
    let query: usize = args.require_parsed("query")?;
    let count: usize = args.get_or("count", 5)?;
    let neighbors = match args.get("index") {
        Some(index_path) if !args.switch("exact") => {
            // The index hashes sketch coordinates, so the sketcher here
            // must match the one `index build` ran with (same --p,
            // --sketch-k, --seed); a mismatch degrades to the linear
            // scan inside attach_index_arg.
            let sketch_k: usize = args.get_or("sketch-k", 256)?;
            let seed: u64 = args.get_or("seed", 0)?;
            let sketcher = Sketcher::new(
                SketchParams::builder()
                    .p(p)
                    .k(sketch_k)
                    .seed(seed)
                    .build()?,
            )?;
            let mut embedding = IndexedEmbedding::build(&table, &grid, sketcher)?;
            attach_index_arg(&mut embedding, index_path);
            embedding.knn(query, count)?
        }
        Some(_) => {
            eprintln!("warning: --index is ignored with --exact");
            let embedding = build_embedding(args, &table, &grid, p)?;
            nearest_neighbors(&embedding, query, count)?
        }
        None => {
            let embedding = build_embedding(args, &table, &grid, p)?;
            nearest_neighbors(&embedding, query, count)?
        }
    };
    println!(
        "{count} nearest tiles to tile {query} (of {}) under L{p}:",
        grid.len()
    );
    for nb in neighbors {
        let rect = grid.tile(nb.index).expect("index in range");
        println!(
            "  tile {:>5} at (row {:>4}, col {:>4})  distance {:.4}",
            nb.index, rect.row, rect.col, nb.distance
        );
    }
    Ok(())
}

/// `pairs FILE --tiles RxC [--count N] [--p P] [--sketch-k K] [--refine]`
pub fn pairs(args: &Args) -> Result<(), CliError> {
    let path = one_positional(args, "table file")?;
    let table = load_table(path, memory_budget(args)?)?;
    let (tr, tc) = args.require_tile("tiles")?;
    let grid = TileGrid::new(table.rows(), table.cols(), tr, tc)?;
    let p: f64 = args.get_or("p", 1.0)?;
    let count: usize = args.get_or("count", 10)?;
    let embedding = build_embedding(args, &table, &grid, p)?;
    let top = if args.switch("refine") && !args.switch("exact") {
        let exact = ExactEmbedding::from_tiles(&table, &grid, p)?;
        most_similar_pairs_refined(&embedding, &exact, count, 4)?
    } else {
        most_similar_pairs(&embedding, count)?
    };
    println!("{count} most similar tile pairs under L{p}:");
    for pair in top {
        let ra = grid.tile(pair.a).expect("index in range");
        let rb = grid.tile(pair.b).expect("index in range");
        println!(
            "  tiles {:>4} ({:>4},{:>4}) ~ {:>4} ({:>4},{:>4})  distance {:.4}",
            pair.a, ra.row, ra.col, pair.b, rb.row, rb.col, pair.distance
        );
    }
    Ok(())
}

/// Runs k-means through the serving core's oracle (store-backed when
/// the [`LoadedStore`] holds a sketch store, on-demand otherwise),
/// reporting per-tier counters. Damaged or shape-mismatched store
/// entries degrade to on-demand sketches instead of failing the
/// clustering.
fn cluster_with_store(
    loaded: &LoadedStore,
    grid: &TileGrid,
    km: &KMeans,
) -> Result<(KMeansResult, TierSnapshot), CliError> {
    let oracle = loaded.oracle(DEFAULT_SKETCH_CACHE_CAPACITY)?;
    let rects: Vec<Rect> = grid.iter().collect();
    let embedding = OracleEmbedding::new(&oracle, rects)?;
    let result = km.run(&embedding)?;
    Ok((result, oracle.counters()))
}

/// `cluster FILE --tiles RxC [--k K] [--p P] [--sketch-k K] [--store STORE]
/// [--exact] [--render]`
pub fn cluster(args: &Args) -> Result<(), CliError> {
    let path = one_positional(args, "table file")?;
    let mut table = load_table(path, memory_budget(args)?)?;
    let (tr, tc) = args.require_tile("tiles")?;
    let k: usize = args.get_or("k", 8)?;
    let p: f64 = args.get_or("p", 1.0)?;
    let seed: u64 = args.get_or("seed", 0)?;
    let grid = TileGrid::new(table.rows(), table.cols(), tr, tc)?;
    let km = KMeans::new(KMeansConfig {
        k,
        seed,
        ..Default::default()
    })?;
    let start = std::time::Instant::now();
    let mut tiers: Option<TierSnapshot> = None;
    let (result, mode) = if let Some(store_path) = args.get("store") {
        // A store that fails to load degrades the whole run to on-demand
        // sketches rather than aborting the clustering; either way the
        // run goes through the serving core's LoadedStore, exactly as
        // the daemon would serve it.
        let store = match persist::load_store(store_path) {
            Ok(store) => Some(store),
            Err(e) => {
                eprintln!("warning: loading {store_path}: {e}; degrading to on-demand sketches");
                None
            }
        };
        let mode = if store.is_some() {
            "oracle"
        } else {
            "degraded"
        };
        let sketch_k: usize = args.get_or("sketch-k", 256)?;
        let loaded = LoadedStore::from_loaded("cluster", table, store)
            .with_fallback_params(p, sketch_k, seed);
        let (result, snap) = cluster_with_store(&loaded, &grid, &km)?;
        tiers = Some(snap);
        // The render/silhouette passes below still need the table.
        table = loaded.into_parts().0;
        (result, mode)
    } else if args.switch("exact") {
        let embedding = ExactEmbedding::from_tiles(&table, &grid, p)?;
        (km.run(&embedding)?, "exact")
    } else {
        let sketch_k: usize = args.get_or("sketch-k", 256)?;
        let sketcher = Sketcher::new(
            SketchParams::builder()
                .p(p)
                .k(sketch_k)
                .seed(seed)
                .build()?,
        )?;
        let embedding = PrecomputedSketchEmbedding::build(&table, &grid, sketcher)?;
        (km.run(&embedding)?, "sketched")
    };
    let elapsed = start.elapsed();
    println!(
        "{mode} {k}-means over {} tiles of {tr}x{tc} (p = {p}): {} iterations, {} distance evals, {:.3}s",
        grid.len(),
        result.iterations,
        result.distance_evals,
        elapsed.as_secs_f64()
    );
    if let Some(snap) = tiers {
        println!("oracle tiers: {snap}");
        if snap.degraded() {
            eprintln!(
                "warning: {} tile sketches fell back below the precomputed tier",
                snap.pooled_fallbacks
            );
        }
    }
    let mut counts = vec![0usize; k];
    for &a in &result.assignments {
        counts[a] += 1;
    }
    for (c, count) in counts.iter().enumerate() {
        println!("  cluster {c}: {count} tiles");
    }
    if args.switch("silhouette") {
        let embedding = build_embedding(args, &table, &grid, p)?;
        let score = silhouette(&embedding, &result.assignments, k)?;
        println!("mean silhouette: {:.3}", score.mean);
    }
    if args.switch("render") {
        println!("\ncluster map (rows = tile rows; largest cluster blank):");
        let largest = (0..k).max_by_key(|&i| counts[i]).unwrap_or(0);
        const GLYPHS: &[u8] = b"#@%*+=o:~-^'`";
        for gr in 0..grid.grid_rows() {
            let mut line = String::new();
            for gc in 0..grid.grid_cols() {
                let a = result.assignments[gr * grid.grid_cols() + gc];
                line.push(if a == largest {
                    ' '
                } else {
                    let idx = if a > largest { a - 1 } else { a };
                    GLYPHS[idx % GLYPHS.len()] as char
                });
            }
            println!("  |{line}|");
        }
    }
    Ok(())
}

/// Validation helper for tests: whether a path looks like a CSV table.
#[allow(dead_code)]
pub fn is_csv(path: &str) -> bool {
    Path::new(path).extension().is_some_and(|e| e == "csv")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Args;

    fn parse(line: &str) -> Args {
        Args::parse(line.split_whitespace().map(String::from)).unwrap()
    }

    fn temp_dir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "tabsketch-cli-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn generate_info_and_distance_flow() {
        let dir = temp_dir();
        let table_path = dir.join("t.tsb");
        let table_str = table_path.to_str().unwrap();

        generate(&parse(&format!(
            "generate callvol --out {table_str} --stations 64 --slots 48 --days 1 --seed 3"
        )))
        .unwrap();
        info(&parse(&format!("info {table_str}"))).unwrap();
        distance(&parse(&format!(
            "distance {table_str} --rect 0,0,16,16 --rect2 32,16,16,16 --p 0.5 --k 128"
        )))
        .unwrap();
        distance(&parse(&format!(
            "distance {table_str} --rect 0,0,16,16 --rect2 32,16,16,16 --exact"
        )))
        .unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sketch_store_and_query_flow() {
        let dir = temp_dir();
        let table_path = dir.join("t.tsb");
        let store_path = dir.join("t.tsks");
        let (t, s) = (table_path.to_str().unwrap(), store_path.to_str().unwrap());
        generate(&parse(&format!(
            "generate sixregion --out {t} --rows 64 --cols 64 --seed 1"
        )))
        .unwrap();
        sketch(&parse(&format!("sketch {t} --tile 8x8 --k 32 --out {s}"))).unwrap();
        query(&parse(&format!("query {s} --at 0,0 --at2 40,40"))).unwrap();
        assert!(query(&parse(&format!("query {s} --at 0,0 --at2 400,40"))).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn update_patches_table_and_folds_store_in_place() {
        let dir = temp_dir();
        let table_path = dir.join("t.tsb");
        let store_path = dir.join("t.tsks");
        let (t, s) = (table_path.to_str().unwrap(), store_path.to_str().unwrap());
        generate(&parse(&format!(
            "generate sixregion --out {t} --rows 64 --cols 64 --seed 1"
        )))
        .unwrap();
        sketch(&parse(&format!("sketch {t} --tile 8x8 --k 32 --out {s}"))).unwrap();
        let before = table_io::load_binary(&table_path).unwrap().get(3, 4);

        update(&parse(&format!(
            "update {t} --cell 3,4,100 --sketch-store {s}"
        )))
        .unwrap();
        let after = table_io::load_binary(&table_path).unwrap().get(3, 4);
        assert!((after - before - 100.0).abs() < 1e-9, "{before} -> {after}");

        // The folded store still answers consistently with the patched
        // table: the store-only path and the oracle path agree.
        query(&parse(&format!("query {s} --at 0,0 --at2 40,40"))).unwrap();
        query(&parse(&format!(
            "query {s} --at 0,0 --at2 40,40 --table {t} --k 32"
        )))
        .unwrap();

        // The other delta shapes, written to --out copies.
        let t2 = dir.join("t2.tsb");
        let t2 = t2.to_str().unwrap();
        update(&parse(&format!(
            "update {t} --rect 8,8,2,2 --fill 0.5 --out {t2}"
        )))
        .unwrap();
        update(&parse(&format!(
            "update {t2} --row 0 --deltas {}",
            vec!["1"; 64].join(",")
        )))
        .unwrap();

        // Validation: both modes at once is usage (2), an out-of-bounds
        // delta is a table error (3), and a non-finite delta is refused
        // before anything is written.
        let err = update(&parse(&format!(
            "update {t} --cell 0,0,1 --row 0 --deltas 1"
        )))
        .unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err}");
        let err = update(&parse(&format!("update {t} --cell 900,0,1"))).unwrap_err();
        assert_eq!(err.exit_code(), 3, "{err}");
        let err = update(&parse(&format!("update {t} --cell 0,0,nan"))).unwrap_err();
        assert_eq!(err.exit_code(), 3, "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn query_through_oracle_and_degraded_store() {
        let dir = temp_dir();
        let table_path = dir.join("t.tsb");
        let store_path = dir.join("t.tsks");
        let (t, s) = (table_path.to_str().unwrap(), store_path.to_str().unwrap());
        generate(&parse(&format!(
            "generate sixregion --out {t} --rows 64 --cols 64 --seed 1"
        )))
        .unwrap();
        sketch(&parse(&format!("sketch {t} --tile 8x8 --k 32 --out {s}"))).unwrap();

        // Healthy store + --table: answered through the oracle.
        query(&parse(&format!(
            "query {s} --at 0,0 --at2 40,40 --table {t}"
        )))
        .unwrap();

        // Corrupt the store on disk: without --table the query dies with
        // a sketch-layer error; with --table it degrades and succeeds.
        let mut bytes = std::fs::read(&store_path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&store_path, &bytes).unwrap();

        let err = query(&parse(&format!("query {s} --at 0,0 --at2 40,40"))).unwrap_err();
        assert_eq!(err.exit_code(), 4, "{err}");

        query(&parse(&format!(
            "query {s} --at 0,0 --at2 40,40 --table {t} --tile 8x8 --k 32"
        )))
        .unwrap();

        // The degraded path needs the window shape from --tile.
        let err = query(&parse(&format!(
            "query {s} --at 0,0 --at2 40,40 --table {t}"
        )))
        .unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cluster_flow_sketched_and_exact() {
        let dir = temp_dir();
        let table_path = dir.join("t.tsb");
        let t = table_path.to_str().unwrap();
        generate(&parse(&format!(
            "generate iptraffic --out {t} --destinations 30 --slots 96 --seed 2"
        )))
        .unwrap();
        cluster(&parse(&format!(
            "cluster {t} --tiles 1x96 --k 3 --p 0.5 --sketch-k 64 --render"
        )))
        .unwrap();
        cluster(&parse(&format!(
            "cluster {t} --tiles 1x96 --k 3 --p 0.5 --exact"
        )))
        .unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cluster_through_store_oracle_survives_corruption() {
        let dir = temp_dir();
        let table_path = dir.join("t.tsb");
        let store_path = dir.join("t.tsks");
        let (t, s) = (table_path.to_str().unwrap(), store_path.to_str().unwrap());
        generate(&parse(&format!(
            "generate sixregion --out {t} --rows 32 --cols 32 --seed 4"
        )))
        .unwrap();
        sketch(&parse(&format!("sketch {t} --tile 8x8 --k 32 --out {s}"))).unwrap();

        // Healthy store: the oracle path clusters from pooled sketches.
        cluster(&parse(&format!(
            "cluster {t} --tiles 8x8 --k 2 --store {s}"
        )))
        .unwrap();

        // An unreadable store degrades the run instead of failing it.
        std::fs::write(&store_path, b"TSS2 garbage").unwrap();
        cluster(&parse(&format!(
            "cluster {t} --tiles 8x8 --k 2 --store {s} --sketch-k 32"
        )))
        .unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn errors_are_informative() {
        assert!(generate(&parse("generate nosuch --out /tmp/x")).is_err());
        assert!(
            generate(&parse("generate callvol")).is_err(),
            "missing --out"
        );
        assert!(info(&parse("info /no/such/file.tsb")).is_err());
        assert!(distance(&parse(
            "distance /no/such.tsb --rect 0,0,1,1 --rect2 0,0,1,1"
        ))
        .is_err());
    }

    #[test]
    fn error_classes_map_to_distinct_exit_codes() {
        // Usage: missing required flag.
        let err = generate(&parse("generate callvol")).unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err}");
        // Table layer: unreadable table file.
        let err = info(&parse("info /no/such/file.tsb")).unwrap_err();
        assert_eq!(err.exit_code(), 3, "{err}");
        // Sketch layer: unreadable store file.
        let err = query(&parse("query /no/such.tsks --at 0,0 --at2 1,1")).unwrap_err();
        assert_eq!(err.exit_code(), 4, "{err}");
        // Mining layer: more clusters than tiles.
        let dir = temp_dir();
        let t = dir.join("t.tsb");
        let t = t.to_str().unwrap();
        generate(&parse(&format!(
            "generate sixregion --out {t} --rows 16 --cols 16 --seed 1"
        )))
        .unwrap();
        let err = cluster(&parse(&format!("cluster {t} --tiles 8x8 --k 40"))).unwrap_err();
        assert_eq!(err.exit_code(), 5, "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn csv_output_and_reload() {
        let dir = temp_dir();
        let csv_path = dir.join("t.csv");
        let t = csv_path.to_str().unwrap();
        generate(&parse(&format!(
            "generate callvol --out {t} --stations 8 --slots 12 --days 1 --csv"
        )))
        .unwrap();
        info(&parse(&format!("info {t}"))).unwrap();
        assert!(is_csv(t));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[cfg(test)]
mod mining_tests {
    use super::*;
    use crate::args::Args;

    fn parse(line: &str) -> Args {
        Args::parse(line.split_whitespace().map(String::from)).unwrap()
    }

    fn temp_table() -> (std::path::PathBuf, String) {
        let dir = std::env::temp_dir().join(format!(
            "tabsketch-cli-mining-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.tsb");
        let s = path.to_str().unwrap().to_string();
        generate(&parse(&format!(
            "generate iptraffic --out {s} --destinations 24 --slots 96 --seed 6"
        )))
        .unwrap();
        (dir, s)
    }

    #[test]
    fn knn_subcommand_flows() {
        let (dir, t) = temp_table();
        knn(&parse(&format!(
            "knn {t} --tiles 1x96 --query 0 --count 3 --p 0.5"
        )))
        .unwrap();
        knn(&parse(&format!(
            "knn {t} --tiles 1x96 --query 0 --count 3 --exact"
        )))
        .unwrap();
        assert!(knn(&parse(&format!(
            "knn {t} --tiles 1x96 --query 99 --count 3"
        )))
        .is_err());
        assert!(
            knn(&parse(&format!("knn {t} --tiles 1x96 --count 3"))).is_err(),
            "missing query"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pairs_subcommand_flows() {
        let (dir, t) = temp_table();
        pairs(&parse(&format!("pairs {t} --tiles 1x96 --count 4"))).unwrap();
        pairs(&parse(&format!(
            "pairs {t} --tiles 1x96 --count 4 --refine"
        )))
        .unwrap();
        pairs(&parse(&format!("pairs {t} --tiles 1x96 --count 4 --exact"))).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cluster_silhouette_flow() {
        let (dir, t) = temp_table();
        cluster(&parse(&format!(
            "cluster {t} --tiles 1x96 --k 3 --p 0.5 --sketch-k 64 --silhouette"
        )))
        .unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn index_build_and_indexed_knn_flow() {
        let (dir, t) = temp_table();
        let idx = dir.join("t.tix");
        let idx = idx.to_str().unwrap();
        index(&parse(&format!(
            "index build {t} --tiles 1x96 --out {idx} --sketch-k 64 --bands 8 --rows 4"
        )))
        .unwrap();
        // Indexed k-NN answers with the sketcher matched to the build.
        knn(&parse(&format!(
            "knn {t} --tiles 1x96 --query 0 --count 3 --sketch-k 64 --index {idx}"
        )))
        .unwrap();
        // Mismatched sketch width degrades to the linear scan, but the
        // query still answers.
        knn(&parse(&format!(
            "knn {t} --tiles 1x96 --query 0 --count 3 --sketch-k 32 --index {idx}"
        )))
        .unwrap();
        // --exact ignores the index instead of failing.
        knn(&parse(&format!(
            "knn {t} --tiles 1x96 --query 0 --count 3 --exact --index {idx}"
        )))
        .unwrap();
        // A corrupt index file falls back to the linear scan rather
        // than failing the query.
        std::fs::write(idx, b"TIX1 but rotten").unwrap();
        knn(&parse(&format!(
            "knn {t} --tiles 1x96 --query 0 --count 3 --sketch-k 64 --index {idx}"
        )))
        .unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn index_subcommand_usage_errors() {
        let (dir, t) = temp_table();
        let err = index(&parse("index")).unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err}");
        let err = index(&parse("index drop x.tix")).unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err}");
        let err = index(&parse(&format!("index build {t} --tiles 1x96"))).unwrap_err();
        assert_eq!(err.exit_code(), 2, "missing --out: {err}");
        // A band budget beyond the sketch width is a sketch-layer error.
        let idx = dir.join("t.tix");
        let err = index(&parse(&format!(
            "index build {t} --tiles 1x96 --out {} --sketch-k 32 --bands 16 --rows 4",
            idx.display()
        )))
        .unwrap_err();
        assert_eq!(err.exit_code(), 4, "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn query_with_index_flows_and_degrades() {
        let (dir, t) = temp_table();
        let store = dir.join("t.tsks");
        let idx = dir.join("t.tix");
        let (s, i) = (store.to_str().unwrap(), idx.to_str().unwrap());
        sketch(&parse(&format!("sketch {t} --tile 1x96 --k 64 --out {s}"))).unwrap();
        index(&parse(&format!(
            "index build {t} --tiles 1x96 --out {i} --sketch-k 64 --bands 8 --rows 4"
        )))
        .unwrap();
        query(&parse(&format!(
            "query {s} --at 0,0 --at2 8,0 --table {t} --k 64 --index {i}"
        )))
        .unwrap();
        // A corrupt index degrades the load, not the distance answer.
        std::fs::write(i, b"TIX1 but rotten").unwrap();
        query(&parse(&format!(
            "query {s} --at 0,0 --at2 8,0 --table {t} --k 64 --index {i}"
        )))
        .unwrap();
        // Store-only queries have no serving core to hold an index.
        let err = query(&parse(&format!("query {s} --at 0,0 --at2 8,0 --index {i}"))).unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
