//! Typed CLI errors with one distinct exit code per failure class.
//!
//! Scripts driving `tabsketch-cli` can tell a typo'd flag (exit 2) from
//! a damaged table file (exit 3), a bad sketch store (exit 4), a
//! mining-parameter problem (exit 5), or a serving/protocol failure
//! (exit 6) without parsing stderr. Every error renders as one
//! `error: ...` line, optionally prefixed with the operation that
//! failed ("loading day.tsb: ...").

use core::fmt;

use tabsketch_cluster::ClusterError;
use tabsketch_core::TabError;
use tabsketch_serve::ServeError;
use tabsketch_table::TableError;

/// Which layer a [`CliError`] came from; decides the exit code.
#[derive(Debug)]
pub enum ErrorKind {
    /// Bad invocation: unknown command, missing or malformed flags.
    Usage(String),
    /// Table-layer failure: unreadable, corrupt, or invalid table data.
    Table(TableError),
    /// Sketch-layer failure: bad parameters or a damaged sketch store.
    Sketch(TabError),
    /// Mining-layer failure: clustering or neighbor search rejected input.
    Cluster(ClusterError),
    /// Serving failure: connection, protocol, or server-side error.
    Serve(ServeError),
}

/// A subcommand failure: an [`ErrorKind`] plus optional operation
/// context, mapped to a stable nonzero exit code.
#[derive(Debug)]
pub struct CliError {
    kind: ErrorKind,
    context: Option<String>,
}

impl CliError {
    /// A usage error (exit code 2).
    pub fn usage(msg: impl Into<String>) -> Self {
        ErrorKind::Usage(msg.into()).into()
    }

    /// Attaches the operation that failed, e.g. `"loading day.tsb"`.
    #[must_use]
    pub fn in_context(mut self, what: impl Into<String>) -> Self {
        self.context = Some(what.into());
        self
    }

    /// The process exit code for this failure class.
    pub fn exit_code(&self) -> i32 {
        match self.kind {
            ErrorKind::Usage(_) => 2,
            ErrorKind::Table(_) => 3,
            ErrorKind::Sketch(_) => 4,
            ErrorKind::Cluster(_) => 5,
            ErrorKind::Serve(_) => 6,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(ctx) = &self.context {
            write!(f, "{ctx}: ")?;
        }
        match &self.kind {
            ErrorKind::Usage(msg) => write!(f, "{msg}"),
            ErrorKind::Table(e) => write!(f, "{e}"),
            ErrorKind::Sketch(e) => write!(f, "{e}"),
            ErrorKind::Cluster(e) => write!(f, "{e}"),
            ErrorKind::Serve(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ErrorKind> for CliError {
    fn from(kind: ErrorKind) -> Self {
        CliError {
            kind,
            context: None,
        }
    }
}

/// Flag-parsing helpers report plain strings; those are usage errors.
impl From<String> for CliError {
    fn from(msg: String) -> Self {
        CliError::usage(msg)
    }
}

impl From<TableError> for CliError {
    fn from(e: TableError) -> Self {
        ErrorKind::Table(e).into()
    }
}

impl From<TabError> for CliError {
    fn from(e: TabError) -> Self {
        ErrorKind::Sketch(e).into()
    }
}

impl From<ClusterError> for CliError {
    fn from(e: ClusterError) -> Self {
        ErrorKind::Cluster(e).into()
    }
}

/// Serving errors that merely wrap a lower layer keep that layer's exit
/// code, so `query`/`cluster` report identically whether they went
/// through the serving core or not; genuinely serving-specific failures
/// (connection refused, protocol violations, timeouts) get exit 6.
impl From<ServeError> for CliError {
    fn from(e: ServeError) -> Self {
        match e {
            ServeError::Table(e) => ErrorKind::Table(e).into(),
            ServeError::Sketch(e) => ErrorKind::Sketch(e).into(),
            ServeError::Cluster(e) => ErrorKind::Cluster(e).into(),
            other => ErrorKind::Serve(other).into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_distinct_per_class() {
        let codes = [
            CliError::usage("bad flag").exit_code(),
            CliError::from(TableError::EmptyDimension).exit_code(),
            CliError::from(TabError::corrupt("magic", "nope")).exit_code(),
            CliError::from(ClusterError::InvalidParameter("k")).exit_code(),
            CliError::from(ServeError::DeadlineExceeded).exit_code(),
        ];
        assert_eq!(codes, [2, 3, 4, 5, 6]);
        assert!(codes.iter().all(|&c| c != 0));
    }

    #[test]
    fn serve_errors_unwrap_to_their_layer_exit_codes() {
        assert_eq!(
            CliError::from(ServeError::Table(TableError::EmptyDimension)).exit_code(),
            3
        );
        assert_eq!(
            CliError::from(ServeError::Sketch(TabError::corrupt("magic", "x"))).exit_code(),
            4
        );
        assert_eq!(
            CliError::from(ServeError::Cluster(ClusterError::InvalidParameter("k"))).exit_code(),
            5
        );
        assert_eq!(
            CliError::from(ServeError::Config("no stores".into())).exit_code(),
            6
        );
    }

    #[test]
    fn context_prefixes_the_message() {
        let e = CliError::from(TableError::EmptyDimension).in_context("loading x.tsb");
        let msg = e.to_string();
        assert!(msg.starts_with("loading x.tsb: "), "{msg}");
    }

    #[test]
    fn strings_become_usage_errors() {
        let e: CliError = String::from("flag --k expects a value").into();
        assert_eq!(e.exit_code(), 2);
        assert!(matches!(e.kind, ErrorKind::Usage(_)));
    }
}
