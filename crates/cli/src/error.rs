//! Typed CLI errors with one distinct exit code per failure class.
//!
//! Scripts driving `tabsketch-cli` can tell a typo'd flag (exit 2) from
//! a damaged table file (exit 3), a bad sketch store (exit 4), a
//! mining-parameter problem (exit 5), a serving/protocol failure
//! (exit 6), or a malformed collection manifest (exit 7) without
//! parsing stderr. Every error renders as one `error: ...` line,
//! optionally prefixed with the operation that failed
//! ("loading day.tsb: ...").
//!
//! # Error-frame code → exit code
//!
//! Remote commands (`rquery`, `ping`) surface the server's typed error
//! frames. Frames that merely relay a lower layer's failure keep that
//! layer's exit code — a bad rectangle fails identically whether the
//! query ran locally or over the wire — while serving-specific codes
//! (including the resilience refusals) are exit 6:
//!
//! | wire error code              | exit code |
//! |------------------------------|-----------|
//! | `Table`                      | 3         |
//! | `Sketch`                     | 4         |
//! | `Mining`                     | 5         |
//! | `Malformed`                  | 6         |
//! | `UnknownStore`               | 6         |
//! | `DeadlineExceeded`           | 6         |
//! | `ShuttingDown`               | 6         |
//! | `FrameTooLarge`              | 6         |
//! | `Internal`                   | 6         |
//! | `Overloaded` (shed)          | 6         |
//! | `Draining` (graceful drain)  | 6         |
//!
//! The same table appears in the README under "Operating the daemon";
//! `remote_error_codes_map_to_layer_exit_codes` below asserts it.

use core::fmt;

use tabsketch_cluster::ClusterError;
use tabsketch_core::TabError;
use tabsketch_serve::ServeError;
use tabsketch_table::TableError;

/// Which layer a [`CliError`] came from; decides the exit code.
#[derive(Debug)]
pub enum ErrorKind {
    /// Bad invocation: unknown command, missing or malformed flags.
    Usage(String),
    /// Table-layer failure: unreadable, corrupt, or invalid table data.
    Table(TableError),
    /// Sketch-layer failure: bad parameters or a damaged sketch store.
    Sketch(TabError),
    /// Mining-layer failure: clustering or neighbor search rejected input.
    Cluster(ClusterError),
    /// Serving failure: connection, protocol, or server-side error.
    Serve(ServeError),
}

/// A subcommand failure: an [`ErrorKind`] plus optional operation
/// context, mapped to a stable nonzero exit code.
#[derive(Debug)]
pub struct CliError {
    kind: ErrorKind,
    context: Option<String>,
}

impl CliError {
    /// A usage error (exit code 2).
    pub fn usage(msg: impl Into<String>) -> Self {
        ErrorKind::Usage(msg.into()).into()
    }

    /// Attaches the operation that failed, e.g. `"loading day.tsb"`.
    #[must_use]
    pub fn in_context(mut self, what: impl Into<String>) -> Self {
        self.context = Some(what.into());
        self
    }

    /// The process exit code for this failure class (see the module
    /// docs for the full error-frame → exit-code table).
    pub fn exit_code(&self) -> i32 {
        match &self.kind {
            ErrorKind::Usage(_) => 2,
            // Manifest problems are a distinct failure class: the
            // collection commands want scripts to tell "your manifest
            // is malformed" (fix the file) from "a member table is
            // damaged" (fix the data).
            ErrorKind::Table(TableError::Manifest { .. }) => 7,
            ErrorKind::Table(_) => 3,
            ErrorKind::Sketch(_) => 4,
            ErrorKind::Cluster(_) => 5,
            // A remote error frame relaying a lower layer's failure
            // exits with that layer's code, same as a local run.
            ErrorKind::Serve(ServeError::Remote { code, .. }) => match code {
                tabsketch_serve::ErrorCode::Table => 3,
                tabsketch_serve::ErrorCode::Sketch => 4,
                tabsketch_serve::ErrorCode::Mining => 5,
                _ => 6,
            },
            ErrorKind::Serve(_) => 6,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(ctx) = &self.context {
            write!(f, "{ctx}: ")?;
        }
        match &self.kind {
            ErrorKind::Usage(msg) => write!(f, "{msg}"),
            ErrorKind::Table(e) => write!(f, "{e}"),
            ErrorKind::Sketch(e) => write!(f, "{e}"),
            ErrorKind::Cluster(e) => write!(f, "{e}"),
            ErrorKind::Serve(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ErrorKind> for CliError {
    fn from(kind: ErrorKind) -> Self {
        CliError {
            kind,
            context: None,
        }
    }
}

/// Flag-parsing helpers report plain strings; those are usage errors.
impl From<String> for CliError {
    fn from(msg: String) -> Self {
        CliError::usage(msg)
    }
}

impl From<TableError> for CliError {
    fn from(e: TableError) -> Self {
        ErrorKind::Table(e).into()
    }
}

impl From<TabError> for CliError {
    fn from(e: TabError) -> Self {
        ErrorKind::Sketch(e).into()
    }
}

impl From<ClusterError> for CliError {
    fn from(e: ClusterError) -> Self {
        ErrorKind::Cluster(e).into()
    }
}

/// Serving errors that merely wrap a lower layer keep that layer's exit
/// code, so `query`/`cluster` report identically whether they went
/// through the serving core or not; genuinely serving-specific failures
/// (connection refused, protocol violations, timeouts) get exit 6.
impl From<ServeError> for CliError {
    fn from(e: ServeError) -> Self {
        match e {
            ServeError::Table(e) => ErrorKind::Table(e).into(),
            ServeError::Sketch(e) => ErrorKind::Sketch(e).into(),
            ServeError::Cluster(e) => ErrorKind::Cluster(e).into(),
            other => ErrorKind::Serve(other).into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_distinct_per_class() {
        let codes = [
            CliError::usage("bad flag").exit_code(),
            CliError::from(TableError::EmptyDimension).exit_code(),
            CliError::from(TabError::corrupt("magic", "nope")).exit_code(),
            CliError::from(ClusterError::InvalidParameter("k")).exit_code(),
            CliError::from(ServeError::DeadlineExceeded).exit_code(),
            CliError::from(TableError::manifest(3, "duplicate member name")).exit_code(),
        ];
        assert_eq!(codes, [2, 3, 4, 5, 6, 7]);
        assert!(codes.iter().all(|&c| c != 0));
    }

    #[test]
    fn manifest_errors_keep_their_exit_code_through_serve_wrappers() {
        // `serve --manifest` surfaces manifest problems as table-layer
        // errors wrapped by the serving config path; both routes must
        // land on exit 7, not the generic table code.
        let direct = CliError::from(TableError::manifest(0, "manifest lists no tables"));
        assert_eq!(direct.exit_code(), 7);
        let wrapped = CliError::from(ServeError::Table(TableError::manifest(2, "dup")));
        assert_eq!(wrapped.exit_code(), 7);
    }

    #[test]
    fn serve_errors_unwrap_to_their_layer_exit_codes() {
        assert_eq!(
            CliError::from(ServeError::Table(TableError::EmptyDimension)).exit_code(),
            3
        );
        assert_eq!(
            CliError::from(ServeError::Sketch(TabError::corrupt("magic", "x"))).exit_code(),
            4
        );
        assert_eq!(
            CliError::from(ServeError::Cluster(ClusterError::InvalidParameter("k"))).exit_code(),
            5
        );
        assert_eq!(
            CliError::from(ServeError::Config("no stores".into())).exit_code(),
            6
        );
    }

    /// Asserts the error-frame → exit-code table from the module docs
    /// (and the README), including the resilience codes.
    #[test]
    fn remote_error_codes_map_to_layer_exit_codes() {
        use tabsketch_serve::ErrorCode;
        let remote = |code| {
            CliError::from(ServeError::Remote {
                code,
                message: "x".into(),
            })
        };
        let table = [
            (ErrorCode::Malformed, 6),
            (ErrorCode::UnknownStore, 6),
            (ErrorCode::Table, 3),
            (ErrorCode::Sketch, 4),
            (ErrorCode::Mining, 5),
            (ErrorCode::DeadlineExceeded, 6),
            (ErrorCode::ShuttingDown, 6),
            (ErrorCode::FrameTooLarge, 6),
            (ErrorCode::Internal, 6),
            (ErrorCode::Overloaded, 6),
            (ErrorCode::Draining, 6),
        ];
        for (code, exit) in table {
            assert_eq!(remote(code).exit_code(), exit, "{code:?}");
        }
        // The codes the client surfaces as dedicated variants rather
        // than `Remote` are serving failures too.
        assert_eq!(
            CliError::from(ServeError::Overloaded { retry_after_ms: 1 }).exit_code(),
            6
        );
        assert_eq!(CliError::from(ServeError::Draining).exit_code(), 6);
        assert_eq!(CliError::from(ServeError::ShuttingDown).exit_code(), 6);
        assert_eq!(CliError::from(ServeError::DeadlineExceeded).exit_code(), 6);
    }

    #[test]
    fn context_prefixes_the_message() {
        let e = CliError::from(TableError::EmptyDimension).in_context("loading x.tsb");
        let msg = e.to_string();
        assert!(msg.starts_with("loading x.tsb: "), "{msg}");
    }

    #[test]
    fn strings_become_usage_errors() {
        let e: CliError = String::from("flag --k expects a value").into();
        assert_eq!(e.exit_code(), 2);
        assert!(matches!(e.kind, ErrorKind::Usage(_)));
    }
}
