//! The serving subcommands: `serve`, `ping`, and `rquery`.
//!
//! `serve` keeps one or more tables (and their sketch stores) resident
//! behind a TCP daemon; `ping` checks liveness, fetches metrics, or
//! sends the shutdown poison message; `rquery` runs the same distance
//! and k-NN queries as the one-shot commands, but against a running
//! server, so repeated queries pay sketch construction once.

use std::time::Instant;

use tabsketch_cluster::DEFAULT_SKETCH_CACHE_CAPACITY;
use tabsketch_serve::{Client, RetryPolicy, ServeError, Server, ServerConfig, StoreSpec};
use tabsketch_table::Rect;

use crate::args::Args;
use crate::commands::{memory_budget, parse_at};
use crate::error::CliError;

/// Builds the fallback sketch parameters shared by every spec.
fn fallback_params(args: &Args) -> Result<(f64, usize, u64), CliError> {
    Ok((
        args.get_or("p", 1.0)?,
        args.get_or("k", 256)?,
        args.get_or("seed", 0)?,
    ))
}

/// Parses a `--stores NAME=TABLE[:STORE[:INDEX]],...` list into specs.
/// The colon syntax itself lives in [`StoreSpec::from_colon_spec`]; the
/// CLI only layers the shared `--p/--k/--seed/--memory-budget` fallbacks
/// on top of each parsed builder.
fn parse_store_specs(list: &str, args: &Args) -> Result<Vec<StoreSpec>, CliError> {
    let (p, k, seed) = fallback_params(args)?;
    let budget = memory_budget(args)?;
    let mut specs = Vec::new();
    for entry in list.split(',').filter(|e| !e.is_empty()) {
        let builder = StoreSpec::from_colon_spec(entry)
            .map_err(|e| CliError::usage(format!("--stores entry {entry:?}: {e}")))?;
        specs.push(builder.params(p, k, seed).memory_budget(budget).build());
    }
    if specs.is_empty() {
        return Err(CliError::usage("--stores lists no stores"));
    }
    Ok(specs)
}

/// `serve TABLE [--sketch-store STORE] [--index IDX] [--name NAME]
/// [--addr HOST:PORT] [--workers N] [--shards N] [--cache-capacity N]
/// [--p P] [--k K] [--seed N] [--memory-budget BYTES]
/// [--port-file FILE]`, `serve --stores NAME=TABLE[:STORE[:INDEX]],...`,
/// or `serve --manifest FILE` (a whole collection from one flag, with
/// `--memory-budget` split evenly across members).
///
/// Blocks until a client sends the shutdown poison message (see
/// `ping --shutdown`).
pub fn serve(args: &Args) -> Result<(), CliError> {
    // The daemon always pre-registers every crate's metric schema so
    // remote `ping --metrics` reports the full key set, not just the
    // counters this process happened to touch.
    tabsketch_fft::register_metrics();
    tabsketch_table::register_metrics();
    tabsketch_core::register_metrics();
    tabsketch_cluster::register_metrics();
    tabsketch_index::register_metrics();
    tabsketch_serve::register_metrics();
    let specs = if let Some(manifest_path) = args.get("manifest") {
        // The manifest reuses the --stores colon grammar per line; a
        // malformed one is a manifest error (exit 7), not usage.
        let manifest = tabsketch_table::Manifest::load(manifest_path)
            .map_err(|e| CliError::from(e).in_context(format!("loading {manifest_path}")))?;
        let (p, k, seed) = fallback_params(args)?;
        StoreSpec::fleet_from_manifest(&manifest, p, k, seed, memory_budget(args)?)
    } else if let Some(list) = args.get("stores") {
        parse_store_specs(list, args)?
    } else {
        let table = args.positional.first().map(String::as_str).ok_or_else(|| {
            CliError::usage("expected a table file argument (or --stores NAME=TABLE[:STORE],...)")
        })?;
        let name = match args.get("name") {
            Some(name) => name.to_string(),
            None => std::path::Path::new(table)
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("table")
                .to_string(),
        };
        let (p, k, seed) = fallback_params(args)?;
        let mut builder = StoreSpec::builder(name, table)
            .params(p, k, seed)
            .memory_budget(memory_budget(args)?);
        if let Some(store) = args.get("sketch-store") {
            builder = builder.store_path(store);
        }
        if let Some(index) = args.get("index") {
            builder = builder.index_path(index);
        }
        vec![builder.build()]
    };
    let defaults = ServerConfig::default();
    let config = ServerConfig {
        addr: args.get("addr").unwrap_or("127.0.0.1:7878").to_string(),
        workers: args.get_or("workers", 4)?,
        shards: args.get_or("shards", 2)?,
        cache_capacity: args.get_or("cache-capacity", DEFAULT_SKETCH_CACHE_CAPACITY)?,
        specs,
        max_pending: args.get_or("max-pending", defaults.max_pending)?,
        drain_ms: args.get_or("drain-ms", defaults.drain_ms)?,
        ..defaults
    };
    let server = Server::bind(config)?;
    let addr = server.local_addr();
    for store in server.stores() {
        {
            let loaded = store.store();
            if let Some(msg) = loaded.degradation() {
                eprintln!(
                    "warning: store {:?}: {msg}; serving on-demand sketches",
                    store.name()
                );
            }
            if let Some(msg) = loaded.index_degradation() {
                eprintln!(
                    "warning: store {:?}: {msg}; k-NN will scan linearly",
                    store.name()
                );
            }
        }
        let info = store.info();
        let tile = match info.tile {
            Some((r, c)) => format!(", precomputed {r}x{c} sketches"),
            None => String::from(", on-demand sketches"),
        };
        let indexed = match &info.index {
            Some(ix) => format!(
                ", lsh index ({} bands x {} rows, {} entries)",
                ix.bands, ix.rows_per_band, ix.entries
            ),
            None => String::new(),
        };
        println!(
            "serving {:?}: {} x {} table{tile}{indexed}",
            info.name, info.rows, info.cols
        );
    }
    // Written after bind so scripts (and the tests) can learn the port
    // that `--addr ...:0` actually got.
    if let Some(port_file) = args.get("port-file") {
        std::fs::write(port_file, format!("{addr}\n")).map_err(|e| {
            CliError::from(ServeError::from(e)).in_context(format!("writing {port_file}"))
        })?;
    }
    println!("listening on {addr}; stop with `tabsketch-cli ping --addr {addr} --shutdown`");
    server.run()?;
    // Export the final registry snapshot — including the drain, shed,
    // and panic counters this run ended with — before the process
    // forgets them. (The generic exit-time observability in `main`
    // writes the same file again moments later; writing here too keeps
    // the export tied to the drain itself, so it exists even when the
    // daemon is driven as a library.)
    if let Some(path) = args.get("metrics-out") {
        let snap = tabsketch_obs::global().snapshot();
        std::fs::write(path, snap.to_json()).map_err(|e| {
            CliError::from(ServeError::from(e)).in_context(format!("writing {path}"))
        })?;
    }
    println!("shutdown complete");
    Ok(())
}

/// Connects, applying `--deadline MS` and the retry flags when given.
/// `--retries N` allows N resends of idempotent requests (N+1 attempts
/// total) on transient failures; `--retry-budget-ms MS` bounds the
/// total wall-clock spent across attempts and backoffs.
pub(crate) fn connect(args: &Args, addr: &str) -> Result<Client, CliError> {
    let deadline: u32 = args.get_or("deadline", 0)?;
    let retries: u32 = args.get_or("retries", 0)?;
    let mut client = Client::connect(addr)
        .map_err(|e| CliError::from(e).in_context(format!("connecting to {addr}")))?
        .with_deadline_ms(deadline);
    if retries > 0 {
        let policy = RetryPolicy::default()
            .with_max_attempts(retries.saturating_add(1))
            .with_budget_ms(args.get_or("retry-budget-ms", RetryPolicy::default().budget_ms)?);
        client = client.with_retry(policy);
    }
    Ok(client)
}

/// `ping --addr HOST:PORT [--metrics | --health | --shutdown]
/// [--deadline MS] [--retries N] [--retry-budget-ms MS]`
pub fn ping(args: &Args) -> Result<(), CliError> {
    let addr = args.require("addr")?;
    let mut client = connect(args, addr)?;
    if args.switch("shutdown") {
        client.shutdown()?;
        println!("server at {addr} acknowledged shutdown");
        return Ok(());
    }
    if args.switch("metrics") {
        let snap = client.metrics()?;
        println!("{snap}");
        return Ok(());
    }
    if args.switch("health") {
        let (state, stores) = client.health()?;
        println!("server at {addr} is {state}");
        for s in &stores {
            let t = &s.tiers;
            let tag = if s.indexed { " [indexed]" } else { "" };
            println!(
                "  {:?}{tag}: epoch {} pooled {} on-demand {} exact {} \
                 (cache hits {}, fallbacks {})",
                s.name,
                s.epoch,
                t.pooled,
                t.on_demand,
                t.exact,
                t.cache_hits,
                t.pooled_fallbacks + t.on_demand_fallbacks
            );
        }
        return Ok(());
    }
    let start = Instant::now();
    client.ping()?;
    let rtt_ms = start.elapsed().as_secs_f64() * 1e3;
    let stores = client.stores()?;
    println!(
        "pong from {addr} in {rtt_ms:.2}ms; {} store(s):",
        stores.len()
    );
    for info in stores {
        let tile = match info.tile {
            Some((r, c)) => format!("{r}x{c} precomputed"),
            None => String::from("on-demand"),
        };
        let indexed = match &info.index {
            Some(ix) => format!(", {} x {} band index", ix.bands, ix.rows_per_band),
            None => String::new(),
        };
        println!(
            "  {:?}: {} x {} ({tile} sketches{indexed}, epoch {})",
            info.name, info.rows, info.cols, info.epoch
        );
    }
    Ok(())
}

/// `rquery --addr HOST:PORT --store NAME --at R,C (--at2 R,C | --knn N)
/// [--tile RxC] [--deadline MS]`
///
/// The window shape comes from `--tile`, or failing that from the
/// server's precomputed tile shape for the store.
pub fn rquery(args: &Args) -> Result<(), CliError> {
    let addr = args.require("addr")?;
    let store = args.require("store")?;
    let a = parse_at(args, "at")?;
    let mut client = connect(args, addr)?;
    let (tr, tc) = if args.get("tile").is_some() {
        args.require_tile("tile")?
    } else {
        let infos = client.stores()?;
        let info = infos.iter().find(|i| i.name == store).ok_or_else(|| {
            let names: Vec<&str> = infos.iter().map(|i| i.name.as_str()).collect();
            CliError::usage(format!(
                "server has no store {store:?} (it serves {names:?})"
            ))
        })?;
        match info.tile {
            Some((r, c)) => (r as usize, c as usize),
            None => {
                return Err(CliError::usage(format!(
                    "store {store:?} has no precomputed tile shape; pass --tile RxC"
                )))
            }
        }
    };
    let rect_a = Rect::new(a.0, a.1, tr, tc);
    if let Some(raw) = args.get("knn") {
        let count: u32 = raw
            .parse()
            .map_err(|_| CliError::usage(format!("flag --knn: cannot parse {raw:?}")))?;
        let neighbors = client.knn(store, rect_a, count)?;
        println!(
            "{} nearest {tr}x{tc} tiles to {a:?} in {store:?}:",
            neighbors.len()
        );
        for (rect, d) in neighbors {
            println!("  ({:>4},{:>4})  distance {:.4}", rect.row, rect.col, d);
        }
        return Ok(());
    }
    let b = parse_at(args, "at2")?;
    let (est, tier) = client.distance(store, rect_a, Rect::new(b.0, b.1, tr, tc))?;
    println!(
        "estimated distance between {tr}x{tc} windows at {a:?} and {b:?}: {est} ({tier} tier)"
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands;

    fn parse(line: &str) -> Args {
        Args::parse(line.split_whitespace().map(String::from)).unwrap()
    }

    fn temp_dir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "tabsketch-cli-serving-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn wait_for_port_file(path: &std::path::Path) -> String {
        for _ in 0..600 {
            if let Ok(s) = std::fs::read_to_string(path) {
                let s = s.trim().to_string();
                if !s.is_empty() {
                    return s;
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
        panic!("server never wrote {}", path.display());
    }

    #[test]
    fn store_spec_list_parsing() {
        let args = parse(
            "serve --stores day=day.tsb:day.tsks:day.tix,raw=raw.csv,ix=t.tsb::t.tix --p 0.5 --k 64",
        );
        let specs = parse_store_specs(args.get("stores").unwrap(), &args).unwrap();
        assert_eq!(specs.len(), 3);
        assert_eq!(specs[0].name, "day");
        assert_eq!(specs[0].table_path.to_str().unwrap(), "day.tsb");
        assert_eq!(
            specs[0].store_path.as_ref().unwrap().to_str().unwrap(),
            "day.tsks"
        );
        assert_eq!(
            specs[0].index_path.as_ref().unwrap().to_str().unwrap(),
            "day.tix"
        );
        assert_eq!(specs[1].name, "raw");
        assert!(specs[1].store_path.is_none());
        assert!(specs[1].index_path.is_none());
        assert_eq!(specs[1].p, 0.5);
        assert_eq!(specs[1].k, 64);
        // An empty STORE slot still lets the INDEX slot through.
        assert_eq!(specs[2].name, "ix");
        assert!(specs[2].store_path.is_none());
        assert_eq!(
            specs[2].index_path.as_ref().unwrap().to_str().unwrap(),
            "t.tix"
        );

        let bad = parse("serve --stores nonsense");
        assert!(parse_store_specs("nonsense", &bad).is_err());
        assert!(parse_store_specs("", &bad).is_err());
    }

    #[test]
    fn serve_with_index_end_to_end() {
        let dir = temp_dir();
        let table_path = dir.join("ix.tsb");
        let store_path = dir.join("ix.tsks");
        let index_path = dir.join("ix.tix");
        let port_file = dir.join("port");
        let (t, s, i) = (
            table_path.to_str().unwrap(),
            store_path.to_str().unwrap(),
            index_path.to_str().unwrap(),
        );
        commands::generate(&parse(&format!(
            "generate sixregion --out {t} --rows 64 --cols 64 --seed 1"
        )))
        .unwrap();
        commands::sketch(&parse(&format!("sketch {t} --tile 8x8 --k 32 --out {s}"))).unwrap();
        // The index hashes the same sketch family the store holds, so
        // the daemon's k-NN path can serve through it.
        commands::index(&parse(&format!(
            "index build {t} --tiles 8x8 --out {i} --sketch-k 32 --bands 8 --rows 4"
        )))
        .unwrap();

        let serve_args = parse(&format!(
            "serve {t} --sketch-store {s} --index {i} --name demo --k 32 --addr 127.0.0.1:0 --workers 2 --shards 1 --port-file {}",
            port_file.display()
        ));
        let server = std::thread::spawn(move || serve(&serve_args));
        let addr = wait_for_port_file(&port_file);

        ping(&parse(&format!("ping --addr {addr}"))).unwrap();
        ping(&parse(&format!("ping --addr {addr} --health"))).unwrap();
        rquery(&parse(&format!(
            "rquery --addr {addr} --store demo --at 0,0 --knn 3"
        )))
        .unwrap();
        ping(&parse(&format!("ping --addr {addr} --shutdown"))).unwrap();
        server.join().unwrap().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn serve_from_manifest_end_to_end() {
        let dir = temp_dir();
        for (name, seed) in [("one", 1), ("two", 2)] {
            commands::generate(&parse(&format!(
                "generate sixregion --out {} --rows 32 --cols 32 --seed {seed}",
                dir.join(format!("{name}.tsb")).display()
            )))
            .unwrap();
        }
        let manifest = dir.join("fleet.manifest");
        std::fs::write(&manifest, "one=one.tsb\ntwo=two.tsb\n").unwrap();
        let port_file = dir.join("port");
        let serve_args = parse(&format!(
            "serve --manifest {} --addr 127.0.0.1:0 --workers 2 --shards 1 --port-file {}",
            manifest.display(),
            port_file.display()
        ));
        let server = std::thread::spawn(move || serve(&serve_args));
        let addr = wait_for_port_file(&port_file);
        ping(&parse(&format!("ping --addr {addr}"))).unwrap();
        // Both members answer under their manifest names; the window
        // shape comes from --tile since no store was precomputed.
        for store in ["one", "two"] {
            rquery(&parse(&format!(
                "rquery --addr {addr} --store {store} --at 0,0 --at2 8,8 --tile 8x8"
            )))
            .unwrap();
        }
        ping(&parse(&format!("ping --addr {addr} --shutdown"))).unwrap();
        server.join().unwrap().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn serve_rejects_a_malformed_manifest_with_exit_7() {
        let dir = temp_dir();
        let manifest = dir.join("bad.manifest");
        std::fs::write(&manifest, "a=a.tsb\na=twice.tsb\n").unwrap();
        let err = serve(&parse(&format!("serve --manifest {}", manifest.display()))).unwrap_err();
        assert_eq!(err.exit_code(), 7, "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn connect_failure_is_a_serve_error_exit_6() {
        // A loopback port nothing listens on refuses immediately.
        let err = ping(&parse("ping --addr 127.0.0.1:1")).unwrap_err();
        assert_eq!(err.exit_code(), 6, "{err}");
    }

    #[test]
    fn serve_ping_rquery_shutdown_end_to_end() {
        let dir = temp_dir();
        let table_path = dir.join("t.tsb");
        let store_path = dir.join("t.tsks");
        let port_file = dir.join("port");
        let (t, s) = (table_path.to_str().unwrap(), store_path.to_str().unwrap());
        commands::generate(&parse(&format!(
            "generate sixregion --out {t} --rows 64 --cols 64 --seed 1"
        )))
        .unwrap();
        commands::sketch(&parse(&format!("sketch {t} --tile 8x8 --k 32 --out {s}"))).unwrap();

        let metrics_file = dir.join("metrics.json");
        let serve_args = parse(&format!(
            "serve {t} --sketch-store {s} --name demo --addr 127.0.0.1:0 --workers 2 --shards 2 --port-file {} --max-pending 32 --drain-ms 2000 --metrics-out {}",
            port_file.display(),
            metrics_file.display()
        ));
        let server = std::thread::spawn(move || serve(&serve_args));
        let addr = wait_for_port_file(&port_file);

        ping(&parse(&format!("ping --addr {addr}"))).unwrap();
        ping(&parse(&format!("ping --addr {addr} --health"))).unwrap();
        ping(&parse(&format!("ping --addr {addr} --retries 2"))).unwrap();
        rquery(&parse(&format!(
            "rquery --addr {addr} --store demo --at 0,0 --at2 40,40"
        )))
        .unwrap();
        rquery(&parse(&format!(
            "rquery --addr {addr} --store demo --at 0,0 --knn 3"
        )))
        .unwrap();
        rquery(&parse(&format!(
            "rquery --addr {addr} --store demo --at 0,0 --at2 40,40 --retries 3 --retry-budget-ms 5000"
        )))
        .unwrap();
        // Overriding the window shape still works, and unknown stores
        // are typed remote errors (exit 6).
        rquery(&parse(&format!(
            "rquery --addr {addr} --store demo --at 0,0 --at2 40,40 --tile 16x16"
        )))
        .unwrap();
        let err = rquery(&parse(&format!(
            "rquery --addr {addr} --store nosuch --at 0,0 --at2 1,1 --tile 8x8"
        )))
        .unwrap_err();
        assert_eq!(err.exit_code(), 6, "{err}");
        // A live update against the daemon: acked with the new epoch,
        // and queries keep answering against the patched table.
        commands::update(&parse(&format!(
            "update --addr {addr} --store demo --cell 0,0,5"
        )))
        .unwrap();
        commands::update(&parse(&format!(
            "update --addr {addr} --store demo --rect 8,8,2,2 --fill 0.25"
        )))
        .unwrap();
        rquery(&parse(&format!(
            "rquery --addr {addr} --store demo --at 0,0 --at2 40,40"
        )))
        .unwrap();
        ping(&parse(&format!("ping --addr {addr} --health"))).unwrap();
        let err = commands::update(&parse(&format!(
            "update --addr {addr} --store nosuch --cell 0,0,5"
        )))
        .unwrap_err();
        assert_eq!(err.exit_code(), 6, "{err}");
        let err = commands::update(&parse(&format!(
            "update --addr {addr} --store demo --cell 9000,0,5"
        )))
        .unwrap_err();
        assert_eq!(err.exit_code(), 3, "{err}");
        ping(&parse(&format!("ping --addr {addr} --metrics"))).unwrap();
        ping(&parse(&format!("ping --addr {addr} --shutdown"))).unwrap();

        server.join().unwrap().unwrap();
        // The drain wrote the final registry snapshot, resilience
        // counters included.
        let json = std::fs::read_to_string(&metrics_file).unwrap();
        for key in [
            "serve.drain.completed",
            "serve.shed",
            "serve.worker.panics",
            "serve.responses",
        ] {
            assert!(json.contains(key), "metrics export missing {key}: {json}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
