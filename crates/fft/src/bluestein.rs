//! Arbitrary-length FFT via Bluestein's chirp-z algorithm.
//!
//! The sketching pipeline pads to powers of two (padding is free for
//! correlation), but a general-purpose FFT substrate should transform any
//! length exactly — e.g. spectral analysis of a 144-slot day without
//! padding artifacts. Bluestein rewrites the length-`n` DFT as a linear
//! convolution with a chirp:
//!
//! `X_k = w_k · Σ_j (x_j w_j) · conj(w_{k−j})`, with
//! `w_j = e^{−iπ j²/n}`,
//!
//! and evaluates that convolution with one power-of-two FFT of length
//! `≥ 2n − 1`. Cost is `O(n log n)` for every `n`, primes included.

use crate::complex::Complex;
use crate::plan::{next_pow2, Direction, FftPlan};
use crate::FftError;

/// A reusable arbitrary-length FFT plan.
#[derive(Clone, Debug)]
pub struct BluesteinPlan {
    n: usize,
    inner: FftPlan,
    /// `w_j = e^{−iπ j²/n}` for `j` in `0..n` (the j² is reduced mod 2n
    /// to keep the angle accurate at large j).
    chirp: Vec<Complex>,
    /// Forward spectrum of the circular chirp kernel `conj(w_{|j|})`.
    kernel_spec: Vec<Complex>,
}

impl BluesteinPlan {
    /// Creates a plan for transforms of any length `n ≥ 1`.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::NotPowerOfTwo`] only in the degenerate case
    /// `n == 0` (reported as an invalid length).
    pub fn new(n: usize) -> Result<Self, FftError> {
        if n == 0 {
            return Err(FftError::NotPowerOfTwo(0));
        }
        let m = next_pow2(2 * n - 1);
        let inner = FftPlan::new(m)?;
        let chirp: Vec<Complex> = (0..n)
            .map(|j| {
                // j² mod 2n keeps the chirp angle exact for large j.
                let jj = (j * j) % (2 * n);
                Complex::cis(-core::f64::consts::PI * jj as f64 / n as f64)
            })
            .collect();
        // Circular kernel b_j = conj(w_j) for j in −(n−1)..=(n−1), laid
        // out with negative indices wrapped to the top of the buffer.
        let mut kernel = vec![Complex::default(); m];
        for (j, w) in chirp.iter().enumerate() {
            kernel[j] = w.conj();
            if j > 0 {
                kernel[m - j] = w.conj();
            }
        }
        inner.transform(&mut kernel, Direction::Forward)?;
        Ok(Self {
            n,
            inner,
            chirp,
            kernel_spec: kernel,
        })
    }

    /// The transform length.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false (zero-length plans cannot be constructed).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Transforms `data` in place (any length `n`, forward or inverse;
    /// the inverse includes the `1/n` normalization).
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] when `data.len() != n`.
    pub fn transform(&self, data: &mut [Complex], dir: Direction) -> Result<(), FftError> {
        if data.len() != self.n {
            return Err(FftError::LengthMismatch {
                expected: self.n,
                got: data.len(),
            });
        }
        if self.n == 1 {
            return Ok(());
        }
        // Inverse via the conjugation identity:
        // IDFT(x) = conj(DFT(conj(x))) / n.
        if dir == Direction::Inverse {
            for z in data.iter_mut() {
                *z = z.conj();
            }
            self.transform(data, Direction::Forward)?;
            let scale = 1.0 / self.n as f64;
            for z in data.iter_mut() {
                *z = z.conj().scale(scale);
            }
            return Ok(());
        }
        let m = self.inner.len();
        // a_j = x_j · w_j, zero-padded to m.
        let mut a = vec![Complex::default(); m];
        for (slot, (x, w)) in a.iter_mut().zip(data.iter().zip(&self.chirp)) {
            *slot = *x * *w;
        }
        self.inner.transform(&mut a, Direction::Forward)?;
        for (x, k) in a.iter_mut().zip(&self.kernel_spec) {
            *x *= *k;
        }
        self.inner.transform(&mut a, Direction::Inverse)?;
        for ((out, conv), w) in data.iter_mut().zip(&a).zip(&self.chirp) {
            *out = *conv * *w;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::dft_naive;

    fn assert_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x.re - y.re).abs() < tol && (x.im - y.im).abs() < tol,
                "index {i}: {x:?} vs {y:?}"
            );
        }
    }

    fn signal(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| Complex::new((i as f64 * 0.83).sin() * 3.0, (i as f64 * 0.31).cos()))
            .collect()
    }

    #[test]
    fn rejects_zero_length_and_mismatch() {
        assert!(BluesteinPlan::new(0).is_err());
        let plan = BluesteinPlan::new(5).unwrap();
        let mut buf = vec![Complex::default(); 4];
        assert!(plan.transform(&mut buf, Direction::Forward).is_err());
    }

    #[test]
    fn matches_naive_dft_for_awkward_lengths() {
        for &n in &[1usize, 2, 3, 5, 7, 12, 17, 60, 97, 144] {
            let plan = BluesteinPlan::new(n).unwrap();
            let data = signal(n);
            let mut fast = data.clone();
            plan.transform(&mut fast, Direction::Forward).unwrap();
            let slow = dft_naive(&data, Direction::Forward);
            assert_close(&fast, &slow, 1e-7 * (n as f64).max(1.0));
        }
    }

    #[test]
    fn agrees_with_radix2_on_powers_of_two() {
        for &n in &[4usize, 16, 64] {
            let blu = BluesteinPlan::new(n).unwrap();
            let rad = FftPlan::new(n).unwrap();
            let data = signal(n);
            let mut a = data.clone();
            let mut b = data;
            blu.transform(&mut a, Direction::Forward).unwrap();
            rad.transform(&mut b, Direction::Forward).unwrap();
            assert_close(&a, &b, 1e-8 * n as f64);
        }
    }

    #[test]
    fn roundtrip_any_length() {
        for &n in &[3usize, 10, 31, 144, 300] {
            let plan = BluesteinPlan::new(n).unwrap();
            let data = signal(n);
            let mut buf = data.clone();
            plan.transform(&mut buf, Direction::Forward).unwrap();
            plan.transform(&mut buf, Direction::Inverse).unwrap();
            assert_close(&buf, &data, 1e-8 * n as f64);
        }
    }

    #[test]
    fn parseval_for_prime_length() {
        let n = 101;
        let plan = BluesteinPlan::new(n).unwrap();
        let data = signal(n);
        let time: f64 = data.iter().map(|z| z.norm_sqr()).sum();
        let mut buf = data;
        plan.transform(&mut buf, Direction::Forward).unwrap();
        let freq: f64 = buf.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time - freq).abs() < 1e-7 * time);
    }

    #[test]
    fn impulse_spectrum_is_flat_for_any_length() {
        let n = 13;
        let plan = BluesteinPlan::new(n).unwrap();
        let mut buf = vec![Complex::default(); n];
        buf[0] = Complex::from_real(1.0);
        plan.transform(&mut buf, Direction::Forward).unwrap();
        for z in &buf {
            assert!((z.re - 1.0).abs() < 1e-9 && z.im.abs() < 1e-9);
        }
    }
}
