//! Real-input FFT via the packed half-length complex transform.
//!
//! Every transform this workspace takes is of real data (table rows,
//! kernels, count vectors), yet a complex FFT spends half its arithmetic
//! on imaginary parts that are identically zero. The classic remedy packs
//! a length-`n` real signal into a length-`n/2` complex signal
//! `z[j] = x[2j] + i·x[2j+1]`, runs one half-length complex FFT, and
//! recovers the real spectrum with an `O(n)` twiddle unpack:
//!
//! ```text
//! E[k] = (Z[k] + conj(Z[(m−k) mod m])) / 2        (spectrum of even samples)
//! O[k] = −i · (Z[k] − conj(Z[(m−k) mod m])) / 2   (spectrum of odd samples)
//! X[k] = E[k] + e^{−2πik/n} · O[k]                (k = 0 ..= m, m = n/2)
//! ```
//!
//! Because the input is real the spectrum is Hermitian
//! (`X[n−k] = conj(X[k])`), so only the `n/2 + 1` bins `X[0..=m]` are
//! stored. The inverse reverses the unpack exactly and feeds one
//! half-length inverse FFT. Net effect: the dominant `O(n log n)` term
//! runs at half length, roughly halving transform flops and cache
//! traffic for the all-subtables correlation path.

use std::sync::Arc;

use crate::cache::plan_for;
use crate::complex::Complex;
use crate::plan::{Direction, FftPlan};
use crate::FftError;

/// A reusable real-input FFT plan for a fixed power-of-two length.
///
/// Forward transforms map `n` reals to the `n/2 + 1` non-redundant
/// spectrum bins; [`RfftPlan::inverse_real`] maps them back.
///
/// ```
/// use tabsketch_fft::RfftPlan;
///
/// let plan = RfftPlan::new(8).unwrap();
/// let signal = [1.0, -2.0, 3.0, 0.5, 0.0, 4.0, -1.0, 2.0];
/// let spec = plan.forward_real(&signal);
/// assert_eq!(spec.len(), 5); // n/2 + 1 bins
/// let back = plan.inverse_real(&spec).unwrap();
/// for (a, b) in back.iter().zip(&signal) {
///     assert!((a - b).abs() < 1e-12);
/// }
/// ```
#[derive(Clone, Debug)]
pub struct RfftPlan {
    n: usize,
    /// Shared half-length complex plan (`None` only for `n == 1`).
    half: Option<Arc<FftPlan>>,
    /// Unpack twiddles `e^{−2πik/n}` for `k` in `0..=n/2`.
    twiddles: Vec<Complex>,
}

impl RfftPlan {
    /// Creates a plan for real transforms of length `n`.
    ///
    /// The half-length complex plan is taken from the process-wide plan
    /// cache, so an `RfftPlan` for length `n` and a complex plan for
    /// length `n/2` share their tables.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::NotPowerOfTwo`] unless `n` is a power of two
    /// (length 1 is allowed and is the identity transform).
    pub fn new(n: usize) -> Result<Self, FftError> {
        if n == 0 || !n.is_power_of_two() {
            return Err(FftError::NotPowerOfTwo(n));
        }
        if n == 1 {
            return Ok(Self {
                n,
                half: None,
                twiddles: vec![Complex::from_real(1.0)],
            });
        }
        let m = n / 2;
        let half = plan_for(m)?;
        let step = -2.0 * core::f64::consts::PI / n as f64;
        let twiddles = (0..=m).map(|k| Complex::cis(step * k as f64)).collect();
        Ok(Self {
            n,
            half: Some(half),
            twiddles,
        })
    }

    /// The real signal length this plan was built for.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false: plans of length zero cannot be constructed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of spectrum bins a forward transform produces: `n/2 + 1`.
    #[inline]
    pub fn spectrum_len(&self) -> usize {
        self.n / 2 + 1
    }

    /// Heap footprint of this plan's tables in bytes (excluding the
    /// shared half-length complex plan, which the cache accounts for
    /// separately).
    pub fn footprint_bytes(&self) -> usize {
        self.twiddles.len() * core::mem::size_of::<Complex>()
    }

    /// Forward transform of a real signal, zero-padded or truncated to
    /// the plan length, returning the `n/2 + 1` non-redundant bins of
    /// its Hermitian spectrum.
    pub fn forward_real(&self, signal: &[f64]) -> Vec<Complex> {
        let mut out = vec![Complex::default(); self.spectrum_len()];
        self.forward_real_into(signal, &mut out)
            .expect("output length matches plan by construction");
        out
    }

    /// [`RfftPlan::forward_real`] into a caller-provided buffer of
    /// exactly `n/2 + 1` bins, avoiding the output allocation on hot
    /// per-row loops.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] when `out.len()` differs
    /// from [`RfftPlan::spectrum_len`].
    pub fn forward_real_into(&self, signal: &[f64], out: &mut [Complex]) -> Result<(), FftError> {
        if out.len() != self.spectrum_len() {
            return Err(FftError::LengthMismatch {
                expected: self.spectrum_len(),
                got: out.len(),
            });
        }
        tabsketch_obs::counter!("fft.rfft.transforms").inc();
        if self.n == 1 {
            out[0] = Complex::from_real(signal.first().copied().unwrap_or(0.0));
            return Ok(());
        }
        let m = self.n / 2;
        // Pack consecutive sample pairs into one complex point each,
        // zero-padding (or truncating) to the plan length.
        let mut z = vec![Complex::default(); m];
        let take = signal.len().min(self.n);
        for (j, zj) in z.iter_mut().enumerate().take(take.div_ceil(2)) {
            let re = signal[2 * j];
            let im = if 2 * j + 1 < take {
                signal[2 * j + 1]
            } else {
                0.0
            };
            *zj = Complex::new(re, im);
        }
        let half = self.half.as_ref().expect("n > 1 has a half plan");
        half.transform(&mut z, Direction::Forward)
            .expect("packed buffer length matches half plan");
        // Twiddle unpack: separate the even/odd sample spectra and
        // recombine. Index (m − k) mod m folds k = 0 onto itself.
        for (k, slot) in out.iter_mut().enumerate() {
            let zk = if k == m { z[0] } else { z[k] };
            let zc = z[(m - k) % m].conj();
            let e = (zk + zc).scale(0.5);
            let d = zk - zc;
            // O[k] = d / (2i) = −i·d/2.
            let o = Complex::new(d.im * 0.5, -d.re * 0.5);
            *slot = e + self.twiddles[k] * o;
        }
        Ok(())
    }

    /// Inverse transform: `n/2 + 1` Hermitian spectrum bins back to `n`
    /// reals, including the `1/n` normalization.
    ///
    /// The bins are interpreted as `X[0..=n/2]` of a Hermitian spectrum;
    /// the imaginary parts of `X[0]` and `X[n/2]` (zero for any spectrum
    /// produced by [`RfftPlan::forward_real`]) are ignored.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] when `spec.len()` differs
    /// from [`RfftPlan::spectrum_len`].
    pub fn inverse_real(&self, spec: &[Complex]) -> Result<Vec<f64>, FftError> {
        if spec.len() != self.spectrum_len() {
            return Err(FftError::LengthMismatch {
                expected: self.spectrum_len(),
                got: spec.len(),
            });
        }
        tabsketch_obs::counter!("fft.rfft.transforms").inc();
        if self.n == 1 {
            return Ok(vec![spec[0].re]);
        }
        let m = self.n / 2;
        // Repack: invert the forward unpack exactly, then one
        // half-length inverse transform (whose 1/m scale is exactly the
        // 1/n the pair-packed signal needs).
        let mut z = vec![Complex::default(); m];
        for (k, zk) in z.iter_mut().enumerate() {
            let xk = spec[k];
            let xc = spec[m - k].conj();
            let e = (xk + xc).scale(0.5);
            let wo = (xk - xc).scale(0.5);
            let o = self.twiddles[k].conj() * wo;
            *zk = e + Complex::new(-o.im, o.re);
        }
        let half = self.half.as_ref().expect("n > 1 has a half plan");
        half.transform(&mut z, Direction::Inverse)
            .expect("packed buffer length matches half plan");
        let mut out = Vec::with_capacity(self.n);
        for zj in &z {
            out.push(zj.re);
            out.push(zj.im);
        }
        Ok(out)
    }
}

/// The full Hermitian spectrum of a real signal of any length, as a
/// convenience for oracles and tests: power-of-two lengths use the
/// cached [`RfftPlan`]; other lengths fall back to
/// [`crate::BluesteinPlan`]'s arbitrary-length transform.
///
/// Returns all `signal.len()` bins (not the half spectrum).
///
/// # Errors
///
/// Propagates plan-construction failures; `signal.len() == 0` yields an
/// empty spectrum.
pub fn real_spectrum(signal: &[f64]) -> Result<Vec<Complex>, FftError> {
    let n = signal.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    if n.is_power_of_two() {
        let half = crate::cache::rplan_for(n)?.forward_real(signal);
        let mut out = vec![Complex::default(); n];
        out[..half.len()].copy_from_slice(&half);
        for k in half.len()..n {
            out[k] = half[n - k].conj();
        }
        Ok(out)
    } else {
        let plan = crate::bluestein::BluesteinPlan::new(n)?;
        let mut buf: Vec<Complex> = signal.iter().map(|&x| Complex::from_real(x)).collect();
        plan.transform(&mut buf, Direction::Forward)?;
        Ok(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::dft_naive;

    fn naive_real_spectrum(signal: &[f64]) -> Vec<Complex> {
        let data: Vec<Complex> = signal.iter().map(|&x| Complex::from_real(x)).collect();
        dft_naive(&data, Direction::Forward)
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert!(matches!(RfftPlan::new(0), Err(FftError::NotPowerOfTwo(0))));
        assert!(matches!(RfftPlan::new(6), Err(FftError::NotPowerOfTwo(6))));
        assert!(RfftPlan::new(1).is_ok());
        assert!(RfftPlan::new(2).is_ok());
    }

    #[test]
    fn matches_naive_dft_half_spectrum() {
        for &n in &[1usize, 2, 4, 8, 16, 64, 256] {
            let plan = RfftPlan::new(n).unwrap();
            let signal: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.61).sin() + 0.3).collect();
            let spec = plan.forward_real(&signal);
            let full = naive_real_spectrum(&signal);
            assert_eq!(spec.len(), n / 2 + 1);
            for (k, z) in spec.iter().enumerate() {
                assert!(
                    (z.re - full[k].re).abs() < 1e-9 && (z.im - full[k].im).abs() < 1e-9,
                    "n={n} bin {k}: {z:?} vs {:?}",
                    full[k]
                );
            }
        }
    }

    #[test]
    fn dc_and_nyquist_bins_are_real() {
        let plan = RfftPlan::new(32).unwrap();
        let signal: Vec<f64> = (0..32).map(|i| (i as f64 * 1.7).cos() - 0.2).collect();
        let spec = plan.forward_real(&signal);
        assert!(spec[0].im.abs() < 1e-12, "DC bin must be real");
        assert!(spec[16].im.abs() < 1e-12, "Nyquist bin must be real");
    }

    #[test]
    fn roundtrip_recovers_signal() {
        for &n in &[1usize, 2, 8, 128] {
            let plan = RfftPlan::new(n).unwrap();
            let signal: Vec<f64> = (0..n).map(|i| (i as f64 - 3.0) * 0.25).collect();
            let back = plan.inverse_real(&plan.forward_real(&signal)).unwrap();
            assert_eq!(back.len(), n);
            for (a, b) in back.iter().zip(&signal) {
                assert!((a - b).abs() < 1e-12, "n={n}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn forward_pads_and_truncates_like_complex_forward_real() {
        let plan = RfftPlan::new(8).unwrap();
        let spec = plan.forward_real(&[1.0, 2.0, 3.0]);
        assert!((spec[0].re - 6.0).abs() < 1e-12, "padded DC is the sum");
        let spec2 = plan.forward_real(&[1.0; 20]);
        assert!((spec2[0].re - 8.0).abs() < 1e-12, "extra samples ignored");
        // Odd take: the final packed point has a zero imaginary half.
        let spec3 = plan.forward_real(&[0.0, 0.0, 0.0, 0.0, 5.0]);
        let full = naive_real_spectrum(&[0.0, 0.0, 0.0, 0.0, 5.0, 0.0, 0.0, 0.0]);
        for (k, z) in spec3.iter().enumerate() {
            assert!((z.re - full[k].re).abs() < 1e-9 && (z.im - full[k].im).abs() < 1e-9);
        }
    }

    #[test]
    fn inverse_rejects_wrong_length() {
        let plan = RfftPlan::new(8).unwrap();
        assert!(matches!(
            plan.inverse_real(&[Complex::default(); 4]),
            Err(FftError::LengthMismatch {
                expected: 5,
                got: 4
            })
        ));
    }

    #[test]
    fn real_spectrum_covers_pow2_and_bluestein_lengths() {
        for &n in &[1usize, 2, 5, 8, 12, 17, 31, 64] {
            let signal: Vec<f64> = (0..n).map(|i| (i as f64 * 0.9).sin() - 0.1).collect();
            let fast = real_spectrum(&signal).unwrap();
            let slow = naive_real_spectrum(&signal);
            assert_eq!(fast.len(), n);
            for (k, (a, b)) in fast.iter().zip(&slow).enumerate() {
                assert!(
                    (a.re - b.re).abs() < 1e-8 && (a.im - b.im).abs() < 1e-8,
                    "n={n} bin {k}: {a:?} vs {b:?}"
                );
            }
        }
    }
}
