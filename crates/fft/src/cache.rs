//! A process-wide FFT plan cache.
//!
//! Planning a radix-2 transform builds bit-reversal and twiddle tables
//! — `O(n)` work and two allocations that the 1-D entry points used to
//! repeat on every call. Lengths are powers of two bounded by table
//! sizes, so the live set is tiny; the cache hands out `Arc` clones of
//! at most [`MAX_PLANS`] plans and reports hits/misses through the
//! `fft.plan_cache.*` registry keys.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use tabsketch_obs as obs;

use crate::plan::FftPlan;
use crate::FftError;

/// Distinct plan lengths kept resident. Power-of-two lengths up to
/// 2^64 could only ever produce 64 entries; the bound exists so a
/// pathological caller cannot pin unbounded memory.
pub const MAX_PLANS: usize = 64;

static PLANS: OnceLock<Mutex<HashMap<usize, Arc<FftPlan>>>> = OnceLock::new();

/// A shared plan for transforms of length `n`, built on first use and
/// cached for the life of the process.
///
/// # Errors
///
/// Returns [`FftError::NotPowerOfTwo`] when `n` is not a power of two.
pub fn plan_for(n: usize) -> Result<Arc<FftPlan>, FftError> {
    let cache = PLANS.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().expect("fft plan cache lock");
    if let Some(plan) = map.get(&n) {
        obs::counter!("fft.plan_cache.hits").inc();
        return Ok(Arc::clone(plan));
    }
    obs::counter!("fft.plan_cache.misses").inc();
    let plan = Arc::new(FftPlan::new(n)?);
    if map.len() >= MAX_PLANS {
        obs::counter!("fft.plan_cache.evictions").add(map.len() as u64);
        map.clear();
    }
    map.insert(n, Arc::clone(&plan));
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_reuses_plans_and_rejects_bad_lengths() {
        let a = plan_for(1024).unwrap();
        let b = plan_for(1024).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same length, same plan");
        assert_eq!(a.len(), 1024);
        assert!(plan_for(1000).is_err());

        let hits = obs::counter("fft.plan_cache.hits").get();
        plan_for(1024).unwrap();
        assert!(obs::counter("fft.plan_cache.hits").get() > hits);
    }
}
