//! A process-wide FFT plan cache.
//!
//! Planning a transform builds bit-reversal and twiddle tables — `O(n)`
//! work and allocations that the 1-D entry points used to repeat on
//! every call. Lengths are powers of two bounded by table sizes, so the
//! live set is tiny; the cache hands out `Arc` clones of complex
//! ([`crate::FftPlan`]) and real-input ([`crate::RfftPlan`]) plans,
//! keyed separately so a real plan for length `n` never aliases the
//! complex plan for the same `n`.
//!
//! Eviction is by total cached footprint in bytes (not entry count):
//! when inserting a plan would push the resident tables past
//! [`MAX_PLAN_CACHE_BYTES`], the whole cache is dropped and rebuilt on
//! demand. Outstanding `Arc`s stay valid; only the cache's references
//! are released. Hits, misses, evictions, and the resident byte total
//! are reported through the `fft.plan_cache.*` registry keys.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use tabsketch_obs as obs;

use crate::plan::FftPlan;
use crate::rfft::RfftPlan;
use crate::FftError;

/// Byte budget for resident plan tables. A plan for length `n` costs
/// `~12n` bytes, so 16 MiB holds every power of two up to `2^20`
/// simultaneously — far beyond any table dimension this workspace
/// processes — while still bounding a pathological caller.
pub const MAX_PLAN_CACHE_BYTES: usize = 16 << 20;

#[derive(Default)]
struct CacheState {
    complex: HashMap<usize, Arc<FftPlan>>,
    real: HashMap<usize, Arc<RfftPlan>>,
    bytes: usize,
}

impl CacheState {
    /// Drops every cached plan if admitting `incoming` more bytes would
    /// exceed the budget, then records the new resident total.
    fn admit(&mut self, incoming: usize) {
        if self.bytes + incoming > MAX_PLAN_CACHE_BYTES {
            let evicted = (self.complex.len() + self.real.len()) as u64;
            obs::counter!("fft.plan_cache.evictions").add(evicted);
            self.complex.clear();
            self.real.clear();
            self.bytes = 0;
        }
        self.bytes += incoming;
        obs::gauge!("fft.plan_cache.bytes").set(self.bytes as u64);
    }
}

static CACHE: OnceLock<Mutex<CacheState>> = OnceLock::new();

fn cache() -> &'static Mutex<CacheState> {
    CACHE.get_or_init(|| Mutex::new(CacheState::default()))
}

/// A shared complex plan for transforms of length `n`, built on first
/// use and cached for the life of the process.
///
/// # Errors
///
/// Returns [`FftError::NotPowerOfTwo`] when `n` is not a power of two.
pub fn plan_for(n: usize) -> Result<Arc<FftPlan>, FftError> {
    let mut state = cache().lock().expect("fft plan cache lock");
    if let Some(plan) = state.complex.get(&n) {
        obs::counter!("fft.plan_cache.hits").inc();
        return Ok(Arc::clone(plan));
    }
    obs::counter!("fft.plan_cache.misses").inc();
    let plan = Arc::new(FftPlan::new(n)?);
    state.admit(plan.footprint_bytes());
    state.complex.insert(n, Arc::clone(&plan));
    Ok(plan)
}

/// A shared real-input plan for transforms of length `n`, built on
/// first use and cached for the life of the process. Keyed separately
/// from [`plan_for`]'s complex plans: both can coexist for the same `n`.
///
/// # Errors
///
/// Returns [`FftError::NotPowerOfTwo`] when `n` is not a power of two.
pub fn rplan_for(n: usize) -> Result<Arc<RfftPlan>, FftError> {
    if let Some(plan) = cache()
        .lock()
        .expect("fft plan cache lock")
        .real
        .get(&n)
        .map(Arc::clone)
    {
        obs::counter!("fft.plan_cache.hits").inc();
        return Ok(plan);
    }
    obs::counter!("fft.plan_cache.misses").inc();
    // Built outside the cache lock: constructing an `RfftPlan` fetches
    // its half-length complex plan through `plan_for`, which takes the
    // same lock. A concurrent duplicate build is harmless — both
    // produce identical tables and the second insert wins.
    let plan = Arc::new(RfftPlan::new(n)?);
    let mut state = cache().lock().expect("fft plan cache lock");
    if let Some(existing) = state.real.get(&n) {
        return Ok(Arc::clone(existing));
    }
    state.admit(plan.footprint_bytes());
    state.real.insert(n, Arc::clone(&plan));
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_reuses_plans_and_rejects_bad_lengths() {
        let a = plan_for(1024).unwrap();
        let b = plan_for(1024).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same length, same plan");
        assert_eq!(a.len(), 1024);
        assert!(plan_for(1000).is_err());

        let hits = obs::counter("fft.plan_cache.hits").get();
        plan_for(1024).unwrap();
        assert!(obs::counter("fft.plan_cache.hits").get() > hits);
    }

    #[test]
    fn real_and_complex_plans_for_same_length_never_alias() {
        let n = 512;
        let c = plan_for(n).unwrap();
        let r = rplan_for(n).unwrap();
        let r2 = rplan_for(n).unwrap();
        assert!(Arc::ptr_eq(&r, &r2), "real plans are cached");
        assert_eq!(c.len(), n);
        assert_eq!(r.len(), n);
        // Distinct types can't literally alias, but the cache keys must
        // also stay separate: asking for one must not evict or shadow
        // the other, and both stay resident for the same n.
        let c2 = plan_for(n).unwrap();
        assert!(
            Arc::ptr_eq(&c, &c2),
            "rplan_for(n) must not disturb plan_for(n)"
        );
        assert_eq!(r.spectrum_len(), n / 2 + 1);
    }

    #[test]
    fn rplan_rejects_bad_lengths() {
        assert!(rplan_for(0).is_err());
        assert!(rplan_for(48).is_err());
        assert!(rplan_for(1).is_ok());
    }

    #[test]
    fn cache_reports_resident_bytes() {
        plan_for(2048).unwrap();
        rplan_for(2048).unwrap();
        let resident = obs::gauge("fft.plan_cache.bytes").get();
        assert!(resident > 0, "byte gauge must track resident plans");
        assert!(
            (resident as usize) <= MAX_PLAN_CACHE_BYTES,
            "resident {resident} B exceeds the {MAX_PLAN_CACHE_BYTES} B budget"
        );
    }
}
