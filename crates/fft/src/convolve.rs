//! FFT-based convolution and cross-correlation.
//!
//! The workhorse of Theorem 3 in the paper: the dot product of a fixed
//! `a × b` kernel with *every* `a × b` subrectangle of an `n × m` table is a
//! "valid-mode" 2-D cross-correlation, computable in `O(N log N)` instead of
//! `O(N·M)` (N = table size, M = kernel size).
//!
//! [`Correlator2d`] amortizes the forward transform of the data across many
//! kernels, which is exactly the sketching access pattern (one table, `k`
//! random kernels).

use tabsketch_obs as obs;

use crate::cache::rplan_for;
use crate::complex::Complex;
use crate::fft2d::Fft2dPlan;
use crate::plan::{next_pow2, Direction};
use crate::FftError;

/// Full linear convolution of two real signals, `out.len() = a.len() + b.len() - 1`.
///
/// Uses the FFT when the output is large enough to amortize planning,
/// otherwise falls back to the direct method.
pub fn convolve_1d(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let out_len = a.len() + b.len() - 1;
    if out_len <= 64 {
        return convolve_1d_naive(a, b);
    }
    let _span = obs::span("fft.convolve_1d");
    let n = next_pow2(out_len);
    // Both inputs are real, so the half-spectrum rfft path does the
    // same multiply over n/2+1 bins instead of n.
    let plan = rplan_for(n).expect("next_pow2 is a power of two");
    let mut fa = plan.forward_real(a);
    let fb = plan.forward_real(b);
    for (x, y) in fa.iter_mut().zip(&fb) {
        *x *= *y;
    }
    let mut real = plan.inverse_real(&fa).expect("length matches plan");
    real.truncate(out_len);
    real
}

/// Direct `O(n·m)` linear convolution; reference implementation.
pub fn convolve_1d_naive(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0.0; a.len() + b.len() - 1];
    for (i, &x) in a.iter().enumerate() {
        for (j, &y) in b.iter().enumerate() {
            out[i + j] += x * y;
        }
    }
    out
}

/// Valid-mode 1-D cross-correlation: `out[i] = Σ_j data[i+j]·kernel[j]`,
/// for `i` in `0..=data.len()-kernel.len()`.
///
/// Returns an empty vector when the kernel is longer than the data.
pub fn cross_correlate_1d_valid(data: &[f64], kernel: &[f64]) -> Vec<f64> {
    if kernel.is_empty() || kernel.len() > data.len() {
        return Vec::new();
    }
    let out_len = data.len() - kernel.len() + 1;
    if data.len() * kernel.len() <= 4096 {
        return cross_correlate_1d_valid_naive(data, kernel);
    }
    let _span = obs::span("fft.correlate_1d");
    let n = next_pow2(data.len());
    let plan = rplan_for(n).expect("next_pow2 is a power of two");
    let mut fd = plan.forward_real(data);
    let fk = plan.forward_real(kernel);
    // Correlation = convolution with the conjugate spectrum of the kernel.
    for (x, y) in fd.iter_mut().zip(&fk) {
        *x *= y.conj();
    }
    let mut real = plan.inverse_real(&fd).expect("length matches plan");
    real.truncate(out_len);
    real
}

/// Direct valid-mode 1-D cross-correlation; reference implementation.
pub fn cross_correlate_1d_valid_naive(data: &[f64], kernel: &[f64]) -> Vec<f64> {
    if kernel.is_empty() || kernel.len() > data.len() {
        return Vec::new();
    }
    let out_len = data.len() - kernel.len() + 1;
    let mut out = Vec::with_capacity(out_len);
    for i in 0..out_len {
        let window = &data[i..i + kernel.len()];
        out.push(window.iter().zip(kernel).map(|(&d, &k)| d * k).sum());
    }
    out
}

/// Direct valid-mode 2-D cross-correlation; reference implementation.
///
/// `data` is row-major `rows × cols`, `kernel` is row-major `krows × kcols`.
/// Output is row-major `(rows-krows+1) × (cols-kcols+1)`.
pub fn cross_correlate_2d_valid_naive(
    data: &[f64],
    rows: usize,
    cols: usize,
    kernel: &[f64],
    krows: usize,
    kcols: usize,
) -> Vec<f64> {
    assert_eq!(data.len(), rows * cols, "data length must equal rows*cols");
    assert_eq!(
        kernel.len(),
        krows * kcols,
        "kernel length must equal krows*kcols"
    );
    if krows == 0 || kcols == 0 || krows > rows || kcols > cols {
        return Vec::new();
    }
    let out_rows = rows - krows + 1;
    let out_cols = cols - kcols + 1;
    let mut out = vec![0.0; out_rows * out_cols];
    for or in 0..out_rows {
        for oc in 0..out_cols {
            let mut acc = 0.0;
            for r in 0..krows {
                let drow = &data[(or + r) * cols + oc..(or + r) * cols + oc + kcols];
                let krow = &kernel[r * kcols..(r + 1) * kcols];
                for (d, k) in drow.iter().zip(krow) {
                    acc += d * k;
                }
            }
            out[or * out_cols + oc] = acc;
        }
    }
    out
}

/// A 2-D correlator that transforms the data once and correlates it with
/// many kernels of (up to) a fixed maximum size.
///
/// This is the access pattern of all-subtable sketching: one table, `k`
/// random kernels. Each [`Correlator2d::correlate`] call costs one forward
/// and one inverse FFT over the padded grid; the data transform is shared.
///
/// Both the table and every kernel are real, so the correlator stores
/// only the `rows × (cols/2 + 1)` **half spectrum** of the data (the
/// rest is its Hermitian mirror) and runs single-kernel correlations
/// entirely on the real-input FFT path — roughly half the transform
/// flops and data-spectrum memory of the complex-path equivalent, which
/// survives as [`Correlator2d::correlate_complex`] for tests and
/// benchmarks.
#[derive(Clone, Debug)]
pub struct Correlator2d {
    plan: Fft2dPlan,
    data_half: Vec<Complex>,
    rows: usize,
    cols: usize,
}

impl Correlator2d {
    /// Builds a correlator over a row-major `rows × cols` table.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if `data.len() != rows * cols`
    /// or the table is empty.
    pub fn new(data: &[f64], rows: usize, cols: usize) -> Result<Self, FftError> {
        if rows == 0 || cols == 0 || data.len() != rows * cols {
            return Err(FftError::LengthMismatch {
                expected: rows * cols,
                got: data.len(),
            });
        }
        let _span = obs::span("fft.correlator.build");
        let plan = Fft2dPlan::new(next_pow2(rows), next_pow2(cols))?;
        let data_half = plan.forward_real_padded_half(data, rows, cols)?;
        Ok(Self {
            plan,
            data_half,
            rows,
            cols,
        })
    }

    /// The data spectrum at a full-grid bin `(u, v)`, reading stored
    /// bins directly and mirrored bins through Hermitian symmetry
    /// (`X[u, v] = conj(X[(R−u) mod R, (C−v) mod C])`).
    #[inline]
    fn data_spec_at(&self, u: usize, v: usize) -> Complex {
        let hc = self.plan.half_cols();
        if v < hc {
            self.data_half[u * hc + v]
        } else {
            let mu = if u == 0 { 0 } else { self.plan.rows() - u };
            let mv = self.plan.cols() - v;
            self.data_half[mu * hc + mv].conj()
        }
    }

    /// Table rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Table columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Valid-mode cross-correlation of the stored table with `kernel`
    /// (row-major `krows × kcols`). Output is row-major
    /// `(rows-krows+1) × (cols-kcols+1)`:
    /// `out[i][j] = Σ_{r,c} data[i+r][j+c] · kernel[r][c]`.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] when the kernel is empty, larger
    /// than the table, or its buffer length disagrees with its dimensions.
    pub fn correlate(
        &self,
        kernel: &[f64],
        krows: usize,
        kcols: usize,
    ) -> Result<Vec<f64>, FftError> {
        if kernel.len() != krows * kcols {
            return Err(FftError::LengthMismatch {
                expected: krows * kcols,
                got: kernel.len(),
            });
        }
        if krows == 0 || kcols == 0 || krows > self.rows || kcols > self.cols {
            return Err(FftError::KernelTooLarge {
                krows,
                kcols,
                rows: self.rows,
                cols: self.cols,
            });
        }
        let _span = obs::span("fft.correlator.correlate");
        let mut spec = self.plan.forward_real_padded_half(kernel, krows, kcols)?;
        for (x, y) in spec.iter_mut().zip(&self.data_half) {
            *x = *y * x.conj();
        }
        let real = self.plan.inverse_half_to_real(spec)?;
        let out_rows = self.rows - krows + 1;
        let out_cols = self.cols - kcols + 1;
        let padded_cols = self.plan.cols();
        let mut out = Vec::with_capacity(out_rows * out_cols);
        for r in 0..out_rows {
            out.extend_from_slice(&real[r * padded_cols..r * padded_cols + out_cols]);
        }
        Ok(out)
    }

    /// [`Correlator2d::correlate`] over the full complex spectrum — the
    /// pre-rfft reference path, kept public so equivalence tests and the
    /// kernel benchmark can pin the rfft speedup against it. One full
    /// complex forward, full-grid multiply, and full complex inverse per
    /// call.
    ///
    /// # Errors
    ///
    /// Same contract as [`Correlator2d::correlate`].
    pub fn correlate_complex(
        &self,
        kernel: &[f64],
        krows: usize,
        kcols: usize,
    ) -> Result<Vec<f64>, FftError> {
        if kernel.len() != krows * kcols {
            return Err(FftError::LengthMismatch {
                expected: krows * kcols,
                got: kernel.len(),
            });
        }
        if krows == 0 || kcols == 0 || krows > self.rows || kcols > self.cols {
            return Err(FftError::KernelTooLarge {
                krows,
                kcols,
                rows: self.rows,
                cols: self.cols,
            });
        }
        let mut spec = self.plan.forward_real_padded(kernel, krows, kcols)?;
        let pcols = self.plan.cols();
        for u in 0..self.plan.rows() {
            for v in 0..pcols {
                let x = &mut spec[u * pcols + v];
                *x = self.data_spec_at(u, v) * x.conj();
            }
        }
        self.plan.transform(&mut spec, Direction::Inverse)?;
        let out_rows = self.rows - krows + 1;
        let out_cols = self.cols - kcols + 1;
        let mut out = Vec::with_capacity(out_rows * out_cols);
        for r in 0..out_rows {
            out.extend(spec[r * pcols..r * pcols + out_cols].iter().map(|z| z.re));
        }
        Ok(out)
    }

    /// Correlates **two** same-shape real kernels with one forward and
    /// one inverse FFT — half the transform work of two
    /// [`Correlator2d::correlate`] calls.
    ///
    /// The kernels are packed as `k1 + i·k2`; because both are real,
    /// their spectra are recovered from the packed spectrum's conjugate
    /// symmetry (`F[u,v] = conj(F[−u mod P, −v mod Q])`), and because both
    /// correlation outputs are real they ride back through a single
    /// inverse transform as its real and imaginary parts.
    ///
    /// This is the workhorse of sketch preprocessing, where kernels come
    /// in large batches of identical shape (one per sketch row).
    ///
    /// # Errors
    ///
    /// Same contract as [`Correlator2d::correlate`], applied to both
    /// kernels.
    pub fn correlate_pair(
        &self,
        kernel1: &[f64],
        kernel2: &[f64],
        krows: usize,
        kcols: usize,
    ) -> Result<(Vec<f64>, Vec<f64>), FftError> {
        if kernel1.len() != krows * kcols || kernel2.len() != krows * kcols {
            return Err(FftError::LengthMismatch {
                expected: krows * kcols,
                got: kernel1.len().min(kernel2.len()),
            });
        }
        if krows == 0 || kcols == 0 || krows > self.rows || kcols > self.cols {
            return Err(FftError::KernelTooLarge {
                krows,
                kcols,
                rows: self.rows,
                cols: self.cols,
            });
        }
        let _span = obs::span("fft.correlator.correlate_pair");
        let (prows, pcols) = (self.plan.rows(), self.plan.cols());
        // Pack k1 + i·k2 into the padded grid and transform once.
        let mut packed = vec![Complex::default(); prows * pcols];
        for r in 0..krows {
            for c in 0..kcols {
                packed[r * pcols + c] =
                    Complex::new(kernel1[r * kcols + c], kernel2[r * kcols + c]);
            }
        }
        self.plan.transform(&mut packed, Direction::Forward)?;
        // Unpack per frequency bin, multiply with the data spectrum, and
        // repack the two (real-output) correlation spectra as G1 + i·G2.
        let mut out_spec = vec![Complex::default(); prows * pcols];
        for u in 0..prows {
            let mu = if u == 0 { 0 } else { prows - u };
            for v in 0..pcols {
                let mv = if v == 0 { 0 } else { pcols - v };
                let z = packed[u * pcols + v];
                let zc = packed[mu * pcols + mv].conj();
                let f1 = (z + zc).scale(0.5);
                // (z - zc) / (2i) = -i/2 · (z - zc).
                let d = z - zc;
                let f2 = Complex::new(d.im * 0.5, -d.re * 0.5);
                let dspec = self.data_spec_at(u, v);
                let g1 = dspec * f1.conj();
                let g2 = dspec * f2.conj();
                out_spec[u * pcols + v] = g1 + Complex::new(-g2.im, g2.re); // g1 + i·g2
            }
        }
        self.plan.transform(&mut out_spec, Direction::Inverse)?;
        let out_rows = self.rows - krows + 1;
        let out_cols = self.cols - kcols + 1;
        let mut out1 = Vec::with_capacity(out_rows * out_cols);
        let mut out2 = Vec::with_capacity(out_rows * out_cols);
        for r in 0..out_rows {
            for z in &out_spec[r * pcols..r * pcols + out_cols] {
                out1.push(z.re);
                out2.push(z.im);
            }
        }
        Ok((out1, out2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_slices_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < tol, "index {i}: {x} vs {y}");
        }
    }

    #[test]
    fn convolve_small_known_answer() {
        // [1,2,3] * [4,5] = [4, 13, 22, 15]
        assert_slices_close(
            &convolve_1d(&[1.0, 2.0, 3.0], &[4.0, 5.0]),
            &[4.0, 13.0, 22.0, 15.0],
            1e-12,
        );
    }

    #[test]
    fn convolve_fft_matches_naive_on_large_input() {
        let a: Vec<f64> = (0..300).map(|i| ((i * 7) % 13) as f64 - 6.0).collect();
        let b: Vec<f64> = (0..77).map(|i| ((i * 5) % 11) as f64 - 5.0).collect();
        assert_slices_close(&convolve_1d(&a, &b), &convolve_1d_naive(&a, &b), 1e-6);
    }

    #[test]
    fn convolve_empty_inputs() {
        assert!(convolve_1d(&[], &[1.0]).is_empty());
        assert!(convolve_1d(&[1.0], &[]).is_empty());
    }

    #[test]
    fn correlate_1d_known_answer() {
        // data=[1,2,3,4], kernel=[1,1] -> [3,5,7]
        assert_slices_close(
            &cross_correlate_1d_valid(&[1.0, 2.0, 3.0, 4.0], &[1.0, 1.0]),
            &[3.0, 5.0, 7.0],
            1e-12,
        );
    }

    #[test]
    fn correlate_1d_fft_matches_naive() {
        let data: Vec<f64> = (0..500).map(|i| (i as f64 * 0.3).sin() * 10.0).collect();
        let kernel: Vec<f64> = (0..40).map(|i| (i as f64 * 0.9).cos()).collect();
        assert_slices_close(
            &cross_correlate_1d_valid(&data, &kernel),
            &cross_correlate_1d_valid_naive(&data, &kernel),
            1e-6,
        );
    }

    #[test]
    fn correlate_1d_kernel_longer_than_data() {
        assert!(cross_correlate_1d_valid(&[1.0], &[1.0, 2.0]).is_empty());
        assert!(cross_correlate_1d_valid(&[1.0, 2.0], &[]).is_empty());
    }

    #[test]
    fn correlate_1d_kernel_equals_data_len() {
        let out = cross_correlate_1d_valid(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]);
        assert_eq!(out.len(), 1);
        assert!((out[0] - 32.0).abs() < 1e-12);
    }

    #[test]
    fn correlator2d_matches_naive() {
        let (rows, cols) = (13, 17);
        let data: Vec<f64> = (0..rows * cols)
            .map(|i| ((i * 31) % 101) as f64 - 50.0)
            .collect();
        let corr = Correlator2d::new(&data, rows, cols).unwrap();
        for &(kr, kc) in &[(1usize, 1usize), (2, 3), (4, 4), (13, 17), (1, 17), (13, 1)] {
            let kernel: Vec<f64> = (0..kr * kc).map(|i| ((i * 7) % 23) as f64 - 11.0).collect();
            let fast = corr.correlate(&kernel, kr, kc).unwrap();
            let slow = cross_correlate_2d_valid_naive(&data, rows, cols, &kernel, kr, kc);
            assert_slices_close(&fast, &slow, 1e-6);
        }
    }

    #[test]
    fn correlator2d_single_cell_kernel_is_scaled_table() {
        let data = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let corr = Correlator2d::new(&data, 2, 3).unwrap();
        let out = corr.correlate(&[2.0], 1, 1).unwrap();
        assert_slices_close(&out, &[2.0, 4.0, 6.0, 8.0, 10.0, 12.0], 1e-9);
    }

    #[test]
    fn correlate_pair_matches_two_singles() {
        let (rows, cols) = (11, 19);
        let data: Vec<f64> = (0..rows * cols)
            .map(|i| ((i * 13) % 89) as f64 - 44.0)
            .collect();
        let corr = Correlator2d::new(&data, rows, cols).unwrap();
        for &(kr, kc) in &[(1usize, 1usize), (3, 4), (5, 5), (11, 19)] {
            let k1: Vec<f64> = (0..kr * kc).map(|i| ((i * 7) % 19) as f64 - 9.0).collect();
            let k2: Vec<f64> = (0..kr * kc)
                .map(|i| ((i * 11) % 23) as f64 - 11.0)
                .collect();
            let (p1, p2) = corr.correlate_pair(&k1, &k2, kr, kc).unwrap();
            let s1 = corr.correlate(&k1, kr, kc).unwrap();
            let s2 = corr.correlate(&k2, kr, kc).unwrap();
            assert_slices_close(&p1, &s1, 1e-6);
            assert_slices_close(&p2, &s2, 1e-6);
        }
    }

    #[test]
    fn correlate_complex_reference_matches_rfft_path() {
        let (rows, cols) = (9, 14);
        let data: Vec<f64> = (0..rows * cols)
            .map(|i| ((i * 29) % 97) as f64 - 48.0)
            .collect();
        let corr = Correlator2d::new(&data, rows, cols).unwrap();
        for &(kr, kc) in &[(1usize, 1usize), (3, 5), (9, 14)] {
            let kernel: Vec<f64> = (0..kr * kc).map(|i| ((i * 3) % 17) as f64 - 8.0).collect();
            let fast = corr.correlate(&kernel, kr, kc).unwrap();
            let slow = corr.correlate_complex(&kernel, kr, kc).unwrap();
            assert_slices_close(&fast, &slow, 1e-8);
            let naive = cross_correlate_2d_valid_naive(&data, rows, cols, &kernel, kr, kc);
            assert_slices_close(&slow, &naive, 1e-6);
        }
        assert!(corr.correlate_complex(&[1.0; 4], 2, 3).is_err());
        assert!(corr.correlate_complex(&[], 0, 0).is_err());
    }

    #[test]
    fn correlate_pair_validation() {
        let corr = Correlator2d::new(&[1.0; 6], 2, 3).unwrap();
        assert!(corr.correlate_pair(&[1.0; 4], &[1.0; 4], 2, 2).is_ok());
        assert!(corr.correlate_pair(&[1.0; 4], &[1.0; 3], 2, 2).is_err());
        assert!(corr.correlate_pair(&[1.0; 9], &[1.0; 9], 3, 3).is_err());
        assert!(corr.correlate_pair(&[], &[], 0, 0).is_err());
    }

    #[test]
    fn correlator2d_rejects_bad_kernels() {
        let corr = Correlator2d::new(&[1.0; 6], 2, 3).unwrap();
        assert!(
            corr.correlate(&[1.0; 9], 3, 3).is_err(),
            "kernel taller than table"
        );
        assert!(corr.correlate(&[1.0; 4], 2, 3).is_err(), "length mismatch");
        assert!(corr.correlate(&[], 0, 0).is_err(), "empty kernel");
    }

    #[test]
    fn correlator2d_rejects_bad_table() {
        assert!(Correlator2d::new(&[1.0; 5], 2, 3).is_err());
        assert!(Correlator2d::new(&[], 0, 0).is_err());
    }

    #[test]
    fn correlator2d_full_size_kernel_is_dot_product() {
        let data = vec![1.0, 2.0, 3.0, 4.0];
        let kernel = vec![10.0, 20.0, 30.0, 40.0];
        let corr = Correlator2d::new(&data, 2, 2).unwrap();
        let out = corr.correlate(&kernel, 2, 2).unwrap();
        assert_eq!(out.len(), 1);
        assert!((out[0] - 300.0).abs() < 1e-9);
    }
}
