//! Two-dimensional FFT over row-major buffers.
//!
//! A [`Fft2dPlan`] combines two one-dimensional plans (one per axis) and a
//! scratch column buffer, transforming an `rows × cols` complex matrix in
//! place by transforming all rows and then all columns.
//!
//! Real inputs additionally get a **half-spectrum** path: each row goes
//! through the real-input FFT ([`crate::RfftPlan`]), keeping only the
//! `cols/2 + 1` non-redundant column bins, and the column transforms run
//! over that narrow grid. The full spectrum is recoverable by Hermitian
//! symmetry (`X[u, v] = conj(X[(rows−u) mod rows, (cols−v) mod cols])`),
//! so the half grid carries the same information at roughly half the
//! transform work and memory.

use std::sync::Arc;

use crate::cache::{plan_for, rplan_for};
use crate::complex::Complex;
use crate::plan::{Direction, FftPlan};
use crate::rfft::RfftPlan;
use crate::FftError;

/// A reusable 2-D FFT plan for fixed power-of-two dimensions.
///
/// The per-axis 1-D plans come from the process-wide plan cache, so
/// many correlators over same-width bands share one set of tables.
#[derive(Clone, Debug)]
pub struct Fft2dPlan {
    rows: usize,
    cols: usize,
    row_plan: Arc<FftPlan>,
    col_plan: Arc<FftPlan>,
    row_rplan: Arc<RfftPlan>,
}

impl Fft2dPlan {
    /// Creates a plan for `rows × cols` transforms. Both dimensions must be
    /// powers of two.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::NotPowerOfTwo`] if either dimension is not a
    /// power of two.
    pub fn new(rows: usize, cols: usize) -> Result<Self, FftError> {
        Ok(Self {
            rows,
            cols,
            row_plan: plan_for(cols)?,
            col_plan: plan_for(rows)?,
            row_rplan: rplan_for(cols)?,
        })
    }

    /// Number of rows the plan transforms.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns the plan transforms.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of non-redundant column bins in the half-spectrum layout:
    /// `cols/2 + 1`.
    #[inline]
    pub fn half_cols(&self) -> usize {
        self.cols / 2 + 1
    }

    /// Total number of elements (`rows * cols`).
    #[inline]
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// Always false (zero-sized plans cannot be constructed).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Transforms a row-major `rows × cols` buffer in place.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] when `data.len() != rows * cols`.
    pub fn transform(&self, data: &mut [Complex], dir: Direction) -> Result<(), FftError> {
        let expected = self.rows * self.cols;
        if data.len() != expected {
            return Err(FftError::LengthMismatch {
                expected,
                got: data.len(),
            });
        }
        // Rows: contiguous, transform directly.
        for row in data.chunks_exact_mut(self.cols) {
            self.row_plan.transform(row, dir)?;
        }
        // Columns: gather into a scratch buffer, transform, scatter back.
        let mut col_buf = vec![Complex::default(); self.rows];
        for c in 0..self.cols {
            for r in 0..self.rows {
                col_buf[r] = data[r * self.cols + c];
            }
            self.col_plan.transform(&mut col_buf, dir)?;
            for r in 0..self.rows {
                data[r * self.cols + c] = col_buf[r];
            }
        }
        Ok(())
    }

    /// Forward-transforms a real row-major matrix of logical size
    /// `src_rows × src_cols`, zero-padded into this plan's dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] when the source does not fit in
    /// the planned dimensions or `src.len() != src_rows * src_cols`.
    pub fn forward_real_padded(
        &self,
        src: &[f64],
        src_rows: usize,
        src_cols: usize,
    ) -> Result<Vec<Complex>, FftError> {
        if src.len() != src_rows * src_cols {
            return Err(FftError::LengthMismatch {
                expected: src_rows * src_cols,
                got: src.len(),
            });
        }
        if src_rows > self.rows || src_cols > self.cols {
            return Err(FftError::LengthMismatch {
                expected: self.rows * self.cols,
                got: src.len(),
            });
        }
        let mut buf = vec![Complex::default(); self.rows * self.cols];
        for r in 0..src_rows {
            let src_row = &src[r * src_cols..(r + 1) * src_cols];
            let dst_row = &mut buf[r * self.cols..r * self.cols + src_cols];
            for (dst, &s) in dst_row.iter_mut().zip(src_row) {
                *dst = Complex::from_real(s);
            }
        }
        self.transform(&mut buf, Direction::Forward)?;
        Ok(buf)
    }

    /// Real-input forward transform of a zero-padded `src_rows × src_cols`
    /// matrix, producing the row-major `rows × (cols/2 + 1)` half
    /// spectrum: each row goes through the real-input FFT, then the
    /// non-redundant columns are transformed with the complex column
    /// plan. Roughly halves the work of [`Fft2dPlan::forward_real_padded`].
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] when the source does not fit in
    /// the planned dimensions or `src.len() != src_rows * src_cols`.
    pub fn forward_real_padded_half(
        &self,
        src: &[f64],
        src_rows: usize,
        src_cols: usize,
    ) -> Result<Vec<Complex>, FftError> {
        if src.len() != src_rows * src_cols {
            return Err(FftError::LengthMismatch {
                expected: src_rows * src_cols,
                got: src.len(),
            });
        }
        if src_rows > self.rows || src_cols > self.cols {
            return Err(FftError::LengthMismatch {
                expected: self.rows * self.cols,
                got: src.len(),
            });
        }
        let hc = self.half_cols();
        let mut buf = vec![Complex::default(); self.rows * hc];
        for r in 0..src_rows {
            let src_row = &src[r * src_cols..(r + 1) * src_cols];
            self.row_rplan
                .forward_real_into(src_row, &mut buf[r * hc..(r + 1) * hc])?;
        }
        // Rows past `src_rows` are all-zero signals with all-zero
        // spectra; the buffer already holds them. Columns: complex
        // transform over each of the `hc` retained bins.
        let mut col_buf = vec![Complex::default(); self.rows];
        for c in 0..hc {
            for r in 0..self.rows {
                col_buf[r] = buf[r * hc + c];
            }
            self.col_plan.transform(&mut col_buf, Direction::Forward)?;
            for r in 0..self.rows {
                buf[r * hc + c] = col_buf[r];
            }
        }
        Ok(buf)
    }

    /// Inverse of [`Fft2dPlan::forward_real_padded_half`]: consumes a
    /// row-major `rows × (cols/2 + 1)` half spectrum and returns the
    /// `rows × cols` real matrix (row-major), including all
    /// normalization.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] when `spec.len()` differs
    /// from `rows * (cols/2 + 1)`.
    pub fn inverse_half_to_real(&self, mut spec: Vec<Complex>) -> Result<Vec<f64>, FftError> {
        let hc = self.half_cols();
        if spec.len() != self.rows * hc {
            return Err(FftError::LengthMismatch {
                expected: self.rows * hc,
                got: spec.len(),
            });
        }
        let mut col_buf = vec![Complex::default(); self.rows];
        for c in 0..hc {
            for r in 0..self.rows {
                col_buf[r] = spec[r * hc + c];
            }
            self.col_plan.transform(&mut col_buf, Direction::Inverse)?;
            for r in 0..self.rows {
                spec[r * hc + c] = col_buf[r];
            }
        }
        let mut out = vec![0.0f64; self.rows * self.cols];
        for r in 0..self.rows {
            let row = self.row_rplan.inverse_real(&spec[r * hc..(r + 1) * hc])?;
            out[r * self.cols..(r + 1) * self.cols].copy_from_slice(&row);
        }
        Ok(out)
    }
}

/// Naive 2-D DFT used as a test oracle.
pub fn dft2d_naive(data: &[Complex], rows: usize, cols: usize, dir: Direction) -> Vec<Complex> {
    assert_eq!(data.len(), rows * cols);
    let sign = match dir {
        Direction::Forward => -1.0,
        Direction::Inverse => 1.0,
    };
    let mut out = vec![Complex::default(); rows * cols];
    for kr in 0..rows {
        for kc in 0..cols {
            let mut acc = Complex::default();
            for r in 0..rows {
                for c in 0..cols {
                    let theta = sign
                        * 2.0
                        * core::f64::consts::PI
                        * ((r * kr) as f64 / rows as f64 + (c * kc) as f64 / cols as f64);
                    acc += data[r * cols + c] * Complex::cis(theta);
                }
            }
            if dir == Direction::Inverse {
                acc = acc.scale(1.0 / (rows * cols) as f64);
            }
            out[kr * cols + kc] = acc;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_dims() {
        assert!(Fft2dPlan::new(3, 4).is_err());
        assert!(Fft2dPlan::new(4, 6).is_err());
        assert!(Fft2dPlan::new(4, 4).is_ok());
        assert!(Fft2dPlan::new(1, 8).is_ok());
    }

    #[test]
    fn roundtrip_2d() {
        let plan = Fft2dPlan::new(8, 16).unwrap();
        let data: Vec<Complex> = (0..8 * 16)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let mut buf = data.clone();
        plan.transform(&mut buf, Direction::Forward).unwrap();
        plan.transform(&mut buf, Direction::Inverse).unwrap();
        for (a, b) in buf.iter().zip(&data) {
            assert!((a.re - b.re).abs() < 1e-9 && (a.im - b.im).abs() < 1e-9);
        }
    }

    #[test]
    fn matches_naive_2d_dft() {
        let (rows, cols) = (4, 8);
        let plan = Fft2dPlan::new(rows, cols).unwrap();
        let data: Vec<Complex> = (0..rows * cols)
            .map(|i| Complex::new((i % 5) as f64, ((i * 3) % 7) as f64))
            .collect();
        let mut fast = data.clone();
        plan.transform(&mut fast, Direction::Forward).unwrap();
        let slow = dft2d_naive(&data, rows, cols, Direction::Forward);
        for (a, b) in fast.iter().zip(&slow) {
            assert!((a.re - b.re).abs() < 1e-8 && (a.im - b.im).abs() < 1e-8);
        }
    }

    #[test]
    fn impulse_in_2d_is_flat() {
        let plan = Fft2dPlan::new(4, 4).unwrap();
        let mut buf = vec![Complex::default(); 16];
        buf[0] = Complex::from_real(1.0);
        plan.transform(&mut buf, Direction::Forward).unwrap();
        for z in &buf {
            assert!((z.re - 1.0).abs() < 1e-12 && z.im.abs() < 1e-12);
        }
    }

    #[test]
    fn forward_real_padded_places_signal_top_left() {
        let plan = Fft2dPlan::new(4, 4).unwrap();
        let spec = plan
            .forward_real_padded(&[1.0, 2.0, 3.0, 4.0], 2, 2)
            .unwrap();
        // DC bin equals sum of entries.
        assert!((spec[0].re - 10.0).abs() < 1e-12);
    }

    #[test]
    fn forward_real_padded_rejects_oversized() {
        let plan = Fft2dPlan::new(2, 2).unwrap();
        assert!(plan.forward_real_padded(&[0.0; 12], 3, 4).is_err());
        assert!(plan.forward_real_padded(&[0.0; 3], 2, 2).is_err());
    }

    #[test]
    fn half_spectrum_matches_full_forward() {
        let (rows, cols) = (8usize, 16usize);
        let plan = Fft2dPlan::new(rows, cols).unwrap();
        let src: Vec<f64> = (0..5 * 11).map(|i| ((i as f64) * 0.31).sin()).collect();
        let full = plan.forward_real_padded(&src, 5, 11).unwrap();
        let half = plan.forward_real_padded_half(&src, 5, 11).unwrap();
        let hc = plan.half_cols();
        assert_eq!(half.len(), rows * hc);
        for r in 0..rows {
            for c in 0..hc {
                let a = half[r * hc + c];
                let b = full[r * cols + c];
                assert!(
                    (a.re - b.re).abs() < 1e-9 && (a.im - b.im).abs() < 1e-9,
                    "bin ({r},{c}): {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn half_spectrum_roundtrip_recovers_padded_matrix() {
        let (rows, cols) = (4usize, 8usize);
        let plan = Fft2dPlan::new(rows, cols).unwrap();
        let src: Vec<f64> = (0..3 * 7).map(|i| (i as f64) - 10.0).collect();
        let spec = plan.forward_real_padded_half(&src, 3, 7).unwrap();
        let back = plan.inverse_half_to_real(spec).unwrap();
        assert_eq!(back.len(), rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                let want = if r < 3 && c < 7 { src[r * 7 + c] } else { 0.0 };
                assert!(
                    (back[r * cols + c] - want).abs() < 1e-9,
                    "cell ({r},{c}): {} vs {want}",
                    back[r * cols + c]
                );
            }
        }
    }

    #[test]
    fn inverse_half_rejects_wrong_length() {
        let plan = Fft2dPlan::new(4, 8).unwrap();
        assert!(plan
            .inverse_half_to_real(vec![Complex::default(); 7])
            .is_err());
    }

    #[test]
    fn degenerate_single_row() {
        let plan = Fft2dPlan::new(1, 8).unwrap();
        let data: Vec<Complex> = (0..8).map(|i| Complex::from_real(i as f64)).collect();
        let mut a = data.clone();
        plan.transform(&mut a, Direction::Forward).unwrap();
        // Must equal a plain 1-D FFT of the row.
        let plan1d = FftPlan::new(8).unwrap();
        let mut b = data;
        plan1d.transform(&mut b, Direction::Forward).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert!((x.re - y.re).abs() < 1e-12 && (x.im - y.im).abs() < 1e-12);
        }
    }
}
