//! # tabsketch-fft
//!
//! Fast Fourier Transform substrate for the `tabsketch` workspace: a
//! self-contained radix-2 complex FFT (1-D and 2-D), linear convolution,
//! and valid-mode cross-correlation.
//!
//! The paper's Theorem 3 computes sketches of **every** fixed-size
//! subrectangle of a table as a 2-D cross-correlation of the table with a
//! random kernel; [`Correlator2d`] implements exactly that access pattern,
//! amortizing the table transform over many kernels.
//!
//! ## Example
//!
//! ```
//! use tabsketch_fft::Correlator2d;
//!
//! // A 3×4 table and a 2×2 kernel: the correlator returns the dot product
//! // of the kernel with every 2×2 window, row-major.
//! let table = vec![
//!     1.0, 2.0, 3.0, 4.0,
//!     5.0, 6.0, 7.0, 8.0,
//!     9.0, 10.0, 11.0, 12.0,
//! ];
//! let corr = Correlator2d::new(&table, 3, 4).unwrap();
//! let sums = corr.correlate(&[1.0, 1.0, 1.0, 1.0], 2, 2).unwrap();
//! assert_eq!(sums.len(), 2 * 3);
//! assert!((sums[0] - (1.0 + 2.0 + 5.0 + 6.0)).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bluestein;
mod cache;
mod complex;
mod convolve;
mod fft2d;
mod plan;
mod rfft;

pub use bluestein::BluesteinPlan;
pub use cache::{plan_for, rplan_for, MAX_PLAN_CACHE_BYTES};
pub use complex::{Complex, ONE, ZERO};
pub use convolve::{
    convolve_1d, convolve_1d_naive, cross_correlate_1d_valid, cross_correlate_1d_valid_naive,
    cross_correlate_2d_valid_naive, Correlator2d,
};
pub use fft2d::{dft2d_naive, Fft2dPlan};
pub use plan::{dft_naive, next_pow2, Direction, FftPlan};
pub use rfft::{real_spectrum, RfftPlan};

/// Pre-registers this crate's metric keys in the global observability
/// registry, so snapshots report the full `fft.*` schema even before
/// any transform has run.
pub fn register_metrics() {
    use tabsketch_obs as obs;
    obs::counter("fft.plan_cache.hits");
    obs::counter("fft.plan_cache.misses");
    obs::counter("fft.plan_cache.evictions");
    obs::gauge("fft.plan_cache.bytes");
    obs::counter("fft.transforms");
    obs::counter("fft.rfft.transforms");
    obs::histogram("fft.convolve_1d_us");
    obs::histogram("fft.correlate_1d_us");
    obs::histogram("fft.correlator.build_us");
    obs::histogram("fft.correlator.correlate_us");
    obs::histogram("fft.correlator.correlate_pair_us");
}

/// Errors produced by this crate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FftError {
    /// A transform length that is not a power of two was requested.
    NotPowerOfTwo(usize),
    /// A buffer length disagreed with the planned or declared dimensions.
    LengthMismatch {
        /// The length the operation required.
        expected: usize,
        /// The length that was provided.
        got: usize,
    },
    /// A correlation kernel exceeded the table dimensions.
    KernelTooLarge {
        /// Kernel rows.
        krows: usize,
        /// Kernel columns.
        kcols: usize,
        /// Table rows.
        rows: usize,
        /// Table columns.
        cols: usize,
    },
}

impl core::fmt::Display for FftError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FftError::NotPowerOfTwo(n) => {
                write!(f, "FFT length {n} is not a power of two")
            }
            FftError::LengthMismatch { expected, got } => {
                write!(f, "buffer length mismatch: expected {expected}, got {got}")
            }
            FftError::KernelTooLarge {
                krows,
                kcols,
                rows,
                cols,
            } => write!(
                f,
                "kernel {krows}x{kcols} does not fit in table {rows}x{cols} (or is empty)"
            ),
        }
    }
}

impl std::error::Error for FftError {}
