//! A minimal complex-number type for FFT computations.
//!
//! The crate deliberately does not depend on an external numerics crate: the
//! FFT substrate only needs `f64` complex arithmetic, and keeping the type
//! local lets the compiler see through every operation.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// The additive identity.
pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };

/// The multiplicative identity.
pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

impl Complex {
    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// `e^{iθ}`: the unit complex number at angle `theta` (radians).
    #[inline]
    pub fn cis(theta: f64) -> Self {
        let (sin, cos) = theta.sin_cos();
        Self { re: cos, im: sin }
    }

    /// The complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// The squared magnitude `re² + im²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// The magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Self {
            re: self.re * s,
            im: self.im * s,
        }
    }

    /// True when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl fmt::Debug for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<f64> for Complex {
    #[inline]
    fn from(re: f64) -> Self {
        Self::from_real(re)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        Complex {
            re: self.re / rhs,
            im: self.im / rhs,
        }
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(ZERO, |acc, z| acc + z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex) -> bool {
        (a.re - b.re).abs() < 1e-12 && (a.im - b.im).abs() < 1e-12
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex::new(3.0, -4.0);
        assert!(close(z + ZERO, z));
        assert!(close(z * ONE, z));
        assert!(close(z - z, ZERO));
        assert!(close(z + (-z), ZERO));
    }

    #[test]
    fn multiplication_matches_definition() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        // (1+2i)(3-i) = 3 - i + 6i - 2i^2 = 5 + 5i
        assert!(close(a * b, Complex::new(5.0, 5.0)));
    }

    #[test]
    fn conjugate_and_norm() {
        let z = Complex::new(3.0, 4.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.abs(), 5.0);
        assert!(close(z * z.conj(), Complex::from_real(25.0)));
    }

    #[test]
    fn cis_lies_on_unit_circle() {
        for k in 0..16 {
            let theta = k as f64 * core::f64::consts::PI / 8.0;
            let z = Complex::cis(theta);
            assert!((z.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn cis_angle_addition() {
        let a = Complex::cis(0.7);
        let b = Complex::cis(1.1);
        assert!(close(a * b, Complex::cis(1.8)));
    }

    #[test]
    fn sum_of_roots_of_unity_is_zero() {
        let n = 8;
        let total: Complex = (0..n)
            .map(|k| Complex::cis(2.0 * core::f64::consts::PI * k as f64 / n as f64))
            .sum();
        assert!(total.abs() < 1e-12);
    }

    #[test]
    fn scalar_ops() {
        let z = Complex::new(2.0, -6.0);
        assert!(close(z * 0.5, Complex::new(1.0, -3.0)));
        assert!(close(z / 2.0, Complex::new(1.0, -3.0)));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Complex::new(1.0, 2.0)), "1+2i");
        assert_eq!(format!("{}", Complex::new(1.0, -2.0)), "1-2i");
    }
}
