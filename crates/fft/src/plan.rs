//! One-dimensional radix-2 FFT with a reusable plan.
//!
//! An [`FftPlan`] precomputes the bit-reversal permutation and twiddle
//! factors for a fixed power-of-two length, so repeated transforms (the
//! common case when sketching every subtable of a large table) pay the
//! trigonometry cost once.

use crate::complex::Complex;
use crate::FftError;

/// Direction of a transform.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// The forward DFT: `X_k = Σ_j x_j e^{-2πi jk/n}`.
    Forward,
    /// The inverse DFT, including the `1/n` normalization.
    Inverse,
}

/// A reusable FFT plan for a fixed power-of-two length.
///
/// ```
/// use tabsketch_fft::{Complex, FftPlan, Direction};
///
/// let plan = FftPlan::new(8).unwrap();
/// let mut data: Vec<Complex> = (0..8).map(|i| Complex::from_real(i as f64)).collect();
/// let original = data.clone();
/// plan.transform(&mut data, Direction::Forward).unwrap();
/// plan.transform(&mut data, Direction::Inverse).unwrap();
/// for (a, b) in data.iter().zip(&original) {
///     assert!((a.re - b.re).abs() < 1e-9 && a.im.abs() < 1e-9);
/// }
/// ```
#[derive(Clone, Debug)]
pub struct FftPlan {
    n: usize,
    /// Bit-reversed index for each position; `rev[i] < n`.
    rev: Vec<u32>,
    /// Twiddle factors `e^{-2πi k / n}` for `k` in `0..n/2` (forward
    /// direction; the inverse uses conjugates).
    twiddles: Vec<Complex>,
}

impl FftPlan {
    /// Creates a plan for transforms of length `n`.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::NotPowerOfTwo`] unless `n` is a power of two
    /// (length 1 is allowed and is the identity transform).
    pub fn new(n: usize) -> Result<Self, FftError> {
        if n == 0 || !n.is_power_of_two() {
            return Err(FftError::NotPowerOfTwo(n));
        }
        let bits = n.trailing_zeros();
        let mut rev = vec![0u32; n];
        for i in 1..n {
            rev[i] = (rev[i >> 1] >> 1) | (((i as u32) & 1) << (bits.saturating_sub(1)));
        }
        let half = n / 2;
        let mut twiddles = Vec::with_capacity(half.max(1));
        let step = -2.0 * core::f64::consts::PI / n as f64;
        for k in 0..half.max(1) {
            twiddles.push(Complex::cis(step * k as f64));
        }
        Ok(Self { n, rev, twiddles })
    }

    /// The transform length this plan was built for.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false: plans of length zero cannot be constructed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Heap footprint of this plan's bit-reversal and twiddle tables in
    /// bytes, used by the plan cache's byte-budget eviction.
    pub fn footprint_bytes(&self) -> usize {
        self.rev.len() * core::mem::size_of::<u32>()
            + self.twiddles.len() * core::mem::size_of::<Complex>()
    }

    /// Transforms `data` in place.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] when `data.len()` differs from
    /// the planned length.
    pub fn transform(&self, data: &mut [Complex], dir: Direction) -> Result<(), FftError> {
        if data.len() != self.n {
            return Err(FftError::LengthMismatch {
                expected: self.n,
                got: data.len(),
            });
        }
        if self.n == 1 {
            return Ok(());
        }
        tabsketch_obs::counter!("fft.transforms").inc();
        // Bit-reversal permutation: each swap pair is visited once.
        for i in 0..self.n {
            let j = self.rev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
        // Iterative Cooley-Tukey butterflies.
        let inverse = dir == Direction::Inverse;
        let mut len = 2;
        while len <= self.n {
            let half = len / 2;
            let stride = self.n / len;
            for start in (0..self.n).step_by(len) {
                for k in 0..half {
                    let tw = self.twiddles[k * stride];
                    let tw = if inverse { tw.conj() } else { tw };
                    let a = data[start + k];
                    let b = data[start + k + half] * tw;
                    data[start + k] = a + b;
                    data[start + k + half] = a - b;
                }
            }
            len <<= 1;
        }
        if inverse {
            let scale = 1.0 / self.n as f64;
            for z in data.iter_mut() {
                *z = z.scale(scale);
            }
        }
        Ok(())
    }

    /// Convenience wrapper: forward transform of a real signal, zero-padded
    /// or truncated to the plan length, returning a freshly allocated
    /// spectrum.
    pub fn forward_real(&self, signal: &[f64]) -> Vec<Complex> {
        let mut buf = vec![Complex::default(); self.n];
        for (dst, &src) in buf.iter_mut().zip(signal.iter()) {
            *dst = Complex::from_real(src);
        }
        self.transform(&mut buf, Direction::Forward)
            .expect("buffer length matches plan by construction");
        buf
    }
}

/// The smallest power of two greater than or equal to `n` (with `n = 0`
/// mapping to 1).
#[inline]
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// A naive `O(n²)` DFT used as a test oracle for the FFT.
///
/// This is deliberately simple; it exists so that the fast path can be
/// validated against an independent implementation.
pub fn dft_naive(data: &[Complex], dir: Direction) -> Vec<Complex> {
    let n = data.len();
    if n == 0 {
        return Vec::new();
    }
    let sign = match dir {
        Direction::Forward => -1.0,
        Direction::Inverse => 1.0,
    };
    let mut out = Vec::with_capacity(n);
    for k in 0..n {
        let mut acc = Complex::default();
        for (j, &x) in data.iter().enumerate() {
            let theta = sign * 2.0 * core::f64::consts::PI * (j * k % n) as f64 / n as f64;
            acc += x * Complex::cis(theta);
        }
        if dir == Direction::Inverse {
            acc = acc.scale(1.0 / n as f64);
        }
        out.push(acc);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x.re - y.re).abs() < tol && (x.im - y.im).abs() < tol,
                "mismatch at {i}: {x:?} vs {y:?}"
            );
        }
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert!(matches!(FftPlan::new(0), Err(FftError::NotPowerOfTwo(0))));
        assert!(matches!(FftPlan::new(3), Err(FftError::NotPowerOfTwo(3))));
        assert!(matches!(FftPlan::new(12), Err(FftError::NotPowerOfTwo(12))));
        assert!(FftPlan::new(1).is_ok());
        assert!(FftPlan::new(1024).is_ok());
    }

    #[test]
    fn rejects_length_mismatch() {
        let plan = FftPlan::new(8).unwrap();
        let mut buf = vec![Complex::default(); 4];
        assert!(matches!(
            plan.transform(&mut buf, Direction::Forward),
            Err(FftError::LengthMismatch {
                expected: 8,
                got: 4
            })
        ));
    }

    #[test]
    fn length_one_is_identity() {
        let plan = FftPlan::new(1).unwrap();
        let mut buf = vec![Complex::new(2.5, -1.0)];
        plan.transform(&mut buf, Direction::Forward).unwrap();
        assert_eq!(buf[0], Complex::new(2.5, -1.0));
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let plan = FftPlan::new(16).unwrap();
        let mut buf = vec![Complex::default(); 16];
        buf[0] = Complex::from_real(1.0);
        plan.transform(&mut buf, Direction::Forward).unwrap();
        for z in &buf {
            assert!((z.re - 1.0).abs() < 1e-12 && z.im.abs() < 1e-12);
        }
    }

    #[test]
    fn constant_signal_concentrates_at_dc() {
        let plan = FftPlan::new(8).unwrap();
        let mut buf = vec![Complex::from_real(3.0); 8];
        plan.transform(&mut buf, Direction::Forward).unwrap();
        assert!((buf[0].re - 24.0).abs() < 1e-12);
        for z in &buf[1..] {
            assert!(z.abs() < 1e-12);
        }
    }

    #[test]
    fn matches_naive_dft() {
        for &n in &[2usize, 4, 8, 32, 128] {
            let plan = FftPlan::new(n).unwrap();
            let data: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 1.3).cos()))
                .collect();
            let mut fast = data.clone();
            plan.transform(&mut fast, Direction::Forward).unwrap();
            let slow = dft_naive(&data, Direction::Forward);
            assert_close(&fast, &slow, 1e-9 * n as f64);
        }
    }

    #[test]
    fn roundtrip_recovers_signal() {
        let plan = FftPlan::new(64).unwrap();
        let data: Vec<Complex> = (0..64)
            .map(|i| Complex::new(i as f64, (i * i % 17) as f64))
            .collect();
        let mut buf = data.clone();
        plan.transform(&mut buf, Direction::Forward).unwrap();
        plan.transform(&mut buf, Direction::Inverse).unwrap();
        assert_close(&buf, &data, 1e-9);
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let plan = FftPlan::new(32).unwrap();
        let data: Vec<Complex> = (0..32)
            .map(|i| Complex::new((i as f64).sqrt(), -(i as f64) / 7.0))
            .collect();
        let time_energy: f64 = data.iter().map(|z| z.norm_sqr()).sum();
        let mut buf = data.clone();
        plan.transform(&mut buf, Direction::Forward).unwrap();
        let freq_energy: f64 = buf.iter().map(|z| z.norm_sqr()).sum::<f64>() / 32.0;
        assert!((time_energy - freq_energy).abs() < 1e-9 * time_energy.max(1.0));
    }

    #[test]
    fn forward_real_pads_and_truncates() {
        let plan = FftPlan::new(4).unwrap();
        let spec = plan.forward_real(&[1.0, 2.0]);
        // Padded signal [1, 2, 0, 0]; DC bin is the sum.
        assert!((spec[0].re - 3.0).abs() < 1e-12);
        let spec2 = plan.forward_real(&[1.0; 10]);
        assert!(
            (spec2[0].re - 4.0).abs() < 1e-12,
            "extra samples are ignored"
        );
    }

    #[test]
    fn next_pow2_boundaries() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(2), 2);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(4), 4);
        assert_eq!(next_pow2(5), 8);
        assert_eq!(next_pow2(1023), 1024);
        assert_eq!(next_pow2(1025), 2048);
    }

    #[test]
    fn linearity_of_transform() {
        let plan = FftPlan::new(16).unwrap();
        let a: Vec<Complex> = (0..16).map(|i| Complex::new(i as f64, 0.0)).collect();
        let b: Vec<Complex> = (0..16).map(|i| Complex::new(0.0, (i % 3) as f64)).collect();
        let mut fa = a.clone();
        let mut fb = b.clone();
        let mut fab: Vec<Complex> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        plan.transform(&mut fa, Direction::Forward).unwrap();
        plan.transform(&mut fb, Direction::Forward).unwrap();
        plan.transform(&mut fab, Direction::Forward).unwrap();
        for i in 0..16 {
            let sum = fa[i] + fb[i];
            assert!((sum.re - fab[i].re).abs() < 1e-9);
            assert!((sum.im - fab[i].im).abs() < 1e-9);
        }
    }
}
