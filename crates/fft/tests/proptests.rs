//! Property-based tests for the FFT substrate.

use proptest::prelude::*;

use tabsketch_fft::{
    convolve_1d, convolve_1d_naive, cross_correlate_1d_valid, cross_correlate_1d_valid_naive,
    cross_correlate_2d_valid_naive, dft_naive, BluesteinPlan, Complex, Correlator2d, Direction,
    FftPlan,
};

fn signal_strategy(max_log: u32) -> impl Strategy<Value = Vec<Complex>> {
    (1u32..=max_log).prop_flat_map(|log| {
        let n = 1usize << log;
        proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), n).prop_map(|pairs| {
            pairs
                .into_iter()
                .map(|(re, im)| Complex::new(re, im))
                .collect()
        })
    })
}

fn reals(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-50.0f64..50.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Forward then inverse recovers the signal.
    #[test]
    fn fft_roundtrip(data in signal_strategy(9)) {
        let plan = FftPlan::new(data.len()).unwrap();
        let mut buf = data.clone();
        plan.transform(&mut buf, Direction::Forward).unwrap();
        plan.transform(&mut buf, Direction::Inverse).unwrap();
        for (a, b) in buf.iter().zip(&data) {
            prop_assert!((a.re - b.re).abs() < 1e-8 && (a.im - b.im).abs() < 1e-8);
        }
    }

    /// The fast transform matches the O(n²) DFT.
    #[test]
    fn fft_matches_naive(data in signal_strategy(7)) {
        let plan = FftPlan::new(data.len()).unwrap();
        let mut fast = data.clone();
        plan.transform(&mut fast, Direction::Forward).unwrap();
        let slow = dft_naive(&data, Direction::Forward);
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert!((a.re - b.re).abs() < 1e-6 && (a.im - b.im).abs() < 1e-6,
                "{a:?} vs {b:?}");
        }
    }

    /// Parseval: energy is preserved (up to the 1/n convention).
    #[test]
    fn fft_parseval(data in signal_strategy(8)) {
        let n = data.len();
        let plan = FftPlan::new(n).unwrap();
        let time: f64 = data.iter().map(|z| z.norm_sqr()).sum();
        let mut buf = data.clone();
        plan.transform(&mut buf, Direction::Forward).unwrap();
        let freq: f64 = buf.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        prop_assert!((time - freq).abs() <= 1e-6 * (1.0 + time));
    }

    /// FFT convolution equals direct convolution.
    #[test]
    fn convolution_matches_naive(a in reals(1..200), b in reals(1..64)) {
        let fast = convolve_1d(&a, &b);
        let slow = convolve_1d_naive(&a, &b);
        prop_assert_eq!(fast.len(), slow.len());
        for (x, y) in fast.iter().zip(&slow) {
            prop_assert!((x - y).abs() < 1e-6 * (1.0 + y.abs()), "{x} vs {y}");
        }
    }

    /// Convolution is commutative.
    #[test]
    fn convolution_commutes(a in reals(1..100), b in reals(1..100)) {
        let ab = convolve_1d(&a, &b);
        let ba = convolve_1d(&b, &a);
        for (x, y) in ab.iter().zip(&ba) {
            prop_assert!((x - y).abs() < 1e-6 * (1.0 + y.abs()));
        }
    }

    /// Valid-mode correlation via FFT equals the direct sliding dot
    /// product.
    #[test]
    fn correlation_matches_naive(data in reals(8..300), klen in 1usize..8) {
        prop_assume!(klen <= data.len());
        let kernel: Vec<f64> = data.iter().take(klen).map(|&v| v * 0.5 - 1.0).collect();
        let fast = cross_correlate_1d_valid(&data, &kernel);
        let slow = cross_correlate_1d_valid_naive(&data, &kernel);
        prop_assert_eq!(fast.len(), slow.len());
        for (x, y) in fast.iter().zip(&slow) {
            prop_assert!((x - y).abs() < 1e-6 * (1.0 + y.abs()));
        }
    }

    /// The 2-D correlator agrees with the naive sliding window for
    /// arbitrary table/kernel shapes.
    #[test]
    fn correlator2d_matches_naive(
        rows in 2usize..20,
        cols in 2usize..20,
        kr in 1usize..6,
        kc in 1usize..6,
        seed in 0u64..1000,
    ) {
        prop_assume!(kr <= rows && kc <= cols);
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13; state ^= state >> 7; state ^= state << 17;
            (state % 1000) as f64 / 10.0 - 50.0
        };
        let data: Vec<f64> = (0..rows * cols).map(|_| next()).collect();
        let kernel: Vec<f64> = (0..kr * kc).map(|_| next()).collect();
        let corr = Correlator2d::new(&data, rows, cols).unwrap();
        let fast = corr.correlate(&kernel, kr, kc).unwrap();
        let slow = cross_correlate_2d_valid_naive(&data, rows, cols, &kernel, kr, kc);
        prop_assert_eq!(fast.len(), slow.len());
        for (x, y) in fast.iter().zip(&slow) {
            prop_assert!((x - y).abs() < 1e-5 * (1.0 + y.abs()), "{x} vs {y}");
        }
    }

    /// Bluestein matches the naive DFT at every length, not just powers
    /// of two, and round-trips exactly.
    #[test]
    fn bluestein_matches_naive_any_length(n in 1usize..80, seed in 0u64..500) {
        let mut s = seed | 1;
        let mut next = move || { s ^= s << 13; s ^= s >> 7; s ^= s << 17; (s % 200) as f64 - 100.0 };
        let data: Vec<Complex> = (0..n).map(|_| Complex::new(next(), next())).collect();
        let plan = BluesteinPlan::new(n).unwrap();
        let mut fast = data.clone();
        plan.transform(&mut fast, Direction::Forward).unwrap();
        let slow = dft_naive(&data, Direction::Forward);
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert!((a.re - b.re).abs() < 1e-6 * (1.0 + b.re.abs()) + 1e-5
                && (a.im - b.im).abs() < 1e-6 * (1.0 + b.im.abs()) + 1e-5,
                "{a:?} vs {b:?}");
        }
        plan.transform(&mut fast, Direction::Inverse).unwrap();
        for (a, b) in fast.iter().zip(&data) {
            prop_assert!((a.re - b.re).abs() < 1e-6 && (a.im - b.im).abs() < 1e-6);
        }
    }

    /// Packed-pair correlation equals two independent correlations for
    /// arbitrary shapes.
    #[test]
    fn correlate_pair_matches_singles(
        rows in 2usize..16,
        cols in 2usize..16,
        kr in 1usize..5,
        kc in 1usize..5,
        seed in 0u64..1000,
    ) {
        prop_assume!(kr <= rows && kc <= cols);
        let mut s = seed | 1;
        let mut next = move || { s ^= s << 13; s ^= s >> 7; s ^= s << 17; (s % 100) as f64 - 50.0 };
        let data: Vec<f64> = (0..rows * cols).map(|_| next()).collect();
        let k1: Vec<f64> = (0..kr * kc).map(|_| next()).collect();
        let k2: Vec<f64> = (0..kr * kc).map(|_| next()).collect();
        let corr = Correlator2d::new(&data, rows, cols).unwrap();
        let (p1, p2) = corr.correlate_pair(&k1, &k2, kr, kc).unwrap();
        let s1 = corr.correlate(&k1, kr, kc).unwrap();
        let s2 = corr.correlate(&k2, kr, kc).unwrap();
        for (a, b) in p1.iter().zip(&s1).chain(p2.iter().zip(&s2)) {
            prop_assert!((a - b).abs() < 1e-5 * (1.0 + b.abs()), "{a} vs {b}");
        }
    }

    /// Correlating with a delta kernel reproduces the table.
    #[test]
    fn correlator2d_delta_kernel(rows in 1usize..12, cols in 1usize..12) {
        let data: Vec<f64> = (0..rows * cols).map(|i| i as f64).collect();
        let corr = Correlator2d::new(&data, rows, cols).unwrap();
        let out = corr.correlate(&[1.0], 1, 1).unwrap();
        for (x, y) in out.iter().zip(&data) {
            prop_assert!((x - y).abs() < 1e-8);
        }
    }
}
