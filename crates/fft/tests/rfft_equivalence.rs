//! Property-based equivalence of the real-input FFT against the complex
//! transform it replaces.
//!
//! The rfft path (DESIGN.md §15) must agree with the complex FFT to
//! ≤ 1e-9 relative error on every bin, across even, odd-structured, and
//! Bluestein (non-power-of-two) sizes, and must round-trip real signals
//! exactly enough to be a drop-in for the correlation pipeline.

use proptest::prelude::*;

use tabsketch_fft::{real_spectrum, Complex, Direction, FftPlan, RfftPlan};

/// Relative tolerance for spectrum agreement, scaled by the signal's
/// spectral magnitude so near-zero bins don't amplify rounding noise.
const REL_TOL: f64 = 1e-9;

fn assert_bins_close(fast: &[Complex], slow: &[Complex], scale: f64) {
    assert_eq!(fast.len(), slow.len());
    let tol = REL_TOL * scale.max(1.0);
    for (k, (a, b)) in fast.iter().zip(slow).enumerate() {
        assert!(
            (a.re - b.re).abs() <= tol && (a.im - b.im).abs() <= tol,
            "bin {k}: rfft {a:?} vs complex {b:?} (tol {tol})"
        );
    }
}

/// Complex-FFT reference: full spectrum of a real signal (power of two).
fn complex_spectrum(signal: &[f64]) -> Vec<Complex> {
    let plan = FftPlan::new(signal.len()).unwrap();
    let mut buf: Vec<Complex> = signal.iter().map(|&x| Complex::from_real(x)).collect();
    plan.transform(&mut buf, Direction::Forward).unwrap();
    buf
}

fn l1_mass(signal: &[f64]) -> f64 {
    signal.iter().map(|x| x.abs()).sum()
}

fn pow2_signal(max_log: u32) -> impl Strategy<Value = Vec<f64>> {
    (0u32..=max_log).prop_flat_map(|log| proptest::collection::vec(-100.0f64..100.0, 1usize << log))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every half-spectrum bin of the rfft matches the complex FFT of
    /// the same (even-length power-of-two) signal.
    #[test]
    fn rfft_matches_complex_fft(signal in pow2_signal(10)) {
        let n = signal.len();
        let plan = RfftPlan::new(n).unwrap();
        let half = plan.forward_real(&signal);
        let full = complex_spectrum(&signal);
        prop_assert_eq!(half.len(), n / 2 + 1);
        let tol = REL_TOL * l1_mass(&signal).max(1.0);
        for (k, z) in half.iter().enumerate() {
            prop_assert!(
                (z.re - full[k].re).abs() <= tol && (z.im - full[k].im).abs() <= tol,
                "n={} bin {}: {:?} vs {:?}", n, k, z, full[k]
            );
        }
    }

    /// The mirrored bins implied by Hermitian symmetry also match, so
    /// consumers reading the "missing" half through conjugation see the
    /// complex FFT's values too.
    #[test]
    fn rfft_mirror_bins_match_complex_fft(signal in pow2_signal(8)) {
        let n = signal.len();
        let plan = RfftPlan::new(n).unwrap();
        let half = plan.forward_real(&signal);
        let full = complex_spectrum(&signal);
        let tol = REL_TOL * l1_mass(&signal).max(1.0);
        for k in half.len()..n {
            let mirrored = half[n - k].conj();
            prop_assert!(
                (mirrored.re - full[k].re).abs() <= tol
                    && (mirrored.im - full[k].im).abs() <= tol,
                "n={} mirrored bin {}: {:?} vs {:?}", n, k, mirrored, full[k]
            );
        }
    }

    /// Forward then inverse recovers the real signal.
    #[test]
    fn rfft_roundtrip_identity(signal in pow2_signal(10)) {
        let plan = RfftPlan::new(signal.len()).unwrap();
        let back = plan.inverse_real(&plan.forward_real(&signal)).unwrap();
        let tol = REL_TOL * l1_mass(&signal).max(1.0);
        prop_assert_eq!(back.len(), signal.len());
        for (a, b) in back.iter().zip(&signal) {
            prop_assert!((a - b).abs() <= tol, "{} vs {}", a, b);
        }
    }

    /// Odd-structured content (zero even samples) exercises the unpack's
    /// odd-sample branch alone; the twiddle recombination must still
    /// match the complex transform bin for bin.
    #[test]
    fn rfft_handles_odd_sample_structure(half_signal in proptest::collection::vec(-100.0f64..100.0, 1usize..129)) {
        let m = half_signal.len().next_power_of_two();
        let n = 2 * m;
        let mut signal = vec![0.0f64; n];
        for (j, &x) in half_signal.iter().enumerate() {
            signal[2 * j + 1] = x; // odd positions only
        }
        let plan = RfftPlan::new(n).unwrap();
        let half = plan.forward_real(&signal);
        let full = complex_spectrum(&signal);
        assert_bins_close(&half, &full[..half.len()], l1_mass(&signal));
    }

    /// `real_spectrum` covers non-power-of-two lengths through the
    /// Bluestein fallback with the same ≤1e-9 relative agreement.
    #[test]
    fn real_spectrum_matches_naive_on_bluestein_sizes(
        signal in proptest::collection::vec(-100.0f64..100.0, 1usize..97)
    ) {
        let fast = real_spectrum(&signal).unwrap();
        let data: Vec<Complex> = signal.iter().map(|&x| Complex::from_real(x)).collect();
        let slow = tabsketch_fft::dft_naive(&data, Direction::Forward);
        // The naive O(n²) oracle itself carries ~n·eps rounding, so
        // scale the bound by the signal mass times a small length factor.
        let tol = (1e-9 * signal.len() as f64).max(REL_TOL) * l1_mass(&signal).max(1.0);
        prop_assert_eq!(fast.len(), slow.len());
        for (k, (a, b)) in fast.iter().zip(&slow).enumerate() {
            prop_assert!(
                (a.re - b.re).abs() <= tol && (a.im - b.im).abs() <= tol,
                "n={} bin {}: {:?} vs {:?}", signal.len(), k, a, b
            );
        }
    }
}

#[test]
fn rfft_equivalence_on_degenerate_lengths() {
    for &n in &[1usize, 2, 4] {
        let signal: Vec<f64> = (0..n).map(|i| i as f64 - 0.5).collect();
        let plan = RfftPlan::new(n).unwrap();
        let half = plan.forward_real(&signal);
        let full = complex_spectrum(&signal);
        assert_bins_close(&half, &full[..half.len()], l1_mass(&signal));
        let back = plan.inverse_real(&half).unwrap();
        for (a, b) in back.iter().zip(&signal) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}
