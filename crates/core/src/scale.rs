//! The scale factor `B(p)` of Theorem 2.
//!
//! The median estimator returns `median(|s(x)_i − s(y)_i|)`, which
//! concentrates around `B(p) · ‖x − y‖_p`, where `B(p)` is the median of
//! the absolute value of a standard symmetric p-stable variate. The paper
//! notes that `B(p) = 1` only at special points and that clustering does
//! not strictly need it (comparisons are scale-invariant) — but our
//! estimators divide it out so distances are directly comparable to exact
//! values in the accuracy experiments.
//!
//! Exact values exist at the classical points:
//!
//! * `B(1) = tan(π/4) = 1` (Cauchy);
//! * `B(2) = Φ⁻¹(3/4) ≈ 0.67448975` (our α = 2 sampler is `N(0,1)`;
//!   see the normalization caveat in [`crate::stable`]).
//!
//! For other `p` the median has no closed form; we estimate it by a
//! deterministic Monte-Carlo quantile with a fixed internal seed, so the
//! factor is reproducible across runs and across the eager/on-demand
//! sketch paths.

use crate::median::median_abs;
use crate::rng::stream_rng;
use crate::stable::StableSampler;
use crate::TabError;

/// `B(2) = Φ⁻¹(0.75)`: median of `|N(0, 1)|`.
pub const B2: f64 = 0.674_489_750_196_081_7;

/// `B(1) = 1`: median of the absolute value of a standard Cauchy.
pub const B1: f64 = 1.0;

/// Number of Monte-Carlo draws used by the internal estimator. At this
/// size the quantile standard error is ≈ 0.2% for all p of interest.
pub const DEFAULT_SAMPLES: usize = 1 << 18;

/// Internal seed for the Monte-Carlo estimate, fixed so `B(p)` is a pure
/// function of `p`.
const SCALE_SEED: u64 = 0x5CA1_EFAC_0000_0001;

/// The scale factor `B(p)` for a particular `p`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScaleFactor {
    p: f64,
    value: f64,
}

impl ScaleFactor {
    /// Computes `B(p)` — exactly at `p ∈ {1, 2}`, by deterministic
    /// Monte-Carlo elsewhere.
    ///
    /// # Errors
    ///
    /// Returns [`TabError::InvalidP`] for `p` outside `(0, 2]`.
    pub fn new(p: f64) -> Result<Self, TabError> {
        Self::with_samples(p, DEFAULT_SAMPLES)
    }

    /// As [`ScaleFactor::new`] with an explicit Monte-Carlo sample count.
    ///
    /// Results are memoized per `(p, samples)` in a process-wide cache:
    /// sketchers are constructed freely (the pool builds four per
    /// canonical size) and must not pay the Monte-Carlo cost each time.
    ///
    /// # Errors
    ///
    /// Returns [`TabError::InvalidP`] for invalid `p`, and
    /// [`TabError::InvalidParameter`] when `samples == 0`.
    pub fn with_samples(p: f64, samples: usize) -> Result<Self, TabError> {
        use std::collections::HashMap;
        use std::sync::{Mutex, OnceLock};

        let sampler = StableSampler::new(p)?;
        if p == 1.0 {
            return Ok(Self { p, value: B1 });
        }
        if p == 2.0 {
            return Ok(Self { p, value: B2 });
        }
        if samples == 0 {
            return Err(TabError::InvalidParameter(
                "scale factor needs at least one sample",
            ));
        }
        static CACHE: OnceLock<Mutex<HashMap<(u64, usize), f64>>> = OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        let key = (p.to_bits(), samples);
        if let Some(&value) = cache.lock().expect("scale cache lock").get(&key) {
            return Ok(Self { p, value });
        }
        let value = Self::estimate(&sampler, samples);
        cache.lock().expect("scale cache lock").insert(key, value);
        Ok(Self { p, value })
    }

    fn estimate(sampler: &StableSampler, samples: usize) -> f64 {
        let mut rng = stream_rng(SCALE_SEED, &[sampler.alpha().to_bits()]);
        let draws = sampler.sample_vec(&mut rng, samples);
        let mut scratch = Vec::with_capacity(samples);
        median_abs(&draws, &mut scratch).expect("samples >= 1")
    }

    /// The exponent this factor belongs to.
    #[inline]
    pub fn p(&self) -> f64 {
        self.p
    }

    /// The numeric value of `B(p)`.
    #[inline]
    pub fn value(&self) -> f64 {
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_at_classical_points() {
        assert_eq!(ScaleFactor::new(1.0).unwrap().value(), 1.0);
        assert_eq!(ScaleFactor::new(2.0).unwrap().value(), B2);
    }

    #[test]
    fn rejects_invalid_p() {
        assert!(ScaleFactor::new(0.0).is_err());
        assert!(ScaleFactor::new(2.5).is_err());
        assert!(ScaleFactor::with_samples(0.5, 0).is_err());
    }

    #[test]
    fn deterministic() {
        let a = ScaleFactor::new(0.7).unwrap();
        let b = ScaleFactor::new(0.7).unwrap();
        assert_eq!(a.value(), b.value());
    }

    #[test]
    fn positive_and_finite_across_range() {
        for i in 1..=20 {
            let p = i as f64 / 10.0;
            let b = ScaleFactor::new(p).unwrap().value();
            assert!(b.is_finite() && b > 0.0, "B({p}) = {b}");
        }
    }

    #[test]
    fn monte_carlo_agrees_with_exact_at_one_and_two() {
        // Force the Monte-Carlo path at p very close to the classical
        // points and compare with the exact values.
        let near1 = ScaleFactor::new(1.0 + 1e-9).unwrap().value();
        assert!((near1 - 1.0).abs() < 0.02, "B(1+) = {near1}");
        let near2 = ScaleFactor::new(2.0 - 1e-9).unwrap().value();
        // CMS at α→2 produces N(0, √2): median |X| = √2·Φ⁻¹(0.75).
        let expected = core::f64::consts::SQRT_2 * B2;
        assert!(
            (near2 - expected).abs() < 0.02,
            "B(2-) = {near2} vs {expected}"
        );
    }
}
