//! Sampling from symmetric α-stable distributions.
//!
//! A distribution `X` is *stable* with index `α ∈ (0, 2]` when, for i.i.d.
//! copies `X_1, …, X_n`, the combination `a_1 X_1 + … + a_n X_n` is
//! distributed as `‖(a_1, …, a_n)‖_α · X` (paper §3.2). This is exactly the
//! property the sketches exploit: a dot product of data with stable noise
//! "reads out" the Lα norm of the data.
//!
//! Sampling uses the Chambers–Mallows–Stuck (CMS) transform for general α,
//! with fast paths for the three classical members:
//!
//! * α = 1 — Cauchy: `tan(V)`;
//! * α = 2 — Gaussian: polar Box–Muller yielding `N(0, 1)`;
//! * other α — CMS: `sin(αV)/cos(V)^{1/α} · (cos(V−αV)/W)^{(1−α)/α}`
//!   with `V ~ U(−π/2, π/2)` and `W ~ Exp(1)`.
//!
//! **Normalization caveat:** the CMS output at α = 2 is `N(0, √2)`, not
//! `N(0, 1)`; we deliberately use the unit-variance Gaussian for α = 2
//! because the classical Johnson–Lindenstrauss estimator
//! `‖s(x)−s(y)‖₂/√k` then needs no extra constant. All median-based
//! estimators divide by the empirical median [`crate::scale::ScaleFactor`]
//! computed under the *same* sampler, so every `p` remains self-consistent.

use rand::Rng;

use crate::TabError;

/// Index of stability. Valid range `(0, 2]`, matching the paper's Lp range.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Alpha(f64);

impl Alpha {
    /// Validates and wraps a stability index.
    ///
    /// # Errors
    ///
    /// Returns [`TabError::InvalidP`] unless `0 < alpha <= 2` and finite.
    pub fn new(alpha: f64) -> Result<Self, TabError> {
        if alpha > 0.0 && alpha <= 2.0 && alpha.is_finite() {
            Ok(Self(alpha))
        } else {
            Err(TabError::InvalidP(alpha))
        }
    }

    /// The raw index value.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }
}

/// A sampler for the standard symmetric α-stable distribution.
///
/// ```
/// use tabsketch_core::stable::StableSampler;
/// use rand::SeedableRng;
///
/// let sampler = StableSampler::new(1.0).unwrap(); // Cauchy
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let x = sampler.sample(&mut rng);
/// assert!(x.is_finite());
/// ```
#[derive(Clone, Copy, Debug)]
pub struct StableSampler {
    alpha: f64,
    kind: Kind,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    Cauchy,
    Gaussian,
    Cms,
}

impl StableSampler {
    /// Creates a sampler for index `alpha`.
    ///
    /// # Errors
    ///
    /// Returns [`TabError::InvalidP`] for `alpha` outside `(0, 2]`.
    pub fn new(alpha: f64) -> Result<Self, TabError> {
        let alpha = Alpha::new(alpha)?.get();
        let kind = if alpha == 1.0 {
            Kind::Cauchy
        } else if alpha == 2.0 {
            Kind::Gaussian
        } else {
            Kind::Cms
        };
        Ok(Self { alpha, kind })
    }

    /// The stability index.
    #[inline]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Draws one standard symmetric α-stable variate.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match self.kind {
            Kind::Cauchy => sample_cauchy(rng),
            Kind::Gaussian => sample_gaussian(rng),
            Kind::Cms => sample_cms(self.alpha, rng),
        }
    }

    /// Fills `out` with i.i.d. draws.
    pub fn fill<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [f64]) {
        for slot in out {
            *slot = self.sample(rng);
        }
    }

    /// A vector of `n` i.i.d. draws.
    pub fn sample_vec<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        let mut out = vec![0.0; n];
        self.fill(rng, &mut out);
        out
    }
}

/// Uniform draw on the open interval `(0, 1)` — excludes both endpoints so
/// logs and tangents stay finite.
#[inline]
fn open_unit<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.random();
        if u > 0.0 && u < 1.0 {
            return u;
        }
    }
}

/// Standard Cauchy via the inverse CDF: `tan(π(U − ½))`.
pub fn sample_cauchy<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let v = core::f64::consts::PI * (open_unit(rng) - 0.5);
    v.tan()
}

/// Standard normal `N(0, 1)` via the Marsaglia polar method.
pub fn sample_gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let x = 2.0 * open_unit(rng) - 1.0;
        let y = 2.0 * open_unit(rng) - 1.0;
        let s = x * x + y * y;
        if s > 0.0 && s < 1.0 {
            return x * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Chambers–Mallows–Stuck transform for symmetric α-stable, `α ≠ 1`.
fn sample_cms<R: Rng + ?Sized>(alpha: f64, rng: &mut R) -> f64 {
    debug_assert!(alpha > 0.0 && alpha <= 2.0 && alpha != 1.0);
    let v = core::f64::consts::PI * (open_unit(rng) - 0.5);
    let w = -open_unit(rng).ln(); // Exp(1)
    let t = (alpha * v).sin() / v.cos().powf(1.0 / alpha);
    let s = ((v - alpha * v).cos() / w).powf((1.0 - alpha) / alpha);
    t * s
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn draws(alpha: f64, n: usize, seed: u64) -> Vec<f64> {
        let s = StableSampler::new(alpha).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        s.sample_vec(&mut rng, n)
    }

    fn median_abs(mut xs: Vec<f64>) -> f64 {
        for x in xs.iter_mut() {
            *x = x.abs();
        }
        let mid = xs.len() / 2;
        *xs.select_nth_unstable_by(mid, |a, b| a.total_cmp(b)).1
    }

    #[test]
    fn rejects_bad_alpha() {
        assert!(StableSampler::new(0.0).is_err());
        assert!(StableSampler::new(2.5).is_err());
        assert!(StableSampler::new(-1.0).is_err());
        assert!(StableSampler::new(f64::NAN).is_err());
        assert!(StableSampler::new(0.1).is_ok());
        assert!(StableSampler::new(2.0).is_ok());
    }

    #[test]
    fn samples_are_finite() {
        for &alpha in &[0.25, 0.5, 0.8, 1.0, 1.2, 1.5, 1.99, 2.0] {
            for x in draws(alpha, 10_000, 99) {
                assert!(x.is_finite(), "alpha={alpha} produced {x}");
            }
        }
    }

    #[test]
    fn symmetric_around_zero() {
        for &alpha in &[0.5, 1.0, 1.5, 2.0] {
            let xs = draws(alpha, 100_000, 7);
            let pos = xs.iter().filter(|&&x| x > 0.0).count() as f64;
            let frac = pos / xs.len() as f64;
            assert!(
                (frac - 0.5).abs() < 0.01,
                "alpha={alpha}, frac positive={frac}"
            );
        }
    }

    #[test]
    fn cauchy_median_abs_is_one() {
        // median |Cauchy| = tan(π/4) = 1.
        let m = median_abs(draws(1.0, 200_000, 3));
        assert!((m - 1.0).abs() < 0.02, "median |Cauchy| = {m}");
    }

    #[test]
    fn gaussian_moments() {
        let xs = draws(2.0, 200_000, 5);
        let mean: f64 = xs.iter().sum::<f64>() / xs.len() as f64;
        let var: f64 =
            xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!(mean.abs() < 0.02, "mean={mean}");
        assert!((var - 1.0).abs() < 0.03, "var={var}");
    }

    #[test]
    fn gaussian_median_abs_matches_quartile() {
        // median |N(0,1)| = Φ⁻¹(0.75) ≈ 0.674490.
        let m = median_abs(draws(2.0, 200_000, 11));
        assert!((m - 0.6745).abs() < 0.01, "median |N(0,1)| = {m}");
    }

    #[test]
    fn heavy_tails_grow_as_alpha_shrinks() {
        // P(|X| > 10) increases as α decreases.
        let tail = |alpha: f64| {
            let xs = draws(alpha, 100_000, 13);
            xs.iter().filter(|&&x| x.abs() > 10.0).count() as f64 / xs.len() as f64
        };
        let t_half = tail(0.5);
        let t_one = tail(1.0);
        let t_two = tail(2.0);
        assert!(t_half > t_one, "t(0.5)={t_half} vs t(1)={t_one}");
        assert!(t_one > t_two, "t(1)={t_one} vs t(2)={t_two}");
        assert!(t_two < 1e-3, "Gaussian has negligible tail beyond 10σ");
    }

    /// The defining property (paper §3.2): a₁X₁ + … + aₙXₙ is distributed
    /// as ‖a‖_α · X. We check it through the median of absolute values,
    /// which is how the sketch estimator consumes the property.
    #[test]
    fn stability_property_via_median() {
        let weights = [3.0, -4.0, 1.5, 0.25, -2.0];
        for &alpha in &[0.5, 1.0, 1.3, 2.0] {
            let norm_a: f64 = weights
                .iter()
                .map(|w: &f64| w.abs().powf(alpha))
                .sum::<f64>()
                .powf(1.0 / alpha);
            let sampler = StableSampler::new(alpha).unwrap();
            let mut rng = StdRng::seed_from_u64(17);
            let n = 60_000;
            let combos: Vec<f64> = (0..n)
                .map(|_| weights.iter().map(|&w| w * sampler.sample(&mut rng)).sum())
                .collect();
            let med_combo = median_abs(combos);
            let singles = {
                let mut rng = StdRng::seed_from_u64(18);
                sampler.sample_vec(&mut rng, n)
            };
            let med_single = median_abs(singles);
            let ratio = med_combo / (norm_a * med_single);
            assert!(
                (ratio - 1.0).abs() < 0.05,
                "alpha={alpha}: ratio={ratio} (combo {med_combo}, single {med_single}, norm {norm_a})"
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(draws(0.75, 100, 42), draws(0.75, 100, 42));
        assert_ne!(draws(0.75, 100, 42), draws(0.75, 100, 43));
    }
}
