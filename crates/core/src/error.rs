//! Error type for the sketching core.

use core::fmt;

use tabsketch_fft::FftError;
use tabsketch_table::TableError;

/// Errors produced by `tabsketch-core`.
#[derive(Clone, Debug, PartialEq)]
pub enum TabError {
    /// An Lp exponent outside the valid range `(0, 2]`.
    InvalidP(f64),
    /// A parameter failed validation; the message says which.
    InvalidParameter(&'static str),
    /// Two sketches could not be combined or compared.
    SketchMismatch {
        /// Why the sketches are incompatible.
        reason: &'static str,
    },
    /// A query rectangle is not covered by a sketch pool's configuration.
    NotInPool {
        /// Human-readable description of the missing coverage.
        reason: String,
    },
    /// A pool or all-subtable build would exceed the configured memory
    /// budget.
    MemoryBudgetExceeded {
        /// Bytes the build would require.
        required: usize,
        /// The configured limit.
        limit: usize,
    },
    /// An error bubbled up from the table layer.
    Table(TableError),
    /// An error bubbled up from the FFT layer.
    Fft(FftError),
    /// A stored sketch or sketch store failed structural validation: bad
    /// magic, unsupported version, checksum mismatch, truncation, or an
    /// implausible header.
    Corrupt {
        /// Which part of the file failed (e.g. `"magic"`, `"header"`,
        /// `"body"`).
        section: &'static str,
        /// Human-readable description of the failure.
        detail: String,
    },
    /// An I/O or format failure while persisting/loading sketches.
    Io(String),
}

impl TabError {
    /// Builds a [`TabError::Corrupt`] for `section` with a formatted
    /// detail message.
    pub fn corrupt(section: &'static str, detail: impl Into<String>) -> Self {
        TabError::Corrupt {
            section,
            detail: detail.into(),
        }
    }

    /// Classifies a read failure in `section`: an unexpected EOF means the
    /// file is truncated (a corruption, not an I/O fault); everything else
    /// stays an I/O error.
    pub fn from_read_error(section: &'static str, e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            TabError::corrupt(section, "unexpected end of file (truncated)")
        } else {
            TabError::Io(e.to_string())
        }
    }
}

impl fmt::Display for TabError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TabError::InvalidP(p) => {
                write!(f, "invalid Lp exponent {p}: must lie in (0, 2]")
            }
            TabError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            TabError::SketchMismatch { reason } => write!(f, "incompatible sketches: {reason}"),
            TabError::NotInPool { reason } => write!(f, "query not answerable by pool: {reason}"),
            TabError::MemoryBudgetExceeded { required, limit } => {
                write!(
                    f,
                    "sketch build needs {required} bytes, over the {limit}-byte budget"
                )
            }
            TabError::Table(e) => write!(f, "table error: {e}"),
            TabError::Fft(e) => write!(f, "fft error: {e}"),
            TabError::Corrupt { section, detail } => {
                write!(f, "corrupt sketch file ({section}): {detail}")
            }
            TabError::Io(msg) => write!(f, "sketch I/O error: {msg}"),
        }
    }
}

impl From<std::io::Error> for TabError {
    fn from(e: std::io::Error) -> Self {
        TabError::Io(e.to_string())
    }
}

impl std::error::Error for TabError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TabError::Table(e) => Some(e),
            TabError::Fft(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TableError> for TabError {
    fn from(e: TableError) -> Self {
        TabError::Table(e)
    }
}

impl From<FftError> for TabError {
    fn from(e: FftError) -> Self {
        TabError::Fft(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let msgs = [
            TabError::InvalidP(3.0).to_string(),
            TabError::InvalidParameter("k must be non-zero").to_string(),
            TabError::SketchMismatch {
                reason: "widths differ",
            }
            .to_string(),
            TabError::NotInPool {
                reason: "size 3x3".into(),
            }
            .to_string(),
            TabError::MemoryBudgetExceeded {
                required: 10,
                limit: 5,
            }
            .to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
        }
    }

    #[test]
    fn conversions() {
        let te: TabError = TableError::EmptyDimension.into();
        assert!(matches!(te, TabError::Table(_)));
        let fe: TabError = FftError::NotPowerOfTwo(3).into();
        assert!(matches!(fe, TabError::Fft(_)));
    }
}
