//! Sketches and the sketch-distance estimators (paper §3.2, Theorems 1–2).
//!
//! A sketch of a vector `x` is `s(x) = (x·r[0], …, x·r[k−1])` where each
//! random vector `r[i]` has i.i.d. entries from a symmetric p-stable
//! distribution. By stability, `s(x)_i − s(y)_i = (x−y)·r[i]` is
//! distributed as `‖x − y‖_p · X` with `X` standard p-stable, so
//! `median_i |s(x)_i − s(y)_i| / B(p)` estimates the Lp distance.
//!
//! Sketches are **linear**: `s(ax + by) = a·s(x) + b·s(y)`. The clustering
//! layer leans on this — the sketch of a centroid is the mean of the
//! member sketches, and never touches the underlying tiles.

use std::sync::{Arc, RwLock};

use rand::rngs::StdRng;

use tabsketch_table::{norms, TableView};

use crate::kernels::{self, RowBlock};
use crate::median::median_abs_diff;
use crate::rng::stream_rng;
use crate::scale::ScaleFactor;
use crate::stable::StableSampler;
use crate::TabError;

/// Parameters of a sketch family: exponent, width, and master seed.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SketchParams {
    p: f64,
    k: usize,
    seed: u64,
}

/// Pragmatic constant in `k = ⌈C · ln(1/δ) / ε²⌉`. Theory gives `O(·)`;
/// this constant reproduces the paper's "within a few percent with sketch
/// size in the low hundreds" behaviour.
pub const ACCURACY_CONSTANT: f64 = 3.0;

impl SketchParams {
    /// Starts a builder with the documented defaults (`p = 1.0`,
    /// `k = 256`, `seed = 0`) — the preferred construction path:
    ///
    /// ```
    /// use tabsketch_core::SketchParams;
    ///
    /// let params = SketchParams::builder().p(0.5).k(64).seed(7).build().unwrap();
    /// assert_eq!(params.k(), 64);
    /// ```
    pub fn builder() -> SketchParamsBuilder {
        SketchParamsBuilder::default()
    }

    /// Shared validating constructor behind the builder and the legacy
    /// positional entry points.
    fn validated(p: f64, k: usize, seed: u64) -> Result<Self, TabError> {
        // Validate p through the sampler's own rule.
        let _ = StableSampler::new(p)?;
        if k == 0 {
            return Err(TabError::InvalidParameter(
                "sketch width k must be non-zero",
            ));
        }
        Ok(Self { p, k, seed })
    }

    /// Creates parameters with an explicit sketch width `k`.
    ///
    /// # Errors
    ///
    /// Returns [`TabError::InvalidP`] for `p` outside `(0, 2]` and
    /// [`TabError::InvalidParameter`] when `k == 0`.
    #[deprecated(since = "0.1.0", note = "use SketchParams::builder() instead")]
    pub fn new(p: f64, k: usize, seed: u64) -> Result<Self, TabError> {
        Self::validated(p, k, seed)
    }

    /// Derives the width from an accuracy target:
    /// `k = ⌈C · ln(1/δ) / ε²⌉` (paper: `k = c·log(1/δ)/ε²`).
    ///
    /// # Errors
    ///
    /// Returns [`TabError::InvalidParameter`] unless `0 < ε < 1` and
    /// `0 < δ < 1`, or [`TabError::InvalidP`] for invalid `p`.
    pub fn from_accuracy(p: f64, epsilon: f64, delta: f64, seed: u64) -> Result<Self, TabError> {
        if !(epsilon > 0.0 && epsilon < 1.0) {
            return Err(TabError::InvalidParameter("epsilon must lie in (0, 1)"));
        }
        if !(delta > 0.0 && delta < 1.0) {
            return Err(TabError::InvalidParameter("delta must lie in (0, 1)"));
        }
        let k = (ACCURACY_CONSTANT * (1.0 / delta).ln() / (epsilon * epsilon)).ceil() as usize;
        Self::validated(p, k.max(1), seed)
    }

    /// The Lp exponent.
    #[inline]
    pub fn p(&self) -> f64 {
        self.p
    }

    /// The sketch width (number of random projections).
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The master seed.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

/// Builder for [`SketchParams`], started via [`SketchParams::builder`].
///
/// Defaults: `p = 1.0`, `k = 256`, `seed = 0`. An accuracy target set
/// with [`SketchParamsBuilder::accuracy`] overrides `k` at build time
/// using the paper's `k = c·log(1/δ)/ε²` rule.
#[derive(Clone, Copy, Debug)]
pub struct SketchParamsBuilder {
    p: f64,
    k: usize,
    seed: u64,
    accuracy: Option<(f64, f64)>,
}

impl Default for SketchParamsBuilder {
    fn default() -> Self {
        Self {
            p: 1.0,
            k: 256,
            seed: 0,
            accuracy: None,
        }
    }
}

impl SketchParamsBuilder {
    /// Sets the Lp exponent (must lie in `(0, 2]`; checked at build).
    pub fn p(mut self, p: f64) -> Self {
        self.p = p;
        self
    }

    /// Sets the sketch width (number of random projections).
    pub fn k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Derives the width from an `(ε, δ)` accuracy target instead of an
    /// explicit `k` (see [`SketchParams::from_accuracy`]).
    pub fn accuracy(mut self, epsilon: f64, delta: f64) -> Self {
        self.accuracy = Some((epsilon, delta));
        self
    }

    /// Validates and builds the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`TabError::InvalidP`] for `p` outside `(0, 2]`, and
    /// [`TabError::InvalidParameter`] for `k == 0` or an accuracy target
    /// outside `(0, 1)`.
    pub fn build(self) -> Result<SketchParams, TabError> {
        match self.accuracy {
            Some((epsilon, delta)) => {
                SketchParams::from_accuracy(self.p, epsilon, delta, self.seed)
            }
            None => SketchParams::validated(self.p, self.k, self.seed),
        }
    }
}

/// Which estimator turns sketch differences into a distance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum EstimatorKind {
    /// `median(|s(x)_i − s(y)_i|) / B(p)` — works for every `p ∈ (0, 2]`.
    #[default]
    Median,
    /// `‖s(x) − s(y)‖₂ / √k` — the classical Johnson–Lindenstrauss
    /// estimator, valid only at `p = 2` (where the random entries are
    /// `N(0,1)`). The paper notes L2 sketch distances are faster to
    /// evaluate this way than via a median.
    L2,
}

/// A sketch: `k` stable random projections of an object.
///
/// Sketches carry their `p` and a `family` tag; estimator methods refuse
/// to compare sketches from different families (they would be meaningless
/// — different random matrices).
#[derive(Clone, Debug, PartialEq)]
pub struct Sketch {
    p: f64,
    family: u64,
    values: Box<[f64]>,
}

impl Sketch {
    /// Builds a sketch from raw projection values. Mostly used by the
    /// all-subtable and pool machinery; end users obtain sketches from
    /// [`Sketcher::sketch_slice`] and friends.
    pub fn from_values(p: f64, family: u64, values: Vec<f64>) -> Self {
        Self {
            p,
            family,
            values: values.into_boxed_slice(),
        }
    }

    /// The Lp exponent this sketch estimates.
    #[inline]
    pub fn p(&self) -> f64 {
        self.p
    }

    /// The family tag (random-matrix identity).
    #[inline]
    pub fn family(&self) -> u64 {
        self.family
    }

    /// The sketch width.
    #[inline]
    pub fn k(&self) -> usize {
        self.values.len()
    }

    /// The raw projection values.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// A zero sketch of the same shape/family — the sketch of the zero
    /// vector, useful for norm estimation and as an accumulator identity.
    pub fn zero_like(&self) -> Sketch {
        Sketch {
            p: self.p,
            family: self.family,
            values: vec![0.0; self.values.len()].into(),
        }
    }

    fn check_compatible(&self, other: &Sketch) -> Result<(), TabError> {
        if self.values.len() != other.values.len() {
            return Err(TabError::SketchMismatch {
                reason: "sketch widths differ",
            });
        }
        if self.p != other.p {
            return Err(TabError::SketchMismatch {
                reason: "sketch exponents differ",
            });
        }
        if self.family != other.family {
            return Err(TabError::SketchMismatch {
                reason: "sketches come from different random families",
            });
        }
        Ok(())
    }

    /// `self += other` (linearity: sketch of the sum).
    ///
    /// # Errors
    ///
    /// Returns [`TabError::SketchMismatch`] for incompatible sketches.
    pub fn add_assign(&mut self, other: &Sketch) -> Result<(), TabError> {
        self.check_compatible(other)?;
        for (a, b) in self.values.iter_mut().zip(other.values.iter()) {
            *a += b;
        }
        Ok(())
    }

    /// `self −= other`.
    ///
    /// # Errors
    ///
    /// Returns [`TabError::SketchMismatch`] for incompatible sketches.
    pub fn sub_assign(&mut self, other: &Sketch) -> Result<(), TabError> {
        self.check_compatible(other)?;
        for (a, b) in self.values.iter_mut().zip(other.values.iter()) {
            *a -= b;
        }
        Ok(())
    }

    /// Scales all projections by `factor` (sketch of `factor · x`).
    pub fn scale(&mut self, factor: f64) {
        for v in self.values.iter_mut() {
            *v *= factor;
        }
    }

    /// The mean of a non-empty set of compatible sketches — by linearity,
    /// the sketch of the mean object (e.g. a cluster centroid).
    ///
    /// # Errors
    ///
    /// Returns [`TabError::InvalidParameter`] for an empty set, or
    /// [`TabError::SketchMismatch`] for incompatible members.
    pub fn mean<'a, I>(sketches: I) -> Result<Sketch, TabError>
    where
        I: IntoIterator<Item = &'a Sketch>,
    {
        let mut iter = sketches.into_iter();
        let first = iter
            .next()
            .ok_or(TabError::InvalidParameter("mean of an empty sketch set"))?;
        let mut acc = first.clone();
        let mut count = 1usize;
        for s in iter {
            acc.add_assign(s)?;
            count += 1;
        }
        acc.scale(1.0 / count as f64);
        Ok(acc)
    }
}

/// The sketching engine: owns the parameters, the p-stable sampler, the
/// scale factor `B(p)`, and the identity of the random family.
///
/// ```
/// use tabsketch_core::{SketchParams, Sketcher};
///
/// let params = SketchParams::builder().p(1.0).k(512).seed(42).build().unwrap();
/// let sk = Sketcher::new(params).unwrap();
/// let x = vec![1.0; 256];
/// let y = vec![3.0; 256];
/// let sx = sk.sketch_slice(&x);
/// let sy = sk.sketch_slice(&y);
/// let est = sk.estimate_distance(&sx, &sy).unwrap();
/// let exact = 2.0 * 256.0; // L1 distance
/// assert!((est - exact).abs() / exact < 0.25);
/// ```
#[derive(Clone, Debug)]
pub struct Sketcher {
    params: SketchParams,
    family: u64,
    sampler: StableSampler,
    scale: ScaleFactor,
    estimator: EstimatorKind,
    /// Pre-materialized prefixes of all `k` random rows as one immutable,
    /// contiguous [`RowBlock`], shared across clones. The paper's
    /// preprocessing "compute[s] the necessary k different R[i] matrices"
    /// once; the lock guards only the rare grow step — the sketching hot
    /// path clones the `Arc`-backed block out and computes lock-free.
    rows: Arc<RwLock<RowBlock>>,
}

/// Random rows longer than this are not cached (they would dominate
/// memory); they are regenerated per call instead.
const MAX_CACHED_ROW_LEN: usize = 1 << 20;

impl Sketcher {
    /// Creates a sketcher for family 0 with the default estimator for its
    /// `p` (L2 estimator at `p = 2`, median otherwise — matching the
    /// paper's implementation note in §4.4).
    ///
    /// # Errors
    ///
    /// Propagates parameter validation errors.
    pub fn new(params: SketchParams) -> Result<Self, TabError> {
        Self::with_family(params, 0)
    }

    /// Creates a sketcher whose random matrices are drawn from the given
    /// family. Distinct families are statistically independent; the pool
    /// uses families 0–3 for the four compound-sketch anchors.
    ///
    /// # Errors
    ///
    /// Propagates parameter validation errors.
    pub fn with_family(params: SketchParams, family: u64) -> Result<Self, TabError> {
        let sampler = StableSampler::new(params.p())?;
        let scale = ScaleFactor::new(params.p())?;
        let estimator = if params.p() == 2.0 {
            EstimatorKind::L2
        } else {
            EstimatorKind::Median
        };
        let empty = RowBlock::from_parts(params.k(), 0, 0, Arc::from(&[][..]));
        Ok(Self {
            params,
            family,
            sampler,
            scale,
            estimator,
            rows: Arc::new(RwLock::new(empty)),
        })
    }

    /// Overrides the estimator kind.
    ///
    /// # Errors
    ///
    /// Returns [`TabError::InvalidParameter`] when the L2 estimator is
    /// requested for `p ≠ 2`.
    pub fn with_estimator(mut self, kind: EstimatorKind) -> Result<Self, TabError> {
        if kind == EstimatorKind::L2 && self.params.p() != 2.0 {
            return Err(TabError::InvalidParameter(
                "the L2 estimator is only valid at p = 2",
            ));
        }
        self.estimator = kind;
        Ok(self)
    }

    /// The parameters this sketcher was built with.
    #[inline]
    pub fn params(&self) -> SketchParams {
        self.params
    }

    /// The Lp exponent.
    #[inline]
    pub fn p(&self) -> f64 {
        self.params.p()
    }

    /// The sketch width.
    #[inline]
    pub fn k(&self) -> usize {
        self.params.k()
    }

    /// The random-family tag.
    #[inline]
    pub fn family(&self) -> u64 {
        self.family
    }

    /// The scale factor `B(p)` used by the median estimator.
    #[inline]
    pub fn scale_factor(&self) -> f64 {
        self.scale.value()
    }

    /// The estimator in use.
    #[inline]
    pub fn estimator(&self) -> EstimatorKind {
        self.estimator
    }

    /// The RNG for random row `i` of this family. The j-th draw of this
    /// stream is entry `j` of random vector `r[i]`, identical across the
    /// eager, on-demand, and pooled sketch paths.
    pub fn row_rng(&self, i: usize) -> StdRng {
        stream_rng(
            self.params.seed(),
            &[self.family, i as u64, self.params.p().to_bits()],
        )
    }

    /// Materializes the first `len` entries of random vector `r[i]`.
    pub fn random_row(&self, i: usize, len: usize) -> Vec<f64> {
        debug_assert!(i < self.k());
        match self.row_block(len) {
            Some(block) => block.row(i).to_vec(),
            None => {
                // Too large to pin in memory: regenerate on the fly.
                let mut rng = self.row_rng(i);
                self.sampler.sample_vec(&mut rng, len)
            }
        }
    }

    /// The immutable block of all `k` random-row prefixes of length
    /// `len`, served from the shared table when already materialized —
    /// the zero-copy, borrow-friendly replacement for calling
    /// [`Sketcher::random_row`] per row. Returns `None` when `len`
    /// exceeds the caching bound (the caller must stream rows instead).
    pub fn row_block(&self, len: usize) -> Option<RowBlock> {
        if len > MAX_CACHED_ROW_LEN {
            return None;
        }
        {
            let cur = self.rows.read().expect("row block lock");
            if cur.len() >= len {
                return Some(cur.with_len(len));
            }
        }
        // Grow (by regenerating every row from its deterministic stream)
        // outside the read lock; last writer wins harmlessly since all
        // writers produce identical prefixes.
        let grown = len.next_power_of_two().min(MAX_CACHED_ROW_LEN);
        let k = self.k();
        let mut data = Vec::with_capacity(k * grown);
        for i in 0..k {
            let mut rng = self.row_rng(i);
            data.extend_from_slice(&self.sampler.sample_vec(&mut rng, grown));
        }
        tabsketch_obs::counter!("core.kernels.block_builds").inc();
        let block = RowBlock::from_parts(k, grown, grown, data.into());
        let mut cur = self.rows.write().expect("row block lock");
        if cur.len() < block.len() {
            *cur = block.clone();
        }
        Some(block.with_len(len))
    }

    /// A single entry `r[i][index]` of random row `i`, served from the
    /// shared block — the `O(1)`-amortized primitive behind streaming
    /// updates.
    pub fn row_entry(&self, i: usize, index: usize) -> f64 {
        match self.row_block(index + 1) {
            Some(block) => block.row(i)[index],
            None => {
                let mut rng = self.row_rng(i);
                self.sampler.sample_vec(&mut rng, index + 1)[index]
            }
        }
    }

    /// The `k` projections of one linearized object, via the blocked
    /// kernel when the row block fits in memory and a streamed per-row
    /// fallback otherwise. Shared by every sketch entry point so obs
    /// counters fire exactly once per public call.
    fn sketch_values(&self, data: &[f64]) -> Vec<f64> {
        let mut values = vec![0.0; self.k()];
        match self.row_block(data.len()) {
            Some(block) => kernels::dot_rows(&block, data, &mut values),
            None => {
                // Oversized object: stream each row instead of pinning a
                // k × len block (which could be many GiB).
                for (i, slot) in values.iter_mut().enumerate() {
                    let mut rng = self.row_rng(i);
                    let row = self.sampler.sample_vec(&mut rng, data.len());
                    *slot = norms::dot_slices(data, &row);
                }
            }
        }
        values
    }

    /// Sketches a linearized object (vector, or row-major matrix).
    pub fn sketch_slice(&self, data: &[f64]) -> Sketch {
        let _span = tabsketch_obs::span("core.sketch.build");
        tabsketch_obs::counter!("core.sketch.sketches").inc();
        Sketch::from_values(self.p(), self.family, self.sketch_values(data))
    }

    /// Sketches a rectangular table view (row-major linearization, the
    /// paper's "linearized in some consistent way").
    pub fn sketch_view(&self, view: &TableView<'_>) -> Sketch {
        let _span = tabsketch_obs::span("core.sketch.build");
        tabsketch_obs::counter!("core.sketch.sketches").inc();
        let data = view.to_vec();
        Sketch::from_values(self.p(), self.family, self.sketch_values(&data))
    }

    /// Sketches many objects in one call. When every object has the same
    /// length (the common case: equal-size tiles) the batched
    /// [`kernels::dot_rows_batch`] kernel sketches several objects per
    /// pass over each random-row block; otherwise each object falls back
    /// to the single-object kernel. Either way the results are
    /// bit-identical to calling [`Sketcher::sketch_slice`] per object.
    pub fn sketch_batch(&self, objects: &[&[f64]]) -> Vec<Sketch> {
        if objects.is_empty() {
            return Vec::new();
        }
        let _span = tabsketch_obs::span("core.kernels.batch");
        tabsketch_obs::counter!("core.kernels.batches").inc();
        tabsketch_obs::counter!("core.kernels.batch_objects").add(objects.len() as u64);
        tabsketch_obs::counter!("core.sketch.sketches").add(objects.len() as u64);
        let len = objects[0].len();
        let uniform = objects.iter().all(|o| o.len() == len);
        if uniform {
            if let Some(block) = self.row_block(len) {
                let k = self.k();
                let mut out = vec![0.0; objects.len() * k];
                kernels::dot_rows_batch(&block, objects, &mut out);
                return out
                    .chunks_exact(k)
                    .map(|c| Sketch::from_values(self.p(), self.family, c.to_vec()))
                    .collect();
            }
        }
        objects
            .iter()
            .map(|o| Sketch::from_values(self.p(), self.family, self.sketch_values(o)))
            .collect()
    }

    /// Estimates `‖x − y‖_p` from two sketches (allocating scratch).
    ///
    /// # Errors
    ///
    /// Returns [`TabError::SketchMismatch`] for incompatible sketches.
    pub fn estimate_distance(&self, a: &Sketch, b: &Sketch) -> Result<f64, TabError> {
        let mut scratch = Vec::with_capacity(self.k());
        self.estimate_distance_with(a, b, &mut scratch)
    }

    /// Estimates `‖x − y‖_p` from two sketches, reusing `scratch` — the
    /// non-allocating hot path used by clustering.
    ///
    /// # Errors
    ///
    /// Returns [`TabError::SketchMismatch`] for incompatible sketches.
    pub fn estimate_distance_with(
        &self,
        a: &Sketch,
        b: &Sketch,
        scratch: &mut Vec<f64>,
    ) -> Result<f64, TabError> {
        a.check_compatible(b)?;
        Ok(self.estimate_distance_slices(a.values(), b.values(), scratch))
    }

    /// Estimates `‖x − y‖_p` from two raw sketch-value slices of the same
    /// family, skipping compatibility checks — the internal hot path for
    /// stores that keep sketch values in flat buffers.
    ///
    /// The caller guarantees both slices have length `k` and were produced
    /// by this sketcher's random family.
    pub fn estimate_distance_slices(&self, a: &[f64], b: &[f64], scratch: &mut Vec<f64>) -> f64 {
        debug_assert_eq!(a.len(), self.k());
        debug_assert_eq!(b.len(), self.k());
        tabsketch_obs::counter!("core.estimate.calls").inc();
        match self.estimator {
            EstimatorKind::Median => {
                let med = median_abs_diff(a, b, scratch).expect("slices are non-empty");
                med / self.scale.value()
            }
            EstimatorKind::L2 => {
                let sq: f64 = a
                    .iter()
                    .zip(b)
                    .map(|(&x, &y)| {
                        let d = x - y;
                        d * d
                    })
                    .sum();
                (sq / a.len() as f64).sqrt()
            }
        }
    }

    /// Estimates `‖x‖_p` from a sketch (distance to the zero sketch).
    pub fn estimate_norm(&self, a: &Sketch) -> f64 {
        let zero = a.zero_like();
        self.estimate_distance(a, &zero)
            .expect("zero_like is compatible by construction")
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use rand::Rng;
    use tabsketch_table::norms::lp_distance_slices;

    fn random_vec(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = stream_rng(seed, &[0xDA7A]);
        (0..n).map(|_| rng.random_range(-50.0..50.0)).collect()
    }

    #[test]
    fn params_validation() {
        assert!(SketchParams::new(1.0, 64, 0).is_ok());
        assert!(SketchParams::new(0.0, 64, 0).is_err());
        assert!(SketchParams::new(1.0, 0, 0).is_err());
        assert!(SketchParams::from_accuracy(1.0, 0.1, 0.01, 0).is_ok());
        assert!(SketchParams::from_accuracy(1.0, 0.0, 0.01, 0).is_err());
        assert!(SketchParams::from_accuracy(1.0, 0.1, 1.5, 0).is_err());
    }

    #[test]
    fn builder_defaults_validation_and_accuracy() {
        let d = SketchParams::builder().build().unwrap();
        assert_eq!((d.p(), d.k(), d.seed()), (1.0, 256, 0));
        let custom = SketchParams::builder()
            .p(0.5)
            .k(64)
            .seed(7)
            .build()
            .unwrap();
        assert_eq!(custom, SketchParams::new(0.5, 64, 7).unwrap());
        assert!(SketchParams::builder().p(0.0).build().is_err());
        assert!(SketchParams::builder().k(0).build().is_err());
        let acc = SketchParams::builder().accuracy(0.1, 0.01).build().unwrap();
        assert_eq!(acc, SketchParams::from_accuracy(1.0, 0.1, 0.01, 0).unwrap());
        assert!(SketchParams::builder().accuracy(0.0, 0.5).build().is_err());
    }

    #[test]
    fn accuracy_widths_shrink_with_looser_targets() {
        let tight = SketchParams::from_accuracy(1.0, 0.05, 0.01, 0).unwrap();
        let loose = SketchParams::from_accuracy(1.0, 0.2, 0.1, 0).unwrap();
        assert!(tight.k() > loose.k());
    }

    #[test]
    fn sketch_is_deterministic() {
        let params = SketchParams::new(1.0, 32, 9).unwrap();
        let sk = Sketcher::new(params).unwrap();
        let x = random_vec(100, 1);
        assert_eq!(sk.sketch_slice(&x), sk.sketch_slice(&x));
    }

    #[test]
    fn different_families_differ() {
        let params = SketchParams::new(1.0, 32, 9).unwrap();
        let a = Sketcher::with_family(params, 0).unwrap();
        let b = Sketcher::with_family(params, 1).unwrap();
        let x = random_vec(100, 1);
        assert_ne!(a.sketch_slice(&x), b.sketch_slice(&x));
        // And their sketches refuse to be compared.
        let sa = a.sketch_slice(&x);
        let sb = b.sketch_slice(&x);
        assert!(matches!(
            a.estimate_distance(&sa, &sb),
            Err(TabError::SketchMismatch { .. })
        ));
    }

    #[test]
    fn sketch_linearity() {
        let params = SketchParams::new(0.5, 16, 3).unwrap();
        let sk = Sketcher::new(params).unwrap();
        let x = random_vec(64, 2);
        let y = random_vec(64, 3);
        let sum: Vec<f64> = x.iter().zip(&y).map(|(&a, &b)| a + b).collect();
        let mut sx = sk.sketch_slice(&x);
        let sy = sk.sketch_slice(&y);
        let ssum = sk.sketch_slice(&sum);
        sx.add_assign(&sy).unwrap();
        for (a, b) in sx.values().iter().zip(ssum.values()) {
            assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn mean_sketch_is_sketch_of_mean() {
        let params = SketchParams::new(1.0, 16, 5).unwrap();
        let sk = Sketcher::new(params).unwrap();
        let xs: Vec<Vec<f64>> = (0..4).map(|i| random_vec(32, 100 + i)).collect();
        let mean_obj: Vec<f64> = (0..32)
            .map(|j| xs.iter().map(|x| x[j]).sum::<f64>() / 4.0)
            .collect();
        let sketches: Vec<Sketch> = xs.iter().map(|x| sk.sketch_slice(x)).collect();
        let mean_sketch = Sketch::mean(sketches.iter()).unwrap();
        let direct = sk.sketch_slice(&mean_obj);
        for (a, b) in mean_sketch.values().iter().zip(direct.values()) {
            assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()));
        }
    }

    #[test]
    fn mean_of_empty_set_errors() {
        assert!(Sketch::mean(std::iter::empty()).is_err());
    }

    #[test]
    fn distance_estimates_are_accurate() {
        // k = 400 gives ε ≈ 10% with high probability; check several p.
        for &p in &[0.5, 1.0, 1.5, 2.0] {
            let params = SketchParams::new(p, 400, 77).unwrap();
            let sk = Sketcher::new(params).unwrap();
            let x = random_vec(256, 10);
            let y = random_vec(256, 11);
            let exact = lp_distance_slices(&x, &y, p);
            let est = sk
                .estimate_distance(&sk.sketch_slice(&x), &sk.sketch_slice(&y))
                .unwrap();
            let rel = (est - exact).abs() / exact;
            assert!(rel < 0.2, "p={p}: est={est}, exact={exact}, rel={rel}");
        }
    }

    #[test]
    fn identical_objects_have_zero_distance() {
        let params = SketchParams::new(1.3, 64, 4).unwrap();
        let sk = Sketcher::new(params).unwrap();
        let x = random_vec(100, 5);
        let s = sk.sketch_slice(&x);
        assert_eq!(sk.estimate_distance(&s, &s.clone()).unwrap(), 0.0);
    }

    #[test]
    fn norm_estimate() {
        let params = SketchParams::new(1.0, 400, 21).unwrap();
        let sk = Sketcher::new(params).unwrap();
        let x = random_vec(512, 9);
        let exact: f64 = x.iter().map(|v| v.abs()).sum();
        let est = sk.estimate_norm(&sk.sketch_slice(&x));
        assert!(
            (est - exact).abs() / exact < 0.2,
            "est={est}, exact={exact}"
        );
    }

    #[test]
    fn l2_estimator_only_at_p2() {
        let p2 = SketchParams::new(2.0, 16, 0).unwrap();
        let sk2 = Sketcher::new(p2).unwrap();
        assert_eq!(sk2.estimator(), EstimatorKind::L2);
        assert!(sk2.clone().with_estimator(EstimatorKind::Median).is_ok());
        let p1 = SketchParams::new(1.0, 16, 0).unwrap();
        let sk1 = Sketcher::new(p1).unwrap();
        assert_eq!(sk1.estimator(), EstimatorKind::Median);
        assert!(sk1.with_estimator(EstimatorKind::L2).is_err());
    }

    #[test]
    fn sketch_view_matches_sketch_slice_of_linearization() {
        use tabsketch_table::{Rect, Table};
        let t = Table::from_fn(10, 12, |r, c| ((r * 13 + c * 7) % 29) as f64).unwrap();
        let rect = Rect::new(2, 3, 4, 5);
        let view = t.view(rect).unwrap();
        let params = SketchParams::new(1.0, 8, 123).unwrap();
        let sk = Sketcher::new(params).unwrap();
        let via_view = sk.sketch_view(&view);
        let via_slice = sk.sketch_slice(&view.to_vec());
        for (a, b) in via_view.values().iter().zip(via_slice.values()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn incompatible_widths_rejected() {
        let ska = Sketcher::new(SketchParams::new(1.0, 8, 0).unwrap()).unwrap();
        let skb = Sketcher::new(SketchParams::new(1.0, 16, 0).unwrap()).unwrap();
        let x = random_vec(10, 0);
        let sa = ska.sketch_slice(&x);
        let sb = skb.sketch_slice(&x);
        assert!(ska.estimate_distance(&sa, &sb).is_err());
    }

    #[test]
    fn scale_and_sub() {
        let sk = Sketcher::new(SketchParams::new(1.0, 8, 1).unwrap()).unwrap();
        let x = random_vec(20, 30);
        let twice: Vec<f64> = x.iter().map(|v| 2.0 * v).collect();
        let mut sx = sk.sketch_slice(&x);
        sx.scale(2.0);
        let s2 = sk.sketch_slice(&twice);
        for (a, b) in sx.values().iter().zip(s2.values()) {
            assert!((a - b).abs() < 1e-8 * (1.0 + a.abs()));
        }
        let mut diff = sk.sketch_slice(&twice);
        diff.sub_assign(&sk.sketch_slice(&x)).unwrap();
        for (d, b) in diff.values().iter().zip(sk.sketch_slice(&x).values()) {
            assert!((d - b).abs() < 1e-8 * (1.0 + d.abs()));
        }
    }
}
