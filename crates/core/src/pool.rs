//! The dyadic sketch pool and compound sketches (paper Definition 4,
//! Theorems 5 and 6).
//!
//! For every canonical size `2^i × 2^j` (within a configured range) the
//! pool stores **four independent** all-subtable sketch families
//! `s, t, u, v`. The sketch of an arbitrary `c × d` rectangle is then
//! assembled in `O(k)` by summing the four family sketches anchored at the
//! rectangle's corners (the [`tabsketch_table::dyadic::DyadicCover`]), so
//! that the covering rectangles tile the query with overlap.
//!
//! Because each cell is counted between 1 and 4 times, a compound estimate
//! is a `4^{1/p}·(1+ε)` over-approximation at worst (the paper states the
//! factor-4 form for its range of interest). Comparisons between
//! same-shape rectangles remain meaningful, which is all clustering needs.

use std::collections::HashMap;

use tabsketch_table::dyadic::{canonical_sizes, DyadicCover};
use tabsketch_table::{MemoryBudget, Rect, Table, TableUpdate};

use crate::allsub::AllSubtableSketches;
use crate::rng::derive_key;
use crate::sketch::{Sketch, SketchParams, Sketcher};
use crate::TabError;

/// Domain-separation tag for compound-sketch family ids.
const COMPOUND_TAG: u64 = 0xC0_4D0_u64;

/// Configuration for [`SketchPool::build`].
#[derive(Clone, Copy, Debug)]
pub struct PoolConfig {
    /// Smallest canonical tile edge (rows) to precompute; must be a power
    /// of two. Queries whose dyadic cover falls below this fail.
    pub min_rows: usize,
    /// Smallest canonical tile edge (columns); power of two.
    pub min_cols: usize,
    /// Largest canonical tile rows to precompute (clamped to the table).
    pub max_rows: usize,
    /// Largest canonical tile columns to precompute (clamped to the table).
    pub max_cols: usize,
    /// When set, only square canonical sizes `2^i × 2^i` are stored —
    /// the configuration the paper's experiments use ("square tiles of
    /// size 8×8, 16×16 and so on").
    pub square_only: bool,
    /// Memory budget in bytes across all stored sketch sets.
    pub max_bytes: usize,
    /// Memory budget on resident *table* bytes during the build: bounded
    /// budgets make the underlying all-subtable builds process the table
    /// in row bands instead of pinning it whole. Results are identical
    /// across storage backends at equal budgets (see
    /// [`AllSubtableSketches::build_with_budgets`]).
    pub table_budget: MemoryBudget,
}

impl Default for PoolConfig {
    fn default() -> Self {
        Self {
            min_rows: 8,
            min_cols: 8,
            max_rows: usize::MAX,
            max_cols: usize::MAX,
            square_only: false,
            max_bytes: crate::allsub::DEFAULT_MEMORY_BUDGET,
            table_budget: MemoryBudget::unbounded(),
        }
    }
}

impl PoolConfig {
    /// Starts a builder seeded with [`PoolConfig::default`] — the
    /// preferred alternative to struct-literal field stuffing:
    ///
    /// ```
    /// use tabsketch_core::PoolConfig;
    ///
    /// let cfg = PoolConfig::builder()
    ///     .min_rows(4)
    ///     .min_cols(4)
    ///     .square_only(true)
    ///     .build()
    ///     .unwrap();
    /// assert!(cfg.square_only);
    /// ```
    pub fn builder() -> PoolConfigBuilder {
        PoolConfigBuilder {
            config: Self::default(),
        }
    }

    fn validate(&self) -> Result<(), TabError> {
        if !self.min_rows.is_power_of_two() || !self.min_cols.is_power_of_two() {
            return Err(TabError::InvalidParameter(
                "pool min sizes must be powers of two",
            ));
        }
        if self.max_rows < self.min_rows || self.max_cols < self.min_cols {
            return Err(TabError::InvalidParameter("pool max sizes below min sizes"));
        }
        Ok(())
    }
}

/// Builder for [`PoolConfig`], started via [`PoolConfig::builder`].
///
/// Unlike a struct literal, the builder validates eagerly: `build`
/// rejects non-power-of-two minima and inverted ranges up front instead
/// of deferring the error to [`SketchPool::build`].
#[derive(Clone, Copy, Debug)]
pub struct PoolConfigBuilder {
    config: PoolConfig,
}

impl PoolConfigBuilder {
    /// Smallest canonical tile rows to precompute (power of two).
    pub fn min_rows(mut self, min_rows: usize) -> Self {
        self.config.min_rows = min_rows;
        self
    }

    /// Smallest canonical tile columns to precompute (power of two).
    pub fn min_cols(mut self, min_cols: usize) -> Self {
        self.config.min_cols = min_cols;
        self
    }

    /// Largest canonical tile rows to precompute.
    pub fn max_rows(mut self, max_rows: usize) -> Self {
        self.config.max_rows = max_rows;
        self
    }

    /// Largest canonical tile columns to precompute.
    pub fn max_cols(mut self, max_cols: usize) -> Self {
        self.config.max_cols = max_cols;
        self
    }

    /// Restricts the pool to square canonical sizes `2^i × 2^i`.
    pub fn square_only(mut self, square_only: bool) -> Self {
        self.config.square_only = square_only;
        self
    }

    /// Memory budget in bytes across all stored sketch sets.
    pub fn max_bytes(mut self, max_bytes: usize) -> Self {
        self.config.max_bytes = max_bytes;
        self
    }

    /// Memory budget on resident table bytes during the build (see
    /// [`PoolConfig::table_budget`]).
    pub fn table_budget(mut self, table_budget: MemoryBudget) -> Self {
        self.config.table_budget = table_budget;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`TabError::InvalidParameter`] for non-power-of-two
    /// minima or maxima below minima.
    pub fn build(self) -> Result<PoolConfig, TabError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// A pool of precomputed dyadic sketches supporting `O(k)` compound
/// sketches of arbitrary rectangles.
#[derive(Clone, Debug)]
pub struct SketchPool {
    params: SketchParams,
    config: PoolConfig,
    /// For each canonical `(rows, cols)`: four independent sketch sets,
    /// one per cover anchor.
    entries: HashMap<(usize, usize), Box<[AllSubtableSketches; 4]>>,
}

impl SketchPool {
    /// Precomputes the pool over `table`.
    ///
    /// # Errors
    ///
    /// * [`TabError::InvalidParameter`] for inconsistent configuration;
    /// * [`TabError::MemoryBudgetExceeded`] when the combined store would
    ///   exceed `config.max_bytes`;
    /// * construction errors from the underlying sketch builds.
    pub fn build(
        table: &Table,
        params: SketchParams,
        config: PoolConfig,
    ) -> Result<Self, TabError> {
        config.validate()?;
        let _span = tabsketch_obs::span("core.pool.build");
        tabsketch_obs::counter!("core.pool.builds").inc();
        let sizes = Self::plan_sizes(table, params, &config)?;
        let mut entries = HashMap::with_capacity(sizes.len());
        for &(r, c) in &sizes {
            let mut sets = Vec::with_capacity(4);
            for anchor in 0..4u64 {
                sets.push(Self::build_unit(table, params, &config, (r, c), anchor, 1)?);
            }
            let sets: Box<[AllSubtableSketches; 4]> = match sets.try_into() {
                Ok(arr) => Box::new(arr),
                Err(_) => unreachable!("exactly four sets are built"),
            };
            entries.insert((r, c), sets);
        }
        let pool = Self {
            params,
            config,
            entries,
        };
        tabsketch_obs::gauge!("core.pool.memory_bytes").raise(pool.memory_bytes() as u64);
        Ok(pool)
    }

    /// As [`SketchPool::build`], fanning the independent `(canonical
    /// size, anchor)` work units across `threads` scoped worker threads.
    /// Each unit builds one all-subtable store from its own derived
    /// random family, so no unit depends on any other and the assembled
    /// pool is **bit-identical** to the sequential build for every thread
    /// count (the equivalence suite pins this down).
    ///
    /// Scheduling is adaptive (DESIGN.md §15):
    ///
    /// * the requested count is clamped to
    ///   [`std::thread::available_parallelism`], and a single effective
    ///   worker takes the serial [`SketchPool::build`] path outright —
    ///   no thread scaffolding on a 1-core host;
    /// * work-stealing claims units **largest estimated cost first**
    ///   (`AllSubtableSketches::estimated_build_cost`), so
    ///   the biggest canonical sizes cannot land last on one straggler;
    /// * cores left over after the outer fan-out
    ///   (`effective / outer_workers`) go to kernel-level parallelism
    ///   *inside* each unit's banded build, so few-unit pools — and
    ///   spilled tables building band by band under a memory budget —
    ///   still use the whole machine.
    ///
    /// # Errors
    ///
    /// Same contract as [`SketchPool::build`], plus
    /// [`TabError::InvalidParameter`] for `threads == 0`. When several
    /// units fail, the error of the first unit in the sequential build
    /// order is reported, so error behaviour is deterministic too.
    pub fn build_parallel(
        table: &Table,
        params: SketchParams,
        config: PoolConfig,
        threads: usize,
    ) -> Result<Self, TabError> {
        if threads == 0 {
            return Err(TabError::InvalidParameter("threads must be non-zero"));
        }
        let effective = crate::clamp_threads(threads);
        if effective == 1 {
            return Self::build(table, params, config);
        }
        config.validate()?;
        let _span = tabsketch_obs::span("core.pool.build");
        tabsketch_obs::counter!("core.pool.builds").inc();
        let sizes = Self::plan_sizes(table, params, &config)?;
        let units: Vec<((usize, usize), u64)> = sizes
            .iter()
            .flat_map(|&sz| (0..4u64).map(move |anchor| (sz, anchor)))
            .collect();
        let outer = effective.min(units.len());
        let inner = (effective / outer).max(1);
        // Claim units in descending estimated-cost order (stable within
        // ties, so anchors of one size keep their sequential order). The
        // claim order only affects wall-clock, never results: each unit
        // lands back in its original slot.
        let mut schedule: Vec<usize> = (0..units.len()).collect();
        schedule.sort_by_key(|&i| {
            let ((r, c), _) = units[i];
            std::cmp::Reverse(AllSubtableSketches::estimated_build_cost(
                table,
                r,
                c,
                params.k(),
                config.table_budget,
            ))
        });
        // Work-stealing over a shared index: unit costs vary wildly with
        // the canonical size, so static chunking would leave threads idle.
        let next = std::sync::atomic::AtomicUsize::new(0);
        let built: Vec<Vec<(usize, Result<AllSubtableSketches, TabError>)>> =
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(outer);
                for _ in 0..outer {
                    let next = &next;
                    let units = &units;
                    let schedule = &schedule;
                    let config = &config;
                    handles.push(scope.spawn(move || {
                        let mut out = Vec::new();
                        loop {
                            let slot = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            let Some(&idx) = schedule.get(slot) else {
                                break;
                            };
                            let (sz, anchor) = units[idx];
                            out.push((
                                idx,
                                Self::build_unit(table, params, config, sz, anchor, inner),
                            ));
                        }
                        out
                    }));
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("pool build worker panicked"))
                    .collect()
            });
        let mut slots: Vec<Option<Result<AllSubtableSketches, TabError>>> =
            (0..units.len()).map(|_| None).collect();
        for worker in built {
            for (idx, res) in worker {
                slots[idx] = Some(res);
            }
        }
        // Surface errors in sequential-build order for determinism.
        let mut stores = Vec::with_capacity(units.len());
        for slot in slots {
            stores.push(slot.expect("every unit is claimed exactly once")?);
        }
        let mut entries = HashMap::with_capacity(sizes.len());
        let mut stores = stores.into_iter();
        for &sz in &sizes {
            let sets: Vec<AllSubtableSketches> = stores.by_ref().take(4).collect();
            let sets: Box<[AllSubtableSketches; 4]> = match sets.try_into() {
                Ok(arr) => Box::new(arr),
                Err(_) => unreachable!("exactly four sets per size"),
            };
            entries.insert(sz, sets);
        }
        let pool = Self {
            params,
            config,
            entries,
        };
        tabsketch_obs::gauge!("core.pool.memory_bytes").raise(pool.memory_bytes() as u64);
        Ok(pool)
    }

    /// The canonical sizes a build will store, with the up-front memory
    /// check — shared by the sequential and parallel builds so both fail
    /// identically before allocating anything.
    fn plan_sizes(
        table: &Table,
        params: SketchParams,
        config: &PoolConfig,
    ) -> Result<Vec<(usize, usize)>, TabError> {
        let sizes: Vec<(usize, usize)> = canonical_sizes(
            table.rows().min(config.max_rows),
            table.cols().min(config.max_cols),
        )
        .into_iter()
        .filter(|&(r, c)| {
            r >= config.min_rows && c >= config.min_cols && (!config.square_only || r == c)
        })
        .collect();
        if sizes.is_empty() {
            return Err(TabError::InvalidParameter(
                "pool configuration admits no canonical sizes for this table",
            ));
        }
        let k = params.k();
        let mut required = 0usize;
        for &(r, c) in &sizes {
            let npos = (table.rows() - r + 1) * (table.cols() - c + 1);
            required = required
                .checked_add(4 * npos * k * core::mem::size_of::<f64>())
                .ok_or(TabError::InvalidParameter("pool size overflows"))?;
        }
        if required > config.max_bytes {
            return Err(TabError::MemoryBudgetExceeded {
                required,
                limit: config.max_bytes,
            });
        }
        Ok(sizes)
    }

    /// Builds the all-subtable store of one `(canonical size, anchor)`
    /// work unit. Each (size, anchor) pair gets an independent random
    /// family, as Theorem 5 requires. `inner_threads > 1` fans the
    /// unit's kernel correlations across that many threads within each
    /// band — results are bit-identical either way.
    fn build_unit(
        table: &Table,
        params: SketchParams,
        config: &PoolConfig,
        (r, c): (usize, usize),
        anchor: u64,
        inner_threads: usize,
    ) -> Result<AllSubtableSketches, TabError> {
        let family = derive_key(params.seed(), &[r as u64, c as u64, anchor]);
        let sketcher = Sketcher::with_family(params, family)?;
        if inner_threads > 1 {
            AllSubtableSketches::build_parallel(
                table,
                r,
                c,
                sketcher,
                config.max_bytes,
                config.table_budget,
                inner_threads,
            )
        } else {
            AllSubtableSketches::build_with_budgets(
                table,
                r,
                c,
                sketcher,
                config.max_bytes,
                config.table_budget,
            )
        }
    }

    /// The sketch parameters of the pool.
    #[inline]
    pub fn params(&self) -> SketchParams {
        self.params
    }

    /// The configuration the pool was built with.
    #[inline]
    pub fn config(&self) -> PoolConfig {
        self.config
    }

    /// The canonical sizes stored in the pool.
    pub fn sizes(&self) -> Vec<(usize, usize)> {
        let mut v: Vec<_> = self.entries.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Approximate memory footprint of the stored sketch values, in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.entries
            .values()
            .map(|sets| {
                sets.iter()
                    .map(|s| s.anchor_rows() * s.anchor_cols() * self.params.k() * 8)
                    .sum::<usize>()
            })
            .sum()
    }

    /// The family tag of compound sketches with dyadic cover shape
    /// `(rows, cols)`. Compound sketches are only comparable when their
    /// covers share a shape (and come from this pool).
    pub fn compound_family(&self, shape: (usize, usize)) -> u64 {
        derive_key(
            self.params.seed(),
            &[COMPOUND_TAG, shape.0 as u64, shape.1 as u64],
        )
    }

    fn cover_of(&self, rect: Rect) -> Result<DyadicCover, TabError> {
        let cover = DyadicCover::of(rect).ok_or(TabError::InvalidParameter("empty rectangle"))?;
        if !self.entries.contains_key(&cover.shape) {
            return Err(TabError::NotInPool {
                reason: format!(
                    "rect {}x{} needs canonical size {}x{}, which is not stored",
                    rect.rows, rect.cols, cover.shape.0, cover.shape.1
                ),
            });
        }
        Ok(cover)
    }

    /// Assembles the compound sketch of `rect` in `O(k)` (Definition 4):
    /// the component-wise sum of the four anchor sketches.
    ///
    /// # Errors
    ///
    /// * [`TabError::NotInPool`] when the rect's canonical size is not
    ///   stored (outside the configured min/max or non-square in a
    ///   square-only pool);
    /// * [`TabError::InvalidParameter`] for empty or out-of-range rects.
    pub fn compound_sketch(&self, rect: Rect) -> Result<Sketch, TabError> {
        let cover = self.cover_of(rect)?;
        let sets = &self.entries[&cover.shape];
        let k = self.params.k();
        let mut acc = vec![0.0; k];
        for (set, anchor) in sets.iter().zip(cover.anchors.iter()) {
            let vals = set
                .values_at(anchor.row, anchor.col)
                .ok_or(TabError::InvalidParameter(
                    "rectangle exceeds the table the pool was built on",
                ))?;
            for (a, v) in acc.iter_mut().zip(vals) {
                *a += v;
            }
        }
        Ok(Sketch::from_values(
            self.params.p(),
            self.compound_family(cover.shape),
            acc,
        ))
    }

    /// Estimates the Lp distance between two equal-shaped rectangles from
    /// their compound sketches.
    ///
    /// The estimate carries the compound inflation: each cell of the
    /// difference is counted 1–4 times, so the value lies in
    /// `[1, 4^{1/p}]·(1±ε)` of the true distance (Theorem 5). For exactly
    /// dyadic rectangles all four anchors coincide and the inflation is
    /// exactly `4^{1/p}`, which we divide out; comparisons are consistent
    /// across same-shape queries either way.
    ///
    /// # Errors
    ///
    /// * [`TabError::SketchMismatch`] when the rectangles' shapes differ;
    /// * pool coverage errors as in [`SketchPool::compound_sketch`].
    pub fn estimate_distance(&self, a: Rect, b: Rect) -> Result<f64, TabError> {
        let mut scratch = Vec::with_capacity(self.params.k());
        self.estimate_distance_with(a, b, &mut scratch)
    }

    /// [`SketchPool::estimate_distance`] reusing caller-owned scratch
    /// space for the median estimator — the non-allocating variant for
    /// tight query loops.
    ///
    /// # Errors
    ///
    /// As [`SketchPool::estimate_distance`].
    pub fn estimate_distance_with(
        &self,
        a: Rect,
        b: Rect,
        scratch: &mut Vec<f64>,
    ) -> Result<f64, TabError> {
        if a.shape() != b.shape() {
            return Err(TabError::SketchMismatch {
                reason: "compound estimates require equal-shaped rectangles",
            });
        }
        let sa = self.compound_sketch(a)?;
        let sb = self.compound_sketch(b)?;
        let cover = self.cover_of(a)?;
        let sketcher = Sketcher::with_family(self.params, sa.family())?;
        let raw = sketcher.estimate_distance_slices(sa.values(), sb.values(), scratch);
        Ok(raw / compound_correction(&cover, self.params.p()))
    }

    /// Folds an additive table delta into every stored sketch set — all
    /// canonical sizes, all four anchor families — in place, keeping the
    /// pool consistent with the updated table without a rebuild (sketch
    /// linearity; see [`AllSubtableSketches::apply_update`]).
    ///
    /// Returns the total number of `(cell, window)` fold pairs applied
    /// across all sets.
    ///
    /// # Errors
    ///
    /// Returns [`TabError::Table`] when the update does not fit the shape
    /// of the table the pool was built on. Validation happens before any
    /// set is touched, so a rejected update leaves the pool unchanged.
    pub fn apply_update(&mut self, update: &TableUpdate) -> Result<u64, TabError> {
        let (rows, cols) = self
            .entries
            .values()
            .next()
            .expect("a built pool stores at least one canonical size")[0]
            .table_shape();
        update.validate_for(rows, cols)?;
        let mut folds = 0u64;
        for sets in self.entries.values_mut() {
            for set in sets.iter_mut() {
                folds += set.apply_update(update)?;
            }
        }
        tabsketch_obs::counter!("core.pool.delta_folds").add(folds);
        Ok(folds)
    }

    /// A [`crate::estimator::DistanceEstimator`] over `rows × cols`
    /// rectangles, backed by this pool's random families.
    ///
    /// The estimator sketches *raw row-major data* (it never touches the
    /// table the pool was built on), yet produces compound sketches
    /// directly comparable with [`SketchPool::compound_sketch`] — sketch
    /// linearity means a window's sketch depends only on its content.
    ///
    /// # Errors
    ///
    /// * [`TabError::NotInPool`] when the shape's canonical size is not
    ///   stored;
    /// * [`TabError::InvalidParameter`] for empty shapes.
    pub fn rect_estimator(
        &self,
        rows: usize,
        cols: usize,
    ) -> Result<PoolRectEstimator<'_>, TabError> {
        let cover = self.cover_of(Rect::new(0, 0, rows, cols))?;
        let mut anchors = Vec::with_capacity(4);
        for anchor in 0..4u64 {
            let family = derive_key(
                self.params.seed(),
                &[cover.shape.0 as u64, cover.shape.1 as u64, anchor],
            );
            anchors.push(Sketcher::with_family(self.params, family)?);
        }
        let anchors: Box<[Sketcher; 4]> = match anchors.try_into() {
            Ok(arr) => Box::new(arr),
            Err(_) => unreachable!("exactly four sketchers are built"),
        };
        let compound = Sketcher::with_family(self.params, self.compound_family(cover.shape))?;
        let correction = compound_correction(&cover, self.params.p());
        Ok(PoolRectEstimator {
            rows,
            cols,
            cover,
            anchors,
            compound,
            correction,
            _pool: core::marker::PhantomData,
        })
    }
}

/// The known inflation factor of a compound estimate: exactly-dyadic
/// covers stack four identical sketches (`4^{1/p}` on the distance),
/// while overlapping covers stay within Theorem 5's `[1, 4^{1/p}]` band
/// and get no correction.
fn compound_correction(cover: &DyadicCover, p: f64) -> f64 {
    if cover.is_exact() {
        if p == 2.0 {
            4.0
        } else {
            4.0f64.powf(1.0 / p)
        }
    } else {
        1.0
    }
}

/// A fixed-shape distance estimator assembled from a [`SketchPool`]'s
/// four anchor families (see [`SketchPool::rect_estimator`]).
#[derive(Clone, Debug)]
pub struct PoolRectEstimator<'a> {
    rows: usize,
    cols: usize,
    cover: DyadicCover,
    anchors: Box<[Sketcher; 4]>,
    compound: Sketcher,
    correction: f64,
    // Tie the estimator's lifetime to the pool whose families it mirrors,
    // so it cannot outlive a rebuild with different parameters.
    _pool: core::marker::PhantomData<&'a SketchPool>,
}

impl PoolRectEstimator<'_> {
    /// The rectangle shape this estimator sketches.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The compound family tag of produced sketches.
    #[inline]
    pub fn family(&self) -> u64 {
        self.compound.family()
    }

    /// Builds the compound sketch of one `rows × cols` row-major window.
    ///
    /// # Panics
    ///
    /// Panics when `data.len() != rows · cols`.
    pub fn sketch_rect(&self, data: &[f64]) -> Sketch {
        assert_eq!(
            data.len(),
            self.rows * self.cols,
            "rect estimator expects rows*cols values"
        );
        let (srows, scols) = self.cover.shape;
        let k = self.compound.k();
        let mut acc = vec![0.0; k];
        let mut window = Vec::with_capacity(srows * scols);
        for (sketcher, anchor) in self.anchors.iter().zip(self.cover.anchors.iter()) {
            window.clear();
            for r in 0..srows {
                let start = (anchor.row + r) * self.cols + anchor.col;
                window.extend_from_slice(&data[start..start + scols]);
            }
            let s = sketcher.sketch_slice(&window);
            for (a, v) in acc.iter_mut().zip(s.values()) {
                *a += v;
            }
        }
        Sketch::from_values(self.compound.p(), self.compound.family(), acc)
    }

    /// Builds the compound sketches of many `rows × cols` row-major
    /// windows, batching each anchor family's projections through
    /// [`Sketcher::sketch_batch`] (one pass over each random-row block
    /// covers every window). Bit-identical to calling
    /// [`PoolRectEstimator::sketch_rect`] per window.
    ///
    /// # Panics
    ///
    /// Panics when any window's length is not `rows · cols`.
    pub fn sketch_rect_batch(&self, objects: &[&[f64]]) -> Vec<Sketch> {
        let (srows, scols) = self.cover.shape;
        let k = self.compound.k();
        let mut acc = vec![0.0; objects.len() * k];
        let mut windows: Vec<Vec<f64>> = vec![Vec::with_capacity(srows * scols); objects.len()];
        for (sketcher, anchor) in self.anchors.iter().zip(self.cover.anchors.iter()) {
            for (window, data) in windows.iter_mut().zip(objects) {
                assert_eq!(
                    data.len(),
                    self.rows * self.cols,
                    "rect estimator expects rows*cols values"
                );
                window.clear();
                for r in 0..srows {
                    let start = (anchor.row + r) * self.cols + anchor.col;
                    window.extend_from_slice(&data[start..start + scols]);
                }
            }
            let refs: Vec<&[f64]> = windows.iter().map(|w| &w[..]).collect();
            for (o, s) in sketcher.sketch_batch(&refs).iter().enumerate() {
                for (a, v) in acc[o * k..(o + 1) * k].iter_mut().zip(s.values()) {
                    *a += v;
                }
            }
        }
        acc.chunks_exact(k)
            .map(|c| Sketch::from_values(self.compound.p(), self.compound.family(), c.to_vec()))
            .collect()
    }

    /// Estimates the Lp distance between two compound sketches of this
    /// shape, applying the same exact-cover correction as
    /// [`SketchPool::estimate_distance`].
    ///
    /// # Errors
    ///
    /// Returns [`TabError::SketchMismatch`] for sketches of a different
    /// shape, pool, or family.
    pub fn estimate(&self, a: &Sketch, b: &Sketch) -> Result<f64, TabError> {
        let mut scratch = Vec::with_capacity(self.compound.k());
        self.estimate_with(a, b, &mut scratch)
    }

    /// As [`PoolRectEstimator::estimate`], reusing caller-owned scratch —
    /// the non-allocating path for clustering and k-NN loops.
    ///
    /// # Errors
    ///
    /// Same contract as [`PoolRectEstimator::estimate`].
    pub fn estimate_with(
        &self,
        a: &Sketch,
        b: &Sketch,
        scratch: &mut Vec<f64>,
    ) -> Result<f64, TabError> {
        if a.family() != self.compound.family() || b.family() != self.compound.family() {
            return Err(TabError::SketchMismatch {
                reason: "sketch does not belong to this rect estimator's compound family",
            });
        }
        Ok(self.compound.estimate_distance_with(a, b, scratch)? / self.correction)
    }
}

impl crate::estimator::DistanceEstimator for PoolRectEstimator<'_> {
    type Sketch = Sketch;

    /// See [`PoolRectEstimator::sketch_rect`]; `data` must hold exactly
    /// `rows · cols` row-major values.
    fn sketch(&self, data: &[f64]) -> Sketch {
        self.sketch_rect(data)
    }

    fn estimate_distance(&self, a: &Sketch, b: &Sketch) -> Result<f64, TabError> {
        self.estimate(a, b)
    }

    fn sketch_batch(&self, objects: &[&[f64]]) -> Vec<Sketch> {
        self.sketch_rect_batch(objects)
    }

    fn estimate_distance_with(
        &self,
        a: &Sketch,
        b: &Sketch,
        scratch: &mut Vec<f64>,
    ) -> Result<f64, TabError> {
        self.estimate_with(a, b, scratch)
    }

    fn p(&self) -> f64 {
        self.compound.p()
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use tabsketch_table::norms::lp_distance_views;

    fn test_table() -> Table {
        Table::from_fn(32, 32, |r, c| ((r * 37 + c * 23) % 53) as f64).unwrap()
    }

    fn small_config() -> PoolConfig {
        PoolConfig {
            min_rows: 4,
            min_cols: 4,
            max_rows: 16,
            max_cols: 16,
            ..Default::default()
        }
    }

    #[test]
    fn builds_expected_sizes() {
        let pool = SketchPool::build(
            &test_table(),
            SketchParams::new(1.0, 8, 7).unwrap(),
            small_config(),
        )
        .unwrap();
        let sizes = pool.sizes();
        assert!(sizes.contains(&(4, 4)));
        assert!(sizes.contains(&(16, 8)));
        assert!(!sizes.contains(&(2, 4)), "below min");
        assert!(!sizes.contains(&(32, 32)), "above max");
        assert!(pool.memory_bytes() > 0);
    }

    #[test]
    fn square_only_prunes() {
        let cfg = PoolConfig {
            square_only: true,
            ..small_config()
        };
        let pool =
            SketchPool::build(&test_table(), SketchParams::new(1.0, 4, 7).unwrap(), cfg).unwrap();
        for (r, c) in pool.sizes() {
            assert_eq!(r, c);
        }
    }

    #[test]
    fn rejects_bad_configs() {
        let t = test_table();
        let p = SketchParams::new(1.0, 4, 7).unwrap();
        let bad_min = PoolConfig {
            min_rows: 3,
            ..Default::default()
        };
        assert!(SketchPool::build(&t, p, bad_min).is_err());
        let inverted = PoolConfig {
            min_rows: 16,
            max_rows: 8,
            ..Default::default()
        };
        assert!(SketchPool::build(&t, p, inverted).is_err());
        let no_sizes = PoolConfig {
            min_rows: 64,
            min_cols: 64,
            ..Default::default()
        };
        assert!(SketchPool::build(&t, p, no_sizes).is_err());
        let tiny = PoolConfig {
            max_bytes: 128,
            ..small_config()
        };
        assert!(matches!(
            SketchPool::build(&t, p, tiny),
            Err(TabError::MemoryBudgetExceeded { .. })
        ));
    }

    #[test]
    fn compound_sketch_requires_stored_size() {
        let pool = SketchPool::build(
            &test_table(),
            SketchParams::new(1.0, 8, 7).unwrap(),
            small_config(),
        )
        .unwrap();
        // 3x3 has dyadic floor 2x2, below min.
        assert!(matches!(
            pool.compound_sketch(Rect::new(0, 0, 3, 3)),
            Err(TabError::NotInPool { .. })
        ));
        // 20x20 floors to 16x16, stored.
        assert!(pool.compound_sketch(Rect::new(0, 0, 20, 20)).is_ok());
        // Out of table bounds.
        assert!(pool.compound_sketch(Rect::new(30, 30, 8, 8)).is_err());
    }

    #[test]
    fn dyadic_rect_estimate_matches_exact() {
        // For exactly dyadic rects the pool removes the known 4x inflation,
        // so the estimate should track the true distance.
        let t = test_table();
        let pool = SketchPool::build(&t, SketchParams::new(1.0, 400, 11).unwrap(), small_config())
            .unwrap();
        let a = Rect::new(0, 0, 8, 8);
        let b = Rect::new(13, 17, 8, 8);
        let est = pool.estimate_distance(a, b).unwrap();
        let exact = lp_distance_views(&t.view(a).unwrap(), &t.view(b).unwrap(), 1.0).unwrap();
        let rel = (est - exact).abs() / exact;
        assert!(rel < 0.25, "est={est}, exact={exact}, rel={rel}");
    }

    #[test]
    fn non_dyadic_estimate_within_theorem5_band() {
        let t = test_table();
        let pool = SketchPool::build(&t, SketchParams::new(1.0, 400, 13).unwrap(), small_config())
            .unwrap();
        let a = Rect::new(1, 1, 11, 13);
        let b = Rect::new(15, 9, 11, 13);
        let est = pool.estimate_distance(a, b).unwrap();
        let exact = lp_distance_views(&t.view(a).unwrap(), &t.view(b).unwrap(), 1.0).unwrap();
        // Theorem 5: (1-eps)*exact <= est <= 4(1+eps)*exact for p=1.
        assert!(est > 0.6 * exact, "est={est}, exact={exact}");
        assert!(est < 5.0 * exact, "est={est}, exact={exact}");
    }

    #[test]
    fn estimates_are_comparison_consistent() {
        // The compound estimator should order a near pair below a far pair.
        let t = Table::from_fn(32, 32, |r, _| if r < 16 { 1.0 } else { 100.0 }).unwrap();
        let pool =
            SketchPool::build(&t, SketchParams::new(1.0, 200, 5).unwrap(), small_config()).unwrap();
        let base = Rect::new(0, 0, 6, 6);
        let near = Rect::new(2, 8, 6, 6); // same region, similar values
        let far = Rect::new(20, 8, 6, 6); // other region, very different
        let d_near = pool.estimate_distance(base, near).unwrap();
        let d_far = pool.estimate_distance(base, far).unwrap();
        assert!(d_near < d_far, "near={d_near}, far={d_far}");
    }

    #[test]
    fn mismatched_shapes_rejected() {
        let pool = SketchPool::build(
            &test_table(),
            SketchParams::new(1.0, 8, 7).unwrap(),
            small_config(),
        )
        .unwrap();
        assert!(matches!(
            pool.estimate_distance(Rect::new(0, 0, 8, 8), Rect::new(0, 0, 8, 9)),
            Err(TabError::SketchMismatch { .. })
        ));
    }

    #[test]
    fn config_builder_matches_literal_and_validates() {
        let built = PoolConfig::builder()
            .min_rows(4)
            .min_cols(4)
            .max_rows(16)
            .max_cols(16)
            .build()
            .unwrap();
        let literal = small_config();
        assert_eq!(built.min_rows, literal.min_rows);
        assert_eq!(built.max_cols, literal.max_cols);
        assert_eq!(built.max_bytes, literal.max_bytes);
        assert!(PoolConfig::builder().min_rows(3).build().is_err());
        assert!(PoolConfig::builder()
            .min_rows(16)
            .max_rows(8)
            .build()
            .is_err());
    }

    #[test]
    fn rect_estimator_agrees_with_pool() {
        let t = test_table();
        let pool =
            SketchPool::build(&t, SketchParams::new(1.0, 32, 11).unwrap(), small_config()).unwrap();
        for &(rows, cols) in &[(8usize, 8usize), (11, 13)] {
            let est = pool.rect_estimator(rows, cols).unwrap();
            assert_eq!(est.shape(), (rows, cols));
            let a = Rect::new(1, 2, rows, cols);
            let b = Rect::new(15, 9, rows, cols);
            // Sketching the raw window data must reproduce the pool's
            // compound sketches (up to FFT round-off) ...
            let sa = est.sketch_rect(&t.view(a).unwrap().to_vec());
            let pa = pool.compound_sketch(a).unwrap();
            assert_eq!(sa.family(), pa.family());
            for (x, y) in sa.values().iter().zip(pa.values()) {
                assert!((x - y).abs() < 1e-6 * (1.0 + x.abs()), "{x} vs {y}");
            }
            // ... and the distances must match the pool's estimates.
            let sb = est.sketch_rect(&t.view(b).unwrap().to_vec());
            let d_est = est.estimate(&sa, &sb).unwrap();
            let d_pool = pool.estimate_distance(a, b).unwrap();
            assert!(
                (d_est - d_pool).abs() < 1e-6 * (1.0 + d_pool.abs()),
                "{d_est} vs {d_pool}"
            );
        }
        // Shapes outside the pool are refused up front.
        assert!(matches!(
            pool.rect_estimator(3, 3),
            Err(TabError::NotInPool { .. })
        ));
        // Foreign sketches are refused.
        let est = pool.rect_estimator(8, 8).unwrap();
        let other = pool.compound_sketch(Rect::new(0, 0, 16, 16)).unwrap();
        let own = est.sketch_rect(&t.view(Rect::new(0, 0, 8, 8)).unwrap().to_vec());
        assert!(est.estimate(&own, &other).is_err());
    }

    #[test]
    fn parallel_build_is_bit_identical_to_sequential() {
        let t = test_table();
        let params = SketchParams::new(1.0, 8, 7).unwrap();
        let seq = SketchPool::build(&t, params, small_config()).unwrap();
        for &threads in &[1usize, 3, 8] {
            let par = SketchPool::build_parallel(&t, params, small_config(), threads).unwrap();
            assert_eq!(seq.sizes(), par.sizes(), "threads={threads}");
            for sz in seq.sizes() {
                for (a, b) in seq.entries[&sz].iter().zip(par.entries[&sz].iter()) {
                    assert_eq!(
                        a.raw_values(),
                        b.raw_values(),
                        "size {sz:?}, threads={threads}"
                    );
                }
            }
        }
        assert!(SketchPool::build_parallel(&t, params, small_config(), 0).is_err());
    }

    #[test]
    fn rect_estimator_batch_matches_single() {
        let t = test_table();
        let pool =
            SketchPool::build(&t, SketchParams::new(1.0, 16, 3).unwrap(), small_config()).unwrap();
        let est = pool.rect_estimator(6, 6).unwrap();
        let tiles: Vec<Vec<f64>> = (0..5)
            .map(|i| t.view(Rect::new(i, 2 * i, 6, 6)).unwrap().to_vec())
            .collect();
        let refs: Vec<&[f64]> = tiles.iter().map(|v| &v[..]).collect();
        let batch = est.sketch_rect_batch(&refs);
        assert_eq!(batch.len(), refs.len());
        for (obj, sketch) in refs.iter().zip(&batch) {
            assert_eq!(sketch, &est.sketch_rect(obj));
        }
        // And the scratch-reusing estimate agrees with the allocating one.
        let mut scratch = Vec::new();
        let with = est
            .estimate_with(&batch[0], &batch[1], &mut scratch)
            .unwrap();
        assert_eq!(with, est.estimate(&batch[0], &batch[1]).unwrap());
    }

    #[test]
    fn compound_family_depends_on_shape() {
        let pool = SketchPool::build(
            &test_table(),
            SketchParams::new(1.0, 8, 7).unwrap(),
            small_config(),
        )
        .unwrap();
        assert_ne!(pool.compound_family((8, 8)), pool.compound_family((8, 16)));
        let s1 = pool.compound_sketch(Rect::new(0, 0, 8, 8)).unwrap();
        let s2 = pool.compound_sketch(Rect::new(0, 0, 16, 16)).unwrap();
        assert_ne!(
            s1.family(),
            s2.family(),
            "different cover shapes are incomparable"
        );
    }
}
