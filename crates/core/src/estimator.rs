//! One coherent estimator interface over every sketch backend.
//!
//! The workspace grew several ways to turn objects into small summaries
//! and summaries into approximate distances: p-stable [`Sketcher`]s (the
//! paper's contribution), the dyadic [`crate::SketchPool`] (via
//! [`crate::pool::PoolRectEstimator`]), and the DFT / Haar / sampling
//! baselines the paper compares against. [`DistanceEstimator`] is the
//! one trait they all speak, so benchmarks, conformance tests, and the
//! clustering layer can be written once and run against any backend.
//!
//! ```
//! use tabsketch_core::estimator::DistanceEstimator;
//! use tabsketch_core::{SketchParams, Sketcher};
//!
//! fn relative_error<E: DistanceEstimator>(est: &E, x: &[f64], y: &[f64], exact: f64) -> f64 {
//!     let d = est
//!         .estimate_distance(&est.sketch(x), &est.sketch(y))
//!         .unwrap();
//!     (d - exact).abs() / exact
//! }
//!
//! let params = SketchParams::builder().p(1.0).k(400).seed(7).build().unwrap();
//! let sk = Sketcher::new(params).unwrap();
//! let x = vec![1.0; 128];
//! let y = vec![4.0; 128];
//! assert!(relative_error(&sk, &x, &y, 3.0 * 128.0) < 0.25);
//! ```

use crate::baseline::{
    DftSketch, DftSketcher, HaarSketch, HaarSketcher, SampledSketch, SamplingSketcher,
};
use crate::sketch::{Sketch, Sketcher};
use crate::TabError;

/// A sketch-based approximate Lp distance backend.
///
/// Implementors compress a linearized object (vector, or row-major
/// matrix) into an opaque summary and estimate the Lp distance between
/// two objects from their summaries alone. The trait deliberately
/// mirrors the shape of the paper's pipeline: `sketch` is the
/// preprocessing step, `estimate_distance` the constant-time query.
pub trait DistanceEstimator {
    /// The summary type this backend produces.
    type Sketch;

    /// Summarizes a linearized object.
    ///
    /// Backends over fixed-shape objects (e.g. pool-backed rectangle
    /// estimators) document their expected length and panic on
    /// mismatched input, mirroring slice-indexing conventions.
    fn sketch(&self, data: &[f64]) -> Self::Sketch;

    /// Estimates the Lp distance between the objects behind two
    /// sketches.
    ///
    /// # Errors
    ///
    /// Returns [`TabError::SketchMismatch`] when the sketches are not
    /// comparable (different widths, exponents, or random families).
    fn estimate_distance(&self, a: &Self::Sketch, b: &Self::Sketch) -> Result<f64, TabError>;

    /// Summarizes many objects in one call. Backends with a batched
    /// kernel (the p-stable [`Sketcher`], pool rectangle estimators)
    /// override this to amortize each pass over their random rows across
    /// objects; the default simply maps [`DistanceEstimator::sketch`].
    /// Results are always identical to sketching each object alone.
    fn sketch_batch(&self, objects: &[&[f64]]) -> Vec<Self::Sketch> {
        objects.iter().map(|o| self.sketch(o)).collect()
    }

    /// Estimates a distance reusing caller-owned scratch space — the
    /// non-allocating path for tight loops (k-nearest-neighbour scans,
    /// clustering sweeps). The default ignores `scratch` and delegates
    /// to [`DistanceEstimator::estimate_distance`]; backends whose
    /// estimator needs per-call scratch (the median estimator's partial
    /// sort) override it to skip the per-call allocation.
    ///
    /// # Errors
    ///
    /// Returns [`TabError::SketchMismatch`] when the sketches are not
    /// comparable.
    fn estimate_distance_with(
        &self,
        a: &Self::Sketch,
        b: &Self::Sketch,
        scratch: &mut Vec<f64>,
    ) -> Result<f64, TabError> {
        let _ = scratch;
        self.estimate_distance(a, b)
    }

    /// The Lp exponent this backend estimates distances for.
    fn p(&self) -> f64;
}

impl DistanceEstimator for Sketcher {
    type Sketch = Sketch;

    fn sketch(&self, data: &[f64]) -> Sketch {
        self.sketch_slice(data)
    }

    fn estimate_distance(&self, a: &Sketch, b: &Sketch) -> Result<f64, TabError> {
        Sketcher::estimate_distance(self, a, b)
    }

    fn sketch_batch(&self, objects: &[&[f64]]) -> Vec<Sketch> {
        Sketcher::sketch_batch(self, objects)
    }

    fn estimate_distance_with(
        &self,
        a: &Sketch,
        b: &Sketch,
        scratch: &mut Vec<f64>,
    ) -> Result<f64, TabError> {
        Sketcher::estimate_distance_with(self, a, b, scratch)
    }

    fn p(&self) -> f64 {
        Sketcher::p(self)
    }
}

impl DistanceEstimator for DftSketcher {
    type Sketch = DftSketch;

    fn sketch(&self, data: &[f64]) -> DftSketch {
        DftSketcher::sketch(self, data)
    }

    fn estimate_distance(&self, a: &DftSketch, b: &DftSketch) -> Result<f64, TabError> {
        self.estimate_l2_distance(a, b)
    }

    /// Transform-coefficient truncation only bounds the L2 distance —
    /// the limitation the paper's related-work section turns on.
    fn p(&self) -> f64 {
        2.0
    }
}

impl DistanceEstimator for HaarSketcher {
    type Sketch = HaarSketch;

    fn sketch(&self, data: &[f64]) -> HaarSketch {
        HaarSketcher::sketch(self, data)
    }

    fn estimate_distance(&self, a: &HaarSketch, b: &HaarSketch) -> Result<f64, TabError> {
        self.estimate_l2_distance(a, b)
    }

    /// Orthonormal wavelet truncation, like the DFT, is an L2-only
    /// reduction.
    fn p(&self) -> f64 {
        2.0
    }
}

impl DistanceEstimator for SamplingSketcher {
    type Sketch = SampledSketch;

    fn sketch(&self, data: &[f64]) -> SampledSketch {
        SamplingSketcher::sketch(self, data)
    }

    fn estimate_distance(&self, a: &SampledSketch, b: &SampledSketch) -> Result<f64, TabError> {
        SamplingSketcher::estimate_distance(self, a, b)
    }

    fn p(&self) -> f64 {
        SamplingSketcher::p(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabsketch_table::norms::lp_distance_slices;

    fn generic_roundtrip<E: DistanceEstimator>(est: &E, x: &[f64], y: &[f64]) -> f64 {
        est.estimate_distance(&est.sketch(x), &est.sketch(y))
            .unwrap()
    }

    #[test]
    fn all_backends_answer_through_the_trait() {
        let x: Vec<f64> = (0..256).map(|i| ((i * 13) % 37) as f64).collect();
        let y: Vec<f64> = (0..256).map(|i| ((i * 7) % 41) as f64).collect();
        let exact_l2 = lp_distance_slices(&x, &y, 2.0);

        let stable = Sketcher::new(
            crate::SketchParams::builder()
                .p(2.0)
                .k(400)
                .seed(3)
                .build()
                .unwrap(),
        )
        .unwrap();
        let d = generic_roundtrip(&stable, &x, &y);
        assert!(
            (d - exact_l2).abs() / exact_l2 < 0.25,
            "stable: {d} vs {exact_l2}"
        );
        assert_eq!(DistanceEstimator::p(&stable), 2.0);

        let dft = DftSketcher::new(129).unwrap();
        let d = generic_roundtrip(&dft, &x, &y);
        assert!(
            (d - exact_l2).abs() / exact_l2 < 1e-6,
            "full DFT is exact: {d}"
        );

        let haar = HaarSketcher::new(256).unwrap();
        let d = generic_roundtrip(&haar, &x, &y);
        assert!(
            (d - exact_l2).abs() / exact_l2 < 1e-9,
            "full Haar is exact: {d}"
        );

        let samp = SamplingSketcher::new(64, 2.0, 5).unwrap();
        let d = generic_roundtrip(&samp, &x, &y);
        assert!(d > 0.0);
        assert_eq!(DistanceEstimator::p(&samp), 2.0);
    }

    #[test]
    fn trait_estimates_match_inherent_apis() {
        let x: Vec<f64> = (0..128).map(|i| (i as f64 * 0.3).sin()).collect();
        let y: Vec<f64> = (0..128).map(|i| (i as f64 * 0.3).cos()).collect();

        let sk = Sketcher::new(
            crate::SketchParams::builder()
                .p(1.0)
                .k(64)
                .seed(11)
                .build()
                .unwrap(),
        )
        .unwrap();
        let via_trait = generic_roundtrip(&sk, &x, &y);
        let via_inherent = sk
            .estimate_distance(&sk.sketch_slice(&x), &sk.sketch_slice(&y))
            .unwrap();
        assert_eq!(via_trait, via_inherent);

        let dft = DftSketcher::new(8).unwrap();
        let via_trait = generic_roundtrip(&dft, &x, &y);
        let via_inherent = dft
            .estimate_l2_distance(&dft.sketch(&x), &dft.sketch(&y))
            .unwrap();
        assert_eq!(via_trait, via_inherent);
    }
}
