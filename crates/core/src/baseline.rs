//! Baseline dimensionality-reduction schemes the paper compares against.
//!
//! The related-work section argues that transform-coefficient reductions
//! (DFT/DCT/wavelets, the GEMINI lineage of Agrawal–Faloutsos–Swami) work
//! only for L2 — "there is no equivalent result relating the L1 distance of
//! transformed sequences to that of the original sequences" — and are not
//! composable the way stable sketches are. We implement two such baselines
//! so the claim can be demonstrated experimentally (bench `baseline_dft`):
//!
//! * [`DftSketcher`] — keep the first `m` Fourier coefficients;
//! * [`SamplingSketcher`] — estimate the Lp distance from a random subset
//!   of coordinates.

use tabsketch_fft::{next_pow2, plan_for, Complex};
use tabsketch_table::norms::abs_pow;

use crate::rng::stream_rng;
use crate::TabError;

/// A truncated-spectrum sketch: the first `m` complex DFT coefficients of
/// the (zero-padded) signal, plus the padded length for normalization.
#[derive(Clone, Debug, PartialEq)]
pub struct DftSketch {
    coeffs: Vec<Complex>,
    padded_len: usize,
}

impl DftSketch {
    /// The retained coefficients.
    pub fn coeffs(&self) -> &[Complex] {
        &self.coeffs
    }
}

/// Dimensionality reduction by truncated DFT (the classical L2 technique).
#[derive(Clone, Debug)]
pub struct DftSketcher {
    m: usize,
}

impl DftSketcher {
    /// Keeps the first `m ≥ 1` coefficients.
    ///
    /// # Errors
    ///
    /// Returns [`TabError::InvalidParameter`] when `m == 0`.
    pub fn new(m: usize) -> Result<Self, TabError> {
        if m == 0 {
            return Err(TabError::InvalidParameter(
                "DFT sketch needs at least one coefficient",
            ));
        }
        Ok(Self { m })
    }

    /// Number of retained coefficients.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Sketches a linearized object.
    pub fn sketch(&self, data: &[f64]) -> DftSketch {
        let n = next_pow2(data.len().max(1));
        let plan = plan_for(n).expect("next_pow2 yields a power of two");
        let mut buf = plan.forward_real(data);
        buf.truncate(self.m.min(n));
        DftSketch {
            coeffs: buf,
            padded_len: n,
        }
    }

    /// Estimates the **L2** distance from two sketches, using Parseval's
    /// identity over the retained low frequencies. For real signals the
    /// spectrum is conjugate-symmetric, so each non-DC coefficient is
    /// counted twice. The estimate is a lower bound on the true L2
    /// distance (it ignores the truncated high-frequency energy) — which
    /// is exactly why GEMINI-style indexes admit no false dismissals at
    /// p = 2 and why nothing comparable holds at p ≠ 2.
    ///
    /// # Errors
    ///
    /// Returns [`TabError::SketchMismatch`] when the sketches have
    /// different coefficient counts or padded lengths.
    pub fn estimate_l2_distance(&self, a: &DftSketch, b: &DftSketch) -> Result<f64, TabError> {
        if a.coeffs.len() != b.coeffs.len() || a.padded_len != b.padded_len {
            return Err(TabError::SketchMismatch {
                reason: "DFT sketch shapes differ",
            });
        }
        let n = a.padded_len as f64;
        let mut energy = 0.0;
        for (i, (x, y)) in a.coeffs.iter().zip(&b.coeffs).enumerate() {
            let d = (*x - *y).norm_sqr();
            // DC (and Nyquist, if ever retained at i = n/2) appear once in
            // the spectrum; all other bins have a conjugate mirror.
            let weight = if i == 0 || (a.padded_len.is_multiple_of(2) && i == a.padded_len / 2) {
                1.0
            } else {
                2.0
            };
            energy += weight * d;
        }
        Ok((energy / n).sqrt())
    }
}

/// A truncated Haar-wavelet sketch: the `m` coarsest coefficients of the
/// orthonormal Haar decomposition, plus the padded length.
#[derive(Clone, Debug, PartialEq)]
pub struct HaarSketch {
    coeffs: Vec<f64>,
    padded_len: usize,
}

impl HaarSketch {
    /// The retained (coarsest-first) coefficients.
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }
}

/// Dimensionality reduction by truncated orthonormal Haar wavelet
/// transform — the other classical L2 reduction the paper's related work
/// names ("Discrete Cosine or Wavelet Transforms"). Subject to the same
/// limitation as the DFT: exact/Parseval only at p = 2, no guarantee for
/// other Lp, and not composable the way stable sketches are.
#[derive(Clone, Debug)]
pub struct HaarSketcher {
    m: usize,
}

impl HaarSketcher {
    /// Keeps the `m ≥ 1` coarsest coefficients.
    ///
    /// # Errors
    ///
    /// Returns [`TabError::InvalidParameter`] when `m == 0`.
    pub fn new(m: usize) -> Result<Self, TabError> {
        if m == 0 {
            return Err(TabError::InvalidParameter(
                "Haar sketch needs at least one coefficient",
            ));
        }
        Ok(Self { m })
    }

    /// Number of retained coefficients.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Full orthonormal Haar decomposition of a power-of-two-length
    /// buffer, in place. Coefficient order: position 0 is the overall
    /// scaling coefficient, `[2^j, 2^{j+1})` holds the level-`j` details
    /// (coarsest at low indices).
    pub fn transform(buf: &mut [f64]) {
        debug_assert!(buf.len().is_power_of_two());
        let inv_sqrt2 = core::f64::consts::FRAC_1_SQRT_2;
        let mut n = buf.len();
        let mut tmp = vec![0.0; n];
        while n > 1 {
            let half = n / 2;
            for i in 0..half {
                tmp[i] = (buf[2 * i] + buf[2 * i + 1]) * inv_sqrt2;
                tmp[half + i] = (buf[2 * i] - buf[2 * i + 1]) * inv_sqrt2;
            }
            buf[..n].copy_from_slice(&tmp[..n]);
            n = half;
        }
    }

    /// The inverse of [`HaarSketcher::transform`].
    pub fn inverse(buf: &mut [f64]) {
        debug_assert!(buf.len().is_power_of_two());
        let inv_sqrt2 = core::f64::consts::FRAC_1_SQRT_2;
        let mut n = 2;
        let mut tmp = vec![0.0; buf.len()];
        while n <= buf.len() {
            let half = n / 2;
            for i in 0..half {
                tmp[2 * i] = (buf[i] + buf[half + i]) * inv_sqrt2;
                tmp[2 * i + 1] = (buf[i] - buf[half + i]) * inv_sqrt2;
            }
            buf[..n].copy_from_slice(&tmp[..n]);
            n *= 2;
        }
    }

    /// Sketches a linearized object.
    pub fn sketch(&self, data: &[f64]) -> HaarSketch {
        let n = next_pow2(data.len().max(1));
        let mut buf = vec![0.0; n];
        buf[..data.len()].copy_from_slice(data);
        Self::transform(&mut buf);
        buf.truncate(self.m.min(n));
        HaarSketch {
            coeffs: buf,
            padded_len: n,
        }
    }

    /// Estimates the **L2** distance from the retained coefficients
    /// (orthonormal transform → exact Parseval on the kept subspace, a
    /// lower bound on the true L2 distance).
    ///
    /// # Errors
    ///
    /// Returns [`TabError::SketchMismatch`] when shapes differ.
    pub fn estimate_l2_distance(&self, a: &HaarSketch, b: &HaarSketch) -> Result<f64, TabError> {
        if a.coeffs.len() != b.coeffs.len() || a.padded_len != b.padded_len {
            return Err(TabError::SketchMismatch {
                reason: "Haar sketch shapes differ",
            });
        }
        let sq: f64 = a
            .coeffs
            .iter()
            .zip(&b.coeffs)
            .map(|(&x, &y)| {
                let d = x - y;
                d * d
            })
            .sum();
        Ok(sq.sqrt())
    }
}

/// A coordinate-sampling sketch: values of the object at `m` fixed random
/// coordinates (shared across all objects of the same length).
#[derive(Clone, Debug, PartialEq)]
pub struct SampledSketch {
    values: Vec<f64>,
    source_len: usize,
}

/// Estimates Lp distances from a random sample of coordinates. Unbiased
/// for `Σ|x_i − y_i|^p` in expectation, but with variance governed by the
/// coordinate distribution — heavy coordinates are easily missed, which is
/// the contrast the sketching approach removes.
#[derive(Clone, Debug)]
pub struct SamplingSketcher {
    m: usize,
    p: f64,
    seed: u64,
}

impl SamplingSketcher {
    /// Samples `m ≥ 1` coordinates for exponent `p ∈ (0, 2]`.
    ///
    /// # Errors
    ///
    /// Returns [`TabError::InvalidParameter`] when `m == 0` or
    /// [`TabError::InvalidP`] for invalid `p`.
    pub fn new(m: usize, p: f64, seed: u64) -> Result<Self, TabError> {
        if m == 0 {
            return Err(TabError::InvalidParameter("sampling sketch needs m >= 1"));
        }
        crate::stable::Alpha::new(p)?;
        Ok(Self { m, p, seed })
    }

    /// The Lp exponent estimates are computed for.
    #[inline]
    pub fn p(&self) -> f64 {
        self.p
    }

    /// The sampled coordinate indices for objects of length `len` —
    /// deterministic in `(seed, len)`, so all objects of one length share
    /// them.
    pub fn indices(&self, len: usize) -> Vec<usize> {
        use rand::Rng;
        let mut rng = stream_rng(self.seed, &[0x5A4D, len as u64]);
        (0..self.m.min(len))
            .map(|_| rng.random_range(0..len))
            .collect()
    }

    /// Sketches a linearized object.
    pub fn sketch(&self, data: &[f64]) -> SampledSketch {
        let values = self
            .indices(data.len())
            .into_iter()
            .map(|i| data[i])
            .collect();
        SampledSketch {
            values,
            source_len: data.len(),
        }
    }

    /// Estimates the Lp distance by scaling the sampled discrepancy:
    /// `(len/m · Σ_sampled |a_i − b_i|^p)^{1/p}`.
    ///
    /// # Errors
    ///
    /// Returns [`TabError::SketchMismatch`] for mismatched sample shapes.
    pub fn estimate_distance(&self, a: &SampledSketch, b: &SampledSketch) -> Result<f64, TabError> {
        if a.values.len() != b.values.len() || a.source_len != b.source_len {
            return Err(TabError::SketchMismatch {
                reason: "sampled sketch shapes differ",
            });
        }
        if a.values.is_empty() {
            return Ok(0.0);
        }
        let sum: f64 = a
            .values
            .iter()
            .zip(&b.values)
            .map(|(&x, &y)| abs_pow(x - y, self.p))
            .sum();
        let scaled = sum * a.source_len as f64 / a.values.len() as f64;
        Ok(scaled.powf(1.0 / self.p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use tabsketch_table::norms::lp_distance_slices;

    fn smooth_signal(n: usize, phase: f64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                10.0 * (2.0 * core::f64::consts::PI * (t + phase)).sin()
                    + 3.0 * (4.0 * core::f64::consts::PI * t).cos()
            })
            .collect()
    }

    #[test]
    fn dft_validation() {
        assert!(DftSketcher::new(0).is_err());
        assert!(DftSketcher::new(4).is_ok());
    }

    #[test]
    fn dft_l2_estimate_close_for_smooth_signals() {
        // Low-frequency signals: a few coefficients capture nearly all
        // energy, so the L2 estimate is tight — the classical story.
        let a = smooth_signal(256, 0.0);
        let b = smooth_signal(256, 0.1);
        let sk = DftSketcher::new(8).unwrap();
        let est = sk
            .estimate_l2_distance(&sk.sketch(&a), &sk.sketch(&b))
            .unwrap();
        let exact = lp_distance_slices(&a, &b, 2.0);
        assert!(
            est <= exact * (1.0 + 1e-9),
            "lower bound property: {est} vs {exact}"
        );
        assert!(est > 0.9 * exact, "tight for smooth data: {est} vs {exact}");
    }

    #[test]
    fn dft_full_spectrum_is_exact_l2() {
        let a = smooth_signal(64, 0.3);
        let b = smooth_signal(64, 0.7);
        let sk = DftSketcher::new(33).unwrap(); // n/2 + 1 bins of a 64-FFT
        let est = sk
            .estimate_l2_distance(&sk.sketch(&a), &sk.sketch(&b))
            .unwrap();
        let exact = lp_distance_slices(&a, &b, 2.0);
        assert!((est - exact).abs() < 1e-6 * exact, "{est} vs {exact}");
    }

    #[test]
    fn dft_underestimates_spiky_signals() {
        // A single spike spreads energy across all frequencies; truncation
        // loses most of it.
        let a = vec![0.0; 256];
        let mut b = vec![0.0; 256];
        b[137] = 100.0;
        let sk = DftSketcher::new(4).unwrap();
        let est = sk
            .estimate_l2_distance(&sk.sketch(&a), &sk.sketch(&b))
            .unwrap();
        let exact = lp_distance_slices(&a, &b, 2.0);
        assert!(est < 0.5 * exact, "spike energy lost: {est} vs {exact}");
    }

    #[test]
    fn dft_mismatch_rejected() {
        let sk4 = DftSketcher::new(4).unwrap();
        let sk8 = DftSketcher::new(8).unwrap();
        let a = sk4.sketch(&[1.0; 32]);
        let b = sk8.sketch(&[1.0; 32]);
        assert!(sk4.estimate_l2_distance(&a, &b).is_err());
        let c = sk4.sketch(&[1.0; 64]);
        assert!(
            sk4.estimate_l2_distance(&a, &c).is_err(),
            "padded lengths differ"
        );
    }

    #[test]
    fn haar_transform_roundtrip() {
        let data: Vec<f64> = (0..64).map(|i| ((i * 7) % 13) as f64 - 6.0).collect();
        let mut buf = data.clone();
        HaarSketcher::transform(&mut buf);
        HaarSketcher::inverse(&mut buf);
        for (a, b) in buf.iter().zip(&data) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
    }

    #[test]
    fn haar_is_orthonormal() {
        // Parseval: energy preserved by the full transform.
        let data: Vec<f64> = (0..32).map(|i| (i as f64 * 0.7).sin() * 5.0).collect();
        let before: f64 = data.iter().map(|v| v * v).sum();
        let mut buf = data;
        HaarSketcher::transform(&mut buf);
        let after: f64 = buf.iter().map(|v| v * v).sum();
        assert!((before - after).abs() < 1e-9 * before);
    }

    #[test]
    fn haar_constant_signal_concentrates_in_scaling_coefficient() {
        let mut buf = vec![3.0; 16];
        HaarSketcher::transform(&mut buf);
        assert!((buf[0] - 3.0 * 4.0).abs() < 1e-12, "scaling coeff = 3·√16");
        assert!(buf[1..].iter().all(|&v| v.abs() < 1e-12));
    }

    #[test]
    fn haar_full_retention_is_exact_l2() {
        let a = smooth_signal(64, 0.2);
        let b = smooth_signal(64, 0.9);
        let sk = HaarSketcher::new(64).unwrap();
        let est = sk
            .estimate_l2_distance(&sk.sketch(&a), &sk.sketch(&b))
            .unwrap();
        let exact = lp_distance_slices(&a, &b, 2.0);
        assert!((est - exact).abs() < 1e-9 * exact);
    }

    #[test]
    fn haar_truncation_lower_bounds_l2() {
        let a = smooth_signal(256, 0.0);
        let b = smooth_signal(256, 0.15);
        let sk = HaarSketcher::new(16).unwrap();
        let est = sk
            .estimate_l2_distance(&sk.sketch(&a), &sk.sketch(&b))
            .unwrap();
        let exact = lp_distance_slices(&a, &b, 2.0);
        assert!(est <= exact * (1.0 + 1e-9), "{est} vs {exact}");
        assert!(
            est > 0.5 * exact,
            "smooth signals are well captured: {est} vs {exact}"
        );
    }

    #[test]
    fn haar_misses_fine_detail() {
        // Alternating ±1 lives entirely at the finest detail level; the
        // coarse truncation sees nothing.
        let a = vec![0.0; 128];
        let b: Vec<f64> = (0..128)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let sk = HaarSketcher::new(8).unwrap();
        let est = sk
            .estimate_l2_distance(&sk.sketch(&a), &sk.sketch(&b))
            .unwrap();
        assert!(est < 1e-9, "fine detail invisible to coarse Haar: {est}");
    }

    #[test]
    fn haar_validation_and_mismatch() {
        assert!(HaarSketcher::new(0).is_err());
        let s4 = HaarSketcher::new(4).unwrap();
        let s8 = HaarSketcher::new(8).unwrap();
        let a = s4.sketch(&[1.0; 32]);
        let b = s8.sketch(&[1.0; 32]);
        assert!(s4.estimate_l2_distance(&a, &b).is_err());
        let c = s4.sketch(&[1.0; 64]);
        assert!(s4.estimate_l2_distance(&a, &c).is_err());
    }

    #[test]
    fn sampling_validation() {
        assert!(SamplingSketcher::new(0, 1.0, 0).is_err());
        assert!(SamplingSketcher::new(4, 0.0, 0).is_err());
        assert!(SamplingSketcher::new(4, 1.0, 0).is_ok());
    }

    #[test]
    fn sampling_indices_shared_by_length() {
        let sk = SamplingSketcher::new(16, 1.0, 3).unwrap();
        assert_eq!(sk.indices(100), sk.indices(100));
        assert_ne!(sk.indices(100), sk.indices(101));
        assert!(sk.indices(100).iter().all(|&i| i < 100));
    }

    #[test]
    fn sampling_estimate_unbiased_on_uniform_diffs() {
        // When all coordinate differences are equal the sample estimate is
        // exact regardless of which coordinates are drawn.
        let a = vec![0.0; 200];
        let b = vec![2.0; 200];
        let sk = SamplingSketcher::new(20, 1.0, 9).unwrap();
        let est = sk
            .estimate_distance(&sk.sketch(&a), &sk.sketch(&b))
            .unwrap();
        assert!((est - 400.0).abs() < 1e-9, "est={est}");
    }

    #[test]
    fn sampling_misses_sparse_outliers() {
        // A single huge coordinate is almost never sampled at m << n; the
        // estimate collapses. This is the failure mode stable sketches fix.
        let a = vec![0.0; 1000];
        let mut b = vec![0.0; 1000];
        b[517] = 1e6;
        let sk = SamplingSketcher::new(10, 1.0, 4).unwrap();
        let est = sk
            .estimate_distance(&sk.sketch(&a), &sk.sketch(&b))
            .unwrap();
        let exact = lp_distance_slices(&a, &b, 1.0);
        assert!(
            est < 0.01 * exact,
            "sampling misses the spike: {est} vs {exact}"
        );
    }

    #[test]
    fn sampling_reasonable_on_dense_random_data() {
        let mut rng = stream_rng(77, &[1]);
        let a: Vec<f64> = (0..2000).map(|_| rng.random_range(-1.0..1.0)).collect();
        let b: Vec<f64> = (0..2000).map(|_| rng.random_range(-1.0..1.0)).collect();
        let sk = SamplingSketcher::new(400, 1.0, 5).unwrap();
        let est = sk
            .estimate_distance(&sk.sketch(&a), &sk.sketch(&b))
            .unwrap();
        let exact = lp_distance_slices(&a, &b, 1.0);
        assert!(
            (est - exact).abs() / exact < 0.15,
            "est={est}, exact={exact}"
        );
    }
}
