//! Sketches of **all** fixed-size subtables via FFT (paper Theorem 3).
//!
//! Sketch entry `i` of the subtable anchored at `(r, c)` is the dot
//! product of the random matrix `R[i]` with the `a × b` window at
//! `(r, c)` — i.e. entry `(r, c)` of the valid-mode cross-correlation of
//! the table with `R[i]`. Computing the correlation with an FFT costs
//! `O(N log N)` per random matrix instead of `O(N · M)`, which is the
//! paper's headline preprocessing speedup.
//!
//! The naive path ([`AllSubtableSketches::build_naive`]) exists as a test
//! oracle and as the baseline for the ablation benchmark.

use std::borrow::Cow;

use tabsketch_fft::Correlator2d;
use tabsketch_table::{MemoryBudget, Rect, Table, TableUpdate};

use crate::clamp_threads;
use crate::kernels::RowBlock;
use crate::sketch::{Sketch, Sketcher};
use crate::TabError;

/// Default memory budget for sketch construction: 1 GiB.
pub const DEFAULT_MEMORY_BUDGET: usize = 1 << 30;

/// One worker's output in the parallel build: `(kernel index, correlation
/// map)` pairs, or the first error the worker hit.
type WorkerMaps = Result<Vec<(usize, Vec<f64>)>, TabError>;

/// Source of the `k` random correlation kernels during a build: borrowed
/// from the sketcher's shared immutable [`RowBlock`] when the tile fits
/// in the cache bound (the common case — workers copy nothing), streamed
/// per call otherwise.
enum KernelRows<'a> {
    Block(RowBlock),
    Streamed(&'a Sketcher, usize),
}

impl<'a> KernelRows<'a> {
    fn new(sketcher: &'a Sketcher, len: usize) -> Self {
        match sketcher.row_block(len) {
            Some(block) => KernelRows::Block(block),
            None => KernelRows::Streamed(sketcher, len),
        }
    }

    fn get(&self, i: usize) -> Cow<'_, [f64]> {
        match self {
            KernelRows::Block(block) => Cow::Borrowed(block.row(i)),
            KernelRows::Streamed(sketcher, len) => Cow::Owned(sketcher.random_row(i, *len)),
        }
    }
}

/// Sketches of every `tile_rows × tile_cols` subtable of one table,
/// stored position-major (`values[pos * k ..][..k]`) for cache-friendly
/// distance queries.
#[derive(Clone, Debug)]
pub struct AllSubtableSketches {
    sketcher: Sketcher,
    tile_rows: usize,
    tile_cols: usize,
    out_rows: usize,
    out_cols: usize,
    values: Vec<f64>,
}

impl AllSubtableSketches {
    /// Builds sketches for all subtables using the FFT path, with the
    /// default memory budget.
    ///
    /// # Errors
    ///
    /// See [`AllSubtableSketches::build_with_budget`].
    pub fn build(
        table: &Table,
        tile_rows: usize,
        tile_cols: usize,
        sketcher: Sketcher,
    ) -> Result<Self, TabError> {
        Self::build_with_budget(table, tile_rows, tile_cols, sketcher, DEFAULT_MEMORY_BUDGET)
    }

    /// Builds sketches for all subtables using the FFT path, keeping the
    /// whole table pinned (an unbounded table budget).
    ///
    /// # Errors
    ///
    /// * [`TabError::InvalidParameter`] when the tile does not fit in the
    ///   table or has a zero dimension;
    /// * [`TabError::MemoryBudgetExceeded`] when the sketch store would
    ///   exceed `max_bytes`;
    /// * FFT errors are propagated (they indicate internal misuse and
    ///   should not occur for validated inputs).
    pub fn build_with_budget(
        table: &Table,
        tile_rows: usize,
        tile_cols: usize,
        sketcher: Sketcher,
        max_bytes: usize,
    ) -> Result<Self, TabError> {
        Self::build_with_budgets(
            table,
            tile_rows,
            tile_cols,
            sketcher,
            max_bytes,
            MemoryBudget::unbounded(),
        )
    }

    /// Builds sketches for all subtables using the FFT path, pinning at
    /// most `table_budget` bytes of table rows at a time.
    ///
    /// A bounded budget splits the table into horizontal *bands*:
    /// overlapping row windows (`tile_rows − 1` rows of overlap) that are
    /// correlated independently. The band structure is a pure function of
    /// `(table shape, tile shape, table_budget)` — never of the storage
    /// backend — so `Dense` and `Spilled` tables produce bit-identical
    /// sketches at equal budgets, and an unbounded budget is a single
    /// band, bit-identical to the historical whole-table build.
    ///
    /// # Errors
    ///
    /// Same contract as [`AllSubtableSketches::build_with_budget`], plus
    /// table-layer errors ([`TabError::Table`]) from reading spilled row
    /// windows.
    pub fn build_with_budgets(
        table: &Table,
        tile_rows: usize,
        tile_cols: usize,
        sketcher: Sketcher,
        max_bytes: usize,
        table_budget: MemoryBudget,
    ) -> Result<Self, TabError> {
        Self::build_banded(
            table,
            tile_rows,
            tile_cols,
            sketcher,
            max_bytes,
            table_budget,
            None,
        )
    }

    /// As [`AllSubtableSketches::build_with_budgets`], splitting the `k`
    /// random kernels across `threads` worker threads within each band.
    /// The band spectrum is shared read-only; each worker runs its own
    /// correlations, and results are identical to the sequential build
    /// (the per-row random streams do not depend on execution order).
    ///
    /// The requested count is clamped to
    /// [`std::thread::available_parallelism`] — spawning more workers
    /// than cores only adds scheduling overhead — and a single-thread
    /// request takes the serial path outright (no scoped-thread setup).
    /// Because bands parallelize *within* each band over the kernel
    /// axis, spilled (out-of-core) tables scale under a memory budget
    /// too: every band stays within budget while its kernels fan out.
    ///
    /// # Errors
    ///
    /// Same contract as [`AllSubtableSketches::build_with_budgets`], plus
    /// [`TabError::InvalidParameter`] for `threads == 0`.
    pub fn build_parallel(
        table: &Table,
        tile_rows: usize,
        tile_cols: usize,
        sketcher: Sketcher,
        max_bytes: usize,
        table_budget: MemoryBudget,
        threads: usize,
    ) -> Result<Self, TabError> {
        if threads == 0 {
            return Err(TabError::InvalidParameter("threads must be non-zero"));
        }
        let effective = clamp_threads(threads);
        Self::build_banded(
            table,
            tile_rows,
            tile_cols,
            sketcher,
            max_bytes,
            table_budget,
            (effective > 1).then_some(effective),
        )
    }

    /// A dimensionless estimate of the work one banded build performs:
    /// the FFT round trips (`⌈k/2⌉` pair-packed transforms per band over
    /// the padded grid, `O(P log P)` each) plus the position-major
    /// scatter (`npos · k`). Used by [`crate::SketchPool`] to order
    /// work-stealing units largest-first so stragglers start early, and
    /// to decide which units deserve inner kernel parallelism.
    pub(crate) fn estimated_build_cost(
        table: &Table,
        tile_rows: usize,
        tile_cols: usize,
        k: usize,
        table_budget: MemoryBudget,
    ) -> u64 {
        let out_rows = (table.rows().saturating_sub(tile_rows)) + 1;
        let out_cols = (table.cols().saturating_sub(tile_cols)) + 1;
        let band_in = Self::band_in_rows(table, tile_rows, table_budget);
        let band_out = (band_in - tile_rows + 1).max(1);
        let bands = out_rows.div_ceil(band_out) as u64;
        let padded = (band_in.next_power_of_two() * table.cols().next_power_of_two()).max(2) as u64;
        let log2 = (u64::BITS - padded.leading_zeros()) as u64;
        let fft = bands * (k.div_ceil(2) as u64) * padded * log2;
        let scatter = (out_rows * out_cols * k) as u64;
        fft + scatter
    }

    /// Input rows each band may pin: the budget's row count, floored at
    /// one tile height (a band must fit at least one output row) and
    /// capped at the table. Depends only on shapes and the budget, never
    /// on the storage backend — the bit-identity keystone.
    fn band_in_rows(table: &Table, tile_rows: usize, table_budget: MemoryBudget) -> usize {
        match table_budget.rows_in_budget(table.cols()) {
            None => table.rows(),
            Some(budget_rows) => budget_rows.max(tile_rows).min(table.rows()),
        }
    }

    /// Shared implementation of the sequential and parallel banded
    /// builds; `threads: None` runs the kernel loop inline.
    fn build_banded(
        table: &Table,
        tile_rows: usize,
        tile_cols: usize,
        sketcher: Sketcher,
        max_bytes: usize,
        table_budget: MemoryBudget,
        threads: Option<usize>,
    ) -> Result<Self, TabError> {
        let (out_rows, out_cols) =
            Self::validate(table, tile_rows, tile_cols, sketcher.k(), max_bytes)?;
        let _span = tabsketch_obs::span("core.allsub.build");
        tabsketch_obs::counter!("core.allsub.builds").inc();
        let k = sketcher.k();
        let mut values = vec![0.0; out_rows * out_cols * k];
        // Materialize the shared row block once; workers borrow rows from
        // it instead of copying each kernel into a fresh Vec.
        let rows = KernelRows::new(&sketcher, tile_rows * tile_cols);
        // Output rows per band: a band pinning `in_rows` input rows
        // anchors `in_rows − tile_rows + 1` windows.
        let band_out = Self::band_in_rows(table, tile_rows, table_budget) - tile_rows + 1;
        let mut lo = 0;
        while lo < out_rows {
            let hi = (lo + band_out).min(out_rows);
            // Consecutive bands overlap by `tile_rows − 1` input rows so
            // every window is fully inside exactly one band.
            let window = table.row_window(lo, hi - lo + tile_rows - 1)?;
            let corr = Correlator2d::new(window.values(), window.rows(), table.cols())?;
            let band_npos = (hi - lo) * out_cols;
            let band_maps = match threads {
                None => Self::correlate_kernels(&corr, &rows, 0, k, tile_rows, tile_cols)?,
                Some(threads) => Self::correlate_kernels_parallel(
                    &corr, &rows, k, tile_rows, tile_cols, threads,
                )?,
            };
            // Scatter the band's row-major maps into the position-major
            // global layout; band position `pos` is global position
            // `lo * out_cols + pos`.
            for (i, map) in band_maps {
                debug_assert_eq!(map.len(), band_npos);
                for (pos, v) in map.into_iter().enumerate() {
                    values[(lo * out_cols + pos) * k + i] = v;
                }
            }
            lo = hi;
        }
        Ok(Self {
            sketcher,
            tile_rows,
            tile_cols,
            out_rows,
            out_cols,
            values,
        })
    }

    /// Correlates kernels `lo..hi` against one band's spectrum. Kernels
    /// are real, so two ride through each FFT round trip (packed as
    /// re + i·im) — half the transform work. `lo` must be even so the
    /// pairing aligns identically for every work split.
    fn correlate_kernels(
        corr: &Correlator2d,
        rows: &KernelRows<'_>,
        lo: usize,
        hi: usize,
        tile_rows: usize,
        tile_cols: usize,
    ) -> Result<Vec<(usize, Vec<f64>)>, TabError> {
        debug_assert!(
            lo >= hi || lo & 1 == 0,
            "non-empty kernel ranges must start even (lo={lo})"
        );
        let mut out = Vec::with_capacity(hi.saturating_sub(lo));
        let mut i = lo;
        while i + 1 < hi {
            let k1 = rows.get(i);
            let k2 = rows.get(i + 1);
            let (m1, m2) = corr.correlate_pair(&k1, &k2, tile_rows, tile_cols)?;
            out.push((i, m1));
            out.push((i + 1, m2));
            i += 2;
        }
        if i < hi {
            let kernel = rows.get(i);
            let map = corr.correlate(&kernel, tile_rows, tile_cols)?;
            out.push((i, map));
        }
        Ok(out)
    }

    /// Splits the `k` kernels across `threads` scoped workers over one
    /// band's shared spectrum. Chunks are even-sized so the pair-packing
    /// (see [`AllSubtableSketches::correlate_kernels`]) aligns identically
    /// for every thread count and the outputs stay bit-identical.
    fn correlate_kernels_parallel(
        corr: &Correlator2d,
        rows: &KernelRows<'_>,
        k: usize,
        tile_rows: usize,
        tile_cols: usize,
        threads: usize,
    ) -> Result<Vec<(usize, Vec<f64>)>, TabError> {
        let threads = threads.min(k);
        let mut chunk = k.div_ceil(threads);
        chunk += chunk & 1;
        let maps: Vec<WorkerMaps> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for t in 0..threads {
                let lo = (t * chunk).min(k);
                let hi = ((t + 1) * chunk).min(k);
                handles.push(scope.spawn(move || {
                    Self::correlate_kernels(corr, rows, lo, hi, tile_rows, tile_cols)
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });
        let mut out = Vec::with_capacity(k);
        for worker in maps {
            out.extend(worker?);
        }
        Ok(out)
    }

    /// Builds the same sketches by direct dot products — `O(k·N·M)`. Test
    /// oracle and ablation baseline.
    ///
    /// # Errors
    ///
    /// Same contract as [`AllSubtableSketches::build_with_budget`].
    pub fn build_naive(
        table: &Table,
        tile_rows: usize,
        tile_cols: usize,
        sketcher: Sketcher,
    ) -> Result<Self, TabError> {
        let (out_rows, out_cols) = Self::validate(
            table,
            tile_rows,
            tile_cols,
            sketcher.k(),
            DEFAULT_MEMORY_BUDGET,
        )?;
        let k = sketcher.k();
        let npos = out_rows * out_cols;
        let mut values = vec![0.0; npos * k];
        for r in 0..out_rows {
            for c in 0..out_cols {
                let view = table
                    .view(Rect::new(r, c, tile_rows, tile_cols))
                    .expect("window validated to fit");
                let sketch = sketcher.sketch_view(&view);
                let pos = r * out_cols + c;
                values[pos * k..(pos + 1) * k].copy_from_slice(sketch.values());
            }
        }
        Ok(Self {
            sketcher,
            tile_rows,
            tile_cols,
            out_rows,
            out_cols,
            values,
        })
    }

    /// Reassembles a store from its raw parts — the inverse of reading
    /// its accessors, used by [`crate::persist`] to reload a store that
    /// was precomputed in an earlier run.
    ///
    /// # Errors
    ///
    /// Returns [`TabError::InvalidParameter`] when the buffer length does
    /// not equal `anchor_rows · anchor_cols · k` or any dimension is
    /// zero.
    pub fn from_parts(
        sketcher: Sketcher,
        tile_rows: usize,
        tile_cols: usize,
        anchor_rows: usize,
        anchor_cols: usize,
        values: Vec<f64>,
    ) -> Result<Self, TabError> {
        if tile_rows == 0 || tile_cols == 0 || anchor_rows == 0 || anchor_cols == 0 {
            return Err(TabError::InvalidParameter(
                "store dimensions must be non-zero",
            ));
        }
        let expected = anchor_rows
            .checked_mul(anchor_cols)
            .and_then(|n| n.checked_mul(sketcher.k()))
            .ok_or(TabError::InvalidParameter("store size overflows"))?;
        if values.len() != expected {
            return Err(TabError::InvalidParameter("store buffer length mismatch"));
        }
        Ok(Self {
            sketcher,
            tile_rows,
            tile_cols,
            out_rows: anchor_rows,
            out_cols: anchor_cols,
            values,
        })
    }

    /// The flat position-major value buffer (`values[pos * k ..][..k]`).
    pub fn raw_values(&self) -> &[f64] {
        &self.values
    }

    fn validate(
        table: &Table,
        tile_rows: usize,
        tile_cols: usize,
        k: usize,
        max_bytes: usize,
    ) -> Result<(usize, usize), TabError> {
        if tile_rows == 0 || tile_cols == 0 {
            return Err(TabError::InvalidParameter(
                "tile dimensions must be non-zero",
            ));
        }
        if tile_rows > table.rows() || tile_cols > table.cols() {
            return Err(TabError::InvalidParameter("tile larger than table"));
        }
        let out_rows = table.rows() - tile_rows + 1;
        let out_cols = table.cols() - tile_cols + 1;
        let required = out_rows
            .checked_mul(out_cols)
            .and_then(|n| n.checked_mul(k))
            .and_then(|n| n.checked_mul(core::mem::size_of::<f64>()))
            .ok_or(TabError::InvalidParameter("sketch store size overflows"))?;
        if required > max_bytes {
            return Err(TabError::MemoryBudgetExceeded {
                required,
                limit: max_bytes,
            });
        }
        Ok((out_rows, out_cols))
    }

    /// The sketcher (and hence `p`, `k`, family) used for construction.
    #[inline]
    pub fn sketcher(&self) -> &Sketcher {
        &self.sketcher
    }

    /// Sketched window height.
    #[inline]
    pub fn tile_rows(&self) -> usize {
        self.tile_rows
    }

    /// Sketched window width.
    #[inline]
    pub fn tile_cols(&self) -> usize {
        self.tile_cols
    }

    /// Number of anchor rows (`table_rows − tile_rows + 1`).
    #[inline]
    pub fn anchor_rows(&self) -> usize {
        self.out_rows
    }

    /// Number of anchor columns (`table_cols − tile_cols + 1`).
    #[inline]
    pub fn anchor_cols(&self) -> usize {
        self.out_cols
    }

    /// Raw sketch values (length `k`) of the window anchored at `(row, col)`.
    ///
    /// Returns `None` when the anchor is out of range.
    pub fn values_at(&self, row: usize, col: usize) -> Option<&[f64]> {
        if row >= self.out_rows || col >= self.out_cols {
            return None;
        }
        let k = self.sketcher.k();
        let pos = row * self.out_cols + col;
        Some(&self.values[pos * k..(pos + 1) * k])
    }

    /// The sketch of the window anchored at `(row, col)` as an owned
    /// [`Sketch`] (compatible with on-demand sketches of the same family).
    ///
    /// # Errors
    ///
    /// Returns [`TabError::InvalidParameter`] for out-of-range anchors.
    pub fn sketch_at(&self, row: usize, col: usize) -> Result<Sketch, TabError> {
        let vals = self
            .values_at(row, col)
            .ok_or(TabError::InvalidParameter("anchor out of range"))?;
        Ok(Sketch::from_values(
            self.sketcher.p(),
            self.sketcher.family(),
            vals.to_vec(),
        ))
    }

    /// Estimates the Lp distance between the windows anchored at `a` and
    /// `b`, without allocating (uses `scratch`).
    ///
    /// # Errors
    ///
    /// Returns [`TabError::InvalidParameter`] for out-of-range anchors.
    pub fn estimate_distance(
        &self,
        a: (usize, usize),
        b: (usize, usize),
        scratch: &mut Vec<f64>,
    ) -> Result<f64, TabError> {
        let va = self
            .values_at(a.0, a.1)
            .ok_or(TabError::InvalidParameter("first anchor out of range"))?;
        let vb = self
            .values_at(b.0, b.1)
            .ok_or(TabError::InvalidParameter("second anchor out of range"))?;
        Ok(self.sketcher.estimate_distance_slices(va, vb, scratch))
    }

    /// `(rows, cols)` of the table this store was built on, implied by
    /// the anchor and tile counts.
    #[inline]
    pub fn table_shape(&self) -> (usize, usize) {
        (
            self.out_rows + self.tile_rows - 1,
            self.out_cols + self.tile_cols - 1,
        )
    }

    /// Folds an additive table delta into every affected window sketch in
    /// place — the turnstile maintenance path. Sketches are linear, so a
    /// cell delta `δ` at `(r, c)` shifts sketch entry `i` of every window
    /// containing the cell by `δ · R[i]` at the cell's in-window offset;
    /// no rebuild, no table access.
    ///
    /// Cost is `O(cells · k · tile_area)` worst case versus
    /// `O(N log N · k)` for a rebuild — for small updates this is orders
    /// of magnitude cheaper. Incremental folds use the *exact* kernel
    /// entries, so they are bit-identical to a naive rebuild and within
    /// FFT round-off (≤ ~1e-6 relative) of an FFT rebuild.
    ///
    /// Returns the number of `(cell, window)` fold pairs applied.
    ///
    /// # Errors
    ///
    /// Returns [`TabError::Table`] when the update does not fit the
    /// implied table shape.
    pub fn apply_update(&mut self, update: &TableUpdate) -> Result<u64, TabError> {
        let (rows, cols) = self.table_shape();
        update.validate_for(rows, cols)?;
        let k = self.sketcher.k();
        let kernel = KernelRows::new(&self.sketcher, self.tile_rows * self.tile_cols);
        let mut folds = 0u64;
        for i in 0..k {
            let row = kernel.get(i);
            let row = row.as_ref();
            for (r, c, delta) in update.cells() {
                if delta == 0.0 {
                    continue;
                }
                let ar_lo = (r + 1).saturating_sub(self.tile_rows);
                let ar_hi = r.min(self.out_rows - 1);
                let ac_lo = (c + 1).saturating_sub(self.tile_cols);
                let ac_hi = c.min(self.out_cols - 1);
                for ar in ar_lo..=ar_hi {
                    let widx_row = (r - ar) * self.tile_cols;
                    for ac in ac_lo..=ac_hi {
                        let pos = ar * self.out_cols + ac;
                        self.values[pos * k + i] += delta * row[widx_row + (c - ac)];
                    }
                }
                if i == 0 {
                    folds += ((ar_hi - ar_lo + 1) * (ac_hi - ac_lo + 1)) as u64;
                }
            }
        }
        tabsketch_obs::counter!("core.allsub.delta_folds").add(folds);
        Ok(folds)
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::sketch::SketchParams;
    use tabsketch_table::norms::lp_distance_views;

    fn test_table() -> Table {
        Table::from_fn(20, 24, |r, c| ((r * 31 + c * 17) % 97) as f64 - 48.0).unwrap()
    }

    fn sketcher(p: f64, k: usize) -> Sketcher {
        Sketcher::new(SketchParams::new(p, k, 42).unwrap()).unwrap()
    }

    #[test]
    fn fft_matches_naive_build() {
        let t = test_table();
        for &(a, b) in &[(1usize, 1usize), (3, 5), (8, 8), (20, 24)] {
            let fast = AllSubtableSketches::build(&t, a, b, sketcher(1.0, 6)).unwrap();
            let slow = AllSubtableSketches::build_naive(&t, a, b, sketcher(1.0, 6)).unwrap();
            assert_eq!(fast.anchor_rows(), slow.anchor_rows());
            for r in 0..fast.anchor_rows() {
                for c in 0..fast.anchor_cols() {
                    let vf = fast.values_at(r, c).unwrap();
                    let vs = slow.values_at(r, c).unwrap();
                    for (x, y) in vf.iter().zip(vs) {
                        assert!(
                            (x - y).abs() < 1e-6 * (1.0 + x.abs()),
                            "tile {a}x{b} at ({r},{c}): {x} vs {y}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn matches_direct_view_sketch() {
        let t = test_table();
        let sk = sketcher(0.5, 5);
        let all = AllSubtableSketches::build(&t, 4, 6, sk.clone()).unwrap();
        let view = t.view(Rect::new(7, 9, 4, 6)).unwrap();
        let direct = sk.sketch_view(&view);
        let stored = all.sketch_at(7, 9).unwrap();
        for (a, b) in stored.values().iter().zip(direct.values()) {
            assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn estimated_distances_track_exact() {
        let t = test_table();
        let sk = sketcher(1.0, 300);
        let all = AllSubtableSketches::build(&t, 6, 6, sk).unwrap();
        let mut scratch = Vec::new();
        let pairs = [((0, 0), (10, 12)), ((3, 3), (14, 0)), ((5, 9), (9, 5))];
        for &(a, b) in &pairs {
            let est = all.estimate_distance(a, b, &mut scratch).unwrap();
            let va = t.view(Rect::new(a.0, a.1, 6, 6)).unwrap();
            let vb = t.view(Rect::new(b.0, b.1, 6, 6)).unwrap();
            let exact = lp_distance_views(&va, &vb, 1.0).unwrap();
            let rel = (est - exact).abs() / exact;
            assert!(rel < 0.25, "{a:?} vs {b:?}: est={est}, exact={exact}");
        }
    }

    #[test]
    fn anchor_counts() {
        let t = test_table();
        let all = AllSubtableSketches::build(&t, 5, 7, sketcher(1.0, 2)).unwrap();
        assert_eq!(all.anchor_rows(), 20 - 5 + 1);
        assert_eq!(all.anchor_cols(), 24 - 7 + 1);
        assert!(all.values_at(16, 0).is_none());
        assert!(all.values_at(0, 18).is_none());
        assert!(all.values_at(15, 17).is_some());
    }

    #[test]
    fn parallel_build_matches_sequential() {
        let t = test_table();
        let seq = AllSubtableSketches::build(&t, 4, 6, sketcher(1.0, 9)).unwrap();
        for threads in [1usize, 2, 4, 16] {
            let par = AllSubtableSketches::build_parallel(
                &t,
                4,
                6,
                sketcher(1.0, 9),
                DEFAULT_MEMORY_BUDGET,
                MemoryBudget::unbounded(),
                threads,
            )
            .unwrap();
            for r in 0..seq.anchor_rows() {
                for c in 0..seq.anchor_cols() {
                    assert_eq!(
                        seq.values_at(r, c).unwrap(),
                        par.values_at(r, c).unwrap(),
                        "threads={threads} at ({r},{c})"
                    );
                }
            }
        }
        assert!(AllSubtableSketches::build_parallel(
            &t,
            4,
            6,
            sketcher(1.0, 9),
            DEFAULT_MEMORY_BUDGET,
            MemoryBudget::unbounded(),
            0
        )
        .is_err());
    }

    #[test]
    fn banded_build_matches_naive() {
        // A bounded table budget splits the build into bands whose FFTs
        // use different transform sizes than the whole-table build, so
        // values agree with the naive oracle to tolerance (not bit-wise
        // with the unbounded build).
        let t = test_table();
        for budget_rows in [4usize, 7, 20] {
            let budget = MemoryBudget::bytes((budget_rows * t.cols() * 8) as u64);
            let banded = AllSubtableSketches::build_with_budgets(
                &t,
                3,
                5,
                sketcher(1.0, 6),
                DEFAULT_MEMORY_BUDGET,
                budget,
            )
            .unwrap();
            let slow = AllSubtableSketches::build_naive(&t, 3, 5, sketcher(1.0, 6)).unwrap();
            for r in 0..banded.anchor_rows() {
                for c in 0..banded.anchor_cols() {
                    for (x, y) in banded
                        .values_at(r, c)
                        .unwrap()
                        .iter()
                        .zip(slow.values_at(r, c).unwrap())
                    {
                        assert!(
                            (x - y).abs() < 1e-6 * (1.0 + x.abs()),
                            "budget {budget_rows} rows at ({r},{c}): {x} vs {y}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn banded_parallel_matches_banded_sequential() {
        let t = test_table();
        let budget = MemoryBudget::bytes((6 * t.cols() * 8) as u64);
        let seq = AllSubtableSketches::build_with_budgets(
            &t,
            4,
            6,
            sketcher(1.0, 9),
            DEFAULT_MEMORY_BUDGET,
            budget,
        )
        .unwrap();
        for threads in [2usize, 5] {
            let par = AllSubtableSketches::build_parallel(
                &t,
                4,
                6,
                sketcher(1.0, 9),
                DEFAULT_MEMORY_BUDGET,
                budget,
                threads,
            )
            .unwrap();
            assert_eq!(seq.raw_values(), par.raw_values(), "threads={threads}");
        }
    }

    #[test]
    fn dense_and_spilled_builds_bit_identical() {
        let t = test_table();
        for budget_rows in [3usize, 9] {
            let budget = MemoryBudget::bytes((budget_rows * t.cols() * 8) as u64);
            let spilled = t.clone().with_budget(budget).unwrap();
            assert!(spilled.is_spilled());
            let dense_build = AllSubtableSketches::build_with_budgets(
                &t,
                3,
                4,
                sketcher(1.0, 5),
                DEFAULT_MEMORY_BUDGET,
                budget,
            )
            .unwrap();
            let spilled_build = AllSubtableSketches::build_with_budgets(
                &spilled,
                3,
                4,
                sketcher(1.0, 5),
                DEFAULT_MEMORY_BUDGET,
                budget,
            )
            .unwrap();
            assert_eq!(
                dense_build.raw_values(),
                spilled_build.raw_values(),
                "budget {budget_rows} rows"
            );
        }
    }

    #[test]
    fn banded_parallel_dense_and_spilled_builds_bit_identical() {
        // The acceptance triangle for adaptive builds: at any budget and
        // any worker count, dense and spilled tables must produce the
        // same bits through the banded *parallel* path. Calls
        // `build_banded` directly so the threaded code runs even where
        // `build_parallel` would clamp to serial (1-core hosts).
        let t = test_table();
        for budget_rows in [3usize, 9] {
            let budget = MemoryBudget::bytes((budget_rows * t.cols() * 8) as u64);
            let spilled = t.clone().with_budget(budget).unwrap();
            assert!(spilled.is_spilled());
            let seq = AllSubtableSketches::build_with_budgets(
                &t,
                3,
                4,
                sketcher(1.0, 5),
                DEFAULT_MEMORY_BUDGET,
                budget,
            )
            .unwrap();
            for threads in [2usize, 3] {
                let dense_par = AllSubtableSketches::build_banded(
                    &t,
                    3,
                    4,
                    sketcher(1.0, 5),
                    DEFAULT_MEMORY_BUDGET,
                    budget,
                    Some(threads),
                )
                .unwrap();
                let spilled_par = AllSubtableSketches::build_banded(
                    &spilled,
                    3,
                    4,
                    sketcher(1.0, 5),
                    DEFAULT_MEMORY_BUDGET,
                    budget,
                    Some(threads),
                )
                .unwrap();
                assert_eq!(
                    dense_par.raw_values(),
                    spilled_par.raw_values(),
                    "budget {budget_rows} rows, threads={threads}"
                );
                assert_eq!(
                    dense_par.raw_values(),
                    seq.raw_values(),
                    "parallel vs sequential, budget {budget_rows} rows, threads={threads}"
                );
            }
        }
    }

    #[test]
    fn clamped_parallel_build_requests_stay_bit_identical() {
        // Requesting far more workers than the host has cores must be
        // clamped (not an error) and still produce the sequential bits.
        let t = test_table();
        let seq = AllSubtableSketches::build(&t, 4, 6, sketcher(1.0, 9)).unwrap();
        let par = AllSubtableSketches::build_parallel(
            &t,
            4,
            6,
            sketcher(1.0, 9),
            DEFAULT_MEMORY_BUDGET,
            MemoryBudget::unbounded(),
            1024,
        )
        .unwrap();
        assert_eq!(seq.raw_values(), par.raw_values());
    }

    #[test]
    fn rejects_oversized_tiles_and_budget() {
        let t = test_table();
        assert!(AllSubtableSketches::build(&t, 21, 1, sketcher(1.0, 2)).is_err());
        assert!(AllSubtableSketches::build(&t, 0, 1, sketcher(1.0, 2)).is_err());
        let tiny_budget = AllSubtableSketches::build_with_budget(&t, 2, 2, sketcher(1.0, 8), 64);
        assert!(matches!(
            tiny_budget,
            Err(TabError::MemoryBudgetExceeded { .. })
        ));
    }

    #[test]
    fn sketches_compatible_with_on_demand() {
        // A sketch pulled from the store can be compared against a sketch
        // computed on demand for another tile — the paper's "sketch on
        // demand" mode relies on this.
        let t = test_table();
        let sk = sketcher(1.0, 200);
        let all = AllSubtableSketches::build(&t, 4, 4, sk.clone()).unwrap();
        let stored = all.sketch_at(2, 2).unwrap();
        let ondemand = sk.sketch_view(&t.view(Rect::new(10, 10, 4, 4)).unwrap());
        let est = sk.estimate_distance(&stored, &ondemand).unwrap();
        let exact = lp_distance_views(
            &t.view(Rect::new(2, 2, 4, 4)).unwrap(),
            &t.view(Rect::new(10, 10, 4, 4)).unwrap(),
            1.0,
        )
        .unwrap();
        assert!(
            (est - exact).abs() / exact < 0.3,
            "est={est}, exact={exact}"
        );
    }

    #[test]
    fn apply_update_folds_only_covering_windows() {
        let t = test_table();
        let mut store = AllSubtableSketches::build(&t, 4, 4, sketcher(1.0, 8)).unwrap();
        assert_eq!(store.table_shape(), (t.rows(), t.cols()));

        // A corner cell is covered by exactly one window; an interior
        // cell by tile_rows × tile_cols of them.
        let folds = store
            .apply_update(&TableUpdate::cell(0, 0, 2.5).unwrap())
            .unwrap();
        assert_eq!(folds, 1);
        let folds = store
            .apply_update(&TableUpdate::cell(10, 10, 2.5).unwrap())
            .unwrap();
        assert_eq!(folds, 16);
        // Zero deltas are skipped entirely.
        let folds = store
            .apply_update(&TableUpdate::cell(10, 10, 0.0).unwrap())
            .unwrap();
        assert_eq!(folds, 0);
    }

    #[test]
    fn incremental_update_tracks_naive_rebuild() {
        let mut t = test_table();
        let sk = sketcher(1.0, 8);
        let mut store = AllSubtableSketches::build_naive(&t, 4, 4, sk.clone()).unwrap();
        let update =
            TableUpdate::tile(Rect::new(5, 6, 2, 3), vec![3.0, -1.5, 2.0, 0.5, -4.0, 1.0]).unwrap();
        t.apply_update(&update).unwrap();
        store.apply_update(&update).unwrap();
        let rebuilt = AllSubtableSketches::build_naive(&t, 4, 4, sk).unwrap();
        for (x, y) in store.raw_values().iter().zip(rebuilt.raw_values()) {
            assert!(
                (x - y).abs() < 1e-9 * (1.0 + x.abs()),
                "incremental {x} vs naive rebuild {y}"
            );
        }
    }
}
