//! Deterministic random-stream derivation.
//!
//! Sketching correctness depends on every code path (eager FFT
//! construction, on-demand tile sketching, pools) using the **same** random
//! matrices for the same `(seed, family, sketch-index)`. We derive one
//! 64-bit key per stream with a SplitMix64-style mixer and seed a
//! [`rand::rngs::StdRng`] from it; the j-th draw of stream `(seed, family,
//! index)` is then identical everywhere.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// SplitMix64 finalizer: a high-quality 64-bit mixing function.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a stream key from a seed and a sequence of domain components.
///
/// Components are folded in one at a time through [`mix64`], so
/// `derive_key(s, &[a, b])` differs from `derive_key(s, &[b, a])` and from
/// `derive_key(s, &[a])`.
pub fn derive_key(seed: u64, components: &[u64]) -> u64 {
    let mut key = mix64(seed ^ 0xA076_1D64_78BD_642F);
    for (i, &c) in components.iter().enumerate() {
        key = mix64(key ^ c.wrapping_add(mix64(i as u64 + 1)));
    }
    key
}

/// A seeded RNG for the stream identified by `(seed, components)`.
pub fn stream_rng(seed: u64, components: &[u64]) -> StdRng {
    StdRng::seed_from_u64(derive_key(seed, components))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn mix64_changes_input() {
        assert_ne!(mix64(0), 0);
        assert_ne!(mix64(1), mix64(2));
    }

    #[test]
    fn derive_key_is_order_sensitive() {
        let s = 42;
        assert_ne!(derive_key(s, &[1, 2]), derive_key(s, &[2, 1]));
        assert_ne!(derive_key(s, &[1]), derive_key(s, &[1, 0]));
        assert_ne!(derive_key(1, &[7]), derive_key(2, &[7]));
    }

    #[test]
    fn stream_rng_is_deterministic() {
        let mut a = stream_rng(7, &[1, 2, 3]);
        let mut b = stream_rng(7, &[1, 2, 3]);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_streams_diverge() {
        let mut a = stream_rng(7, &[1, 2, 3]);
        let mut b = stream_rng(7, &[1, 2, 4]);
        let same = (0..100)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert_eq!(same, 0);
    }
}
