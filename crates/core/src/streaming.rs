//! Streaming (turnstile) sketch maintenance.
//!
//! The paper's motivating stores "accumulate massive tables over time"
//! (new readings arrive continuously; terabytes a month). Because a
//! sketch is a linear map, it can be maintained under *point updates*
//! `x[index] += delta` in `O(k)` time without ever materializing `x` —
//! the data-stream setting of Indyk's original stable-sketch paper
//! [FOCS 2000], which the ICDE paper builds on.
//!
//! [`StreamingSketch`] holds the sketch of a logical vector that starts
//! at zero; updates fold in `delta · r[i][index]` for each of the `k`
//! random rows. Two streaming sketches over the same family can be
//! merged (sketch of the sum of streams) and compared with the usual
//! estimators, and they are interchangeable with batch sketches of the
//! same data.

use crate::sketch::{Sketch, Sketcher};
use crate::TabError;

/// A sketch maintained incrementally under point updates.
///
/// ```
/// use tabsketch_core::{SketchParams, Sketcher};
/// use tabsketch_core::streaming::StreamingSketch;
///
/// let sk = Sketcher::new(SketchParams::builder().p(1.0).k(32).seed(9).build().unwrap()).unwrap();
/// let mut stream = StreamingSketch::new(sk.clone(), 100).unwrap();
/// stream.update(3, 5.0).unwrap();   // x[3] += 5
/// stream.update(42, -2.5).unwrap(); // x[42] -= 2.5
///
/// // Identical to batch-sketching the materialized vector.
/// let mut x = vec![0.0; 100];
/// x[3] = 5.0;
/// x[42] = -2.5;
/// let batch = sk.sketch_slice(&x);
/// for (a, b) in stream.sketch().values().iter().zip(batch.values()) {
///     assert!((a - b).abs() < 1e-9);
/// }
/// ```
#[derive(Clone, Debug)]
pub struct StreamingSketch {
    sketcher: Sketcher,
    dim: usize,
    values: Vec<f64>,
    updates: u64,
}

impl StreamingSketch {
    /// Starts a sketch of the zero vector of logical dimension `dim`.
    ///
    /// # Errors
    ///
    /// Returns [`TabError::InvalidParameter`] when `dim == 0`.
    pub fn new(sketcher: Sketcher, dim: usize) -> Result<Self, TabError> {
        if dim == 0 {
            return Err(TabError::InvalidParameter(
                "stream dimension must be non-zero",
            ));
        }
        let values = vec![0.0; sketcher.k()];
        Ok(Self {
            sketcher,
            dim,
            values,
            updates: 0,
        })
    }

    /// The logical vector dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of updates applied so far.
    #[inline]
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// The sketcher (family, p, k) this stream belongs to.
    #[inline]
    pub fn sketcher(&self) -> &Sketcher {
        &self.sketcher
    }

    /// Applies `x[index] += delta` in `O(k)`.
    ///
    /// # Errors
    ///
    /// Returns [`TabError::InvalidParameter`] when `index >= dim`.
    pub fn update(&mut self, index: usize, delta: f64) -> Result<(), TabError> {
        if index >= self.dim {
            return Err(TabError::InvalidParameter(
                "update index out of the stream dimension",
            ));
        }
        for (i, slot) in self.values.iter_mut().enumerate() {
            *slot += delta * self.sketcher.row_entry(i, index);
        }
        self.updates += 1;
        Ok(())
    }

    /// Applies a batch of updates.
    ///
    /// # Errors
    ///
    /// Fails on the first out-of-range index; earlier updates in the
    /// batch remain applied (updates commute, so callers can simply
    /// validate indices up front if atomicity matters).
    pub fn update_many(&mut self, updates: &[(usize, f64)]) -> Result<(), TabError> {
        for &(index, delta) in updates {
            self.update(index, delta)?;
        }
        Ok(())
    }

    /// Appends a whole new "column block" of readings: applies
    /// `x[offset + j] += block[j]` for each `j`. This is the paper's
    /// "stitch consecutive days" operation in streaming form.
    ///
    /// # Errors
    ///
    /// Returns [`TabError::InvalidParameter`] when the block exceeds the
    /// stream dimension.
    pub fn absorb_block(&mut self, offset: usize, block: &[f64]) -> Result<(), TabError> {
        if offset
            .checked_add(block.len())
            .is_none_or(|end| end > self.dim)
        {
            return Err(TabError::InvalidParameter(
                "block exceeds the stream dimension",
            ));
        }
        for (j, &delta) in block.iter().enumerate() {
            if delta != 0.0 {
                for (i, slot) in self.values.iter_mut().enumerate() {
                    *slot += delta * self.sketcher.row_entry(i, offset + j);
                }
            }
        }
        self.updates += block.len() as u64;
        Ok(())
    }

    /// Merges another stream's sketch into this one — the sketch of the
    /// sum of the two streams (e.g. per-router partial streams combined
    /// at a collector).
    ///
    /// # Errors
    ///
    /// Returns [`TabError::SketchMismatch`] for different families,
    /// widths, or dimensions.
    pub fn merge(&mut self, other: &StreamingSketch) -> Result<(), TabError> {
        if self.sketcher.family() != other.sketcher.family()
            || self.sketcher.k() != other.sketcher.k()
            || self.sketcher.p() != other.sketcher.p()
        {
            return Err(TabError::SketchMismatch {
                reason: "streams belong to different sketch families",
            });
        }
        if self.dim != other.dim {
            return Err(TabError::SketchMismatch {
                reason: "stream dimensions differ",
            });
        }
        for (a, b) in self.values.iter_mut().zip(&other.values) {
            *a += b;
        }
        self.updates += other.updates;
        Ok(())
    }

    /// A snapshot of the current sketch, comparable with batch sketches
    /// from the same sketcher.
    pub fn sketch(&self) -> Sketch {
        Sketch::from_values(
            self.sketcher.p(),
            self.sketcher.family(),
            self.values.clone(),
        )
    }

    /// Estimates the Lp distance between two streams' current states.
    ///
    /// # Errors
    ///
    /// Returns [`TabError::SketchMismatch`] for incompatible streams.
    pub fn estimate_distance(&self, other: &StreamingSketch) -> Result<f64, TabError> {
        self.sketcher
            .estimate_distance(&self.sketch(), &other.sketch())
    }

    /// Estimates the Lp norm of the stream's current state.
    pub fn estimate_norm(&self) -> f64 {
        self.sketcher.estimate_norm(&self.sketch())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::stream_rng;
    use crate::sketch::SketchParams;
    use rand::Rng;

    fn sketcher(p: f64, k: usize) -> Sketcher {
        Sketcher::new(SketchParams::builder().p(p).k(k).seed(31).build().unwrap()).unwrap()
    }

    #[test]
    fn rejects_zero_dim_and_bad_indices() {
        let sk = sketcher(1.0, 8);
        assert!(StreamingSketch::new(sk.clone(), 0).is_err());
        let mut s = StreamingSketch::new(sk, 10).unwrap();
        assert!(s.update(10, 1.0).is_err());
        assert!(s.update(9, 1.0).is_ok());
        assert!(s.absorb_block(8, &[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn matches_batch_sketch_exactly() {
        let sk = sketcher(0.5, 16);
        let dim = 200;
        let mut stream = StreamingSketch::new(sk.clone(), dim).unwrap();
        let mut x = vec![0.0; dim];
        let mut rng = stream_rng(77, &[1]);
        for _ in 0..500 {
            let idx = rng.random_range(0..dim);
            let delta: f64 = rng.random_range(-10.0..10.0);
            x[idx] += delta;
            stream.update(idx, delta).unwrap();
        }
        let batch = sk.sketch_slice(&x);
        for (a, b) in stream.sketch().values().iter().zip(batch.values()) {
            assert!((a - b).abs() < 1e-7 * (1.0 + a.abs()), "{a} vs {b}");
        }
        assert_eq!(stream.updates(), 500);
    }

    #[test]
    fn absorb_block_equals_point_updates() {
        let sk = sketcher(1.0, 8);
        let mut a = StreamingSketch::new(sk.clone(), 50).unwrap();
        let mut b = StreamingSketch::new(sk, 50).unwrap();
        let block = [1.5, -2.0, 0.0, 4.0];
        a.absorb_block(10, &block).unwrap();
        for (j, &v) in block.iter().enumerate() {
            b.update(10 + j, v).unwrap();
        }
        for (x, y) in a.sketch().values().iter().zip(b.sketch().values()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn merge_is_sum_of_streams() {
        let sk = sketcher(1.0, 8);
        let mut a = StreamingSketch::new(sk.clone(), 20).unwrap();
        let mut b = StreamingSketch::new(sk.clone(), 20).unwrap();
        a.update(1, 3.0).unwrap();
        b.update(1, 4.0).unwrap();
        b.update(7, -2.0).unwrap();
        a.merge(&b).unwrap();
        let mut x = vec![0.0; 20];
        x[1] = 7.0;
        x[7] = -2.0;
        let batch = sk.sketch_slice(&x);
        for (p, q) in a.sketch().values().iter().zip(batch.values()) {
            assert!((p - q).abs() < 1e-9 * (1.0 + p.abs()));
        }
    }

    #[test]
    fn merge_rejects_mismatches() {
        let sk = sketcher(1.0, 8);
        let mut a = StreamingSketch::new(sk.clone(), 20).unwrap();
        let b = StreamingSketch::new(sk.clone(), 21).unwrap();
        assert!(a.merge(&b).is_err());
        let other_family = Sketcher::with_family(
            SketchParams::builder()
                .p(1.0)
                .k(8)
                .seed(31)
                .build()
                .unwrap(),
            5,
        )
        .unwrap();
        let c = StreamingSketch::new(other_family, 20).unwrap();
        assert!(a.merge(&c).is_err());
    }

    #[test]
    fn distance_between_streams_tracks_exact() {
        let sk = sketcher(1.0, 400);
        let dim = 256;
        let mut sa = StreamingSketch::new(sk.clone(), dim).unwrap();
        let mut sb = StreamingSketch::new(sk, dim).unwrap();
        let mut xa = vec![0.0; dim];
        let mut xb = vec![0.0; dim];
        let mut rng = stream_rng(5, &[9]);
        for _ in 0..1000 {
            let i = rng.random_range(0..dim);
            let d: f64 = rng.random_range(-5.0..5.0);
            xa[i] += d;
            sa.update(i, d).unwrap();
            let j = rng.random_range(0..dim);
            let e: f64 = rng.random_range(-5.0..5.0);
            xb[j] += e;
            sb.update(j, e).unwrap();
        }
        let exact: f64 = xa.iter().zip(&xb).map(|(a, b)| (a - b).abs()).sum();
        let est = sa.estimate_distance(&sb).unwrap();
        assert!(
            (est - exact).abs() / exact < 0.25,
            "est {est}, exact {exact}"
        );
    }

    #[test]
    fn deletions_cancel_insertions() {
        let sk = sketcher(1.0, 16);
        let mut s = StreamingSketch::new(sk, 10).unwrap();
        s.update(4, 9.0).unwrap();
        s.update(4, -9.0).unwrap();
        assert!(s.sketch().values().iter().all(|&v| v.abs() < 1e-12));
        assert!(s.estimate_norm() < 1e-9);
    }
}
