//! Corpus-wide sketching: `manysketch` over a [`Collection`].
//!
//! [`CollectionSketcher`] drives sketch builds across every member of a
//! manifest-backed [`Collection`] with work-stealing at the **(table ×
//! unit)** grain: each member contributes two independent units — its
//! all-subtable sketch *store* (written to the member's `TSS2` store
//! path) and its whole-table *signature* sketch (a single `TSK2` file
//! the streaming `pairwise` pass later compares). A big member's store
//! build no longer serializes the corpus: idle workers steal the next
//! unit off a shared schedule ordered by estimated cost (table file
//! size), the same discipline as [`crate::pool::SketchPool`].
//!
//! Failures degrade, they don't abort: a member whose table is missing
//! or whose build fails is recorded in the report (and counted in
//! `collection.members_degraded`) while the rest of the corpus
//! completes. All members share the collection's one
//! [`MemoryBudget`](tabsketch_table::MemoryBudget) —
//! each build loads under the collection's per-member slice, and outer
//! parallelism is clamped to the collection's LRU window so resident
//! bytes stay bounded.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use tabsketch_table::Collection;

use crate::allsub::AllSubtableSketches;
use crate::persist;
use crate::sketch::Sketcher;
use crate::streaming::StreamingSketch;
use crate::TabError;

/// Default cap on bytes of sketch-store payload per member, matching
/// [`crate::allsub`]'s default.
pub const DEFAULT_MAX_STORE_BYTES: usize = crate::allsub::DEFAULT_MEMORY_BUDGET;

/// What `manysketch` produced for one member.
#[derive(Clone, Debug)]
pub struct MemberSketchReport {
    /// Member name from the manifest.
    pub name: String,
    /// Where the member's all-subtable sketch store was written.
    pub store_path: PathBuf,
    /// Where the member's whole-table signature sketch was written.
    pub signature_path: PathBuf,
    /// `Some(reason)` when the member degraded (its table failed to
    /// load or a build failed); `None` on success.
    pub error: Option<String>,
}

/// The outcome of a corpus sketch run, in manifest order.
#[derive(Clone, Debug)]
pub struct CollectionSketchReport {
    /// One report per manifest member, in manifest order.
    pub members: Vec<MemberSketchReport>,
}

impl CollectionSketchReport {
    /// The members that degraded, in manifest order.
    pub fn degraded(&self) -> impl Iterator<Item = &MemberSketchReport> {
        self.members.iter().filter(|m| m.error.is_some())
    }

    /// How many members completed cleanly.
    pub fn succeeded(&self) -> usize {
        self.members.iter().filter(|m| m.error.is_none()).count()
    }
}

/// One schedulable piece of work: a member's store or signature build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum UnitKind {
    Store,
    Signature,
}

/// Outcome of one scheduled (member × unit) work item.
type UnitOutcome = (usize, UnitKind, Result<(), TabError>);

/// Sketches every member of a [`Collection`]: per-member `TSS2` sketch
/// stores plus per-member `TSK2` signature sketches, in parallel.
#[derive(Clone, Debug)]
pub struct CollectionSketcher {
    sketcher: Sketcher,
    tile_rows: usize,
    tile_cols: usize,
    max_store_bytes: usize,
}

impl CollectionSketcher {
    /// Builds a collection sketcher for `tile_rows × tile_cols` tiles.
    /// Every member is sketched by the *same* `sketcher` (same `p`, `k`,
    /// seed, family), which is what makes sketches comparable across
    /// members.
    ///
    /// # Errors
    ///
    /// [`TabError::InvalidParameter`] for a zero tile dimension.
    pub fn new(sketcher: Sketcher, tile_rows: usize, tile_cols: usize) -> Result<Self, TabError> {
        if tile_rows == 0 || tile_cols == 0 {
            return Err(TabError::InvalidParameter(
                "tile dimensions must be non-zero",
            ));
        }
        Ok(CollectionSketcher {
            sketcher,
            tile_rows,
            tile_cols,
            max_store_bytes: DEFAULT_MAX_STORE_BYTES,
        })
    }

    /// Overrides the per-member cap on sketch-store payload bytes.
    pub fn with_max_store_bytes(mut self, max_store_bytes: usize) -> Self {
        self.max_store_bytes = max_store_bytes;
        self
    }

    /// The sketcher every member is sketched with.
    pub fn sketcher(&self) -> &Sketcher {
        &self.sketcher
    }

    /// Tile shape `(rows, cols)` for member sketch stores.
    pub fn tile_shape(&self) -> (usize, usize) {
        (self.tile_rows, self.tile_cols)
    }

    /// Sketches every member of `collection` using up to `threads`
    /// workers (clamped to the machine and the collection's LRU window),
    /// writing each member's store and signature to the paths its
    /// manifest entry names (or derives). A failed member degrades — it
    /// is reported with its error and counted in
    /// `collection.members_degraded` — without aborting the run.
    ///
    /// # Errors
    ///
    /// [`TabError::InvalidParameter`] when `threads` is zero. Per-member
    /// failures never surface here; they live in the report.
    pub fn sketch_collection(
        &self,
        collection: &Collection,
        threads: usize,
    ) -> Result<CollectionSketchReport, TabError> {
        if threads == 0 {
            return Err(TabError::InvalidParameter("threads must be non-zero"));
        }
        let n = collection.len();
        // Flatten to (member, unit) grain and order by estimated cost
        // (table file size — cheap, and crucially it does not force every
        // member open up front). Store builds touch every cell `k` times;
        // signatures once. Weight stores ahead of signatures of equal
        // size so the longest poles start first.
        let mut schedule: Vec<(usize, UnitKind, u64)> = Vec::with_capacity(2 * n);
        for (m, entry) in collection.manifest().entries().iter().enumerate() {
            let size = std::fs::metadata(&entry.table_path)
                .map(|md| md.len())
                .unwrap_or(0);
            schedule.push((m, UnitKind::Store, size.saturating_mul(2)));
            schedule.push((m, UnitKind::Signature, size));
        }
        schedule
            .sort_by_key(|&(m, kind, cost)| (std::cmp::Reverse(cost), m, kind != UnitKind::Store));

        let effective = crate::clamp_threads(threads);
        let outer = effective
            .min(schedule.len().max(1))
            .min(collection.max_open())
            .max(1);
        let inner = (effective / outer).max(1);

        let mut slots: Vec<Option<UnitOutcome>> = Vec::with_capacity(schedule.len());
        if outer == 1 {
            for &(m, kind, _) in &schedule {
                slots.push(Some((m, kind, self.run_unit(collection, m, kind, inner))));
            }
        } else {
            slots.resize_with(schedule.len(), || None);
            let next = AtomicUsize::new(0);
            let slot_cells: Vec<std::sync::Mutex<Option<UnitOutcome>>> = (0..schedule.len())
                .map(|_| std::sync::Mutex::new(None))
                .collect();
            std::thread::scope(|scope| {
                for _ in 0..outer {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&(m, kind, _)) = schedule.get(i) else {
                            break;
                        };
                        let result = self.run_unit(collection, m, kind, inner);
                        *slot_cells[i].lock().expect("unit slot lock") = Some((m, kind, result));
                    });
                }
            });
            for (slot, cell) in slots.iter_mut().zip(slot_cells) {
                *slot = cell.into_inner().expect("unit slot lock");
            }
        }

        // Assemble the report in manifest order; a member degrades on its
        // first failing unit (store errors outrank signature errors so
        // the reported reason is the structurally bigger failure).
        let mut errors: Vec<(Option<String>, Option<String>)> = vec![(None, None); n];
        for slot in slots.into_iter().flatten() {
            let (m, kind, result) = slot;
            if let Err(e) = result {
                match kind {
                    UnitKind::Store => errors[m].0 = Some(e.to_string()),
                    UnitKind::Signature => errors[m].1 = Some(e.to_string()),
                }
            }
        }
        let members = collection
            .manifest()
            .entries()
            .iter()
            .zip(errors)
            .map(|(entry, (store_err, sig_err))| {
                let error = store_err.or(sig_err);
                if error.is_some() {
                    tabsketch_obs::counter!("collection.members_degraded").inc();
                }
                MemberSketchReport {
                    name: entry.name.clone(),
                    store_path: entry.store_path_or_default(),
                    signature_path: entry.signature_path(),
                    error,
                }
            })
            .collect();
        Ok(CollectionSketchReport { members })
    }

    /// Runs one (member × unit) work item end to end: open the member
    /// under the collection's shared budget, build, persist.
    fn run_unit(
        &self,
        collection: &Collection,
        m: usize,
        kind: UnitKind,
        inner: usize,
    ) -> Result<(), TabError> {
        let entry = &collection.manifest().entries()[m];
        let table = collection.member(m)?;
        match kind {
            UnitKind::Store => {
                let store = AllSubtableSketches::build_parallel(
                    &table,
                    self.tile_rows,
                    self.tile_cols,
                    self.sketcher.clone(),
                    self.max_store_bytes,
                    collection.member_budget(),
                    inner,
                )?;
                persist::save_store(&store, entry.store_path_or_default())
            }
            UnitKind::Signature => {
                let cols = table.cols();
                let dim = table
                    .rows()
                    .checked_mul(cols)
                    .ok_or(TabError::InvalidParameter("table size overflows"))?;
                let mut stream = StreamingSketch::new(self.sketcher.clone(), dim)?;
                for guard in table.row_chunks(collection.member_budget()) {
                    let guard = guard?;
                    stream.absorb_block(guard.start_row() * cols, guard.values())?;
                }
                persist::save_sketch(&stream.sketch(), entry.signature_path())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sketch::SketchParams;
    use std::path::Path;
    use tabsketch_table::{io as table_io, Manifest, MemoryBudget, Table};

    fn sketcher() -> Sketcher {
        Sketcher::new(
            SketchParams::builder()
                .p(1.0)
                .k(8)
                .seed(42)
                .build()
                .unwrap(),
        )
        .unwrap()
    }

    fn corpus(tag: &str, n: usize) -> (PathBuf, Collection) {
        let dir = std::env::temp_dir().join(format!(
            "tabsketch-csk-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let mut lines = String::new();
        for i in 0..n {
            let t = Table::from_fn(8, 8, |r, c| ((i * 31 + r * 8 + c) % 13) as f64).unwrap();
            let path = dir.join(format!("m{i}.tsb"));
            table_io::save_binary(&t, &path).unwrap();
            lines.push_str(&format!("m{i}={}\n", path.display()));
        }
        let manifest = Manifest::parse_str(&lines, Path::new("")).unwrap();
        let coll = Collection::open(manifest, MemoryBudget::unbounded());
        (dir, coll)
    }

    #[test]
    fn sketches_every_member_and_matches_direct_builds() {
        let (dir, coll) = corpus("all", 5);
        let cs = CollectionSketcher::new(sketcher(), 4, 4).unwrap();
        for threads in [1, 4] {
            let report = cs.sketch_collection(&coll, threads).unwrap();
            assert_eq!(report.members.len(), 5);
            assert_eq!(report.succeeded(), 5);
            for (m, member) in report.members.iter().enumerate() {
                assert!(member.error.is_none());
                let store = persist::load_store(&member.store_path).unwrap();
                let table = coll.member(m).unwrap();
                let direct = AllSubtableSketches::build(&table, 4, 4, sketcher()).unwrap();
                assert_eq!(store.raw_values(), direct.raw_values());
                let sig = persist::load_sketch(&member.signature_path).unwrap();
                let flat: Vec<f64> = (0..8)
                    .flat_map(|r| (0..8).map(move |c| (r, c)))
                    .map(|(r, c)| table.get(r, c))
                    .collect();
                let direct_sig = sketcher().sketch_slice(&flat);
                for (a, b) in sig.values().iter().zip(direct_sig.values()) {
                    assert!((a - b).abs() < 1e-9 * (1.0 + a.abs()), "{a} vs {b}");
                }
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_member_degrades_without_aborting() {
        let (dir, _) = corpus("deg", 3);
        let mut lines = String::new();
        lines.push_str(&format!("m0={}\n", dir.join("m0.tsb").display()));
        lines.push_str(&format!("gone={}\n", dir.join("missing.tsb").display()));
        lines.push_str(&format!("m2={}\n", dir.join("m2.tsb").display()));
        let coll = Collection::open(
            Manifest::parse_str(&lines, Path::new("")).unwrap(),
            MemoryBudget::unbounded(),
        );
        let cs = CollectionSketcher::new(sketcher(), 4, 4).unwrap();
        let report = cs.sketch_collection(&coll, 2).unwrap();
        assert_eq!(report.succeeded(), 2);
        let degraded: Vec<_> = report.degraded().collect();
        assert_eq!(degraded.len(), 1);
        assert_eq!(degraded[0].name, "gone");
        assert!(coll.manifest().entry("m2").is_some());
        assert!(persist::load_store(report.members[2].store_path.as_path()).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn budgeted_run_matches_unbounded() {
        let (dir, unbounded) = corpus("bud", 4);
        let cs = CollectionSketcher::new(sketcher(), 4, 4).unwrap();
        let free = cs.sketch_collection(&unbounded, 2).unwrap();
        let mut baseline = Vec::new();
        for m in &free.members {
            baseline.push(
                persist::load_store(&m.store_path)
                    .unwrap()
                    .raw_values()
                    .to_vec(),
            );
        }
        // Tight shared budget: members spill; results agree up to the
        // usual banded-accumulation float drift.
        let tight = Collection::open(
            unbounded.manifest().clone(),
            MemoryBudget::bytes(2 * 8 * 8 * 8),
        );
        let report = cs.sketch_collection(&tight, 4).unwrap();
        assert_eq!(report.succeeded(), 4);
        for (m, member) in report.members.iter().enumerate() {
            let store = persist::load_store(&member.store_path).unwrap();
            for (a, b) in store.raw_values().iter().zip(&baseline[m]) {
                assert!(
                    (a - b).abs() <= 1e-9 * (1.0 + b.abs()),
                    "member {m}: {a} vs {b}"
                );
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert!(CollectionSketcher::new(sketcher(), 0, 4).is_err());
        assert!(CollectionSketcher::new(sketcher(), 4, 0).is_err());
        let (dir, coll) = corpus("param", 1);
        let cs = CollectionSketcher::new(sketcher(), 4, 4).unwrap();
        assert!(matches!(
            cs.sketch_collection(&coll, 0),
            Err(TabError::InvalidParameter(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
