//! Workspace-wide resource limits.
//!
//! Every component that reads untrusted bytes — the persistence layer
//! decoding sketch files, the serve protocol decoding network frames —
//! bounds how much it will allocate before trusting a declared length.
//! Those bounds used to be scattered (`serve::protocol::MAX_FRAME`,
//! `persist::DEFAULT_MAX_BYTES`, …); this module is the single home so
//! the caps stay consistent and discoverable. Consumers re-export the
//! constants under their historical names.

/// Largest wire frame the serve protocol accepts or emits, in bytes
/// (length prefix excluded). 1 MiB comfortably holds the largest legal
/// batch while bounding per-connection buffering.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// Largest number of pairs in one serve batch-distance request.
pub const MAX_BATCH: usize = 1 << 14;

/// Longest store name accepted on the wire, in bytes.
pub const MAX_NAME_BYTES: usize = 256;

/// Default cap on the decoded payload a persisted sketch/store file may
/// declare (1 GiB of `f64` body). Guards against a corrupt or hostile
/// header causing an enormous allocation; the `*_with_limit` readers in
/// [`crate::persist`] accept an explicit override for larger stores.
pub const MAX_PERSIST_BYTES: u64 = 1 << 30;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limits_are_ordered_sensibly() {
        // A maximal name and a maximal batch must both fit in one frame.
        const { assert!(MAX_NAME_BYTES < MAX_FRAME_BYTES) };
        // Batch entries are two rects of 4 u32s: 32 bytes, plus headroom.
        const { assert!(MAX_BATCH * 64 <= MAX_FRAME_BYTES) };
        // Persist cap dwarfs any single frame.
        const { assert!(MAX_PERSIST_BYTES > MAX_FRAME_BYTES as u64) };
    }
}
