//! Fast medians for the sketch distance estimator.
//!
//! The estimator computes `median(|s(x)_i − s(y)_i|)` over the `k` sketch
//! entries for every distance query, so this is the hottest scalar kernel
//! in the library. We use `select_nth_unstable_by` (expected O(k)) on a
//! reusable scratch buffer to avoid sorting and allocation.

/// Median of a slice's values, averaging the two central order statistics
/// for even lengths. The slice is reordered in place.
///
/// Returns `None` for an empty slice. NaNs order after +∞ via
/// [`f64::total_cmp`], so a NaN in the input can only surface in the output
/// when more than half the entries are NaN.
pub fn median_in_place(xs: &mut [f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let n = xs.len();
    let mid = n / 2;
    let (_, upper, _) = xs.select_nth_unstable_by(mid, |a, b| a.total_cmp(b));
    let upper = *upper;
    if n % 2 == 1 {
        Some(upper)
    } else {
        // The lower median is the max of the left partition.
        let lower = xs[..mid].iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Some(0.5 * (lower + upper))
    }
}

/// `median(|a_i − b_i|)` over two equal-length slices, writing the absolute
/// differences into `scratch` (cleared and reused; grown as needed).
///
/// Returns `None` when the slices are empty or lengths differ.
pub fn median_abs_diff(a: &[f64], b: &[f64], scratch: &mut Vec<f64>) -> Option<f64> {
    if a.len() != b.len() || a.is_empty() {
        return None;
    }
    scratch.clear();
    scratch.extend(a.iter().zip(b).map(|(&x, &y)| (x - y).abs()));
    median_in_place(scratch)
}

/// `median(|x_i|)` of a slice, using `scratch` for workspace.
pub fn median_abs(xs: &[f64], scratch: &mut Vec<f64>) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    scratch.clear();
    scratch.extend(xs.iter().map(|x| x.abs()));
    median_in_place(scratch)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn odd_length_median() {
        let mut xs = vec![5.0, 1.0, 3.0];
        assert_eq!(median_in_place(&mut xs), Some(3.0));
    }

    #[test]
    fn even_length_averages_middle_pair() {
        let mut xs = vec![4.0, 1.0, 3.0, 2.0];
        assert_eq!(median_in_place(&mut xs), Some(2.5));
    }

    #[test]
    fn single_element() {
        let mut xs = vec![7.0];
        assert_eq!(median_in_place(&mut xs), Some(7.0));
    }

    #[test]
    fn empty_is_none() {
        assert_eq!(median_in_place(&mut []), None);
        let mut scratch = Vec::new();
        assert_eq!(median_abs_diff(&[], &[], &mut scratch), None);
    }

    #[test]
    fn matches_sort_based_median() {
        // Cross-check against the naive definition over many sizes.
        let mut state = 123_456_789u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64) / (u32::MAX as f64) * 100.0 - 50.0
        };
        for n in 1..50 {
            let xs: Vec<f64> = (0..n).map(|_| next()).collect();
            let mut sorted = xs.clone();
            sorted.sort_by(f64::total_cmp);
            let expected = if n % 2 == 1 {
                sorted[n / 2]
            } else {
                0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
            };
            let mut buf = xs.clone();
            let got = median_in_place(&mut buf).unwrap();
            assert!((got - expected).abs() < 1e-12, "n={n}: {got} vs {expected}");
        }
    }

    #[test]
    fn abs_diff_median() {
        let a = [1.0, 5.0, 10.0];
        let b = [2.0, 2.0, 2.0];
        let mut scratch = Vec::new();
        // |diffs| = [1, 3, 8] -> median 3.
        assert_eq!(median_abs_diff(&a, &b, &mut scratch), Some(3.0));
    }

    #[test]
    fn abs_diff_length_mismatch_is_none() {
        let mut scratch = Vec::new();
        assert_eq!(median_abs_diff(&[1.0], &[1.0, 2.0], &mut scratch), None);
    }

    #[test]
    fn scratch_is_reusable() {
        let mut scratch = Vec::new();
        assert_eq!(
            median_abs_diff(&[0.0, 0.0], &[1.0, 3.0], &mut scratch),
            Some(2.0)
        );
        assert_eq!(median_abs_diff(&[0.0], &[5.0], &mut scratch), Some(5.0));
        assert_eq!(median_abs(&[-4.0, 2.0, 1.0], &mut scratch), Some(2.0));
    }

    #[test]
    fn median_with_duplicates() {
        let mut xs = vec![2.0, 2.0, 2.0, 2.0];
        assert_eq!(median_in_place(&mut xs), Some(2.0));
        let mut ys = vec![1.0, 2.0, 2.0, 9.0];
        assert_eq!(median_in_place(&mut ys), Some(2.0));
    }

    #[test]
    fn median_with_negative_zero() {
        let mut xs = vec![-0.0, 0.0, 0.0];
        assert_eq!(median_in_place(&mut xs), Some(0.0));
    }
}
