//! Binary persistence for sketches and sketch stores.
//!
//! The paper's headline workflow is "precompute sketches once, answer
//! distance queries forever after"; that only pays off across sessions if
//! the sketch store can be saved and reloaded. The format (`TSKS`) is a
//! simple little-endian layout: sketch parameters first (so the loader
//! can reconstruct the *same* deterministic random family), then the flat
//! value buffer. A reloaded store is interchangeable with a freshly built
//! one — including comparisons against newly computed on-demand sketches,
//! because the random rows are derived from the persisted seed.

use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::allsub::AllSubtableSketches;
use crate::sketch::{EstimatorKind, Sketch, SketchParams, Sketcher};
use crate::TabError;

const STORE_MAGIC: &[u8; 4] = b"TSKS";
const SKETCH_MAGIC: &[u8; 4] = b"TSK1";

fn write_u64<W: Write>(w: &mut W, v: u64) -> Result<(), TabError> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, TabError> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

fn write_f64<W: Write>(w: &mut W, v: f64) -> Result<(), TabError> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}

fn read_f64<R: Read>(r: &mut R) -> Result<f64, TabError> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(f64::from_le_bytes(buf))
}

fn write_magic<W: Write>(w: &mut W, magic: &[u8; 4]) -> Result<(), TabError> {
    w.write_all(magic)?;
    Ok(())
}

fn expect_magic<R: Read>(r: &mut R, magic: &[u8; 4], what: &str) -> Result<(), TabError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    if &buf != magic {
        return Err(TabError::Io(format!("bad magic: not a {what}")));
    }
    Ok(())
}

fn write_sketcher<W: Write>(w: &mut W, sketcher: &Sketcher) -> Result<(), TabError> {
    write_f64(w, sketcher.p())?;
    write_u64(w, sketcher.k() as u64)?;
    write_u64(w, sketcher.params().seed())?;
    write_u64(w, sketcher.family())?;
    let estimator = match sketcher.estimator() {
        EstimatorKind::Median => 0u64,
        EstimatorKind::L2 => 1u64,
    };
    write_u64(w, estimator)
}

fn read_sketcher<R: Read>(r: &mut R) -> Result<Sketcher, TabError> {
    let p = read_f64(r)?;
    let k = read_u64(r)? as usize;
    let seed = read_u64(r)?;
    let family = read_u64(r)?;
    let estimator = match read_u64(r)? {
        0 => EstimatorKind::Median,
        1 => EstimatorKind::L2,
        other => return Err(TabError::Io(format!("unknown estimator tag {other}"))),
    };
    let params = SketchParams::new(p, k, seed)?;
    Sketcher::with_family(params, family)?.with_estimator(estimator)
}

/// Writes one [`Sketch`] to `writer`.
///
/// # Errors
///
/// Propagates I/O failures as [`TabError::Io`].
pub fn write_sketch<W: Write>(sketch: &Sketch, writer: W) -> Result<(), TabError> {
    let mut w = BufWriter::new(writer);
    write_magic(&mut w, SKETCH_MAGIC)?;
    write_f64(&mut w, sketch.p())?;
    write_u64(&mut w, sketch.family())?;
    write_u64(&mut w, sketch.k() as u64)?;
    for &v in sketch.values() {
        write_f64(&mut w, v)?;
    }
    w.flush()?;
    Ok(())
}

/// Reads one [`Sketch`] from `reader`.
///
/// # Errors
///
/// Returns [`TabError::Io`] on bad magic, truncation, or I/O failure.
pub fn read_sketch<R: Read>(reader: R) -> Result<Sketch, TabError> {
    let mut r = BufReader::new(reader);
    expect_magic(&mut r, SKETCH_MAGIC, "tabsketch sketch")?;
    let p = read_f64(&mut r)?;
    let family = read_u64(&mut r)?;
    let k = read_u64(&mut r)? as usize;
    let mut values = Vec::with_capacity(k);
    for _ in 0..k {
        values.push(read_f64(&mut r)?);
    }
    Ok(Sketch::from_values(p, family, values))
}

/// Writes an [`AllSubtableSketches`] store to `writer`.
///
/// # Errors
///
/// Propagates I/O failures as [`TabError::Io`].
pub fn write_store<W: Write>(store: &AllSubtableSketches, writer: W) -> Result<(), TabError> {
    let mut w = BufWriter::new(writer);
    write_magic(&mut w, STORE_MAGIC)?;
    write_sketcher(&mut w, store.sketcher())?;
    write_u64(&mut w, store.tile_rows() as u64)?;
    write_u64(&mut w, store.tile_cols() as u64)?;
    write_u64(&mut w, store.anchor_rows() as u64)?;
    write_u64(&mut w, store.anchor_cols() as u64)?;
    for &v in store.raw_values() {
        write_f64(&mut w, v)?;
    }
    w.flush()?;
    Ok(())
}

/// Reads an [`AllSubtableSketches`] store from `reader`. The
/// reconstructed store uses the persisted seed/family, so it is
/// interchangeable with the original — including against sketches
/// computed fresh by the same parameters.
///
/// # Errors
///
/// Returns [`TabError::Io`] on bad magic, truncation, or I/O failure,
/// and parameter validation errors for corrupted headers.
pub fn read_store<R: Read>(reader: R) -> Result<AllSubtableSketches, TabError> {
    let mut r = BufReader::new(reader);
    expect_magic(&mut r, STORE_MAGIC, "tabsketch store")?;
    let sketcher = read_sketcher(&mut r)?;
    let tile_rows = read_u64(&mut r)? as usize;
    let tile_cols = read_u64(&mut r)? as usize;
    let anchor_rows = read_u64(&mut r)? as usize;
    let anchor_cols = read_u64(&mut r)? as usize;
    let count = anchor_rows
        .checked_mul(anchor_cols)
        .and_then(|n| n.checked_mul(sketcher.k()))
        .ok_or_else(|| TabError::Io("store dimensions overflow".into()))?;
    let mut values = Vec::with_capacity(count);
    for _ in 0..count {
        values.push(read_f64(&mut r)?);
    }
    AllSubtableSketches::from_parts(
        sketcher,
        tile_rows,
        tile_cols,
        anchor_rows,
        anchor_cols,
        values,
    )
}

/// Saves a store to `path`.
///
/// # Errors
///
/// Propagates I/O failures as [`TabError::Io`].
pub fn save_store<P: AsRef<Path>>(store: &AllSubtableSketches, path: P) -> Result<(), TabError> {
    write_store(store, std::fs::File::create(path)?)
}

/// Loads a store from `path`.
///
/// # Errors
///
/// Propagates I/O and format failures as [`TabError::Io`].
pub fn load_store<P: AsRef<Path>>(path: P) -> Result<AllSubtableSketches, TabError> {
    read_store(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabsketch_table::{Rect, Table};

    fn sample_store() -> AllSubtableSketches {
        let table = Table::from_fn(12, 14, |r, c| ((r * 5 + c * 3) % 17) as f64).unwrap();
        let sketcher = Sketcher::new(SketchParams::new(1.0, 6, 99).unwrap()).unwrap();
        AllSubtableSketches::build(&table, 4, 5, sketcher).unwrap()
    }

    #[test]
    fn sketch_round_trip() {
        let sk = Sketcher::new(SketchParams::new(0.5, 8, 1).unwrap()).unwrap();
        let s = sk.sketch_slice(&[1.0, -2.0, 3.5, 0.0, 9.0]);
        let mut buf = Vec::new();
        write_sketch(&s, &mut buf).unwrap();
        let back = read_sketch(buf.as_slice()).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn sketch_rejects_bad_magic_and_truncation() {
        assert!(read_sketch(&b"NOPE"[..]).is_err());
        let sk = Sketcher::new(SketchParams::new(1.0, 4, 2).unwrap()).unwrap();
        let mut buf = Vec::new();
        write_sketch(&sk.sketch_slice(&[1.0, 2.0]), &mut buf).unwrap();
        buf.truncate(buf.len() - 5);
        assert!(read_sketch(buf.as_slice()).is_err());
    }

    #[test]
    fn store_round_trip_preserves_everything() {
        let store = sample_store();
        let mut buf = Vec::new();
        write_store(&store, &mut buf).unwrap();
        let back = read_store(buf.as_slice()).unwrap();
        assert_eq!(back.tile_rows(), store.tile_rows());
        assert_eq!(back.tile_cols(), store.tile_cols());
        assert_eq!(back.anchor_rows(), store.anchor_rows());
        assert_eq!(back.anchor_cols(), store.anchor_cols());
        assert_eq!(back.raw_values(), store.raw_values());
        assert_eq!(back.sketcher().k(), store.sketcher().k());
        assert_eq!(back.sketcher().family(), store.sketcher().family());
        assert_eq!(back.sketcher().estimator(), store.sketcher().estimator());
    }

    #[test]
    fn reloaded_store_interoperates_with_fresh_sketches() {
        // A sketch computed on demand after reload must be comparable with
        // stored sketches: the random family is derived from the persisted
        // seed, so estimates agree exactly.
        let table = Table::from_fn(12, 14, |r, c| ((r * 5 + c * 3) % 17) as f64).unwrap();
        let store = sample_store();
        let mut buf = Vec::new();
        write_store(&store, &mut buf).unwrap();
        let back = read_store(buf.as_slice()).unwrap();

        let fresh = back
            .sketcher()
            .sketch_view(&table.view(Rect::new(2, 3, 4, 5)).unwrap());
        let stored = back.sketch_at(2, 3).unwrap();
        for (a, b) in stored.values().iter().zip(fresh.values()) {
            assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn store_rejects_corruption() {
        let store = sample_store();
        let mut buf = Vec::new();
        write_store(&store, &mut buf).unwrap();
        assert!(read_store(&buf[..buf.len() - 3]).is_err(), "truncated");
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(read_store(bad.as_slice()).is_err(), "bad magic");
        // Corrupt the estimator tag (offset: magic 4 + p 8 + k 8 + seed 8
        // + family 8 = 36).
        let mut bad_tag = buf;
        bad_tag[36] = 9;
        assert!(
            read_store(bad_tag.as_slice()).is_err(),
            "unknown estimator tag"
        );
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join(format!("tabsketch-persist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.tsks");
        let store = sample_store();
        save_store(&store, &path).unwrap();
        let back = load_store(&path).unwrap();
        assert_eq!(back.raw_values(), store.raw_values());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn from_parts_validation() {
        let sk = Sketcher::new(SketchParams::new(1.0, 4, 1).unwrap()).unwrap();
        assert!(AllSubtableSketches::from_parts(sk.clone(), 2, 2, 3, 3, vec![0.0; 36]).is_ok());
        assert!(AllSubtableSketches::from_parts(sk.clone(), 2, 2, 3, 3, vec![0.0; 35]).is_err());
        assert!(AllSubtableSketches::from_parts(sk, 0, 2, 3, 3, vec![]).is_err());
    }
}
