//! Binary persistence for sketches and sketch stores.
//!
//! The paper's headline workflow is "precompute sketches once, answer
//! distance queries forever after"; that only pays off across sessions if
//! the sketch store can be saved and reloaded. A reloaded store is
//! interchangeable with a freshly built one — including comparisons
//! against newly computed on-demand sketches, because the random rows are
//! derived from the persisted seed.
//!
//! # Formats
//!
//! All integers are little-endian. The current (v2) formats carry a
//! version field and per-section CRC32 checksums so damage is *detected*
//! at load time instead of silently skewing distance estimates:
//!
//! Store v2 (`TSS2`):
//!
//! | field         | type      | notes                                      |
//! |---------------|-----------|--------------------------------------------|
//! | magic         | `[u8; 4]` | `"TSS2"`                                   |
//! | version       | `u32`     | `2`                                        |
//! | p             | `f64`     | Lp exponent                                |
//! | k             | `u64`     | sketch width                               |
//! | seed          | `u64`     | random-family seed                         |
//! | family        | `u64`     | family discriminator                       |
//! | estimator     | `u64`     | `0` = median, `1` = L2                     |
//! | tile_rows/cols | `u64`×2  | tile shape                                 |
//! | anchor_rows/cols | `u64`×2 | anchor grid shape                         |
//! | header CRC32  | `u32`     | over all preceding bytes                   |
//! | values        | `[f64]`   | `anchor_rows * anchor_cols * k` values     |
//! | body CRC32    | `u32`     | over the raw value bytes                   |
//!
//! Sketch v2 (`TSK2`) is the same idea with header `p, family, k` and a
//! `k`-value body. Loading validates magic, version, declared sizes
//! (against a byte limit, *before* allocating) and both checksums;
//! failures surface as [`TabError::Corrupt`]. The legacy unchecksummed
//! v1 layouts (`TSKS` stores, `TSK1` sketches) are still read for
//! backward compatibility; writes always produce v2, and [`save_store`]
//! replaces the destination atomically (temp file + fsync + rename) so an
//! interrupted save never destroys the previous store.

use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use tabsketch_table::atomic::write_atomic;
use tabsketch_table::checksum::Crc32;

use crate::allsub::AllSubtableSketches;
use crate::sketch::{EstimatorKind, Sketch, SketchParams, Sketcher};
use crate::TabError;

const STORE_MAGIC_V1: &[u8; 4] = b"TSKS";
const STORE_MAGIC_V2: &[u8; 4] = b"TSS2";
const SKETCH_MAGIC_V1: &[u8; 4] = b"TSK1";
const SKETCH_MAGIC_V2: &[u8; 4] = b"TSK2";
const FORMAT_VERSION: u32 = 2;
/// Buffer size for chunked body reads/writes.
const IO_CHUNK_BYTES: usize = 64 * 1024;

/// Default cap on the decoded size a sketch file may declare. Guards
/// against a corrupt or hostile header causing an enormous allocation;
/// raise it via [`read_store_with_limit`] / [`read_sketch_with_limit`]
/// for genuinely larger stores. The value lives in [`crate::limits`],
/// shared with the other byte-bounded decoders in the workspace.
pub const DEFAULT_MAX_BYTES: u64 = crate::limits::MAX_PERSIST_BYTES;

fn read_exact_in(r: &mut impl Read, buf: &mut [u8], section: &'static str) -> Result<(), TabError> {
    r.read_exact(buf)
        .map_err(|e| TabError::from_read_error(section, e))
}

fn read_u32_in(r: &mut impl Read, section: &'static str) -> Result<u32, TabError> {
    let mut buf = [0u8; 4];
    read_exact_in(r, &mut buf, section)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64_in(r: &mut impl Read, section: &'static str) -> Result<u64, TabError> {
    let mut buf = [0u8; 8];
    read_exact_in(r, &mut buf, section)?;
    Ok(u64::from_le_bytes(buf))
}

fn read_f64_in(r: &mut impl Read, section: &'static str) -> Result<f64, TabError> {
    let mut buf = [0u8; 8];
    read_exact_in(r, &mut buf, section)?;
    Ok(f64::from_le_bytes(buf))
}

/// Validates that `count` 8-byte elements fit under `max_bytes` and
/// returns `count` as a `usize`.
fn checked_f64_count(count: u64, max_bytes: u64, section: &'static str) -> Result<usize, TabError> {
    let bytes = count
        .checked_mul(8)
        .ok_or_else(|| TabError::corrupt(section, "declared element count overflows"))?;
    if bytes > max_bytes {
        return Err(TabError::corrupt(
            section,
            format!("declared payload of {bytes} bytes exceeds the {max_bytes}-byte limit"),
        ));
    }
    usize::try_from(count)
        .map_err(|_| TabError::corrupt(section, "declared element count exceeds address space"))
}

/// Reads `count` little-endian `f64` values in bounded chunks, feeding the
/// raw bytes through `crc` when one is supplied.
fn read_f64_body(
    r: &mut impl Read,
    count: usize,
    mut crc: Option<&mut Crc32>,
) -> Result<Vec<f64>, TabError> {
    let mut data = Vec::with_capacity(count);
    let mut remaining = count;
    let mut buf = vec![0u8; IO_CHUNK_BYTES.min(count.max(1) * 8)];
    while remaining > 0 {
        let take = remaining.min(buf.len() / 8);
        let chunk = &mut buf[..take * 8];
        read_exact_in(r, chunk, "body")?;
        if let Some(crc) = crc.as_deref_mut() {
            crc.update(chunk);
        }
        for bytes in chunk.chunks_exact(8) {
            data.push(f64::from_le_bytes(bytes.try_into().expect("8-byte chunk")));
        }
        remaining -= take;
    }
    Ok(data)
}

/// Writes `values` as little-endian `f64` in bounded chunks, feeding the
/// raw bytes through `crc`.
fn write_f64_body(w: &mut impl Write, values: &[f64], crc: &mut Crc32) -> Result<(), TabError> {
    let mut buf = Vec::with_capacity(IO_CHUNK_BYTES.min(values.len().max(1) * 8));
    for chunk in values.chunks(IO_CHUNK_BYTES / 8) {
        buf.clear();
        for &v in chunk {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        crc.update(&buf);
        w.write_all(&buf)?;
    }
    Ok(())
}

fn estimator_tag(estimator: EstimatorKind) -> u64 {
    match estimator {
        EstimatorKind::Median => 0,
        EstimatorKind::L2 => 1,
    }
}

fn estimator_from_tag(tag: u64) -> Result<EstimatorKind, TabError> {
    match tag {
        0 => Ok(EstimatorKind::Median),
        1 => Ok(EstimatorKind::L2),
        other => Err(TabError::corrupt(
            "header",
            format!("unknown estimator tag {other}"),
        )),
    }
}

/// Reconstructs a [`Sketcher`] from persisted header fields, mapping
/// parameter-validation failures (which can only come from a damaged
/// header) to [`TabError::Corrupt`].
fn sketcher_from_fields(
    p: f64,
    k: u64,
    seed: u64,
    family: u64,
    estimator_tag: u64,
) -> Result<Sketcher, TabError> {
    let estimator = estimator_from_tag(estimator_tag)?;
    let k = usize::try_from(k)
        .map_err(|_| TabError::corrupt("header", "sketch width k exceeds address space"))?;
    let params = SketchParams::builder()
        .p(p)
        .k(k)
        .seed(seed)
        .build()
        .map_err(|e| TabError::corrupt("header", format!("invalid sketch parameters: {e}")))?;
    Sketcher::with_family(params, family)
        .and_then(|s| s.with_estimator(estimator))
        .map_err(|e| TabError::corrupt("header", format!("invalid sketch parameters: {e}")))
}

/// Writes one [`Sketch`] to `writer` in the `TSK2` format.
///
/// # Errors
///
/// Propagates I/O failures as [`TabError::Io`].
pub fn write_sketch<W: Write>(sketch: &Sketch, writer: W) -> Result<(), TabError> {
    let mut w = BufWriter::new(writer);
    let mut header = Vec::with_capacity(4 + 4 + 8 + 8 + 8);
    header.extend_from_slice(SKETCH_MAGIC_V2);
    header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    header.extend_from_slice(&sketch.p().to_le_bytes());
    header.extend_from_slice(&sketch.family().to_le_bytes());
    header.extend_from_slice(&(sketch.k() as u64).to_le_bytes());
    let mut crc = Crc32::new();
    crc.update(&header);
    w.write_all(&header)?;
    w.write_all(&crc.finish().to_le_bytes())?;

    let mut body_crc = Crc32::new();
    write_f64_body(&mut w, sketch.values(), &mut body_crc)?;
    w.write_all(&body_crc.finish().to_le_bytes())?;
    w.flush()?;
    Ok(())
}

/// Reads one [`Sketch`] from `reader` (`TSK2`, or the legacy `TSK1`
/// layout), refusing files that declare more than [`DEFAULT_MAX_BYTES`]
/// of payload.
///
/// # Errors
///
/// Returns [`TabError::Corrupt`] on bad magic/version, checksum mismatch,
/// truncation, or an implausibly large declared size, and
/// [`TabError::Io`] on genuine I/O failures.
pub fn read_sketch<R: Read>(reader: R) -> Result<Sketch, TabError> {
    read_sketch_with_limit(reader, DEFAULT_MAX_BYTES)
}

/// [`read_sketch`] with an explicit cap (in bytes of `f64` payload) on
/// the size the header may declare.
///
/// # Errors
///
/// See [`read_sketch`].
pub fn read_sketch_with_limit<R: Read>(reader: R, max_bytes: u64) -> Result<Sketch, TabError> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 4];
    read_exact_in(&mut r, &mut magic, "magic")?;
    match &magic {
        m if m == SKETCH_MAGIC_V1 => {
            let p = read_f64_in(&mut r, "header")?;
            let family = read_u64_in(&mut r, "header")?;
            let k = checked_f64_count(read_u64_in(&mut r, "header")?, max_bytes, "header")?;
            let values = read_f64_body(&mut r, k, None)?;
            Ok(Sketch::from_values(p, family, values))
        }
        m if m == SKETCH_MAGIC_V2 => {
            let mut header = [0u8; 4 + 8 + 8 + 8];
            read_exact_in(&mut r, &mut header, "header")?;
            let mut crc = Crc32::new();
            crc.update(SKETCH_MAGIC_V2);
            crc.update(&header);
            let stored_crc = read_u32_in(&mut r, "header")?;
            if stored_crc != crc.finish() {
                return Err(TabError::corrupt("header", "header checksum mismatch"));
            }
            let version = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
            if version != FORMAT_VERSION {
                return Err(TabError::corrupt(
                    "header",
                    format!("unsupported format version {version} (expected {FORMAT_VERSION})"),
                ));
            }
            let p = f64::from_le_bytes(header[4..12].try_into().expect("8 bytes"));
            let family = u64::from_le_bytes(header[12..20].try_into().expect("8 bytes"));
            let k = u64::from_le_bytes(header[20..28].try_into().expect("8 bytes"));
            let k = checked_f64_count(k, max_bytes, "header")?;
            let mut body_crc = Crc32::new();
            let values = read_f64_body(&mut r, k, Some(&mut body_crc))?;
            let stored_body_crc = read_u32_in(&mut r, "body")?;
            if stored_body_crc != body_crc.finish() {
                return Err(TabError::corrupt("body", "body checksum mismatch"));
            }
            Ok(Sketch::from_values(p, family, values))
        }
        _ => Err(TabError::corrupt(
            "magic",
            "not a tabsketch sketch file (bad magic)",
        )),
    }
}

/// Writes an [`AllSubtableSketches`] store to `writer` in the `TSS2`
/// format.
///
/// # Errors
///
/// Propagates I/O failures as [`TabError::Io`].
pub fn write_store<W: Write>(store: &AllSubtableSketches, writer: W) -> Result<(), TabError> {
    let mut w = BufWriter::new(writer);
    let sk = store.sketcher();
    let mut header = Vec::with_capacity(4 + 4 + 8 * 9);
    header.extend_from_slice(STORE_MAGIC_V2);
    header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    header.extend_from_slice(&sk.p().to_le_bytes());
    header.extend_from_slice(&(sk.k() as u64).to_le_bytes());
    header.extend_from_slice(&sk.params().seed().to_le_bytes());
    header.extend_from_slice(&sk.family().to_le_bytes());
    header.extend_from_slice(&estimator_tag(sk.estimator()).to_le_bytes());
    header.extend_from_slice(&(store.tile_rows() as u64).to_le_bytes());
    header.extend_from_slice(&(store.tile_cols() as u64).to_le_bytes());
    header.extend_from_slice(&(store.anchor_rows() as u64).to_le_bytes());
    header.extend_from_slice(&(store.anchor_cols() as u64).to_le_bytes());
    let mut crc = Crc32::new();
    crc.update(&header);
    w.write_all(&header)?;
    w.write_all(&crc.finish().to_le_bytes())?;

    let mut body_crc = Crc32::new();
    write_f64_body(&mut w, store.raw_values(), &mut body_crc)?;
    w.write_all(&body_crc.finish().to_le_bytes())?;
    w.flush()?;
    Ok(())
}

/// Reads an [`AllSubtableSketches`] store from `reader` (`TSS2`, or the
/// legacy `TSKS` layout), refusing files that declare more than
/// [`DEFAULT_MAX_BYTES`] of payload. The reconstructed store uses the
/// persisted seed/family, so it is interchangeable with the original —
/// including against sketches computed fresh by the same parameters.
///
/// # Errors
///
/// Returns [`TabError::Corrupt`] on bad magic/version, checksum mismatch,
/// truncation, an unknown estimator tag, or an implausibly large declared
/// size, and [`TabError::Io`] on genuine I/O failures.
pub fn read_store<R: Read>(reader: R) -> Result<AllSubtableSketches, TabError> {
    read_store_with_limit(reader, DEFAULT_MAX_BYTES)
}

/// [`read_store`] with an explicit cap (in bytes of `f64` payload) on the
/// size the header may declare.
///
/// # Errors
///
/// See [`read_store`].
pub fn read_store_with_limit<R: Read>(
    reader: R,
    max_bytes: u64,
) -> Result<AllSubtableSketches, TabError> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 4];
    read_exact_in(&mut r, &mut magic, "magic")?;
    match &magic {
        m if m == STORE_MAGIC_V1 => read_store_v1_after_magic(&mut r, max_bytes),
        m if m == STORE_MAGIC_V2 => read_store_v2_after_magic(&mut r, max_bytes),
        _ => Err(TabError::corrupt(
            "magic",
            "not a tabsketch store file (bad magic)",
        )),
    }
}

fn read_store_v1_after_magic(
    r: &mut impl Read,
    max_bytes: u64,
) -> Result<AllSubtableSketches, TabError> {
    let p = read_f64_in(r, "header")?;
    let k = read_u64_in(r, "header")?;
    let seed = read_u64_in(r, "header")?;
    let family = read_u64_in(r, "header")?;
    let tag = read_u64_in(r, "header")?;
    let sketcher = sketcher_from_fields(p, k, seed, family, tag)?;
    let tile_rows = read_u64_in(r, "header")?;
    let tile_cols = read_u64_in(r, "header")?;
    let anchor_rows = read_u64_in(r, "header")?;
    let anchor_cols = read_u64_in(r, "header")?;
    let count = anchor_rows
        .checked_mul(anchor_cols)
        .and_then(|n| n.checked_mul(k))
        .ok_or_else(|| TabError::corrupt("header", "store dimensions overflow"))?;
    let count = checked_f64_count(count, max_bytes, "header")?;
    let values = read_f64_body(r, count, None)?;
    AllSubtableSketches::from_parts(
        sketcher,
        tile_rows as usize,
        tile_cols as usize,
        anchor_rows as usize,
        anchor_cols as usize,
        values,
    )
    .map_err(|e| TabError::corrupt("header", format!("inconsistent store geometry: {e}")))
}

fn read_store_v2_after_magic(
    r: &mut impl Read,
    max_bytes: u64,
) -> Result<AllSubtableSketches, TabError> {
    let mut header = [0u8; 4 + 8 * 9];
    read_exact_in(r, &mut header, "header")?;
    let mut crc = Crc32::new();
    crc.update(STORE_MAGIC_V2);
    crc.update(&header);
    let stored_crc = read_u32_in(r, "header")?;
    if stored_crc != crc.finish() {
        return Err(TabError::corrupt("header", "header checksum mismatch"));
    }
    let version = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(TabError::corrupt(
            "header",
            format!("unsupported format version {version} (expected {FORMAT_VERSION})"),
        ));
    }
    let mut at = 4;
    let mut next_u64 = || {
        let v = u64::from_le_bytes(header[at..at + 8].try_into().expect("8 bytes"));
        at += 8;
        v
    };
    let p = f64::from_bits(next_u64());
    let k = next_u64();
    let seed = next_u64();
    let family = next_u64();
    let tag = next_u64();
    let tile_rows = next_u64();
    let tile_cols = next_u64();
    let anchor_rows = next_u64();
    let anchor_cols = next_u64();
    let sketcher = sketcher_from_fields(p, k, seed, family, tag)?;
    let count = anchor_rows
        .checked_mul(anchor_cols)
        .and_then(|n| n.checked_mul(k))
        .ok_or_else(|| TabError::corrupt("header", "store dimensions overflow"))?;
    let count = checked_f64_count(count, max_bytes, "header")?;
    let mut body_crc = Crc32::new();
    let values = read_f64_body(r, count, Some(&mut body_crc))?;
    let stored_body_crc = read_u32_in(r, "body")?;
    if stored_body_crc != body_crc.finish() {
        return Err(TabError::corrupt("body", "body checksum mismatch"));
    }
    AllSubtableSketches::from_parts(
        sketcher,
        tile_rows as usize,
        tile_cols as usize,
        anchor_rows as usize,
        anchor_cols as usize,
        values,
    )
    .map_err(|e| TabError::corrupt("header", format!("inconsistent store geometry: {e}")))
}

/// Saves a store to `path`, atomically replacing any existing file: the
/// bytes are written to a temporary sibling, fsynced, and renamed into
/// place, so an interrupted save leaves the previous store intact.
///
/// # Errors
///
/// Propagates I/O failures as [`TabError::Io`].
pub fn save_store<P: AsRef<Path>>(store: &AllSubtableSketches, path: P) -> Result<(), TabError> {
    write_atomic(path.as_ref(), |f| write_store(store, f))
}

/// Loads a store from `path`.
///
/// # Errors
///
/// Propagates I/O and format failures; see [`read_store`].
pub fn load_store<P: AsRef<Path>>(path: P) -> Result<AllSubtableSketches, TabError> {
    read_store(std::fs::File::open(path)?)
}

/// Saves a single [`Sketch`] to `path` in the `TSK2` format, atomically
/// replacing any existing file (the same temp-file + fsync + rename
/// discipline as [`save_store`]). Collection runs use this for each
/// member's whole-table signature sketch.
///
/// # Errors
///
/// Propagates I/O failures as [`TabError::Io`].
pub fn save_sketch<P: AsRef<Path>>(sketch: &Sketch, path: P) -> Result<(), TabError> {
    write_atomic(path.as_ref(), |f| write_sketch(sketch, f))
}

/// Loads a single [`Sketch`] from `path`.
///
/// # Errors
///
/// Propagates I/O and format failures; see [`read_sketch`].
pub fn load_sketch<P: AsRef<Path>>(path: P) -> Result<Sketch, TabError> {
    read_sketch(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabsketch_table::{Rect, Table};

    fn sample_store() -> AllSubtableSketches {
        let table = Table::from_fn(12, 14, |r, c| ((r * 5 + c * 3) % 17) as f64).unwrap();
        let sketcher = Sketcher::new(
            SketchParams::builder()
                .p(1.0)
                .k(6)
                .seed(99)
                .build()
                .unwrap(),
        )
        .unwrap();
        AllSubtableSketches::build(&table, 4, 5, sketcher).unwrap()
    }

    /// Serializes `store` in the legacy v1 layout (what pre-v2 releases
    /// wrote), for backward-compatibility tests.
    fn write_store_v1(store: &AllSubtableSketches) -> Vec<u8> {
        let sk = store.sketcher();
        let mut buf = Vec::new();
        buf.extend_from_slice(STORE_MAGIC_V1);
        buf.extend_from_slice(&sk.p().to_le_bytes());
        buf.extend_from_slice(&(sk.k() as u64).to_le_bytes());
        buf.extend_from_slice(&sk.params().seed().to_le_bytes());
        buf.extend_from_slice(&sk.family().to_le_bytes());
        buf.extend_from_slice(&estimator_tag(sk.estimator()).to_le_bytes());
        buf.extend_from_slice(&(store.tile_rows() as u64).to_le_bytes());
        buf.extend_from_slice(&(store.tile_cols() as u64).to_le_bytes());
        buf.extend_from_slice(&(store.anchor_rows() as u64).to_le_bytes());
        buf.extend_from_slice(&(store.anchor_cols() as u64).to_le_bytes());
        for &v in store.raw_values() {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        buf
    }

    /// Serializes `sketch` in the legacy v1 layout.
    fn write_sketch_v1(sketch: &Sketch) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(SKETCH_MAGIC_V1);
        buf.extend_from_slice(&sketch.p().to_le_bytes());
        buf.extend_from_slice(&sketch.family().to_le_bytes());
        buf.extend_from_slice(&(sketch.k() as u64).to_le_bytes());
        for &v in sketch.values() {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        buf
    }

    #[test]
    fn sketch_round_trip() {
        let sk =
            Sketcher::new(SketchParams::builder().p(0.5).k(8).seed(1).build().unwrap()).unwrap();
        let s = sk.sketch_slice(&[1.0, -2.0, 3.5, 0.0, 9.0]);
        let mut buf = Vec::new();
        write_sketch(&s, &mut buf).unwrap();
        let back = read_sketch(&buf[..]).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn sketch_reads_legacy_v1() {
        let sk =
            Sketcher::new(SketchParams::builder().p(0.5).k(8).seed(1).build().unwrap()).unwrap();
        let s = sk.sketch_slice(&[1.0, -2.0, 3.5, 0.0, 9.0]);
        let back = read_sketch(&write_sketch_v1(&s)[..]).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn sketch_rejects_bad_magic_and_truncation() {
        assert!(matches!(
            read_sketch(&b"NOPE"[..]),
            Err(TabError::Corrupt { .. })
        ));
        let sk =
            Sketcher::new(SketchParams::builder().p(1.0).k(4).seed(2).build().unwrap()).unwrap();
        let mut buf = Vec::new();
        write_sketch(&sk.sketch_slice(&[1.0, 2.0]), &mut buf).unwrap();
        buf.truncate(buf.len() - 5);
        assert!(matches!(
            read_sketch(&buf[..]),
            Err(TabError::Corrupt { .. })
        ));
    }

    #[test]
    fn store_round_trip_preserves_everything() {
        let store = sample_store();
        let mut buf = Vec::new();
        write_store(&store, &mut buf).unwrap();
        let back = read_store(&buf[..]).unwrap();
        assert_eq!(back.tile_rows(), store.tile_rows());
        assert_eq!(back.tile_cols(), store.tile_cols());
        assert_eq!(back.anchor_rows(), store.anchor_rows());
        assert_eq!(back.anchor_cols(), store.anchor_cols());
        assert_eq!(back.raw_values(), store.raw_values());
        assert_eq!(back.sketcher().k(), store.sketcher().k());
        assert_eq!(back.sketcher().family(), store.sketcher().family());
        assert_eq!(back.sketcher().estimator(), store.sketcher().estimator());
    }

    #[test]
    fn store_reads_legacy_v1() {
        let store = sample_store();
        let back = read_store(&write_store_v1(&store)[..]).unwrap();
        assert_eq!(back.raw_values(), store.raw_values());
        assert_eq!(back.sketcher().family(), store.sketcher().family());
        assert_eq!(back.anchor_rows(), store.anchor_rows());
    }

    #[test]
    fn reloaded_store_interoperates_with_fresh_sketches() {
        // A sketch computed on demand after reload must be comparable with
        // stored sketches: the random family is derived from the persisted
        // seed, so estimates agree exactly.
        let table = Table::from_fn(12, 14, |r, c| ((r * 5 + c * 3) % 17) as f64).unwrap();
        let store = sample_store();
        let mut buf = Vec::new();
        write_store(&store, &mut buf).unwrap();
        let back = read_store(&buf[..]).unwrap();

        let fresh = back
            .sketcher()
            .sketch_view(&table.view(Rect::new(2, 3, 4, 5)).unwrap());
        let stored = back.sketch_at(2, 3).unwrap();
        for (a, b) in stored.values().iter().zip(fresh.values()) {
            assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn store_rejects_corruption() {
        let store = sample_store();
        let mut buf = Vec::new();
        write_store(&store, &mut buf).unwrap();
        assert!(
            matches!(
                read_store(&buf[..buf.len() - 3]),
                Err(TabError::Corrupt { .. })
            ),
            "truncated"
        );
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(
            matches!(read_store(&bad[..]), Err(TabError::Corrupt { .. })),
            "bad magic"
        );
        // Corrupt the estimator tag inside the checksummed header (offset:
        // magic 4 + version 4 + p 8 + k 8 + seed 8 + family 8 = 40).
        let mut bad_tag = buf;
        bad_tag[40] = 9;
        assert!(
            matches!(read_store(&bad_tag[..]), Err(TabError::Corrupt { .. })),
            "damaged estimator tag"
        );
    }

    #[test]
    fn v1_store_rejects_unknown_estimator_tag() {
        let store = sample_store();
        let mut buf = write_store_v1(&store);
        // v1 estimator tag offset: magic 4 + p 8 + k 8 + seed 8 + family 8.
        buf[36] = 9;
        let err = read_store(&buf[..]).unwrap_err();
        assert!(matches!(
            err,
            TabError::Corrupt {
                section: "header",
                ..
            }
        ));
    }

    #[test]
    fn store_bounds_declared_allocation() {
        // A v1 header declaring a huge anchor grid must be rejected before
        // any allocation happens.
        let store = sample_store();
        let mut buf = write_store_v1(&store);
        // anchor_rows offset: magic 4 + sketcher 40 + tiles 16 = 60.
        buf[60..68].copy_from_slice(&u64::MAX.to_le_bytes());
        let err = read_store(&buf[..]).unwrap_err();
        assert!(matches!(
            err,
            TabError::Corrupt {
                section: "header",
                ..
            }
        ));

        // An honest file still trips an explicit tighter limit.
        let mut v2 = Vec::new();
        write_store(&store, &mut v2).unwrap();
        let err = read_store_with_limit(&v2[..], 16).unwrap_err();
        assert!(matches!(
            err,
            TabError::Corrupt {
                section: "header",
                ..
            }
        ));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join(format!("tabsketch-persist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.tsks");
        let store = sample_store();
        save_store(&store, &path).unwrap();
        let back = load_store(&path).unwrap();
        assert_eq!(back.raw_values(), store.raw_values());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sketch_file_round_trip() {
        let dir = std::env::temp_dir().join(format!("tabsketch-persist-sk-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sig.tsk");
        let sk =
            Sketcher::new(SketchParams::builder().p(1.0).k(8).seed(7).build().unwrap()).unwrap();
        let s = sk.sketch_slice(&[3.0, -1.0, 0.0, 4.5]);
        save_sketch(&s, &path).unwrap();
        assert_eq!(load_sketch(&path).unwrap(), s);
        // Atomic replace: saving again over the existing file succeeds.
        save_sketch(&s, &path).unwrap();
        assert_eq!(load_sketch(&path).unwrap(), s);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn from_parts_validation() {
        let sk =
            Sketcher::new(SketchParams::builder().p(1.0).k(4).seed(1).build().unwrap()).unwrap();
        assert!(AllSubtableSketches::from_parts(sk.clone(), 2, 2, 3, 3, vec![0.0; 36]).is_ok());
        assert!(AllSubtableSketches::from_parts(sk.clone(), 2, 2, 3, 3, vec![0.0; 35]).is_err());
        assert!(AllSubtableSketches::from_parts(sk, 0, 2, 3, 3, vec![]).is_err());
    }
}
