//! Cache/register-blocked dense kernels for the sketching hot path.
//!
//! Every sketch in this crate bottoms out in the same primitive: `k` dot
//! products of one object against the `k` p-stable random rows. The naive
//! loop (`norms::dot_slices` per row) is a single sequential chain of f64
//! adds per row — the CPU stalls on floating-point add latency and the
//! row-cache `RwLock` is taken once per row. The kernels here fix both:
//!
//! * [`RowBlock`] pre-materializes the random rows as one immutable,
//!   contiguous, `Arc`-shared table, so the hot path never locks.
//! * [`dot_rows`] processes a register tile of [`ROW_TILE`] rows per pass
//!   over the object, holding one independent accumulator per row; the
//!   chains overlap in the out-of-order window (and vectorize), instead
//!   of serializing on add latency.
//! * [`dot_rows_batch`] extends the tile to rows × objects, sketching
//!   many same-length objects per pass over each row block — the
//!   GEMM-shaped path used by batched embedding construction and the
//!   serve batch handler.
//!
//! **Bit-identity invariant.** Each `(row, object)` pair is accumulated
//! into exactly one f64 accumulator, visiting columns in strictly
//! ascending order starting from `0.0` — the exact operation sequence of
//! `norms::dot_slices` (which folds `0.0 + x₀·r₀ + x₁·r₁ + …`). Tiling
//! only reorders *independent* accumulators, never the adds within one
//! dot product, so every kernel path returns bit-identical results to the
//! scalar baseline. Do not "optimize" a row's accumulation into multiple
//! partial sums: that reassociates f64 addition and breaks the
//! equivalence suite (`tests/kernel_equivalence.rs`).

use std::sync::Arc;

use tabsketch_table::norms;

/// Random rows per register tile of the single-object kernel
/// ([`dot_rows`]): eight independent accumulator chains are enough to
/// cover f64 add latency on current cores without spilling.
pub const ROW_TILE: usize = 8;

/// Rows per register tile of the batched kernel ([`dot_rows_batch`]).
pub const BATCH_ROW_TILE: usize = 4;

/// Objects per register tile of the batched kernel: `BATCH_ROW_TILE ×
/// OBJ_TILE = 16` accumulators stay in registers.
pub const OBJ_TILE: usize = 4;

/// An immutable, pre-materialized block of `k` random-row prefixes stored
/// contiguously (row-major, one physical `stride` per row). Cloning is
/// O(1) — the payload is a shared `Arc<[f64]>` — so sketcher clones and
/// worker threads all read the same allocation without locks or copies.
#[derive(Clone, Debug)]
pub struct RowBlock {
    k: usize,
    len: usize,
    stride: usize,
    data: Arc<[f64]>,
}

impl RowBlock {
    /// Wraps a row-major buffer of `k` rows with physical stride `stride`
    /// and logical prefix length `len`.
    ///
    /// # Panics
    ///
    /// Panics when `len > stride` or `data.len() != k * stride`.
    pub fn from_parts(k: usize, len: usize, stride: usize, data: Arc<[f64]>) -> Self {
        assert!(len <= stride, "logical row length exceeds physical stride");
        assert_eq!(data.len(), k * stride, "buffer does not hold k rows");
        Self {
            k,
            len,
            stride,
            data,
        }
    }

    /// The number of rows.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The logical row length (prefix of each physical row).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the block holds zero-length rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A view of the same shared buffer narrowed to a shorter logical
    /// row length — O(1), no copy.
    ///
    /// # Panics
    ///
    /// Panics when `len > self.len()`.
    pub fn with_len(&self, len: usize) -> RowBlock {
        assert!(len <= self.len, "cannot widen a row block");
        RowBlock {
            k: self.k,
            len,
            stride: self.stride,
            data: Arc::clone(&self.data),
        }
    }

    /// Borrows row `i` (length [`RowBlock::len`]) — the zero-copy
    /// replacement for `Sketcher::random_row` in worker loops.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        let start = i * self.stride;
        &self.data[start..start + self.len]
    }
}

/// `out[i] = x · row[i]` for every row of the block, blocked by
/// [`ROW_TILE`]. Bit-identical to calling `norms::dot_slices(x, row)` per
/// row (see the module docs for why).
///
/// # Panics
///
/// Panics when `x.len() > block.len()` or `out.len() != block.k()`.
pub fn dot_rows(block: &RowBlock, x: &[f64], out: &mut [f64]) {
    let n = x.len();
    assert!(n <= block.len(), "object longer than the row block");
    assert_eq!(out.len(), block.k(), "output length must equal k");
    let x = &x[..n];
    let k = block.k();
    let mut i = 0;
    while i + ROW_TILE <= k {
        let rows: [&[f64]; ROW_TILE] = std::array::from_fn(|j| &block.row(i + j)[..n]);
        // One accumulator per row: ROW_TILE independent dependency
        // chains, columns strictly ascending within each.
        let mut acc = [0.0f64; ROW_TILE];
        for c in 0..n {
            let xv = x[c];
            for j in 0..ROW_TILE {
                acc[j] += rows[j][c] * xv;
            }
        }
        out[i..i + ROW_TILE].copy_from_slice(&acc);
        i += ROW_TILE;
    }
    // Remainder rows: plain scalar dot (the baseline itself).
    for (slot, row) in out[i..].iter_mut().zip((i..k).map(|r| block.row(r))) {
        *slot = norms::dot_slices(x, &row[..n]);
    }
}

/// `out[o * k + i] = objs[o] · row[i]` for every (object, row) pair,
/// blocked by [`BATCH_ROW_TILE`] × [`OBJ_TILE`] so each pass over a row
/// block sketches several objects at once. Bit-identical to [`dot_rows`]
/// per object.
///
/// # Panics
///
/// Panics when objects have unequal lengths, an object is longer than the
/// block, or `out.len() != objs.len() * block.k()`.
pub fn dot_rows_batch(block: &RowBlock, objs: &[&[f64]], out: &mut [f64]) {
    let k = block.k();
    assert_eq!(out.len(), objs.len() * k, "output must hold k per object");
    let Some(first) = objs.first() else {
        return;
    };
    let n = first.len();
    assert!(n <= block.len(), "object longer than the row block");
    assert!(
        objs.iter().all(|o| o.len() == n),
        "batched objects must share one length"
    );
    let mut o = 0;
    while o + OBJ_TILE <= objs.len() {
        let xs: [&[f64]; OBJ_TILE] = std::array::from_fn(|t| &objs[o + t][..n]);
        let mut i = 0;
        while i + BATCH_ROW_TILE <= k {
            let rows: [&[f64]; BATCH_ROW_TILE] = std::array::from_fn(|j| &block.row(i + j)[..n]);
            // 4×4 register tile: one accumulator per (row, object).
            let mut acc = [[0.0f64; OBJ_TILE]; BATCH_ROW_TILE];
            for c in 0..n {
                for j in 0..BATCH_ROW_TILE {
                    let rv = rows[j][c];
                    for t in 0..OBJ_TILE {
                        acc[j][t] += rv * xs[t][c];
                    }
                }
            }
            for (j, row_acc) in acc.iter().enumerate() {
                for (t, &v) in row_acc.iter().enumerate() {
                    out[(o + t) * k + i + j] = v;
                }
            }
            i += BATCH_ROW_TILE;
        }
        // Remainder rows for this object tile.
        for r in i..k {
            let row = &block.row(r)[..n];
            let mut acc = [0.0f64; OBJ_TILE];
            for c in 0..n {
                let rv = row[c];
                for t in 0..OBJ_TILE {
                    acc[t] += rv * xs[t][c];
                }
            }
            for (t, &v) in acc.iter().enumerate() {
                out[(o + t) * k + r] = v;
            }
        }
        o += OBJ_TILE;
    }
    // Leftover objects fall back to the single-object kernel.
    for (t, obj) in objs.iter().enumerate().skip(o) {
        dot_rows(block, obj, &mut out[t * k..(t + 1) * k]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block_from_fn(k: usize, len: usize, f: impl Fn(usize, usize) -> f64) -> RowBlock {
        let data: Vec<f64> = (0..k * len).map(|i| f(i / len, i % len)).collect();
        RowBlock::from_parts(k, len, len, data.into())
    }

    #[test]
    fn row_block_narrowing_and_rows() {
        let b = block_from_fn(3, 5, |r, c| (r * 10 + c) as f64);
        assert_eq!((b.k(), b.len()), (3, 5));
        assert_eq!(b.row(1), &[10.0, 11.0, 12.0, 13.0, 14.0]);
        let narrow = b.with_len(2);
        assert_eq!(narrow.row(2), &[20.0, 21.0]);
        assert_eq!(b.len(), 5, "narrowing must not touch the original");
    }

    #[test]
    #[should_panic(expected = "cannot widen")]
    fn row_block_refuses_to_widen() {
        let b = block_from_fn(1, 2, |_, _| 0.0);
        let _ = b.with_len(3);
    }

    #[test]
    fn dot_rows_matches_scalar_over_remainder_shapes() {
        // Cover k below/at/above ROW_TILE and odd lengths.
        for &k in &[1, 7, 8, 9, 19] {
            for &n in &[0, 1, 5, 16, 17, 33] {
                let b = block_from_fn(k, n.max(1), |r, c| ((r * 31 + c * 7) % 13) as f64 - 6.0);
                let x: Vec<f64> = (0..n).map(|c| ((c * 5) % 11) as f64 - 5.0).collect();
                let mut out = vec![0.0; k];
                dot_rows(&b, &x, &mut out);
                for (i, &v) in out.iter().enumerate() {
                    let expect = norms::dot_slices(&x, &b.row(i)[..n]);
                    assert!(v == expect, "k={k} n={n} row {i}: {v} vs {expect}");
                }
            }
        }
    }

    #[test]
    fn dot_rows_batch_matches_dot_rows() {
        for &nobj in &[0, 1, 3, 4, 5, 9] {
            let k = 11;
            let n = 23;
            let b = block_from_fn(k, n, |r, c| ((r * 17 + c * 3) % 19) as f64 / 3.0);
            let objs: Vec<Vec<f64>> = (0..nobj)
                .map(|o| (0..n).map(|c| ((o * 13 + c) % 7) as f64 - 3.0).collect())
                .collect();
            let refs: Vec<&[f64]> = objs.iter().map(|v| &v[..]).collect();
            let mut batched = vec![0.0; nobj * k];
            dot_rows_batch(&b, &refs, &mut batched);
            for (o, obj) in refs.iter().enumerate() {
                let mut single = vec![0.0; k];
                dot_rows(&b, obj, &mut single);
                assert_eq!(&batched[o * k..(o + 1) * k], &single[..], "object {o}");
            }
        }
    }
}
